#include "src/common/codec.h"

#include <gtest/gtest.h>

namespace tfr {
namespace {

TEST(CodecTest, RoundTripAllTypes) {
  std::string buf;
  Encoder enc(&buf);
  enc.put_u8(0xab);
  enc.put_u32(0xdeadbeef);
  enc.put_u64(0x0123456789abcdefULL);
  enc.put_i64(-42);
  enc.put_string("hello world");
  enc.put_string("");  // empty string is legal

  Decoder dec(buf);
  std::uint8_t u8;
  std::uint32_t u32;
  std::uint64_t u64;
  std::int64_t i64;
  std::string s1, s2;
  ASSERT_TRUE(dec.get_u8(&u8).is_ok());
  ASSERT_TRUE(dec.get_u32(&u32).is_ok());
  ASSERT_TRUE(dec.get_u64(&u64).is_ok());
  ASSERT_TRUE(dec.get_i64(&i64).is_ok());
  ASSERT_TRUE(dec.get_string(&s1).is_ok());
  ASSERT_TRUE(dec.get_string(&s2).is_ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(s1, "hello world");
  EXPECT_EQ(s2, "");
  EXPECT_TRUE(dec.done());
}

TEST(CodecTest, BinaryStringsSurvive) {
  std::string payload("\x00\x01\xff\x7f bytes", 8);
  std::string buf;
  Encoder enc(&buf);
  enc.put_string(payload);
  Decoder dec(buf);
  std::string out;
  ASSERT_TRUE(dec.get_string(&out).is_ok());
  EXPECT_EQ(out, payload);
}

TEST(CodecTest, TruncatedIntegerIsCorruption) {
  std::string buf = "\x01\x02";  // 2 bytes, not enough for u32
  Decoder dec(buf);
  std::uint32_t v;
  EXPECT_EQ(dec.get_u32(&v).code(), Code::kCorruption);
}

TEST(CodecTest, TruncatedStringBodyIsCorruption) {
  std::string buf;
  Encoder enc(&buf);
  enc.put_u32(100);  // claims 100 bytes follow
  buf += "short";
  Decoder dec(buf);
  std::string out;
  EXPECT_EQ(dec.get_string(&out).code(), Code::kCorruption);
}

TEST(CodecTest, PositionAndRemainingTrackProgress) {
  std::string buf;
  Encoder enc(&buf);
  enc.put_u64(1);
  enc.put_u64(2);
  Decoder dec(buf);
  EXPECT_EQ(dec.remaining(), 16u);
  std::uint64_t v;
  ASSERT_TRUE(dec.get_u64(&v).is_ok());
  EXPECT_EQ(dec.position(), 8u);
  EXPECT_EQ(dec.remaining(), 8u);
  EXPECT_FALSE(dec.done());
  ASSERT_TRUE(dec.get_u64(&v).is_ok());
  EXPECT_TRUE(dec.done());
}

}  // namespace
}  // namespace tfr
