// FaultInjector unit behavior: default-off, seeded determinism, prefix
// matching, one-shot triggers, per-op action gating, delay accounting, and
// the process-wide counter mirror.
#include "src/common/fault.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/metrics.h"

namespace tfr {
namespace {

FaultRule apply_error_rule(double p, const std::string& target = "") {
  FaultRule r;
  r.op = FaultOp::kRpcApply;
  r.target = target;
  r.error_probability = p;
  return r;
}

TEST(FaultInjectorTest, DisabledByDefaultAndCostsNoEvaluations) {
  FaultInjector f;
  EXPECT_FALSE(f.enabled());
  const FaultAction a = f.inject(FaultOp::kRpcApply, "rs1");
  EXPECT_FALSE(a.fail);
  EXPECT_FALSE(a.drop_response);
  EXPECT_FALSE(a.corrupt_wire);
  EXPECT_EQ(a.delayed, 0);
  EXPECT_TRUE(f.check(FaultOp::kDfsSync, "/wal/x").is_ok());
  EXPECT_EQ(f.stats().evaluations, 0);
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultInjector a, b;
  a.reseed(42);
  b.reseed(42);
  EXPECT_EQ(a.seed(), 42u);
  a.add_rule(apply_error_rule(0.5));
  b.add_rule(apply_error_rule(0.5));
  std::vector<bool> av, bv;
  for (int i = 0; i < 128; ++i) {
    av.push_back(a.inject(FaultOp::kRpcApply, "rs1").fail);
    bv.push_back(b.inject(FaultOp::kRpcApply, "rs1").fail);
  }
  EXPECT_EQ(av, bv);
  // And the schedule is non-trivial at p=0.5.
  EXPECT_GT(a.stats().injected_errors, 0);
  EXPECT_LT(a.stats().injected_errors, 128);
}

TEST(FaultInjectorTest, TargetIsAPrefixMatch) {
  FaultInjector f;
  f.reseed(1);
  f.add_rule(apply_error_rule(1.0, "rs1"));
  EXPECT_TRUE(f.inject(FaultOp::kRpcApply, "rs1").fail);
  EXPECT_FALSE(f.inject(FaultOp::kRpcApply, "rs2").fail);
  // Prefix semantics, for DFS paths.
  FaultRule wal;
  wal.op = FaultOp::kDfsSync;
  wal.target = "/wal/";
  wal.error_probability = 1.0;
  f.add_rule(wal);
  EXPECT_FALSE(f.check(FaultOp::kDfsSync, "/wal/rs1.log").is_ok());
  EXPECT_TRUE(f.check(FaultOp::kDfsSync, "/data/t/f1").is_ok());
}

TEST(FaultInjectorTest, EmptyTargetMatchesEverything) {
  FaultInjector f;
  f.reseed(1);
  f.add_rule(apply_error_rule(1.0, ""));
  EXPECT_TRUE(f.inject(FaultOp::kRpcApply, "rs1").fail);
  EXPECT_TRUE(f.inject(FaultOp::kRpcApply, "anything").fail);
  // But only for the rule's op.
  EXPECT_FALSE(f.inject(FaultOp::kRpcGet, "rs1").fail);
}

TEST(FaultInjectorTest, FailNextCountsDown) {
  FaultInjector f;
  f.reseed(1);
  FaultRule r;
  r.op = FaultOp::kDfsSync;
  r.fail_next = 3;
  f.add_rule(r);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(f.check(FaultOp::kDfsSync, "/wal/x").code(), Code::kUnavailable) << i;
  }
  EXPECT_TRUE(f.check(FaultOp::kDfsSync, "/wal/x").is_ok());
  EXPECT_EQ(f.stats().injected_errors, 3);
}

TEST(FaultInjectorTest, DropAndCorruptOnlyApplyToTheApplyRpc) {
  FaultInjector f;
  f.reseed(1);
  FaultRule r;
  r.op = FaultOp::kRpcGet;
  r.drop_response_probability = 1.0;
  r.corrupt_probability = 1.0;
  f.add_rule(r);
  const FaultAction a = f.inject(FaultOp::kRpcGet, "rs1");
  EXPECT_FALSE(a.drop_response);
  EXPECT_FALSE(a.corrupt_wire);
  EXPECT_TRUE(f.check(FaultOp::kRpcGet, "rs1").is_ok());
}

TEST(FaultInjectorTest, DelayIsInjectedAndAccounted) {
  FaultInjector f;
  f.reseed(1);
  FaultRule r;
  r.op = FaultOp::kDfsSync;
  r.target = "/wal/";
  r.delay_probability = 1.0;
  r.delay = millis(2);
  f.add_rule(r);
  const Micros t0 = now_micros();
  const FaultAction a = f.inject(FaultOp::kDfsSync, "/wal/rs1.log");
  EXPECT_GE(now_micros() - t0, millis(2));
  EXPECT_EQ(a.delayed, millis(2));
  EXPECT_FALSE(a.fail);
  const FaultStats s = f.stats();
  EXPECT_EQ(s.injected_delays, 1);
  EXPECT_GE(s.delay_micros, millis(2));
}

TEST(FaultInjectorTest, ClearRulesDisablesAndKeepsStats) {
  FaultInjector f;
  f.reseed(1);
  f.add_rule(apply_error_rule(1.0));
  EXPECT_TRUE(f.enabled());
  EXPECT_TRUE(f.inject(FaultOp::kRpcApply, "rs1").fail);
  f.clear_rules();
  EXPECT_FALSE(f.enabled());
  EXPECT_FALSE(f.inject(FaultOp::kRpcApply, "rs1").fail);
  EXPECT_EQ(f.stats().injected_errors, 1);  // kept
  f.reset_stats();
  EXPECT_EQ(f.stats().injected_errors, 0);
}

TEST(FaultInjectorTest, GlobalCountersMirrorInjections) {
  const std::int64_t before = global_counter("fault.injected_errors").get();
  FaultInjector f;
  f.reseed(1);
  f.add_rule(apply_error_rule(1.0));
  for (int i = 0; i < 5; ++i) (void)f.inject(FaultOp::kRpcApply, "rs1");
  EXPECT_EQ(global_counter("fault.injected_errors").get(), before + 5);
}

TEST(FaultInjectorTest, CheckMapsActionsToUnavailable) {
  FaultInjector f;
  f.reseed(1);
  f.add_rule(apply_error_rule(1.0));
  const Status s = f.check(FaultOp::kRpcApply, "rs1");
  EXPECT_EQ(s.code(), Code::kUnavailable);
}

// --- partition rules ---------------------------------------------------------

TEST(FaultInjectorTest, SymmetricPartitionBlocksBothDirections) {
  FaultInjector f;
  const int id = f.add_partition(PartitionRule{"rs1", "coord", /*symmetric=*/true});
  EXPECT_TRUE(f.enabled());
  EXPECT_TRUE(f.partitioned("rs1", "coord"));
  EXPECT_TRUE(f.partitioned("coord", "rs1"));
  EXPECT_FALSE(f.partitioned("rs2", "coord"));
  f.heal_partition(id);
  EXPECT_FALSE(f.partitioned("rs1", "coord"));
  EXPECT_FALSE(f.enabled());  // nothing left installed
}

TEST(FaultInjectorTest, AsymmetricPartitionBlocksOnlyOneDirection) {
  FaultInjector f;
  f.add_partition(PartitionRule{"client", "rs1", /*symmetric=*/false});
  EXPECT_TRUE(f.partitioned("client7", "rs1"));  // prefix match on src
  EXPECT_FALSE(f.partitioned("rs1", "client7"));  // reverse direction open
  f.clear_partitions();
  EXPECT_FALSE(f.partitioned("client7", "rs1"));
}

TEST(FaultInjectorTest, PartitionsActiveGaugeTracksInstallAndHeal) {
  Counter& gauge = global_counter("fault.partitions_active");
  const std::int64_t before = gauge.get();
  FaultInjector f;
  const int a = f.add_partition(PartitionRule{"rs1", "coord"});
  const int b = f.add_partition(PartitionRule{"rs2", "coord"});
  EXPECT_EQ(gauge.get(), before + 2);
  f.heal_partition(a);
  EXPECT_EQ(gauge.get(), before + 1);
  f.heal_partition(a);  // idempotent: healing twice does not double-decrement
  EXPECT_EQ(gauge.get(), before + 1);
  f.heal_partition(b);
  EXPECT_EQ(gauge.get(), before);
  // clear_partitions on an already-empty set leaves the gauge untouched.
  f.clear_partitions();
  EXPECT_EQ(gauge.get(), before);
}

TEST(FaultInjectorTest, PartitionDropsAreCounted) {
  const std::int64_t global_before = global_counter("fault.partition_drops").get();
  FaultInjector f;
  f.add_partition(PartitionRule{"rs1", "coord"});
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(f.partitioned("rs1", "coord"));
  EXPECT_FALSE(f.partitioned("rs2", "coord"));  // a miss is not a drop
  EXPECT_EQ(f.stats().partition_drops, 3);
  EXPECT_EQ(global_counter("fault.partition_drops").get(), global_before + 3);
  const Status s = f.check_partition(FaultOp::kCoordHeartbeat, "rs1", "coord");
  EXPECT_EQ(s.code(), Code::kUnavailable);
  EXPECT_EQ(f.stats().partition_drops, 4);
}

TEST(FaultInjectorTest, ClearRulesLeavesPartitionsArmed) {
  FaultInjector f;
  f.reseed(1);
  f.add_rule(apply_error_rule(1.0));
  f.add_partition(PartitionRule{"rs1", "coord"});
  f.clear_rules();
  // The injector must stay enabled: an active partition outlives rule churn.
  EXPECT_TRUE(f.enabled());
  EXPECT_TRUE(f.partitioned("rs1", "coord"));
  EXPECT_FALSE(f.inject(FaultOp::kRpcApply, "rs1").fail);
  f.clear_partitions();
  EXPECT_FALSE(f.enabled());
}

}  // namespace
}  // namespace tfr
