#include "src/common/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace tfr {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 1000.0);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000);
  // Percentile error is bounded by bucket width (~5%).
  EXPECT_NEAR(static_cast<double>(h.percentile(50)), 1000.0, 80.0);
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.record(i);
  const auto p50 = h.percentile(50);
  const auto p90 = h.percentile(90);
  const auto p99 = h.percentile(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_NEAR(static_cast<double>(p50), 5000.0, 500.0);
  EXPECT_NEAR(static_cast<double>(p99), 9900.0, 800.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.record(10);
  b.record(1000000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000000);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, ConcurrentRecordsAreAllCounted) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 10000; ++i) h.record(100 + i % 50);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), 40000u);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.record(1500);
  EXPECT_NE(h.summary().find("n=1"), std::string::npos);
}

TEST(TimeSeriesTest, BucketsByInterval) {
  TimeSeriesRecorder rec(millis(20), 64);
  rec.start();
  rec.record(millis(3));
  rec.record(millis(7));
  sleep_millis(25);
  rec.record(millis(11));
  auto series = rec.snapshot();
  ASSERT_GE(series.size(), 2u);
  // First bucket holds two samples at 50/s each over 20ms -> 100 tps.
  EXPECT_NEAR(series[0].throughput, 100.0, 1.0);
  EXPECT_NEAR(series[0].mean_latency_ms, 5.0, 0.5);
}

TEST(TimeSeriesTest, ErrorsAreCounted) {
  TimeSeriesRecorder rec(millis(50), 8);
  rec.start();
  rec.record_error();
  rec.record_error();
  auto series = rec.snapshot();
  ASSERT_FALSE(series.empty());
  EXPECT_EQ(series[0].errors, 2u);
}

TEST(TimeSeriesTest, ElapsedGrows) {
  TimeSeriesRecorder rec(millis(10), 8);
  rec.start();
  sleep_millis(5);
  EXPECT_GT(rec.elapsed_seconds(), 0.0);
}

TEST(CounterTest, AddAndReset) {
  Counter c;
  c.add();
  c.add(5);
  EXPECT_EQ(c.get(), 6);
  c.reset();
  EXPECT_EQ(c.get(), 0);
}

}  // namespace
}  // namespace tfr
