// Backoff: full-jitter interval bounds, attempt accounting, cancellation.
#include "src/common/backoff.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace tfr {
namespace {

TEST(BackoffTest, IntervalsStayWithinJitterBounds) {
  const Micros base = 100;
  const Micros cap = 800;
  Backoff b(base, cap);
  for (int attempt = 0; attempt < 20; ++attempt) {
    // Full jitter: attempt n draws uniformly from (0, min(cap, base * 2^n)].
    Micros ceiling = base;
    for (int i = 0; i < attempt && ceiling < cap; ++i) ceiling *= 2;
    if (ceiling > cap) ceiling = cap;
    const Micros interval = b.next_interval();
    EXPECT_GE(interval, 1) << "attempt " << attempt;
    EXPECT_LE(interval, ceiling) << "attempt " << attempt;
  }
}

TEST(BackoffTest, AttemptsCountAndReset) {
  Backoff b(10, 100);
  EXPECT_EQ(b.attempts(), 0);
  (void)b.next_interval();
  (void)b.next_interval();
  EXPECT_EQ(b.attempts(), 2);
  b.reset();
  EXPECT_EQ(b.attempts(), 0);
  // After reset the ceiling is back at the base.
  EXPECT_LE(b.next_interval(), 10);
}

TEST(BackoffTest, DegenerateParametersAreClamped) {
  Backoff zero(0, 0);  // base clamped to 1, cap to base
  for (int i = 0; i < 5; ++i) EXPECT_EQ(zero.next_interval(), 1);
  Backoff inverted(50, 10);  // cap < base: cap becomes base
  for (int i = 0; i < 5; ++i) EXPECT_LE(inverted.next_interval(), 50);
}

TEST(BackoffTest, SleepCompletesWithoutCancelFlag) {
  Backoff b(1, 1);
  EXPECT_TRUE(b.sleep());
  EXPECT_TRUE(b.sleep(nullptr));
}

TEST(BackoffTest, PreSetCancelAbortsImmediately) {
  Backoff b(seconds(10), seconds(10));  // would sleep up to 10s
  std::atomic<bool> cancel{true};
  const Micros t0 = now_micros();
  EXPECT_FALSE(b.sleep(&cancel));
  // The sliced sleep must notice the flag within ~a slice, not the interval.
  EXPECT_LT(now_micros() - t0, seconds(1));
}

TEST(BackoffTest, CancelMidSleepIsObserved) {
  Backoff b(seconds(10), seconds(10));
  std::atomic<bool> cancel{false};
  std::thread setter([&] {
    sleep_micros(millis(5));
    cancel.store(true);
  });
  EXPECT_FALSE(b.sleep(&cancel));
  setter.join();
}

TEST(BackoffTest, InstancesDrawIndependentStreams) {
  // Concurrent retriers must not wake in lockstep: two instances with the
  // same parameters should produce different jitter sequences.
  Backoff a(1000, 1000000);
  Backoff b(1000, 1000000);
  std::vector<Micros> av, bv;
  for (int i = 0; i < 8; ++i) {
    av.push_back(a.next_interval());
    bv.push_back(b.next_interval());
  }
  EXPECT_NE(av, bv);
}

}  // namespace
}  // namespace tfr
