// Tests for the runtime lock-rank validator (annotations.h/.cpp): the
// descending-rank rule, re-entrancy detection, and the MutexLock/CondVar
// wrappers' bookkeeping across a blocking wait. The violation paths abort,
// so they run as gtest death tests.
#include <thread>

#include <gtest/gtest.h>

#include "src/common/annotations.h"

namespace tfr {
namespace {

#if TFR_LOCK_RANK

using LockRankDeathTest = ::testing::Test;

TEST(LockRankDeathTest, OutOfOrderAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Ranks must be acquired in strictly descending order; taking a
  // low-ranked (inner) lock and then a high-ranked (outer) one is the
  // canonical A->B / B->A inversion half and must die loudly.
  Mutex inner{LockRank::kLogging, "canary_inner"};
  Mutex outer{LockRank::kRegion, "canary_outer"};
  EXPECT_DEATH(
      {
        MutexLock hold_inner(inner);
        MutexLock then_outer(outer);  // rank 160 while holding rank 10
      },
      "lock-rank violation: out-of-order acquisition");
}

TEST(LockRankDeathTest, EqualRankAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Equal ranks are also forbidden: two same-rank locks taken together in
  // different orders on different threads is the same deadlock, so the rule
  // is "strictly lower", not "lower or equal".
  Mutex a{LockRank::kQueue, "canary_a"};
  Mutex b{LockRank::kQueue, "canary_b"};
  EXPECT_DEATH(
      {
        MutexLock hold_a(a);
        MutexLock then_b(b);
      },
      "lock-rank violation: out-of-order acquisition");
}

TEST(LockRankDeathTest, ReentrantAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu{LockRank::kRegion, "canary_reentrant"};
  EXPECT_DEATH(
      {
        MutexLock first(mu);
        mu.lock();  // same mutex, same thread: UB on std::mutex, abort here
      },
      "lock-rank violation: re-entrant acquisition");
}

TEST(LockRankTest, DescendingAcquisitionIsAllowed) {
  // The happy path: outer-to-inner (high rank to low rank) nesting, the
  // order every production chain in DESIGN.md "Lock ranks" uses.
  Mutex outer{LockRank::kRegionServer, "ok_outer"};
  Mutex mid{LockRank::kRegion, "ok_mid"};
  Mutex inner{LockRank::kDfs, "ok_inner"};
  MutexLock l1(outer);
  MutexLock l2(mid);
  MutexLock l3(inner);
}

TEST(LockRankTest, SequentialSameRankIsAllowed) {
  // Same rank is fine when not held simultaneously.
  Mutex a{LockRank::kQueue, "seq_a"};
  Mutex b{LockRank::kQueue, "seq_b"};
  { MutexLock l(a); }
  { MutexLock l(b); }
}

#endif  // TFR_LOCK_RANK

TEST(LockRankTest, CondVarWaitReleasesAndReacquires) {
  // A blocked CondVar::wait must (a) release the mutex so another thread
  // can take it — under the validator, with correct held-stack bookkeeping
  // on both sides — and (b) hold it again when wait returns.
  Mutex mu{LockRank::kQueue, "cv_roundtrip"};
  CondVar cv;
  bool ready = false;

  std::thread waker([&] {
    MutexLock lock(mu);  // blocks until the waiter is inside wait()
    ready = true;
    cv.notify_one();
  });

  {
    MutexLock lock(mu);
    while (!ready) cv.wait(lock);
    EXPECT_TRUE(ready);
    // The lock is held again here; a guarded write must be legal.
    ready = false;
  }
  waker.join();
}

TEST(LockRankTest, CondVarWaitForTimesOut) {
  Mutex mu{LockRank::kQueue, "cv_timeout"};
  CondVar cv;
  MutexLock lock(mu);
  // Nobody notifies: wait_for must come back false with the lock held.
  EXPECT_FALSE(cv.wait_for(lock, /*micros=*/1000));
}

TEST(LockRankTest, ManualUnlockRelockRoundTrip) {
  // MutexLock::unlock()/lock() is the pattern PeriodicTask::run uses to
  // drop the lock around the task body; the validator must track it.
  Mutex mu{LockRank::kQueue, "manual_roundtrip"};
  MutexLock lock(mu);
  lock.unlock();
  lock.lock();
}

}  // namespace
}  // namespace tfr
