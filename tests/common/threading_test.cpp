#include "src/common/threading.h"

#include <gtest/gtest.h>

#include <atomic>

namespace tfr {
namespace {

TEST(PeriodicTaskTest, RunsRepeatedly) {
  std::atomic<int> runs{0};
  PeriodicTask task([&] { ++runs; }, millis(5));
  task.start();
  sleep_millis(60);
  task.stop();
  EXPECT_GE(runs.load(), 3);
}

TEST(PeriodicTaskTest, StopPreventsFurtherRuns) {
  std::atomic<int> runs{0};
  PeriodicTask task([&] { ++runs; }, millis(5));
  task.start();
  sleep_millis(20);
  task.stop();
  const int after_stop = runs.load();
  sleep_millis(30);
  EXPECT_EQ(runs.load(), after_stop);
}

TEST(PeriodicTaskTest, StopIsIdempotent) {
  PeriodicTask task([] {}, millis(5));
  task.start();
  task.stop();
  task.stop();  // no crash, no deadlock
}

TEST(PeriodicTaskTest, NeverStartedStopsCleanly) {
  PeriodicTask task([] {}, millis(5));
  task.stop();
}

TEST(PeriodicTaskTest, TriggerNowRunsInline) {
  std::atomic<int> runs{0};
  PeriodicTask task([&] { ++runs; }, seconds(100));
  task.trigger_now();
  EXPECT_EQ(runs.load(), 1);
}

TEST(PeriodicTaskTest, IntervalCanBeChanged) {
  std::atomic<int> runs{0};
  PeriodicTask task([&] { ++runs; }, seconds(100));
  task.start();
  task.set_interval(millis(5));
  sleep_millis(40);
  task.stop();
  EXPECT_GE(runs.load(), 2);
}

TEST(PeriodicTaskTest, ShrinkingIntervalInterruptsTheCurrentWait) {
  // Regression: a task sleeping on a long old interval must pick up a new
  // short interval immediately, not after the old wait elapses — heartbeat
  // TTL reconfiguration depends on this.
  std::atomic<int> runs{0};
  PeriodicTask task([&] { ++runs; }, seconds(60));
  task.start();
  sleep_millis(10);  // the task is now deep in its 60 s wait
  const Micros t0 = now_micros();
  task.set_interval(millis(5));
  while (runs.load() == 0 && now_micros() - t0 < seconds(5)) sleep_millis(1);
  EXPECT_GE(runs.load(), 1);
  EXPECT_LT(now_micros() - t0, millis(500));
  task.stop();
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Semaphore sem(2);
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      SemaphoreGuard guard(sem);
      const int now_inside = ++inside;
      int prev = max_inside.load();
      while (now_inside > prev && !max_inside.compare_exchange_weak(prev, now_inside)) {
      }
      sleep_millis(5);
      --inside;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(max_inside.load(), 2);
  EXPECT_GE(max_inside.load(), 1);
}

TEST(CountdownLatchTest, WaitReleasesAtZero) {
  CountdownLatch latch(3);
  std::thread t([&] {
    sleep_millis(5);
    latch.count_down();
    latch.count_down();
    latch.count_down();
  });
  latch.wait();
  t.join();
}

TEST(CountdownLatchTest, WaitForTimesOut) {
  CountdownLatch latch(1);
  EXPECT_FALSE(latch.wait_for(millis(10)));
  latch.count_down();
  EXPECT_TRUE(latch.wait_for(millis(10)));
}

TEST(CountdownLatchTest, ExtraCountDownsAreHarmless) {
  CountdownLatch latch(1);
  latch.count_down();
  latch.count_down();
  latch.wait();
}

}  // namespace
}  // namespace tfr
