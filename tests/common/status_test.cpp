#include "src/common/status.h"

#include <gtest/gtest.h>

namespace tfr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), Code::kOk);
  EXPECT_EQ(s.to_string(), "Ok");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::not_found("x").code(), Code::kNotFound);
  EXPECT_EQ(Status::unavailable("x").code(), Code::kUnavailable);
  EXPECT_EQ(Status::aborted("x").code(), Code::kAborted);
  EXPECT_EQ(Status::timeout("x").code(), Code::kTimeout);
  EXPECT_EQ(Status::corruption("x").code(), Code::kCorruption);
  EXPECT_EQ(Status::invalid_argument("x").code(), Code::kInvalidArgument);
  EXPECT_EQ(Status::internal("x").code(), Code::kInternal);
  EXPECT_EQ(Status::closed("x").code(), Code::kClosed);
  EXPECT_EQ(Status::already_exists("x").code(), Code::kAlreadyExists);
  EXPECT_EQ(Status::not_found("no such row").message(), "no such row");
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::not_found("").is_not_found());
  EXPECT_TRUE(Status::unavailable("").is_unavailable());
  EXPECT_TRUE(Status::aborted("").is_aborted());
  EXPECT_TRUE(Status::timeout("").is_timeout());
  EXPECT_FALSE(Status::ok().is_not_found());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::unavailable("server down").to_string(), "Unavailable: server down");
}

TEST(StatusTest, BoolConversion) {
  EXPECT_TRUE(static_cast<bool>(Status::ok()));
  EXPECT_FALSE(static_cast<bool>(Status::internal("boom")));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::not_found("gone"));
  ASSERT_FALSE(r.is_ok());
  EXPECT_TRUE(r.status().is_not_found());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ReturnIfErrorMacroPropagates) {
  auto inner = [](bool fail) -> Status {
    return fail ? Status::timeout("slow") : Status::ok();
  };
  auto outer = [&](bool fail) -> Status {
    TFR_RETURN_IF_ERROR(inner(fail));
    return Status::internal("should not reach on failure");
  };
  EXPECT_TRUE(outer(true).is_timeout());
  EXPECT_EQ(outer(false).code(), Code::kInternal);
}

}  // namespace
}  // namespace tfr
