#include "src/common/latency.h"

#include <gtest/gtest.h>

namespace tfr {
namespace {

TEST(LatencyModelTest, ZeroModelIsFree) {
  LatencyModel model;
  EXPECT_TRUE(model.is_zero());
  EXPECT_EQ(model.sample(), 0);
  const Micros start = now_micros();
  model.charge();
  EXPECT_LT(now_micros() - start, millis(2));
}

TEST(LatencyModelTest, FixedBaseWithoutJitterIsExact) {
  LatencyModel model(1500, 0);
  EXPECT_FALSE(model.is_zero());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(model.sample(), 1500);
}

TEST(LatencyModelTest, JitterAddsNonNegativeNoise) {
  LatencyModel model(1000, 500);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    const Micros s = model.sample();
    ASSERT_GE(s, 1000);
    sum += static_cast<double>(s);
  }
  // Exponential jitter with mean 500 on top of the base.
  EXPECT_NEAR(sum / 5000.0, 1500.0, 100.0);
}

TEST(LatencyModelTest, ChargeSleepsRoughlyTheSample) {
  LatencyModel model(millis(5), 0);
  const Micros start = now_micros();
  model.charge();
  EXPECT_GE(now_micros() - start, millis(4));
}

TEST(LatencyModelTest, SetReconfiguresAtRuntime) {
  LatencyModel model(100, 0);
  model.set(0, 0);
  EXPECT_TRUE(model.is_zero());
  model.set(250, 0);
  EXPECT_EQ(model.sample(), 250);
}

TEST(LatencyModelTest, ConcurrentSamplingIsSafe) {
  LatencyModel model(10, 20);
  std::vector<std::thread> threads;
  std::atomic<bool> bad{false};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        if (model.sample() < 10) bad = true;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(bad.load());
}

}  // namespace
}  // namespace tfr
