// Tests for the runtime blocking-under-lock hook (annotations.h Layer 4)
// and the generated-table assertion in the rank validator. The violation
// paths abort, so they run as gtest death tests.
#include <thread>

#include <gtest/gtest.h>

#include "src/common/annotations.h"
#include "src/common/clock.h"

namespace tfr {
namespace {

#if TFR_LOCK_RANK

using BlockingGuardDeathTest = ::testing::Test;

TEST(BlockingGuardDeathTest, BlockingUnderNoBlockRankAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // kQueue is may_block=false in the generated table: parking a thread that
  // holds a queue lock stalls every producer/consumer behind it.
  RankedMutex<LockRank::kQueue> mu{"canary_queue"};
  EXPECT_DEATH(
      {
        RankedMutexLock lock(mu);
        sleep_micros(10);
      },
      "blocking-under-lock violation");
}

TEST(BlockingGuardDeathTest, ExplicitBlockingPointAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The hook fires on the annotation itself, not just on real sleeps — a
  // zero-latency configuration must not hide the discipline break.
  RankedMutex<LockRank::kCoord> mu{"canary_coord"};
  EXPECT_DEATH(
      {
        RankedMutexLock lock(mu);
        TFR_BLOCKING_POINT("test.blocking_op");
      },
      "blocking-under-lock violation");
}

TEST(BlockingGuardDeathTest, CondVarWaitHoldingForeignNoBlockLockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Waiting on a condvar releases its own mutex but keeps every other held
  // lock; holding a no-blocking lock (kQueue) across someone else's wait is
  // the same stall as sleeping with it.
  RankedMutex<LockRank::kQueue> held{"canary_held_queue"};
  RankedMutex<LockRank::kThreadingInternal> waited{"canary_waited"};
  CondVar cv;
  EXPECT_DEATH(
      {
        RankedMutexLock outer(held);
        MutexLock lock(waited);
        cv.wait_for(lock, /*micros=*/1000);
      },
      "blocking-under-lock violation");
}

TEST(BlockingGuardTest, BlockingUnderMayBlockRankIsAllowed) {
  // kRegion is may_block=true: flush/compact hold the region lock across
  // DFS writes by design. The hook must not fire.
  RankedMutex<LockRank::kRegion> mu{"ok_region"};
  RankedMutexLock lock(mu);
  TFR_BLOCKING_POINT("test.blocking_op");
  sleep_micros(1);
}

TEST(BlockingGuardTest, ScopedBlockingAllowedSuppresses) {
  // The documented escape hatch: a site that argues its case in a comment
  // wraps the call in ScopedBlockingAllowed, scoped as tightly as the call.
  RankedMutex<LockRank::kQueue> mu{"escape_queue"};
  RankedMutexLock lock(mu);
  {
    ScopedBlockingAllowed allow("test: proving the escape hatch works");
    TFR_BLOCKING_POINT("test.blocking_op");
    sleep_micros(1);
  }
}

TEST(BlockingGuardTest, SuppressionEndsWithScope) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RankedMutex<LockRank::kQueue> mu{"rearm_queue"};
  EXPECT_DEATH(
      {
        RankedMutexLock lock(mu);
        { ScopedBlockingAllowed allow("test: expires with this scope"); }
        TFR_BLOCKING_POINT("test.blocking_op");  // allowance is gone
      },
      "blocking-under-lock violation");
}

TEST(BlockingGuardTest, CondVarWaitOnOwnNoBlockMutexIsAllowed) {
  // A queue's own condvar wait releases the queue lock: that is the normal
  // producer/consumer pattern and must stay legal.
  RankedMutex<LockRank::kQueue> mu{"own_wait_queue"};
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_FALSE(cv.wait_for(lock, /*micros=*/1000));
}

TEST(BlockingGuardTest, BlockingWithNoLocksHeldIsAllowed) {
  EXPECT_EQ(lockrank::held_lock_count(), 0u);
  TFR_BLOCKING_POINT("test.blocking_op");
  sleep_micros(1);
}

TEST(BlockingGuardDeathTest, UnknownRankAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The runtime validator is the dynamic backstop of the generated table:
  // a mutex constructed with an ad-hoc rank value aborts on first acquire.
  Mutex bad{static_cast<LockRank>(42), "ad_hoc_rank"};
  EXPECT_DEATH({ MutexLock lock(bad); }, "rank not in the generated table");
}

#endif  // TFR_LOCK_RANK

}  // namespace
}  // namespace tfr
