#include "src/common/crc32.h"

#include <gtest/gtest.h>

namespace tfr {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / standard CRC-32C test vectors.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(""), 0x00000000u);
  EXPECT_EQ(crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32cTest, SensitiveToSingleBitFlips) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  const auto original = crc32c(data);
  for (std::size_t i = 0; i < data.size(); i += 5) {
    std::string flipped = data;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    EXPECT_NE(crc32c(flipped), original) << "flip at " << i;
  }
}

TEST(Crc32cTest, DeterministicAcrossCalls) {
  EXPECT_EQ(crc32c("payload"), crc32c("payload"));
}

}  // namespace
}  // namespace tfr
