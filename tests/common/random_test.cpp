#include "src/common/random.h"

#include <gtest/gtest.h>

#include <map>

namespace tfr {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, NextInInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.next_bool(0.3)) ++heads;
  }
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.02);
}

TEST(RngTest, ExponentialHasRoughlyRightMean) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / 100000.0, 5.0, 0.2);
}

TEST(UniformChooserTest, CoversRangeUniformly) {
  Rng rng(17);
  UniformChooser chooser(10);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[chooser.next(rng)];
  ASSERT_EQ(counts.size(), 10u);
  for (const auto& [k, n] : counts) EXPECT_NEAR(n, 10000, 700);
}

TEST(ZipfianChooserTest, IsSkewedTowardLowIndices) {
  Rng rng(19);
  ZipfianChooser chooser(10000, 0.99);
  int in_top_100 = 0;
  for (int i = 0; i < 100000; ++i) {
    if (chooser.next(rng) < 100) ++in_top_100;
  }
  // Under 0.99-zipf the top 1% of keys draws far more than 1% of accesses.
  EXPECT_GT(in_top_100, 30000);
}

TEST(ZipfianChooserTest, StaysInRange) {
  Rng rng(23);
  ZipfianChooser chooser(100);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(chooser.next(rng), 100u);
}

TEST(ScrambledZipfianChooserTest, SpreadsHotKeysAcrossKeyspace) {
  Rng rng(29);
  ScrambledZipfianChooser chooser(10000);
  // The hottest keys should no longer all be in the lowest indices.
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[chooser.next(rng)];
  auto hottest = counts.begin()->first;
  int best = 0;
  for (const auto& [k, n] : counts) {
    if (n > best) {
      best = n;
      hottest = k;
    }
  }
  EXPECT_LT(counts.size(), 10000u);  // skew: not all keys touched
  EXPECT_GT(best, 100);             // there IS a hot key
  (void)hottest;
}

TEST(Hash64Test, IsDeterministicAndMixes) {
  EXPECT_EQ(hash64(42), hash64(42));
  EXPECT_NE(hash64(1), hash64(2));
  // Avalanche sanity: flipping one input bit changes many output bits.
  const auto a = hash64(0x1000);
  const auto b = hash64(0x1001);
  int diff_bits = __builtin_popcountll(a ^ b);
  EXPECT_GT(diff_bits, 16);
}

TEST(RandomAsciiTest, LengthAndAlphabet) {
  Rng rng(31);
  const std::string s = random_ascii(rng, 64);
  ASSERT_EQ(s.size(), 64u);
  for (char c : s) EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
}

}  // namespace
}  // namespace tfr
