#include "src/common/queue.h"

#include <gtest/gtest.h>

#include <thread>

#include "src/common/random.h"

namespace tfr {
namespace {

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BlockingQueueTest, PopBlocksUntilPush) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    sleep_millis(10);
    q.push(42);
  });
  EXPECT_EQ(q.pop().value(), 42);
  producer.join();
}

TEST(BlockingQueueTest, CloseDrainsThenReturnsNullopt) {
  BlockingQueue<int> q;
  q.push(1);
  q.close();
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueueTest, PushAfterCloseIsIgnored) {
  BlockingQueue<int> q;
  q.close();
  q.push(1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueueTest, PopForTimesOut) {
  BlockingQueue<int> q;
  const Micros start = now_micros();
  EXPECT_FALSE(q.pop_for(millis(10)).has_value());
  EXPECT_GE(now_micros() - start, millis(5));
}

TEST(BlockingQueueTest, DrainTakesEverything) {
  BlockingQueue<int> q;
  for (int i = 0; i < 5; ++i) q.push(i);
  auto all = q.drain();
  EXPECT_EQ(all.size(), 5u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BlockingQueueTest, ManyProducersOneConsumer) {
  BlockingQueue<int> q;
  constexpr int kPerProducer = 1000;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&q] {
      for (int i = 0; i < kPerProducer; ++i) q.push(i);
    });
  }
  int received = 0;
  std::thread consumer([&] {
    while (received < 4 * kPerProducer) {
      if (q.pop()) ++received;
    }
  });
  for (auto& p : producers) p.join();
  consumer.join();
  EXPECT_EQ(received, 4 * kPerProducer);
}

TEST(SyncedMinQueueTest, HeadIsMinimumRegardlessOfInsertOrder) {
  SyncedMinQueue<int> q;
  q.push(5);
  q.push(1);
  q.push(3);
  EXPECT_EQ(q.head().value(), 1);
  EXPECT_EQ(q.pop()->first, 1);
  EXPECT_EQ(q.pop()->first, 3);
  EXPECT_EQ(q.pop()->first, 5);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(SyncedMinQueueTest, EmptyHeadIsNullopt) {
  SyncedMinQueue<int> q;
  EXPECT_FALSE(q.head().has_value());
  EXPECT_TRUE(q.empty());
}

TEST(SyncedMinQueueTest, PayloadTravelsWithKey) {
  SyncedMinQueue<int, std::string> q;
  q.push(2, "two");
  q.push(1, "one");
  auto first = q.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->second, "one");
}

TEST(SyncedMinQueueTest, PopThroughTakesPrefixOnly) {
  SyncedMinQueue<int> q;
  for (int v : {7, 2, 9, 4, 1}) q.push(v);
  auto taken = q.pop_through(4);
  ASSERT_EQ(taken.size(), 3u);
  EXPECT_EQ(taken[0].first, 1);
  EXPECT_EQ(taken[1].first, 2);
  EXPECT_EQ(taken[2].first, 4);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.head().value(), 7);
}

TEST(SyncedMinQueueTest, DuplicateKeysAllowed) {
  SyncedMinQueue<int> q;
  q.push(3);
  q.push(3);
  EXPECT_EQ(q.pop_through(3).size(), 2u);
}

// Property: for random interleavings of pushes, pop order is always sorted.
class SyncedMinQueuePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SyncedMinQueuePropertyTest, PopsAreAlwaysSorted) {
  Rng rng(GetParam());
  SyncedMinQueue<std::uint64_t> q;
  const int n = 200;
  for (int i = 0; i < n; ++i) q.push(rng.next_below(1000));
  std::uint64_t prev = 0;
  for (int i = 0; i < n; ++i) {
    auto item = q.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_GE(item->first, prev);
    prev = item->first;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyncedMinQueuePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace tfr
