#include "src/dfs/dfs.h"

#include <gtest/gtest.h>

namespace tfr {
namespace {

DfsConfig zero_latency(int nodes = 3, int repl = 2) {
  DfsConfig cfg;
  cfg.num_datanodes = nodes;
  cfg.replication = repl;
  cfg.block_size = 64;  // small blocks so tests exercise multi-block paths
  return cfg;
}

TEST(DfsTest, CreateAppendSyncRead) {
  Dfs dfs(zero_latency());
  ASSERT_TRUE(dfs.create("/f").is_ok());
  ASSERT_TRUE(dfs.append("/f", "hello ").is_ok());
  ASSERT_TRUE(dfs.append("/f", "world").is_ok());
  auto synced = dfs.sync("/f");
  ASSERT_TRUE(synced.is_ok());
  EXPECT_EQ(synced.value(), 11u);
  EXPECT_EQ(dfs.read_all("/f").value(), "hello world");
}

TEST(DfsTest, CreateExistingFails) {
  Dfs dfs(zero_latency());
  ASSERT_TRUE(dfs.create("/f").is_ok());
  EXPECT_EQ(dfs.create("/f").code(), Code::kAlreadyExists);
}

TEST(DfsTest, AppendToMissingFileFails) {
  Dfs dfs(zero_latency());
  EXPECT_TRUE(dfs.append("/missing", "x").is_not_found());
}

TEST(DfsTest, UnsyncedBytesAreNotReadable) {
  Dfs dfs(zero_latency());
  ASSERT_TRUE(dfs.create("/f").is_ok());
  ASSERT_TRUE(dfs.append("/f", "durable").is_ok());
  ASSERT_TRUE(dfs.sync("/f").is_ok());
  ASSERT_TRUE(dfs.append("/f", " volatile").is_ok());
  // Readers only see the durable prefix.
  EXPECT_EQ(dfs.read_all("/f").value(), "durable");
  EXPECT_EQ(dfs.durable_size("/f").value(), 7u);
}

TEST(DfsTest, WriterCrashDropsUnsyncedSuffix) {
  Dfs dfs(zero_latency());
  ASSERT_TRUE(dfs.create("/wal").is_ok());
  ASSERT_TRUE(dfs.append("/wal", "synced|").is_ok());
  ASSERT_TRUE(dfs.sync("/wal").is_ok());
  ASSERT_TRUE(dfs.append("/wal", "lost").is_ok());
  dfs.writer_crashed("/wal");
  EXPECT_EQ(dfs.read_all("/wal").value(), "synced|");
  // The file is closed: no more appends.
  EXPECT_EQ(dfs.append("/wal", "x").code(), Code::kClosed);
}

TEST(DfsTest, WriterCrashOnMissingFileIsHarmless) {
  Dfs dfs(zero_latency());
  dfs.writer_crashed("/never-existed");
}

TEST(DfsTest, SyncedDataSurvivesWriterCrash) {
  Dfs dfs(zero_latency());
  ASSERT_TRUE(dfs.write_file("/data", std::string(500, 'x')).is_ok());
  dfs.writer_crashed("/data");
  EXPECT_EQ(dfs.read_all("/data").value().size(), 500u);
}

TEST(DfsTest, RangeReads) {
  Dfs dfs(zero_latency());
  std::string content;
  for (int i = 0; i < 26; ++i) content += std::string(10, static_cast<char>('a' + i));
  ASSERT_TRUE(dfs.write_file("/f", content).is_ok());
  EXPECT_EQ(dfs.read("/f", 0, 10).value(), "aaaaaaaaaa");
  EXPECT_EQ(dfs.read("/f", 250, 10).value(), "zzzzzzzzzz");
  EXPECT_EQ(dfs.read("/f", 255, 100).value(), "zzzzz");  // truncates at EOF
  EXPECT_EQ(dfs.read("/f", 1000, 10).value(), "");       // past EOF
}

TEST(DfsTest, ListByPrefix) {
  Dfs dfs(zero_latency());
  ASSERT_TRUE(dfs.create("/data/r1/sf-1").is_ok());
  ASSERT_TRUE(dfs.create("/data/r1/sf-2").is_ok());
  ASSERT_TRUE(dfs.create("/data/r2/sf-1").is_ok());
  ASSERT_TRUE(dfs.create("/wal/rs1.log").is_ok());
  EXPECT_EQ(dfs.list("/data/r1/").size(), 2u);
  EXPECT_EQ(dfs.list("/data/").size(), 3u);
  EXPECT_EQ(dfs.list("/nothing/").size(), 0u);
}

TEST(DfsTest, RemoveAndExists) {
  Dfs dfs(zero_latency());
  ASSERT_TRUE(dfs.create("/f").is_ok());
  EXPECT_TRUE(dfs.exists("/f"));
  ASSERT_TRUE(dfs.remove("/f").is_ok());
  EXPECT_FALSE(dfs.exists("/f"));
  EXPECT_TRUE(dfs.remove("/f").is_not_found());
}

TEST(DfsTest, RemoveRefusedUnderFence) {
  Dfs dfs(zero_latency());
  ASSERT_TRUE(dfs.create("/wal/rs1.log.00000001").is_ok());
  dfs.fence_prefix("/wal/rs1.log");
  // A fenced writer (dead-to-the-cluster server) cannot erase the evidence
  // the WAL split needs.
  EXPECT_TRUE(dfs.remove("/wal/rs1.log.00000001").is_wrong_epoch());
  EXPECT_TRUE(dfs.exists("/wal/rs1.log.00000001"));
}

TEST(DfsTest, PurgePrefixReclaimsEvenFencedFiles) {
  Dfs dfs(zero_latency());
  ASSERT_TRUE(dfs.create("/wal/rs1.log.00000001").is_ok());
  ASSERT_TRUE(dfs.create("/wal/rs1.log.00000002").is_ok());
  ASSERT_TRUE(dfs.create("/wal/rs2.log.00000001").is_ok());
  dfs.fence_prefix("/wal/rs1.log");
  // The master's post-recovery purge is authoritative: it reclaims the dead
  // server's directory right through the fence it installed itself.
  EXPECT_EQ(dfs.purge_prefix("/wal/rs1.log."), 2u);
  EXPECT_FALSE(dfs.exists("/wal/rs1.log.00000001"));
  EXPECT_FALSE(dfs.exists("/wal/rs1.log.00000002"));
  EXPECT_TRUE(dfs.exists("/wal/rs2.log.00000001"));
  EXPECT_EQ(dfs.purge_prefix("/wal/rs1.log."), 0u);
}

TEST(DfsTest, SurvivesDatanodeFailureWithReplication) {
  Dfs dfs(zero_latency(/*nodes=*/3, /*repl=*/2));
  ASSERT_TRUE(dfs.write_file("/f", std::string(1000, 'd')).is_ok());
  ASSERT_TRUE(dfs.fail_datanode(0).is_ok());
  // Every block still has a live replica somewhere.
  EXPECT_EQ(dfs.read_all("/f").value().size(), 1000u);
}

TEST(DfsTest, UnreadableWhenAllReplicasDown) {
  Dfs dfs(zero_latency(/*nodes=*/2, /*repl=*/2));
  ASSERT_TRUE(dfs.write_file("/f", std::string(100, 'd')).is_ok());
  ASSERT_TRUE(dfs.fail_datanode(0).is_ok());
  ASSERT_TRUE(dfs.fail_datanode(1).is_ok());
  EXPECT_TRUE(dfs.read_all("/f").status().is_unavailable());
  ASSERT_TRUE(dfs.restart_datanode(0).is_ok());
  EXPECT_TRUE(dfs.read_all("/f").is_ok());
}

TEST(DfsTest, StatsCountSyncsAndReads) {
  Dfs dfs(zero_latency());
  ASSERT_TRUE(dfs.write_file("/f", std::string(200, 'x')).is_ok());
  (void)dfs.read_all("/f");
  const auto stats = dfs.stats();
  EXPECT_EQ(stats.syncs, 1);
  EXPECT_GE(stats.block_reads, 1);
  EXPECT_EQ(stats.bytes_synced, 200);
  EXPECT_EQ(stats.bytes_read, 200);
}

TEST(DfsTest, EmptySyncIsFreeNoop) {
  Dfs dfs(zero_latency());
  ASSERT_TRUE(dfs.create("/f").is_ok());
  ASSERT_TRUE(dfs.sync("/f").is_ok());
  ASSERT_TRUE(dfs.sync("/f").is_ok());
  EXPECT_EQ(dfs.stats().syncs, 0);  // nothing to sync, no charge
}

TEST(DfsTest, SyncLatencyIsCharged) {
  DfsConfig cfg = zero_latency();
  cfg.sync_latency = millis(5);
  Dfs dfs(cfg);
  ASSERT_TRUE(dfs.create("/f").is_ok());
  ASSERT_TRUE(dfs.append("/f", "x").is_ok());
  const Micros start = now_micros();
  ASSERT_TRUE(dfs.sync("/f").is_ok());
  EXPECT_GE(now_micros() - start, millis(4));
}

TEST(DfsTest, MultiBlockFilesPlaceAllBlocks) {
  Dfs dfs(zero_latency());  // 64-byte blocks
  ASSERT_TRUE(dfs.write_file("/big", std::string(1000, 'b')).is_ok());
  // 1000 bytes / 64-byte blocks = 16 blocks; reading everything touches all.
  const auto before = dfs.stats().block_reads;
  (void)dfs.read_all("/big");
  EXPECT_EQ(dfs.stats().block_reads - before, 16);
}

}  // namespace
}  // namespace tfr
