// Cluster/master level tests: table creation, routing, failover
// reassignment with WAL-split recovery — the store's own recovery, without
// the transactional layer on top.
#include "src/kv/cluster.h"

#include <gtest/gtest.h>

#include "src/kv/kv_client.h"

namespace tfr {
namespace {

ClusterConfig fast_cluster(int servers) {
  ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.coord_check_interval = millis(5);
  cfg.server.heartbeat_interval = millis(20);
  cfg.server.session_ttl = millis(100);
  cfg.server.wal_sync_interval = millis(10);
  return cfg;
}

WriteSet make_ws(Timestamp ts, std::vector<std::string> rows) {
  WriteSet ws;
  ws.txn_id = static_cast<std::uint64_t>(ts);
  ws.client_id = "c1";
  ws.commit_ts = ts;
  ws.table = "t";
  for (auto& r : rows) ws.mutations.push_back(Mutation{r, "c", "v" + std::to_string(ts), false});
  return ws;
}

TEST(ClusterTest, CreateTableSpreadsRegions) {
  Cluster cluster(fast_cluster(2));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {"g", "n", "t"}).is_ok());
  auto regions = cluster.master().table_regions("t");
  ASSERT_EQ(regions.size(), 4u);
  // Both servers host something.
  std::set<std::string> hosts;
  for (const auto& r : regions) hosts.insert(r.server_id);
  EXPECT_EQ(hosts.size(), 2u);
}

TEST(ClusterTest, DuplicateTableRejected) {
  Cluster cluster(fast_cluster(1));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {}).is_ok());
  EXPECT_EQ(cluster.master().create_table("t", {}).code(), Code::kAlreadyExists);
}

TEST(ClusterTest, LocateFindsTheRightRegion) {
  Cluster cluster(fast_cluster(2));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {"m"}).is_ok());
  auto low = cluster.master().locate("t", "abc").value();
  auto high = cluster.master().locate("t", "zzz").value();
  EXPECT_EQ(low.descriptor.start_key, "");
  EXPECT_EQ(high.descriptor.start_key, "m");
  EXPECT_TRUE(cluster.master().locate("nope", "x").status().is_not_found());
}

TEST(ClusterTest, KvClientWritesAndReadsThroughRouting) {
  Cluster cluster(fast_cluster(2));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {"m"}).is_ok());
  KvClient client(cluster.master(), millis(1));
  ASSERT_TRUE(client.flush_writeset(make_ws(5, {"apple", "zebra"})).is_ok());
  EXPECT_EQ(client.get("t", "apple", "c", 10).value()->value, "v5");
  EXPECT_EQ(client.get("t", "zebra", "c", 10).value()->value, "v5");
}

TEST(ClusterTest, FailoverReassignsRegionsAndRecoversSyncedData) {
  Cluster cluster(fast_cluster(2));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {"m"}).is_ok());
  KvClient client(cluster.master(), millis(1));
  ASSERT_TRUE(client.flush_writeset(make_ws(5, {"apple", "zebra"})).is_ok());
  // Sync both WALs so the data survives in the DFS.
  ASSERT_TRUE(cluster.server(0).persist_wal().is_ok());
  ASSERT_TRUE(cluster.server(1).persist_wal().is_ok());

  cluster.crash_server(0);
  // Detection + reassignment happen via coord expiry + master worker.
  const Micros deadline = now_micros() + seconds(5);
  while (cluster.master().live_servers().size() != 1 && now_micros() < deadline) {
    sleep_millis(5);
  }
  cluster.master().wait_for_idle();

  // All regions now live on the survivor, and the synced data is back.
  for (const auto& r : cluster.master().table_regions("t")) {
    EXPECT_EQ(r.server_id, cluster.server(1).id());
  }
  EXPECT_EQ(client.get("t", "apple", "c", 10).value()->value, "v5");
  EXPECT_EQ(client.get("t", "zebra", "c", 10).value()->value, "v5");
}

TEST(ClusterTest, UnsyncedDataIsLostWithoutTransactionalRecovery) {
  // This is the gap the paper's middleware exists to close: with HBase's
  // synchronous WAL flush disabled and no TM-log replay, a crash loses the
  // un-synced tail.
  ClusterConfig cfg = fast_cluster(2);
  cfg.server.wal_sync_interval = seconds(100);  // effectively never sync
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {}).is_ok());
  KvClient client(cluster.master(), millis(1));
  ASSERT_TRUE(client.flush_writeset(make_ws(5, {"apple"})).is_ok());

  const auto victim = cluster.master().locate("t", "apple").value().server_id;
  const int victim_idx = victim == "rs1" ? 0 : 1;
  cluster.crash_server(victim_idx);
  const Micros deadline = now_micros() + seconds(5);
  while (cluster.master().live_servers().size() != 1 && now_micros() < deadline) {
    sleep_millis(5);
  }
  cluster.master().wait_for_idle();

  EXPECT_FALSE(client.get("t", "apple", "c", 10).value().has_value());
}

TEST(ClusterTest, AddServerJoinsLive) {
  Cluster cluster(fast_cluster(1));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.add_server().is_ok());
  EXPECT_EQ(cluster.master().live_servers().size(), 2u);
  // New tables can land regions on the new server.
  ASSERT_TRUE(cluster.master().create_table("t", {"m"}).is_ok());
  std::set<std::string> hosts;
  for (const auto& r : cluster.master().table_regions("t")) hosts.insert(r.server_id);
  EXPECT_EQ(hosts.size(), 2u);
}

TEST(ClusterTest, CleanShutdownReassignsWithoutDataLoss) {
  Cluster cluster(fast_cluster(2));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {"m"}).is_ok());
  KvClient client(cluster.master(), millis(1));
  ASSERT_TRUE(client.flush_writeset(make_ws(5, {"apple", "zebra"})).is_ok());

  // Clean shutdown flushes memstores; no WAL sync needed beforehand.
  ASSERT_TRUE(cluster.server(0).shutdown().is_ok());
  cluster.master().wait_for_idle();

  EXPECT_EQ(client.get("t", "apple", "c", 10).value()->value, "v5");
  EXPECT_EQ(client.get("t", "zebra", "c", 10).value()->value, "v5");
}

}  // namespace
}  // namespace tfr
