// Storage integrity: a flipped bit in the DFS surfaces as Corruption at the
// WAL and store-file read paths instead of silently wrong data.
#include <gtest/gtest.h>

#include "src/kv/region.h"
#include "src/kv/wal.h"

namespace tfr {
namespace {

WalRecord record_for(Timestamp ts) {
  WalRecord r;
  r.region = "t,";
  r.commit_ts = ts;
  r.client_id = "c";
  r.cells.push_back(Cell{"row" + std::to_string(ts), "c", std::string(64, 'v'), ts, false});
  return r;
}

TEST(IntegrityTest, CorruptedWalRecordIsDetected) {
  Dfs dfs{DfsConfig{}};
  auto wal = Wal::create(dfs, "/wal/x.log").value();
  ASSERT_TRUE(wal->append(record_for(1)).is_ok());
  ASSERT_TRUE(wal->append(record_for(2)).is_ok());
  ASSERT_TRUE(wal->sync().is_ok());
  // Sanity: clean read works.
  ASSERT_EQ(Wal::read_records(dfs, "/wal/x.log").value().size(), 2u);
  // Flip a bit in the middle of the first record's payload.
  ASSERT_TRUE(dfs.corrupt_byte("/wal/x.log.00000001", 20).is_ok());
  EXPECT_EQ(Wal::read_records(dfs, "/wal/x.log").status().code(), Code::kCorruption);
}

TEST(IntegrityTest, CorruptedStoreFileBlockIsDetected) {
  Dfs dfs{DfsConfig{}};
  BlockCache cache(1 << 20);
  Region region(RegionDescriptor{"t", "", ""}, dfs, cache);
  ASSERT_TRUE(region.load_store_files().is_ok());
  region.set_state(RegionState::kOnline);
  ASSERT_TRUE(region.apply({Cell{"row", "c", std::string(64, 'v'), 1, false}}));
  ASSERT_TRUE(region.flush_memstore().is_ok());
  const auto paths = dfs.list(region.data_dir());
  ASSERT_EQ(paths.size(), 1u);
  // Clean read first (and then clear the cache so the next read hits disk).
  EXPECT_TRUE(region.get("row", "c", 10).value().has_value());
  cache.clear();
  ASSERT_TRUE(dfs.corrupt_byte(paths[0], 12).is_ok());
  EXPECT_EQ(region.get("row", "c", 10).status().code(), Code::kCorruption);
}

TEST(IntegrityTest, CorruptionInOneRecordDoesNotHideTornTailHandling) {
  // A torn tail (incomplete frame) is still tolerated — only a checksum
  // mismatch on a complete frame is an error.
  Dfs dfs{DfsConfig{}};
  auto wal = Wal::create(dfs, "/wal/y.log").value();
  ASSERT_TRUE(wal->append(record_for(1)).is_ok());
  ASSERT_TRUE(wal->sync().is_ok());
  ASSERT_TRUE(wal->append(record_for(2)).is_ok());  // never synced
  wal->crash();
  auto records = Wal::read_records(dfs, "/wal/y.log");
  ASSERT_TRUE(records.is_ok());
  EXPECT_EQ(records.value().size(), 1u);
}

}  // namespace
}  // namespace tfr
