// Compaction, region splitting, region moves, and rebalancing — the elastic
// housekeeping behaviours of §2.1 ("when the existing region servers become
// overloaded, new region servers can be added dynamically").
#include <gtest/gtest.h>

#include <set>

#include "src/kv/cluster.h"
#include "src/kv/kv_client.h"

namespace tfr {
namespace {

// --- Region-level compaction --------------------------------------------------

class CompactionTest : public ::testing::Test {
 protected:
  CompactionTest() : dfs_(DfsConfig{}), cache_(1 << 20) {}

  std::unique_ptr<Region> make_region() {
    auto region = std::make_unique<Region>(RegionDescriptor{"t", "", ""}, dfs_, cache_);
    EXPECT_TRUE(region->load_store_files().is_ok());
    region->set_state(RegionState::kOnline);
    return region;
  }

  Dfs dfs_;
  BlockCache cache_;
};

TEST_F(CompactionTest, MergesFilesIntoOne) {
  auto region = make_region();
  for (Timestamp ts = 1; ts <= 3; ++ts) {
    ASSERT_TRUE(region->apply({Cell{"r" + std::to_string(ts), "c", "v" + std::to_string(ts), ts, false}}));
    ASSERT_TRUE(region->flush_memstore().is_ok());
  }
  ASSERT_EQ(region->store_file_count(), 3u);
  ASSERT_TRUE(region->compact().is_ok());
  EXPECT_EQ(region->store_file_count(), 1u);
  for (Timestamp ts = 1; ts <= 3; ++ts) {
    EXPECT_EQ(region->get("r" + std::to_string(ts), "c", 100).value()->value,
              "v" + std::to_string(ts));
  }
}

TEST_F(CompactionTest, KeepsAllVersionsWithoutPruning) {
  auto region = make_region();
  ASSERT_TRUE(region->apply({Cell{"r", "c", "old", 1, false}}));
  ASSERT_TRUE(region->flush_memstore().is_ok());
  ASSERT_TRUE(region->apply({Cell{"r", "c", "new", 5, false}}));
  ASSERT_TRUE(region->flush_memstore().is_ok());
  ASSERT_TRUE(region->compact(kNoTimestamp).is_ok());
  EXPECT_EQ(region->get("r", "c", 2).value()->value, "old");
  EXPECT_EQ(region->get("r", "c", 10).value()->value, "new");
}

TEST_F(CompactionTest, PruningDropsUnreachableVersions) {
  auto region = make_region();
  ASSERT_TRUE(region->apply({Cell{"r", "c", "v1", 1, false}}));
  ASSERT_TRUE(region->flush_memstore().is_ok());
  ASSERT_TRUE(region->apply({Cell{"r", "c", "v2", 5, false}}));
  ASSERT_TRUE(region->flush_memstore().is_ok());
  ASSERT_TRUE(region->apply({Cell{"r", "c", "v3", 9, false}}));
  ASSERT_TRUE(region->flush_memstore().is_ok());
  // No snapshot below 6 is in use: v1 is unreachable (v2 is the survivor).
  ASSERT_TRUE(region->compact(/*prune_before_ts=*/6).is_ok());
  EXPECT_EQ(region->get("r", "c", 100).value()->value, "v3");
  EXPECT_EQ(region->get("r", "c", 6).value()->value, "v2");
  // v1 is gone; a (stale, no longer legal) read below the horizon misses.
  EXPECT_FALSE(region->get("r", "c", 1).value().has_value());
}

TEST_F(CompactionTest, PruningCollapsesDeletedColumns) {
  auto region = make_region();
  ASSERT_TRUE(region->apply({Cell{"dead", "c", "v", 1, false}}));
  ASSERT_TRUE(region->flush_memstore().is_ok());
  ASSERT_TRUE(region->apply({Cell{"dead", "c", "", 3, true}}));  // tombstone
  ASSERT_TRUE(region->flush_memstore().is_ok());
  ASSERT_TRUE(region->apply({Cell{"live", "c", "v", 4, false}}));
  ASSERT_TRUE(region->flush_memstore().is_ok());
  ASSERT_TRUE(region->compact(/*prune_before_ts=*/5).is_ok());
  EXPECT_FALSE(region->get("dead", "c", 100).value().has_value());
  EXPECT_TRUE(region->get("live", "c", 100).value().has_value());
  // The tombstone chain physically disappeared.
  auto cells = region->dump_cells().value();
  for (const auto& c : cells) EXPECT_NE(c.row, "dead");
}

TEST_F(CompactionTest, OldFilesRemovedFromDfs) {
  auto region = make_region();
  ASSERT_TRUE(region->apply({Cell{"a", "c", "v", 1, false}}));
  ASSERT_TRUE(region->flush_memstore().is_ok());
  ASSERT_TRUE(region->apply({Cell{"b", "c", "v", 2, false}}));
  ASSERT_TRUE(region->flush_memstore().is_ok());
  ASSERT_EQ(dfs_.list(region->data_dir()).size(), 2u);
  ASSERT_TRUE(region->compact().is_ok());
  EXPECT_EQ(dfs_.list(region->data_dir()).size(), 1u);
}

TEST_F(CompactionTest, SingleFileIsNoop) {
  auto region = make_region();
  ASSERT_TRUE(region->apply({Cell{"a", "c", "v", 1, false}}));
  ASSERT_TRUE(region->flush_memstore().is_ok());
  ASSERT_TRUE(region->compact().is_ok());
  EXPECT_EQ(region->store_file_count(), 1u);
}

TEST_F(CompactionTest, DumpCellsMergesMemstoreAndFiles) {
  auto region = make_region();
  ASSERT_TRUE(region->apply({Cell{"a", "c", "flushed", 1, false}}));
  ASSERT_TRUE(region->flush_memstore().is_ok());
  ASSERT_TRUE(region->apply({Cell{"b", "c", "buffered", 2, false}}));
  auto cells = region->dump_cells().value();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].row, "a");
  EXPECT_EQ(cells[1].row, "b");
}

// --- cluster-level split / move / rebalance -----------------------------------

ClusterConfig small_cluster(int servers) {
  ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.coord_check_interval = millis(5);
  cfg.server.heartbeat_interval = millis(20);
  cfg.server.session_ttl = millis(150);
  cfg.server.wal_sync_interval = millis(10);
  return cfg;
}

WriteSet rows_ws(Timestamp ts, int from, int to) {
  WriteSet ws;
  ws.commit_ts = ts;
  ws.client_id = "c";
  ws.table = "t";
  for (int i = from; i < to; ++i) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%05d", i);
    ws.mutations.push_back(Mutation{row, "c", "v" + std::to_string(i), false});
  }
  return ws;
}

TEST(RegionSplitTest, SplitPreservesDataAndRouting) {
  Cluster cluster(small_cluster(2));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {}).is_ok());
  KvClient client(cluster.master(), millis(1));
  ASSERT_TRUE(client.flush_writeset(rows_ws(1, 0, 100)).is_ok());

  ASSERT_TRUE(cluster.master().split_region("t,").is_ok());
  auto regions = cluster.master().table_regions("t");
  ASSERT_EQ(regions.size(), 2u);

  // Every row still readable; routing resolves to the right child.
  for (int i = 0; i < 100; i += 7) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%05d", i);
    auto v = client.get("t", row, "c", 100);
    ASSERT_TRUE(v.is_ok());
    ASSERT_TRUE(v.value().has_value()) << row;
    EXPECT_EQ(v.value()->value, "v" + std::to_string(i));
  }

  // Writes to both halves work.
  ASSERT_TRUE(client.flush_writeset(rows_ws(2, 0, 100)).is_ok());
  EXPECT_EQ(client.get("t", "row00000", "c", 100).value()->value, "v0");
}

TEST(RegionSplitTest, EmptyRegionRefusesToSplit) {
  Cluster cluster(small_cluster(1));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {}).is_ok());
  EXPECT_EQ(cluster.master().split_region("t,").code(), Code::kInvalidArgument);
}

TEST(RegionSplitTest, SplitChildrenSurviveCrash) {
  Cluster cluster(small_cluster(2));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {}).is_ok());
  KvClient client(cluster.master(), millis(1));
  ASSERT_TRUE(client.flush_writeset(rows_ws(1, 0, 100)).is_ok());
  ASSERT_TRUE(cluster.master().split_region("t,").is_ok());

  // Crash whichever server hosts the children (the split flushed both
  // children's data to store files, so nothing depends on the memstore).
  const auto victim = cluster.master().table_regions("t").front().server_id;
  cluster.crash_server(victim == "rs1" ? 0 : 1);
  const Micros deadline = now_micros() + seconds(10);
  while (cluster.master().live_servers().size() != 1 && now_micros() < deadline) {
    sleep_millis(5);
  }
  cluster.master().wait_for_idle();

  for (int i = 0; i < 100; i += 13) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%05d", i);
    auto v = client.get("t", row, "c", 100);
    ASSERT_TRUE(v.is_ok());
    ASSERT_TRUE(v.value().has_value()) << row;
  }
}

TEST(RegionMoveTest, MovePreservesDataAndUpdatesRouting) {
  Cluster cluster(small_cluster(2));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {}).is_ok());
  KvClient client(cluster.master(), millis(1));
  ASSERT_TRUE(client.flush_writeset(rows_ws(1, 0, 50)).is_ok());

  const auto before = cluster.master().table_regions("t").front();
  const std::string target = before.server_id == "rs1" ? "rs2" : "rs1";
  ASSERT_TRUE(cluster.master().move_region("t,", target).is_ok());
  EXPECT_EQ(cluster.master().table_regions("t").front().server_id, target);
  EXPECT_EQ(client.get("t", "row00010", "c", 100).value()->value, "v10");
  // Moving to where it already lives is a no-op.
  ASSERT_TRUE(cluster.master().move_region("t,", target).is_ok());
}

TEST(RebalanceTest, SpreadsRegionsAfterScaleOut) {
  Cluster cluster(small_cluster(1));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {"d", "h", "m", "r"}).is_ok());
  KvClient client(cluster.master(), millis(1));
  ASSERT_TRUE(client.flush_writeset(rows_ws(1, 0, 50)).is_ok());

  // All 5 regions sit on rs1; add a server and rebalance.
  ASSERT_TRUE(cluster.add_server().is_ok());
  auto moved = cluster.master().rebalance();
  ASSERT_TRUE(moved.is_ok());
  EXPECT_EQ(moved.value(), 2);

  std::map<std::string, int> counts;
  for (const auto& r : cluster.master().table_regions("t")) ++counts[r.server_id];
  EXPECT_EQ(counts.size(), 2u);
  for (const auto& [id, n] : counts) EXPECT_GE(n, 2);

  // Data intact after the moves.
  EXPECT_EQ(client.get("t", "row00000", "c", 100).value()->value, "v0");
  EXPECT_EQ(client.get("t", "row00049", "c", 100).value()->value, "v49");
  // A second rebalance has nothing to do.
  EXPECT_EQ(cluster.master().rebalance().value(), 0);
}

TEST(AutoCompactionTest, ServerCompactsWhenFilesPileUp) {
  ClusterConfig cfg = small_cluster(1);
  cfg.server.memstore_flush_bytes = 200;      // flush almost every write
  cfg.server.compaction_file_threshold = 4;   // compact early
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {}).is_ok());
  KvClient client(cluster.master(), millis(1));
  for (Timestamp ts = 1; ts <= 30; ++ts) {
    ASSERT_TRUE(client.flush_writeset(rows_ws(ts, static_cast<int>(ts) * 3,
                                              static_cast<int>(ts) * 3 + 3))
                    .is_ok());
  }
  auto region = cluster.server(0).region("t,");
  ASSERT_NE(region, nullptr);
  EXPECT_LE(region->store_file_count(), 6u) << "auto-compaction should bound the file count";
  EXPECT_EQ(client.get("t", "row00003", "c", 100).value()->value, "v3");
  EXPECT_EQ(client.get("t", "row00090", "c", 100).value()->value, "v90");
}

}  // namespace
}  // namespace tfr
