#include "src/kv/region.h"

#include <gtest/gtest.h>

namespace tfr {
namespace {

class RegionTest : public ::testing::Test {
 protected:
  RegionTest() : dfs_(DfsConfig{}), cache_(1 << 20) {}

  std::unique_ptr<Region> make_region(const std::string& start = "",
                                      const std::string& end = "") {
    auto region = std::make_unique<Region>(RegionDescriptor{"t", start, end}, dfs_, cache_);
    EXPECT_TRUE(region->load_store_files().is_ok());
    region->set_state(RegionState::kOnline);
    return region;
  }

  Dfs dfs_;
  BlockCache cache_;
};

TEST_F(RegionTest, ApplyAndGetFromMemstore) {
  auto region = make_region();
  ASSERT_TRUE(region->apply({Cell{"r", "c", "v", 5, false}}));
  auto cell = region->get("r", "c", 10);
  ASSERT_TRUE(cell.is_ok());
  ASSERT_TRUE(cell.value().has_value());
  EXPECT_EQ(cell.value()->value, "v");
}

TEST_F(RegionTest, FlushMovesDataToStoreFilesAndReadsStillWork) {
  auto region = make_region();
  ASSERT_TRUE(region->apply({Cell{"r1", "c", "v1", 5, false}, Cell{"r2", "c", "v2", 6, false}}));
  ASSERT_TRUE(region->flush_memstore().is_ok());
  EXPECT_EQ(region->memstore_bytes(), 0u);
  EXPECT_EQ(region->store_file_count(), 1u);
  EXPECT_EQ(region->get("r1", "c", 10).value()->value, "v1");
  EXPECT_EQ(region->get("r2", "c", 10).value()->value, "v2");
}

TEST_F(RegionTest, MemstoreShadowsOlderStoreFileVersions) {
  auto region = make_region();
  ASSERT_TRUE(region->apply({Cell{"r", "c", "old", 5, false}}));
  ASSERT_TRUE(region->flush_memstore().is_ok());
  ASSERT_TRUE(region->apply({Cell{"r", "c", "new", 9, false}}));
  EXPECT_EQ(region->get("r", "c", 10).value()->value, "new");
  EXPECT_EQ(region->get("r", "c", 6).value()->value, "old");
}

TEST_F(RegionTest, NewerStoreFileWinsOverOlder) {
  auto region = make_region();
  ASSERT_TRUE(region->apply({Cell{"r", "c", "first", 5, false}}));
  ASSERT_TRUE(region->flush_memstore().is_ok());
  ASSERT_TRUE(region->apply({Cell{"r", "c", "second", 8, false}}));
  ASSERT_TRUE(region->flush_memstore().is_ok());
  EXPECT_EQ(region->store_file_count(), 2u);
  EXPECT_EQ(region->get("r", "c", 10).value()->value, "second");
}

TEST_F(RegionTest, GetDuplicateCellAcrossFiles) {
  // Idempotent replay can land the same (row, column, ts) cell in two store
  // files. Region::get skips any remaining file with max_ts() <= best->ts;
  // that is safe exactly because such duplicates are byte-identical — this
  // pins the behaviour the skip predicate's comment relies on.
  auto region = make_region();
  const Cell dup{"r", "c", "v-replayed", 7, false};
  ASSERT_TRUE(region->apply({dup}));
  ASSERT_TRUE(region->flush_memstore().is_ok());
  ASSERT_TRUE(region->apply({dup}));  // replayed write-set: the identical cell again
  ASSERT_TRUE(region->flush_memstore().is_ok());
  ASSERT_EQ(region->store_file_count(), 2u);
  EXPECT_EQ(region->get("r", "c", 10).value()->value, "v-replayed");
  EXPECT_EQ(region->get("r", "c", 7).value()->value, "v-replayed");
  // The duplicate collapses to one visible cell in scans too.
  auto cells = region->scan("", "", 10, 0);
  ASSERT_TRUE(cells.is_ok());
  ASSERT_EQ(cells.value().size(), 1u);
  // A strictly newer version in a third file still wins over both copies.
  ASSERT_TRUE(region->apply({Cell{"r", "c", "v-new", 9, false}}));
  ASSERT_TRUE(region->flush_memstore().is_ok());
  EXPECT_EQ(region->get("r", "c", 10).value()->value, "v-new");
  EXPECT_EQ(region->get("r", "c", 8).value()->value, "v-replayed");
}

TEST_F(RegionTest, TombstoneHidesValueAcrossFlush) {
  auto region = make_region();
  ASSERT_TRUE(region->apply({Cell{"r", "c", "v", 5, false}}));
  ASSERT_TRUE(region->flush_memstore().is_ok());
  ASSERT_TRUE(region->apply({Cell{"r", "c", "", 8, true}}));
  EXPECT_FALSE(region->get("r", "c", 10).value().has_value());
  EXPECT_TRUE(region->get("r", "c", 6).value().has_value());
}

TEST_F(RegionTest, EmptyFlushIsNoop) {
  auto region = make_region();
  ASSERT_TRUE(region->flush_memstore().is_ok());
  EXPECT_EQ(region->store_file_count(), 0u);
}

TEST_F(RegionTest, ScanMergesMemstoreAndFiles) {
  auto region = make_region();
  ASSERT_TRUE(region->apply({Cell{"a", "c", "va-old", 1, false}, Cell{"b", "c", "vb", 2, false}}));
  ASSERT_TRUE(region->flush_memstore().is_ok());
  ASSERT_TRUE(region->apply({Cell{"a", "c", "va-new", 5, false}, Cell{"c", "c", "vc", 6, false}}));
  auto cells = region->scan("", "", 10, 0).value();
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0].value, "va-new");
  EXPECT_EQ(cells[1].value, "vb");
  EXPECT_EQ(cells[2].value, "vc");
}

TEST_F(RegionTest, ScanRespectsLimit) {
  auto region = make_region();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(region->apply({Cell{"row" + std::to_string(i), "c", "v", 1, false}}));
  }
  EXPECT_EQ(region->scan("", "", 10, 3).value().size(), 3u);
}

TEST_F(RegionTest, ReopenedRegionFindsItsStoreFiles) {
  const RegionDescriptor desc{"t", "", ""};
  {
    Region first(desc, dfs_, cache_);
    ASSERT_TRUE(first.load_store_files().is_ok());
    ASSERT_TRUE(first.apply({Cell{"r", "c", "persisted", 3, false}}));
    ASSERT_TRUE(first.flush_memstore().is_ok());
  }
  // A different server opens the region: store files come back from the DFS.
  Region second(desc, dfs_, cache_);
  ASSERT_TRUE(second.load_store_files().is_ok());
  EXPECT_EQ(second.store_file_count(), 1u);
  EXPECT_EQ(second.get("r", "c", 10).value()->value, "persisted");
  // And its next flush does not clobber the old file.
  ASSERT_TRUE(second.apply({Cell{"r2", "c", "more", 4, false}}));
  ASSERT_TRUE(second.flush_memstore().is_ok());
  EXPECT_EQ(second.store_file_count(), 2u);
}

TEST_F(RegionTest, StateTransitions) {
  auto region = make_region();
  EXPECT_EQ(region->state(), RegionState::kOnline);
  region->set_state(RegionState::kGated);
  EXPECT_EQ(region_state_name(region->state()), "gated");
}

TEST_F(RegionTest, DescriptorContains) {
  RegionDescriptor d{"t", "b", "m"};
  EXPECT_TRUE(d.contains("b"));
  EXPECT_TRUE(d.contains("cxx"));
  EXPECT_FALSE(d.contains("m"));
  EXPECT_FALSE(d.contains("a"));
  RegionDescriptor open_end{"t", "m", ""};
  EXPECT_TRUE(open_end.contains("zzz"));
}

}  // namespace
}  // namespace tfr
