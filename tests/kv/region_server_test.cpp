#include "src/kv/region_server.h"

#include <gtest/gtest.h>

#include "src/common/fault.h"
#include "src/common/metrics.h"

namespace tfr {
namespace {

RegionServerConfig quiet_config() {
  RegionServerConfig cfg;
  cfg.heartbeat_interval = seconds(10);  // tests drive heartbeats manually
  cfg.session_ttl = seconds(60);
  cfg.wal_sync_interval = seconds(10);
  return cfg;
}

ApplyRequest make_request(Timestamp ts, std::vector<std::string> rows,
                          const std::string& table = "t") {
  ApplyRequest req;
  req.txn_id = static_cast<std::uint64_t>(ts);
  req.client_id = "c1";
  req.commit_ts = ts;
  req.table = table;
  for (auto& r : rows) req.mutations.push_back(Mutation{r, "c", "v" + std::to_string(ts), false});
  return req;
}

class RegionServerTest : public ::testing::Test {
 protected:
  RegionServerTest()
      : dfs_(DfsConfig{}), coord_(seconds(10)), server_("rs1", dfs_, coord_, quiet_config()) {}

  void SetUp() override {
    ASSERT_TRUE(server_.start().is_ok());
    ASSERT_TRUE(server_.open_region(RegionDescriptor{"t", "", ""}, {}).is_ok());
  }

  Dfs dfs_;
  Coord coord_;
  RegionServer server_;
};

TEST_F(RegionServerTest, ApplyThenRead) {
  ASSERT_TRUE(server_.apply_writeset(make_request(5, {"r1", "r2"})).is_ok());
  auto cell = server_.get("t", "r1", "c", 10);
  ASSERT_TRUE(cell.is_ok());
  EXPECT_EQ(cell.value()->value, "v5");
}

TEST_F(RegionServerTest, ApplyAppendsToWal) {
  ASSERT_TRUE(server_.apply_writeset(make_request(5, {"r1"})).is_ok());
  EXPECT_EQ(server_.wal().appended_seq(), 1u);
  EXPECT_EQ(server_.wal().synced_seq(), 0u);  // async mode: not yet durable
  ASSERT_TRUE(server_.persist_wal().is_ok());
  EXPECT_EQ(server_.wal().synced_seq(), 1u);
}

TEST_F(RegionServerTest, SyncWalOnWriteModePersistsImmediately) {
  RegionServerConfig cfg = quiet_config();
  cfg.sync_wal_on_write = true;
  RegionServer sync_server("rs-sync", dfs_, coord_, cfg);
  ASSERT_TRUE(sync_server.start().is_ok());
  ASSERT_TRUE(sync_server.open_region(RegionDescriptor{"t2", "", ""}, {}).is_ok());
  auto req = make_request(5, {"r1"}, "t2");
  ASSERT_TRUE(sync_server.apply_writeset(req).is_ok());
  EXPECT_EQ(sync_server.wal().synced_seq(), 1u);
  ASSERT_TRUE(sync_server.shutdown().is_ok());
}

TEST_F(RegionServerTest, RowNotHostedIsUnavailable) {
  auto status = server_.apply_writeset(make_request(5, {"r1"}, "unknown_table"));
  EXPECT_TRUE(status.is_unavailable());
  EXPECT_TRUE(server_.get("unknown_table", "r", "c", 10).status().is_unavailable());
}

TEST_F(RegionServerTest, GatedRegionRejectsNormalTrafficButAdmitsReplay) {
  auto region = server_.region("t,");
  ASSERT_NE(region, nullptr);
  region->set_state(RegionState::kGated);

  EXPECT_TRUE(server_.apply_writeset(make_request(5, {"r1"})).is_unavailable());
  EXPECT_TRUE(server_.get("t", "r1", "c", 10).status().is_unavailable());

  auto replay = make_request(5, {"r1"});
  replay.recovery_replay = true;
  EXPECT_TRUE(server_.apply_writeset(replay).is_ok());

  region->set_state(RegionState::kOnline);
  EXPECT_EQ(server_.get("t", "r1", "c", 10).value()->value, "v5");
}

TEST_F(RegionServerTest, CrashLosesMemstoreAndUnsyncedWal) {
  ASSERT_TRUE(server_.apply_writeset(make_request(5, {"r1"})).is_ok());
  server_.crash();
  EXPECT_FALSE(server_.alive());
  EXPECT_TRUE(server_.apply_writeset(make_request(6, {"r2"})).is_unavailable());
  EXPECT_TRUE(server_.get("t", "r1", "c", 10).status().is_unavailable());
  // The WAL on the DFS lost the unsynced record.
  EXPECT_TRUE(Wal::read_records(dfs_, server_.wal_path()).value().empty());
}

TEST_F(RegionServerTest, CleanShutdownFlushesAndUnregisters) {
  ASSERT_TRUE(server_.apply_writeset(make_request(5, {"r1"})).is_ok());
  ASSERT_TRUE(server_.shutdown().is_ok());
  // Session closed cleanly.
  EXPECT_FALSE(coord_.session("servers", "rs1").has_value());
  // Data reached a store file in the DFS.
  EXPECT_FALSE(dfs_.list("/data/").empty());
}

TEST_F(RegionServerTest, OpenRegionReplaysRecoveredEdits) {
  std::vector<WalRecord> edits;
  WalRecord edit;
  edit.region = "t2,";
  edit.commit_ts = 3;
  edit.cells.push_back(Cell{"rx", "c", "recovered", 3, false});
  edits.push_back(edit);
  ASSERT_TRUE(server_.open_region(RegionDescriptor{"t2", "", ""}, edits).is_ok());
  EXPECT_EQ(server_.get("t2", "rx", "c", 10).value()->value, "recovered");
  // The edits were re-WAL'd and synced on this server.
  EXPECT_GE(server_.wal().synced_seq(), 1u);
}

TEST_F(RegionServerTest, RegionGateRunsBeforeOnline) {
  std::string gated_region;
  RegionState state_in_gate = RegionState::kOffline;
  server_.set_region_gate([&](const std::string& region, const std::string& server_id) {
    gated_region = region;
    EXPECT_EQ(server_id, "rs1");
    state_in_gate = server_.region(region)->state();
  });
  ASSERT_TRUE(server_.open_region(RegionDescriptor{"t3", "", ""}, {}).is_ok());
  EXPECT_EQ(gated_region, "t3,");
  EXPECT_EQ(state_in_gate, RegionState::kGated);
  EXPECT_EQ(server_.region("t3,")->state(), RegionState::kOnline);
}

TEST_F(RegionServerTest, WritesetObserverSeesCommitTsAndPiggyback) {
  Timestamp seen_ts = 0;
  std::optional<Timestamp> seen_piggyback;
  server_.set_writeset_observer([&](Timestamp ts, std::optional<Timestamp> piggyback) {
    seen_ts = ts;
    seen_piggyback = piggyback;
  });
  auto req = make_request(9, {"r1"});
  req.piggyback_tp = 4;
  req.recovery_replay = true;
  ASSERT_TRUE(server_.apply_writeset(req).is_ok());
  EXPECT_EQ(seen_ts, 9);
  ASSERT_TRUE(seen_piggyback.has_value());
  EXPECT_EQ(*seen_piggyback, 4);
}

TEST_F(RegionServerTest, PreHeartbeatHookSuppliesPayload) {
  server_.set_pre_heartbeat_hook([] { return Timestamp{77}; });
  server_.heartbeat_now();
  EXPECT_EQ(coord_.session("servers", "rs1")->payload, 77);
}

TEST_F(RegionServerTest, MultiRegionApplyIsGroupedByRegion) {
  ASSERT_TRUE(server_.close_region("t,").is_ok());
  ASSERT_TRUE(server_.open_region(RegionDescriptor{"t", "", "m"}, {}).is_ok());
  ASSERT_TRUE(server_.open_region(RegionDescriptor{"t", "m", ""}, {}).is_ok());
  ASSERT_TRUE(server_.apply_writeset(make_request(5, {"a", "z"})).is_ok());
  // One WAL record per region touched.
  ASSERT_TRUE(server_.persist_wal().is_ok());
  auto grouped = Wal::split(dfs_, server_.wal_path()).value();
  EXPECT_EQ(grouped.size(), 2u);
  EXPECT_EQ(server_.get("t", "a", "c", 10).value()->value, "v5");
  EXPECT_EQ(server_.get("t", "z", "c", 10).value()->value, "v5");
}

TEST_F(RegionServerTest, MemstoreFlushTriggeredBySize) {
  RegionServerConfig cfg = quiet_config();
  cfg.memstore_flush_bytes = 200;  // tiny threshold
  RegionServer small("rs-small", dfs_, coord_, cfg);
  ASSERT_TRUE(small.start().is_ok());
  ASSERT_TRUE(small.open_region(RegionDescriptor{"t4", "", ""}, {}).is_ok());
  for (Timestamp ts = 1; ts <= 10; ++ts) {
    ASSERT_TRUE(small.apply_writeset(make_request(ts, {"row" + std::to_string(ts)}, "t4"))
                    .is_ok());
  }
  EXPECT_GE(small.region("t4,")->store_file_count(), 1u);
  EXPECT_EQ(small.get("t4", "row1", "c", 100).value()->value, "v1");
  ASSERT_TRUE(small.shutdown().is_ok());
}

TEST_F(RegionServerTest, ScanAcrossMemstoreAndFiles) {
  ASSERT_TRUE(server_.apply_writeset(make_request(5, {"a", "b", "d"})).is_ok());
  ASSERT_TRUE(server_.region("t,")->flush_memstore().is_ok());
  ASSERT_TRUE(server_.apply_writeset(make_request(6, {"c"})).is_ok());
  auto cells = server_.scan("t", "a", "e", 10, 0).value();
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[2].row, "c");
  EXPECT_EQ(cells[2].value, "v6");
}

// Regression for the swallowed-error bug in the background WAL syncer: a
// failed sync() must be counted and logged, and the server must stay alive
// and retry the same frontier on the next tick (a transient DFS error is a
// durability regression, not a reason to die).
TEST_F(RegionServerTest, BackgroundWalSyncFailureIsCountedAndRetried) {
  ASSERT_TRUE(server_.apply_writeset(make_request(5, {"r1"})).is_ok());
  ASSERT_EQ(server_.wal().synced_seq(), 0u);  // async mode: nothing durable yet

  FaultInjector fault;
  FaultRule rule;
  rule.op = FaultOp::kDfsSync;
  rule.target = "/wal/";
  rule.error_probability = 1.0;
  fault.add_rule(rule);
  fault.set_enabled(true);
  dfs_.set_fault_injector(&fault);

  const std::int64_t before = global_counter("kv.wal_sync_failures").get();
  server_.wal_sync_now();
  EXPECT_EQ(global_counter("kv.wal_sync_failures").get(), before + 1);
  EXPECT_TRUE(server_.alive());               // transient failure: keep serving
  EXPECT_EQ(server_.wal().synced_seq(), 0u);  // the ack-durability gap persists

  // Heal the DFS: the next tick must retry and close the gap.
  dfs_.set_fault_injector(nullptr);
  server_.wal_sync_now();
  EXPECT_EQ(server_.wal().synced_seq(), 1u);
  EXPECT_TRUE(server_.alive());
}

// Regression for the other half of the same bug: a WrongEpoch from the
// background sync means the master fenced our WAL and recovery owns it —
// the server must converge to not-alive instead of acking writes that can
// never become durable.
TEST_F(RegionServerTest, BackgroundWalSyncFencedStopsService) {
  ASSERT_TRUE(server_.apply_writeset(make_request(5, {"r1"})).is_ok());
  dfs_.fence_prefix("/wal/rs1.log");

  const std::int64_t before = global_counter("kv.wal_sync_failures").get();
  server_.wal_sync_now();
  EXPECT_EQ(global_counter("kv.wal_sync_failures").get(), before + 1);

  // crash() runs on the delegated terminator thread; wait for convergence.
  const Micros deadline = now_micros() + seconds(5);
  while (server_.alive() && now_micros() < deadline) sleep_millis(2);
  EXPECT_FALSE(server_.alive());
}

// Regression for set_heartbeat_interval silently ignoring the coord
// update_ttl result: resizing the failure-detection window of a dead
// session must fail loudly, not leave a zombie heartbeating at the new
// cadence.
TEST_F(RegionServerTest, SetHeartbeatIntervalFailsWithoutLiveSession) {
  EXPECT_TRUE(server_.set_heartbeat_interval(seconds(20)).is_ok());
  ASSERT_TRUE(coord_.close_session("servers", "rs1").is_ok());
  EXPECT_FALSE(server_.set_heartbeat_interval(seconds(5)).is_ok());
}

}  // namespace
}  // namespace tfr
