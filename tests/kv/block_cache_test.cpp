#include "src/kv/block_cache.h"

#include <gtest/gtest.h>

#include <thread>

namespace tfr {
namespace {

BlockPtr block_of(std::size_t bytes) {
  auto b = std::make_shared<CacheBlock>();
  b->byte_size = bytes;
  return b;
}

TEST(BlockCacheTest, MissLoadsThenHits) {
  BlockCache cache(1024);
  int loads = 0;
  auto loader = [&]() -> Result<BlockPtr> {
    ++loads;
    return block_of(100);
  };
  ASSERT_TRUE(cache.get_or_load("k", loader).is_ok());
  ASSERT_TRUE(cache.get_or_load("k", loader).is_ok());
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(BlockCacheTest, LoaderErrorPropagates) {
  BlockCache cache(1024);
  auto result = cache.get_or_load("k", []() -> Result<BlockPtr> {
    return Status::unavailable("dfs down");
  });
  EXPECT_TRUE(result.status().is_unavailable());
  // Nothing cached; a later successful load works.
  ASSERT_TRUE(cache.get_or_load("k", [] { return Result<BlockPtr>(block_of(1)); }).is_ok());
}

TEST(BlockCacheTest, EvictsLeastRecentlyUsed) {
  BlockCache cache(250);
  auto load100 = [] { return Result<BlockPtr>(block_of(100)); };
  ASSERT_TRUE(cache.get_or_load("a", load100).is_ok());
  ASSERT_TRUE(cache.get_or_load("b", load100).is_ok());
  ASSERT_TRUE(cache.get_or_load("a", load100).is_ok());  // touch a: b is LRU now
  ASSERT_TRUE(cache.get_or_load("c", load100).is_ok());  // evicts b
  EXPECT_EQ(cache.stats().evictions, 1);
  int loads = 0;
  ASSERT_TRUE(cache.get_or_load("a", [&] {
    ++loads;
    return Result<BlockPtr>(block_of(100));
  }).is_ok());
  EXPECT_EQ(loads, 0);  // a survived
}

TEST(BlockCacheTest, BytesTracked) {
  BlockCache cache(10000);
  ASSERT_TRUE(cache.get_or_load("a", [] { return Result<BlockPtr>(block_of(123)); }).is_ok());
  ASSERT_TRUE(cache.get_or_load("b", [] { return Result<BlockPtr>(block_of(77)); }).is_ok());
  EXPECT_EQ(cache.stats().bytes, 200);
}

TEST(BlockCacheTest, InvalidatePrefix) {
  BlockCache cache(10000);
  auto load = [] { return Result<BlockPtr>(block_of(10)); };
  ASSERT_TRUE(cache.get_or_load("/sf1#0", load).is_ok());
  ASSERT_TRUE(cache.get_or_load("/sf1#1", load).is_ok());
  ASSERT_TRUE(cache.get_or_load("/sf2#0", load).is_ok());
  cache.invalidate_prefix("/sf1#");
  EXPECT_EQ(cache.stats().bytes, 10);
  int loads = 0;
  ASSERT_TRUE(cache.get_or_load("/sf1#0", [&] {
    ++loads;
    return Result<BlockPtr>(block_of(10));
  }).is_ok());
  EXPECT_EQ(loads, 1);  // had to reload
}

TEST(BlockCacheTest, ClearEmptiesEverything) {
  BlockCache cache(10000);
  ASSERT_TRUE(cache.get_or_load("a", [] { return Result<BlockPtr>(block_of(10)); }).is_ok());
  cache.clear();
  EXPECT_EQ(cache.stats().bytes, 0);
}

TEST(BlockCacheTest, ConcurrentAccessIsSafe) {
  BlockCache cache(1 << 16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const std::string key = "k" + std::to_string((i + t) % 50);
        ASSERT_TRUE(cache.get_or_load(key, [] {
          return Result<BlockPtr>(block_of(64));
        }).is_ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(cache.stats().bytes, static_cast<std::int64_t>(cache.capacity()));
}

TEST(BlockCacheTest, OversizedBlockDoesNotWedgeCache) {
  BlockCache cache(100);
  ASSERT_TRUE(cache.get_or_load("big", [] { return Result<BlockPtr>(block_of(1000)); }).is_ok());
  // Eviction brings usage back under capacity (the big block itself goes).
  EXPECT_LE(cache.stats().bytes, 100);
}

}  // namespace
}  // namespace tfr
