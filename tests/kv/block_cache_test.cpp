#include "src/kv/block_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/common/clock.h"

namespace tfr {
namespace {

BlockPtr block_of(std::size_t bytes) {
  auto b = std::make_shared<CacheBlock>();
  b->byte_size = bytes;
  return b;
}

// LRU-semantics tests pin num_shards=1: with striping, eviction order is a
// per-stripe property and tiny test capacities would be split 16 ways.

TEST(BlockCacheTest, MissLoadsThenHits) {
  BlockCache cache(1024, /*num_shards=*/1);
  int loads = 0;
  auto loader = [&]() -> Result<BlockPtr> {
    ++loads;
    return block_of(100);
  };
  ASSERT_TRUE(cache.get_or_load("k", loader).is_ok());
  ASSERT_TRUE(cache.get_or_load("k", loader).is_ok());
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(BlockCacheTest, LoaderErrorPropagates) {
  BlockCache cache(1024, 1);
  auto result = cache.get_or_load("k", []() -> Result<BlockPtr> {
    return Status::unavailable("dfs down");
  });
  EXPECT_TRUE(result.status().is_unavailable());
  // Nothing cached; a later successful load works.
  ASSERT_TRUE(cache.get_or_load("k", [] { return Result<BlockPtr>(block_of(1)); }).is_ok());
}

TEST(BlockCacheTest, EvictsLeastRecentlyUsed) {
  BlockCache cache(250, 1);
  auto load100 = [] { return Result<BlockPtr>(block_of(100)); };
  ASSERT_TRUE(cache.get_or_load("a", load100).is_ok());
  ASSERT_TRUE(cache.get_or_load("b", load100).is_ok());
  ASSERT_TRUE(cache.get_or_load("a", load100).is_ok());  // touch a: b is LRU now
  ASSERT_TRUE(cache.get_or_load("c", load100).is_ok());  // evicts b
  EXPECT_EQ(cache.stats().evictions, 1);
  int loads = 0;
  ASSERT_TRUE(cache.get_or_load("a", [&] {
    ++loads;
    return Result<BlockPtr>(block_of(100));
  }).is_ok());
  EXPECT_EQ(loads, 0);  // a survived
}

TEST(BlockCacheTest, BytesTracked) {
  BlockCache cache(10000, 1);
  ASSERT_TRUE(cache.get_or_load("a", [] { return Result<BlockPtr>(block_of(123)); }).is_ok());
  ASSERT_TRUE(cache.get_or_load("b", [] { return Result<BlockPtr>(block_of(77)); }).is_ok());
  EXPECT_EQ(cache.stats().bytes, 200);
}

TEST(BlockCacheTest, InvalidatePrefix) {
  BlockCache cache(10000);  // default sharding: invalidation spans stripes
  auto load = [] { return Result<BlockPtr>(block_of(10)); };
  ASSERT_TRUE(cache.get_or_load("/sf1#0", load).is_ok());
  ASSERT_TRUE(cache.get_or_load("/sf1#1", load).is_ok());
  ASSERT_TRUE(cache.get_or_load("/sf2#0", load).is_ok());
  cache.invalidate_prefix("/sf1#");
  EXPECT_EQ(cache.stats().bytes, 10);
  int loads = 0;
  ASSERT_TRUE(cache.get_or_load("/sf1#0", [&] {
    ++loads;
    return Result<BlockPtr>(block_of(10));
  }).is_ok());
  EXPECT_EQ(loads, 1);  // had to reload
}

TEST(BlockCacheTest, ClearEmptiesEverything) {
  BlockCache cache(10000);
  ASSERT_TRUE(cache.get_or_load("a", [] { return Result<BlockPtr>(block_of(10)); }).is_ok());
  cache.clear();
  EXPECT_EQ(cache.stats().bytes, 0);
}

TEST(BlockCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(BlockCache(1 << 20).shard_count(), 16u);  // default
  EXPECT_EQ(BlockCache(1 << 20, 1).shard_count(), 1u);
  EXPECT_EQ(BlockCache(1 << 20, 5).shard_count(), 8u);
  EXPECT_EQ(BlockCache(1 << 20, 64).shard_count(), 64u);
}

TEST(BlockCacheTest, ConcurrentAccessIsSafe) {
  BlockCache cache(1 << 16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const std::string key = "k" + std::to_string((i + t) % 50);
        ASSERT_TRUE(cache.get_or_load(key, [] {
          return Result<BlockPtr>(block_of(64));
        }).is_ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(cache.stats().bytes, static_cast<std::int64_t>(cache.capacity()));
}

TEST(BlockCacheTest, OversizedBlockDoesNotWedgeCache) {
  BlockCache cache(100, 1);
  ASSERT_TRUE(cache.get_or_load("big", [] { return Result<BlockPtr>(block_of(1000)); }).is_ok());
  // Eviction brings usage back under capacity (the big block itself goes).
  EXPECT_LE(cache.stats().bytes, 100);
}

// --- single-flight miss loading ------------------------------------------------

TEST(BlockCacheTest, ConcurrentMissesOnOneKeyLoadOnce) {
  BlockCache cache(1 << 20);
  constexpr int kThreads = 8;
  std::atomic<int> loads{0};
  std::atomic<int> in_loader{0};
  auto slow_loader = [&]() -> Result<BlockPtr> {
    in_loader.fetch_add(1);
    loads.fetch_add(1);
    sleep_micros(millis(30));  // hold the load open so every thread misses
    in_loader.fetch_sub(1);
    return block_of(64);
  };
  std::vector<std::thread> threads;
  std::vector<BlockPtr> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto r = cache.get_or_load("hot", slow_loader);
      ASSERT_TRUE(r.is_ok());
      EXPECT_EQ(in_loader.load(), 0);  // no loader still running once we have a block
      results[t] = r.value();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(loads.load(), 1);  // exactly one loader despite K concurrent misses
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(results[t], results[0]);  // shared result
  EXPECT_GE(cache.stats().single_flight_waits, 1);
  EXPECT_EQ(cache.stats().misses, 1);  // waiters hit after the wait, only the loader missed
}

TEST(BlockCacheTest, FailedLoadHandsOffToNextWaiter) {
  BlockCache cache(1 << 20);
  std::atomic<int> attempts{0};
  auto flaky_loader = [&]() -> Result<BlockPtr> {
    sleep_micros(millis(10));
    if (attempts.fetch_add(1) == 0) return Status::unavailable("first load fails");
    return block_of(64);
  };
  std::vector<std::thread> threads;
  std::atomic<int> ok{0}, failed{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      auto r = cache.get_or_load("k", flaky_loader);
      (r.is_ok() ? ok : failed).fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  // The first loader's failure reaches only its own caller; a waiter takes
  // over as the new loader and everyone else shares its success.
  EXPECT_EQ(failed.load(), 1);
  EXPECT_EQ(ok.load(), 3);
  EXPECT_EQ(attempts.load(), 2);
}

TEST(BlockCacheTest, SingleFlightAcrossDistinctKeysStaysParallel) {
  // Loads of different keys must not wait on each other: total wall time for
  // two overlapping 30ms loads on different keys stays well under 60ms.
  BlockCache cache(1 << 20);
  auto slow = [] {
    sleep_micros(millis(30));
    return Result<BlockPtr>(block_of(64));
  };
  const Micros t0 = now_micros();
  std::thread a([&] { ASSERT_TRUE(cache.get_or_load("a", slow).is_ok()); });
  std::thread b([&] { ASSERT_TRUE(cache.get_or_load("b", slow).is_ok()); });
  a.join();
  b.join();
  EXPECT_LT(now_micros() - t0, millis(55));
}

}  // namespace
}  // namespace tfr
