#include "src/kv/wal.h"

#include <gtest/gtest.h>

namespace tfr {
namespace {

WalRecord make_record(const std::string& region, Timestamp ts, const std::string& row) {
  WalRecord r;
  r.region = region;
  r.txn_id = static_cast<std::uint64_t>(ts);
  r.client_id = "c1";
  r.commit_ts = ts;
  r.cells.push_back(Cell{row, "c", "v" + std::to_string(ts), ts, false});
  return r;
}

TEST(WalRecordTest, EncodeDecodeRoundTrip) {
  WalRecord r = make_record("t,", 42, "rowX");
  r.seq = 7;
  // The frame is length-prefixed; decode the payload inside.
  const std::string framed = r.encode();
  Decoder dec(framed);
  std::string payload;
  ASSERT_TRUE(dec.get_string(&payload).is_ok());
  auto decoded = WalRecord::decode(payload);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().region, "t,");
  EXPECT_EQ(decoded.value().seq, 7u);
  EXPECT_EQ(decoded.value().commit_ts, 42);
  ASSERT_EQ(decoded.value().cells.size(), 1u);
  EXPECT_EQ(decoded.value().cells[0].row, "rowX");
}

TEST(WalTest, AppendAssignsMonotonicSeq) {
  Dfs dfs{DfsConfig{}};
  auto wal = Wal::create(dfs, "/wal/rs1.log").value();
  EXPECT_EQ(wal->append(make_record("r", 1, "a")).value(), 1u);
  EXPECT_EQ(wal->append(make_record("r", 2, "b")).value(), 2u);
  EXPECT_EQ(wal->appended_seq(), 2u);
  EXPECT_EQ(wal->synced_seq(), 0u);
}

TEST(WalTest, SyncAdvancesSyncedSeq) {
  Dfs dfs{DfsConfig{}};
  auto wal = Wal::create(dfs, "/wal/rs1.log").value();
  ASSERT_TRUE(wal->append(make_record("r", 1, "a")).is_ok());
  ASSERT_TRUE(wal->sync().is_ok());
  EXPECT_EQ(wal->synced_seq(), 1u);
}

TEST(WalTest, CrashLosesUnsyncedRecords) {
  Dfs dfs{DfsConfig{}};
  auto wal = Wal::create(dfs, "/wal/rs1.log").value();
  ASSERT_TRUE(wal->append(make_record("r", 1, "a")).is_ok());
  ASSERT_TRUE(wal->sync().is_ok());
  ASSERT_TRUE(wal->append(make_record("r", 2, "b")).is_ok());  // never synced
  wal->crash();
  auto records = Wal::read_records(dfs, "/wal/rs1.log").value();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].commit_ts, 1);
}

TEST(WalTest, SplitGroupsByRegionInSeqOrder) {
  Dfs dfs{DfsConfig{}};
  auto wal = Wal::create(dfs, "/wal/rs1.log").value();
  ASSERT_TRUE(wal->append(make_record("regA", 1, "a")).is_ok());
  ASSERT_TRUE(wal->append(make_record("regB", 2, "m")).is_ok());
  ASSERT_TRUE(wal->append(make_record("regA", 3, "b")).is_ok());
  ASSERT_TRUE(wal->sync().is_ok());
  auto grouped = Wal::split(dfs, "/wal/rs1.log").value();
  ASSERT_EQ(grouped.size(), 2u);
  ASSERT_EQ(grouped["regA"].size(), 2u);
  EXPECT_EQ(grouped["regA"][0].commit_ts, 1);
  EXPECT_EQ(grouped["regA"][1].commit_ts, 3);
  ASSERT_EQ(grouped["regB"].size(), 1u);
}

TEST(WalTest, EmptyWalSplitsToNothing) {
  Dfs dfs{DfsConfig{}};
  auto wal = Wal::create(dfs, "/wal/rs1.log").value();
  ASSERT_TRUE(wal->sync().is_ok());
  EXPECT_TRUE(Wal::split(dfs, "/wal/rs1.log").value().empty());
}

TEST(WalTest, ConcurrentAppendersAllLand) {
  Dfs dfs{DfsConfig{}};
  auto wal = Wal::create(dfs, "/wal/rs1.log").value();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&wal, t] {
      for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(wal->append(make_record("r" + std::to_string(t), t * 1000 + i, "row"))
                        .is_ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_TRUE(wal->sync().is_ok());
  auto records = Wal::read_records(dfs, "/wal/rs1.log").value();
  EXPECT_EQ(records.size(), 400u);
  // Sequence numbers are unique and dense.
  std::set<std::uint64_t> seqs;
  for (const auto& r : records) seqs.insert(r.seq);
  EXPECT_EQ(seqs.size(), 400u);
  EXPECT_EQ(*seqs.rbegin(), 400u);
}

TEST(WalTest, GroupCommitSkipsRedundantSyncs) {
  DfsConfig cfg;
  Dfs dfs{cfg};
  auto wal = Wal::create(dfs, "/wal/rs1.log").value();
  ASSERT_TRUE(wal->append(make_record("r", 1, "a")).is_ok());
  ASSERT_TRUE(wal->sync().is_ok());
  ASSERT_TRUE(wal->sync().is_ok());  // nothing new: free no-op in the DFS
  EXPECT_EQ(dfs.stats().syncs, 1);
}

TEST(WalTest, ReadRecordsOnMissingFileFails) {
  Dfs dfs{DfsConfig{}};
  EXPECT_TRUE(Wal::read_records(dfs, "/nope").status().is_not_found());
}

TEST(WalTest, StatsReflectActivity) {
  Dfs dfs{DfsConfig{}};
  auto wal = Wal::create(dfs, "/wal/rs1.log").value();
  ASSERT_TRUE(wal->append(make_record("r", 1, "a")).is_ok());
  ASSERT_TRUE(wal->append(make_record("r", 2, "b")).is_ok());
  ASSERT_TRUE(wal->sync().is_ok());
  const auto stats = wal->stats();
  EXPECT_EQ(stats.appended_records, 2u);
  EXPECT_EQ(stats.synced_records, 2u);
  EXPECT_EQ(stats.syncs, 1u);
}

}  // namespace
}  // namespace tfr
