#include "src/kv/rpc_messages.h"

#include <gtest/gtest.h>

namespace tfr {
namespace {

ApplyRequest sample_request() {
  ApplyRequest req;
  req.txn_id = 42;
  req.client_id = "client-7";
  req.commit_ts = 1234;
  req.table = "usertable";
  req.mutations.push_back(Mutation{"row1", "c", "value-one", false});
  req.mutations.push_back(Mutation{"row2", "c", "", true});  // delete
  return req;
}

TEST(RpcMessagesTest, ApplyRequestRoundTrip) {
  ApplyRequest req = sample_request();
  auto decoded = decode_apply_request(encode_apply_request(req));
  ASSERT_TRUE(decoded.is_ok());
  const ApplyRequest& d = decoded.value();
  EXPECT_EQ(d.txn_id, 42u);
  EXPECT_EQ(d.client_id, "client-7");
  EXPECT_EQ(d.commit_ts, 1234);
  EXPECT_EQ(d.table, "usertable");
  ASSERT_EQ(d.mutations.size(), 2u);
  EXPECT_EQ(d.mutations[0].value, "value-one");
  EXPECT_TRUE(d.mutations[1].is_delete);
  EXPECT_FALSE(d.piggyback_tp.has_value());
  EXPECT_FALSE(d.recovery_replay);
}

TEST(RpcMessagesTest, PiggybackAndReplayFlagsSurvive) {
  ApplyRequest req = sample_request();
  req.piggyback_tp = 77;
  req.recovery_replay = true;
  auto decoded = decode_apply_request(encode_apply_request(req));
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_TRUE(decoded.value().piggyback_tp.has_value());
  EXPECT_EQ(*decoded.value().piggyback_tp, 77);
  EXPECT_TRUE(decoded.value().recovery_replay);
}

TEST(RpcMessagesTest, TruncatedWireIsCorruption) {
  const std::string wire = encode_apply_request(sample_request());
  for (std::size_t cut : {std::size_t{0}, std::size_t{4}, wire.size() / 2, wire.size() - 1}) {
    EXPECT_EQ(decode_apply_request(wire.substr(0, cut)).status().code(), Code::kCorruption)
        << "cut at " << cut;
  }
}

TEST(RpcMessagesTest, TrailingGarbageIsCorruption) {
  std::string wire = encode_apply_request(sample_request());
  wire += "junk";
  EXPECT_EQ(decode_apply_request(wire).status().code(), Code::kCorruption);
}

TEST(RpcMessagesTest, TransferTimeMatchesBandwidth) {
  // 1250 bytes = 10,000 bits; at 100 Mbps that is 100 us.
  EXPECT_EQ(transfer_micros(1250, 100.0), 100);
  // Zero bandwidth disables the charge.
  EXPECT_EQ(transfer_micros(1'000'000, 0), 0);
  // 1 KB at 10 Mbps ~ 819 us.
  EXPECT_NEAR(static_cast<double>(transfer_micros(1024, 10.0)), 819.0, 1.0);
}

TEST(RpcMessagesTest, WireSizeScalesWithPayload) {
  ApplyRequest small = sample_request();
  ApplyRequest big = sample_request();
  for (int i = 0; i < 100; ++i) {
    big.mutations.push_back(Mutation{"row" + std::to_string(i), "c", std::string(100, 'x'),
                                     false});
  }
  EXPECT_GT(encode_apply_request(big).size(), encode_apply_request(small).size() + 10'000);
}

TEST(RpcMessagesTest, BandwidthChargeSlowsBigWritesets) {
  Dfs dfs{DfsConfig{}};
  Coord coord(seconds(10));
  RegionServerConfig cfg;
  cfg.heartbeat_interval = seconds(100);
  cfg.session_ttl = seconds(1000);
  cfg.wal_sync_interval = seconds(100);
  cfg.network_mbps = 10;  // slow link so the effect is visible
  RegionServer server("rs-net", dfs, coord, cfg);
  ASSERT_TRUE(server.start().is_ok());
  ASSERT_TRUE(server.open_region(RegionDescriptor{"t", "", ""}, {}).is_ok());

  ApplyRequest req;
  req.commit_ts = 1;
  req.client_id = "c";
  req.table = "t";
  for (int i = 0; i < 100; ++i) {
    req.mutations.push_back(Mutation{"row" + std::to_string(i), "c",
                                     std::string(1000, 'x'), false});
  }
  // ~100 KB at 10 Mbps ~ 80 ms of transfer time.
  const Micros start = now_micros();
  ASSERT_TRUE(server.apply_writeset(req).is_ok());
  EXPECT_GE(now_micros() - start, millis(60));
  ASSERT_TRUE(server.shutdown().is_ok());
}

}  // namespace
}  // namespace tfr
