// Fault injection at the cluster level: transient RPC errors, dropped acks,
// and corrupted frames are all absorbed by the client's retry loop (the
// flush path is idempotent); DFS gray failures surface as retryable errors
// or — for real data corruption — as checksum failures, never as silently
// wrong data. Also pins the zero-overhead contract of the disabled injector.
#include <gtest/gtest.h>

#include "src/common/metrics.h"
#include "src/kv/cluster.h"
#include "src/kv/kv_client.h"

namespace tfr {
namespace {

ClusterConfig fast_cluster(int servers) {
  ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.coord_check_interval = millis(5);
  cfg.server.heartbeat_interval = millis(20);
  cfg.server.session_ttl = millis(100);
  cfg.server.wal_sync_interval = seconds(100);  // sync manually in tests
  return cfg;
}

WriteSet make_ws(Timestamp ts, std::vector<std::string> rows) {
  WriteSet ws;
  ws.txn_id = static_cast<std::uint64_t>(ts);
  ws.client_id = "c1";
  ws.commit_ts = ts;
  ws.table = "t";
  for (auto& r : rows) ws.mutations.push_back(Mutation{r, "c", "v" + std::to_string(ts), false});
  return ws;
}

std::string row_of(int i) { return "row-" + std::to_string(100 + i); }

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() : cluster_(fast_cluster(1)), client_(cluster_.master(), millis(1)) {}

  void SetUp() override {
    ASSERT_TRUE(cluster_.start().is_ok());
    ASSERT_TRUE(cluster_.master().create_table("t", {}).is_ok());
  }

  void flush_rows(int n) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(client_.flush_writeset(make_ws(i + 1, {row_of(i)})).is_ok()) << i;
    }
  }

  void verify_rows(int n) {
    for (int i = 0; i < n; ++i) {
      auto v = client_.get("t", row_of(i), "c", 1000, /*max_retries=*/50);
      ASSERT_TRUE(v.is_ok()) << i;
      ASSERT_TRUE(v.value().has_value()) << i;
      EXPECT_EQ(v.value()->value, "v" + std::to_string(i + 1)) << i;
    }
  }

  Cluster cluster_;
  KvClient client_;
};

TEST_F(FaultInjectionTest, TransientApplyErrorsAreRetriedToSuccess) {
  const std::int64_t retries_before = global_counter("kv.flush_retries").get();
  cluster_.fault().reseed(7);
  FaultRule r;
  r.op = FaultOp::kRpcApply;
  r.error_probability = 0.5;
  cluster_.fault().add_rule(r);
  flush_rows(20);
  cluster_.fault().clear_rules();
  verify_rows(20);
  EXPECT_GT(cluster_.fault().stats().injected_errors, 0);
  // The retries are observable in the process-wide counter.
  EXPECT_GT(global_counter("kv.flush_retries").get(), retries_before);
}

TEST_F(FaultInjectionTest, DroppedResponsesReapplyIdempotently) {
  cluster_.fault().reseed(8);
  FaultRule r;
  r.op = FaultOp::kRpcApply;
  r.drop_response_probability = 0.5;
  cluster_.fault().add_rule(r);
  flush_rows(20);
  cluster_.fault().clear_rules();
  // Every dropped ack caused a re-send of an already-applied slice; the
  // duplicate apply is a same-(row,ts) overwrite, so values stay correct.
  verify_rows(20);
  EXPECT_GT(cluster_.fault().stats().dropped_responses, 0);
}

TEST_F(FaultInjectionTest, CorruptedFramesAreRejectedAndResent) {
  cluster_.fault().reseed(9);
  FaultRule r;
  r.op = FaultOp::kRpcApply;
  r.corrupt_probability = 0.5;
  cluster_.fault().add_rule(r);
  // A corrupted frame must fail the CRC check server-side and surface as a
  // retryable NAK — the flushes below would return Corruption (and fail the
  // ASSERT inside flush_rows) if it leaked through.
  flush_rows(20);
  cluster_.fault().clear_rules();
  verify_rows(20);
  EXPECT_GT(cluster_.fault().stats().corrupted_wires, 0);
}

TEST_F(FaultInjectionTest, SlowWalSyncIsDelayedButSucceeds) {
  flush_rows(1);  // something in the WAL, so sync has work to do
  cluster_.fault().reseed(10);
  FaultRule r;
  r.op = FaultOp::kDfsSync;
  r.target = "/wal/";
  r.delay_probability = 1.0;
  r.delay = millis(3);
  cluster_.fault().add_rule(r);
  EXPECT_TRUE(cluster_.server(0).persist_wal().is_ok());
  cluster_.fault().clear_rules();
  const FaultStats s = cluster_.fault().stats();
  EXPECT_GE(s.injected_delays, 1);
  EXPECT_GE(s.delay_micros, millis(3));
}

TEST_F(FaultInjectionTest, DfsReadFaultSurfacesAsRetryableUnavailable) {
  ASSERT_TRUE(client_.flush_writeset(make_ws(5, {"apple"})).is_ok());
  const auto loc = cluster_.master().locate("t", "apple").value();
  auto region = cluster_.server(0).region(loc.region_name);
  ASSERT_NE(region, nullptr);
  ASSERT_TRUE(region->flush_memstore().is_ok());
  cluster_.server(0).block_cache().clear();

  cluster_.fault().reseed(11);
  FaultRule r;
  r.op = FaultOp::kDfsRead;
  r.target = region->data_dir();
  r.error_probability = 1.0;
  cluster_.fault().add_rule(r);
  // The store-file read hits the injected DFS fault; with bounded retries
  // the client reports Unavailable (a transient condition), not corruption.
  EXPECT_EQ(client_.get("t", "apple", "c", 10, /*max_retries=*/3).status().code(),
            Code::kUnavailable);
  cluster_.fault().clear_rules();
  EXPECT_EQ(client_.get("t", "apple", "c", 10, 50).value()->value, "v5");
}

TEST_F(FaultInjectionTest, StoreFileBitFlipSurfacesAsChecksumErrorThroughServer) {
  // Satellite: real (persistent) corruption must NOT look transient. Flip a
  // bit in a store file behind the region server's back and read through the
  // full client -> server -> region -> DFS path.
  ASSERT_TRUE(client_.flush_writeset(make_ws(5, {"apple"})).is_ok());
  const auto loc = cluster_.master().locate("t", "apple").value();
  auto region = cluster_.server(0).region(loc.region_name);
  ASSERT_NE(region, nullptr);
  ASSERT_TRUE(region->flush_memstore().is_ok());
  const auto paths = cluster_.dfs().list(region->data_dir());
  ASSERT_EQ(paths.size(), 1u);
  // Clean read first, then drop the cache so the next read hits the DFS.
  EXPECT_EQ(client_.get("t", "apple", "c", 10, 50).value()->value, "v5");
  cluster_.server(0).block_cache().clear();
  ASSERT_TRUE(cluster_.dfs().corrupt_byte(paths[0], 12).is_ok());
  EXPECT_EQ(client_.get("t", "apple", "c", 10, 50).status().code(), Code::kCorruption);
}

TEST_F(FaultInjectionTest, DisabledInjectorEvaluatesNothing) {
  // The default path must be untouched: no rules -> not even a rule
  // evaluation on the hot paths (just one relaxed atomic load).
  flush_rows(10);
  verify_rows(10);
  EXPECT_FALSE(cluster_.fault().enabled());
  const FaultStats s = cluster_.fault().stats();
  EXPECT_EQ(s.evaluations, 0);
  EXPECT_EQ(s.injected_errors, 0);
  EXPECT_EQ(s.injected_delays, 0);
}

}  // namespace
}  // namespace tfr
