#include "src/kv/memstore.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace tfr {
namespace {

Cell make(const std::string& row, const std::string& col, const std::string& val, Timestamp ts,
          bool tomb = false) {
  return Cell{row, col, val, ts, tomb};
}

TEST(MemstoreTest, GetReturnsNewestVisibleVersion) {
  Memstore ms;
  ms.apply(make("r1", "c", "v1", 10));
  ms.apply(make("r1", "c", "v2", 20));
  ms.apply(make("r1", "c", "v3", 30));
  EXPECT_EQ(ms.get("r1", "c", 30)->value, "v3");
  EXPECT_EQ(ms.get("r1", "c", 25)->value, "v2");
  EXPECT_EQ(ms.get("r1", "c", 10)->value, "v1");
  EXPECT_FALSE(ms.get("r1", "c", 9).has_value());
}

TEST(MemstoreTest, MissingRowOrColumn) {
  Memstore ms;
  ms.apply(make("r1", "c1", "v", 5));
  EXPECT_FALSE(ms.get("r2", "c1", 100).has_value());
  EXPECT_FALSE(ms.get("r1", "c2", 100).has_value());
}

TEST(MemstoreTest, IdempotentReapply) {
  Memstore ms;
  ms.apply(make("r1", "c", "v", 10));
  const auto count = ms.cell_count();
  const auto bytes = ms.byte_size();
  // Replaying a write-set is idempotent (§2.2): same (row, col, ts) -> same state.
  ms.apply(make("r1", "c", "v", 10));
  ms.apply(make("r1", "c", "v", 10));
  EXPECT_EQ(ms.cell_count(), count);
  EXPECT_EQ(ms.byte_size(), bytes);
  EXPECT_EQ(ms.get("r1", "c", 10)->value, "v");
}

TEST(MemstoreTest, TombstoneIsReturnedAsSuch) {
  Memstore ms;
  ms.apply(make("r1", "c", "v", 10));
  ms.apply(make("r1", "c", "", 20, /*tomb=*/true));
  auto cell = ms.get("r1", "c", 25);
  ASSERT_TRUE(cell.has_value());
  EXPECT_TRUE(cell->tombstone);
  // Older snapshots still see the live value.
  EXPECT_FALSE(ms.get("r1", "c", 15)->tombstone);
}

TEST(MemstoreTest, ScanReturnsNewestPerColumnInRange) {
  Memstore ms;
  ms.apply(make("a", "c", "va1", 1));
  ms.apply(make("a", "c", "va2", 2));
  ms.apply(make("b", "c", "vb", 1));
  ms.apply(make("c", "c", "vc", 3));
  auto cells = ms.scan("a", "c", 10);  // [a, c): excludes row "c"
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].row, "a");
  EXPECT_EQ(cells[0].value, "va2");
  EXPECT_EQ(cells[1].row, "b");
}

TEST(MemstoreTest, ScanRespectsSnapshot) {
  Memstore ms;
  ms.apply(make("a", "c", "old", 1));
  ms.apply(make("a", "c", "new", 100));
  auto cells = ms.scan("", "", 50);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].value, "old");
}

TEST(MemstoreTest, ScanOpenEndedRange) {
  Memstore ms;
  for (int i = 0; i < 5; ++i) {
    ms.apply(make("row" + std::to_string(i), "c", "v", 1));
  }
  EXPECT_EQ(ms.scan("row2", "", 10).size(), 3u);
  EXPECT_EQ(ms.scan("", "", 10).size(), 5u);
}

TEST(MemstoreTest, MultipleColumnsPerRow) {
  Memstore ms;
  ms.apply(make("r", "c1", "v1", 1));
  ms.apply(make("r", "c2", "v2", 1));
  EXPECT_EQ(ms.get("r", "c1", 10)->value, "v1");
  EXPECT_EQ(ms.get("r", "c2", 10)->value, "v2");
  EXPECT_EQ(ms.scan("", "", 10).size(), 2u);
}

TEST(MemstoreTest, ClearResetsState) {
  Memstore ms;
  ms.apply(make("r", "c", "v", 1));
  ms.clear();
  EXPECT_EQ(ms.cell_count(), 0u);
  EXPECT_EQ(ms.byte_size(), 0u);
  EXPECT_FALSE(ms.get("r", "c", 10).has_value());
}

TEST(MemstoreTest, SnapshotIsSortedAndComplete) {
  Memstore ms;
  ms.apply(make("b", "c", "v", 2));
  ms.apply(make("a", "c", "v", 1));
  ms.apply(make("a", "c", "v", 3));
  auto cells = ms.snapshot();
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0].row, "a");
  EXPECT_EQ(cells[0].ts, 3);  // newer first within a column
  EXPECT_EQ(cells[1].ts, 1);
  EXPECT_EQ(cells[2].row, "b");
}

TEST(MemstoreTest, MaxTsTracksNewestApply) {
  Memstore ms;
  EXPECT_EQ(ms.max_ts(), kNoTimestamp);
  ms.apply(make("r", "c", "v", 7));
  ms.apply(make("r", "c", "v", 3));
  EXPECT_EQ(ms.max_ts(), 7);
}

// Property: memstore reads match a naive reference model under random
// multi-version writes.
class MemstorePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MemstorePropertyTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  Memstore ms;
  // reference: (row, col) -> map ts -> value
  std::map<std::pair<std::string, std::string>, std::map<Timestamp, std::string>> ref;
  for (int i = 0; i < 500; ++i) {
    const std::string row = "r" + std::to_string(rng.next_below(20));
    const std::string col = "c" + std::to_string(rng.next_below(3));
    const auto ts = static_cast<Timestamp>(rng.next_below(50) + 1);
    const std::string val = "v" + std::to_string(i);
    ms.apply(Cell{row, col, val, ts, false});
    ref[{row, col}][ts] = val;
  }
  for (int probe = 0; probe < 300; ++probe) {
    const std::string row = "r" + std::to_string(rng.next_below(20));
    const std::string col = "c" + std::to_string(rng.next_below(3));
    const auto read_ts = static_cast<Timestamp>(rng.next_below(60));
    auto got = ms.get(row, col, read_ts);
    auto it = ref.find({row, col});
    std::optional<std::string> want;
    if (it != ref.end()) {
      auto vit = it->second.upper_bound(read_ts);
      if (vit != it->second.begin()) want = std::prev(vit)->second;
    }
    ASSERT_EQ(got.has_value(), want.has_value()) << row << "/" << col << "@" << read_ts;
    if (want) EXPECT_EQ(got->value, *want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemstorePropertyTest, ::testing::Values(1, 7, 42, 1337));

}  // namespace
}  // namespace tfr
