// Dynamic region topology (§9): split-key selection from store-file
// metadata, reference-marker inheritance, compaction dereferencing, the
// master's janitor, merges, the balancer triggers, and the client routing
// cache that keeps up with all of it.
#include <gtest/gtest.h>

#include <set>

#include "src/common/metrics.h"
#include "src/kv/cluster.h"
#include "src/kv/kv_client.h"
#include "src/kv/store_file.h"

namespace tfr {
namespace {

// --- store-file split metadata -----------------------------------------------

TEST(SplitMetadataTest, MidpointRowAndDataBytes) {
  Dfs dfs{DfsConfig{}};
  StoreFileWriter writer(/*target_block_bytes=*/128);
  for (int i = 0; i < 100; ++i) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%05d", i);
    writer.add(Cell{row, "c", "value-" + std::to_string(i), 1, false});
  }
  ASSERT_TRUE(writer.finish(dfs, "/sf").is_ok());
  auto reader = StoreFileReader::open(dfs, "/sf").value();
  ASSERT_GT(reader->block_count(), 2u);
  EXPECT_GT(reader->data_bytes(), 0u);
  const std::string mid = reader->midpoint_row();
  EXPECT_GT(mid, "row00000");
  EXPECT_LT(mid, "row00099");
}

// --- region-level split support ----------------------------------------------

class TopologyRegionTest : public ::testing::Test {
 protected:
  TopologyRegionTest() : dfs_(DfsConfig{}), cache_(1 << 20) {}

  std::unique_ptr<Region> make_region() {
    auto region = std::make_unique<Region>(RegionDescriptor{"t", "", ""}, dfs_, cache_,
                                           /*store_block_bytes=*/256);
    EXPECT_TRUE(region->load_store_files().is_ok());
    region->set_state(RegionState::kOnline);
    return region;
  }

  Dfs dfs_;
  BlockCache cache_;
};

TEST_F(TopologyRegionTest, ChooseSplitKeyDividesTheKeyRange) {
  auto region = make_region();
  std::vector<Cell> cells;
  for (int i = 0; i < 200; ++i) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%05d", i);
    cells.push_back(Cell{row, "c", "v" + std::to_string(i), 1, false});
  }
  ASSERT_TRUE(region->apply(cells));
  ASSERT_TRUE(region->flush_memstore().is_ok());
  auto key = region->choose_split_key();
  ASSERT_TRUE(key.is_ok());
  EXPECT_GT(key.value(), "row00000");
  EXPECT_LT(key.value(), "row00199");
}

TEST_F(TopologyRegionTest, ChooseSplitKeyRefusesSingleRow) {
  auto region = make_region();
  ASSERT_TRUE(region->apply({Cell{"only", "c", "v", 1, false}}));
  EXPECT_EQ(region->choose_split_key().status().code(), Code::kInvalidArgument);
  // Even across a flush (one row, one store file): still nothing to split.
  ASSERT_TRUE(region->flush_memstore().is_ok());
  EXPECT_EQ(region->choose_split_key().status().code(), Code::kInvalidArgument);
}

TEST_F(TopologyRegionTest, ApplyRejectedWhenOffline) {
  auto region = make_region();
  ASSERT_TRUE(region->apply({Cell{"r", "c", "v", 1, false}}));
  region->set_state(RegionState::kOffline);
  EXPECT_FALSE(region->apply({Cell{"r2", "c", "v2", 2, false}}));
  region->set_state(RegionState::kOnline);
  // Nothing leaked into the memstore while offline.
  EXPECT_FALSE(region->get("r2", "c", 10).value().has_value());
}

// --- cluster-level topology transitions ---------------------------------------

ClusterConfig topo_cluster(int servers) {
  ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.coord_check_interval = millis(5);
  cfg.server.heartbeat_interval = millis(20);
  cfg.server.session_ttl = millis(150);
  cfg.server.wal_sync_interval = millis(10);
  // Keep auto-compaction out of the way: these tests assert on reference
  // markers, which a background compaction legitimately removes.
  cfg.server.compaction_file_threshold = 0;
  return cfg;
}

WriteSet rows_ws(Timestamp ts, int from, int to) {
  WriteSet ws;
  ws.commit_ts = ts;
  ws.client_id = "c";
  ws.table = "t";
  for (int i = from; i < to; ++i) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%05d", i);
    ws.mutations.push_back(Mutation{row, "c", "v" + std::to_string(i), false});
  }
  return ws;
}

std::size_t count_ref_markers(Dfs& dfs, const std::string& region_name) {
  std::size_t n = 0;
  for (const auto& path : dfs.list(region_data_dir(region_name))) {
    const auto slash = path.rfind('/');
    if (slash != std::string::npos && path.compare(slash + 1, 4, "ref-") == 0) ++n;
  }
  return n;
}

TEST(TopologyClusterTest, SplitInheritsFilesByReference) {
  Cluster cluster(topo_cluster(2));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {}).is_ok());
  KvClient client(cluster.master(), millis(1));
  ASSERT_TRUE(client.flush_writeset(rows_ws(1, 0, 100)).is_ok());

  const std::string parent = cluster.master().table_regions("t").front().region_name;
  ASSERT_TRUE(cluster.master().split_region(parent).is_ok());
  auto regions = cluster.master().table_regions("t");
  ASSERT_EQ(regions.size(), 2u);

  // Daughters hold reference markers, not copies; the parent's store files
  // survive in its (retired) dir and every row reads through the refs.
  for (const auto& r : regions) {
    EXPECT_GT(count_ref_markers(cluster.dfs(), r.region_name), 0u) << r.region_name;
    auto region = cluster.master().server_stub(r.server_id)->region(r.region_name);
    ASSERT_NE(region, nullptr);
    EXPECT_TRUE(region->has_references());
  }
  EXPECT_FALSE(cluster.dfs().list(region_data_dir(parent)).empty());
  for (int i = 0; i < 100; i += 9) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%05d", i);
    auto v = client.get("t", row, "c", 100);
    ASSERT_TRUE(v.is_ok());
    ASSERT_TRUE(v.value().has_value()) << row;
  }
  // The transition left a durable split record for the janitor.
  EXPECT_EQ(cluster.coord().list(kSplitRecordPrefix).size(), 1u);
}

TEST(TopologyClusterTest, CompactionDereferencesAndJanitorReclaims) {
  Cluster cluster(topo_cluster(2));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {}).is_ok());
  KvClient client(cluster.master(), millis(1));
  ASSERT_TRUE(client.flush_writeset(rows_ws(1, 0, 100)).is_ok());

  const std::string parent = cluster.master().table_regions("t").front().region_name;
  ASSERT_TRUE(cluster.master().split_region(parent).is_ok());

  // While refs are live the janitor must not touch the parent dir.
  cluster.master().balance_once();
  EXPECT_FALSE(cluster.dfs().list(region_data_dir(parent)).empty());
  EXPECT_EQ(cluster.coord().list(kSplitRecordPrefix).size(), 1u);

  // Compacting each daughter rewrites its half locally and drops the marker.
  for (const auto& r : cluster.master().table_regions("t")) {
    auto* server = cluster.master().server_stub(r.server_id);
    ASSERT_NE(server, nullptr);
    ASSERT_TRUE(server->compact_region(r.region_name).is_ok());
    auto region = server->region(r.region_name);
    ASSERT_NE(region, nullptr);
    EXPECT_FALSE(region->has_references());
    EXPECT_EQ(count_ref_markers(cluster.dfs(), r.region_name), 0u);
  }

  // Now the janitor reclaims the retired parent dir and the record.
  cluster.master().balance_once();
  EXPECT_TRUE(cluster.dfs().list(region_data_dir(parent)).empty());
  EXPECT_TRUE(cluster.coord().list(kSplitRecordPrefix).empty());

  for (int i = 0; i < 100; i += 11) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%05d", i);
    EXPECT_EQ(client.get("t", row, "c", 100).value()->value, "v" + std::to_string(i));
  }
}

TEST(TopologyClusterTest, MergeAdjacentRegions) {
  Cluster cluster(topo_cluster(2));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {"row00050"}).is_ok());
  KvClient client(cluster.master(), millis(1));
  ASSERT_TRUE(client.flush_writeset(rows_ws(1, 0, 100)).is_ok());

  auto regions = cluster.master().table_regions("t");
  ASSERT_EQ(regions.size(), 2u);
  const std::string left =
      regions[0].descriptor.start_key.empty() ? regions[0].region_name : regions[1].region_name;
  const std::string right =
      regions[0].descriptor.start_key.empty() ? regions[1].region_name : regions[0].region_name;
  ASSERT_TRUE(cluster.master().merge_regions(left, right).is_ok());

  regions = cluster.master().table_regions("t");
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_TRUE(regions[0].descriptor.start_key.empty());
  EXPECT_TRUE(regions[0].descriptor.end_key.empty());
  EXPECT_EQ(cluster.coord().list(kMergeRecordPrefix).size(), 1u);
  for (int i = 0; i < 100; i += 7) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%05d", i);
    EXPECT_EQ(client.get("t", row, "c", 100).value()->value, "v" + std::to_string(i));
  }
  // Writes land in the merged region.
  ASSERT_TRUE(client.flush_writeset(rows_ws(2, 0, 10)).is_ok());
}

TEST(TopologyClusterTest, MergeRefusesNonAdjacentRegions) {
  Cluster cluster(topo_cluster(1));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {"g", "q"}).is_ok());
  auto regions = cluster.master().table_regions("t");
  ASSERT_EQ(regions.size(), 3u);
  // Regions come back sorted by start key: ["", g), [g, q), [q, "").
  EXPECT_EQ(cluster.master()
                .merge_regions(regions[0].region_name, regions[2].region_name)
                .code(),
            Code::kInvalidArgument);
  // Order matters too: (right, left) is not an adjacent pair.
  EXPECT_EQ(cluster.master()
                .merge_regions(regions[1].region_name, regions[0].region_name)
                .code(),
            Code::kInvalidArgument);
}

TEST(TopologyClusterTest, BalancerSplitsOversizedRegionAndCountsIt) {
  reset_global_counters();
  Cluster cluster(topo_cluster(2));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {}).is_ok());
  KvClient client(cluster.master(), millis(1));
  ASSERT_TRUE(client.flush_writeset(rows_ws(1, 0, 200)).is_ok());

  BalancerConfig cfg;        // manual ticks only (interval == 0)
  cfg.split_store_bytes = 1; // any flushed region is "oversized"
  cluster.master().enable_balancer(cfg);
  cluster.master().balance_once();

  EXPECT_EQ(cluster.master().table_regions("t").size(), 2u);
  EXPECT_GE(global_counter("master.region_splits").get(), 1);
}

TEST(TopologyClusterTest, BalancerMergesColdAdjacentPair) {
  reset_global_counters();
  Cluster cluster(topo_cluster(2));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {"row00050"}).is_ok());
  KvClient client(cluster.master(), millis(1));
  ASSERT_TRUE(client.flush_writeset(rows_ws(1, 0, 100)).is_ok());

  BalancerConfig cfg;
  cfg.merge_traffic_ops = 1u << 20;  // everything is "cold"
  cfg.merge_store_bytes = 1ull << 30;
  cluster.master().enable_balancer(cfg);
  cluster.master().balance_once();  // first tick seeds the traffic baseline
  cluster.master().balance_once();

  EXPECT_EQ(cluster.master().table_regions("t").size(), 1u);
  EXPECT_GE(global_counter("master.region_merges").get(), 1);
}

// --- client routing cache ------------------------------------------------------

TEST(RoutingCacheTest, CachesRoutesAndInvalidatesAcrossSplit) {
  Cluster cluster(topo_cluster(2));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {}).is_ok());
  KvClient client(cluster.master(), millis(1));
  ASSERT_TRUE(client.flush_writeset(rows_ws(1, 0, 100)).is_ok());

  // Repeated reads of one row: one miss, then cache hits.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.get("t", "row00010", "c", 100).is_ok());
  }
  const auto warm = client.stats();
  EXPECT_GT(warm.route_hits, 0);
  EXPECT_GT(warm.route_misses, 0);

  // Split, then move one daughter to the OTHER server: a split alone keeps
  // the daughters co-located, so the stale cached route would still land on
  // a server that can serve the row (the RPC routes by table+row). Only
  // once ownership actually moved does the stale route hit a non-owner.
  ASSERT_TRUE(cluster.master().split_region("t,").is_ok());
  auto regions = cluster.master().table_regions("t");
  ASSERT_EQ(regions.size(), 2u);
  const auto& moved = regions[0].descriptor.start_key.empty() ? regions[1] : regions[0];
  std::string target;
  for (const auto& id : cluster.master().live_servers()) {
    if (id != moved.server_id) target = id;
  }
  ASSERT_FALSE(target.empty());
  ASSERT_TRUE(cluster.master().move_region(moved.region_name, target).is_ok());

  // Every row still resolves; rows now hosted by the moved daughter force a
  // staleness signal -> invalidation -> re-locate, never a wrong answer.
  for (int i = 0; i < 100; i += 5) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%05d", i);
    auto v = client.get("t", row, "c", 100);
    ASSERT_TRUE(v.is_ok());
    ASSERT_TRUE(v.value().has_value()) << row;
  }
  const auto after = client.stats();
  EXPECT_GT(after.route_invalidations, 0);
  EXPECT_GT(after.route_misses, warm.route_misses);
}

}  // namespace
}  // namespace tfr
