// Randomized property tests for the storage substrate: the store-file /
// block-cache read path against a reference model, and WAL split against a
// reference grouping under random rolls and a crash.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/random.h"
#include "src/kv/region.h"
#include "src/kv/wal.h"

namespace tfr {
namespace {

// --- store files vs reference model -------------------------------------------

class StoreFilePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreFilePropertyTest, ReadsMatchReferenceModel) {
  Rng rng(GetParam());
  Dfs dfs{DfsConfig{}};
  BlockCache cache(1 << 20);

  // Build sorted multi-version content.
  std::map<std::pair<std::string, std::string>, std::map<Timestamp, Cell>> model;
  for (int i = 0; i < 800; ++i) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%04llu",
                  static_cast<unsigned long long>(rng.next_below(120)));
    const std::string col = "c" + std::to_string(rng.next_below(2));
    const auto ts = static_cast<Timestamp>(rng.next_below(40) + 1);
    Cell cell{row, col, "v" + std::to_string(i), ts, rng.next_bool(0.1)};
    model[{cell.row, cell.column}][ts] = cell;
  }
  StoreFileWriter writer(static_cast<std::size_t>(rng.next_below(900) + 100));
  for (const auto& [key, versions] : model) {
    for (auto it = versions.rbegin(); it != versions.rend(); ++it) writer.add(it->second);
  }
  ASSERT_TRUE(writer.finish(dfs, "/prop-sf").is_ok());
  auto reader = StoreFileReader::open(dfs, "/prop-sf").value();

  for (int probe = 0; probe < 500; ++probe) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%04llu",
                  static_cast<unsigned long long>(rng.next_below(130)));
    const std::string col = "c" + std::to_string(rng.next_below(2));
    const auto read_ts = static_cast<Timestamp>(rng.next_below(45));
    auto got = reader->get(cache, row, col, read_ts);
    ASSERT_TRUE(got.is_ok());
    std::optional<Cell> want;
    auto it = model.find({row, col});
    if (it != model.end()) {
      auto vit = it->second.upper_bound(read_ts);
      if (vit != it->second.begin()) want = std::prev(vit)->second;
    }
    ASSERT_EQ(got.value().has_value(), want.has_value())
        << row << "/" << col << "@" << read_ts;
    if (want) {
      EXPECT_EQ(got.value()->value, want->value);
      EXPECT_EQ(got.value()->tombstone, want->tombstone);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreFilePropertyTest, ::testing::Values(3, 17, 91, 202));

// --- WAL split vs reference grouping -------------------------------------------

class WalSplitPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WalSplitPropertyTest, SplitEqualsReferenceOnSyncedPrefix) {
  Rng rng(GetParam());
  Dfs dfs{DfsConfig{}};
  auto wal = Wal::create(dfs, "/wal/prop.log").value();

  // Random appends with random rolls and syncs; track what is durable.
  std::map<std::string, std::vector<std::uint64_t>> reference;  // region -> seqs
  std::uint64_t durable_through = 0;
  std::uint64_t appended = 0;
  std::map<std::uint64_t, std::string> seq_region;
  for (int i = 0; i < 300; ++i) {
    const std::string region = "r" + std::to_string(rng.next_below(5));
    WalRecord rec;
    rec.region = region;
    rec.commit_ts = i + 1;
    rec.cells.push_back(Cell{"row" + std::to_string(i), "c", "v", i + 1, false});
    auto seq = wal->append(std::move(rec));
    ASSERT_TRUE(seq.is_ok());
    appended = seq.value();
    seq_region[appended] = region;
    const auto dice = rng.next_below(20);
    if (dice == 0) {
      ASSERT_TRUE(wal->roll().is_ok());  // roll syncs
      durable_through = appended;
    } else if (dice == 1) {
      ASSERT_TRUE(wal->sync().is_ok());
      durable_through = appended;
    }
  }
  wal->crash();  // anything after durable_through is gone

  for (const auto& [seq, region] : seq_region) {
    if (seq <= durable_through) reference[region].push_back(seq);
  }

  auto grouped = Wal::split(dfs, "/wal/prop.log").value();
  std::map<std::string, std::vector<std::uint64_t>> actual;
  for (const auto& [region, records] : grouped) {
    for (const auto& r : records) actual[region].push_back(r.seq);
  }
  EXPECT_EQ(actual, reference) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalSplitPropertyTest, ::testing::Values(5, 23, 77, 404));

// --- compaction preserves visible state ----------------------------------------

class CompactionPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompactionPropertyTest, VisibleStateUnchangedAboveHorizon) {
  Rng rng(GetParam());
  Dfs dfs{DfsConfig{}};
  BlockCache cache(1 << 20);
  Region region(RegionDescriptor{"t", "", ""}, dfs, cache);
  ASSERT_TRUE(region.load_store_files().is_ok());
  region.set_state(RegionState::kOnline);

  Timestamp ts = 0;
  for (int batch = 0; batch < 6; ++batch) {
    std::vector<Cell> cells;
    for (int i = 0; i < 40; ++i) {
      const std::string row = "row" + std::to_string(rng.next_below(30));
      cells.push_back(Cell{row, "c", "v" + std::to_string(ts + 1), ++ts, rng.next_bool(0.15)});
    }
    ASSERT_TRUE(region.apply(cells));
    ASSERT_TRUE(region.flush_memstore().is_ok());
  }

  const Timestamp horizon = static_cast<Timestamp>(rng.next_below(static_cast<std::uint64_t>(ts)));
  // Record the visible state at every timestamp >= horizon.
  std::map<Timestamp, std::vector<Cell>> before;
  for (Timestamp read_ts = horizon; read_ts <= ts; read_ts += 7) {
    before[read_ts] = region.scan("", "", read_ts, 0).value();
  }
  before[ts] = region.scan("", "", ts, 0).value();

  ASSERT_TRUE(region.compact(horizon).is_ok());
  ASSERT_EQ(region.store_file_count(), 1u);

  for (const auto& [read_ts, cells] : before) {
    EXPECT_EQ(region.scan("", "", read_ts, 0).value(), cells)
        << "visible state changed at ts " << read_ts << " (horizon " << horizon << ", seed "
        << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactionPropertyTest, ::testing::Values(9, 31, 88, 512));

}  // namespace
}  // namespace tfr
