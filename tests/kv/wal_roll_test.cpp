// WAL segment rolling and reclamation — the HBase behaviour that keeps the
// store's log bounded once memstore flushes have persisted the data.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/common/codec.h"
#include "src/kv/region_server.h"
#include "src/kv/wal.h"

namespace tfr {
namespace {

WalRecord rec(const std::string& region, Timestamp ts) {
  WalRecord r;
  r.region = region;
  r.commit_ts = ts;
  r.client_id = "c";
  r.cells.push_back(Cell{"row" + std::to_string(ts), "c", "v", ts, false});
  return r;
}

TEST(WalRollTest, RollOpensFreshSegment) {
  Dfs dfs{DfsConfig{}};
  auto wal = Wal::create(dfs, "/wal/rs1.log").value();
  ASSERT_TRUE(wal->append(rec("r", 1)).is_ok());
  ASSERT_TRUE(wal->roll().is_ok());
  EXPECT_EQ(wal->stats().live_segments, 2u);
  EXPECT_EQ(wal->stats().rolls, 1u);
  EXPECT_EQ(wal->current_segment_bytes(), 0u);
  // The closed segment is durable even though we never called sync().
  EXPECT_EQ(wal->synced_seq(), 1u);
}

TEST(WalRollTest, RecordsSpanSegmentsInOrder) {
  Dfs dfs{DfsConfig{}};
  auto wal = Wal::create(dfs, "/wal/rs1.log").value();
  ASSERT_TRUE(wal->append(rec("a", 1)).is_ok());
  ASSERT_TRUE(wal->roll().is_ok());
  ASSERT_TRUE(wal->append(rec("b", 2)).is_ok());
  ASSERT_TRUE(wal->roll().is_ok());
  ASSERT_TRUE(wal->append(rec("a", 3)).is_ok());
  ASSERT_TRUE(wal->sync().is_ok());

  auto records = Wal::read_records(dfs, "/wal/rs1.log").value();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_EQ(records[2].seq, 3u);

  auto grouped = Wal::split(dfs, "/wal/rs1.log").value();
  ASSERT_EQ(grouped["a"].size(), 2u);
  ASSERT_EQ(grouped["b"].size(), 1u);
}

TEST(WalRollTest, TruncateRemovesOnlyObsoleteClosedSegments) {
  Dfs dfs{DfsConfig{}};
  auto wal = Wal::create(dfs, "/wal/rs1.log").value();
  ASSERT_TRUE(wal->append(rec("r", 1)).is_ok());  // seg 1: seq 1
  ASSERT_TRUE(wal->roll().is_ok());
  ASSERT_TRUE(wal->append(rec("r", 2)).is_ok());  // seg 2: seq 2
  ASSERT_TRUE(wal->roll().is_ok());
  ASSERT_TRUE(wal->append(rec("r", 3)).is_ok());  // seg 3 (open): seq 3

  // Nothing needed below seq 2: only segment 1 goes.
  EXPECT_EQ(wal->truncate_obsolete(2), 1u);
  EXPECT_EQ(wal->stats().live_segments, 2u);
  // Everything below 100 obsolete, but the open segment always stays.
  EXPECT_EQ(wal->truncate_obsolete(100), 1u);
  EXPECT_EQ(wal->stats().live_segments, 1u);
  // The surviving records are still readable.
  ASSERT_TRUE(wal->sync().is_ok());
  auto records = Wal::read_records(dfs, "/wal/rs1.log").value();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 3u);
}

TEST(WalRollTest, TruncateIsNoopWhenEverythingStillNeeded) {
  Dfs dfs{DfsConfig{}};
  auto wal = Wal::create(dfs, "/wal/rs1.log").value();
  ASSERT_TRUE(wal->append(rec("r", 1)).is_ok());
  ASSERT_TRUE(wal->roll().is_ok());
  EXPECT_EQ(wal->truncate_obsolete(1), 0u);
  EXPECT_EQ(wal->stats().live_segments, 2u);
}

TEST(WalRollTest, CrashLosesOnlyOpenSegmentTail) {
  Dfs dfs{DfsConfig{}};
  auto wal = Wal::create(dfs, "/wal/rs1.log").value();
  ASSERT_TRUE(wal->append(rec("r", 1)).is_ok());
  ASSERT_TRUE(wal->roll().is_ok());                // seq 1 durable via roll
  ASSERT_TRUE(wal->append(rec("r", 2)).is_ok());   // open segment, not synced
  wal->crash();
  auto records = Wal::read_records(dfs, "/wal/rs1.log").value();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 1u);
}

TEST(WalRollTest, RegionServerRollsAndReclaimsAfterMemstoreFlush) {
  Dfs dfs{DfsConfig{}};
  Coord coord(seconds(10));
  RegionServerConfig cfg;
  cfg.heartbeat_interval = seconds(100);
  cfg.session_ttl = seconds(1000);
  cfg.wal_sync_interval = seconds(100);  // drive rolling manually
  cfg.wal_segment_bytes = 512;           // tiny segments
  cfg.memstore_flush_bytes = 1u << 30;   // flush manually
  RegionServer server("rs1", dfs, coord, cfg);
  ASSERT_TRUE(server.start().is_ok());
  ASSERT_TRUE(server.open_region(RegionDescriptor{"t", "", ""}, {}).is_ok());

  auto apply = [&](Timestamp ts) {
    ApplyRequest req;
    req.commit_ts = ts;
    req.client_id = "c";
    req.table = "t";
    req.mutations.push_back(Mutation{"row" + std::to_string(ts), "c",
                                     std::string(128, 'x'), false});
    ASSERT_TRUE(server.apply_writeset(req).is_ok());
  };

  for (Timestamp ts = 1; ts <= 20; ++ts) {
    apply(ts);
    server.maybe_roll_wal();
  }
  EXPECT_GT(server.wal().stats().rolls, 2u);
  // Un-flushed edits pin every segment: nothing reclaimed yet.
  EXPECT_EQ(server.wal().stats().segments_truncated, 0u);

  // Flush the memstore: the store file now carries the data, the old
  // segments become reclaimable.
  ASSERT_TRUE(server.region("t,")->flush_memstore().is_ok());
  server.maybe_roll_wal();
  EXPECT_GT(server.wal().stats().segments_truncated, 0u);
  EXPECT_LE(server.wal().stats().live_segments, 2u);

  // And reads still see everything.
  EXPECT_EQ(server.get("t", "row7", "c", 100).value()->value, std::string(128, 'x'));
  ASSERT_TRUE(server.shutdown().is_ok());
}

TEST(WalRollTest, SplitAfterCrashSeesAllLiveSegments) {
  // Data synced across several segments must all come back in recovery,
  // while reclaimed segments are (correctly) gone.
  Dfs dfs{DfsConfig{}};
  auto wal = Wal::create(dfs, "/wal/rs1.log").value();
  for (Timestamp ts = 1; ts <= 6; ++ts) {
    ASSERT_TRUE(wal->append(rec(ts % 2 ? "odd" : "even", ts)).is_ok());
    if (ts % 2 == 0) ASSERT_TRUE(wal->roll().is_ok());
  }
  EXPECT_EQ(wal->truncate_obsolete(3), 1u);  // seqs 1-2 were "flushed"
  wal->crash();
  auto grouped = Wal::split(dfs, "/wal/rs1.log").value();
  std::set<std::uint64_t> seqs;
  for (const auto& [region, records] : grouped) {
    for (const auto& r : records) seqs.insert(r.seq);
  }
  EXPECT_EQ(seqs, (std::set<std::uint64_t>{3, 4, 5, 6}));
}

TEST(WalRollTest, TruncateStopsAtMasterFence) {
  Dfs dfs{DfsConfig{}};
  auto wal = Wal::create(dfs, "/wal/rs1.log").value();
  ASSERT_TRUE(wal->append(rec("r", 1)).is_ok());
  ASSERT_TRUE(wal->roll().is_ok());
  ASSERT_TRUE(wal->append(rec("r", 2)).is_ok());
  // The master fenced this server's WAL directory: it is being recovered,
  // and the split must see every remaining segment.
  dfs.fence_prefix("/wal/rs1.log");
  EXPECT_EQ(wal->truncate_obsolete(100), 0u);
  EXPECT_EQ(wal->stats().live_segments, 2u);
  EXPECT_TRUE(dfs.exists("/wal/rs1.log.00000001"));
}

TEST(WalRollTest, ParallelSplitMatchesSequentialReadAndKeepsSeqOrder) {
  Dfs dfs{DfsConfig{}};
  auto wal = Wal::create(dfs, "/wal/rs1.log").value();
  for (Timestamp ts = 1; ts <= 40; ++ts) {
    ASSERT_TRUE(wal->append(rec(ts % 2 ? "odd" : "even", ts)).is_ok());
    if (ts % 8 == 0) ASSERT_TRUE(wal->roll().is_ok());
  }
  ASSERT_TRUE(wal->sync().is_ok());
  Wal::SplitOptions opts;
  opts.workers = 4;
  auto grouped = Wal::split(dfs, "/wal/rs1.log", opts).value();
  ASSERT_EQ(grouped.size(), 2u);
  // Worker interleaving must not disturb per-region sequence order.
  std::size_t total = 0;
  for (const auto& [region, records] : grouped) {
    for (std::size_t i = 1; i < records.size(); ++i) {
      EXPECT_LT(records[i - 1].seq, records[i].seq) << region;
    }
    total += records.size();
  }
  EXPECT_EQ(total, Wal::read_records(dfs, "/wal/rs1.log").value().size());
  EXPECT_EQ(total, 40u);
}

TEST(WalRollTest, SplitIsAllOrNothingOnCorruptSegment) {
  Dfs dfs{DfsConfig{}};
  auto wal = Wal::create(dfs, "/wal/rs1.log").value();
  for (Timestamp ts = 1; ts <= 4; ++ts) {
    ASSERT_TRUE(wal->append(rec("r", ts)).is_ok());
    if (ts % 2 == 0) ASSERT_TRUE(wal->roll().is_ok());
  }
  ASSERT_TRUE(wal->sync().is_ok());
  // Plant a segment whose frame decodes but fails its checksum: the split
  // must fail outright rather than hand back an edit map that silently
  // dropped one source segment's durable records.
  std::string bad;
  Encoder enc(&bad);
  enc.put_string("not a wal record");
  enc.put_u32(0);  // wrong checksum for the payload above
  ASSERT_TRUE(dfs.create("/wal/rs1.log.00000099").is_ok());
  ASSERT_TRUE(dfs.append("/wal/rs1.log.00000099", bad).is_ok());
  ASSERT_TRUE(dfs.sync("/wal/rs1.log.00000099").is_ok());
  auto split = Wal::split(dfs, "/wal/rs1.log");
  ASSERT_FALSE(split.is_ok());
  EXPECT_NE(split.status().to_string().find("checksum"), std::string::npos)
      << split.status();
}

}  // namespace
}  // namespace tfr
