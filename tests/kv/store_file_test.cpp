#include "src/kv/store_file.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace tfr {
namespace {

class StoreFileTest : public ::testing::Test {
 protected:
  StoreFileTest() : dfs_(DfsConfig{}), cache_(1 << 20) {}

  Dfs dfs_;
  BlockCache cache_;
};

TEST_F(StoreFileTest, RoundTripSingleBlock) {
  StoreFileWriter writer;
  writer.add(Cell{"a", "c", "va", 5, false});
  writer.add(Cell{"b", "c", "vb", 7, false});
  ASSERT_TRUE(writer.finish(dfs_, "/sf").is_ok());

  auto reader = StoreFileReader::open(dfs_, "/sf");
  ASSERT_TRUE(reader.is_ok());
  EXPECT_EQ(reader.value()->max_ts(), 7);
  auto cell = reader.value()->get(cache_, "a", "c", 10);
  ASSERT_TRUE(cell.is_ok());
  ASSERT_TRUE(cell.value().has_value());
  EXPECT_EQ(cell.value()->value, "va");
}

TEST_F(StoreFileTest, SnapshotFiltering) {
  StoreFileWriter writer;
  // Sorted order: ts descending within a column.
  writer.add(Cell{"a", "c", "new", 20, false});
  writer.add(Cell{"a", "c", "old", 10, false});
  ASSERT_TRUE(writer.finish(dfs_, "/sf").is_ok());
  auto reader = StoreFileReader::open(dfs_, "/sf").value();
  EXPECT_EQ(reader->get(cache_, "a", "c", 25).value()->value, "new");
  EXPECT_EQ(reader->get(cache_, "a", "c", 15).value()->value, "old");
  EXPECT_FALSE(reader->get(cache_, "a", "c", 5).value().has_value());
}

TEST_F(StoreFileTest, MissingRowReturnsEmpty) {
  StoreFileWriter writer;
  writer.add(Cell{"m", "c", "v", 1, false});
  ASSERT_TRUE(writer.finish(dfs_, "/sf").is_ok());
  auto reader = StoreFileReader::open(dfs_, "/sf").value();
  EXPECT_FALSE(reader->get(cache_, "a", "c", 10).value().has_value());  // before first row
  EXPECT_FALSE(reader->get(cache_, "z", "c", 10).value().has_value());  // after last row
}

TEST_F(StoreFileTest, MultiBlockFileAndIndex) {
  StoreFileWriter writer(/*target_block_bytes=*/256);
  constexpr int kRows = 200;
  for (int i = 0; i < kRows; ++i) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%05d", i);
    writer.add(Cell{row, "c", "value-" + std::to_string(i), 1, false});
  }
  ASSERT_TRUE(writer.finish(dfs_, "/sf").is_ok());
  auto reader = StoreFileReader::open(dfs_, "/sf").value();
  EXPECT_GT(reader->block_count(), 5u);
  // Every row is findable through the index.
  for (int i = 0; i < kRows; i += 17) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%05d", i);
    auto cell = reader->get(cache_, row, "c", 10);
    ASSERT_TRUE(cell.is_ok());
    ASSERT_TRUE(cell.value().has_value()) << row;
    EXPECT_EQ(cell.value()->value, "value-" + std::to_string(i));
  }
}

TEST_F(StoreFileTest, ScanRange) {
  StoreFileWriter writer(128);
  for (int i = 0; i < 50; ++i) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%05d", i);
    writer.add(Cell{row, "c", "v", 1, false});
  }
  ASSERT_TRUE(writer.finish(dfs_, "/sf").is_ok());
  auto reader = StoreFileReader::open(dfs_, "/sf").value();
  auto cells = reader->scan(cache_, "row00010", "row00020", 10);
  ASSERT_TRUE(cells.is_ok());
  EXPECT_EQ(cells.value().size(), 10u);
  EXPECT_EQ(cells.value().front().row, "row00010");
  EXPECT_EQ(cells.value().back().row, "row00019");
}

TEST_F(StoreFileTest, ScanDeduplicatesVersions) {
  StoreFileWriter writer;
  writer.add(Cell{"a", "c", "v2", 2, false});
  writer.add(Cell{"a", "c", "v1", 1, false});
  ASSERT_TRUE(writer.finish(dfs_, "/sf").is_ok());
  auto reader = StoreFileReader::open(dfs_, "/sf").value();
  auto cells = reader->scan(cache_, "", "", 10).value();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].value, "v2");
}

TEST_F(StoreFileTest, EmptyFileIsValid) {
  StoreFileWriter writer;
  ASSERT_TRUE(writer.finish(dfs_, "/sf").is_ok());
  auto reader = StoreFileReader::open(dfs_, "/sf").value();
  EXPECT_EQ(reader->block_count(), 0u);
  EXPECT_FALSE(reader->get(cache_, "x", "c", 10).value().has_value());
  EXPECT_TRUE(reader->scan(cache_, "", "", 10).value().empty());
}

TEST_F(StoreFileTest, CorruptFileRejected) {
  ASSERT_TRUE(dfs_.write_file("/junk", "this is not a store file at all....").is_ok());
  EXPECT_EQ(StoreFileReader::open(dfs_, "/junk").status().code(), Code::kCorruption);
  ASSERT_TRUE(dfs_.write_file("/tiny", "xy").is_ok());
  EXPECT_EQ(StoreFileReader::open(dfs_, "/tiny").status().code(), Code::kCorruption);
}

std::vector<Cell> drain(CellIterator& it) {
  std::vector<Cell> out;
  while (it.valid()) {
    out.push_back(it.cell());
    EXPECT_TRUE(it.advance().is_ok());
  }
  return out;
}

TEST_F(StoreFileTest, RowBeforeFirstBlock) {
  StoreFileWriter writer(128);
  for (int i = 10; i < 40; ++i) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%05d", i);
    writer.add(Cell{row, "c", "v", 1, false});
  }
  ASSERT_TRUE(writer.finish(dfs_, "/sf").is_ok());
  auto reader = StoreFileReader::open(dfs_, "/sf").value();
  ASSERT_GT(reader->block_count(), 2u);
  // A row sorting before the whole file: no index block covers it.
  EXPECT_FALSE(reader->get(cache_, "row00001", "c", 10).value().has_value());
  EXPECT_TRUE(reader->scan(cache_, "a", "row00010", 10).value().empty());
  // An iterator starting before the first row begins at the first row.
  auto it = reader->iterate(cache_, "a", "").value();
  ASSERT_TRUE(it->valid());
  EXPECT_EQ(it->cell().row, "row00010");
  EXPECT_EQ(drain(*it).size(), 30u);
}

TEST_F(StoreFileTest, EmptyScanRange) {
  StoreFileWriter writer(128);
  for (int i = 0; i < 20; ++i) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%05d", i);
    writer.add(Cell{row, "c", "v", 1, false});
  }
  ASSERT_TRUE(writer.finish(dfs_, "/sf").is_ok());
  auto reader = StoreFileReader::open(dfs_, "/sf").value();
  // start == end: nothing qualifies.
  EXPECT_TRUE(reader->scan(cache_, "row00005", "row00005", 10).value().empty());
  EXPECT_FALSE(reader->iterate(cache_, "row00005", "row00005").value()->valid());
  // A range that falls between two adjacent rows.
  EXPECT_TRUE(reader->scan(cache_, "row00005a", "row00006", 10).value().empty());
  // A range past the last row.
  EXPECT_FALSE(reader->iterate(cache_, "row99999", "").value()->valid());
}

TEST_F(StoreFileTest, IterateMidRangeStartsInsideBlock) {
  StoreFileWriter writer(128);
  for (int i = 0; i < 50; ++i) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%05d", i);
    writer.add(Cell{row, "c", "v" + std::to_string(i), 1, false});
  }
  ASSERT_TRUE(writer.finish(dfs_, "/sf").is_ok());
  auto reader = StoreFileReader::open(dfs_, "/sf").value();
  auto it = reader->iterate(cache_, "row00023", "row00031").value();
  auto cells = drain(*it);
  ASSERT_EQ(cells.size(), 8u);
  EXPECT_EQ(cells.front().row, "row00023");
  EXPECT_EQ(cells.back().row, "row00030");
}

TEST_F(StoreFileTest, V2MetadataRoundTrip) {
  StoreFileWriter writer;
  writer.add(Cell{"apple", "c", "v", 3, false});
  writer.add(Cell{"mango", "c", "v", 2, false});
  writer.add(Cell{"peach", "c", "v", 1, false});
  ASSERT_TRUE(writer.finish(dfs_, "/sf").is_ok());
  auto reader = StoreFileReader::open(dfs_, "/sf").value();
  EXPECT_EQ(reader->format_version(), 2);
  ASSERT_TRUE(reader->has_key_range());
  EXPECT_EQ(reader->first_row(), "apple");
  EXPECT_EQ(reader->last_row(), "peach");
  EXPECT_TRUE(reader->may_contain_row("mango"));
  EXPECT_FALSE(reader->may_contain_row("aardvark"));  // before the key range
  EXPECT_FALSE(reader->may_contain_row("zebra"));     // after the key range
  EXPECT_TRUE(reader->range_overlaps("m", "n"));
  EXPECT_FALSE(reader->range_overlaps("q", "z"));
  EXPECT_FALSE(reader->range_overlaps("a", "apple"));  // end is exclusive
  EXPECT_TRUE(reader->range_overlaps("peach", ""));    // last row inclusive
}

TEST_F(StoreFileTest, PrunedGetDoesNoBlockFetch) {
  StoreFileWriter writer;
  writer.add(Cell{"k05", "c", "v", 1, false});
  writer.add(Cell{"k09", "c", "v", 1, false});
  ASSERT_TRUE(writer.finish(dfs_, "/sf").is_ok());
  auto reader = StoreFileReader::open(dfs_, "/sf").value();
  const auto reads_before = dfs_.stats().block_reads;
  // In range but bloom-rejected (or out of range): the get never touches a block.
  EXPECT_FALSE(reader->get(cache_, "a00", "c", 10).value().has_value());
  if (!reader->may_contain_row("k07")) {
    EXPECT_FALSE(reader->get(cache_, "k07", "c", 10).value().has_value());
  }
  EXPECT_EQ(dfs_.stats().block_reads, reads_before);
}

TEST_F(StoreFileTest, BloomFalsePositiveStillCorrect) {
  StoreFileWriter writer(128);
  for (int i = 0; i < 50; ++i) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%05d", i);
    writer.add(Cell{row, "c", "v", 1, false});
  }
  ASSERT_TRUE(writer.finish(dfs_, "/sf").is_ok());
  auto reader = StoreFileReader::open(dfs_, "/sf").value();
  // Hunt for a row the bloom admits but the file does not contain. Candidates
  // sort inside [first_row, last_row] so the range check cannot mask the
  // bloom verdict; at ~1% fp rate one of 200k deterministic candidates is
  // effectively guaranteed.
  std::string fp;
  for (int j = 0; j < 200000 && fp.empty(); ++j) {
    std::string candidate = "row00010q" + std::to_string(j);
    if (reader->may_contain_row(candidate)) fp = std::move(candidate);
  }
  ASSERT_FALSE(fp.empty()) << "no bloom false positive among the candidates";
  // The admitted-but-absent row still reads as not-found (block consulted,
  // row not there) — the filter only ever skips work, never invents data.
  auto got = reader->get(cache_, fp, "c", 10);
  ASSERT_TRUE(got.is_ok());
  EXPECT_FALSE(got.value().has_value());
}

TEST_F(StoreFileTest, V1FormatReadByNewReader) {
  StoreFileWriter writer(/*target_block_bytes=*/128, /*format_version=*/1);
  for (int i = 0; i < 30; ++i) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%05d", i);
    writer.add(Cell{row, "c", "v" + std::to_string(i), static_cast<Timestamp>(i + 1), false});
  }
  ASSERT_TRUE(writer.finish(dfs_, "/sf-v1").is_ok());
  auto reader = StoreFileReader::open(dfs_, "/sf-v1").value();
  EXPECT_EQ(reader->format_version(), 1);
  EXPECT_FALSE(reader->has_key_range());
  // No meta to prune on: every row may be present, every range overlaps.
  EXPECT_TRUE(reader->may_contain_row("zzz"));
  EXPECT_TRUE(reader->range_overlaps("x", "y"));
  // Reads behave exactly as for a v2 file.
  EXPECT_EQ(reader->get(cache_, "row00017", "c", 100).value()->value, "v17");
  EXPECT_FALSE(reader->get(cache_, "nope", "c", 100).value().has_value());
  EXPECT_EQ(reader->scan(cache_, "row00010", "row00020", 100).value().size(), 10u);
  auto it = reader->iterate(cache_, "", "").value();
  EXPECT_EQ(drain(*it).size(), 30u);
  EXPECT_EQ(reader->max_ts(), 30);
}

TEST_F(StoreFileTest, V1EmptyFileIsValid) {
  StoreFileWriter writer(16 * 1024, /*format_version=*/1);
  ASSERT_TRUE(writer.finish(dfs_, "/sf-v1-empty").is_ok());
  auto reader = StoreFileReader::open(dfs_, "/sf-v1-empty").value();
  EXPECT_EQ(reader->format_version(), 1);
  EXPECT_FALSE(reader->iterate(cache_, "", "").value()->valid());
}

TEST_F(StoreFileTest, BlockReadsGoThroughCache) {
  StoreFileWriter writer;
  writer.add(Cell{"a", "c", "v", 1, false});
  ASSERT_TRUE(writer.finish(dfs_, "/sf").is_ok());
  auto reader = StoreFileReader::open(dfs_, "/sf").value();
  const auto dfs_reads_before = dfs_.stats().block_reads;
  ASSERT_TRUE(reader->get(cache_, "a", "c", 10).is_ok());  // miss -> DFS read
  const auto after_first = dfs_.stats().block_reads;
  EXPECT_GT(after_first, dfs_reads_before);
  ASSERT_TRUE(reader->get(cache_, "a", "c", 10).is_ok());  // hit -> no DFS read
  EXPECT_EQ(dfs_.stats().block_reads, after_first);
  EXPECT_GE(cache_.stats().hits, 1);
}

}  // namespace
}  // namespace tfr
