#include "src/kv/store_file.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace tfr {
namespace {

class StoreFileTest : public ::testing::Test {
 protected:
  StoreFileTest() : dfs_(DfsConfig{}), cache_(1 << 20) {}

  Dfs dfs_;
  BlockCache cache_;
};

TEST_F(StoreFileTest, RoundTripSingleBlock) {
  StoreFileWriter writer;
  writer.add(Cell{"a", "c", "va", 5, false});
  writer.add(Cell{"b", "c", "vb", 7, false});
  ASSERT_TRUE(writer.finish(dfs_, "/sf").is_ok());

  auto reader = StoreFileReader::open(dfs_, "/sf");
  ASSERT_TRUE(reader.is_ok());
  EXPECT_EQ(reader.value()->max_ts(), 7);
  auto cell = reader.value()->get(cache_, "a", "c", 10);
  ASSERT_TRUE(cell.is_ok());
  ASSERT_TRUE(cell.value().has_value());
  EXPECT_EQ(cell.value()->value, "va");
}

TEST_F(StoreFileTest, SnapshotFiltering) {
  StoreFileWriter writer;
  // Sorted order: ts descending within a column.
  writer.add(Cell{"a", "c", "new", 20, false});
  writer.add(Cell{"a", "c", "old", 10, false});
  ASSERT_TRUE(writer.finish(dfs_, "/sf").is_ok());
  auto reader = StoreFileReader::open(dfs_, "/sf").value();
  EXPECT_EQ(reader->get(cache_, "a", "c", 25).value()->value, "new");
  EXPECT_EQ(reader->get(cache_, "a", "c", 15).value()->value, "old");
  EXPECT_FALSE(reader->get(cache_, "a", "c", 5).value().has_value());
}

TEST_F(StoreFileTest, MissingRowReturnsEmpty) {
  StoreFileWriter writer;
  writer.add(Cell{"m", "c", "v", 1, false});
  ASSERT_TRUE(writer.finish(dfs_, "/sf").is_ok());
  auto reader = StoreFileReader::open(dfs_, "/sf").value();
  EXPECT_FALSE(reader->get(cache_, "a", "c", 10).value().has_value());  // before first row
  EXPECT_FALSE(reader->get(cache_, "z", "c", 10).value().has_value());  // after last row
}

TEST_F(StoreFileTest, MultiBlockFileAndIndex) {
  StoreFileWriter writer(/*target_block_bytes=*/256);
  constexpr int kRows = 200;
  for (int i = 0; i < kRows; ++i) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%05d", i);
    writer.add(Cell{row, "c", "value-" + std::to_string(i), 1, false});
  }
  ASSERT_TRUE(writer.finish(dfs_, "/sf").is_ok());
  auto reader = StoreFileReader::open(dfs_, "/sf").value();
  EXPECT_GT(reader->block_count(), 5u);
  // Every row is findable through the index.
  for (int i = 0; i < kRows; i += 17) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%05d", i);
    auto cell = reader->get(cache_, row, "c", 10);
    ASSERT_TRUE(cell.is_ok());
    ASSERT_TRUE(cell.value().has_value()) << row;
    EXPECT_EQ(cell.value()->value, "value-" + std::to_string(i));
  }
}

TEST_F(StoreFileTest, ScanRange) {
  StoreFileWriter writer(128);
  for (int i = 0; i < 50; ++i) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%05d", i);
    writer.add(Cell{row, "c", "v", 1, false});
  }
  ASSERT_TRUE(writer.finish(dfs_, "/sf").is_ok());
  auto reader = StoreFileReader::open(dfs_, "/sf").value();
  auto cells = reader->scan(cache_, "row00010", "row00020", 10);
  ASSERT_TRUE(cells.is_ok());
  EXPECT_EQ(cells.value().size(), 10u);
  EXPECT_EQ(cells.value().front().row, "row00010");
  EXPECT_EQ(cells.value().back().row, "row00019");
}

TEST_F(StoreFileTest, ScanDeduplicatesVersions) {
  StoreFileWriter writer;
  writer.add(Cell{"a", "c", "v2", 2, false});
  writer.add(Cell{"a", "c", "v1", 1, false});
  ASSERT_TRUE(writer.finish(dfs_, "/sf").is_ok());
  auto reader = StoreFileReader::open(dfs_, "/sf").value();
  auto cells = reader->scan(cache_, "", "", 10).value();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].value, "v2");
}

TEST_F(StoreFileTest, EmptyFileIsValid) {
  StoreFileWriter writer;
  ASSERT_TRUE(writer.finish(dfs_, "/sf").is_ok());
  auto reader = StoreFileReader::open(dfs_, "/sf").value();
  EXPECT_EQ(reader->block_count(), 0u);
  EXPECT_FALSE(reader->get(cache_, "x", "c", 10).value().has_value());
  EXPECT_TRUE(reader->scan(cache_, "", "", 10).value().empty());
}

TEST_F(StoreFileTest, CorruptFileRejected) {
  ASSERT_TRUE(dfs_.write_file("/junk", "this is not a store file at all....").is_ok());
  EXPECT_EQ(StoreFileReader::open(dfs_, "/junk").status().code(), Code::kCorruption);
  ASSERT_TRUE(dfs_.write_file("/tiny", "xy").is_ok());
  EXPECT_EQ(StoreFileReader::open(dfs_, "/tiny").status().code(), Code::kCorruption);
}

TEST_F(StoreFileTest, BlockReadsGoThroughCache) {
  StoreFileWriter writer;
  writer.add(Cell{"a", "c", "v", 1, false});
  ASSERT_TRUE(writer.finish(dfs_, "/sf").is_ok());
  auto reader = StoreFileReader::open(dfs_, "/sf").value();
  const auto dfs_reads_before = dfs_.stats().block_reads;
  ASSERT_TRUE(reader->get(cache_, "a", "c", 10).is_ok());  // miss -> DFS read
  const auto after_first = dfs_.stats().block_reads;
  EXPECT_GT(after_first, dfs_reads_before);
  ASSERT_TRUE(reader->get(cache_, "a", "c", 10).is_ok());  // hit -> no DFS read
  EXPECT_EQ(dfs_.stats().block_reads, after_first);
  EXPECT_GE(cache_.stats().hits, 1);
}

}  // namespace
}  // namespace tfr
