// Randomized read-path property test: a Region under a random schedule of
// puts, deletes, idempotent write-set replays, memstore flushes and
// compactions, cross-checked against an in-memory MVCC model on every get
// and scan. Each scan additionally runs through BOTH read paths — the
// streaming iterator merge and the legacy materialize-then-merge
// (read_path_flags().streaming_scan) — and the two must agree cell-for-cell,
// so the bloom/range pruning and limit-aware early termination can never
// change a result, only the work done to produce it.
//
// Seeds are fixed for CI; TFR_PROP_SEED=<seed> replays a single seed and
// TFR_PROP_ITERS=<n> overrides the operation count.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>
#include <vector>

#include "src/common/random.h"
#include "src/kv/cell_iter.h"
#include "src/kv/region.h"

namespace tfr {
namespace {

constexpr std::uint64_t kRowSpace = 40;
constexpr std::uint64_t kColSpace = 3;

std::string row_name(std::uint64_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "r%03llu", static_cast<unsigned long long>(i));
  return buf;
}

/// Reference model: every version ever written, keyed (row, column) -> ts.
using Model = std::map<std::pair<std::string, std::string>, std::map<Timestamp, Cell>>;

std::optional<Cell> model_get(const Model& model, const std::string& row,
                              const std::string& column, Timestamp read_ts) {
  auto it = model.find({row, column});
  if (it == model.end()) return std::nullopt;
  auto vit = it->second.upper_bound(read_ts);
  if (vit == it->second.begin()) return std::nullopt;
  const Cell& cell = std::prev(vit)->second;
  if (cell.tombstone) return std::nullopt;
  return cell;
}

/// Visible cells of rows in [start, end), at most `limit` rows (0 = all) —
/// the contract of Region::scan. Tombstone-surviving columns are skipped and
/// rows with no visible column do not count toward the limit.
std::vector<Cell> model_scan(const Model& model, const std::string& start,
                             const std::string& end, Timestamp read_ts, std::size_t limit) {
  std::vector<Cell> out;
  std::string current_row;
  bool row_counted = false;
  std::size_t rows = 0;
  for (const auto& [key, versions] : model) {
    const auto& [row, column] = key;
    if (row < start || (!end.empty() && row >= end)) continue;
    if (row != current_row) {
      if (limit != 0 && rows == limit) break;
      current_row = row;
      row_counted = false;
    }
    auto vit = versions.upper_bound(read_ts);
    if (vit == versions.begin()) continue;
    const Cell& cell = std::prev(vit)->second;
    if (cell.tombstone) continue;
    if (!row_counted) {
      if (limit != 0 && rows == limit) break;
      ++rows;
      row_counted = true;
    }
    out.push_back(cell);
  }
  return out;
}

void expect_same_cells(const std::vector<Cell>& got, const std::vector<Cell>& want,
                       const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].row, want[i].row) << what << " #" << i;
    EXPECT_EQ(got[i].column, want[i].column) << what << " #" << i;
    EXPECT_EQ(got[i].ts, want[i].ts) << what << " #" << i;
    EXPECT_EQ(got[i].value, want[i].value) << what << " #" << i;
  }
}

/// Restores the global read-path flags (other tests assume the defaults).
struct FlagsGuard {
  ~FlagsGuard() {
    read_path_flags().bloom_pruning.store(true);
    read_path_flags().range_pruning.store(true);
    read_path_flags().streaming_scan.store(true);
  }
};

class ReadPathPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReadPathPropertyTest, ReadsMatchOracleAndLegacyPath) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("replay with TFR_PROP_SEED=" + std::to_string(seed));
  Rng rng(seed);
  int iters = 300;
  if (const char* env = std::getenv("TFR_PROP_ITERS")) iters = std::atoi(env);

  FlagsGuard guard;
  Dfs dfs{DfsConfig{}};
  BlockCache cache(1 << 20);
  Region region(RegionDescriptor{"t", "", ""}, dfs, cache, /*store_block_bytes=*/256);
  ASSERT_TRUE(region.load_store_files().is_ok());
  region.set_state(RegionState::kOnline);

  Model model;
  Timestamp next_ts = 1;  // commit timestamps are unique and increasing
  std::vector<std::vector<Cell>> past_batches;

  for (int op = 0; op < iters; ++op) {
    const double dice = rng.next_double();
    if (dice < 0.45) {
      // Put/delete batch with fresh timestamps.
      std::vector<Cell> batch;
      const int n = static_cast<int>(rng.next_below(6)) + 1;
      for (int i = 0; i < n; ++i) {
        Cell cell{row_name(rng.next_below(kRowSpace)),
                  "c" + std::to_string(rng.next_below(kColSpace)),
                  "v" + std::to_string(next_ts), next_ts, rng.next_bool(0.15)};
        if (cell.tombstone) cell.value.clear();
        ++next_ts;
        batch.push_back(cell);
      }
      ASSERT_TRUE(region.apply(batch));
      for (const Cell& cell : batch) model[{cell.row, cell.column}][cell.ts] = cell;
      past_batches.push_back(std::move(batch));
    } else if (dice < 0.55 && !past_batches.empty()) {
      // Idempotent replay: re-apply an old batch verbatim (duplicate
      // (row, column, ts) cells across memstore and files).
      const auto& batch = past_batches[rng.next_below(past_batches.size())];
      ASSERT_TRUE(region.apply(batch));  // model unchanged: same cells
    } else if (dice < 0.65) {
      ASSERT_TRUE(region.flush_memstore().is_ok());
    } else if (dice < 0.70) {
      if (region.store_file_count() >= 2) {
        ASSERT_TRUE(region.compact(kNoTimestamp).is_ok());
      }
    } else if (dice < 0.85) {
      const std::string row = row_name(rng.next_below(kRowSpace + 2));
      const std::string col = "c" + std::to_string(rng.next_below(kColSpace));
      const auto read_ts = static_cast<Timestamp>(rng.next_below(next_ts + 2));
      auto got = region.get(row, col, read_ts);
      ASSERT_TRUE(got.is_ok());
      const auto want = model_get(model, row, col, read_ts);
      ASSERT_EQ(got.value().has_value(), want.has_value())
          << row << "/" << col << "@" << read_ts << " op " << op;
      if (want) {
        EXPECT_EQ(got.value()->value, want->value);
        EXPECT_EQ(got.value()->ts, want->ts);
      }
    } else {
      std::string start = row_name(rng.next_below(kRowSpace));
      std::string end = rng.next_bool(0.3) ? "" : row_name(rng.next_below(kRowSpace + 2));
      if (rng.next_bool(0.1)) start.clear();
      const auto read_ts = static_cast<Timestamp>(rng.next_below(next_ts + 2));
      const auto limit = rng.next_below(6);  // 0 = unlimited
      const std::string what = "scan [" + start + ", " + end + ")@" +
                               std::to_string(read_ts) + " limit " + std::to_string(limit) +
                               " op " + std::to_string(op);

      read_path_flags().streaming_scan.store(true);
      auto streamed = region.scan(start, end, read_ts, limit);
      ASSERT_TRUE(streamed.is_ok()) << what;
      expect_same_cells(streamed.value(), model_scan(model, start, end, read_ts, limit), what);

      // The legacy materializing path must return the identical cells.
      read_path_flags().streaming_scan.store(false);
      auto legacy = region.scan(start, end, read_ts, limit);
      ASSERT_TRUE(legacy.is_ok()) << what;
      expect_same_cells(legacy.value(), streamed.value(), what + " (legacy)");
      read_path_flags().streaming_scan.store(true);

      // Pruning off must not change point reads either: spot-check one row.
      if (rng.next_bool(0.2)) {
        const std::string row = row_name(rng.next_below(kRowSpace));
        read_path_flags().bloom_pruning.store(false);
        read_path_flags().range_pruning.store(false);
        auto unpruned = region.get(row, "c0", read_ts);
        read_path_flags().bloom_pruning.store(true);
        read_path_flags().range_pruning.store(true);
        auto pruned = region.get(row, "c0", read_ts);
        ASSERT_TRUE(unpruned.is_ok() && pruned.is_ok());
        ASSERT_EQ(pruned.value().has_value(), unpruned.value().has_value()) << what;
        if (pruned.value()) {
          EXPECT_EQ(pruned.value()->value, unpruned.value()->value);
        }
      }
    }
  }

  // Final sweep: every (row, column) at the latest snapshot.
  for (std::uint64_t r = 0; r < kRowSpace; ++r) {
    for (std::uint64_t c = 0; c < kColSpace; ++c) {
      const std::string row = row_name(r);
      const std::string col = "c" + std::to_string(c);
      auto got = region.get(row, col, next_ts);
      ASSERT_TRUE(got.is_ok());
      const auto want = model_get(model, row, col, next_ts);
      ASSERT_EQ(got.value().has_value(), want.has_value()) << row << "/" << col;
      if (want) {
        EXPECT_EQ(got.value()->value, want->value);
      }
    }
  }
}

std::vector<std::uint64_t> property_seeds() {
  if (const char* env = std::getenv("TFR_PROP_SEED")) {
    return {std::strtoull(env, nullptr, 10)};
  }
  return {7, 42, 137, 1009};
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReadPathPropertyTest, ::testing::ValuesIn(property_seeds()));

}  // namespace
}  // namespace tfr
