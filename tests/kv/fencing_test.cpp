// Epoch-fenced region ownership, unit level: the registry's fencing-token
// arithmetic, the WAL append check, DFS writer fencing (fence_prefix) and
// rename-based store-file fencing, lease-based self-fencing, and the
// master's epoch lifecycle (grant at create, bump on move/failover,
// idempotence under duplicate failure deliveries). The integrated zombie
// scenario lives in tests/integration/zombie_partition_test.cpp.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/common/epoch.h"
#include "src/common/fault.h"
#include "src/common/metrics.h"
#include "src/dfs/dfs.h"
#include "src/kv/cluster.h"
#include "src/kv/kv_client.h"
#include "src/kv/wal.h"

namespace tfr {
namespace {

ClusterConfig fast_cluster(int servers) {
  ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.coord_check_interval = millis(5);
  cfg.server.heartbeat_interval = millis(20);
  cfg.server.session_ttl = millis(100);
  cfg.server.wal_sync_interval = millis(10);
  return cfg;
}

WriteSet make_ws(Timestamp ts, std::vector<std::string> rows) {
  WriteSet ws;
  ws.txn_id = static_cast<std::uint64_t>(ts);
  ws.client_id = "c1";
  ws.commit_ts = ts;
  ws.table = "t";
  for (auto& r : rows) ws.mutations.push_back(Mutation{r, "c", "v" + std::to_string(ts), false});
  return ws;
}

// --- EpochRegistry -----------------------------------------------------------

TEST(EpochRegistryTest, AdvanceIsMonotonicAndValidateFencesStaleEpochs) {
  EpochRegistry reg;
  EXPECT_EQ(reg.current("r1"), 0u);
  // Unknown region: every epoch (including 0 = unfenced) passes.
  EXPECT_TRUE(reg.validate("r1", 0).is_ok());

  EXPECT_EQ(reg.advance_to("r1", 2), 2u);
  EXPECT_EQ(reg.current("r1"), 2u);
  EXPECT_TRUE(reg.validate("r1", 2).is_ok());
  EXPECT_TRUE(reg.validate("r1", 3).is_ok());  // newer grant than recorded: fine
  EXPECT_TRUE(reg.validate("r1", 1).is_wrong_epoch());
  EXPECT_TRUE(reg.validate("r1", 0).is_wrong_epoch());

  // Regressions are ignored; the epoch in force is returned.
  EXPECT_EQ(reg.advance_to("r1", 1), 2u);
  EXPECT_EQ(reg.current("r1"), 2u);

  // Regions are independent.
  EXPECT_TRUE(reg.validate("r2", 0).is_ok());
}

// --- WAL fencing-token check -------------------------------------------------

TEST(WalFencingTest, StaleEpochAppendRejectedAndCounted) {
  Dfs dfs(DfsConfig{});
  auto wal = Wal::create(dfs, "/wal/rs9.log");
  ASSERT_TRUE(wal.is_ok());
  EpochRegistry reg;
  wal.value()->set_epoch_registry(&reg);

  WalRecord rec;
  rec.region = "r1";
  rec.txn_id = 1;
  rec.client_id = "c1";
  rec.commit_ts = 5;
  rec.epoch = 1;
  ASSERT_TRUE(wal.value()->append(rec).is_ok());  // no entry yet: unfenced

  const std::int64_t rejects_before = global_counter("kv.epoch_rejects").get();
  reg.advance_to("r1", 3);
  EXPECT_TRUE(wal.value()->append(rec).status().is_wrong_epoch());  // epoch 1 < 3
  EXPECT_EQ(global_counter("kv.epoch_rejects").get(), rejects_before + 1);

  rec.epoch = 3;
  EXPECT_TRUE(wal.value()->append(rec).is_ok());
  // Another region is not fenced by r1's grant.
  rec.region = "r2";
  rec.epoch = 0;
  EXPECT_TRUE(wal.value()->append(rec).is_ok());
  EXPECT_EQ(global_counter("kv.epoch_rejects").get(), rejects_before + 1);
}

// --- DFS writer fencing ------------------------------------------------------

TEST(DfsFencingTest, FencePrefixDropsUnsyncedTailAndRejectsFurtherWrites) {
  Dfs dfs(DfsConfig{});
  const std::string path = "/wal/rs1.log.00000001";
  ASSERT_TRUE(dfs.create(path).is_ok());
  ASSERT_TRUE(dfs.append(path, "durable").is_ok());
  ASSERT_TRUE(dfs.sync(path).is_ok());
  ASSERT_TRUE(dfs.append(path, "+tail").is_ok());  // in the pipeline, not durable

  dfs.fence_prefix("/wal/rs1.log");
  EXPECT_TRUE(dfs.is_fenced(path));
  EXPECT_FALSE(dfs.is_fenced("/wal/rs2.log.00000001"));

  // The un-synced tail is gone (lease recovery closed the file)...
  EXPECT_EQ(dfs.read_all(path).value(), "durable");
  // ...and the old writer can neither extend nor sync nor reopen the log.
  EXPECT_TRUE(dfs.append(path, "zombie").is_wrong_epoch());
  EXPECT_TRUE(dfs.sync(path).status().is_wrong_epoch());
  EXPECT_TRUE(dfs.create("/wal/rs1.log.00000002").is_wrong_epoch());
  // Idempotent.
  dfs.fence_prefix("/wal/rs1.log");
  EXPECT_EQ(dfs.read_all(path).value(), "durable");
}

TEST(DfsFencingTest, RenameMovesFilesAndRespectsFences) {
  Dfs dfs(DfsConfig{});
  ASSERT_TRUE(dfs.write_file("/tmp/data/r/sf-1", "cells").is_ok());
  ASSERT_TRUE(dfs.rename("/tmp/data/r/sf-1", "/data/r/sf-1").is_ok());
  EXPECT_FALSE(dfs.exists("/tmp/data/r/sf-1"));
  EXPECT_EQ(dfs.read_all("/data/r/sf-1").value(), "cells");

  EXPECT_TRUE(dfs.rename("/tmp/missing", "/data/r/sf-2").is_not_found());
  ASSERT_TRUE(dfs.write_file("/tmp/data/r/sf-3", "x").is_ok());
  EXPECT_EQ(dfs.rename("/tmp/data/r/sf-3", "/data/r/sf-1").code(), Code::kAlreadyExists);

  // The rename commit point respects fences on the destination: a fenced
  // namespace cannot gain files from a stale finalizer.
  dfs.fence_prefix("/data/fenced/");
  EXPECT_TRUE(dfs.rename("/tmp/data/r/sf-3", "/data/fenced/sf-1").is_wrong_epoch());
  EXPECT_TRUE(dfs.exists("/tmp/data/r/sf-3"));  // left in place for cleanup
}

// --- lease-based self-fencing ------------------------------------------------

TEST(SelfFenceTest, ServerPartitionedFromCoordStopsServingWithinTtl) {
  Cluster cluster(fast_cluster(2));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {"m"}).is_ok());

  const std::int64_t fences_before = global_counter("kv.self_fences").get();
  RegionServer& victim = cluster.server(0);
  cluster.fault().add_partition(PartitionRule{victim.id(), "coord", /*symmetric=*/true});

  // The victim's renewals are lost; once its conservative lease estimate
  // (measured from before the last successful send) lapses, it must stop
  // serving on its own — no coordination-service round trip required.
  const Micros deadline = now_micros() + seconds(10);
  while (victim.alive() && now_micros() < deadline) sleep_millis(5);
  EXPECT_FALSE(victim.alive());
  EXPECT_EQ(global_counter("kv.self_fences").get(), fences_before + 1);

  // The master meanwhile declared it dead via session expiry and failed the
  // regions over; the cluster stays writable.
  cluster.master().wait_for_idle();
  KvClient client(cluster.master(), millis(1));
  client.set_client_id("c1");
  EXPECT_TRUE(client.flush_writeset(make_ws(5, {"apple", "zebra"})).is_ok());
  cluster.fault().clear_partitions();
}

// --- master epoch lifecycle --------------------------------------------------

TEST(MasterFencingTest, CreateTableGrantsEpochOneAndMoveBumpsIt) {
  Cluster cluster(fast_cluster(2));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {}).is_ok());
  const auto loc = cluster.master().locate("t", "x").value();
  EXPECT_EQ(loc.epoch, 1u);
  EXPECT_EQ(cluster.master().region_epoch(loc.region_name), 1u);

  const std::string target = loc.server_id == "rs1" ? "rs2" : "rs1";
  ASSERT_TRUE(cluster.master().move_region(loc.region_name, target).is_ok());
  EXPECT_EQ(cluster.master().region_epoch(loc.region_name), 2u);
  // The grant is durable in the coordination service's KV namespace...
  EXPECT_EQ(cluster.coord().get(kEpochPrefix + loc.region_name).value(), 2);
  // ...and armed in the registry: the old epoch is fenced.
  EXPECT_TRUE(cluster.epochs().validate(loc.region_name, 1).is_wrong_epoch());
  EXPECT_TRUE(cluster.epochs().validate(loc.region_name, 2).is_ok());
}

TEST(MasterFencingTest, FailoverBumpsTheEpochBeforeReassignment) {
  Cluster cluster(fast_cluster(2));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {"m"}).is_ok());
  KvClient client(cluster.master(), millis(1));
  client.set_client_id("c1");
  ASSERT_TRUE(client.flush_writeset(make_ws(5, {"apple", "zebra"})).is_ok());
  ASSERT_TRUE(cluster.server(0).persist_wal().is_ok());
  ASSERT_TRUE(cluster.server(1).persist_wal().is_ok());

  // Regions are round-robined, so only the crashed server's regions get
  // fenced; the survivor's keep their original grant.
  std::set<std::string> victims;
  for (const auto& r : cluster.master().table_regions("t")) {
    if (r.server_id == cluster.server(0).id()) victims.insert(r.region_name);
  }
  ASSERT_FALSE(victims.empty());

  cluster.crash_server(0);
  const Micros deadline = now_micros() + seconds(5);
  while (cluster.master().live_servers().size() != 1 && now_micros() < deadline) {
    sleep_millis(5);
  }
  cluster.master().wait_for_idle();

  for (const auto& r : cluster.master().table_regions("t")) {
    EXPECT_EQ(r.server_id, "rs2");
    if (victims.count(r.region_name) == 0) {
      EXPECT_EQ(r.epoch, 1u) << r.region_name;
      continue;
    }
    EXPECT_EQ(r.epoch, 2u) << r.region_name;
    EXPECT_EQ(cluster.coord().get(kEpochPrefix + r.region_name).value(), 2);
    EXPECT_TRUE(cluster.epochs().validate(r.region_name, 1).is_wrong_epoch());
  }
  // Data written under epoch 1 survived the fenced takeover.
  EXPECT_EQ(client.get("t", "apple", "c", 10).value()->value, "v5");
  EXPECT_EQ(client.get("t", "zebra", "c", 10).value()->value, "v5");
}

TEST(MasterFencingTest, DuplicateFailureDeliveryDoesNotSplitTwice) {
  Cluster cluster(fast_cluster(2));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {"m"}).is_ok());
  KvClient client(cluster.master(), millis(1));
  client.set_client_id("c1");
  ASSERT_TRUE(client.flush_writeset(make_ws(5, {"apple", "zebra"})).is_ok());
  ASSERT_TRUE(cluster.server(0).persist_wal().is_ok());
  ASSERT_TRUE(cluster.server(1).persist_wal().is_ok());

  const std::int64_t splits_before = global_counter("master.wal_splits").get();
  cluster.crash_server(0);
  const Micros deadline = now_micros() + seconds(5);
  while (cluster.master().live_servers().size() != 1 && now_micros() < deadline) {
    sleep_millis(5);
  }
  cluster.master().wait_for_idle();
  EXPECT_EQ(global_counter("master.wal_splits").get(), splits_before + 1);
  const std::uint64_t epoch_after_first =
      cluster.master().region_epoch(cluster.master().locate("t", "apple").value().region_name);

  // The same dead incarnation is reported again (a coordination service may
  // deliver duplicate expiry events; an operator may re-report). The master
  // must not run a second WAL split or bump epochs again.
  cluster.master().report_server_down("rs1", /*crashed=*/true);
  cluster.master().report_server_down("rs1", /*crashed=*/true);
  cluster.master().wait_for_idle();
  EXPECT_EQ(global_counter("master.wal_splits").get(), splits_before + 1);
  EXPECT_EQ(cluster.master()
                .region_epoch(cluster.master().locate("t", "apple").value().region_name),
            epoch_after_first);
  // And the data is still there.
  EXPECT_EQ(client.get("t", "apple", "c", 10).value()->value, "v5");
}

}  // namespace
}  // namespace tfr
