// KvClient mechanics: the unlimited-retry flush protocol, cancellation, and
// bounded-retry reads.
#include "src/kv/kv_client.h"

#include <gtest/gtest.h>

#include <thread>

#include "src/kv/cluster.h"

namespace tfr {
namespace {

ClusterConfig tiny_cluster(int servers = 2) {
  ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.coord_check_interval = millis(5);
  cfg.server.heartbeat_interval = millis(20);
  cfg.server.session_ttl = millis(120);
  cfg.server.wal_sync_interval = millis(10);
  return cfg;
}

WriteSet ws_of(Timestamp ts, std::vector<std::string> rows) {
  WriteSet ws;
  ws.commit_ts = ts;
  ws.client_id = "c";
  ws.table = "t";
  for (auto& r : rows) ws.mutations.push_back(Mutation{r, "c", "v" + std::to_string(ts), false});
  return ws;
}

TEST(KvClientTest, EmptyWritesetIsNoop) {
  Cluster cluster(tiny_cluster(1));
  ASSERT_TRUE(cluster.start().is_ok());
  KvClient client(cluster.master(), millis(1));
  EXPECT_TRUE(client.flush_writeset(WriteSet{}).is_ok());
  EXPECT_EQ(client.stats().flush_rpcs, 0);
}

TEST(KvClientTest, MissingCommitTimestampRejected) {
  Cluster cluster(tiny_cluster(1));
  ASSERT_TRUE(cluster.start().is_ok());
  KvClient client(cluster.master(), millis(1));
  WriteSet ws = ws_of(kNoTimestamp, {"r"});
  EXPECT_EQ(client.flush_writeset(ws).code(), Code::kInvalidArgument);
}

TEST(KvClientTest, UnknownTableFailsFastInsteadOfRetrying) {
  Cluster cluster(tiny_cluster(1));
  ASSERT_TRUE(cluster.start().is_ok());
  KvClient client(cluster.master(), millis(1));
  const Micros start = now_micros();
  EXPECT_TRUE(client.flush_writeset(ws_of(1, {"row"})).is_not_found());
  EXPECT_LT(now_micros() - start, millis(200)) << "must not enter the retry loop";
}

TEST(KvClientTest, CancelFlagAbortsBlockedFlush) {
  Cluster cluster(tiny_cluster(1));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {}).is_ok());
  cluster.crash_server(0);  // flushes now retry forever

  KvClient client(cluster.master(), millis(1));
  std::atomic<bool> cancel{false};
  Status result = Status::ok();
  std::thread flusher([&] {
    result = client.flush_writeset(ws_of(1, {"row"}), std::nullopt, false, &cancel);
  });
  sleep_millis(30);
  EXPECT_GT(client.stats().flush_retries, 0);
  cancel = true;
  flusher.join();
  EXPECT_EQ(result.code(), Code::kClosed);
}

TEST(KvClientTest, GetWithBoundedRetriesGivesUp) {
  Cluster cluster(tiny_cluster(1));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {}).is_ok());
  cluster.crash_server(0);
  KvClient client(cluster.master(), millis(1));
  auto result = client.get("t", "row", "c", 10, /*max_retries=*/3);
  EXPECT_TRUE(result.status().is_unavailable());
  EXPECT_GE(client.stats().read_retries, 3);
}

TEST(KvClientTest, FlushSpansMultipleServers) {
  Cluster cluster(tiny_cluster(2));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {"m"}).is_ok());
  KvClient client(cluster.master(), millis(1));
  ASSERT_TRUE(client.flush_writeset(ws_of(5, {"apple", "zebra"})).is_ok());
  EXPECT_EQ(client.stats().flush_rpcs, 2) << "one ApplyRequest per participant server";
}

TEST(KvClientTest, FlushRecoversWhenRegionComesBack) {
  Cluster cluster(tiny_cluster(2));
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(cluster.master().create_table("t", {"m"}).is_ok());
  // Sync WALs so the failover itself cannot lose pre-existing data.
  KvClient client(cluster.master(), millis(1));

  cluster.crash_server(0);
  // Flush while the region is migrating: it must block, then complete.
  std::atomic<bool> done{false};
  std::thread flusher([&] {
    ASSERT_TRUE(client.flush_writeset(ws_of(7, {"apple", "zebra"})).is_ok());
    done = true;
  });
  const Micros deadline = now_micros() + seconds(10);
  while (!done && now_micros() < deadline) sleep_millis(5);
  flusher.join();
  ASSERT_TRUE(done.load());
  EXPECT_EQ(client.get("t", "apple", "c", 10).value()->value, "v7");
  EXPECT_EQ(client.get("t", "zebra", "c", 10).value()->value, "v7");
}

}  // namespace
}  // namespace tfr
