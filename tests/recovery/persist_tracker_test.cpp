// Unit tests for Algorithm 3 — the server-side persist threshold TP(s).
#include "src/recovery/persist_tracker.h"

#include <gtest/gtest.h>

namespace tfr {
namespace {

class PersistTrackerTest : public ::testing::Test {
 protected:
  PersistTrackerTest()
      : dfs_(DfsConfig{}), coord_(seconds(10)), server_("rs1", dfs_, coord_, server_config()) {}

  static RegionServerConfig server_config() {
    RegionServerConfig cfg;
    cfg.heartbeat_interval = seconds(10);
    cfg.session_ttl = seconds(60);
    cfg.wal_sync_interval = seconds(10);  // only the tracker syncs
    return cfg;
  }

  void SetUp() override {
    ASSERT_TRUE(server_.start().is_ok());
    ASSERT_TRUE(server_.open_region(RegionDescriptor{"t", "", ""}, {}).is_ok());
  }

  Status apply(Timestamp ts, std::optional<Timestamp> piggyback = std::nullopt) {
    ApplyRequest req;
    req.txn_id = static_cast<std::uint64_t>(ts);
    req.client_id = "c1";
    req.commit_ts = ts;
    req.table = "t";
    req.mutations.push_back(Mutation{"row" + std::to_string(ts), "c", "v", false});
    req.piggyback_tp = piggyback;
    req.recovery_replay = piggyback.has_value();
    return server_.apply_writeset(req);
  }

  Dfs dfs_;
  Coord coord_;
  RegionServer server_;
  Timestamp global_tf_ = 0;
};

TEST_F(PersistTrackerTest, StartsAtInitialTp) {
  PersistTracker tracker(server_, [this] { return global_tf_; }, 7);
  EXPECT_EQ(tracker.tp(), 7);
}

TEST_F(PersistTrackerTest, HeartbeatPersistsAndAdvancesToGlobalTf) {
  PersistTracker tracker(server_, [this] { return global_tf_; }, 0);
  tracker.install();
  ASSERT_TRUE(apply(1).is_ok());
  ASSERT_TRUE(apply(2).is_ok());
  EXPECT_EQ(tracker.queue_size(), 2u);
  EXPECT_EQ(server_.wal().synced_seq(), 0u);

  global_tf_ = 2;  // the RM says everything <= 2 is fully flushed
  EXPECT_EQ(tracker.heartbeat_payload(), 2);
  EXPECT_EQ(tracker.tp(), 2);
  EXPECT_EQ(server_.wal().synced_seq(), 2u) << "persist step synced the WAL";
  EXPECT_EQ(tracker.queue_size(), 0u);
}

TEST_F(PersistTrackerTest, CannotAdvancePastGlobalTf) {
  // The server has received and persisted 20, 22, 23 but TF is only 20: it
  // cannot know whether it participates in 21 (§3.2's example).
  PersistTracker tracker(server_, [this] { return global_tf_; }, 0);
  tracker.install();
  ASSERT_TRUE(apply(20).is_ok());
  ASSERT_TRUE(apply(22).is_ok());
  ASSERT_TRUE(apply(23).is_ok());
  global_tf_ = 20;
  EXPECT_EQ(tracker.heartbeat_payload(), 20);
  EXPECT_EQ(tracker.queue_size(), 2u) << "22 and 23 remain tracked";
  global_tf_ = 23;
  EXPECT_EQ(tracker.heartbeat_payload(), 23);
  EXPECT_EQ(tracker.queue_size(), 0u);
}

TEST_F(PersistTrackerTest, NoProgressHeartbeatStillReportsTp) {
  PersistTracker tracker(server_, [this] { return global_tf_; }, 5);
  global_tf_ = 5;
  EXPECT_EQ(tracker.heartbeat_payload(), 5);
  EXPECT_EQ(dfs_.stats().syncs, 0) << "no new TF, no sync charged";
}

TEST_F(PersistTrackerTest, PiggybackLowersTp) {
  // Drive on_received() directly (without install()) so the immediate
  // follow-up heartbeat does not persist-and-re-advance before we can
  // observe the inherited threshold.
  PersistTracker tracker(server_, [this] { return global_tf_; }, 0);
  global_tf_ = 10;
  tracker.on_received(8, std::nullopt);
  EXPECT_EQ(tracker.heartbeat_payload(), 10);
  // A replayed update arrives with the failed server's TPr(s)=4: this
  // server inherits responsibility for the window (4, ...].
  EXPECT_TRUE(tracker.on_received(9, /*piggyback_tp=*/4));
  EXPECT_EQ(tracker.tp(), 4);
  // The next heartbeat persists the replayed update and re-advances: it is
  // now this server's responsibility AND durable, so TP may rise again.
  global_tf_ = 12;
  EXPECT_EQ(tracker.heartbeat_payload(), 12);
}

TEST_F(PersistTrackerTest, InstalledPathReAdvancesAfterImmediateHeartbeatPersists) {
  // With install(), inheritance triggers an immediate heartbeat that
  // persists the replayed update; TP legitimately returns to TF because the
  // update is durable from that moment on.
  PersistTracker tracker(server_, [this] { return global_tf_; }, 0);
  tracker.install();
  global_tf_ = 10;
  ASSERT_TRUE(apply(8).is_ok());
  EXPECT_EQ(tracker.heartbeat_payload(), 10);
  const auto synced_before = server_.wal().synced_seq();
  ASSERT_TRUE(apply(9, /*piggyback=*/4).is_ok());
  EXPECT_EQ(tracker.tp(), 10) << "immediate heartbeat persisted and re-advanced";
  EXPECT_GT(server_.wal().synced_seq(), synced_before);
}

TEST_F(PersistTrackerTest, PiggybackAboveTpIsIgnored) {
  PersistTracker tracker(server_, [this] { return global_tf_; }, 6);
  tracker.install();
  ASSERT_TRUE(apply(9, /*piggyback=*/8).is_ok());
  EXPECT_EQ(tracker.tp(), 6) << "inheritance only ever lowers the threshold";
}

TEST_F(PersistTrackerTest, InheritanceTriggersImmediateHeartbeat) {
  PersistTracker tracker(server_, [this] { return global_tf_; }, 10);
  tracker.install();
  ASSERT_TRUE(apply(11, /*piggyback=*/3).is_ok());
  // install()'s observer fires heartbeat_now() on inheritance, which
  // reports the lowered TP to the coordination service.
  auto session = coord_.session("servers", "rs1");
  ASSERT_TRUE(session.has_value());
  EXPECT_EQ(session->payload, 3);
}

TEST_F(PersistTrackerTest, ServerRegistersWithInitialTpWhenInstalledBeforeStart) {
  RegionServer fresh("rs2", dfs_, coord_, server_config());
  PersistTracker tracker(fresh, [this] { return global_tf_; }, 42);
  tracker.install();
  ASSERT_TRUE(fresh.start().is_ok());
  EXPECT_EQ(coord_.session("servers", "rs2")->payload, 42);
  ASSERT_TRUE(fresh.shutdown().is_ok());
}

TEST_F(PersistTrackerTest, FetchReturningNoTimestampLeavesTpAlone) {
  PersistTracker tracker(server_, [] { return kNoTimestamp; }, 3);
  EXPECT_EQ(tracker.heartbeat_payload(), 3);
}

}  // namespace
}  // namespace tfr
