// Randomized concurrent property test for the flush-tracking pipeline:
// FlushTracker (Algorithm 1) feeding a ShardedThresholdRegistry (the
// recovery manager's registry C) under adversarial interleavings.
//
// Each trial runs 4 clients, each with a committer, an out-of-order
// flusher, and an advancer thread, against one shared registry, and checks
// the paper's invariants the whole time:
//
//   * TF(c) is monotone non-decreasing (every advance() return);
//   * TF(c) stays strictly below the oldest unflushed commit timestamp
//     (checker thread, against an oracle model of unflushed transactions);
//   * the registry's lock-free min() is monotone non-decreasing while
//     entries only rise, and equals min_c TF(c) exactly at quiesce;
//   * erasing entries one by one recomputes min() correctly (the expiry
//     path in the recovery manager).
//
// Trials are seeded and replayable:  TFR_PROP_SEED=<seed> overrides the
// schedule, TFR_PROP_ITERS=<n> the per-client transaction count. The seed
// is printed on every run. Runs under TSan via scripts/check.sh tsan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/recovery/flush_tracker.h"
#include "src/recovery/threshold_registry.h"

namespace tfr {
namespace {

constexpr int kClients = 4;

std::uint64_t effective_seed(std::uint64_t param) {
  if (const char* env = std::getenv("TFR_PROP_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return param;
}

std::uint64_t txns_per_client() {
  if (const char* env = std::getenv("TFR_PROP_ITERS")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 200;
}

class TrackerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrackerPropertyTest, InvariantsHoldUnderConcurrentCommitFlushInterleavings) {
  const std::uint64_t seed = effective_seed(GetParam());
  SCOPED_TRACE("property seed " + std::to_string(seed) +
               " — replay with TFR_PROP_SEED=" + std::to_string(seed));
  std::printf("[ property ] seed %llu%s, %llu txns/client\n",
              static_cast<unsigned long long>(seed),
              std::getenv("TFR_PROP_SEED") ? " (from TFR_PROP_SEED)" : "",
              static_cast<unsigned long long>(txns_per_client()));
  const std::uint64_t n_txns = txns_per_client();

  // 4 stripes for 4 clients: some clients share a stripe, so the test
  // exercises both intra-stripe contention and cross-stripe aggregation.
  ShardedThresholdRegistry registry(4);

  // Oracle model. The mutex plays the role of the timestamp oracle's
  // critical section: commit-ts assignment, the unflushed-set insert, and
  // on_commit_ts happen atomically, matching the ordering contract in
  // flush_tracker.h.
  std::mutex model_mu;
  Timestamp oracle_ts = 0;
  std::vector<std::set<Timestamp>> unflushed(kClients);   // committed, not yet flushed
  std::vector<std::vector<Timestamp>> flushable(kClients);  // awaiting the flusher

  std::vector<std::unique_ptr<FlushTracker>> trackers;
  std::vector<std::string> ids;
  for (int c = 0; c < kClients; ++c) {
    trackers.push_back(std::make_unique<FlushTracker>(kNoTimestamp));
    ids.push_back("client-" + std::to_string(c));
    registry.raise(ids[static_cast<std::size_t>(c)], kNoTimestamp);
  }

  std::atomic<int> committers_live{kClients};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  for (int c = 0; c < kClients; ++c) {
    // Committer: assigns commit timestamps from the shared oracle.
    threads.emplace_back([&, c] {
      Rng rng(seed ^ (0x1000ULL + static_cast<std::uint64_t>(c)));
      for (std::uint64_t i = 0; i < n_txns; ++i) {
        {
          std::lock_guard<std::mutex> lock(model_mu);
          const Timestamp ts = ++oracle_ts;
          unflushed[static_cast<std::size_t>(c)].insert(ts);
          trackers[static_cast<std::size_t>(c)]->on_commit_ts(ts);
          flushable[static_cast<std::size_t>(c)].push_back(ts);
        }
        if (rng.next_bool(0.3)) std::this_thread::yield();
      }
      committers_live.fetch_sub(1);
    });

    // Flusher: completes flushes in random order. The model erase happens
    // before on_flushed, so the unflushed set over-approximates reality —
    // the checker's bound is conservative, never stale.
    threads.emplace_back([&, c] {
      Rng rng(seed ^ (0x2000ULL + static_cast<std::uint64_t>(c)));
      for (;;) {
        Timestamp ts = kNoTimestamp;
        {
          std::lock_guard<std::mutex> lock(model_mu);
          auto& pool = flushable[static_cast<std::size_t>(c)];
          if (pool.empty()) {
            if (committers_live.load() == 0) return;
          } else {
            const std::size_t pick =
                static_cast<std::size_t>(rng.next_below(pool.size()));
            ts = pool[pick];
            pool[pick] = pool.back();
            pool.pop_back();
            unflushed[static_cast<std::size_t>(c)].erase(ts);
          }
        }
        if (ts == kNoTimestamp) {
          std::this_thread::yield();
          continue;
        }
        trackers[static_cast<std::size_t>(c)]->on_flushed(ts);
      }
    });

    // Advancer: the heartbeat. Checks TF(c) monotonicity and mirrors every
    // advance into the shared registry, exactly like poll_tick's ingest.
    threads.emplace_back([&, c] {
      Timestamp last = kNoTimestamp;
      while (!stop.load(std::memory_order_acquire)) {
        Timestamp cur;
        {
          std::lock_guard<std::mutex> lock(model_mu);
          cur = oracle_ts;
        }
        const Timestamp tf = trackers[static_cast<std::size_t>(c)]->advance(cur);
        EXPECT_GE(tf, last) << "TF(" << ids[static_cast<std::size_t>(c)]
                            << ") regressed";
        last = tf;
        registry.raise(ids[static_cast<std::size_t>(c)], tf);
        std::this_thread::yield();
      }
    });
  }

  // Checker: TF(c) must stay strictly below the oldest unflushed commit —
  // a transaction still in the model set has never been handed to
  // on_flushed, so no correct threshold may cover it.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (int c = 0; c < kClients; ++c) {
        std::lock_guard<std::mutex> lock(model_mu);
        const auto& pending = unflushed[static_cast<std::size_t>(c)];
        if (!pending.empty()) {
          const Timestamp oldest = *pending.begin();
          EXPECT_LT(trackers[static_cast<std::size_t>(c)]->tf(), oldest)
              << "TF(" << ids[static_cast<std::size_t>(c)]
              << ") covers an unflushed transaction";
        }
      }
      std::this_thread::yield();
    }
  });

  // Min-reader: while entries only rise (no erasures yet), the lock-free
  // aggregate must be monotone non-decreasing.
  threads.emplace_back([&] {
    Timestamp last_min = registry.min();
    while (!stop.load(std::memory_order_acquire)) {
      const Timestamp m = registry.min();
      EXPECT_GE(m, last_min) << "registry min() regressed under raises";
      last_min = m;
      std::this_thread::yield();
    }
  });

  // Quiesce: committers and flushers drain on their own; give the
  // advancers one settled oracle snapshot so the idle fast-path can carry
  // every TF(c) to the final timestamp, then stop the pollers.
  // Joining in order: the first kClients*3 threads include the committers
  // and flushers, which exit by themselves.
  while (committers_live.load() != 0) std::this_thread::yield();
  for (;;) {
    bool drained = true;
    {
      std::lock_guard<std::mutex> lock(model_mu);
      for (const auto& pending : unflushed) drained = drained && pending.empty();
    }
    if (drained) break;
    std::this_thread::yield();
  }
  // All flushes are in; one more advance round lets every tracker reach the
  // final oracle timestamp before the advancers stop.
  Timestamp final_ts;
  {
    std::lock_guard<std::mutex> lock(model_mu);
    final_ts = oracle_ts;
  }
  for (;;) {
    bool settled = true;
    for (const auto& t : trackers) settled = settled && t->tf() >= final_ts;
    if (settled) break;
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  // At quiesce the registry holds exactly each client's final TF(c), and
  // the lock-free aggregate equals min_c TF(c).
  ASSERT_EQ(registry.size(), static_cast<std::size_t>(kClients));
  Timestamp expected_min = kMaxTimestamp;
  for (int c = 0; c < kClients; ++c) {
    const Timestamp tf = trackers[static_cast<std::size_t>(c)]->tf();
    EXPECT_EQ(tf, final_ts) << ids[static_cast<std::size_t>(c)]
                            << " did not drain to the final oracle ts";
    const auto entry = registry.get(ids[static_cast<std::size_t>(c)]);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(*entry, tf);
    expected_min = std::min(expected_min, tf);
  }
  EXPECT_EQ(registry.min(), expected_min);

  // Expiry path: erase entries one at a time (ascending, so each erase can
  // move the minimum) and check min() recomputes from the survivors.
  auto entries = registry.snapshot();
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_TRUE(registry.erase(entries[i].first));
    const Timestamp want =
        i + 1 < entries.size() ? entries[i + 1].second : kMaxTimestamp;
    EXPECT_EQ(registry.min(), want) << "after erasing " << entries[i].first;
  }
  EXPECT_EQ(registry.size(), 0u);
}

// Single-threaded randomized op sequence against a std::map reference model:
// exercises raise/set/lower/erase mixes (the concurrent trial above only
// raises) and checks get/size/min after every mutation.
TEST_P(TrackerPropertyTest, RegistryMatchesReferenceModelUnderRandomOps) {
  const std::uint64_t seed = effective_seed(GetParam());
  SCOPED_TRACE("property seed " + std::to_string(seed) +
               " — replay with TFR_PROP_SEED=" + std::to_string(seed));
  Rng rng(seed ^ 0xFEEDULL);
  ShardedThresholdRegistry registry(4);
  std::map<std::string, Timestamp> model;

  const int kOps = 2000;
  for (int i = 0; i < kOps; ++i) {
    const std::string id = "comp-" + std::to_string(rng.next_below(12));
    const Timestamp ts = static_cast<Timestamp>(rng.next_in(1, 1000));
    switch (rng.next_below(4)) {
      case 0: {  // raise: max-merge
        registry.raise(id, ts);
        auto it = model.find(id);
        if (it == model.end()) {
          model[id] = ts;
        } else {
          it->second = std::max(it->second, ts);
        }
        break;
      }
      case 1: {  // set: verbatim
        registry.set(id, ts);
        model[id] = ts;
        break;
      }
      case 2: {  // lower: min-merge
        registry.lower(id, ts);
        auto it = model.find(id);
        if (it == model.end()) {
          model[id] = ts;
        } else {
          it->second = std::min(it->second, ts);
        }
        break;
      }
      case 3: {  // erase
        EXPECT_EQ(registry.erase(id), model.erase(id) > 0) << "op " << i;
        break;
      }
    }
    if (auto got = registry.get(id); got.has_value()) {
      auto it = model.find(id);
      ASSERT_NE(it, model.end()) << "op " << i << ": phantom entry " << id;
      EXPECT_EQ(*got, it->second) << "op " << i;
    } else {
      EXPECT_EQ(model.count(id), 0u) << "op " << i << ": lost entry " << id;
    }
    EXPECT_EQ(registry.size(), model.size()) << "op " << i;
    Timestamp want = kMaxTimestamp;
    for (const auto& [_, v] : model) want = std::min(want, v);
    EXPECT_EQ(registry.min(), want) << "op " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackerPropertyTest,
                         ::testing::Values(0xA11CEULL, 0xB0B5EEDULL));

}  // namespace
}  // namespace tfr
