// Unit tests for Algorithm 1 — the client-side flush threshold TF(c).
#include "src/recovery/flush_tracker.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/random.h"

namespace tfr {
namespace {

TEST(FlushTrackerTest, StartsAtInitialValue) {
  FlushTracker tracker(5);
  EXPECT_EQ(tracker.tf(), 5);
  EXPECT_EQ(tracker.advance(kNoTimestamp), 5);
}

TEST(FlushTrackerTest, AdvancesThroughInOrderFlushes) {
  FlushTracker tracker(0);
  tracker.on_commit_ts(1);
  tracker.on_commit_ts(2);
  tracker.on_flushed(1);
  EXPECT_EQ(tracker.advance(kNoTimestamp), 1);
  tracker.on_flushed(2);
  EXPECT_EQ(tracker.advance(kNoTimestamp), 2);
}

TEST(FlushTrackerTest, OutOfOrderFlushRespectsCommitOrder) {
  // The paper's key subtlety: "for any two local transactions with commit
  // timestamps Ti < Tj, TF(c) will always advance from Ti to Tj, even if
  // the flush of Tj is completed before that of Ti."
  FlushTracker tracker(0);
  tracker.on_commit_ts(1);
  tracker.on_commit_ts(2);
  tracker.on_commit_ts(3);
  tracker.on_flushed(3);  // newest flushes first
  tracker.on_flushed(2);
  EXPECT_EQ(tracker.advance(kNoTimestamp), 0) << "txn 1 is still unflushed";
  tracker.on_flushed(1);
  EXPECT_EQ(tracker.advance(kNoTimestamp), 3) << "now all three drain at once";
}

TEST(FlushTrackerTest, InFlightCountsUnmatchedCommits) {
  FlushTracker tracker(0);
  tracker.on_commit_ts(1);
  tracker.on_commit_ts(2);
  EXPECT_EQ(tracker.in_flight(), 2u);
  tracker.on_flushed(1);
  (void)tracker.advance(kNoTimestamp);
  EXPECT_EQ(tracker.in_flight(), 1u);
}

TEST(FlushTrackerTest, IdleFastPathJumpsToCurrentTs) {
  FlushTracker tracker(0);
  // Nothing in flight: other clients' commits moved the oracle to 50; this
  // client can claim TF(c)=50 because none of ITS transactions are open.
  EXPECT_EQ(tracker.advance(50), 50);
}

TEST(FlushTrackerTest, IdleFastPathBlockedWhileInFlight) {
  FlushTracker tracker(0);
  tracker.on_commit_ts(10);
  EXPECT_EQ(tracker.advance(50), 0) << "txn 10 unflushed: cannot jump to 50";
  tracker.on_flushed(10);
  EXPECT_EQ(tracker.advance(50), 50) << "drained, then idle jump applies";
}

TEST(FlushTrackerTest, IdleFastPathNeverRegresses) {
  FlushTracker tracker(10);
  EXPECT_EQ(tracker.advance(5), 10);
}

TEST(FlushTrackerTest, MonotonicAcrossManyAdvances) {
  FlushTracker tracker(0);
  Timestamp last = 0;
  for (Timestamp ts = 1; ts <= 100; ++ts) {
    tracker.on_commit_ts(ts);
    if (ts % 3 == 0) {
      // flush a batch out of order
      tracker.on_flushed(ts);
      tracker.on_flushed(ts - 1);
      tracker.on_flushed(ts - 2);
    }
    const Timestamp tf = tracker.advance(kNoTimestamp);
    EXPECT_GE(tf, last);
    last = tf;
  }
}

// Property test: for any interleaving of flush completions, TF(c) never
// passes an unflushed transaction and eventually reaches the maximum.
class FlushTrackerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlushTrackerPropertyTest, InvariantHoldsUnderRandomFlushOrder) {
  Rng rng(GetParam());
  FlushTracker tracker(0);
  constexpr Timestamp kTxns = 200;
  std::vector<Timestamp> to_flush;
  for (Timestamp ts = 1; ts <= kTxns; ++ts) {
    tracker.on_commit_ts(ts);
    to_flush.push_back(ts);
  }
  // Random flush completion order.
  for (std::size_t i = to_flush.size(); i > 1; --i) {
    std::swap(to_flush[i - 1], to_flush[rng.next_below(i)]);
  }
  std::set<Timestamp> flushed;
  for (const Timestamp ts : to_flush) {
    tracker.on_flushed(ts);
    flushed.insert(ts);
    const Timestamp tf = tracker.advance(kNoTimestamp);
    // Local invariant: every transaction <= TF(c) has been flushed.
    for (Timestamp t = 1; t <= tf; ++t) {
      ASSERT_TRUE(flushed.count(t)) << "TF=" << tf << " passed unflushed txn " << t;
    }
  }
  EXPECT_EQ(tracker.advance(kNoTimestamp), kTxns);
  EXPECT_EQ(tracker.in_flight(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlushTrackerPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 10, 99, 12345));

TEST(ExactFlushReporterTest, DrainReturnsAllFlushedSinceLastHeartbeat) {
  ExactFlushReporter reporter;
  reporter.on_flushed(3);
  reporter.on_flushed(1);
  auto batch = reporter.drain();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_TRUE(reporter.drain().empty());
  EXPECT_EQ(ExactFlushReporter::payload_bytes(batch), 2 * sizeof(Timestamp));
}

}  // namespace
}  // namespace tfr
