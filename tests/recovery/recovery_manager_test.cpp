// Recovery-manager threshold maintenance (Algorithms 2 & 4): global TF/TP
// aggregation, publication, log truncation at the checkpoint, and RM restart.
#include "src/recovery/recovery_manager.h"

#include <gtest/gtest.h>

#include "src/testbed/testbed.h"

namespace tfr {
namespace {

class RecoveryManagerTest : public ::testing::Test {
 protected:
  RecoveryManagerTest() : bed_(fast_test_config(2, 2)) {}

  void SetUp() override {
    ASSERT_TRUE(bed_.start().is_ok());
    ASSERT_TRUE(bed_.create_table("t", 1000, 4).is_ok());
  }

  Timestamp commit_one(TxnClient& client, const std::string& row) {
    Transaction txn = client.begin("t");
    txn.put(row, "c", "v");
    auto ts = txn.commit();
    EXPECT_TRUE(ts.is_ok());
    return ts.value_or(kNoTimestamp);
  }

  Testbed bed_;
};

TEST_F(RecoveryManagerTest, PublishesThresholdsToCoord) {
  bed_.rm().refresh_now();
  EXPECT_TRUE(bed_.coord().get(kTfPath).has_value());
  EXPECT_TRUE(bed_.coord().get(kTpPath).has_value());
}

TEST_F(RecoveryManagerTest, TfFollowsClientFlushes) {
  const Timestamp ts = commit_one(bed_.client(0), Testbed::row_key(1));
  ASSERT_TRUE(bed_.client(0).wait_flushed());
  ASSERT_TRUE(bed_.wait_stable(ts));
  EXPECT_GE(bed_.rm().global_tf(), ts);
}

TEST_F(RecoveryManagerTest, TpNeverExceedsTf) {
  for (int i = 0; i < 20; ++i) commit_one(bed_.client(i % 2), Testbed::row_key(i));
  for (int iter = 0; iter < 50; ++iter) {
    bed_.rm().refresh_now();
    EXPECT_LE(bed_.rm().global_tp(), bed_.rm().global_tf());
    sleep_millis(1);
  }
}

TEST_F(RecoveryManagerTest, TpAdvancesAfterServerHeartbeats) {
  const Timestamp ts = commit_one(bed_.client(0), Testbed::row_key(1));
  ASSERT_TRUE(bed_.client(0).wait_flushed());
  ASSERT_TRUE(bed_.wait_stable(ts));
  // Drive server heartbeats (persist + TP advance) and RM polls until the
  // global TP catches up.
  const Micros deadline = now_micros() + seconds(5);
  while (bed_.rm().global_tp() < ts && now_micros() < deadline) {
    bed_.cluster().server(0).heartbeat_now();
    bed_.cluster().server(1).heartbeat_now();
    bed_.rm().refresh_now();
    sleep_millis(1);
  }
  EXPECT_GE(bed_.rm().global_tp(), ts);
}

TEST_F(RecoveryManagerTest, LogTruncatedAtCheckpoint) {
  const Timestamp ts = commit_one(bed_.client(0), Testbed::row_key(1));
  ASSERT_TRUE(bed_.client(0).wait_flushed());
  ASSERT_TRUE(bed_.wait_stable(ts));
  const Micros deadline = now_micros() + seconds(5);
  while (bed_.rm().global_tp() < ts && now_micros() < deadline) {
    bed_.cluster().server(0).heartbeat_now();
    bed_.cluster().server(1).heartbeat_now();
    bed_.rm().refresh_now();
    sleep_millis(1);
  }
  ASSERT_GE(bed_.rm().global_tp(), ts);
  // The checkpoint passed ts: the write-set is gone from the recovery log.
  EXPECT_TRUE(bed_.tm().log().fetch_after(0).empty());
}

TEST_F(RecoveryManagerTest, TruncationIsSafeNothingBelowTpIsNeeded) {
  // Invariant 3 of DESIGN.md: every write-set the log has dropped is fully
  // persisted — crash a server right after truncation and verify nothing is
  // lost even though the log cannot replay the truncated prefix.
  const Timestamp ts = commit_one(bed_.client(0), Testbed::row_key(1));
  ASSERT_TRUE(bed_.client(0).wait_flushed());
  ASSERT_TRUE(bed_.wait_stable(ts));
  const Micros deadline = now_micros() + seconds(5);
  while (bed_.rm().global_tp() < ts && now_micros() < deadline) {
    bed_.cluster().server(0).heartbeat_now();
    bed_.cluster().server(1).heartbeat_now();
    bed_.rm().refresh_now();
    sleep_millis(1);
  }
  ASSERT_GE(bed_.rm().global_tp(), ts);

  bed_.crash_server(0);
  bed_.wait_for_recovery();
  ASSERT_TRUE(bed_.client(0).wait_flushed());

  Transaction txn = bed_.client(1).begin("t");
  auto value = txn.get(Testbed::row_key(1), "c");
  ASSERT_TRUE(value.is_ok());
  ASSERT_TRUE(value.value().has_value());
  EXPECT_EQ(*value.value(), "v");
  txn.abort();
}

TEST_F(RecoveryManagerTest, IdleClientDoesNotBlockTf) {
  // client(1) never commits anything; TF must still follow client(0).
  const Timestamp ts = commit_one(bed_.client(0), Testbed::row_key(2));
  ASSERT_TRUE(bed_.client(0).wait_flushed());
  EXPECT_TRUE(bed_.wait_stable(ts)) << "idle client 1 blocked TF";
}

TEST_F(RecoveryManagerTest, CleanClientCloseReleasesTf) {
  auto extra = bed_.add_client();
  ASSERT_TRUE(extra.is_ok());
  const Timestamp ts = commit_one(bed_.client(0), Testbed::row_key(3));
  ASSERT_TRUE(bed_.client(0).wait_flushed());
  ASSERT_TRUE(extra.value()->close().is_ok());
  EXPECT_TRUE(bed_.wait_stable(ts));
}

TEST_F(RecoveryManagerTest, RestartRecoversStateFromCoord) {
  const Timestamp ts = commit_one(bed_.client(0), Testbed::row_key(4));
  ASSERT_TRUE(bed_.client(0).wait_flushed());
  ASSERT_TRUE(bed_.wait_stable(ts));
  const Timestamp tf_before = bed_.rm().global_tf();

  bed_.restart_recovery_manager();

  // The restarted RM adopts the published thresholds (no regression).
  EXPECT_GE(bed_.rm().global_tf(), tf_before);

  // And processing continues: new commits flow and TF keeps advancing.
  const Timestamp ts2 = commit_one(bed_.client(0), Testbed::row_key(5));
  ASSERT_TRUE(bed_.client(0).wait_flushed());
  EXPECT_TRUE(bed_.wait_stable(ts2));
}

TEST_F(RecoveryManagerTest, ProcessingContinuesWhileRmIsDown) {
  // §3.3: transaction processing can continue while the RM is down.
  // Simulate by simply not letting the RM poll (it is stopped), committing,
  // then restarting it.
  bed_.rm().stop();
  const Timestamp ts = commit_one(bed_.client(0), Testbed::row_key(6));
  EXPECT_GT(ts, 0);
  ASSERT_TRUE(bed_.client(0).wait_flushed());
  bed_.restart_recovery_manager();
  EXPECT_TRUE(bed_.wait_stable(ts));
}

TEST_F(RecoveryManagerTest, StatsCountRefreshes) {
  bed_.rm().refresh_now();
  bed_.rm().refresh_now();
  EXPECT_GE(bed_.rm().stats().threshold_refreshes, 2);
}

}  // namespace
}  // namespace tfr
