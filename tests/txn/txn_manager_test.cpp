#include "src/txn/txn_manager.h"

#include <gtest/gtest.h>

#include <thread>

namespace tfr {
namespace {

WriteSet ws_on_rows(std::vector<std::string> rows) {
  WriteSet ws;
  ws.table = "t";
  for (auto& r : rows) ws.mutations.push_back(Mutation{r, "c", "v", false});
  return ws;
}

TEST(TxnManagerTest, CommitAssignsMonotonicTimestamps) {
  TxnManager tm(TxnLogConfig{});
  auto t1 = tm.begin(0);
  auto t2 = tm.begin(0);
  auto c1 = tm.commit(t1, ws_on_rows({"a"}), nullptr);
  auto c2 = tm.commit(t2, ws_on_rows({"b"}), nullptr);
  ASSERT_TRUE(c1.is_ok());
  ASSERT_TRUE(c2.is_ok());
  EXPECT_LT(c1.value(), c2.value());
  EXPECT_EQ(tm.current_ts(), c2.value());
}

TEST(TxnManagerTest, WriteWriteConflictAborts) {
  TxnManager tm(TxnLogConfig{});
  auto t1 = tm.begin(tm.current_ts());
  auto t2 = tm.begin(tm.current_ts());  // same snapshot
  ASSERT_TRUE(tm.commit(t1, ws_on_rows({"x"}), nullptr).is_ok());
  auto second = tm.commit(t2, ws_on_rows({"x"}), nullptr);
  EXPECT_TRUE(second.status().is_aborted());
  EXPECT_EQ(tm.stats().aborts_conflict, 1);
}

TEST(TxnManagerTest, DisjointRowsDoNotConflict) {
  TxnManager tm(TxnLogConfig{});
  auto t1 = tm.begin(tm.current_ts());
  auto t2 = tm.begin(tm.current_ts());
  ASSERT_TRUE(tm.commit(t1, ws_on_rows({"x"}), nullptr).is_ok());
  EXPECT_TRUE(tm.commit(t2, ws_on_rows({"y"}), nullptr).is_ok());
}

TEST(TxnManagerTest, LaterSnapshotSeesNoConflict) {
  TxnManager tm(TxnLogConfig{});
  auto t1 = tm.begin(tm.current_ts());
  ASSERT_TRUE(tm.commit(t1, ws_on_rows({"x"}), nullptr).is_ok());
  // t2 starts after t1 committed: no conflict even on the same row.
  auto t2 = tm.begin(tm.current_ts());
  EXPECT_TRUE(tm.commit(t2, ws_on_rows({"x"}), nullptr).is_ok());
}

TEST(TxnManagerTest, AbortDiscardsWithoutLogging) {
  TxnManager tm(TxnLogConfig{});
  auto t1 = tm.begin(0);
  tm.abort(t1);
  EXPECT_EQ(tm.stats().aborts_explicit, 1);
  EXPECT_TRUE(tm.log().fetch_after(0).empty());
  EXPECT_EQ(tm.current_ts(), 0);  // no commit timestamp consumed
}

TEST(TxnManagerTest, CommitAppendsToRecoveryLog) {
  TxnManager tm(TxnLogConfig{});
  auto t1 = tm.begin(0);
  WriteSet ws = ws_on_rows({"a", "b"});
  ws.client_id = "c9";
  auto committed = tm.commit(t1, std::move(ws), nullptr);
  ASSERT_TRUE(committed.is_ok());
  auto logged = tm.log().fetch_after(0);
  ASSERT_EQ(logged.size(), 1u);
  EXPECT_EQ(logged[0].client_id, "c9");
  EXPECT_EQ(logged[0].commit_ts, committed.value());
  EXPECT_EQ(logged[0].mutations.size(), 2u);
}

TEST(TxnManagerTest, ListenerRunsBeforeCommitReturnsAndInOrder) {
  TxnManager tm(TxnLogConfig{});
  std::vector<Timestamp> seen;
  std::mutex mu;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto txn = tm.begin(tm.current_ts());
      (void)tm.commit(txn, ws_on_rows({"row" + std::to_string(t)}), [&](Timestamp ts) {
        std::lock_guard lock(mu);
        seen.push_back(ts);
      });
    });
  }
  for (auto& t : threads) t.join();
  // Listeners fire inside the ordering critical section: the recorded
  // sequence is exactly the commit order, gap-free.
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kThreads));
  for (int i = 0; i < kThreads; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i + 1);
}

TEST(TxnManagerTest, CurrentTsSerializesWithListeners) {
  TxnManager tm(TxnLogConfig{});
  // After current_ts() returns C, the listener of every commit <= C ran.
  std::atomic<Timestamp> last_listened{0};
  std::atomic<bool> stop{false};
  std::thread committer([&] {
    while (!stop) {
      auto txn = tm.begin(tm.current_ts());
      (void)tm.commit(txn, ws_on_rows({"r" + std::to_string(now_micros())}),
                      [&](Timestamp ts) { last_listened.store(ts); });
    }
  });
  for (int i = 0; i < 2000; ++i) {
    const Timestamp c = tm.current_ts();
    EXPECT_GE(last_listened.load(), c - 0) << "listener lagged behind current_ts";
    // (The listener for C itself completed before current_ts returned C.)
  }
  stop = true;
  committer.join();
}

TEST(TxnManagerTest, ConflictTablePruneKeepsCorrectness) {
  TxnManager tm(TxnLogConfig{});
  // Force many commits to trigger pruning, then verify a conflict against a
  // recent writer is still detected.
  for (int i = 0; i < 5000; ++i) {
    auto txn = tm.begin(tm.current_ts());
    ASSERT_TRUE(tm.commit(txn, ws_on_rows({"bulk" + std::to_string(i)}), nullptr).is_ok());
  }
  tm.checkpoint(tm.current_ts() - 10);
  auto old_snapshot = tm.begin(tm.current_ts() - 5);
  auto winner = tm.begin(tm.current_ts());
  ASSERT_TRUE(tm.commit(winner, ws_on_rows({"contested"}), nullptr).is_ok());
  EXPECT_TRUE(tm.commit(old_snapshot, ws_on_rows({"contested"}), nullptr).status().is_aborted());
}

TEST(TxnManagerTest, CheckpointTruncatesLog) {
  TxnManager tm(TxnLogConfig{});
  for (int i = 0; i < 10; ++i) {
    auto txn = tm.begin(tm.current_ts());
    ASSERT_TRUE(tm.commit(txn, ws_on_rows({"r" + std::to_string(i)}), nullptr).is_ok());
  }
  tm.checkpoint(5);
  EXPECT_EQ(tm.log().fetch_after(0).size(), 5u);
}

TEST(TxnManagerTest, AbandonClientReapsOpenTransactions) {
  TxnManager tm(TxnLogConfig{});
  (void)tm.begin(0, "dead-client");
  (void)tm.begin(0, "dead-client");
  auto other = tm.begin(0, "live-client");
  tm.abandon_client("dead-client");
  EXPECT_EQ(tm.stats().aborts_explicit, 2);
  tm.abandon_client("dead-client");  // idempotent
  EXPECT_EQ(tm.stats().aborts_explicit, 2);
  // The live client's transaction is untouched and still commits.
  EXPECT_TRUE(tm.commit(other, ws_on_rows({"r"}), nullptr).is_ok());
}

TEST(TxnManagerTest, CommitAfterAbandonIsHarmless) {
  // A racing commit from a client that was just declared dead must not
  // corrupt the active-set bookkeeping.
  TxnManager tm(TxnLogConfig{});
  auto txn = tm.begin(0, "zombie");
  tm.abandon_client("zombie");
  WriteSet ws = ws_on_rows({"r"});
  ws.client_id = "zombie";
  EXPECT_TRUE(tm.commit(txn, std::move(ws), nullptr).is_ok());
}

TEST(TxnManagerTest, AbandonUnblocksConflictTablePruning) {
  TxnManager tm(TxnLogConfig{});
  auto pinner = tm.begin(0, "dead-client");  // snapshot 0 pins the floor
  (void)pinner;
  for (int i = 0; i < 5000; ++i) {
    auto txn = tm.begin(tm.current_ts());
    ASSERT_TRUE(tm.commit(txn, ws_on_rows({"bulk" + std::to_string(i)}), nullptr).is_ok());
  }
  tm.checkpoint(tm.current_ts());
  tm.abandon_client("dead-client");
  // Trigger another prune cycle; with the pin gone the table can shrink.
  // (Observable effect: a fresh old-ish snapshot no longer conflicts with
  // rows whose last writer was pruned — but correctness forbids reading
  // below the checkpoint anyway, so we only assert the commit path works.)
  for (int i = 0; i < 5000; ++i) {
    auto txn = tm.begin(tm.current_ts());
    ASSERT_TRUE(tm.commit(txn, ws_on_rows({"more" + std::to_string(i)}), nullptr).is_ok());
  }
  EXPECT_EQ(tm.stats().commits, 10000);
}

TEST(TxnManagerTest, ConcurrentCommitsAllSucceedOnDistinctRows) {
  TxnManager tm(TxnLogConfig{});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  std::atomic<int> committed{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto txn = tm.begin(tm.current_ts());
        if (tm.commit(txn, ws_on_rows({"t" + std::to_string(t) + "-" + std::to_string(i)}),
                      nullptr)
                .is_ok()) {
          ++committed;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(committed.load(), kThreads * kPerThread);
  EXPECT_EQ(tm.current_ts(), kThreads * kPerThread);
  EXPECT_EQ(tm.log().fetch_after(0).size(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace tfr
