#include "src/txn/txn_log.h"

#include <gtest/gtest.h>

#include <thread>

#include "src/common/metrics.h"

namespace tfr {
namespace {

WriteSet make_ws(Timestamp ts, const std::string& client = "c1") {
  WriteSet ws;
  ws.txn_id = static_cast<std::uint64_t>(ts);
  ws.client_id = client;
  ws.commit_ts = ts;
  ws.table = "t";
  ws.mutations.push_back(Mutation{"row" + std::to_string(ts), "c", "v", false});
  return ws;
}

TEST(TxnLogTest, AppendIsDurableOnReturn) {
  TxnLog log(TxnLogConfig{});
  ASSERT_TRUE(log.append(make_ws(1)).is_ok());
  auto fetched = log.fetch_after(0);
  ASSERT_EQ(fetched.size(), 1u);
  EXPECT_EQ(fetched[0].commit_ts, 1);
}

TEST(TxnLogTest, AppendWithoutTimestampRejected) {
  TxnLog log(TxnLogConfig{});
  WriteSet ws = make_ws(1);
  ws.commit_ts = kNoTimestamp;
  EXPECT_EQ(log.append(ws).code(), Code::kInvalidArgument);
}

TEST(TxnLogTest, FetchAfterExcludesThreshold) {
  TxnLog log(TxnLogConfig{});
  for (Timestamp ts = 1; ts <= 5; ++ts) ASSERT_TRUE(log.append(make_ws(ts)).is_ok());
  auto fetched = log.fetch_after(3);
  ASSERT_EQ(fetched.size(), 2u);
  EXPECT_EQ(fetched[0].commit_ts, 4);
  EXPECT_EQ(fetched[1].commit_ts, 5);
}

TEST(TxnLogTest, FetchClientFilters) {
  TxnLog log(TxnLogConfig{});
  ASSERT_TRUE(log.append(make_ws(1, "alice")).is_ok());
  ASSERT_TRUE(log.append(make_ws(2, "bob")).is_ok());
  ASSERT_TRUE(log.append(make_ws(3, "alice")).is_ok());
  auto fetched = log.fetch_client_after("alice", 0);
  ASSERT_EQ(fetched.size(), 2u);
  EXPECT_EQ(fetched[0].commit_ts, 1);
  EXPECT_EQ(fetched[1].commit_ts, 3);
  EXPECT_EQ(log.fetch_client_after("alice", 1).size(), 1u);
  EXPECT_TRUE(log.fetch_client_after("carol", 0).empty());
}

TEST(TxnLogTest, TruncateDropsCheckpointedPrefix) {
  TxnLog log(TxnLogConfig{});
  for (Timestamp ts = 1; ts <= 10; ++ts) ASSERT_TRUE(log.append(make_ws(ts)).is_ok());
  log.truncate_through(7);
  auto remaining = log.fetch_after(0);
  ASSERT_EQ(remaining.size(), 3u);
  EXPECT_EQ(remaining[0].commit_ts, 8);
  const auto stats = log.stats();
  EXPECT_EQ(stats.truncated, 7);
  EXPECT_EQ(stats.live_records, 3);
}

TEST(TxnLogTest, TruncateIsIdempotent) {
  TxnLog log(TxnLogConfig{});
  for (Timestamp ts = 1; ts <= 3; ++ts) ASSERT_TRUE(log.append(make_ws(ts)).is_ok());
  log.truncate_through(2);
  log.truncate_through(2);
  log.truncate_through(1);  // lower checkpoint: nothing more to drop
  EXPECT_EQ(log.fetch_after(0).size(), 1u);
}

TEST(TxnLogTest, GroupCommitBatchesConcurrentAppends) {
  TxnLogConfig cfg;
  cfg.sync_latency = millis(5);  // make batching observable
  TxnLog log(cfg);
  constexpr int kThreads = 16;
  std::vector<std::thread> threads;
  const Micros start = now_micros();
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      ASSERT_TRUE(log.append(make_ws(t + 1)).is_ok());
    });
  }
  for (auto& t : threads) t.join();
  const Micros elapsed = now_micros() - start;
  const auto stats = log.stats();
  EXPECT_EQ(stats.appends, kThreads);
  // 16 sequential syncs would take >= 80ms; group commit needs only a few
  // batches.
  EXPECT_LT(stats.batches, kThreads);
  EXPECT_LT(elapsed, millis(60));
}

TEST(TxnLogTest, LiveBytesTracksPayload) {
  TxnLog log(TxnLogConfig{});
  ASSERT_TRUE(log.append(make_ws(1)).is_ok());
  const auto bytes_one = log.stats().live_bytes;
  EXPECT_GT(bytes_one, 0);
  ASSERT_TRUE(log.append(make_ws(2)).is_ok());
  EXPECT_GT(log.stats().live_bytes, bytes_one);
  log.truncate_through(2);
  EXPECT_EQ(log.stats().live_bytes, 0);
}

TEST(TxnLogTest, ShardedLanesPreserveCommitOrderSemantics) {
  TxnLogConfig cfg;
  cfg.lanes = 4;
  TxnLog log(cfg);
  EXPECT_EQ(log.lanes(), 4);
  // Different clients land on different lanes; fetch still presents the
  // union in commit order.
  for (Timestamp ts = 1; ts <= 40; ++ts) {
    ASSERT_TRUE(log.append(make_ws(ts, "client-" + std::to_string(ts % 7))).is_ok());
  }
  auto fetched = log.fetch_after(0);
  ASSERT_EQ(fetched.size(), 40u);
  for (Timestamp ts = 1; ts <= 40; ++ts) {
    EXPECT_EQ(fetched[static_cast<std::size_t>(ts - 1)].commit_ts, ts);
  }
  EXPECT_EQ(log.fetch_client_after("client-3", 0).size(), 6u);
  log.truncate_through(20);
  EXPECT_EQ(log.fetch_after(0).size(), 20u);
}

TEST(TxnLogTest, LanesOverlapStorageWrites) {
  // With the storage write off the shared lock, K lanes should complete K
  // concurrent batches in roughly one sync latency, not K.
  TxnLogConfig cfg;
  cfg.sync_latency = millis(10);
  cfg.lanes = 4;
  TxnLog log(cfg);
  std::vector<std::thread> threads;
  const Micros start = now_micros();
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&log, t] {
      ASSERT_TRUE(log.append(make_ws(t + 1, "client-" + std::to_string(t))).is_ok());
    });
  }
  for (auto& t : threads) t.join();
  const Micros elapsed = now_micros() - start;
  // Sequential lanes would take >= 40 ms even with perfect batching of
  // distinct clients; overlapping lanes finish in ~10-25 ms.
  EXPECT_LT(elapsed, millis(35));
}

TEST(TxnLogTest, AdaptiveGroupCommitChargesSyncOncePerBatch) {
  TxnLogConfig cfg;
  cfg.sync_latency = millis(4);
  cfg.sync_jitter = 0;
  cfg.adaptive = true;
  cfg.max_group_wait = millis(2);
  reset_global_histograms();
  TxnLog log(cfg);
  constexpr int kThreads = 12;
  constexpr int kPerThread = 4;
  std::vector<std::thread> threads;
  const Micros start = now_micros();
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(log.append(make_ws(t * kPerThread + i + 1)).is_ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  const Micros elapsed = now_micros() - start;
  const auto stats = log.stats();
  EXPECT_EQ(stats.appends, kThreads * kPerThread);
  EXPECT_LT(stats.batches, stats.appends) << "concurrent appends never batched";
  // The stable-storage sync is charged once per batch, not once per append:
  // wall clock is bounded by batches x (sync + accumulation window) plus
  // scheduling slack, far below appends x sync (192 ms here).
  EXPECT_LT(elapsed,
            stats.batches * (cfg.sync_latency + cfg.max_group_wait) + millis(40));
  // The adaptive path feeds the shared histograms: one batch-size sample per
  // batch.
  for (const auto& [name, hist] : global_histogram_snapshot()) {
    if (name == "log.batch_size") {
      EXPECT_GE(hist->count(), static_cast<std::uint64_t>(stats.batches));
    }
  }
}

TEST(TxnLogTest, RecoveryScanOrderSurvivesBatchBoundaries) {
  // A recovery scan must see commit-timestamp order no matter how the
  // concurrent appends were grouped into batches.
  TxnLogConfig cfg;
  cfg.sync_latency = millis(2);
  cfg.adaptive = true;
  TxnLog log(cfg);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Interleaved timestamp assignment across threads: batch membership
        // and commit order are fully decoupled.
        ASSERT_TRUE(log.append(make_ws(i * kThreads + t + 1,
                                       "client-" + std::to_string(t % 3)))
                        .is_ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  auto fetched = log.fetch_after(0);
  ASSERT_EQ(fetched.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (std::size_t i = 1; i < fetched.size(); ++i) {
    EXPECT_LT(fetched[i - 1].commit_ts, fetched[i].commit_ts)
        << "recovery scan out of commit order at index " << i;
  }
}

TEST(TxnLogTest, NonAdaptiveModeNeverHoldsTheSync) {
  TxnLogConfig cfg;
  cfg.sync_latency = millis(1);
  cfg.adaptive = false;
  TxnLog log(cfg);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(log.append(make_ws(t * 3 + i + 1)).is_ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto stats = log.stats();
  EXPECT_EQ(stats.appends, 24);
  // Legacy behaviour: wake -> sync immediately; the accumulation window is
  // never entered (opportunistic batching of already-queued work still
  // happens).
  EXPECT_EQ(stats.group_waits, 0);
}

TEST(TxnLogTest, FetchAfterTruncateNeverReturnsTruncatedRecord) {
  // Regression for the segment rebuild: a truncated record must be invisible
  // to every fetch shape — below, at, and across segment boundaries, before
  // and after physical GC — even when the caller's threshold is older than
  // the truncation floor.
  TxnLogConfig cfg;
  cfg.lanes = 2;
  cfg.segment_records = 8;  // truncation lands mid-segment and across seals
  cfg.gc_interval = 0;      // physical reclamation only via gc_now()
  TxnLog log(cfg);
  for (Timestamp ts = 1; ts <= 50; ++ts) {
    ASSERT_TRUE(log.append(make_ws(ts, "client-" + std::to_string(ts % 5))).is_ok());
  }
  log.truncate_through(33);
  for (Timestamp after : {Timestamp{0}, Timestamp{10}, Timestamp{33}, Timestamp{40}}) {
    for (const auto& ws : log.fetch_after(after)) {
      EXPECT_GT(ws.commit_ts, 33) << "truncated record leaked at threshold " << after;
      EXPECT_GT(ws.commit_ts, after);
    }
  }
  EXPECT_EQ(log.fetch_after(0).size(), 17u);
  for (const auto& ws : log.fetch_client_after("client-2", 0)) {
    EXPECT_GT(ws.commit_ts, 33);
  }
  log.gc_now();  // physical deletion must not change what fetch returns
  EXPECT_EQ(log.fetch_after(0).size(), 17u);
  EXPECT_EQ(log.fetch_after(0).front().commit_ts, 34);
  const auto stats = log.stats();
  EXPECT_EQ(stats.truncated, 33);
  EXPECT_EQ(stats.live_records, 17);
  EXPECT_GT(stats.gc_segments, 0) << "no sealed segment became GC-eligible";
  EXPECT_LE(log.gc_watermark(), 33);
}

TEST(TxnLogTest, SegmentGcReclaimsWholeSegmentsAndExportsMetrics) {
  TxnLogConfig cfg;
  cfg.segment_records = 10;
  cfg.gc_interval = 0;
  TxnLog log(cfg);
  for (Timestamp ts = 1; ts <= 45; ++ts) ASSERT_TRUE(log.append(make_ws(ts)).is_ok());
  auto stats = log.stats();
  EXPECT_EQ(stats.segments, 5);  // 4 sealed + the active tail
  EXPECT_EQ(stats.retained_records, 45);
  // Logical truncation alone retains the records; GC reclaims whole sealed
  // segments at or below the floor — ts <= 25 spans two full segments
  // (1..10, 11..20) while 21..25 stays pinned by its segment's survivors.
  log.truncate_through(25);
  stats = log.stats();
  EXPECT_EQ(stats.live_records, 20);
  EXPECT_EQ(stats.segments, 3);
  EXPECT_EQ(stats.gc_segments, 2);
  EXPECT_EQ(stats.retained_records, 25);
  EXPECT_GT(stats.gc_bytes_reclaimed, 0);
  EXPECT_EQ(log.gc_watermark(), 20);
  for (const auto& [name, value] : global_gauge_snapshot()) {
    if (name == "log.segments") EXPECT_EQ(value, stats.segments);
    if (name == "log.retained_txns") EXPECT_EQ(value, stats.retained_records);
  }
}

TEST(TxnLogTest, RetainedRecordsPlateauUnderSustainedCommits) {
  // The acceptance property behind Algorithm 4: with checkpointing keeping
  // pace, physical retention is bounded by TP lag plus one partially-dead
  // segment per lane — it must not grow with total commits.
  TxnLogConfig cfg;
  cfg.lanes = 2;
  cfg.segment_records = 16;
  cfg.gc_interval = 0;
  TxnLog log(cfg);
  constexpr Timestamp kTotal = 2000;
  constexpr Timestamp kTpLag = 100;  // checkpoint trails the newest commit by this
  std::int64_t max_retained = 0;
  for (Timestamp ts = 1; ts <= kTotal; ++ts) {
    ASSERT_TRUE(log.append(make_ws(ts, "client-" + std::to_string(ts % 7))).is_ok());
    if (ts % 50 == 0) {
      log.truncate_through(ts - kTpLag);
      log.gc_now();
      max_retained = std::max(max_retained, log.stats().retained_records);
    }
  }
  const auto stats = log.stats();
  // Bound: TP lag + checkpoint cadence + one sealing-boundary segment per
  // lane. Far below kTotal — the legacy map would have retained all 2000.
  const std::int64_t bound =
      kTpLag + 50 + static_cast<std::int64_t>(cfg.lanes * cfg.segment_records) * 2;
  EXPECT_LE(max_retained, bound);
  EXPECT_LE(stats.segments, 2 * ((bound / static_cast<std::int64_t>(cfg.segment_records)) + 2));
  EXPECT_GT(stats.gc_segments, 50);
  EXPECT_EQ(stats.appends, kTotal);
}

TEST(TxnLogTest, FetchReturnsCommitOrderRegardlessOfAppendOrder) {
  TxnLog log(TxnLogConfig{});
  ASSERT_TRUE(log.append(make_ws(3)).is_ok());
  ASSERT_TRUE(log.append(make_ws(1)).is_ok());
  ASSERT_TRUE(log.append(make_ws(2)).is_ok());
  auto fetched = log.fetch_after(0);
  ASSERT_EQ(fetched.size(), 3u);
  EXPECT_EQ(fetched[0].commit_ts, 1);
  EXPECT_EQ(fetched[2].commit_ts, 3);
}

}  // namespace
}  // namespace tfr
