// YCSB driver mechanics: pacing, event scheduling, series capture, abort
// accounting.
#include "src/ycsb/driver.h"

#include <gtest/gtest.h>

namespace tfr {
namespace {

class DriverTest : public ::testing::Test {
 protected:
  DriverTest() : bed_(fast_test_config(1, 1)) {}

  void SetUp() override {
    ASSERT_TRUE(bed_.start().is_ok());
    ASSERT_TRUE(bed_.create_table("usertable", kRows, 2).is_ok());
    ASSERT_TRUE(bed_.load_rows("usertable", kRows, 16).is_ok());
  }

  static constexpr std::uint64_t kRows = 200;
  Testbed bed_;
};

TEST_F(DriverTest, ClosedLoopProducesThroughput) {
  WorkloadConfig w;
  w.num_rows = kRows;
  w.ops_per_txn = 2;
  DriverConfig d;
  d.threads = 4;
  d.duration = millis(500);
  YcsbDriver driver(bed_, w, d);
  auto report = driver.run();
  EXPECT_GT(report.committed, 50u);
  EXPECT_GT(report.throughput_tps, 0);
  EXPECT_GT(report.mean_latency_ms, 0);
  EXPECT_LE(report.p50_latency_ms, report.p99_latency_ms);
  EXPECT_NEAR(report.wall_seconds, 0.5, 0.3);
}

TEST_F(DriverTest, OpenLoopPacesToTarget) {
  WorkloadConfig w;
  w.num_rows = kRows;
  w.ops_per_txn = 2;
  DriverConfig d;
  d.threads = 4;
  d.target_tps = 50;
  d.duration = seconds(2);
  YcsbDriver driver(bed_, w, d);
  auto report = driver.run();
  EXPECT_NEAR(report.throughput_tps, 50.0, 20.0);
}

TEST_F(DriverTest, ScheduledEventsFireAtOffset) {
  WorkloadConfig w;
  w.num_rows = kRows;
  DriverConfig d;
  d.threads = 2;
  d.duration = millis(400);
  YcsbDriver driver(bed_, w, d);
  std::atomic<Micros> fired_at{-1};
  const Micros t0 = now_micros();
  driver.schedule(millis(100), "marker", [&] { fired_at = now_micros() - t0; });
  (void)driver.run();
  ASSERT_GE(fired_at.load(), millis(100));
  EXPECT_LT(fired_at.load(), millis(350));
}

TEST_F(DriverTest, SeriesCoversTheRun) {
  WorkloadConfig w;
  w.num_rows = kRows;
  DriverConfig d;
  d.threads = 2;
  d.duration = millis(600);
  d.series_interval = millis(200);
  YcsbDriver driver(bed_, w, d);
  auto report = driver.run();
  ASSERT_GE(report.series.size(), 2u);
  double total = 0;
  for (const auto& p : report.series) total += p.throughput * 0.2;
  EXPECT_NEAR(total, static_cast<double>(report.committed),
              static_cast<double>(report.committed) * 0.2 + 10);
}

class CoreWorkloadTest : public DriverTest,
                         public ::testing::WithParamInterface<char> {};

TEST_P(CoreWorkloadTest, RunsCleanly) {
  WorkloadConfig w = ycsb_core_workload(GetParam(), kRows);
  DriverConfig d;
  d.threads = 4;
  d.duration = millis(400);
  YcsbDriver driver(bed_, w, d);
  auto report = driver.run();
  EXPECT_GT(report.committed, 5u) << "workload " << GetParam();
  EXPECT_EQ(report.errors, 0u) << "workload " << GetParam();
  EXPECT_TRUE(bed_.client().wait_flushed(seconds(60)));
}

INSTANTIATE_TEST_SUITE_P(Mixes, CoreWorkloadTest,
                         ::testing::Values('a', 'b', 'c', 'd', 'e', 'f'));

TEST_F(DriverTest, InsertWorkloadGrowsTheTable) {
  WorkloadConfig w = ycsb_core_workload('d', kRows);
  DriverConfig d;
  d.threads = 2;
  d.duration = millis(400);
  YcsbDriver driver(bed_, w, d);
  auto report = driver.run();
  ASSERT_TRUE(bed_.client().wait_flushed(seconds(60)));
  ASSERT_TRUE(bed_.wait_stable(bed_.tm().current_ts()));
  // Some inserted row beyond the initial keyspace is readable.
  Transaction txn = bed_.client().begin("usertable");
  auto cells = txn.scan(Testbed::row_key(kRows), "", 1);
  txn.abort();
  ASSERT_TRUE(cells.is_ok());
  if (report.committed > 20) {
    EXPECT_FALSE(cells.value().empty()) << "no inserts landed beyond the initial rows";
  }
}

TEST_F(DriverTest, ZipfianDistributionCausesConflictsNotErrors) {
  WorkloadConfig w;
  w.num_rows = 20;  // tiny keyspace -> heavy contention
  w.distribution = KeyDistribution::kZipfian;
  DriverConfig d;
  d.threads = 8;
  d.duration = millis(400);
  YcsbDriver driver(bed_, w, d);
  auto report = driver.run();
  EXPECT_GT(report.aborted, 0u) << "contention should cause SI aborts";
  EXPECT_EQ(report.errors, 0u);
}

}  // namespace
}  // namespace tfr
