#include "src/testbed/testbed.h"

#include <gtest/gtest.h>

namespace tfr {
namespace {

TEST(TestbedHelpersTest, RowKeysAreFixedWidthAndOrdered) {
  EXPECT_EQ(Testbed::row_key(0), "user0000000000");
  EXPECT_EQ(Testbed::row_key(42), "user0000000042");
  EXPECT_LT(Testbed::row_key(9), Testbed::row_key(10));  // zero-padding keeps order
  EXPECT_LT(Testbed::row_key(999), Testbed::row_key(1000));
}

TEST(TestbedHelpersTest, SplitKeysAreEvenAndSorted) {
  auto keys = Testbed::split_keys(1000, 4);
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], Testbed::row_key(250));
  EXPECT_EQ(keys[1], Testbed::row_key(500));
  EXPECT_EQ(keys[2], Testbed::row_key(750));
  EXPECT_TRUE(Testbed::split_keys(100, 1).empty());
}

TEST(TestbedTest, StartCreatesClientsAndPublishesThresholds) {
  Testbed bed(fast_test_config(2, 3));
  ASSERT_TRUE(bed.start().is_ok());
  EXPECT_EQ(bed.num_clients(), 3);
  EXPECT_TRUE(bed.has_rm());
  bed.rm().refresh_now();
  EXPECT_TRUE(bed.coord().get(kTfPath).has_value());
  EXPECT_TRUE(bed.coord().get(kTpPath).has_value());
}

TEST(TestbedTest, LoadRowsMakesDataReadable) {
  Testbed bed(fast_test_config(1, 1));
  ASSERT_TRUE(bed.start().is_ok());
  ASSERT_TRUE(bed.create_table("t", 100, 2).is_ok());
  ASSERT_TRUE(bed.load_rows("t", 100, 8).is_ok());
  ASSERT_TRUE(bed.wait_stable(bed.tm().current_ts()));
  Transaction r = bed.client().begin("t");
  auto cells = r.scan("", "", 0);
  ASSERT_TRUE(cells.is_ok());
  EXPECT_EQ(cells.value().size(), 100u);
  r.abort();
}

TEST(TestbedTest, FlushAllMemstoresWritesStoreFiles) {
  Testbed bed(fast_test_config(2, 1));
  ASSERT_TRUE(bed.start().is_ok());
  ASSERT_TRUE(bed.create_table("t", 100, 4).is_ok());
  ASSERT_TRUE(bed.load_rows("t", 100, 8).is_ok());
  ASSERT_TRUE(bed.flush_all_memstores().is_ok());
  EXPECT_FALSE(bed.dfs().list("/data/").empty());
}

TEST(TestbedTest, WarmCachePopulatesBlockCaches) {
  Testbed bed(fast_test_config(1, 1));
  ASSERT_TRUE(bed.start().is_ok());
  ASSERT_TRUE(bed.create_table("t", 200, 2).is_ok());
  ASSERT_TRUE(bed.load_rows("t", 200, 8).is_ok());
  ASSERT_TRUE(bed.flush_all_memstores().is_ok());
  ASSERT_TRUE(bed.warm_cache("t", 200).is_ok());
  EXPECT_GT(bed.cluster().server(0).block_cache().stats().bytes, 0);
}

TEST(TestbedTest, DisabledRecoveryRunsWithoutMiddleware) {
  TestbedConfig cfg = fast_test_config(1, 1);
  cfg.enable_recovery = false;
  Testbed bed(cfg);
  ASSERT_TRUE(bed.start().is_ok());
  EXPECT_FALSE(bed.has_rm());
  ASSERT_TRUE(bed.create_table("t", 100, 1).is_ok());
  Transaction txn = bed.client().begin("t");
  txn.put("k", "c", "v");
  EXPECT_TRUE(txn.commit().is_ok());
  EXPECT_TRUE(bed.client().wait_flushed());
}

TEST(TestbedTest, WaitStableTimesOutWhenBlocked) {
  Testbed bed(fast_test_config(1, 1));
  ASSERT_TRUE(bed.start().is_ok());
  // Nothing will ever reach timestamp 10^9.
  EXPECT_FALSE(bed.wait_stable(1'000'000'000, millis(100)));
}

}  // namespace
}  // namespace tfr
