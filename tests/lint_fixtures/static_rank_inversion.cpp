// MUST NOT COMPILE: a lexically-nested lock acquisition that inverts the
// rank order. The inner RankedMutexLock takes the outer lock's
// AcquireToken, and the static_assert in annotations.h requires the nested
// mutex's rank to be strictly lower — here it is higher (kWalSync over
// kWal), which deadlocks against the real Wal::sync ordering.
#include "src/common/annotations.h"

namespace {

tfr::RankedMutex<tfr::LockRank::kWal> g_inner{"wal"};
tfr::RankedMutex<tfr::LockRank::kWalSync> g_outer{"wal_sync"};

void inverted() {
  tfr::RankedMutexLock inner(g_inner);
  // <-- rank inversion: acquiring kWalSync (140) while holding kWal (130)
  tfr::RankedMutexLock outer(g_outer, inner.token());
}

}  // namespace

int fixture_main() {
  inverted();
  return 0;
}
