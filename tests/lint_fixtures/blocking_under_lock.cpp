// COMPILES FINE but MUST be flagged by the blocking-call-under-lock static
// pass (scripts/check_blocking.py, or the clang-query script when clang is
// installed): a modeled sleep while a lock guard is live, with no
// `tfr-lint: blocking-ok(...)` justification.
#include "src/common/annotations.h"
#include "src/common/clock.h"

namespace {

tfr::RankedMutex<tfr::LockRank::kBlockCache> g_mu{"block_cache"};

void sleepy_critical_section() {
  tfr::RankedMutexLock lock(g_mu);
  tfr::sleep_micros(100);  // <-- blocking under a no-blocking-rank lock
}

}  // namespace

int fixture_main() {
  sleepy_critical_section();
  return 0;
}
