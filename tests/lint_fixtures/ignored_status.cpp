// MUST NOT COMPILE under the default build flags (-Werror=unused-result):
// dropping a [[nodiscard]] tfr::Status on the floor. The sanctioned forms
// are handling it, propagating it, or TFR_IGNORE_STATUS(expr, "why").
#include "src/common/status.h"

namespace {

tfr::Status do_io() { return tfr::Status::unavailable("transient"); }

}  // namespace

int fixture_main() {
  do_io();  // <-- discarded Status: the build must reject this line
  return 0;
}
