// Control fixture: MUST compile clean and produce zero lint findings. Uses
// every construct the gates police, in its sanctioned form — if a gate
// starts rejecting this file, the gate broke, not the tree.
#include "src/common/annotations.h"
#include "src/common/clock.h"
#include "src/common/status.h"

namespace {

tfr::RankedMutex<tfr::LockRank::kWalSync> g_outer{"wal_sync"};
tfr::RankedMutex<tfr::LockRank::kWal> g_inner{"wal"};

tfr::Status do_io() { return tfr::Status::ok(); }

void correct_nesting_and_discard() {
  tfr::RankedMutexLock outer(g_outer);
  tfr::RankedMutexLock inner(g_inner, outer.token());  // descending: 140 -> 130
  TFR_IGNORE_STATUS(do_io(), "fixture: a justified best-effort call");
}

void blocking_outside_the_lock() {
  {
    tfr::RankedMutexLock lock(g_inner);
  }
  tfr::sleep_micros(1);  // no guard live here
}

}  // namespace

int fixture_main() {
  correct_nesting_and_discard();
  blocking_outside_the_lock();
  return 0;
}
