// Dynamic-topology soak — §9's robustness gauntlet. The master balancer
// splits, merges, and moves regions ON ITS OWN, on a fast tick, while a
// concurrent transactional workload runs, gray failures inject RPC/DFS
// faults, and a region server crash-fails mid-schedule. Every transition
// races failure recovery: a split can land on a region whose replay floor
// is still pinned (the daughters must min-inherit it), recovery can fence a
// region the balancer is mid-split on (the transition must abort cleanly),
// and the TM-log GC must never reclaim a write-set any daughter still has
// to replay.
//
// Asserted invariants (DESIGN.md §5 + §8, sampled by a monitor thread):
//   * durability   — every committed transaction is readable (model check)
//   * atomicity    — cross-region write-sets are never torn
//   * monotonicity — published TF and TP never regress
//   * ordering     — TP <= TF at every observation
//   * GC floor     — the log GC watermark never overtakes published TP or
//                    any live recovery floor
// plus: the balancer actually split regions during the run, and no WAL
// split was abandoned.
//
// Seed count: 3 by default (ctest smoke); check.sh soak-split runs 20 under
// TSan via TFR_SPLIT_SEEDS=N. Reproduce one schedule with:
//   TFR_CHAOS_SEED=<seed> ./integration_tests \
//     --gtest_filter='Seeds/SplitSoakTest.*'
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/fault.h"
#include "src/common/metrics.h"
#include "src/common/random.h"
#include "src/testbed/testbed.h"

namespace tfr {
namespace {

constexpr std::uint64_t kRows = 400;        // 2 initial regions
constexpr std::uint64_t kSingleRows = 200;  // single-row txns draw from [0, 200)
constexpr int kWriterThreads = 3;
constexpr int kTxnsPerThread = 30;
constexpr int kNumServers = 4;

std::uint64_t effective_seed(std::uint64_t param) {
  if (const char* env = std::getenv("TFR_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return param;
}

std::uint64_t split_seed_count() {
  if (const char* env = std::getenv("TFR_SPLIT_SEEDS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::uint64_t>(n);
  }
  return 3;
}

class SplitSoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SplitSoakTest, TopologyChurnDuringFailuresKeepsInvariants) {
  const std::uint64_t seed = effective_seed(GetParam());
  SCOPED_TRACE("split seed " + std::to_string(seed) +
               " — replay with TFR_CHAOS_SEED=" + std::to_string(seed));
  std::printf("[ split    ] seed %llu%s\n", static_cast<unsigned long long>(seed),
              std::getenv("TFR_CHAOS_SEED") ? " (from TFR_CHAOS_SEED)" : "");
  Rng rng(seed);

  const std::int64_t splits_before = global_counter("master.region_splits").get();
  const std::int64_t merges_before = global_counter("master.region_merges").get();
  const std::int64_t moves_before = global_counter("master.region_moves").get();

  TestbedConfig cfg = fast_test_config(kNumServers, kWriterThreads);
  cfg.client.flusher_threads = 2;
  // Tiny memstores spill to store files quickly so the size trigger has
  // something to measure; tiny fast-GC'd log segments make the GC-floor
  // invariant a live race across every floor migration.
  cfg.cluster.server.memstore_flush_bytes = 512;
  cfg.txn_log.segment_records = 24;
  cfg.txn_log.gc_interval = millis(2);
  // The balancer on an aggressive tick: size splits at ~3 store-file spills,
  // merges only for genuinely cold small pairs (hysteresis: the merged
  // region stays under the split threshold), traffic moves plus region-count
  // evening. Two actions per tick keeps a single tick's transition batch —
  // run under the balancer lock — short relative to the crash schedule.
  cfg.cluster.balancer.interval = millis(10);
  cfg.cluster.balancer.split_store_bytes = 1500;
  cfg.cluster.balancer.merge_traffic_ops = 4;
  cfg.cluster.balancer.merge_store_bytes = 800;
  cfg.cluster.balancer.move_load_ratio = 2.0;
  cfg.cluster.balancer.move_min_ops = 16;
  cfg.cluster.balancer.max_actions_per_tick = 2;
  Testbed bed(cfg);
  ASSERT_TRUE(bed.start().is_ok());
  ASSERT_TRUE(bed.create_table("t", kRows, 2).is_ok());

  // --- gray-failure schedule, all derived from the seed ----------------------
  bed.fault().reseed(seed);
  {
    FaultRule rpc;  // lost requests, lost acks, corrupted frames
    rpc.op = FaultOp::kRpcApply;
    rpc.error_probability = 0.05;
    rpc.drop_response_probability = 0.03;
    rpc.corrupt_probability = 0.03;
    bed.fault().add_rule(rpc);

    FaultRule slow_sync;  // the slow-disk gray failure
    slow_sync.op = FaultOp::kDfsSync;
    slow_sync.target = "/wal/";
    slow_sync.delay_probability = 0.5;
    slow_sync.delay = millis(1);
    bed.fault().add_rule(slow_sync);
  }

  // --- reference model of successfully committed transactions ---------------
  std::mutex model_mutex;
  std::map<std::string, std::pair<Timestamp, std::string>> model;  // row -> (ts, value)
  std::vector<std::pair<std::string, std::string>> committed_pairs;
  Timestamp max_committed = 0;

  auto writer = [&](int t, std::uint64_t thread_seed) {
    Rng trng(thread_seed);
    TxnClient& client = bed.client(t);
    // Fat values push regions over the split threshold within a few dozen
    // transactions, so topology churn overlaps the whole schedule.
    const std::string pad(48, 'x');
    for (int i = 0; i < kTxnsPerThread; ++i) {
      if (client.crashed()) break;
      Transaction txn = client.begin("t");
      std::vector<Mutation> muts;
      const bool pair_txn = i % 5 == 0;
      if (pair_txn) {
        // Atomicity probe: the (t, i) key makes each pair row written once.
        const std::uint64_t p =
            kSingleRows + static_cast<std::uint64_t>(t * kTxnsPerThread + i);
        const std::string value =
            "pair-" + std::to_string(t) + "-" + std::to_string(i) + pad;
        for (std::uint64_t row : {p, p + 150}) {
          txn.put(Testbed::row_key(row), "c", value);
          muts.push_back(Mutation{Testbed::row_key(row), "c", value, false});
        }
      } else {
        const std::string row = Testbed::row_key(trng.next_below(kSingleRows));
        const std::string value =
            "s" + std::to_string(t) + "-" + std::to_string(i) + pad;
        txn.put(row, "c", value);
        muts.push_back(Mutation{row, "c", value, false});
      }
      auto ts = txn.commit();
      if (!ts.is_ok()) continue;  // not committed -> not durable, not modeled
      std::lock_guard lock(model_mutex);
      for (const auto& m : muts) {
        auto it = model.find(m.row);
        if (it == model.end() || ts.value() >= it->second.first) {
          model[m.row] = {ts.value(), m.value};
        }
      }
      if (pair_txn) committed_pairs.emplace_back(muts[0].row, muts[1].row);
      max_committed = std::max(max_committed, ts.value());
    }
  };

  // --- §5/§8 invariant monitor (see cascade_soak_test for the read-order
  // argument: watermark first, floors after, so a violation is never a
  // sampling artifact) --------------------------------------------------------
  std::atomic<bool> monitor_stop{false};
  std::vector<std::string> violations;
  std::mutex violations_mutex;
  std::thread monitor([&] {
    Timestamp last_tf = kNoTimestamp;
    Timestamp last_tp = kNoTimestamp;
    while (!monitor_stop.load(std::memory_order_acquire)) {
      const Timestamp gc_mark = bed.tm().log().gc_watermark();
      const Timestamp floor = bed.rm().min_recovery_floor();
      const auto tp = bed.coord().get(kTpPath);
      const auto tf = bed.coord().get(kTfPath);
      std::lock_guard lock(violations_mutex);
      if (tf && *tf < last_tf) {
        violations.push_back("TF regressed: " + std::to_string(last_tf) + " -> " +
                             std::to_string(*tf));
      }
      if (tp && *tp < last_tp) {
        violations.push_back("TP regressed: " + std::to_string(last_tp) + " -> " +
                             std::to_string(*tp));
      }
      if (tf && tp && *tp > *tf) {
        violations.push_back("TP " + std::to_string(*tp) + " > TF " + std::to_string(*tf));
      }
      if (floor != kMaxTimestamp && gc_mark > floor) {
        violations.push_back("GC watermark " + std::to_string(gc_mark) +
                             " overtook live recovery floor " + std::to_string(floor));
      }
      if (tp && gc_mark > *tp) {
        violations.push_back("GC watermark " + std::to_string(gc_mark) +
                             " overtook published TP " + std::to_string(*tp));
      }
      if (tf) last_tf = *tf;
      if (tp) last_tp = *tp;
      sleep_micros(millis(1));
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriterThreads; ++t) {
    writers.emplace_back(writer, t, seed * 131 + static_cast<std::uint64_t>(t));
  }

  // --- crash a server while the balancer is churning -------------------------
  sleep_micros(millis(15 + static_cast<std::int64_t>(rng.next_below(30))));
  const int victim = static_cast<int>(rng.next_below(kNumServers));
  bed.crash_server(victim);
  ASSERT_TRUE(bed.wait_server_recoveries(1));

  for (auto& w : writers) w.join();
  bed.wait_for_recovery();

  // Drain the surviving clients' flushes BEFORE lifting the fault rules, so
  // every committed write-set's RPC applies ran under injection.
  for (int c = 0; c < kWriterThreads; ++c) {
    ASSERT_TRUE(bed.client(c).wait_flushed(seconds(60))) << "client " << c;
  }
  bed.fault().clear_rules();
  ASSERT_TRUE(bed.wait_stable(max_committed, seconds(60)));

  monitor_stop.store(true, std::memory_order_release);
  monitor.join();
  {
    std::lock_guard lock(violations_mutex);
    EXPECT_TRUE(violations.empty()) << violations.size() << " invariant violations, first: "
                                    << violations.front();
  }
  // Post-recovery threshold sanity, including the GC bound.
  {
    const auto tp = bed.coord().get(kTpPath);
    const auto tf = bed.coord().get(kTfPath);
    ASSERT_TRUE(tf.has_value());
    ASSERT_TRUE(tp.has_value());
    EXPECT_LE(*tp, *tf);
    EXPECT_LE(bed.tm().log().gc_watermark(), *tp);
  }

  // --- durability: the store matches the reference model --------------------
  Transaction r = bed.client(0).begin("t");
  std::size_t checked = 0;
  for (const auto& [row, expected] : model) {
    auto v = r.get(row, "c");
    ASSERT_TRUE(v.is_ok()) << row;
    ASSERT_TRUE(v.value().has_value()) << "committed row lost: " << row;
    EXPECT_EQ(*v.value(), expected.second) << row;
    ++checked;
  }
  // --- atomicity: no torn cross-region write-sets ---------------------------
  for (const auto& [a, b] : committed_pairs) {
    auto va = r.get(a, "c");
    auto vb = r.get(b, "c");
    ASSERT_TRUE(va.is_ok() && vb.is_ok());
    ASSERT_TRUE(va.value().has_value() && vb.value().has_value()) << "torn pair " << a;
    EXPECT_EQ(*va.value(), *vb.value()) << "torn pair " << a;
  }
  r.abort();
  EXPECT_GT(checked, 0u);

  // The schedule must have exercised what it claims: the balancer actually
  // split regions under load (merges and moves are opportunistic — logged,
  // not required), recovery ran, and no WAL split was abandoned.
  const std::int64_t splits = global_counter("master.region_splits").get() - splits_before;
  const std::int64_t merges = global_counter("master.region_merges").get() - merges_before;
  const std::int64_t moves = global_counter("master.region_moves").get() - moves_before;
  std::printf("[ split    ] seed %llu: %lld splits, %lld merges, %lld moves, %zu regions\n",
              static_cast<unsigned long long>(seed), static_cast<long long>(splits),
              static_cast<long long>(merges), static_cast<long long>(moves),
              bed.master().table_regions("t").size());
  EXPECT_GT(splits, 0) << "balancer never split a region — the soak was vacuous";
  EXPECT_GE(bed.rm().stats().server_recoveries, 1);
  const FaultStats fs = bed.fault().stats();
  EXPECT_GT(fs.evaluations, 0);
  EXPECT_EQ(global_counter("master.wal_split_failures").get(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitSoakTest,
                         ::testing::Range<std::uint64_t>(1, 1 + split_seed_count()));

}  // namespace
}  // namespace tfr
