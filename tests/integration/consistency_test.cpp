// Consistency under concurrency and failure: stable-snapshot readers racing
// crashes and recovery must never observe a torn multi-row write-set, and a
// conserved-quantity workload (transfers) must balance exactly whatever the
// crash schedule was.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/common/random.h"
#include "src/testbed/testbed.h"

namespace tfr {
namespace {

TEST(ConsistencyTest, StableReadersNeverSeeTornWritesetsDuringRecovery) {
  TestbedConfig cfg = fast_test_config(3, 2);
  cfg.cluster.server.wal_sync_interval = seconds(100);  // crashes lose memstores
  Testbed bed(cfg);
  ASSERT_TRUE(bed.start().is_ok());
  constexpr std::uint64_t kRows = 2000;
  ASSERT_TRUE(bed.create_table("t", kRows, 6).is_ok());

  // Writers maintain the invariant: row i and row (1000 + i) always carry
  // the same value, written atomically by one transaction.
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<int> reads_done{0};

  std::thread writer([&] {
    Rng rng(1);
    int v = 0;
    while (!stop) {
      const int i = static_cast<int>(rng.next_below(100));
      Transaction txn = bed.client(0).begin("t");
      const std::string value = "v" + std::to_string(++v);
      txn.put(Testbed::row_key(static_cast<std::uint64_t>(i)), "c", value);
      txn.put(Testbed::row_key(static_cast<std::uint64_t>(1000 + i)), "c", value);
      (void)txn.commit();  // conflicts are fine
    }
  });

  std::thread reader([&] {
    Rng rng(2);
    while (!stop) {
      const int i = static_cast<int>(rng.next_below(100));
      // Stable snapshot: must be pair-consistent at all times.
      Transaction txn = bed.client(1).begin("t");
      auto a = txn.get(Testbed::row_key(static_cast<std::uint64_t>(i)), "c");
      auto b = txn.get(Testbed::row_key(static_cast<std::uint64_t>(1000 + i)), "c");
      txn.abort();
      if (!a.is_ok() || !b.is_ok()) continue;
      if (a.value().has_value() != b.value().has_value()) {
        ++torn;
      } else if (a.value().has_value() && *a.value() != *b.value()) {
        ++torn;
      }
      ++reads_done;
    }
  });

  // Crash a server (and later a second one) while the loops run.
  sleep_millis(100);
  bed.crash_server(0);
  ASSERT_TRUE(bed.wait_server_recoveries(1));
  bed.wait_for_recovery();
  sleep_millis(150);
  bed.crash_server(1);
  ASSERT_TRUE(bed.wait_server_recoveries(2));
  bed.wait_for_recovery();
  sleep_millis(150);

  stop = true;
  writer.join();
  reader.join();
  EXPECT_EQ(torn.load(), 0) << "a stable snapshot observed half a write-set";
  EXPECT_GT(reads_done.load(), 50);
}

TEST(ConsistencyTest, ConservedQuantityBalancesAcrossRandomCrash) {
  TestbedConfig cfg = fast_test_config(3, 2);
  Testbed bed(cfg);
  ASSERT_TRUE(bed.start().is_ok());
  constexpr int kAccounts = 200;
  constexpr int kInitial = 100;
  ASSERT_TRUE(bed.create_table("bank", kAccounts, 4).is_ok());

  {
    Transaction txn = bed.client(0).begin("bank");
    for (int i = 0; i < kAccounts; ++i) {
      txn.put(Testbed::row_key(static_cast<std::uint64_t>(i)), "c",
              std::to_string(kInitial));
    }
    ASSERT_TRUE(txn.commit().is_ok());
  }
  ASSERT_TRUE(bed.client(0).wait_flushed());
  ASSERT_TRUE(bed.wait_stable(bed.tm().current_ts()));

  std::atomic<bool> stop{false};
  auto transfer_loop = [&](int idx) {
    Rng rng(static_cast<std::uint64_t>(idx) * 31 + 7);
    TxnClient& client = bed.client(idx % 2);
    while (!stop && !client.crashed()) {
      const auto from = rng.next_below(kAccounts);
      auto to = rng.next_below(kAccounts);
      if (to == from) to = (to + 1) % kAccounts;
      Transaction txn = client.begin("bank");
      auto fa = txn.get(Testbed::row_key(from), "c");
      auto ta = txn.get(Testbed::row_key(to), "c");
      if (!fa.is_ok() || !ta.is_ok() || !fa.value() || !ta.value()) {
        txn.abort();
        continue;
      }
      const int fb = std::stoi(*fa.value());
      const int tb = std::stoi(*ta.value());
      if (fb < 5) {
        txn.abort();
        continue;
      }
      txn.put(Testbed::row_key(from), "c", std::to_string(fb - 5));
      txn.put(Testbed::row_key(to), "c", std::to_string(tb + 5));
      (void)txn.commit();
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) threads.emplace_back(transfer_loop, i);
  sleep_millis(80);
  bed.crash_server(2);
  ASSERT_TRUE(bed.wait_server_recoveries(1));
  bed.wait_for_recovery();
  sleep_millis(80);
  stop = true;
  for (auto& t : threads) t.join();

  ASSERT_TRUE(bed.client(0).wait_flushed(seconds(60)));
  ASSERT_TRUE(bed.client(1).wait_flushed(seconds(60)));
  ASSERT_TRUE(bed.wait_stable(bed.tm().current_ts(), seconds(60)));

  long long total = 0;
  Transaction audit = bed.client(0).begin("bank");
  for (int i = 0; i < kAccounts; ++i) {
    auto v = audit.get(Testbed::row_key(static_cast<std::uint64_t>(i)), "c");
    ASSERT_TRUE(v.is_ok());
    ASSERT_TRUE(v.value().has_value()) << "account " << i << " vanished";
    total += std::stoll(*v.value());
  }
  audit.abort();
  EXPECT_EQ(total, static_cast<long long>(kAccounts) * kInitial)
      << "money created or destroyed across the failure";
}

TEST(ConsistencyTest, SerializationOrderMatchesCommitTimestamps) {
  // The paper assumes "the commit timestamp determines the serialization
  // order" — verify that the final value of a contended row is the one
  // written by the highest committed timestamp.
  Testbed bed(fast_test_config(2, 2));
  ASSERT_TRUE(bed.start().is_ok());
  ASSERT_TRUE(bed.create_table("t", 100, 2).is_ok());

  Timestamp best_ts = 0;
  std::string best_value;
  std::mutex mu;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      for (int n = 0; n < 25; ++n) {
        Transaction txn = bed.client(i % 2).begin("t");
        const std::string value = "w" + std::to_string(i) + "-" + std::to_string(n);
        txn.put("contended", "c", value);
        auto ts = txn.commit();
        if (ts.is_ok()) {
          std::lock_guard lock(mu);
          if (ts.value() > best_ts) {
            best_ts = ts.value();
            best_value = value;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_TRUE(bed.client(0).wait_flushed());
  ASSERT_TRUE(bed.client(1).wait_flushed());
  ASSERT_TRUE(bed.wait_stable(best_ts));

  Transaction r = bed.client(0).begin("t");
  auto v = r.get("contended", "c");
  ASSERT_TRUE(v.is_ok());
  ASSERT_TRUE(v.value().has_value());
  EXPECT_EQ(*v.value(), best_value);
  r.abort();
}

}  // namespace
}  // namespace tfr
