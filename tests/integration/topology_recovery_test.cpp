// §9 dynamic topology under failure: a split that lands while its parent
// still has transactional recovery pending must migrate the replay floor to
// BOTH daughters (TP-inheritance extended to splits), and a merge must be
// refused while a participant is recovering — otherwise a pinned replay
// floor could be folded into a region whose gate has already passed.
#include <gtest/gtest.h>

#include "src/testbed/testbed.h"

namespace tfr {
namespace {

class TopologyRecoveryTest : public ::testing::Test {
 protected:
  TopologyRecoveryTest() : bed_(config()) {}

  static TestbedConfig config() {
    TestbedConfig cfg = fast_test_config(3, 1);
    // WAL syncer effectively off: TP(s) cannot advance, so a ghost failure
    // installs a floor below every commit and the gate replays are real.
    cfg.cluster.server.wal_sync_interval = seconds(100);
    return cfg;
  }

  void SetUp() override { ASSERT_TRUE(bed_.start().is_ok()); }

  std::vector<Timestamp> commit_rows(int from, int to) {
    std::vector<Timestamp> out;
    for (int i = from; i < to; ++i) {
      Transaction txn = bed_.client().begin("t");
      txn.put(Testbed::row_key(i), "c", "value-" + std::to_string(i));
      auto ts = txn.commit();
      EXPECT_TRUE(ts.is_ok());
      out.push_back(ts.value_or(kNoTimestamp));
    }
    return out;
  }

  void verify_rows(int from, int to) {
    Transaction r = bed_.client().begin("t");
    for (int i = from; i < to; ++i) {
      auto v = r.get(Testbed::row_key(i), "c");
      ASSERT_TRUE(v.is_ok());
      ASSERT_TRUE(v.value().has_value()) << "lost committed row " << i;
      EXPECT_EQ(*v.value(), "value-" + std::to_string(i));
    }
    r.abort();
  }

  /// Install a pending replay floor on `region` as a server failure would,
  /// without crashing anything: the hook path is identical (the master
  /// calls on_server_failure before reassigning), so the RM records the
  /// region as recovering at the conservative published-TP bound.
  void install_pending_floor(const std::string& region) {
    static_cast<MasterHooks&>(bed_.rm()).on_server_failure("ghost", {region});
  }

  Testbed bed_;
};

TEST_F(TopologyRecoveryTest, SplitHookMigratesFloorToBothDaughters) {
  ASSERT_TRUE(bed_.create_table("t", 100, 1).is_ok());
  // Pure hook-level contract check on synthetic names: nothing has to be
  // hosted for the floor lattice to move correctly.
  install_pending_floor("t,ghost-parent");
  ASSERT_TRUE(bed_.rm().is_region_recovering("t,ghost-parent"));
  const Timestamp floor = bed_.rm().min_recovery_floor();
  ASSERT_NE(floor, kMaxTimestamp);

  bed_.rm().on_region_split("t,ghost-parent", {"t,ghost-l", "t,ghost-r"}, 7);
  EXPECT_FALSE(bed_.rm().is_region_recovering("t,ghost-parent"));
  EXPECT_TRUE(bed_.rm().is_region_recovering("t,ghost-l"));
  EXPECT_TRUE(bed_.rm().is_region_recovering("t,ghost-r"));
  EXPECT_EQ(bed_.rm().stats().split_floor_inheritances, 2);
  // The floor never lifted across the migration (min over daughters ==
  // parent's floor), and the daughters' markers are durable while the
  // parent's are gone — an RM restart resumes the daughters, not the ghost.
  EXPECT_EQ(bed_.rm().min_recovery_floor(), floor);
  EXPECT_EQ(bed_.coord().get(kRecoveringRegionPrefix + std::string("t,ghost-l")), floor);
  EXPECT_EQ(bed_.coord().get(kRecoveringRegionPrefix + std::string("t,ghost-r")), floor);
  EXPECT_FALSE(
      bed_.coord().get(kRecoveringRegionPrefix + std::string("t,ghost-parent")).has_value());

  // Folding the daughters back together min-inherits into the merged name.
  bed_.rm().on_regions_merged("t,ghost-m", {"t,ghost-l", "t,ghost-r"}, 9);
  EXPECT_FALSE(bed_.rm().is_region_recovering("t,ghost-l"));
  EXPECT_FALSE(bed_.rm().is_region_recovering("t,ghost-r"));
  EXPECT_TRUE(bed_.rm().is_region_recovering("t,ghost-m"));
  EXPECT_EQ(bed_.rm().stats().merge_floor_inheritances, 1);
  EXPECT_EQ(bed_.rm().min_recovery_floor(), floor);
}

TEST_F(TopologyRecoveryTest, MidRecoverySplitReplaysIntoDaughters) {
  ASSERT_TRUE(bed_.create_table("t", 100, 1).is_ok());
  auto tss = commit_rows(0, 40);
  ASSERT_TRUE(bed_.client().wait_flushed());

  const auto regions = bed_.master().table_regions("t");
  ASSERT_EQ(regions.size(), 1u);
  const std::string parent = regions.front().region_name;

  // The parent is mid-recovery (floor installed, gate obligation pending)
  // when the balancer splits it. The commit migrates the floor to both
  // daughters BEFORE their opens, so each daughter's region gate replays
  // the un-persisted write-sets from the TM log above the inherited TPr.
  install_pending_floor(parent);
  ASSERT_TRUE(bed_.rm().is_region_recovering(parent));
  ASSERT_TRUE(bed_.master().split_region(parent).is_ok());

  const auto stats = bed_.rm().stats();
  EXPECT_EQ(stats.split_floor_inheritances, 2);
  EXPECT_GE(stats.regions_recovered, 2);
  EXPECT_GT(stats.writesets_replayed_server, 0) << "daughter gates never replayed";
  // Both obligations drained: floors lifted, durable markers consumed.
  EXPECT_EQ(bed_.rm().min_recovery_floor(), kMaxTimestamp);
  EXPECT_FALSE(bed_.rm().is_region_recovering(parent));
  for (const auto& loc : bed_.master().table_regions("t")) {
    EXPECT_FALSE(bed_.rm().is_region_recovering(loc.region_name)) << loc.region_name;
  }
  EXPECT_TRUE(bed_.coord().list(kRecoveringRegionPrefix).empty());

  ASSERT_TRUE(bed_.client().wait_flushed());
  ASSERT_TRUE(bed_.wait_stable(tss.back()));
  ASSERT_EQ(bed_.master().table_regions("t").size(), 2u);
  verify_rows(0, 40);
}

TEST_F(TopologyRecoveryTest, MergeOfRecoveringRegionIsRefused) {
  ASSERT_TRUE(bed_.create_table("t", 100, 2).is_ok());
  auto tss = commit_rows(0, 40);
  ASSERT_TRUE(bed_.client().wait_flushed());

  auto regions = bed_.master().table_regions("t");
  ASSERT_EQ(regions.size(), 2u);
  const bool first_is_left = regions[0].descriptor.start_key.empty();
  const auto& left = regions[first_is_left ? 0 : 1];
  const auto& right = regions[first_is_left ? 1 : 0];

  install_pending_floor(left.region_name);
  auto refused = bed_.master().merge_regions(left.region_name, right.region_name);
  EXPECT_TRUE(refused.is_unavailable()) << refused;
  // Refusal is not a transition: both regions keep serving, no merge record.
  EXPECT_EQ(bed_.master().table_regions("t").size(), 2u);
  EXPECT_TRUE(bed_.coord().list(kMergeRecordPrefix).empty());

  // Drain the obligation through the gate path (as a real reassignment
  // would), then the same merge goes through.
  bed_.rm().on_region_recovered(left.region_name, left.server_id);
  ASSERT_FALSE(bed_.rm().is_region_recovering(left.region_name));
  ASSERT_TRUE(bed_.master().merge_regions(left.region_name, right.region_name).is_ok());
  ASSERT_EQ(bed_.master().table_regions("t").size(), 1u);

  ASSERT_TRUE(bed_.client().wait_flushed());
  ASSERT_TRUE(bed_.wait_stable(tss.back()));
  verify_rows(0, 40);
}

}  // namespace
}  // namespace tfr
