// Overlapping failures: the nastiest schedules the paper's protocol must
// survive — client and server dying together, two clients at once, and a
// server dying *while* a client recovery is replaying into it (the case
// that forces client recovery off the failure-detection thread).
#include <gtest/gtest.h>

#include "src/testbed/testbed.h"

namespace tfr {
namespace {

class CombinedFailureTest : public ::testing::Test {
 protected:
  CombinedFailureTest() : bed_(config()) {}

  static TestbedConfig config() {
    TestbedConfig cfg = fast_test_config(3, 3);
    cfg.cluster.server.wal_sync_interval = seconds(100);  // crashes lose memstores
    cfg.client.flusher_threads = 1;                       // big unflushed windows
    return cfg;
  }

  void SetUp() override {
    ASSERT_TRUE(bed_.start().is_ok());
    ASSERT_TRUE(bed_.create_table("t", 3000, 6).is_ok());
  }

  std::vector<Timestamp> burst(TxnClient& client, int from, int to) {
    std::vector<Timestamp> out;
    for (int i = from; i < to; ++i) {
      Transaction txn = client.begin("t");
      txn.put(Testbed::row_key(static_cast<std::uint64_t>(i)), "c",
              "value-" + std::to_string(i));
      auto ts = txn.commit();
      EXPECT_TRUE(ts.is_ok());
      out.push_back(ts.value_or(kNoTimestamp));
    }
    return out;
  }

  void verify(TxnClient& reader, int from, int to) {
    Transaction r = reader.begin("t");
    for (int i = from; i < to; ++i) {
      auto v = r.get(Testbed::row_key(static_cast<std::uint64_t>(i)), "c");
      ASSERT_TRUE(v.is_ok());
      ASSERT_TRUE(v.value().has_value()) << "row " << i << " lost";
      EXPECT_EQ(*v.value(), "value-" + std::to_string(i));
    }
    r.abort();
  }

  Testbed bed_;
};

TEST_F(CombinedFailureTest, ClientAndServerDieTogether) {
  auto tss = burst(bed_.client(0), 0, 40);
  // Both failures at once: the client's unflushed write-sets need replay,
  // and some target regions are down and must be recovered first.
  bed_.crash_client(0);
  bed_.crash_server(0);
  ASSERT_TRUE(bed_.wait_client_recoveries(1, seconds(60)));
  ASSERT_TRUE(bed_.wait_server_recoveries(1, seconds(60)));
  bed_.wait_for_recovery();
  ASSERT_TRUE(bed_.wait_stable(tss.back(), seconds(60)));
  verify(bed_.client(1), 0, 40);
}

TEST_F(CombinedFailureTest, ServerDiesFirstThenClientMidRetry) {
  // The client's flusher is stuck retrying against the dead server's
  // regions when the client itself dies: the RM inherits the whole backlog.
  bed_.crash_server(0);
  auto tss = burst(bed_.client(0), 0, 30);  // commits fine; flushes blocked
  bed_.crash_client(0);
  ASSERT_TRUE(bed_.wait_client_recoveries(1, seconds(60)));
  ASSERT_TRUE(bed_.wait_server_recoveries(1, seconds(60)));
  bed_.wait_for_recovery();
  ASSERT_TRUE(bed_.wait_stable(tss.back(), seconds(60)));
  verify(bed_.client(1), 0, 30);
}

TEST_F(CombinedFailureTest, TwoClientsFailConcurrently) {
  auto tss_a = burst(bed_.client(0), 0, 25);
  auto tss_b = burst(bed_.client(1), 25, 50);
  bed_.crash_client(0);
  bed_.crash_client(1);
  ASSERT_TRUE(bed_.wait_client_recoveries(2, seconds(60)));
  bed_.wait_for_recovery();
  const Timestamp last = std::max(tss_a.back(), tss_b.back());
  ASSERT_TRUE(bed_.wait_stable(last, seconds(60)));
  verify(bed_.client(2), 0, 50);
}

TEST_F(CombinedFailureTest, AllServersDieOneByOne) {
  auto tss = burst(bed_.client(0), 0, 30);
  ASSERT_TRUE(bed_.client(0).wait_flushed());
  for (int s = 0; s < 2; ++s) {
    bed_.crash_server(s);
    ASSERT_TRUE(bed_.wait_server_recoveries(s + 1, seconds(60)));
    bed_.wait_for_recovery();
    ASSERT_TRUE(bed_.client(0).wait_flushed(seconds(60)));
  }
  // Only rs3 remains, hosting everything.
  EXPECT_EQ(bed_.master().live_servers().size(), 1u);
  ASSERT_TRUE(bed_.wait_stable(tss.back(), seconds(60)));
  verify(bed_.client(1), 0, 30);
}

TEST_F(CombinedFailureTest, RmRestartDuringServerRecoveryWindow) {
  // Crash a server, and restart the RM right around the detection window:
  // whichever RM instance handles it, nothing may be lost.
  auto tss = burst(bed_.client(0), 0, 30);
  ASSERT_TRUE(bed_.client(0).wait_flushed());
  bed_.crash_server(0);
  bed_.restart_recovery_manager();
  ASSERT_TRUE(bed_.wait_server_recoveries(1, seconds(60)));
  bed_.wait_for_recovery();
  ASSERT_TRUE(bed_.client(0).wait_flushed(seconds(60)));
  ASSERT_TRUE(bed_.wait_stable(tss.back(), seconds(60)));
  verify(bed_.client(1), 0, 30);
}

}  // namespace
}  // namespace tfr
