// §3.1 — client failure handling: detection via missed heartbeats, replay
// of committed-but-unflushed write-sets from the TM log via the recovery
// client, and the TF bookkeeping around it.
#include <gtest/gtest.h>

#include "src/testbed/testbed.h"

namespace tfr {
namespace {

class ClientRecoveryTest : public ::testing::Test {
 protected:
  ClientRecoveryTest() : bed_(config()) {}

  static TestbedConfig config() {
    TestbedConfig cfg = fast_test_config(2, 2);
    // Freeze the async flush path so we can crash a client with committed
    // write-sets that have provably not reached the store.
    cfg.client.flusher_threads = 1;
    return cfg;
  }

  void SetUp() override {
    ASSERT_TRUE(bed_.start().is_ok());
    ASSERT_TRUE(bed_.create_table("t", 1000, 4).is_ok());
  }

  Testbed bed_;
};

TEST_F(ClientRecoveryTest, CommittedUnflushedWritesSurviveClientCrash) {
  TxnClient& victim = bed_.client(0);
  TxnClient& observer = bed_.client(1);

  // Commit a burst and crash before the flusher can drain it. With a single
  // flusher thread and many commits, at least the tail is unflushed.
  std::vector<Timestamp> committed;
  for (int i = 0; i < 50; ++i) {
    Transaction txn = victim.begin("t");
    txn.put(Testbed::row_key(i), "c", "value-" + std::to_string(i));
    auto ts = txn.commit();
    ASSERT_TRUE(ts.is_ok());
    committed.push_back(ts.value());
  }
  bed_.crash_client(0);

  // The recovery manager detects the missed heartbeats and replays from the
  // TM log; wait for it to finish.
  ASSERT_TRUE(bed_.wait_client_recoveries(1));
  bed_.wait_for_recovery();
  ASSERT_EQ(bed_.rm().stats().client_recoveries, 1);

  // Every committed value is readable by another client.
  ASSERT_TRUE(bed_.wait_stable(committed.back()));
  Transaction r = observer.begin("t");
  for (int i = 0; i < 50; ++i) {
    auto v = r.get(Testbed::row_key(i), "c");
    ASSERT_TRUE(v.is_ok());
    ASSERT_TRUE(v.value().has_value()) << "lost committed row " << i;
    EXPECT_EQ(*v.value(), "value-" + std::to_string(i));
  }
  r.abort();
}

TEST_F(ClientRecoveryTest, UncommittedTransactionIsSimplyGone) {
  TxnClient& victim = bed_.client(0);
  Transaction txn = victim.begin("t");
  txn.put("uncommitted", "c", "x");
  // Crash without committing: the buffered write-set is lost, which is
  // correct — only committed transactions are durable.
  bed_.crash_client(0);
  ASSERT_TRUE(bed_.wait_client_recoveries(1));
  bed_.wait_for_recovery();

  Transaction r = bed_.client(1).begin("t");
  EXPECT_FALSE(r.get("uncommitted", "c").value().has_value());
  r.abort();
  EXPECT_EQ(bed_.rm().recovery_client_stats().client_writesets_replayed, 0);
}

TEST_F(ClientRecoveryTest, CleanCloseTriggersNoReplay) {
  TxnClient& leaver = bed_.client(0);
  Transaction txn = leaver.begin("t");
  txn.put("k", "c", "v");
  ASSERT_TRUE(txn.commit().is_ok());
  ASSERT_TRUE(leaver.close().is_ok());
  // Give the RM a moment; no recovery should be recorded.
  sleep_millis(50);
  bed_.rm().refresh_now();
  EXPECT_EQ(bed_.rm().stats().client_recoveries, 0);

  Transaction r = bed_.client(1).begin("t");
  EXPECT_TRUE(r.get("k", "c").value().has_value());
  r.abort();
}

TEST_F(ClientRecoveryTest, OnlyTheFailedClientsWritesAreReplayed) {
  TxnClient& victim = bed_.client(0);
  TxnClient& healthy = bed_.client(1);

  Transaction h = healthy.begin("t");
  h.put("healthy-row", "c", "h");
  ASSERT_TRUE(h.commit().is_ok());
  ASSERT_TRUE(healthy.wait_flushed());

  Transaction v = victim.begin("t");
  v.put("victim-row", "c", "v");
  ASSERT_TRUE(v.commit().is_ok());
  bed_.crash_client(0);
  ASSERT_TRUE(bed_.wait_client_recoveries(1));
  bed_.wait_for_recovery();

  // fetchlogs(c, TFr(c)) is client-filtered: replay counts only cover the
  // victim (the healthy client's txn was flushed and below its TF anyway).
  const auto stats = bed_.rm().recovery_client_stats();
  EXPECT_LE(stats.client_writesets_replayed, 1);
}

TEST_F(ClientRecoveryTest, ReplayIsIdempotentWhenFlushAlreadyHappened) {
  // The threshold is conservative: the victim may have flushed more than its
  // last reported TF(c). Replaying those write-sets again must not corrupt
  // anything (same commit timestamp -> same versions).
  TxnClient& victim = bed_.client(0);
  Transaction txn = victim.begin("t");
  txn.put("idem", "c", "once");
  auto ts = txn.commit();
  ASSERT_TRUE(ts.is_ok());
  ASSERT_TRUE(victim.wait_flushed());  // fully flushed...
  bed_.crash_client(0);                // ...but TF(c) heartbeat may lag behind
  ASSERT_TRUE(bed_.wait_client_recoveries(1));
  bed_.wait_for_recovery();

  ASSERT_TRUE(bed_.wait_stable(ts.value()));
  Transaction r = bed_.client(1).begin("t");
  EXPECT_EQ(r.get("idem", "c").value().value(), "once");
  r.abort();
}

TEST_F(ClientRecoveryTest, TfFloorHeldDuringRecoveryThenReleased) {
  TxnClient& victim = bed_.client(0);
  Transaction txn = victim.begin("t");
  txn.put("floor", "c", "v");
  auto ts = txn.commit();
  ASSERT_TRUE(ts.is_ok());
  bed_.crash_client(0);
  ASSERT_TRUE(bed_.wait_client_recoveries(1));
  bed_.wait_for_recovery();
  // After the replay completes the floor is released and TF can reach ts.
  EXPECT_TRUE(bed_.wait_stable(ts.value()));
}

}  // namespace
}  // namespace tfr
