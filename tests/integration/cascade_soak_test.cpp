// Cascading-failure soak — the bounded-recovery tentpole test. A second
// region server crashes while the first server's recovery is still in
// flight: the paper's Algorithm 4 never stress-tests this, but it is where
// the TP-inheritance rule (TP(s') := min(TP(s'), TP(s))) earns its keep.
// The first failure floors the global TP at TPr(s1); if the log's segment
// GC ever ran ahead of that floor, the write-sets the *second* recovery
// must re-fetch (bounded by TPr(s2), which may have been inherited from
// s1) would already be deleted.
//
// The run drives a concurrent transactional workload with aggressive log
// segmentation and GC underneath gray failures (transient RPC errors, slow
// WAL syncs, flaky split reads) and asserts the DESIGN.md §5 invariants:
//   * durability   — every committed transaction is readable (model check)
//   * atomicity    — cross-region write-sets are never torn
//   * monotonicity — published TF and TP never regress (monitor thread)
//   * ordering     — TP <= TF at every observation
// plus the new §8 GC-floor invariant:
//   * no record at or below any live recovery floor (pending-region TPr or
//     client TFr) is ever physically deleted by segment GC, and the GC
//     watermark never overtakes the published TP.
//
// Seed count: 3 by default (ctest smoke); a soak sets TFR_CASCADE_SEEDS=N
// (check.sh soak-recovery runs 20 under TSan). Reproduce one schedule with:
//   TFR_CHAOS_SEED=<seed> ./integration_tests \
//     --gtest_filter='Seeds/CascadeSoakTest.*'
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/fault.h"
#include "src/common/metrics.h"
#include "src/common/random.h"
#include "src/testbed/testbed.h"

namespace tfr {
namespace {

constexpr std::uint64_t kRows = 800;       // 8 regions, splits every 100 rows
constexpr std::uint64_t kSingleRows = 200; // single-row txns draw from [0, 200)
constexpr int kWriterThreads = 3;
constexpr int kTxnsPerThread = 40;
constexpr int kNumServers = 4;  // two may die and regions still have homes

std::uint64_t effective_seed(std::uint64_t param) {
  if (const char* env = std::getenv("TFR_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return param;
}

std::uint64_t cascade_seed_count() {
  if (const char* env = std::getenv("TFR_CASCADE_SEEDS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::uint64_t>(n);
  }
  return 3;
}

class CascadeSoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CascadeSoakTest, SecondFailureDuringRecoveryNeverLosesGcdWriteSets) {
  const std::uint64_t seed = effective_seed(GetParam());
  SCOPED_TRACE("cascade seed " + std::to_string(seed) +
               " — replay with TFR_CHAOS_SEED=" + std::to_string(seed));
  std::printf("[ cascade  ] seed %llu%s\n", static_cast<unsigned long long>(seed),
              std::getenv("TFR_CHAOS_SEED") ? " (from TFR_CHAOS_SEED)" : "");
  Rng rng(seed);

  TestbedConfig cfg = fast_test_config(kNumServers, kWriterThreads);
  cfg.client.flusher_threads = 2;
  // Tiny memstores spill to store files mid-schedule; tiny, fast-GC'd log
  // segments make the GC-floor invariant a live race instead of a no-op —
  // without the pending-region floors, the GC would delete replayable
  // write-sets within a couple of milliseconds of TP advancing.
  cfg.cluster.server.memstore_flush_bytes = 512;
  cfg.txn_log.segment_records = 24;
  cfg.txn_log.gc_interval = millis(2);
  Testbed bed(cfg);
  ASSERT_TRUE(bed.start().is_ok());
  ASSERT_TRUE(bed.create_table("t", kRows, 8).is_ok());

  // --- the fault schedule, all derived from the seed ------------------------
  bed.fault().reseed(seed);
  {
    FaultRule rpc;  // lost requests, lost acks, corrupted frames
    rpc.op = FaultOp::kRpcApply;
    rpc.error_probability = 0.08;
    rpc.drop_response_probability = 0.04;
    rpc.corrupt_probability = 0.04;
    bed.fault().add_rule(rpc);

    FaultRule slow_sync;  // the slow-disk gray failure
    slow_sync.op = FaultOp::kDfsSync;
    slow_sync.target = "/wal/";
    slow_sync.delay_probability = 0.5;
    slow_sync.delay = millis(1);
    bed.fault().add_rule(slow_sync);

    // Flaky and slow WAL-split reads stretch the first server's recovery,
    // widening the window in which the second crash lands mid-replay.
    FaultRule flaky_split;
    flaky_split.op = FaultOp::kDfsRead;
    flaky_split.target = "/wal/";
    flaky_split.error_probability = 0.05;
    flaky_split.delay_probability = 0.5;
    flaky_split.delay = millis(1);
    bed.fault().add_rule(flaky_split);
  }

  // --- reference model of successfully committed transactions ---------------
  std::mutex model_mutex;
  std::map<std::string, std::pair<Timestamp, std::string>> model;  // row -> (ts, value)
  std::vector<std::pair<std::string, std::string>> committed_pairs;
  Timestamp max_committed = 0;

  auto writer = [&](int t, std::uint64_t thread_seed) {
    Rng trng(thread_seed);
    TxnClient& client = bed.client(t);
    for (int i = 0; i < kTxnsPerThread; ++i) {
      if (client.crashed()) break;
      Transaction txn = client.begin("t");
      std::vector<Mutation> muts;
      const bool pair_txn = i % 5 == 0;
      if (pair_txn) {
        // Cross-region atomicity probe: two rows 300 apart land in different
        // regions; the (t, i) key makes each pair row written exactly once.
        const std::uint64_t p =
            kSingleRows + static_cast<std::uint64_t>(t * kTxnsPerThread + i);
        const std::string value = "pair-" + std::to_string(t) + "-" + std::to_string(i);
        for (std::uint64_t row : {p, p + 400}) {
          txn.put(Testbed::row_key(row), "c", value);
          muts.push_back(Mutation{Testbed::row_key(row), "c", value, false});
        }
      } else {
        const std::string row = Testbed::row_key(trng.next_below(kSingleRows));
        const std::string value =
            "s" + std::to_string(t) + "-" + std::to_string(i);
        txn.put(row, "c", value);
        muts.push_back(Mutation{row, "c", value, false});
      }
      auto ts = txn.commit();
      if (!ts.is_ok()) continue;  // not committed -> not durable, not modeled
      std::lock_guard lock(model_mutex);
      for (const auto& m : muts) {
        auto it = model.find(m.row);
        if (it == model.end() || ts.value() >= it->second.first) {
          model[m.row] = {ts.value(), m.value};
        }
      }
      if (pair_txn) committed_pairs.emplace_back(muts[0].row, muts[1].row);
      max_committed = std::max(max_committed, ts.value());
    }
  };

  // --- invariant monitor -----------------------------------------------------
  // §5: reads TP before TF (TF only grows, so tp <= tf must hold at every
  // observation) and both must be monotone. §8: reads the GC watermark
  // FIRST, then the floors — the watermark only grows and, at every
  // instant, watermark <= published TP <= every live recovery floor, so a
  // later-read floor or TP below an earlier-read watermark is a real
  // violation, never a sampling artifact.
  std::atomic<bool> monitor_stop{false};
  std::atomic<std::int64_t> floor_samples{0};
  std::vector<std::string> violations;
  std::mutex violations_mutex;
  std::thread monitor([&] {
    Timestamp last_tf = kNoTimestamp;
    Timestamp last_tp = kNoTimestamp;
    while (!monitor_stop.load(std::memory_order_acquire)) {
      const Timestamp gc_mark = bed.tm().log().gc_watermark();
      const Timestamp floor = bed.rm().min_recovery_floor();
      const auto tp = bed.coord().get(kTpPath);
      const auto tf = bed.coord().get(kTfPath);
      if (floor != kMaxTimestamp) floor_samples.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard lock(violations_mutex);
      if (tf && *tf < last_tf) {
        violations.push_back("TF regressed: " + std::to_string(last_tf) + " -> " +
                             std::to_string(*tf));
      }
      if (tp && *tp < last_tp) {
        violations.push_back("TP regressed: " + std::to_string(last_tp) + " -> " +
                             std::to_string(*tp));
      }
      if (tf && tp && *tp > *tf) {
        violations.push_back("TP " + std::to_string(*tp) + " > TF " + std::to_string(*tf));
      }
      if (floor != kMaxTimestamp && gc_mark > floor) {
        violations.push_back("GC watermark " + std::to_string(gc_mark) +
                             " overtook live recovery floor " + std::to_string(floor));
      }
      if (tp && gc_mark > *tp) {
        violations.push_back("GC watermark " + std::to_string(gc_mark) +
                             " overtook published TP " + std::to_string(*tp));
      }
      if (tf) last_tf = *tf;
      if (tp) last_tp = *tp;
      sleep_micros(millis(1));
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriterThreads; ++t) {
    writers.emplace_back(writer, t, seed * 131 + static_cast<std::uint64_t>(t));
  }

  // --- the cascading crash schedule, also seed-derived -----------------------
  sleep_micros(millis(10 + static_cast<std::int64_t>(rng.next_below(25))));
  const int first_victim = static_cast<int>(rng.next_below(kNumServers));
  const int second_victim =
      (first_victim + 1 + static_cast<int>(rng.next_below(kNumServers - 1))) % kNumServers;
  bed.crash_server(first_victim);
  // The moment the RM has *started* handling the first failure — its
  // pending-region floors are installed, the split/replay is in flight —
  // kill the second server, optionally after a tiny seed-derived delay so
  // the second crash lands at varying depths of the first recovery.
  ASSERT_TRUE(bed.wait_server_recoveries(1));
  sleep_micros(static_cast<std::int64_t>(rng.next_below(4000)));
  bed.crash_server(second_victim);
  ASSERT_TRUE(bed.wait_server_recoveries(2));

  for (auto& w : writers) w.join();
  bed.wait_for_recovery();

  // Drain the surviving clients' flushes BEFORE lifting the fault rules, so
  // every committed write-set's RPC applies ran under injection.
  for (int c = 0; c < kWriterThreads; ++c) {
    ASSERT_TRUE(bed.client(c).wait_flushed(seconds(60))) << "client " << c;
  }
  bed.fault().clear_rules();
  ASSERT_TRUE(bed.wait_stable(max_committed, seconds(60)));

  // Settle until segment GC has actually reclaimed something. GC is
  // asynchronous: its floor only advances once every server's memstore
  // residue is flushed and the RM's next poll republishes TP, so on a slow
  // build (TSan) the tail segments can still be live here even though the
  // run was clean. Row 780 is outside every writer's key range, so the
  // settle commits never disturb the reference model. The vacuity guard
  // below still fires if GC genuinely cannot reclaim.
  for (const Micros settle_deadline = now_micros() + seconds(30);
       bed.tm().log().stats().gc_segments == 0 && now_micros() < settle_deadline;) {
    ASSERT_TRUE(bed.flush_all_memstores().is_ok());
    Transaction settle = bed.client(0).begin("t");
    settle.put(Testbed::row_key(780), "c", "settle");
    (void)settle.commit();
    sleep_micros(millis(5));
  }

  monitor_stop.store(true, std::memory_order_release);
  monitor.join();
  {
    std::lock_guard lock(violations_mutex);
    EXPECT_TRUE(violations.empty()) << violations.size() << " invariant violations, first: "
                                    << violations.front();
  }
  // Post-recovery threshold sanity, including the GC bound.
  {
    const auto tp = bed.coord().get(kTpPath);
    const auto tf = bed.coord().get(kTfPath);
    ASSERT_TRUE(tf.has_value());
    ASSERT_TRUE(tp.has_value());
    EXPECT_LE(*tp, *tf);
    EXPECT_LE(bed.tm().log().gc_watermark(), *tp);
  }

  // --- durability: the store matches the reference model --------------------
  Transaction r = bed.client(0).begin("t");
  std::size_t checked = 0;
  for (const auto& [row, expected] : model) {
    auto v = r.get(row, "c");
    ASSERT_TRUE(v.is_ok()) << row;
    ASSERT_TRUE(v.value().has_value()) << "committed row lost: " << row;
    EXPECT_EQ(*v.value(), expected.second) << row;
    ++checked;
  }
  // --- atomicity: no torn cross-region write-sets ---------------------------
  for (const auto& [a, b] : committed_pairs) {
    auto va = r.get(a, "c");
    auto vb = r.get(b, "c");
    ASSERT_TRUE(va.is_ok() && vb.is_ok());
    ASSERT_TRUE(va.value().has_value() && vb.value().has_value()) << "torn pair " << a;
    EXPECT_EQ(*va.value(), *vb.value()) << "torn pair " << a;
  }
  r.abort();
  EXPECT_GT(checked, 0u);

  // The schedule must actually have exercised what it claims to: both
  // recoveries ran (the second while floors from the first could still be
  // live), the monitor observed live recovery floors, the segmented log
  // actually sealed and reclaimed segments, and no split was abandoned (a
  // give-up would have silently dropped durable edits).
  EXPECT_GE(bed.rm().stats().server_recoveries, 2);
  EXPECT_GT(floor_samples.load(std::memory_order_relaxed), 0)
      << "monitor never saw a live recovery floor — the schedule missed the window";
  const auto log_stats = bed.tm().log().stats();
  EXPECT_GT(log_stats.gc_segments, 0)
      << "segment GC never ran; the invariant was vacuous (tp=" << bed.rm().global_tp()
      << " tf=" << bed.rm().global_tf() << " floor=" << bed.rm().min_recovery_floor()
      << " segments=" << log_stats.segments << " — a pinned TP here usually means a dead "
      << "server's TP(s) registry entry was resurrected)";
  const FaultStats fs = bed.fault().stats();
  EXPECT_GT(fs.evaluations, 0);
  EXPECT_EQ(global_counter("master.wal_split_failures").get(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CascadeSoakTest,
                         ::testing::Range<std::uint64_t>(1, 1 + cascade_seed_count()));

}  // namespace
}  // namespace tfr
