// §3.2 — server failure handling: store-internal WAL-split recovery, the
// region gate, transactional replay after TPr(s), TP inheritance across
// cascading failures, and interrupted client flushes.
#include <gtest/gtest.h>

#include "src/testbed/testbed.h"

namespace tfr {
namespace {

class ServerRecoveryTest : public ::testing::Test {
 protected:
  ServerRecoveryTest() : bed_(config()) {}

  static TestbedConfig config() {
    TestbedConfig cfg = fast_test_config(3, 1);
    // Keep the WAL syncer effectively off so a crash reliably loses the
    // in-memory tail (the paper's asynchronous-persistence window).
    cfg.cluster.server.wal_sync_interval = seconds(100);
    return cfg;
  }

  void SetUp() override {
    ASSERT_TRUE(bed_.start().is_ok());
    ASSERT_TRUE(bed_.create_table("t", 3000, 6).is_ok());
  }

  std::vector<Timestamp> commit_rows(int from, int to) {
    std::vector<Timestamp> out;
    for (int i = from; i < to; ++i) {
      Transaction txn = bed_.client().begin("t");
      txn.put(Testbed::row_key(i), "c", "value-" + std::to_string(i));
      auto ts = txn.commit();
      EXPECT_TRUE(ts.is_ok());
      out.push_back(ts.value_or(kNoTimestamp));
    }
    return out;
  }

  void verify_rows(int from, int to) {
    Transaction r = bed_.client().begin("t");
    for (int i = from; i < to; ++i) {
      auto v = r.get(Testbed::row_key(i), "c");
      ASSERT_TRUE(v.is_ok());
      ASSERT_TRUE(v.value().has_value()) << "lost committed row " << i;
      EXPECT_EQ(*v.value(), "value-" + std::to_string(i));
    }
    r.abort();
  }

  Testbed bed_;
};

TEST_F(ServerRecoveryTest, UnpersistedWritesSurviveServerCrash) {
  auto tss = commit_rows(0, 60);
  ASSERT_TRUE(bed_.client().wait_flushed());
  // Nothing has been WAL-synced: the crash loses every memstore update, and
  // only the TM-log replay can bring them back.
  bed_.crash_server(0);
  ASSERT_TRUE(bed_.wait_server_recoveries(1));
  bed_.wait_for_recovery();
  ASSERT_GE(bed_.rm().stats().server_recoveries, 1);

  ASSERT_TRUE(bed_.client().wait_flushed());
  ASSERT_TRUE(bed_.wait_stable(tss.back()));
  verify_rows(0, 60);
}

TEST_F(ServerRecoveryTest, RecoveryDoesNotDisturbSurvivingServers) {
  auto tss = commit_rows(0, 30);
  ASSERT_TRUE(bed_.client().wait_flushed());
  const auto victim_regions = bed_.cluster().server(0).region_names();
  bed_.crash_server(0);
  ASSERT_TRUE(bed_.wait_server_recoveries(1));
  bed_.wait_for_recovery();
  // Regions that were NOT on the victim stayed where they were.
  for (const auto& loc : bed_.master().table_regions("t")) {
    if (std::find(victim_regions.begin(), victim_regions.end(), loc.region_name) ==
        victim_regions.end()) {
      EXPECT_NE(loc.server_id, "rs1");
    }
  }
  ASSERT_TRUE(bed_.wait_stable(tss.back()));
  verify_rows(0, 30);
}

TEST_F(ServerRecoveryTest, OnlyWritesetsAfterTprAreReplayed) {
  // Persist a first batch everywhere and let TP advance past it; commit a
  // second batch that stays unpersisted, then crash. Only the second batch
  // should be replayed.
  auto first = commit_rows(0, 20);
  ASSERT_TRUE(bed_.client().wait_flushed());
  ASSERT_TRUE(bed_.wait_stable(first.back()));
  const Micros deadline = now_micros() + seconds(10);
  while (bed_.rm().global_tp() < first.back() && now_micros() < deadline) {
    for (int s = 0; s < bed_.cluster().num_servers(); ++s) {
      bed_.cluster().server(s).heartbeat_now();
    }
    bed_.rm().refresh_now();
    sleep_millis(1);
  }
  ASSERT_GE(bed_.rm().global_tp(), first.back());

  auto second = commit_rows(20, 40);
  ASSERT_TRUE(bed_.client().wait_flushed());
  bed_.crash_server(0);
  ASSERT_TRUE(bed_.wait_server_recoveries(1));
  bed_.wait_for_recovery();

  const auto stats = bed_.rm().recovery_client_stats();
  // Each region replay filters the candidate write-sets; the replayed
  // mutations can only come from the second batch.
  EXPECT_LE(stats.mutations_replayed, 20);
  ASSERT_TRUE(bed_.wait_stable(second.back()));
  verify_rows(0, 40);
}

TEST_F(ServerRecoveryTest, CascadedFailureInheritanceKeepsDurability) {
  // The §3.2 scenario: replay lands on s', s' crashes before persisting the
  // replayed updates. Because s' inherited TP(s), its own recovery replays
  // them again. Without the piggyback this loses data.
  auto tss = commit_rows(0, 60);
  ASSERT_TRUE(bed_.client().wait_flushed());

  bed_.crash_server(0);
  ASSERT_TRUE(bed_.wait_server_recoveries(1));
  bed_.wait_for_recovery();
  ASSERT_TRUE(bed_.client().wait_flushed());

  // Immediately crash a second server — the one(s) that inherited replayed
  // updates have not WAL-synced them (syncer is off; heartbeats may not
  // have fired yet with a fresh TF).
  bed_.crash_server(1);
  ASSERT_TRUE(bed_.wait_server_recoveries(2));
  bed_.wait_for_recovery();
  ASSERT_TRUE(bed_.client().wait_flushed());

  ASSERT_TRUE(bed_.wait_stable(tss.back()));
  verify_rows(0, 60);
}

TEST_F(ServerRecoveryTest, InterruptedFlushRetriesUntilRegionsReturn) {
  // Crash first, then commit transactions whose rows live on the dead
  // server's regions: the flush blocks, retries without limit (§3.2), and
  // completes once recovery brings the regions back online.
  bed_.crash_server(0);
  auto tss = commit_rows(0, 20);  // commits succeed regardless (TM log)
  ASSERT_TRUE(bed_.wait_server_recoveries(1));
  EXPECT_TRUE(bed_.client().wait_flushed(seconds(30)))
      << "flushes must complete once the regions are back";
  bed_.wait_for_recovery();
  ASSERT_TRUE(bed_.wait_stable(tss.back()));
  verify_rows(0, 20);
}

TEST_F(ServerRecoveryTest, AtomicityAcrossRecoveryNoTornWritesets) {
  // A multi-region write-set is either fully visible or not at all at any
  // stable snapshot, even right after a failover.
  for (int i = 0; i < 10; ++i) {
    Transaction txn = bed_.client().begin("t");
    // Rows in different regions (spread across the keyspace).
    txn.put(Testbed::row_key(i), "c", "pair-" + std::to_string(i));
    txn.put(Testbed::row_key(2500 + i), "c", "pair-" + std::to_string(i));
    ASSERT_TRUE(txn.commit().is_ok());
  }
  ASSERT_TRUE(bed_.client().wait_flushed());
  bed_.crash_server(0);
  ASSERT_TRUE(bed_.wait_server_recoveries(1));
  bed_.wait_for_recovery();
  ASSERT_TRUE(bed_.client().wait_flushed());

  // Stable snapshots never show half a write-set.
  Transaction r = bed_.client().begin("t");
  for (int i = 0; i < 10; ++i) {
    auto a = r.get(Testbed::row_key(i), "c");
    auto b = r.get(Testbed::row_key(2500 + i), "c");
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    EXPECT_EQ(a.value().has_value(), b.value().has_value()) << "torn write-set " << i;
    if (a.value().has_value()) EXPECT_EQ(*a.value(), *b.value());
  }
  r.abort();
}

TEST_F(ServerRecoveryTest, CleanShutdownNeedsNoTransactionalReplay) {
  auto tss = commit_rows(0, 20);
  ASSERT_TRUE(bed_.client().wait_flushed());
  ASSERT_TRUE(bed_.cluster().server(0).shutdown().is_ok());
  bed_.wait_for_recovery();
  EXPECT_EQ(bed_.rm().stats().server_recoveries, 0);
  ASSERT_TRUE(bed_.wait_stable(tss.back()));
  verify_rows(0, 20);
}

TEST_F(ServerRecoveryTest, SplitWalEditsCombineWithTmLogReplay) {
  // Partially persist: sync the WALs midway, then keep committing. After a
  // crash, the synced prefix returns via HBase's split-WAL recovery and the
  // suffix via the TM log; together they must cover everything.
  auto first = commit_rows(0, 20);
  ASSERT_TRUE(bed_.client().wait_flushed());
  for (int s = 0; s < bed_.cluster().num_servers(); ++s) {
    ASSERT_TRUE(bed_.cluster().server(s).persist_wal().is_ok());
  }
  auto second = commit_rows(20, 40);
  ASSERT_TRUE(bed_.client().wait_flushed());

  bed_.crash_server(0);
  ASSERT_TRUE(bed_.wait_server_recoveries(1));
  bed_.wait_for_recovery();
  ASSERT_TRUE(bed_.wait_stable(second.back()));
  verify_rows(0, 40);
}

}  // namespace
}  // namespace tfr
