// §3.3 under stress — the recovery manager itself fails *while recoveries
// are in flight*. The durable markers in the coordination service must make
// the restart seamless: regions stay gated until their replay really
// happened, client recoveries resume from their recorded floor, and a client
// that dies while no RM is listening is still detected via the registry.
#include <gtest/gtest.h>

#include "src/testbed/testbed.h"

namespace tfr {
namespace {

class RmRestartRecoveryTest : public ::testing::Test {
 protected:
  RmRestartRecoveryTest() : bed_(config()) {}

  static TestbedConfig config() {
    TestbedConfig cfg = fast_test_config(3, 2);
    // Keep the WAL syncer effectively off so a crash reliably loses the
    // in-memory tail — only the transactional replay can restore it.
    cfg.cluster.server.wal_sync_interval = seconds(100);
    return cfg;
  }

  void SetUp() override {
    ASSERT_TRUE(bed_.start().is_ok());
    ASSERT_TRUE(bed_.create_table("t", 3000, 6).is_ok());
  }

  std::vector<Timestamp> commit_rows(int client, int from, int to) {
    std::vector<Timestamp> out;
    for (int i = from; i < to; ++i) {
      Transaction txn = bed_.client(client).begin("t");
      txn.put(Testbed::row_key(i), "c", "value-" + std::to_string(i));
      auto ts = txn.commit();
      EXPECT_TRUE(ts.is_ok());
      out.push_back(ts.value_or(kNoTimestamp));
    }
    return out;
  }

  void verify_rows(int client, int from, int to) {
    Transaction r = bed_.client(client).begin("t");
    for (int i = from; i < to; ++i) {
      auto v = r.get(Testbed::row_key(i), "c");
      ASSERT_TRUE(v.is_ok());
      ASSERT_TRUE(v.value().has_value()) << "lost committed row " << i;
      EXPECT_EQ(*v.value(), "value-" + std::to_string(i));
    }
    r.abort();
  }

  Testbed bed_;
};

TEST_F(RmRestartRecoveryTest, RestartDuringServerRecoveryLosesNothing) {
  auto tss = commit_rows(0, 0, 60);
  ASSERT_TRUE(bed_.client(0).wait_flushed());

  // Slow down the WAL-split reads so the restart lands while the server
  // recovery is genuinely in flight (regions still gated).
  FaultRule slow_split;
  slow_split.op = FaultOp::kDfsRead;
  slow_split.target = "/wal/";
  slow_split.delay_probability = 1.0;
  slow_split.delay = millis(5);
  bed_.fault().add_rule(slow_split);

  bed_.crash_server(0);
  ASSERT_TRUE(bed_.wait_server_recoveries(1));
  // The RM dies and restarts between failure detection and replay
  // completion. The fresh instance reloads the pending-region markers, so
  // the still-gated regions replay against it.
  bed_.restart_recovery_manager();
  bed_.fault().clear_rules();

  bed_.wait_for_recovery();
  ASSERT_TRUE(bed_.client(0).wait_flushed());
  ASSERT_TRUE(bed_.wait_stable(tss.back()));
  verify_rows(0, 0, 60);
  // Every durable marker was consumed: nothing left pending.
  EXPECT_TRUE(bed_.coord().list(kRecoveringRegionPrefix).empty());
  EXPECT_TRUE(bed_.coord().list(kRecoveringClientPrefix).empty());
}

TEST_F(RmRestartRecoveryTest, ServerCrashDuringHookDetachWindowLosesNothing) {
  auto tss = commit_rows(0, 0, 60);
  ASSERT_TRUE(bed_.client(0).wait_flushed());

  // Reproduce the restart window: the old RM is stopped and detached from
  // the master, the fresh instance has not installed its hooks yet. A server
  // crash landing here must not be handled hook-less — the master holds the
  // recovery until the fresh RM's start() reinstalls the hooks, so the
  // pending-region markers are still written before any region reopens.
  bed_.rm().stop();
  bed_.master().set_hooks(nullptr);
  bed_.crash_server(0);
  // Let the expiry be detected and the master's recovery worker reach the
  // detached-hooks window before the fresh RM arrives.
  sleep_micros(millis(250));

  bed_.restart_recovery_manager();
  ASSERT_TRUE(bed_.wait_server_recoveries(1));
  bed_.wait_for_recovery();
  ASSERT_TRUE(bed_.client(0).wait_flushed());
  ASSERT_TRUE(bed_.wait_stable(tss.back()));
  verify_rows(0, 0, 60);
  EXPECT_TRUE(bed_.coord().list(kRecoveringRegionPrefix).empty());
}

TEST_F(RmRestartRecoveryTest, ClientDeathWhileRmDownIsDetectedOnRestart) {
  commit_rows(0, 0, 20);
  // Make sure the RM has published client-1's registry entry.
  bed_.rm().refresh_now();
  ASSERT_TRUE(bed_.coord().get(std::string(kClientRegistryPrefix) + "client-1").has_value());

  bed_.rm().stop();
  // Processing continues while the RM is down — and then the client dies
  // with nobody listening for its session expiry.
  auto tss = commit_rows(0, 20, 40);
  bed_.crash_client(0);
  sleep_micros(millis(250));  // session TTL is 100ms; let it lapse unheard

  bed_.restart_recovery_manager();
  // recover_state() sees a registered client with no live session and
  // starts its recovery from the registry floor.
  ASSERT_TRUE(bed_.wait_client_recoveries(1));
  bed_.wait_for_recovery();
  ASSERT_TRUE(bed_.wait_stable(tss.back()));
  verify_rows(1, 0, 40);
  // The dead client's registry entry and recovery marker are both gone.
  EXPECT_FALSE(bed_.coord().get(std::string(kClientRegistryPrefix) + "client-1").has_value());
  EXPECT_TRUE(bed_.coord().list(kRecoveringClientPrefix).empty());
}

TEST_F(RmRestartRecoveryTest, InterruptedClientRecoveryResumesFromMarker) {
  auto tss = commit_rows(0, 0, 40);
  // Simulate an RM that died mid-client-recovery: the durable marker is in
  // the coordination service but no replay is running.
  bed_.rm().stop();
  bed_.crash_client(0);
  bed_.coord().put(std::string(kRecoveringClientPrefix) + "client-1", kNoTimestamp);

  bed_.restart_recovery_manager();
  ASSERT_TRUE(bed_.wait_client_recoveries(1));
  bed_.wait_for_recovery();
  ASSERT_TRUE(bed_.wait_stable(tss.back()));
  verify_rows(1, 0, 40);
  EXPECT_TRUE(bed_.coord().list(kRecoveringClientPrefix).empty());
}

}  // namespace
}  // namespace tfr
