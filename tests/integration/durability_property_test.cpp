// Randomized end-to-end durability property: run a concurrent transactional
// workload, inject a random crash (client, server, or both), let recovery
// run, and verify that the store exactly matches a reference model built
// from the set of *successfully committed* transactions — nothing lost,
// nothing torn, nothing resurrected.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <thread>

#include "src/common/random.h"
#include "src/testbed/testbed.h"

namespace tfr {
namespace {

struct Committed {
  Timestamp ts;
  std::vector<Mutation> mutations;
};

class DurabilityPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DurabilityPropertyTest, CommittedTransactionsAlwaysSurviveCrashes) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  TestbedConfig cfg = fast_test_config(3, 2);
  cfg.client.flusher_threads = 2;
  Testbed bed(cfg);
  ASSERT_TRUE(bed.start().is_ok());
  constexpr std::uint64_t kRows = 400;
  ASSERT_TRUE(bed.create_table("t", kRows, 6).is_ok());

  // Reference model: row -> (commit_ts, value) of the newest committed
  // writer. Only updated when commit() succeeds.
  std::mutex model_mutex;
  std::map<std::string, std::pair<Timestamp, std::string>> model;
  Timestamp max_committed = 0;

  constexpr int kWriterThreads = 4;
  constexpr int kTxnsPerThread = 40;
  std::atomic<bool> victim_crashed{false};

  auto writer = [&](int thread_idx, std::uint64_t thread_seed) {
    Rng trng(thread_seed);
    // Thread 0 uses client 0 (the crash victim); others use client 1.
    TxnClient& client = bed.client(thread_idx == 0 ? 0 : 1);
    for (int i = 0; i < kTxnsPerThread; ++i) {
      if (client.crashed()) break;
      Transaction txn = client.begin("t");
      std::vector<Mutation> muts;
      const int ops = 1 + static_cast<int>(trng.next_below(4));
      for (int op = 0; op < ops; ++op) {
        const std::string row = Testbed::row_key(trng.next_below(kRows));
        const std::string value =
            "s" + std::to_string(thread_idx) + "-" + std::to_string(i) + "-" + std::to_string(op);
        txn.put(row, "c", value);
        muts.push_back(Mutation{row, "c", value, false});
      }
      auto ts = txn.commit();
      if (!ts.is_ok()) continue;  // abort (conflict) or crashed client: not durable
      std::lock_guard lock(model_mutex);
      // Later mutations in the same txn win on duplicate rows.
      for (const auto& m : muts) {
        auto it = model.find(m.row);
        // >= so that a later duplicate-row put within the SAME transaction
        // wins, matching the client's write-buffer (last put wins).
        if (it == model.end() || ts.value() >= it->second.first) {
          model[m.row] = {ts.value(), m.value};
        }
      }
      max_committed = std::max(max_committed, ts.value());
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriterThreads; ++t) {
    threads.emplace_back(writer, t, seed * 97 + static_cast<std::uint64_t>(t));
  }

  // Crash injection mid-run, seed-dependent.
  sleep_millis(10 + static_cast<std::int64_t>(rng.next_below(30)));
  const int mode = static_cast<int>(rng.next_below(3));
  if (mode == 0 || mode == 2) {
    bed.crash_server(static_cast<int>(rng.next_below(3)));
  }
  if (mode == 1 || mode == 2) {
    bed.crash_client(0);
    victim_crashed = true;
  }

  for (auto& t : threads) t.join();
  if (mode == 0 || mode == 2) ASSERT_TRUE(bed.wait_server_recoveries(1));
  if (mode == 1 || mode == 2) ASSERT_TRUE(bed.wait_client_recoveries(1));
  bed.wait_for_recovery();
  if (!bed.client(1).crashed()) ASSERT_TRUE(bed.client(1).wait_flushed(seconds(60)));
  // If client 0 survived, drain it too.
  if (!bed.client(0).crashed()) ASSERT_TRUE(bed.client(0).wait_flushed(seconds(60)));
  ASSERT_TRUE(bed.wait_stable(max_committed, seconds(60)));

  // Verify the store against the reference model from a healthy client.
  TxnClient& reader = bed.client(1);
  Transaction r = reader.begin("t");
  std::size_t checked = 0;
  for (const auto& [row, expected] : model) {
    auto v = r.get(row, "c");
    ASSERT_TRUE(v.is_ok()) << row;
    ASSERT_TRUE(v.value().has_value()) << "committed row lost: " << row << " (seed " << seed
                                       << ", crash mode " << mode << ")";
    EXPECT_EQ(*v.value(), expected.second) << row << " (seed " << seed << ")";
    ++checked;
  }
  r.abort();
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DurabilityPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace tfr
