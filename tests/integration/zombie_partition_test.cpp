// Zombie-server soak — the epoch-fencing tentpole test. A partition rule
// cuts one region server off from the coordination service while leaving
// its client-facing RPC path intact: the classic gray failure where a node
// that everyone else has declared dead keeps cheerfully acking writes. The
// master expires its session, bumps the ownership epoch of every region it
// held, fences its WAL prefix, and reassigns; the zombie keeps serving
// until either a stale-epoch append bounces (fencing token) or its own
// conservative lease estimate lapses and it self-fences. The run asserts
// that this takeover is harmless:
//   * durability   — every committed transaction is readable (model check)
//   * atomicity    — cross-region write-sets are never torn
//   * monotonicity — published TF and TP never regress (monitor thread)
//   * ordering     — TP <= TF at every observation
//   * fencing      — the victim self-fenced, and no write acked by the old
//                    incarnation after the epoch bump is visible anywhere
//                    (a violation would surface as a model mismatch)
//
// Seed count: 1 by default (ctest smoke); a soak sets TFR_ZOMBIE_SEEDS=N.
// Reproduce one schedule with:  TFR_CHAOS_SEED=<seed> ./integration_tests \
//   --gtest_filter='Seeds/ZombiePartitionTest.*'
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/fault.h"
#include "src/common/metrics.h"
#include "src/common/random.h"
#include "src/testbed/testbed.h"

namespace tfr {
namespace {

constexpr std::uint64_t kRows = 400;       // 4 regions, splits every 100 rows
constexpr std::uint64_t kSingleRows = 200; // single-row txns draw from [0, 200)
constexpr std::uint64_t kPairRows = 100;   // pair txns draw p from [200, 300)
constexpr int kWriterThreads = 2;
// Writers run until the takeover completes, not for a fixed txn count — the
// interesting window (epoch bumped, zombie not yet self-fenced) is a few
// tens of milliseconds and must see continuous write pressure. The cap only
// bounds the test if the cluster wedges.
constexpr int kMaxTxnsPerThread = 4000;

std::uint64_t effective_seed(std::uint64_t param) {
  if (const char* env = std::getenv("TFR_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return param;
}

std::uint64_t zombie_seed_count() {
  if (const char* env = std::getenv("TFR_ZOMBIE_SEEDS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::uint64_t>(n);
  }
  return 1;
}

// Whether any write actually lands on the zombie inside the post-bump
// window is a wall-clock race the seed does not control, so kv.epoch_rejects
// is asserted across the whole soak rather than per seed: a 10+ seed run
// that never trips the fence means the fence is not actually in the write
// path (or the window silently vanished), which is exactly the regression
// this suite exists to catch.
class ZombieSoakEnvironment : public ::testing::Environment {
 public:
  void SetUp() override { rejects_at_start_ = global_counter("kv.epoch_rejects").get(); }
  void TearDown() override {
    if (zombie_seed_count() < 10) return;
    EXPECT_GT(global_counter("kv.epoch_rejects").get(), rejects_at_start_)
        << "no stale-epoch write was ever rejected across "
        << zombie_seed_count() << " zombie seeds";
  }

 private:
  std::int64_t rejects_at_start_ = 0;
};
const auto* const kZombieEnv =
    ::testing::AddGlobalTestEnvironment(new ZombieSoakEnvironment);

class ZombiePartitionTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ZombiePartitionTest, FencedTakeoverLeavesNoStaleWritesVisible) {
  const std::uint64_t seed = effective_seed(GetParam());
  SCOPED_TRACE("zombie seed " + std::to_string(seed) +
               " — replay with TFR_CHAOS_SEED=" + std::to_string(seed));
  std::printf("[ zombie   ] seed %llu%s\n", static_cast<unsigned long long>(seed),
              std::getenv("TFR_CHAOS_SEED") ? " (from TFR_CHAOS_SEED)" : "");
  Rng rng(seed);

  TestbedConfig cfg = fast_test_config(3, kWriterThreads);
  cfg.client.flusher_threads = 2;
  Testbed bed(cfg);
  ASSERT_TRUE(bed.start().is_ok());
  ASSERT_TRUE(bed.create_table("t", kRows, 4).is_ok());

  const std::int64_t fences_before = global_counter("kv.self_fences").get();
  const std::int64_t gauge_before = global_counter("fault.partitions_active").get();

  // --- reference model of successfully committed transactions ---------------
  std::mutex model_mutex;
  std::map<std::string, std::pair<Timestamp, std::string>> model;  // row -> (ts, value)
  std::vector<std::pair<std::string, std::string>> committed_pairs;
  Timestamp max_committed = 0;

  std::atomic<bool> stop_writers{false};
  auto writer = [&](int t, std::uint64_t thread_seed) {
    Rng trng(thread_seed);
    TxnClient& client = bed.client(t);
    for (int i = 0; i < kMaxTxnsPerThread; ++i) {
      if (stop_writers.load(std::memory_order_acquire) || client.crashed()) break;
      Transaction txn = client.begin("t");
      std::vector<Mutation> muts;
      const bool pair_txn = i % 7 == 0;
      if (pair_txn) {
        // Cross-region atomicity probe: p and p+100 land in different
        // regions. Reuse of a p is fine — every writer of p writes p+100
        // with the identical value, so the pair stays equal under
        // last-writer-wins.
        const std::uint64_t p = kSingleRows + trng.next_below(kPairRows);
        const std::string value = "pair-" + std::to_string(t) + "-" + std::to_string(i);
        for (std::uint64_t row : {p, p + 100}) {
          txn.put(Testbed::row_key(row), "c", value);
          muts.push_back(Mutation{Testbed::row_key(row), "c", value, false});
        }
      } else {
        const std::string row = Testbed::row_key(trng.next_below(kSingleRows));
        const std::string value = "s" + std::to_string(t) + "-" + std::to_string(i);
        txn.put(row, "c", value);
        muts.push_back(Mutation{row, "c", value, false});
      }
      auto ts = txn.commit();
      if (!ts.is_ok()) continue;  // not committed -> not durable, not modeled
      std::lock_guard lock(model_mutex);
      for (const auto& m : muts) {
        auto it = model.find(m.row);
        if (it == model.end() || ts.value() >= it->second.first) {
          model[m.row] = {ts.value(), m.value};
        }
      }
      if (pair_txn) committed_pairs.emplace_back(muts[0].row, muts[1].row);
      max_committed = std::max(max_committed, ts.value());
    }
  };

  // --- invariant monitor: TF/TP from the coordination service ---------------
  std::atomic<bool> monitor_stop{false};
  std::vector<std::string> violations;
  std::mutex violations_mutex;
  std::thread monitor([&] {
    Timestamp last_tf = kNoTimestamp;
    Timestamp last_tp = kNoTimestamp;
    while (!monitor_stop.load(std::memory_order_acquire)) {
      const auto tp = bed.coord().get(kTpPath);
      const auto tf = bed.coord().get(kTfPath);
      std::lock_guard lock(violations_mutex);
      if (tf && *tf < last_tf) {
        violations.push_back("TF regressed: " + std::to_string(last_tf) + " -> " +
                             std::to_string(*tf));
      }
      if (tp && *tp < last_tp) {
        violations.push_back("TP regressed: " + std::to_string(last_tp) + " -> " +
                             std::to_string(*tp));
      }
      if (tf && tp && *tp > *tf) {
        violations.push_back("TP " + std::to_string(*tp) + " > TF " + std::to_string(*tf));
      }
      if (tf) last_tf = *tf;
      if (tp) last_tp = *tp;
      sleep_micros(millis(1));
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriterThreads; ++t) {
    writers.emplace_back(writer, t, seed * 131 + static_cast<std::uint64_t>(t));
  }

  // --- make a zombie, seed-derived timing -----------------------------------
  sleep_micros(millis(10 + static_cast<std::int64_t>(rng.next_below(30))));
  const auto live = bed.master().live_servers();
  ASSERT_EQ(live.size(), 3u);
  const std::string victim = live[rng.next_below(live.size())];
  RegionServer* zombie = bed.cluster().server_by_id(victim);
  ASSERT_NE(zombie, nullptr);
  // Partitioned from coord only: clients still reach it, so it keeps acking
  // writes while the rest of the cluster moves on without it.
  const int partition_id =
      bed.fault().add_partition(PartitionRule{victim, "coord", /*symmetric=*/true});
  // And paused: its heartbeat thread stalls (the classic GC pause), so the
  // conservative self-fence — which normally precedes the takeover — fires
  // late, and applies stall inside it, so a write that routed to the victim
  // while it still owned the region reaches the WAL *after* the master has
  // bumped the epoch. That in-flight write against a not-yet-self-fenced
  // zombie is exactly what the fencing token must bounce (clients re-locate
  // on every retry, so without the stalls the race window is microseconds).
  bed.fault().reseed(seed);
  {
    FaultRule gc_pause;
    gc_pause.op = FaultOp::kCoordHeartbeat;
    gc_pause.target = victim;
    gc_pause.delay_probability = 1.0;
    gc_pause.delay = millis(40 + static_cast<std::int64_t>(rng.next_below(40)));
    bed.fault().add_rule(gc_pause);

    FaultRule slow;
    slow.op = FaultOp::kRpcApply;
    slow.target = victim;
    slow.delay_probability = 1.0;
    slow.delay = millis(5 + static_cast<std::int64_t>(rng.next_below(20)));
    bed.fault().add_rule(slow);
  }

  // The master must detect the "failure" via session expiry and run a full
  // fenced recovery (epoch bump, WAL fence + split, reassignment, replay).
  ASSERT_TRUE(bed.wait_server_recoveries(1));
  // The zombie must take itself out of service without any help from the
  // coordination service: its conservative lease estimate lapses.
  const Micros fence_deadline = now_micros() + seconds(10);
  while (zombie->alive() && now_micros() < fence_deadline) sleep_millis(2);
  EXPECT_FALSE(zombie->alive()) << victim << " never self-fenced";
  EXPECT_GE(global_counter("kv.self_fences").get(), fences_before + 1);

  // Keep the write pressure on a little longer so post-takeover traffic runs
  // against the new assignment, then drain.
  sleep_micros(millis(10 + static_cast<std::int64_t>(rng.next_below(20))));
  stop_writers.store(true, std::memory_order_release);
  for (auto& w : writers) w.join();
  bed.wait_for_recovery();
  for (int c = 0; c < kWriterThreads; ++c) {
    ASSERT_TRUE(bed.client(c).wait_flushed(seconds(60))) << "client " << c;
  }
  bed.fault().clear_rules();
  bed.fault().heal_partition(partition_id);
  EXPECT_EQ(global_counter("fault.partitions_active").get(), gauge_before);
  ASSERT_TRUE(bed.wait_stable(max_committed, seconds(60)));

  monitor_stop.store(true, std::memory_order_release);
  monitor.join();
  {
    std::lock_guard lock(violations_mutex);
    EXPECT_TRUE(violations.empty()) << violations.size() << " threshold violations, first: "
                                    << violations.front();
  }
  {
    const auto tp = bed.coord().get(kTpPath);
    const auto tf = bed.coord().get(kTfPath);
    ASSERT_TRUE(tf.has_value());
    ASSERT_TRUE(tp.has_value());
    EXPECT_LE(*tp, *tf);
  }

  // --- durability: the store matches the reference model --------------------
  // A zombie write surviving past the fence would show up here as a row
  // whose visible value disagrees with the committed-transaction model.
  Transaction r = bed.client(0).begin("t");
  std::size_t checked = 0;
  for (const auto& [row, expected] : model) {
    auto v = r.get(row, "c");
    ASSERT_TRUE(v.is_ok()) << row;
    ASSERT_TRUE(v.value().has_value()) << "committed row lost: " << row;
    EXPECT_EQ(*v.value(), expected.second) << row;
    ++checked;
  }
  // --- atomicity: no torn cross-region write-sets ---------------------------
  for (const auto& [a, b] : committed_pairs) {
    auto va = r.get(a, "c");
    auto vb = r.get(b, "c");
    ASSERT_TRUE(va.is_ok() && vb.is_ok());
    ASSERT_TRUE(va.value().has_value() && vb.value().has_value()) << "torn pair " << a;
    EXPECT_EQ(*va.value(), *vb.value()) << "torn pair " << a;
  }
  r.abort();
  EXPECT_GT(checked, 0u);

  // The partition genuinely isolated the victim's coord path (every lost
  // renewal counts as a drop), and recovery never gave up a WAL split.
  EXPECT_GT(bed.fault().stats().partition_drops, 0);
  EXPECT_EQ(global_counter("master.wal_split_failures").get(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZombiePartitionTest,
                         ::testing::Range<std::uint64_t>(1, 1 + zombie_seed_count()));

}  // namespace
}  // namespace tfr
