// Network-partition semantics (§3.1): "Since we treat a network partition as
// a crash failure, if any further messages are received from a dead client,
// they are ignored until the recovery procedure is completed. If a network
// partition is the cause, the client heartbeat will not be able to contact
// the recovery manager, which will result in it terminating itself."
#include <gtest/gtest.h>

#include "src/testbed/testbed.h"

namespace tfr {
namespace {

class PartitionTest : public ::testing::Test {
 protected:
  PartitionTest() : bed_(fast_test_config(2, 2)) {}

  void SetUp() override {
    ASSERT_TRUE(bed_.start().is_ok());
    ASSERT_TRUE(bed_.create_table("t", 1000, 4).is_ok());
  }

  Testbed bed_;
};

TEST_F(PartitionTest, DeclaredDeadClientHeartbeatIsRejected) {
  // Simulate the partition healing after expiry: kill the session directly.
  (void)bed_.coord().close_session("clients", bed_.client(0).id());
  EXPECT_TRUE(bed_.coord()
                  .heartbeat("clients", bed_.client(0).id(), 0)
                  .is_unavailable());
}

TEST_F(PartitionTest, PartitionedClientTerminatesItself) {
  TxnClient& victim = bed_.client(0);
  Transaction txn = victim.begin("t");
  txn.put("k", "c", "v");
  ASSERT_TRUE(txn.commit().is_ok());
  ASSERT_TRUE(victim.wait_flushed());

  // The "partition": the coordination service expires the session while the
  // client still believes it is alive.
  (void)bed_.coord().close_session("clients", victim.id());

  // Its next heartbeat is rejected, and the client terminates itself.
  victim.heartbeat_now();
  const Micros deadline = now_micros() + seconds(10);
  while (!victim.crashed() && now_micros() < deadline) sleep_millis(1);
  EXPECT_TRUE(victim.crashed());

  // After termination it refuses new work, like a crashed process.
  Transaction late = victim.begin("t");
  late.put("late", "c", "x");
  EXPECT_EQ(late.commit().status().code(), Code::kClosed);
}

TEST_F(PartitionTest, PartitionedServerTerminatesItself) {
  RegionServer& victim = bed_.cluster().server(0);
  // Expire the server's session (partition longer than the TTL): the master
  // begins reassigning its regions...
  (void)bed_.coord().close_session("servers", victim.id());
  // ...and the server's own next heartbeat tells it that it is dead.
  victim.heartbeat_now();
  const Micros deadline = now_micros() + seconds(10);
  while (victim.alive() && now_micros() < deadline) sleep_millis(1);
  EXPECT_FALSE(victim.alive());
  bed_.wait_for_recovery();
  // The cluster remains usable through the survivor.
  Transaction txn = bed_.client(1).begin("t");
  txn.put("still-works", "c", "v");
  EXPECT_TRUE(txn.commit().is_ok());
  EXPECT_TRUE(bed_.client(1).wait_flushed());
}

TEST_F(PartitionTest, CommittedWorkOfPartitionedClientSurvives) {
  TxnClient& victim = bed_.client(0);
  // Commit but do not wait for the flush; then "partition" the client.
  std::vector<Timestamp> tss;
  for (int i = 0; i < 20; ++i) {
    Transaction txn = victim.begin("t");
    txn.put(Testbed::row_key(static_cast<std::uint64_t>(i)), "c", "p" + std::to_string(i));
    auto ts = txn.commit();
    ASSERT_TRUE(ts.is_ok());
    tss.push_back(ts.value());
  }
  // Expiry-style failure (not clean close) so the RM replays.
  // Stop heartbeats by crashing the client's timers the hard way: just let
  // the session TTL lapse by suspending heartbeats via crash simulation of
  // the network: close_session models the RM-side declaration.
  bed_.crash_client(0);
  ASSERT_TRUE(bed_.wait_client_recoveries(1));
  bed_.wait_for_recovery();
  ASSERT_TRUE(bed_.wait_stable(tss.back()));

  Transaction r = bed_.client(1).begin("t");
  for (int i = 0; i < 20; ++i) {
    auto v = r.get(Testbed::row_key(static_cast<std::uint64_t>(i)), "c");
    ASSERT_TRUE(v.is_ok());
    ASSERT_TRUE(v.value().has_value()) << i;
    EXPECT_EQ(*v.value(), "p" + std::to_string(i));
  }
  r.abort();
}

}  // namespace
}  // namespace tfr
