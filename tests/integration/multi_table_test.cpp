// Multiple tables share the cluster, the WALs, the TM log, and the recovery
// machinery; a failure recovers every table's regions.
#include <gtest/gtest.h>

#include "src/testbed/testbed.h"

namespace tfr {
namespace {

TEST(MultiTableTest, IndependentTablesDoNotInterfere) {
  Testbed bed(fast_test_config(2, 1));
  ASSERT_TRUE(bed.start().is_ok());
  ASSERT_TRUE(bed.create_table("users", 100, 2).is_ok());
  ASSERT_TRUE(bed.create_table("orders", 100, 2).is_ok());

  Transaction tu = bed.client().begin("users");
  tu.put("k", "c", "user-value");
  ASSERT_TRUE(tu.commit().is_ok());
  Transaction to = bed.client().begin("orders");
  to.put("k", "c", "order-value");
  ASSERT_TRUE(to.commit().is_ok());
  ASSERT_TRUE(bed.client().wait_flushed());
  ASSERT_TRUE(bed.wait_stable(bed.tm().current_ts()));

  Transaction ru = bed.client().begin("users");
  EXPECT_EQ(ru.get("k", "c").value().value(), "user-value");
  ru.abort();
  Transaction ro = bed.client().begin("orders");
  EXPECT_EQ(ro.get("k", "c").value().value(), "order-value");
  ro.abort();
}

TEST(MultiTableTest, SameRowKeyInDifferentTablesNoConflict) {
  Testbed bed(fast_test_config(2, 1));
  ASSERT_TRUE(bed.start().is_ok());
  ASSERT_TRUE(bed.create_table("a", 100, 1).is_ok());
  ASSERT_TRUE(bed.create_table("b", 100, 1).is_ok());

  // Same snapshot, same row key, different tables: both must commit.
  // (Conflict keys are table-qualified in spirit; this guards the routing
  // and the conflict check against cross-table collisions.)
  Transaction ta = bed.client().begin("a");
  Transaction tb = bed.client().begin("b");
  ta.put("shared-key", "c", "in-a");
  tb.put("shared-key", "c", "in-b");
  EXPECT_TRUE(ta.commit().is_ok());
  EXPECT_TRUE(tb.commit().is_ok());
}

TEST(MultiTableTest, ServerCrashRecoversAllTables) {
  TestbedConfig cfg = fast_test_config(2, 1);
  cfg.cluster.server.wal_sync_interval = seconds(100);
  Testbed bed(cfg);
  ASSERT_TRUE(bed.start().is_ok());
  ASSERT_TRUE(bed.create_table("users", 100, 2).is_ok());
  ASSERT_TRUE(bed.create_table("orders", 100, 2).is_ok());

  std::vector<Timestamp> tss;
  for (int i = 0; i < 10; ++i) {
    Transaction tu = bed.client().begin("users");
    tu.put(Testbed::row_key(static_cast<std::uint64_t>(i)), "c", "u" + std::to_string(i));
    auto ts1 = tu.commit();
    ASSERT_TRUE(ts1.is_ok());
    Transaction to = bed.client().begin("orders");
    to.put(Testbed::row_key(static_cast<std::uint64_t>(i)), "c", "o" + std::to_string(i));
    auto ts2 = to.commit();
    ASSERT_TRUE(ts2.is_ok());
    tss.push_back(ts2.value());
  }
  ASSERT_TRUE(bed.client().wait_flushed());

  bed.crash_server(0);
  ASSERT_TRUE(bed.wait_server_recoveries(1));
  bed.wait_for_recovery();
  ASSERT_TRUE(bed.client().wait_flushed());
  ASSERT_TRUE(bed.wait_stable(tss.back()));

  Transaction r = bed.client().begin("users");
  Transaction r2 = bed.client().begin("orders");
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(r.get(Testbed::row_key(static_cast<std::uint64_t>(i)), "c").value().value(),
              "u" + std::to_string(i));
    EXPECT_EQ(r2.get(Testbed::row_key(static_cast<std::uint64_t>(i)), "c").value().value(),
              "o" + std::to_string(i));
  }
  r.abort();
  r2.abort();
}

}  // namespace
}  // namespace tfr
