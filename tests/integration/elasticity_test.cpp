// Elasticity under live transactional load: region splits, moves, and
// rebalancing must be invisible to transactions (§2.1's elastic-scalability
// promise) — clients just retry through the brief unavailability windows.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/common/random.h"
#include "src/testbed/testbed.h"

namespace tfr {
namespace {

class ElasticityTest : public ::testing::Test {
 protected:
  ElasticityTest() : bed_(fast_test_config(2, 2)) {}

  void SetUp() override {
    ASSERT_TRUE(bed_.start().is_ok());
    ASSERT_TRUE(bed_.create_table("t", kRows, 2).is_ok());
    // Seed data so splits have something to cut.
    Transaction txn = bed_.client(0).begin("t");
    for (std::uint64_t i = 0; i < kRows; i += 2) {
      txn.put(Testbed::row_key(i), "c", "seed");
    }
    ASSERT_TRUE(txn.commit().is_ok());
    ASSERT_TRUE(bed_.client(0).wait_flushed());
    ASSERT_TRUE(bed_.wait_stable(bed_.tm().current_ts()));
  }

  static constexpr std::uint64_t kRows = 1000;
  Testbed bed_;
};

TEST_F(ElasticityTest, SplitUnderLoadLosesNothing) {
  std::atomic<bool> stop{false};
  std::atomic<int> committed{0};
  std::thread load([&] {
    Rng rng(3);
    while (!stop) {
      Transaction txn = bed_.client(1).begin("t");
      txn.put(Testbed::row_key(rng.next_below(kRows)), "c", "live");
      if (txn.commit().is_ok()) ++committed;
    }
  });
  sleep_millis(30);

  // Split every region of the table once, under load.
  for (const auto& loc : bed_.master().table_regions("t")) {
    ASSERT_TRUE(bed_.master().split_region(loc.region_name).is_ok());
  }
  EXPECT_EQ(bed_.master().table_regions("t").size(), 4u);

  sleep_millis(30);
  stop = true;
  load.join();
  ASSERT_TRUE(bed_.client(1).wait_flushed(seconds(60)));
  ASSERT_TRUE(bed_.wait_stable(bed_.tm().current_ts()));
  EXPECT_GT(committed.load(), 0);

  // Every seeded row is still present and routed correctly.
  Transaction r = bed_.client(0).begin("t");
  for (std::uint64_t i = 0; i < kRows; i += 20) {
    auto v = r.get(Testbed::row_key(i), "c");
    ASSERT_TRUE(v.is_ok());
    EXPECT_TRUE(v.value().has_value()) << i;
  }
  r.abort();
}

TEST_F(ElasticityTest, ScaleOutRebalanceUnderLoad) {
  std::atomic<bool> stop{false};
  std::atomic<int> committed{0};
  std::thread load([&] {
    Rng rng(4);
    while (!stop) {
      Transaction txn = bed_.client(1).begin("t");
      txn.put(Testbed::row_key(rng.next_below(kRows)), "c", "live");
      if (txn.commit().is_ok()) ++committed;
    }
  });
  sleep_millis(20);

  ASSERT_TRUE(bed_.cluster().add_server().is_ok());
  // Give every region a few splits so there is something to spread.
  for (const auto& loc : bed_.master().table_regions("t")) {
    (void)bed_.master().split_region(loc.region_name);
  }
  auto moved = bed_.master().rebalance();
  ASSERT_TRUE(moved.is_ok());

  sleep_millis(20);
  stop = true;
  load.join();
  ASSERT_TRUE(bed_.client(1).wait_flushed(seconds(60)));

  // All three servers carry load.
  std::set<std::string> hosts;
  for (const auto& loc : bed_.master().table_regions("t")) hosts.insert(loc.server_id);
  EXPECT_EQ(hosts.size(), 3u);

  ASSERT_TRUE(bed_.wait_stable(bed_.tm().current_ts()));
  Transaction r = bed_.client(0).begin("t");
  auto cells = r.scan("", "", 0);
  ASSERT_TRUE(cells.is_ok());
  EXPECT_GE(cells.value().size(), kRows / 2);
  r.abort();
}

TEST_F(ElasticityTest, SplitRegionsRecoverLikeAnyOther) {
  // Split, keep committing (some un-persisted), crash the host: the split
  // children must go through the same gate + TM-log replay as table-created
  // regions.
  for (const auto& loc : bed_.master().table_regions("t")) {
    ASSERT_TRUE(bed_.master().split_region(loc.region_name).is_ok());
  }
  std::vector<Timestamp> tss;
  for (int i = 0; i < 30; ++i) {
    Transaction txn = bed_.client(0).begin("t");
    txn.put(Testbed::row_key(static_cast<std::uint64_t>(i)), "c", "post-split-" +
            std::to_string(i));
    auto ts = txn.commit();
    ASSERT_TRUE(ts.is_ok());
    tss.push_back(ts.value());
  }
  ASSERT_TRUE(bed_.client(0).wait_flushed());

  bed_.crash_server(0);
  ASSERT_TRUE(bed_.wait_server_recoveries(1));
  bed_.wait_for_recovery();
  ASSERT_TRUE(bed_.client(0).wait_flushed());
  ASSERT_TRUE(bed_.wait_stable(tss.back()));

  Transaction r = bed_.client(1).begin("t");
  for (int i = 0; i < 30; ++i) {
    auto v = r.get(Testbed::row_key(static_cast<std::uint64_t>(i)), "c");
    ASSERT_TRUE(v.is_ok());
    ASSERT_TRUE(v.value().has_value()) << i;
    EXPECT_EQ(*v.value(), "post-split-" + std::to_string(i));
  }
  r.abort();
}

}  // namespace
}  // namespace tfr
