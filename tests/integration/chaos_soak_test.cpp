// Chaos soak — the tentpole robustness test. Each seed derives a full
// deterministic schedule: a layer of gray failures (transient RPC errors,
// dropped acks, corrupted frames, slow WAL syncs, flaky WAL-split reads)
// underneath real crash faults (one region server, one client, and on half
// the seeds a recovery-manager restart), all against a concurrent
// transactional workload. After the dust settles, the run asserts the
// DESIGN.md §5 invariants:
//   * durability   — every committed transaction is readable (model check)
//   * atomicity    — cross-region write-sets are never torn
//   * monotonicity — published TF and TP never regress (monitor thread)
//   * ordering     — TP <= TF at every observation
//   * liveness     — flushes drain and TF reaches the newest commit
//
// Reproduce a failing seed with:   TFR_CHAOS_SEED=<seed> ./integration_tests \
//   --gtest_filter='Seeds/ChaosSoakTest.*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/random.h"
#include "src/testbed/testbed.h"

namespace tfr {
namespace {

constexpr std::uint64_t kRows = 600;       // 6 regions, splits every 100 rows
constexpr std::uint64_t kSingleRows = 200; // single-row txns draw from [0, 200)
constexpr int kWriterThreads = 3;
constexpr int kTxnsPerThread = 30;

std::uint64_t effective_seed(std::uint64_t param) {
  if (const char* env = std::getenv("TFR_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return param;
}

class ChaosSoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSoakTest, CommittedTransactionsSurviveGrayFailuresAndCrashes) {
  const std::uint64_t seed = effective_seed(GetParam());
  SCOPED_TRACE("chaos seed " + std::to_string(seed) +
               " — replay with TFR_CHAOS_SEED=" + std::to_string(seed));
  // Visible on pass too, so a TFR_CHAOS_SEED replay confirms which schedule
  // actually ran.
  std::printf("[ chaos    ] seed %llu%s\n", static_cast<unsigned long long>(seed),
              std::getenv("TFR_CHAOS_SEED") ? " (from TFR_CHAOS_SEED)" : "");
  Rng rng(seed);

  TestbedConfig cfg = fast_test_config(3, kWriterThreads);
  cfg.client.flusher_threads = 2;
  // Tiny memstores: writes spill to store files mid-schedule, so the
  // durability/atomicity reads below go through the bloom-pruned store-file
  // path and the sharded block cache while faults are still being injected.
  cfg.cluster.server.memstore_flush_bytes = 512;
  Testbed bed(cfg);
  ASSERT_TRUE(bed.start().is_ok());
  ASSERT_TRUE(bed.create_table("t", kRows, 6).is_ok());

  // --- the fault schedule, all derived from the seed ------------------------
  bed.fault().reseed(seed);
  {
    FaultRule rpc;  // lost requests, lost acks, corrupted frames
    rpc.op = FaultOp::kRpcApply;
    rpc.error_probability = 0.1;
    rpc.drop_response_probability = 0.05;
    rpc.corrupt_probability = 0.05;
    bed.fault().add_rule(rpc);

    FaultRule slow_sync;  // the slow-disk gray failure
    slow_sync.op = FaultOp::kDfsSync;
    slow_sync.target = "/wal/";
    slow_sync.delay_probability = 0.5;
    slow_sync.delay = millis(1);
    bed.fault().add_rule(slow_sync);

    FaultRule flaky_split;  // WAL-split reads during server recovery
    flaky_split.op = FaultOp::kDfsRead;
    flaky_split.target = "/wal/";
    flaky_split.error_probability = 0.05;
    bed.fault().add_rule(flaky_split);
  }

  // --- reference model of successfully committed transactions ---------------
  std::mutex model_mutex;
  std::map<std::string, std::pair<Timestamp, std::string>> model;  // row -> (ts, value)
  std::vector<std::pair<std::string, std::string>> committed_pairs;
  Timestamp max_committed = 0;

  auto writer = [&](int t, std::uint64_t thread_seed) {
    Rng trng(thread_seed);
    TxnClient& client = bed.client(t);
    for (int i = 0; i < kTxnsPerThread; ++i) {
      if (client.crashed()) break;
      Transaction txn = client.begin("t");
      std::vector<Mutation> muts;
      const bool pair_txn = i % 5 == 0;
      if (pair_txn) {
        // Cross-region atomicity probe: two rows 300 apart land in different
        // regions; the (t, i) key makes each pair row written exactly once.
        const std::uint64_t p =
            kSingleRows + static_cast<std::uint64_t>(t * kTxnsPerThread + i);
        const std::string value = "pair-" + std::to_string(t) + "-" + std::to_string(i);
        for (std::uint64_t row : {p, p + 300}) {
          txn.put(Testbed::row_key(row), "c", value);
          muts.push_back(Mutation{Testbed::row_key(row), "c", value, false});
        }
      } else {
        const std::string row = Testbed::row_key(trng.next_below(kSingleRows));
        const std::string value =
            "s" + std::to_string(t) + "-" + std::to_string(i);
        txn.put(row, "c", value);
        muts.push_back(Mutation{row, "c", value, false});
      }
      auto ts = txn.commit();
      if (!ts.is_ok()) continue;  // not committed -> not durable, not modeled
      std::lock_guard lock(model_mutex);
      for (const auto& m : muts) {
        auto it = model.find(m.row);
        if (it == model.end() || ts.value() >= it->second.first) {
          model[m.row] = {ts.value(), m.value};
        }
      }
      if (pair_txn) committed_pairs.emplace_back(muts[0].row, muts[1].row);
      max_committed = std::max(max_committed, ts.value());
    }
  };

  // --- invariant monitor: TF/TP from the coordination service ---------------
  // Reads TP before TF: TF only grows, so tf >= the TF that held when tp was
  // read, and tp <= tf must hold at every observation.
  std::atomic<bool> monitor_stop{false};
  std::vector<std::string> violations;
  std::mutex violations_mutex;
  std::thread monitor([&] {
    Timestamp last_tf = kNoTimestamp;
    Timestamp last_tp = kNoTimestamp;
    while (!monitor_stop.load(std::memory_order_acquire)) {
      const auto tp = bed.coord().get(kTpPath);
      const auto tf = bed.coord().get(kTfPath);
      std::lock_guard lock(violations_mutex);
      if (tf && *tf < last_tf) {
        violations.push_back("TF regressed: " + std::to_string(last_tf) + " -> " +
                             std::to_string(*tf));
      }
      if (tp && *tp < last_tp) {
        violations.push_back("TP regressed: " + std::to_string(last_tp) + " -> " +
                             std::to_string(*tp));
      }
      if (tf && tp && *tp > *tf) {
        violations.push_back("TP " + std::to_string(*tp) + " > TF " + std::to_string(*tf));
      }
      if (tf) last_tf = *tf;
      if (tp) last_tp = *tp;
      sleep_micros(millis(1));
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriterThreads; ++t) {
    writers.emplace_back(writer, t, seed * 97 + static_cast<std::uint64_t>(t));
  }

  // --- the crash schedule, also seed-derived --------------------------------
  sleep_micros(millis(15 + static_cast<std::int64_t>(rng.next_below(30))));
  const int server_victim = static_cast<int>(rng.next_below(3));
  const bool restart_rm = rng.next_bool(0.5);
  bed.crash_server(server_victim);
  ASSERT_TRUE(bed.wait_server_recoveries(1));
  if (restart_rm) {
    // The RM dies while the server recovery is in flight; the durable
    // markers make the fresh instance pick it up.
    bed.restart_recovery_manager();
  }
  sleep_micros(millis(5 + static_cast<std::int64_t>(rng.next_below(20))));
  bed.crash_client(0);

  for (auto& w : writers) w.join();
  ASSERT_TRUE(bed.wait_client_recoveries(1));
  bed.wait_for_recovery();

  // Drain the surviving clients' flushes BEFORE lifting the fault rules, so
  // every committed write-set's RPC applies ran under injection and the
  // meta-assertion below sees a schedule that genuinely exercised the paths.
  for (int c = 1; c < kWriterThreads; ++c) {
    ASSERT_TRUE(bed.client(c).wait_flushed(seconds(60))) << "client " << c;
  }
  bed.fault().clear_rules();
  ASSERT_TRUE(bed.wait_stable(max_committed, seconds(60)));

  monitor_stop.store(true, std::memory_order_release);
  monitor.join();
  {
    std::lock_guard lock(violations_mutex);
    EXPECT_TRUE(violations.empty()) << violations.size() << " threshold violations, first: "
                                    << violations.front();
  }
  // Post-recovery threshold sanity.
  {
    const auto tp = bed.coord().get(kTpPath);
    const auto tf = bed.coord().get(kTfPath);
    ASSERT_TRUE(tf.has_value());
    ASSERT_TRUE(tp.has_value());
    EXPECT_LE(*tp, *tf);
  }

  // --- durability: the store matches the reference model --------------------
  Transaction r = bed.client(1).begin("t");
  std::size_t checked = 0;
  for (const auto& [row, expected] : model) {
    auto v = r.get(row, "c");
    ASSERT_TRUE(v.is_ok()) << row;
    ASSERT_TRUE(v.value().has_value()) << "committed row lost: " << row;
    EXPECT_EQ(*v.value(), expected.second) << row;
    ++checked;
  }
  // --- atomicity: no torn cross-region write-sets ---------------------------
  for (const auto& [a, b] : committed_pairs) {
    auto va = r.get(a, "c");
    auto vb = r.get(b, "c");
    ASSERT_TRUE(va.is_ok() && vb.is_ok());
    ASSERT_TRUE(va.value().has_value() && vb.value().has_value()) << "torn pair " << a;
    EXPECT_EQ(*va.value(), *vb.value()) << "torn pair " << a;
  }
  r.abort();
  EXPECT_GT(checked, 0u);

  // Read-path health: the durability/atomicity sweep above read through the
  // store-file path (tiny memstores force mid-schedule flushes) and the
  // sharded block cache; print the cache's hit rate over the whole run.
  {
    std::int64_t hits = 0, misses = 0;
    for (const auto& [name, value] : global_counter_snapshot()) {
      if (name == "kv.cache.hits") hits = value;
      if (name == "kv.cache.misses") misses = value;
    }
    const std::int64_t lookups = hits + misses;
    std::printf("[ chaos    ] block cache: %lld hits / %lld lookups (%.1f%% hit rate)\n",
                static_cast<long long>(hits), static_cast<long long>(lookups),
                lookups > 0 ? 100.0 * static_cast<double>(hits) / static_cast<double>(lookups)
                            : 0.0);
  }

  // The schedule must actually have exercised the fault paths. Every
  // committed write-set flushed under the RPC rule, so at least one of the
  // three error kinds fired (P(none) < 0.8^60). Delay injection is NOT
  // asserted here: how many /wal/ syncs ran while the delay rule was active
  // depends on wall-clock timing, not the seed — it is covered
  // deterministically in fault_test.cpp and fault_injection_test.cpp.
  const FaultStats fs = bed.fault().stats();
  EXPECT_GT(fs.evaluations, 0);
  EXPECT_GT(fs.injected_errors + fs.dropped_responses + fs.corrupted_wires, 0);
  // A WAL-split give-up would have silently dropped durable edits.
  EXPECT_EQ(global_counter("master.wal_split_failures").get(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoakTest,
                         ::testing::Range<std::uint64_t>(1, 21));  // 20 seeds

}  // namespace
}  // namespace tfr
