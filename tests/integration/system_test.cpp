// Whole-system smoke tests through the YCSB driver: sustained multi-threaded
// transactional load, failures mid-workload, and the recovery-manager
// restart path — the closest thing to the paper's §4 runs, in miniature.
#include <gtest/gtest.h>

#include "src/testbed/testbed.h"
#include "src/ycsb/driver.h"

namespace tfr {
namespace {

TestbedConfig system_config() {
  TestbedConfig cfg = fast_test_config(2, 1);
  cfg.client.flusher_threads = 4;
  return cfg;
}

WorkloadConfig small_workload(std::uint64_t rows) {
  WorkloadConfig w;
  w.num_rows = rows;
  w.ops_per_txn = 4;
  w.value_size = 32;
  return w;
}

TEST(SystemTest, SustainedLoadCommitsAndFlushes) {
  Testbed bed(system_config());
  ASSERT_TRUE(bed.start().is_ok());
  constexpr std::uint64_t kRows = 500;
  ASSERT_TRUE(bed.create_table("usertable", kRows, 4).is_ok());
  ASSERT_TRUE(bed.load_rows("usertable", kRows, 32).is_ok());

  DriverConfig dc;
  dc.threads = 8;
  dc.duration = seconds(2);
  YcsbDriver driver(bed, small_workload(kRows), dc);
  auto report = driver.run();

  EXPECT_GT(report.committed, 100u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_GT(report.throughput_tps, 0.0);
  EXPECT_GT(report.mean_latency_ms, 0.0);
  EXPECT_FALSE(report.series.empty());
  ASSERT_TRUE(bed.client().wait_flushed(seconds(30)));
}

TEST(SystemTest, ServerCrashMidWorkloadLosesNothing) {
  Testbed bed(system_config());
  ASSERT_TRUE(bed.start().is_ok());
  constexpr std::uint64_t kRows = 500;
  ASSERT_TRUE(bed.create_table("usertable", kRows, 4).is_ok());
  ASSERT_TRUE(bed.load_rows("usertable", kRows, 32).is_ok());

  DriverConfig dc;
  dc.threads = 8;
  dc.duration = seconds(3);
  YcsbDriver driver(bed, small_workload(kRows), dc);
  driver.schedule(seconds(1), "crash rs1", [&] { bed.crash_server(0); });
  auto report = driver.run();

  bed.wait_for_recovery();
  ASSERT_TRUE(bed.client().wait_flushed(seconds(60)));
  EXPECT_GT(report.committed, 50u);
  // All regions ended up on the survivor and the table is fully readable.
  Transaction r = bed.client().begin("usertable");
  auto cells = r.scan("", "", 0);
  ASSERT_TRUE(cells.is_ok());
  EXPECT_EQ(cells.value().size(), kRows);
  r.abort();
}

TEST(SystemTest, ZipfianWorkloadRuns) {
  Testbed bed(system_config());
  ASSERT_TRUE(bed.start().is_ok());
  constexpr std::uint64_t kRows = 300;
  ASSERT_TRUE(bed.create_table("usertable", kRows, 4).is_ok());
  ASSERT_TRUE(bed.load_rows("usertable", kRows, 16).is_ok());

  WorkloadConfig w = small_workload(kRows);
  w.distribution = KeyDistribution::kZipfian;
  DriverConfig dc;
  dc.threads = 4;
  dc.duration = seconds(1);
  YcsbDriver driver(bed, w, dc);
  auto report = driver.run();
  EXPECT_GT(report.committed, 10u);
  // Zipfian contention produces some conflict aborts; that is expected and
  // they are not errors.
  EXPECT_EQ(report.errors, 0u);
}

TEST(SystemTest, ThrottledLoadTracksTarget) {
  Testbed bed(system_config());
  ASSERT_TRUE(bed.start().is_ok());
  constexpr std::uint64_t kRows = 300;
  ASSERT_TRUE(bed.create_table("usertable", kRows, 4).is_ok());
  ASSERT_TRUE(bed.load_rows("usertable", kRows, 16).is_ok());

  DriverConfig dc;
  dc.threads = 8;
  dc.target_tps = 100;
  dc.duration = seconds(2);
  YcsbDriver driver(bed, small_workload(kRows), dc);
  auto report = driver.run();
  EXPECT_NEAR(report.throughput_tps, 100.0, 30.0);
}

TEST(SystemTest, RecoveryManagerRestartMidWorkload) {
  Testbed bed(system_config());
  ASSERT_TRUE(bed.start().is_ok());
  constexpr std::uint64_t kRows = 300;
  ASSERT_TRUE(bed.create_table("usertable", kRows, 4).is_ok());
  ASSERT_TRUE(bed.load_rows("usertable", kRows, 16).is_ok());

  DriverConfig dc;
  dc.threads = 4;
  dc.duration = seconds(2);
  YcsbDriver driver(bed, small_workload(kRows), dc);
  driver.schedule(millis(500), "restart RM", [&] { bed.restart_recovery_manager(); });
  auto report = driver.run();
  // §3.3: processing continues across the RM restart.
  EXPECT_GT(report.committed, 50u);
  EXPECT_EQ(report.errors, 0u);
  ASSERT_TRUE(bed.client().wait_flushed(seconds(30)));
}

TEST(SystemTest, ElasticScaleOutAddsCapacity) {
  Testbed bed(system_config());
  ASSERT_TRUE(bed.start().is_ok());
  constexpr std::uint64_t kRows = 300;
  ASSERT_TRUE(bed.create_table("usertable", kRows, 4).is_ok());
  ASSERT_TRUE(bed.load_rows("usertable", kRows, 16).is_ok());
  // Add a server mid-flight; new tables use it.
  ASSERT_TRUE(bed.cluster().add_server().is_ok());
  ASSERT_TRUE(bed.create_table("t2", 100, 3).is_ok());
  std::set<std::string> hosts;
  for (const auto& r : bed.master().table_regions("t2")) hosts.insert(r.server_id);
  EXPECT_GE(hosts.size(), 2u);
}

}  // namespace
}  // namespace tfr
