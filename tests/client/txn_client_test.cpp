#include "src/client/txn_client.h"

#include <gtest/gtest.h>

#include "src/testbed/testbed.h"

namespace tfr {
namespace {

class TxnClientTest : public ::testing::Test {
 protected:
  TxnClientTest() : bed_(fast_test_config(2, 1)) {}

  void SetUp() override {
    ASSERT_TRUE(bed_.start().is_ok());
    ASSERT_TRUE(bed_.create_table("t", 1000, 4).is_ok());
  }

  Testbed bed_;
};

TEST_F(TxnClientTest, CommitThenReadBack) {
  Transaction w = bed_.client().begin("t");
  w.put("k", "c", "hello");
  auto ts = w.commit();
  ASSERT_TRUE(ts.is_ok());
  ASSERT_TRUE(bed_.client().wait_flushed());
  ASSERT_TRUE(bed_.wait_stable(ts.value()));

  Transaction r = bed_.client().begin("t");
  auto v = r.get("k", "c");
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value().value(), "hello");
  r.abort();
}

TEST_F(TxnClientTest, ReadYourOwnWrites) {
  Transaction txn = bed_.client().begin("t");
  txn.put("k", "c", "buffered");
  EXPECT_EQ(txn.get("k", "c").value().value(), "buffered");
  txn.del("k", "c");
  EXPECT_FALSE(txn.get("k", "c").value().has_value());
  txn.abort();
}

TEST_F(TxnClientTest, AbortDiscardsEverything) {
  Transaction txn = bed_.client().begin("t");
  txn.put("gone", "c", "x");
  txn.abort();
  ASSERT_TRUE(bed_.client().wait_flushed());

  Transaction r = bed_.client().begin("t");
  EXPECT_FALSE(r.get("gone", "c").value().has_value());
  r.abort();
  EXPECT_EQ(bed_.client().stats().aborts, 2);  // the explicit aborts above
  EXPECT_TRUE(bed_.tm().log().fetch_after(0).empty()) << "aborts are never logged";
}

TEST_F(TxnClientTest, DeleteBecomesTombstone) {
  Transaction w = bed_.client().begin("t");
  w.put("k", "c", "v");
  auto ts1 = w.commit();
  ASSERT_TRUE(ts1.is_ok());
  ASSERT_TRUE(bed_.client().wait_flushed());
  // The deleting transaction's snapshot must cover ts1, or the write-write
  // conflict check (correctly) aborts it.
  ASSERT_TRUE(bed_.wait_stable(ts1.value()));

  Transaction d = bed_.client().begin("t");
  d.del("k", "c");
  auto ts2 = d.commit();
  ASSERT_TRUE(ts2.is_ok());
  ASSERT_TRUE(bed_.client().wait_flushed());
  ASSERT_TRUE(bed_.wait_stable(ts2.value()));

  Transaction r = bed_.client().begin("t");
  EXPECT_FALSE(r.get("k", "c").value().has_value());
  r.abort();
}

TEST_F(TxnClientTest, WriteWriteConflictSecondCommitterAborts) {
  Transaction t1 = bed_.client().begin("t");
  Transaction t2 = bed_.client().begin("t");
  t1.put("contested", "c", "first");
  t2.put("contested", "c", "second");
  ASSERT_TRUE(t1.commit().is_ok());
  auto second = t2.commit();
  EXPECT_TRUE(second.status().is_aborted());
  EXPECT_GE(bed_.client().stats().aborts, 1);
}

TEST_F(TxnClientTest, ScanSeesCommittedAndBufferedRows) {
  Transaction w = bed_.client().begin("t");
  w.put("a1", "c", "v1");
  w.put("a2", "c", "v2");
  auto ts = w.commit();
  ASSERT_TRUE(ts.is_ok());
  ASSERT_TRUE(bed_.client().wait_flushed());
  ASSERT_TRUE(bed_.wait_stable(ts.value()));

  Transaction r = bed_.client().begin("t");
  r.put("a3", "c", "buffered");
  r.del("a1", "c");
  auto cells = r.scan("a", "b", 0);
  ASSERT_TRUE(cells.is_ok());
  ASSERT_EQ(cells.value().size(), 2u);
  EXPECT_EQ(cells.value()[0].row, "a2");
  EXPECT_EQ(cells.value()[1].row, "a3");
  r.abort();
}

TEST_F(TxnClientTest, CommitOnFinishedTransactionRejected) {
  Transaction txn = bed_.client().begin("t");
  txn.abort();
  EXPECT_EQ(txn.commit().status().code(), Code::kInvalidArgument);
}

TEST_F(TxnClientTest, ReadOnlyTransactionCommits) {
  Transaction txn = bed_.client().begin("t");
  (void)txn.get("whatever", "c");
  auto ts = txn.commit();
  EXPECT_TRUE(ts.is_ok());
  EXPECT_TRUE(bed_.client().wait_flushed());
}

TEST_F(TxnClientTest, SnapshotIsolationReaderSeesFrozenSnapshot) {
  Transaction w1 = bed_.client().begin("t");
  w1.put("row", "c", "v1");
  auto ts1 = w1.commit();
  ASSERT_TRUE(ts1.is_ok());
  ASSERT_TRUE(bed_.client().wait_flushed());
  ASSERT_TRUE(bed_.wait_stable(ts1.value()));

  Transaction reader = bed_.client().begin("t");
  // A later committed write is invisible to the open snapshot.
  Transaction w2 = bed_.client().begin("t");
  w2.put("row", "c", "v2");
  auto ts2 = w2.commit();
  ASSERT_TRUE(ts2.is_ok());
  ASSERT_TRUE(bed_.client().wait_flushed());
  ASSERT_TRUE(bed_.wait_stable(ts2.value()));

  EXPECT_EQ(reader.get("row", "c").value().value(), "v1");
  reader.abort();

  Transaction fresh = bed_.client().begin("t");
  EXPECT_EQ(fresh.get("row", "c").value().value(), "v2");
  fresh.abort();
}

TEST_F(TxnClientTest, SyncCommitModeFlushesBeforeReturn) {
  TestbedConfig cfg = fast_test_config(1, 0);
  cfg.client.sync_commit = true;
  cfg.cluster.server.sync_wal_on_write = true;
  Testbed sync_bed(cfg);
  ASSERT_TRUE(sync_bed.start().is_ok());
  ASSERT_TRUE(sync_bed.create_table("t", 100, 1).is_ok());
  auto client = sync_bed.add_client();
  ASSERT_TRUE(client.is_ok());

  Transaction txn = client.value()->begin("t");
  txn.put("k", "c", "v");
  auto ts = txn.commit();
  ASSERT_TRUE(ts.is_ok());
  // No background flush: the write-set is already on the server, WAL-synced
  // (wait_flushed only drains the tracker queues; nothing is in flight).
  EXPECT_TRUE(client.value()->wait_flushed(millis(200)));
  EXPECT_GE(sync_bed.cluster().server(0).wal().synced_seq(), 1u);
}

TEST_F(TxnClientTest, StatsCountCommits) {
  for (int i = 0; i < 3; ++i) {
    Transaction txn = bed_.client().begin("t");
    txn.put("s" + std::to_string(i), "c", "v");
    ASSERT_TRUE(txn.commit().is_ok());
  }
  EXPECT_EQ(bed_.client().stats().commits, 3);
  ASSERT_TRUE(bed_.client().wait_flushed());
  EXPECT_EQ(bed_.client().stats().flushes_completed, 3);
}

TEST_F(TxnClientTest, CrashedClientRejectsNewWork) {
  bed_.crash_client(0);
  Transaction txn = bed_.client().begin("t");
  txn.put("k", "c", "v");
  EXPECT_EQ(txn.commit().status().code(), Code::kClosed);
}

}  // namespace
}  // namespace tfr
