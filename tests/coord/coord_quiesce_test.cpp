// Regression test for the listener lifetime contract: remove_listener must
// not return while a callback batch that copied the listener is still
// executing — otherwise a component (master, recovery manager) can be
// destroyed under a running callback (the crash TSAN originally caught).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/coord/coord.h"

namespace tfr {
namespace {

TEST(CoordQuiesceTest, RemoveListenerWaitsForInFlightCallback) {
  Coord coord(seconds(100));  // manual expiry only
  std::atomic<bool> in_callback{false};
  std::atomic<bool> release{false};
  std::atomic<bool> callback_finished{false};

  const int id = coord.add_listener("g", [&](const SessionInfo&, bool) {
    in_callback = true;
    while (!release) sleep_micros(100);
    callback_finished = true;
  });
  ASSERT_TRUE(coord.create_session("g", "s1", millis(1)).is_ok());
  sleep_millis(3);

  // Fire the expiry on a helper thread; the callback blocks inside.
  std::thread expiry([&] { coord.run_expiry_check(); });
  while (!in_callback) sleep_micros(100);

  // remove_listener must block until the callback completes.
  std::atomic<bool> removed{false};
  std::thread remover([&] {
    coord.remove_listener("g", id);
    removed = true;
  });
  sleep_millis(20);
  EXPECT_FALSE(removed.load()) << "remove_listener returned with a callback in flight";

  release = true;
  remover.join();
  expiry.join();
  EXPECT_TRUE(callback_finished.load());
  EXPECT_TRUE(removed.load());
}

TEST(CoordQuiesceTest, RemovedListenerNeverFiresAgain) {
  Coord coord(seconds(100));
  std::atomic<int> fires{0};
  const int id = coord.add_listener("g", [&](const SessionInfo&, bool) { ++fires; });
  ASSERT_TRUE(coord.create_session("g", "s1", millis(1)).is_ok());
  sleep_millis(3);
  coord.run_expiry_check();
  EXPECT_EQ(fires.load(), 1);

  coord.remove_listener("g", id);
  ASSERT_TRUE(coord.create_session("g", "s2", millis(1)).is_ok());
  sleep_millis(3);
  coord.run_expiry_check();
  EXPECT_EQ(fires.load(), 1);
}

TEST(CoordQuiesceTest, RemoveUnknownListenerIsSafe) {
  Coord coord(seconds(100));
  coord.remove_listener("g", 999);     // unknown id
  coord.remove_listener("nope", 1);    // unknown group
}

}  // namespace
}  // namespace tfr
