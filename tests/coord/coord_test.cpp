#include "src/coord/coord.h"

#include <gtest/gtest.h>

#include <atomic>

namespace tfr {
namespace {

TEST(CoordTest, CreateAndHeartbeatSession) {
  Coord coord(seconds(10));  // manual expiry checks only
  ASSERT_TRUE(coord.create_session("clients", "c1", seconds(1), 7).is_ok());
  auto info = coord.session("clients", "c1");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->payload, 7);
  ASSERT_TRUE(coord.heartbeat("clients", "c1", 42).is_ok());
  EXPECT_EQ(coord.session("clients", "c1")->payload, 42);
}

TEST(CoordTest, DuplicateLiveSessionRejected) {
  Coord coord(seconds(10));
  ASSERT_TRUE(coord.create_session("clients", "c1", seconds(1)).is_ok());
  EXPECT_EQ(coord.create_session("clients", "c1", seconds(1)).code(), Code::kAlreadyExists);
}

TEST(CoordTest, GroupsAreIndependentNamespaces) {
  Coord coord(seconds(10));
  ASSERT_TRUE(coord.create_session("clients", "x", seconds(1)).is_ok());
  ASSERT_TRUE(coord.create_session("servers", "x", seconds(1)).is_ok());
  EXPECT_EQ(coord.live_sessions("clients").size(), 1u);
  EXPECT_EQ(coord.live_sessions("servers").size(), 1u);
}

TEST(CoordTest, ExpiryFiresListenerWithLastPayload) {
  Coord coord(seconds(10));
  std::atomic<int> expired_count{0};
  HeartbeatPayload last_payload = -1;
  coord.add_listener("clients", [&](const SessionInfo& info, bool expired) {
    if (expired) {
      ++expired_count;
      last_payload = info.payload;
    }
  });
  ASSERT_TRUE(coord.create_session("clients", "c1", millis(1)).is_ok());
  ASSERT_TRUE(coord.heartbeat("clients", "c1", 99).is_ok());
  sleep_millis(5);
  coord.run_expiry_check();
  EXPECT_EQ(expired_count.load(), 1);
  EXPECT_EQ(last_payload, 99);
  // The session is gone; a late heartbeat from the "dead" node is rejected.
  EXPECT_TRUE(coord.heartbeat("clients", "c1", 100).is_unavailable());
}

TEST(CoordTest, HeartbeatKeepsSessionAlive) {
  Coord coord(seconds(10));
  ASSERT_TRUE(coord.create_session("clients", "c1", millis(50)).is_ok());
  for (int i = 0; i < 5; ++i) {
    sleep_millis(10);
    ASSERT_TRUE(coord.heartbeat("clients", "c1", i).is_ok());
    coord.run_expiry_check();
  }
  EXPECT_EQ(coord.live_sessions("clients").size(), 1u);
}

TEST(CoordTest, CleanCloseFiresListenerWithExpiredFalse) {
  Coord coord(seconds(10));
  bool saw_clean_close = false;
  coord.add_listener("clients", [&](const SessionInfo& info, bool expired) {
    if (!expired && info.name == "c1") saw_clean_close = true;
  });
  ASSERT_TRUE(coord.create_session("clients", "c1", seconds(1)).is_ok());
  ASSERT_TRUE(coord.close_session("clients", "c1").is_ok());
  EXPECT_TRUE(saw_clean_close);
  EXPECT_TRUE(coord.close_session("clients", "c1").is_not_found());
}

TEST(CoordTest, ReregistrationAfterExpiryAllowed) {
  Coord coord(seconds(10));
  ASSERT_TRUE(coord.create_session("clients", "c1", millis(1)).is_ok());
  sleep_millis(5);
  coord.run_expiry_check();
  ASSERT_TRUE(coord.create_session("clients", "c1", seconds(1)).is_ok());
}

TEST(CoordTest, LiveSessionsReturnsPayloads) {
  Coord coord(seconds(10));
  ASSERT_TRUE(coord.create_session("servers", "rs1", seconds(1), 10).is_ok());
  ASSERT_TRUE(coord.create_session("servers", "rs2", seconds(1), 20).is_ok());
  auto sessions = coord.live_sessions("servers");
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].payload + sessions[1].payload, 30);
}

TEST(CoordTest, KvNamespace) {
  Coord coord(seconds(10));
  EXPECT_FALSE(coord.get("/tfr/TF").has_value());
  coord.put("/tfr/TF", 123);
  EXPECT_EQ(coord.get("/tfr/TF").value(), 123);
  coord.put("/tfr/TF", 124);
  EXPECT_EQ(coord.get("/tfr/TF").value(), 124);
}

TEST(CoordTest, BackgroundCheckerExpiresAutomatically) {
  Coord coord(millis(5));
  std::atomic<bool> expired{false};
  coord.add_listener("clients", [&](const SessionInfo&, bool exp) {
    if (exp) expired = true;
  });
  ASSERT_TRUE(coord.create_session("clients", "c1", millis(10)).is_ok());
  const Micros deadline = now_micros() + seconds(2);
  while (!expired && now_micros() < deadline) sleep_millis(5);
  EXPECT_TRUE(expired.load());
}

TEST(CoordTest, UpdateTtlExtendsTheDetectionWindow) {
  Coord coord(seconds(10));
  ASSERT_TRUE(coord.create_session("clients", "c1", millis(5)).is_ok());
  ASSERT_TRUE(coord.update_ttl("clients", "c1", seconds(10)).is_ok());
  sleep_millis(10);  // old TTL would have expired by now
  coord.run_expiry_check();
  EXPECT_EQ(coord.live_sessions("clients").size(), 1u);
  EXPECT_TRUE(coord.update_ttl("clients", "missing", seconds(1)).is_not_found());
}

// The heartbeat/expiry race: once a session's TTL has lapsed, the outcome
// must not depend on whether the periodic expiry scan or a late heartbeat
// observes the lapse first. Both orderings must declare the session dead
// and fire the expiry listener exactly once.

TEST(CoordTest, LateHeartbeatBeforeScanExpiresInsteadOfResurrecting) {
  Coord coord(seconds(10));  // manual expiry checks only
  std::atomic<int> expired_count{0};
  HeartbeatPayload last_payload = -1;
  coord.add_listener("servers", [&](const SessionInfo& info, bool expired) {
    if (expired) {
      ++expired_count;
      last_payload = info.payload;
    }
  });
  ASSERT_TRUE(coord.create_session("servers", "rs1", millis(1), 7).is_ok());
  sleep_millis(5);  // TTL lapses with no scan having run
  // Heartbeat-first ordering: the renewal itself must observe the lapse.
  EXPECT_TRUE(coord.heartbeat("servers", "rs1", 8).is_unavailable());
  EXPECT_EQ(expired_count.load(), 1);
  EXPECT_EQ(last_payload, 7);  // the lapsed session's last good payload
  EXPECT_TRUE(coord.live_sessions("servers").empty());
  // The scan running afterwards must not fire the listener a second time.
  coord.run_expiry_check();
  EXPECT_EQ(expired_count.load(), 1);
  // Dead is dead: further heartbeats stay rejected until re-registration.
  EXPECT_TRUE(coord.heartbeat("servers", "rs1", 9).is_unavailable());
  EXPECT_EQ(expired_count.load(), 1);
  ASSERT_TRUE(coord.create_session("servers", "rs1", seconds(1)).is_ok());
}

TEST(CoordTest, ScanBeforeLateHeartbeatGivesTheSameOutcome) {
  Coord coord(seconds(10));
  std::atomic<int> expired_count{0};
  coord.add_listener("servers", [&](const SessionInfo&, bool expired) {
    if (expired) ++expired_count;
  });
  ASSERT_TRUE(coord.create_session("servers", "rs1", millis(1), 7).is_ok());
  sleep_millis(5);
  // Scan-first ordering.
  coord.run_expiry_check();
  EXPECT_EQ(expired_count.load(), 1);
  EXPECT_TRUE(coord.heartbeat("servers", "rs1", 8).is_unavailable());
  EXPECT_EQ(expired_count.load(), 1);  // exactly once, same as heartbeat-first
  EXPECT_TRUE(coord.live_sessions("servers").empty());
}

TEST(CoordTest, HeartbeatWithinTtlStillRenews) {
  Coord coord(seconds(10));
  std::atomic<int> expired_count{0};
  coord.add_listener("servers", [&](const SessionInfo&, bool expired) {
    if (expired) ++expired_count;
  });
  ASSERT_TRUE(coord.create_session("servers", "rs1", millis(200)).is_ok());
  sleep_millis(5);  // well inside the TTL
  EXPECT_TRUE(coord.heartbeat("servers", "rs1", 1).is_ok());
  coord.run_expiry_check();
  EXPECT_EQ(expired_count.load(), 0);
  EXPECT_EQ(coord.live_sessions("servers").size(), 1u);
}

TEST(CoordTest, MultipleListenersAllFire) {
  Coord coord(seconds(10));
  std::atomic<int> fired{0};
  coord.add_listener("servers", [&](const SessionInfo&, bool) { ++fired; });
  coord.add_listener("servers", [&](const SessionInfo&, bool) { ++fired; });
  ASSERT_TRUE(coord.create_session("servers", "rs1", millis(1)).is_ok());
  sleep_millis(5);
  coord.run_expiry_check();
  EXPECT_EQ(fired.load(), 2);
}

}  // namespace
}  // namespace tfr
