// Figure 3 — "Evaluating Failure Recovery" (§4.4).
//
// 50 client threads, two region servers, ~250 tps offered (near the peak of
// a single server in our scaled setup), 1 s heartbeats. A region-server
// crash is induced mid-run. The paper plots per-second throughput (3a) and
// response time (3b) against wall-clock time:
//
//   * a sharp throughput drop / response-time spike at the failure,
//   * the actual transactional recovery takes only a few seconds,
//   * the slower return to pre-failure levels is the surviving server's
//     block cache warming up for the regions it inherited,
//   * no committed transaction is lost.
//
// Output: the two time series (one row per second), recovery-phase
// annotations, and a durability audit.
#include "bench/bench_common.h"

using namespace tfr;
using namespace tfr::bench;

int main() {
  print_header("Figure 3: failure detection and recovery timeline",
               "throughput (3a) and response time (3b) vs wall-clock time; "
               "server crash mid-run");

  constexpr std::uint64_t kRows = 60'000;
  constexpr int kRegions = 8;
  const Micros duration = scaled(seconds(90));
  const Micros crash_at = duration / 3;

  TestbedConfig cfg = paper_config(2, false);
  // Heavier block reads for this experiment: the paper's dataset/cache ratio
  // makes the survivor capacity-limited while its cache is cold, producing
  // the gradual return to pre-failure throughput. With a 4 ms block fetch
  // and 4 handlers, a cold server sustains ~150 tps < the 250 tps offered.
  cfg.cluster.dfs.read_latency = 4000;
  Testbed bed(cfg);
  if (auto s = prepare(bed, kRows, kRegions); !s.is_ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", s.to_string().c_str());
    return 1;
  }

  WorkloadConfig w;
  w.num_rows = kRows;
  DriverConfig d;
  d.threads = 50;
  d.target_tps = 250;
  d.duration = duration;
  d.series_interval = seconds(1);

  Micros recovery_started = 0, recovery_finished = 0;
  YcsbDriver driver(bed, w, d);
  const Micros t0 = now_micros();
  driver.schedule(crash_at, "crash rs1", [&] { bed.crash_server(0); });
  driver.schedule(crash_at + millis(100), "watch recovery", [&] {
    // Record when the RM starts and finishes the transactional recovery.
    std::thread([&, t0] {
      if (bed.wait_server_recoveries(1, seconds(60))) {
        recovery_started = now_micros() - t0;
        bed.wait_for_recovery();
        recovery_finished = now_micros() - t0;
      }
    }).detach();
  });

  const auto report = driver.run();
  bed.wait_for_recovery();
  const bool drained = bed.client().wait_flushed(seconds(120));

  std::printf("\n# time series (crash at t=%.0fs)\n", static_cast<double>(crash_at) / 1e6);
  std::printf("%-8s %-14s %-14s %-10s\n", "t_s", "throughput_tps", "mean_ms", "errors");
  for (const auto& p : report.series) {
    std::printf("%-8.0f %-14.1f %-14.2f %-10llu\n", p.t_seconds, p.throughput,
                p.mean_latency_ms, static_cast<unsigned long long>(p.errors));
  }

  print_report_row("\noverall", report);
  if (recovery_started > 0) {
    std::printf("failure detected + recovery started at t=%.1fs (crash at %.1fs; "
                "detection = missed heartbeats, 3s session TTL)\n",
                static_cast<double>(recovery_started) / 1e6,
                static_cast<double>(crash_at) / 1e6);
    std::printf("transactional recovery finished at t=%.1fs (recovery itself took %.1fs)\n",
                static_cast<double>(recovery_finished) / 1e6,
                static_cast<double>(recovery_finished - recovery_started) / 1e6);
  }
  const auto rstats = bed.rm().stats();
  const auto cstats = bed.rm().recovery_client_stats();
  std::printf("regions recovered: %lld, write-sets replayed: %lld, mutations replayed: %lld\n",
              static_cast<long long>(rstats.regions_recovered),
              static_cast<long long>(rstats.writesets_replayed_server),
              static_cast<long long>(cstats.mutations_replayed));

  // Shape checks against the paper's qualitative claims.
  std::printf("\n-- shape check --\n");
  const double crash_s = static_cast<double>(crash_at) / 1e6;
  double pre = 0, dip = 1e18, post = 0;
  int pre_n = 0, post_n = 0;
  for (const auto& p : report.series) {
    if (p.t_seconds < crash_s - 2) {
      pre += p.throughput;
      ++pre_n;
    } else if (p.t_seconds > crash_s && p.t_seconds < crash_s + 8) {
      dip = std::min(dip, p.throughput);
    } else if (p.t_seconds > static_cast<double>(duration) / 1e6 - 10) {
      post += p.throughput;
      ++post_n;
    }
  }
  pre /= std::max(pre_n, 1);
  post /= std::max(post_n, 1);
  std::printf("pre-failure throughput  : %.1f tps\n", pre);
  std::printf("min throughput after crash: %.1f tps %s\n", dip,
              dip < 0.5 * pre ? "[OK: sharp drop]" : "[UNEXPECTED]");
  std::printf("end-of-run throughput   : %.1f tps %s\n", post,
              post > 0.8 * pre ? "[OK: recovered to pre-failure level]" : "[UNEXPECTED]");
  std::printf("transactions lost       : %s (flush backlog drained: %s)\n",
              drained ? "none" : "POSSIBLE", drained ? "yes" : "no");
  return 0;
}
