// Ablation A3 — the recovery-work bound.
//
// §3.1: "the number of write-sets that need to be recovered upon failure is
// bound by the client's throughput and heartbeat interval." TF(c) lags
// reality by at most one heartbeat, so the write-sets fetched after TFr(c)
// are roughly (throughput x heartbeat interval) plus whatever was genuinely
// still in flight.
//
// This bench crashes a client that is committing at a fixed rate under a
// sweep of heartbeat intervals and reports how many write-sets the recovery
// manager replays. Shape target: the replay count grows roughly linearly
// with the heartbeat interval at a fixed rate, and roughly linearly with
// the rate at a fixed interval.
#include "bench/bench_common.h"

using namespace tfr;
using namespace tfr::bench;

namespace {

struct Outcome {
  std::int64_t replayed = 0;
  double offered_tps;
  double achieved_tps = 0;
};

Outcome run_once(double tps, Micros heartbeat) {
  TestbedConfig cfg = paper_config(2, false);
  cfg.client.heartbeat_interval = heartbeat;
  cfg.client.session_ttl = heartbeat * 3;
  cfg.num_clients = 1;
  constexpr std::uint64_t kRows = 10'000;

  Testbed bed(cfg);
  if (auto s = prepare(bed, kRows, 4, 64); !s.is_ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", s.to_string().c_str());
    std::exit(1);
  }

  WorkloadConfig w;
  w.num_rows = kRows;
  DriverConfig d;
  d.threads = 20;
  d.target_tps = tps;
  // The run must span several heartbeat intervals or the lag cannot show.
  d.duration = std::max<Micros>(scaled(seconds(6)), heartbeat * 4);

  YcsbDriver driver(bed, w, d);
  driver.schedule(d.duration - millis(200), "crash the client",
                  [&] { bed.crash_client(0); });
  const auto report = driver.run();

  Outcome out;
  out.offered_tps = tps;
  out.achieved_tps = report.throughput_tps;
  if (!bed.wait_client_recoveries(1, seconds(60))) {
    std::fprintf(stderr, "client recovery never started\n");
    std::exit(1);
  }
  bed.wait_for_recovery();
  out.replayed = bed.rm().stats().writesets_replayed_client;
  return out;
}

}  // namespace

int main() {
  print_header("Ablation A3: recovery work vs throughput x heartbeat interval",
               "§3.1's bound on the write-sets replayed after a client failure");

  std::printf("%-10s %-16s %-20s %-24s\n", "tps", "heartbeat_ms", "writesets_replayed",
              "replayed/(tps*interval)");

  struct Point {
    double tps;
    Micros hb;
    std::int64_t replayed;
  };
  std::vector<Point> points;
  for (const double tps : {100.0, 300.0}) {
    for (const Micros hb : {millis(250), millis(1000), millis(3000)}) {
      const Outcome o = run_once(tps, hb);
      const double bound_units =
          static_cast<double>(o.replayed) / (tps * static_cast<double>(hb) / 1e6);
      std::printf("%-10.0f %-16lld %-20lld %-24.2f\n", tps,
                  static_cast<long long>(hb / 1000), static_cast<long long>(o.replayed),
                  bound_units);
      points.push_back({tps, hb, o.replayed});
    }
  }

  std::printf("\n-- shape check --\n");
  // At fixed tps, the replay count at the longest interval must exceed the
  // shortest (intermediate points can be noisy).
  const bool grows_with_interval =
      points[2].replayed > points[0].replayed && points[5].replayed > points[3].replayed;
  std::printf("replay count grows with heartbeat interval at fixed tps: %s\n",
              grows_with_interval ? "[OK]" : "[UNEXPECTED]");
  // At the longest interval, more throughput means more replay.
  const auto& slow_low = points[2];   // 100 tps, 3000 ms
  const auto& slow_high = points[5];  // 300 tps, 3000 ms
  std::printf("replay count grows with tps at fixed interval: %s (%lld -> %lld)\n",
              slow_high.replayed > slow_low.replayed ? "[OK]" : "[UNEXPECTED]",
              static_cast<long long>(slow_low.replayed),
              static_cast<long long>(slow_high.replayed));
  return 0;
}
