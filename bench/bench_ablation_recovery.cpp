// Ablation A1 — threshold-based recovery vs replay-the-whole-log.
//
// §3 motivates the checkpointing scheme: "In principle, it would be correct
// if the recovery manager simply replays all write-sets that exist in the
// recovery log, as replaying write-sets is idempotent. ... However,
// replaying all write-sets would be extremely inefficient."
//
// This bench quantifies that: for growing run lengths (log sizes), crash a
// region server and measure how many write-sets the recovery manager
// replays and how long the region outage lasts, with
//   (a) the paper's TF/TP threshold tracking, and
//   (b) the ablated replay-everything baseline (ignore_thresholds).
//
// Shape target: (a) replays a bounded number of write-sets (determined by
// throughput x heartbeat interval, §3.1) and its recovery time stays flat;
// (b) grows linearly with the run length.
#include "bench/bench_common.h"

using namespace tfr;
using namespace tfr::bench;

namespace {

struct Outcome {
  std::int64_t replayed = 0;
  double recovery_seconds = 0;
  std::int64_t log_records = 0;
};

Outcome run_once(bool ignore_thresholds, int txns) {
  TestbedConfig cfg = paper_config(2, false);
  // Moderate latencies and quick detection: we measure replay work, not the
  // heartbeat-expiry wait.
  cfg.cluster.dfs.sync_latency = 500;
  cfg.cluster.dfs.read_latency = 300;
  cfg.cluster.server.rpc_latency = 100;
  cfg.cluster.server.read_service = 50;
  cfg.cluster.server.write_service = 50;
  cfg.cluster.server.heartbeat_interval = millis(200);
  cfg.cluster.server.session_ttl = millis(600);
  cfg.client.heartbeat_interval = millis(200);
  cfg.client.session_ttl = millis(600);
  cfg.txn_log.sync_latency = 200;
  cfg.recovery.poll_interval = millis(50);
  cfg.recovery.ignore_thresholds = ignore_thresholds;

  constexpr std::uint64_t kRows = 5'000;
  Testbed bed(cfg);
  if (auto s = prepare(bed, kRows, 4, 64); !s.is_ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", s.to_string().c_str());
    std::exit(1);
  }

  // Build up the run history.
  Rng rng(7);
  for (int i = 0; i < txns; ++i) {
    Transaction txn = bed.client().begin("usertable");
    txn.put(Testbed::row_key(rng.next_below(kRows)), "field0", "v" + std::to_string(i));
    auto ts = txn.commit();
    if (!ts.is_ok()) --i;  // conflicts just retry
  }
  (void)bed.client().wait_flushed(seconds(120));

  Outcome out;
  out.log_records = bed.tm().log().stats().live_records;

  const Micros t0 = now_micros();
  bed.crash_server(0);
  (void)bed.wait_server_recoveries(1, seconds(120));
  bed.wait_for_recovery();
  out.recovery_seconds = static_cast<double>(now_micros() - t0) / 1e6;
  out.replayed = bed.rm().stats().writesets_replayed_server;
  return out;
}

}  // namespace

int main() {
  print_header("Ablation A1: threshold-based recovery vs replay-the-whole-log",
               "§3's motivation for lightweight checkpointing");

  const int scale = bench_scale() < 1.0 ? 2 : 1;
  const int run_lengths[] = {500 / scale, 2000 / scale, 8000 / scale};

  std::printf("%-12s %-14s %-22s %-20s %-14s\n", "run_txns", "mode", "log_records_at_crash",
              "writesets_replayed", "recovery_s");
  double tracked_worst = 0, replay_all_worst = 0;
  std::int64_t tracked_replayed_max = 0, replay_all_replayed_max = 0;
  for (const int txns : run_lengths) {
    for (const bool ignore : {false, true}) {
      const Outcome o = run_once(ignore, txns);
      std::printf("%-12d %-14s %-22lld %-20lld %-14.2f\n", txns,
                  ignore ? "replay-all" : "thresholds",
                  static_cast<long long>(o.log_records),
                  static_cast<long long>(o.replayed), o.recovery_seconds);
      if (ignore) {
        replay_all_worst = std::max(replay_all_worst, o.recovery_seconds);
        replay_all_replayed_max = std::max(replay_all_replayed_max, o.replayed);
      } else {
        tracked_worst = std::max(tracked_worst, o.recovery_seconds);
        tracked_replayed_max = std::max(tracked_replayed_max, o.replayed);
      }
    }
  }

  std::printf("\n-- shape check --\n");
  std::printf("max write-sets replayed: thresholds=%lld, replay-all=%lld %s\n",
              static_cast<long long>(tracked_replayed_max),
              static_cast<long long>(replay_all_replayed_max),
              tracked_replayed_max < replay_all_replayed_max / 2 ? "[OK: bounded by tracking]"
                                                                  : "[UNEXPECTED]");
  std::printf("worst recovery time: thresholds=%.2fs, replay-all=%.2fs %s\n", tracked_worst,
              replay_all_worst,
              tracked_worst <= replay_all_worst ? "[OK]" : "[UNEXPECTED]");
  return 0;
}
