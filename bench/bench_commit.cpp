// bench_commit — committed-transaction throughput of the post-commit
// pipeline, A/B in one run:
//
//   legacy    — one apply RPC per write-set per server, fixed group commit
//               (TxnLogConfig::adaptive = false, TxnClientConfig::
//               pipelined_flush = false);
//   pipelined — write-set slices batched per destination server into one
//               BatchApplyRequest RPC per flusher round, adaptive group
//               commit sizing the accumulation window from observed sync
//               latency and queue depth.
//
// 8 committer threads (2 per client over 4 clients) each commit a fixed
// quota of single-row transactions over disjoint key ranges (no SI
// conflicts: the pipeline, not the conflict rate, is under test). The
// clock stops only after every client's flush queue has drained
// (wait_flushed), so flush capacity — the legacy bottleneck — is part of
// the measured throughput, not hidden backlog.
//
// Emits BENCH_commit.json with both modes, the speedup, the
// log.batch_size / log.sync_wait histograms, and the flush RPC counters.
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/metrics.h"

using namespace tfr;

namespace {

constexpr int kClients = 4;
constexpr int kThreads = 8;  // committer threads, spread over the clients
constexpr std::uint64_t kRows = 4096;
constexpr int kRegions = 4;

struct ModeReport {
  std::string mode;
  double wall_s = 0;
  double tps = 0;
  double commit_mean_ms = 0;
  double commit_p99_ms = 0;
  std::int64_t committed = 0;
  std::int64_t aborted = 0;
  std::int64_t log_appends = 0;
  std::int64_t log_batches = 0;
  std::int64_t log_group_waits = 0;
  std::int64_t batch_rpcs = 0;
  std::int64_t batch_slices = 0;
  double batch_size_mean = 0;
  Micros batch_size_p99 = 0;
  double sync_wait_mean_ms = 0;
  Micros sync_wait_p99 = 0;
};

TestbedConfig commit_config(bool pipelined) {
  TestbedConfig cfg = bench::paper_config(/*servers=*/2);
  cfg.num_clients = kClients;
  // Lean flusher pool: the paper's client has a bounded background pool;
  // with one thread per client the legacy one-RPC-per-write-set path is
  // firmly flush-bound while the batched path stays commit-bound.
  cfg.client.flusher_threads = 1;
  cfg.client.pipelined_flush = pipelined;
  cfg.client.flush_batch_max = 32;
  // Commit path: ~0.4 ms stable-storage write per group-commit batch.
  cfg.txn_log.sync_latency = 400;
  cfg.txn_log.sync_jitter = 100;
  cfg.txn_log.adaptive = pipelined;
  // Flush path: ~1 ms per apply RPC, cheap per-slice service so the
  // round-trip (not the server CPU) dominates the per-write-set cost.
  cfg.cluster.server.rpc_latency = 1000;
  cfg.cluster.server.rpc_jitter = 200;
  cfg.cluster.server.write_service = 50;
  cfg.cluster.server.read_service = 50;
  return cfg;
}

ModeReport run_mode(bool pipelined, std::uint64_t txns_per_thread) {
  ModeReport rep;
  rep.mode = pipelined ? "pipelined" : "legacy";
  reset_global_counters();
  reset_global_histograms();

  Testbed bed(commit_config(pipelined));
  if (!bench::prepare(bed, kRows, kRegions).is_ok()) {
    std::fprintf(stderr, "testbed setup failed (%s)\n", rep.mode.c_str());
    return rep;
  }

  Histogram commit_latency;
  std::atomic<std::int64_t> committed{0};
  std::atomic<std::int64_t> aborted{0};

  const Micros t0 = now_micros();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TxnClient& client = bed.client(t % kClients);
      // Disjoint row ranges per thread: blind single-row writes, no
      // write-write conflicts.
      const std::uint64_t base = static_cast<std::uint64_t>(t) * (kRows / kThreads);
      for (std::uint64_t i = 0; i < txns_per_thread; ++i) {
        Transaction txn = client.begin("usertable");
        txn.put(Testbed::row_key(base + (i % (kRows / kThreads))), "field0",
                "v" + std::to_string(i));
        const Micros start = now_micros();
        auto r = txn.commit();
        if (r.is_ok()) {
          commit_latency.record(now_micros() - start);
          committed.fetch_add(1, std::memory_order_relaxed);
        } else {
          aborted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // The run is not over until the write-sets have actually reached the
  // servers: drain every client's flush queue inside the timed window.
  for (int c = 0; c < kClients; ++c) {
    if (!bed.client(c).wait_flushed(seconds(120))) {
      std::fprintf(stderr, "client %d failed to drain its flush queue\n", c);
    }
  }
  const Micros wall = now_micros() - t0;

  rep.wall_s = static_cast<double>(wall) / 1e6;
  rep.committed = committed.load();
  rep.aborted = aborted.load();
  rep.tps = rep.wall_s > 0 ? static_cast<double>(rep.committed) / rep.wall_s : 0;
  rep.commit_mean_ms = commit_latency.mean() / 1000.0;
  rep.commit_p99_ms = static_cast<double>(commit_latency.percentile(99)) / 1000.0;

  const TxnLogStats log_stats = bed.tm().log().stats();
  rep.log_appends = log_stats.appends;
  rep.log_batches = log_stats.batches;
  rep.log_group_waits = log_stats.group_waits;
  for (const auto& [name, value] : global_counter_snapshot()) {
    if (name == "kv.batch_apply_rpcs") rep.batch_rpcs = value;
    if (name == "kv.batch_apply_slices") rep.batch_slices = value;
  }
  for (const auto& [name, hist] : global_histogram_snapshot()) {
    if (name == "log.batch_size") {
      rep.batch_size_mean = hist->mean();
      rep.batch_size_p99 = hist->percentile(99);
    }
    if (name == "log.sync_wait") {
      rep.sync_wait_mean_ms = hist->mean() / 1000.0;
      rep.sync_wait_p99 = hist->percentile(99);
    }
  }

  bed.stop();
  std::printf("%-10s  wall=%6.2fs  tps=%8.1f  commit mean=%6.2fms p99=%6.2fms  "
              "log batches=%lld/%lld appends (waits=%lld)  batch rpcs=%lld (%lld slices)\n",
              rep.mode.c_str(), rep.wall_s, rep.tps, rep.commit_mean_ms, rep.commit_p99_ms,
              static_cast<long long>(rep.log_batches), static_cast<long long>(rep.log_appends),
              static_cast<long long>(rep.log_group_waits), static_cast<long long>(rep.batch_rpcs),
              static_cast<long long>(rep.batch_slices));
  return rep;
}

void emit_json(const ModeReport& legacy, const ModeReport& pipelined, double speedup) {
  std::FILE* out = std::fopen("BENCH_commit.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_commit.json\n");
    return;
  }
  auto mode_json = [&](const ModeReport& r, const char* trailing) {
    std::fprintf(out, "  \"%s\": {\n", r.mode.c_str());
    std::fprintf(out, "    \"wall_s\": %.3f,\n", r.wall_s);
    std::fprintf(out, "    \"committed_tps\": %.1f,\n", r.tps);
    std::fprintf(out, "    \"committed\": %lld,\n", static_cast<long long>(r.committed));
    std::fprintf(out, "    \"aborted\": %lld,\n", static_cast<long long>(r.aborted));
    std::fprintf(out, "    \"commit_mean_ms\": %.3f,\n", r.commit_mean_ms);
    std::fprintf(out, "    \"commit_p99_ms\": %.3f,\n", r.commit_p99_ms);
    std::fprintf(out, "    \"log_appends\": %lld,\n", static_cast<long long>(r.log_appends));
    std::fprintf(out, "    \"log_batches\": %lld,\n", static_cast<long long>(r.log_batches));
    std::fprintf(out, "    \"log_group_waits\": %lld,\n",
                 static_cast<long long>(r.log_group_waits));
    std::fprintf(out, "    \"log_batch_size_mean\": %.2f,\n", r.batch_size_mean);
    std::fprintf(out, "    \"log_batch_size_p99\": %lld,\n",
                 static_cast<long long>(r.batch_size_p99));
    std::fprintf(out, "    \"log_sync_wait_mean_ms\": %.3f,\n", r.sync_wait_mean_ms);
    std::fprintf(out, "    \"log_sync_wait_p99_us\": %lld,\n",
                 static_cast<long long>(r.sync_wait_p99));
    std::fprintf(out, "    \"batch_apply_rpcs\": %lld,\n", static_cast<long long>(r.batch_rpcs));
    std::fprintf(out, "    \"batch_apply_slices\": %lld\n",
                 static_cast<long long>(r.batch_slices));
    std::fprintf(out, "  }%s\n", trailing);
  };
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"commit\",\n");
  std::fprintf(out, "  \"client_threads\": %d,\n", kThreads);
  std::fprintf(out, "  \"clients\": %d,\n", kClients);
  std::fprintf(out, "  \"scale\": %.3f,\n", bench::bench_scale());
  mode_json(legacy, ",");
  mode_json(pipelined, ",");
  std::fprintf(out, "  \"speedup\": %.2f\n", speedup);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_commit.json (speedup %.2fx)\n", speedup);
}

}  // namespace

int main() {
  bench::print_header("Commit-pipeline throughput: pipelined vs legacy",
                      "commit hot path (§2.2 deferred updates, §4.1 group commit)");
  const std::uint64_t txns_per_thread =
      static_cast<std::uint64_t>(500.0 * bench::bench_scale()) + 8;
  std::printf("# %d committer threads x %llu txns, both modes in one run\n", kThreads,
              static_cast<unsigned long long>(txns_per_thread));

  const ModeReport legacy = run_mode(/*pipelined=*/false, txns_per_thread);
  const ModeReport pipelined = run_mode(/*pipelined=*/true, txns_per_thread);
  const double speedup = legacy.tps > 0 ? pipelined.tps / legacy.tps : 0;
  emit_json(legacy, pipelined, speedup);
  if (speedup < 2.0) {
    std::fprintf(stderr, "WARNING: pipelined/legacy speedup %.2fx below the 2x target\n", speedup);
  }
  return 0;
}
