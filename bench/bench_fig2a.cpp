// Figure 2(a) — "Benefits of Asynchronous Persistence" (§4.2).
//
// The paper plots mean response time (ms) against achieved throughput (tps)
// for two persistence modes on two region servers:
//
//   synchronous  — per-update durability: the write-set is flushed to the
//                  region servers and WAL-synced to the DFS before commit
//                  returns (stock-HBase-style durability);
//   asynchronous — the paper's mode: commit returns once the write-set is in
//                  the TM recovery log; the flush and the WAL sync happen
//                  after commit, off the critical path.
//
// Shape target: the asynchronous curve lies strictly below the synchronous
// one at every offered load and saturates at a higher throughput.
//
// Output: one row per (mode, offered load) — an (x=tps, y=mean ms) point.
#include "bench/bench_common.h"

using namespace tfr;
using namespace tfr::bench;

namespace {

constexpr std::uint64_t kRows = 20'000;
constexpr int kRegions = 4;

DriverReport run_point(Testbed& bed, double offered_tps, Micros duration) {
  WorkloadConfig w;
  w.num_rows = kRows;
  DriverConfig d;
  d.threads = 50;
  d.target_tps = offered_tps;
  d.duration = duration;
  YcsbDriver driver(bed, w, d);
  return driver.run();
}

}  // namespace

int main() {
  print_header("Figure 2(a): synchronous vs asynchronous persistence",
               "response time vs throughput, 2 region servers, YCSB txns "
               "(10 ops, 50/50 read/update)");

  // Sweep into saturation: with 4 handler slots and ~0.4 ms service per op,
  // two servers peak around 2000 YCSB tps; the synchronous mode saturates
  // earlier because each write-set holds a handler through the DFS sync.
  const Micros point_duration = scaled(seconds(6));
  const double offered[] = {100, 300, 600, 1200, 2000, 3000};

  struct Point {
    double tps;
    double mean_ms;
  };
  std::vector<Point> async_curve, sync_curve;

  for (const bool sync_mode : {false, true}) {
    Testbed bed(paper_config(2, sync_mode));
    if (auto s = prepare(bed, kRows, kRegions); !s.is_ok()) {
      std::fprintf(stderr, "prepare failed: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("\n-- %s persistence --\n", sync_mode ? "synchronous" : "asynchronous");
    std::printf("%-10s %-12s %-12s %-12s %-12s\n", "offered", "tps", "mean_ms", "p50_ms",
                "p99_ms");
    for (const double load : offered) {
      const auto r = run_point(bed, load, point_duration);
      std::printf("%-10.0f %-12.1f %-12.2f %-12.2f %-12.2f\n", load, r.throughput_tps,
                  r.mean_latency_ms, r.p50_latency_ms, r.p99_latency_ms);
      (sync_mode ? sync_curve : async_curve).push_back({r.throughput_tps, r.mean_latency_ms});
      if (!bed.client().wait_flushed(seconds(60))) {
        std::fprintf(stderr, "flush backlog did not drain between points\n");
      }
    }
  }

  // Shape check: async below sync at comparable throughputs.
  std::printf("\n-- shape check --\n");
  int below = 0;
  const std::size_t n = std::min(async_curve.size(), sync_curve.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (async_curve[i].mean_ms < sync_curve[i].mean_ms) ++below;
  }
  std::printf("async response time below sync at %d/%zu offered loads %s\n", below, n,
              below >= static_cast<int>(n) - 1 ? "[OK]" : "[UNEXPECTED]");
  const double async_peak = async_curve.empty() ? 0 : async_curve.back().tps;
  const double sync_peak = sync_curve.empty() ? 0 : sync_curve.back().tps;
  std::printf("achieved peak throughput: async=%.1f tps, sync=%.1f tps %s\n", async_peak,
              sync_peak, async_peak >= sync_peak ? "[OK]" : "[UNEXPECTED]");
  return 0;
}
