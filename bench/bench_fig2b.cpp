// Figure 2(b) — "Overhead of Providing Reliability" (§4.3).
//
// The paper varies the heartbeat interval from 50 ms to 10 s with 50 client
// threads and two region servers and plots throughput and response time:
// very short intervals add contention on the synchronized tracking
// structures (FQ/FQ' at the client, the persist queue + WAL sync at the
// servers), very long intervals batch more tracking work per heartbeat; a
// good value lies in between.
//
// We additionally report the "tracking disabled" configuration (recovery
// middleware off) as the zero-overhead reference — §4.3's claim is that the
// overhead against this baseline is small at a sensible interval.
#include "bench/bench_common.h"

using namespace tfr;
using namespace tfr::bench;

namespace {

constexpr std::uint64_t kRows = 20'000;
constexpr int kRegions = 4;

DriverReport run_point(Testbed& bed, Micros duration) {
  WorkloadConfig w;
  w.num_rows = kRows;
  DriverConfig d;
  d.threads = 50;
  d.target_tps = 0;  // closed loop: measure capacity under contention
  d.duration = duration;
  YcsbDriver driver(bed, w, d);
  return driver.run();
}

}  // namespace

int main() {
  print_header("Figure 2(b): transaction tracking overheads",
               "throughput & response time vs heartbeat interval (50ms..10s), "
               "50 client threads, 2 region servers");

  const Micros point_duration = scaled(seconds(5));

  // Zero-overhead reference: no recovery middleware at all.
  double baseline_tps = 0;
  {
    TestbedConfig cfg = paper_config(2, false);
    cfg.enable_recovery = false;
    Testbed bed(cfg);
    if (auto s = prepare(bed, kRows, kRegions); !s.is_ok()) {
      std::fprintf(stderr, "prepare failed: %s\n", s.to_string().c_str());
      return 1;
    }
    const auto r = run_point(bed, point_duration);
    baseline_tps = r.throughput_tps;
    print_report_row("tracking disabled", r);
  }

  const Micros intervals[] = {millis(50),   millis(100),  millis(250), millis(500),
                              millis(1000), millis(2500), millis(5000), millis(10000)};

  Testbed bed(paper_config(2, false));
  if (auto s = prepare(bed, kRows, kRegions); !s.is_ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", s.to_string().c_str());
    return 1;
  }

  std::printf("\n%-14s %-12s %-12s %-12s\n", "interval_ms", "tps", "mean_ms", "p99_ms");
  double best_tps = 0;
  double tps_at_50ms = 0;
  for (const Micros interval : intervals) {
    if (auto s = bed.client().set_heartbeat_interval(interval); !s.is_ok()) {
      std::fprintf(stderr, "client interval change failed: %s\n", s.to_string().c_str());
      return 1;
    }
    for (int si = 0; si < bed.cluster().num_servers(); ++si) {
      if (auto s = bed.cluster().server(si).set_heartbeat_interval(interval); !s.is_ok()) {
        std::fprintf(stderr, "server interval change failed: %s\n", s.to_string().c_str());
        return 1;
      }
    }
    const auto r = run_point(bed, point_duration);
    std::printf("%-14lld %-12.1f %-12.2f %-12.2f\n",
                static_cast<long long>(interval / 1000), r.throughput_tps, r.mean_latency_ms,
                r.p99_latency_ms);
    best_tps = std::max(best_tps, r.throughput_tps);
    if (interval == millis(50)) tps_at_50ms = r.throughput_tps;
    if (!bed.client().wait_flushed(seconds(60))) {
      std::fprintf(stderr, "flush backlog did not drain between points\n");
    }
  }

  std::printf("\n-- shape check --\n");
  std::printf("best tracked throughput %.1f tps vs untracked baseline %.1f tps "
              "(overhead %.1f%%) %s\n",
              best_tps, baseline_tps, 100.0 * (baseline_tps - best_tps) / baseline_tps,
              best_tps > 0.85 * baseline_tps ? "[OK: overhead small]" : "[UNEXPECTED]");
  std::printf("50ms interval reaches %.1f%% of the best interval's throughput %s\n",
              100.0 * tps_at_50ms / best_tps,
              tps_at_50ms <= best_tps ? "[OK: short intervals cost]" : "[UNEXPECTED]");
  return 0;
}
