// bench_read — read-path microbenchmark over a single multi-store-file
// region, A/B in one run via the runtime read-path flags:
//
//   point get   pruned (bloom + key-range footer checks skip files that
//               cannot hold the row) vs unpruned (every file's candidate
//               block is fetched and decoded, the pre-v2 behaviour);
//   scan        streaming (heap-merged block iterators, stops decoding
//               after `limit` rows) vs legacy (materialize every version
//               of the whole range from every file, then merge).
//
// The region holds `kFiles` store files with interleaved row sets (row i
// lives in file i % kFiles), so a point get finds its row in exactly one
// file and pruning can skip the rest. Each mode is measured cold (cache
// cleared before every op, DFS block-read latency charged per fetch) and
// warm (second pass over the same keys).
//
// Emits BENCH_read.json with per-mode latencies, DFS block-read counts,
// pruning counters, cache stats, and the cold-cache speedups the issue
// gates on (>=2x point get, >=5x limit-bounded scan).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/metrics.h"
#include "src/kv/cell_iter.h"
#include "src/kv/region.h"

using namespace tfr;

namespace {

constexpr int kFiles = 8;
constexpr std::size_t kBlockBytes = 2048;
constexpr std::size_t kScanLimit = 10;

std::string row_key(std::uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%08llu", static_cast<unsigned long long>(i));
  return buf;
}

struct ModeReport {
  std::string mode;
  double cold_us = 0;   // mean latency, cache cleared before every op
  double warm_us = 0;   // mean latency, cache pre-warmed by the cold pass
  std::int64_t cold_dfs_reads = 0;
  std::int64_t warm_dfs_reads = 0;
};

class ReadBench {
 public:
  ReadBench(std::uint64_t rows, Micros dfs_read_latency)
      : rows_(rows),
        dfs_(DfsConfig{.sync_latency = 0,
                       .sync_jitter = 0,
                       .read_latency = dfs_read_latency,
                       .read_jitter = 0}),
        cache_(64ull << 20, /*num_shards=*/16),
        region_(RegionDescriptor{"usertable", "", ""}, dfs_, cache_, kBlockBytes) {}

  Status load() {
    TFR_RETURN_IF_ERROR(region_.load_store_files());
    region_.set_state(RegionState::kOnline);
    const std::string value(100, 'v');
    // File f holds rows {i : i % kFiles == f}: overlapping key ranges,
    // disjoint row sets — the bloom filter, not the range footer, is what
    // lets a point get skip kFiles-1 files.
    for (int f = 0; f < kFiles; ++f) {
      std::vector<Cell> cells;
      for (std::uint64_t i = f; i < rows_; i += kFiles) {
        cells.push_back(Cell{row_key(i), "field0", value,
                             static_cast<Timestamp>(f + 1), false});
      }
      if (!region_.apply(cells)) return Status::unavailable("load apply rejected");
      TFR_RETURN_IF_ERROR(region_.flush_memstore());
    }
    return Status::ok();
  }

  /// Mean latency of `ops` point gets over rotating rows. Cold mode clears
  /// the block cache before every op so each get pays full DFS latency.
  double time_gets(std::uint64_t ops, bool cold) {
    const Micros t0 = now_micros();
    for (std::uint64_t op = 0; op < ops; ++op) {
      if (cold) cache_.clear();
      // Stride through the keyspace so consecutive ops hit different blocks.
      const std::uint64_t i = (op * 97) % rows_;
      auto r = region_.get(row_key(i), "field0", kMaxTimestamp);
      if (!r.is_ok() || !r.value().has_value()) {
        std::fprintf(stderr, "get %llu failed\n", static_cast<unsigned long long>(i));
        std::exit(1);
      }
    }
    return static_cast<double>(now_micros() - t0) / static_cast<double>(ops);
  }

  /// Mean latency of `ops` limit-bounded scans starting at rotating rows.
  double time_scans(std::uint64_t ops, bool cold) {
    const Micros t0 = now_micros();
    for (std::uint64_t op = 0; op < ops; ++op) {
      if (cold) cache_.clear();
      const std::uint64_t start = (op * 131) % (rows_ - 2 * kScanLimit);
      auto r = region_.scan(row_key(start), "", kMaxTimestamp, kScanLimit);
      if (!r.is_ok() || r.value().size() != kScanLimit) {
        std::fprintf(stderr, "scan @%llu failed (%zu rows)\n",
                     static_cast<unsigned long long>(start),
                     r.is_ok() ? r.value().size() : 0);
        std::exit(1);
      }
    }
    return static_cast<double>(now_micros() - t0) / static_cast<double>(ops);
  }

  std::int64_t dfs_reads() const { return dfs_.stats().block_reads; }
  BlockCacheStats cache_stats() const { return cache_.stats(); }
  void clear_cache() { cache_.clear(); }

 private:
  std::uint64_t rows_;
  Dfs dfs_;
  BlockCache cache_;
  Region region_;
};

ModeReport run_mode(ReadBench& bench, const std::string& mode, bool pruned_or_streaming,
                    bool is_scan, std::uint64_t ops) {
  ReadPathFlags& flags = read_path_flags();
  flags.bloom_pruning.store(pruned_or_streaming);
  flags.range_pruning.store(pruned_or_streaming);
  flags.streaming_scan.store(pruned_or_streaming);

  ModeReport rep;
  rep.mode = mode;
  std::int64_t reads0 = bench.dfs_reads();
  rep.cold_us = is_scan ? bench.time_scans(ops, /*cold=*/true)
                        : bench.time_gets(ops, /*cold=*/true);
  rep.cold_dfs_reads = bench.dfs_reads() - reads0;

  // Warm pass: one untimed priming pass over the same keys, then measure.
  bench.clear_cache();
  if (is_scan) {
    (void)bench.time_scans(ops, /*cold=*/false);
  } else {
    (void)bench.time_gets(ops, /*cold=*/false);
  }
  reads0 = bench.dfs_reads();
  rep.warm_us = is_scan ? bench.time_scans(ops, /*cold=*/false)
                        : bench.time_gets(ops, /*cold=*/false);
  rep.warm_dfs_reads = bench.dfs_reads() - reads0;

  std::printf("%-18s  cold=%9.1fus (%6lld dfs reads)  warm=%9.1fus (%lld dfs reads)\n",
              rep.mode.c_str(), rep.cold_us, static_cast<long long>(rep.cold_dfs_reads),
              rep.warm_us, static_cast<long long>(rep.warm_dfs_reads));
  return rep;
}

void emit_mode(std::FILE* out, const ModeReport& r, const char* trailing) {
  std::fprintf(out, "    \"%s\": {\n", r.mode.c_str());
  std::fprintf(out, "      \"cold_us\": %.1f,\n", r.cold_us);
  std::fprintf(out, "      \"warm_us\": %.1f,\n", r.warm_us);
  std::fprintf(out, "      \"cold_dfs_reads\": %lld,\n",
               static_cast<long long>(r.cold_dfs_reads));
  std::fprintf(out, "      \"warm_dfs_reads\": %lld\n",
               static_cast<long long>(r.warm_dfs_reads));
  std::fprintf(out, "    }%s\n", trailing);
}

}  // namespace

int main() {
  bench::print_header("Streaming read path: pruned gets + limit-aware scans vs legacy",
                      "read hot path (store-file format v2, iterator merge)");
  const double scale = bench::bench_scale();
  const std::uint64_t rows = static_cast<std::uint64_t>(4096.0 * scale) + 128;
  const std::uint64_t get_ops = static_cast<std::uint64_t>(400.0 * scale) + 8;
  const std::uint64_t scan_ops = static_cast<std::uint64_t>(60.0 * scale) + 4;
  std::printf("# %llu rows across %d store files, %llu gets, %llu scans (limit=%zu)\n",
              static_cast<unsigned long long>(rows), kFiles,
              static_cast<unsigned long long>(get_ops),
              static_cast<unsigned long long>(scan_ops), kScanLimit);

  reset_global_counters();
  ReadBench bench(rows, /*dfs_read_latency=*/200);
  if (!bench.load().is_ok()) {
    std::fprintf(stderr, "region load failed\n");
    return 1;
  }

  const ModeReport get_unpruned = run_mode(bench, "get/unpruned", false, false, get_ops);
  const ModeReport get_pruned = run_mode(bench, "get/pruned", true, false, get_ops);
  const ModeReport scan_legacy = run_mode(bench, "scan/legacy", false, true, scan_ops);
  const ModeReport scan_streaming = run_mode(bench, "scan/streaming", true, true, scan_ops);

  // Restore the defaults for anything running after us in-process.
  read_path_flags().bloom_pruning.store(true);
  read_path_flags().range_pruning.store(true);
  read_path_flags().streaming_scan.store(true);

  const double get_speedup = get_pruned.cold_us > 0 ? get_unpruned.cold_us / get_pruned.cold_us : 0;
  const double scan_speedup =
      scan_streaming.cold_us > 0 ? scan_legacy.cold_us / scan_streaming.cold_us : 0;

  std::int64_t bloom_skips = 0, range_skips = 0;
  for (const auto& [name, value] : global_counter_snapshot()) {
    if (name == "kv.sf_bloom_skips") bloom_skips = value;
    if (name == "kv.sf_range_skips") range_skips = value;
  }
  const BlockCacheStats cache = bench.cache_stats();

  std::FILE* out = std::fopen("BENCH_read.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_read.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"read\",\n");
  std::fprintf(out, "  \"scale\": %.3f,\n", scale);
  std::fprintf(out, "  \"rows\": %llu,\n", static_cast<unsigned long long>(rows));
  std::fprintf(out, "  \"store_files\": %d,\n", kFiles);
  std::fprintf(out, "  \"scan_limit\": %zu,\n", kScanLimit);
  std::fprintf(out, "  \"point_get\": {\n");
  emit_mode(out, get_unpruned, ",");
  emit_mode(out, get_pruned, ",");
  std::fprintf(out, "    \"cold_speedup\": %.2f,\n", get_speedup);
  std::fprintf(out, "    \"warm_speedup\": %.2f\n",
               get_pruned.warm_us > 0 ? get_unpruned.warm_us / get_pruned.warm_us : 0);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"scan\": {\n");
  emit_mode(out, scan_legacy, ",");
  emit_mode(out, scan_streaming, ",");
  std::fprintf(out, "    \"cold_speedup\": %.2f,\n", scan_speedup);
  std::fprintf(out, "    \"warm_speedup\": %.2f\n",
               scan_streaming.warm_us > 0 ? scan_legacy.warm_us / scan_streaming.warm_us : 0);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"sf_bloom_skips\": %lld,\n", static_cast<long long>(bloom_skips));
  std::fprintf(out, "  \"sf_range_skips\": %lld,\n", static_cast<long long>(range_skips));
  std::fprintf(out, "  \"cache_hits\": %lld,\n", static_cast<long long>(cache.hits));
  std::fprintf(out, "  \"cache_misses\": %lld,\n", static_cast<long long>(cache.misses));
  std::fprintf(out, "  \"cache_evictions\": %lld\n", static_cast<long long>(cache.evictions));
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_read.json (point get %.2fx, limit scan %.2fx cold)\n", get_speedup,
              scan_speedup);

  if (get_speedup < 2.0) {
    std::fprintf(stderr, "WARNING: pruned point-get speedup %.2fx below the 2x target\n",
                 get_speedup);
  }
  if (scan_speedup < 5.0) {
    std::fprintf(stderr, "WARNING: streaming scan speedup %.2fx below the 5x target\n",
                 scan_speedup);
  }
  return 0;
}
