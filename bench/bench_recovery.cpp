// Recovery time vs retained log size — the payoff of bounded recovery.
//
// §3 bounds the replay work by the TF/TP thresholds; this PR's segmented
// TM-log GC additionally bounds the *retained* log (log.retained_txns
// plateaus). This bench draws the resulting curve: preload N committed
// transactions (N = base x {1, 3, 10}), crash a region server, and measure
// the three recovery phases separately —
//
//   detect  crash -> the master marks the server dead (session expiry)
//   split   the parallel WAL split (master.last_split_us)
//   replay  region reassignment + gate replay (master.last_replay_us)
//
// in two modes:
//
//   bounded    the paper's thresholds + segmented truncation (default):
//              the retained log and the replay work plateau, so recovery
//              time is flat in the preload.
//   unbounded  the legacy replay-the-whole-log ablation (ignore_thresholds,
//              which also disables checkpoint truncation): retained log and
//              recovery time grow linearly with the preload.
//
// Shape target: bounded recovery at 10x preload stays within ~2x of 1x,
// while unbounded degrades with the preload. Emits BENCH_recovery.json.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/metrics.h"

using namespace tfr;
using namespace tfr::bench;

namespace {

struct Point {
  int preload_txns = 0;
  bool bounded = true;
  std::int64_t retained_records = 0;  // TM-log records held at the crash
  std::int64_t log_segments = 0;
  std::int64_t gc_segments = 0;  // whole segments reclaimed before the crash
  std::int64_t replayed = 0;     // write-sets replayed by the gates
  double detect_ms = 0;
  double split_ms = 0;
  double replay_ms = 0;
  double total_ms = 0;  // crash -> every affected region recovered
};

Point run_point(bool bounded, int preload_txns) {
  TestbedConfig cfg = paper_config(2, false);
  // Moderate latencies and quick detection: the curve measures split/replay
  // work as a function of retained log size, not the heartbeat-expiry wait.
  cfg.cluster.dfs.sync_latency = 500;
  cfg.cluster.dfs.read_latency = 300;
  cfg.cluster.server.rpc_latency = 100;
  cfg.cluster.server.read_service = 50;
  cfg.cluster.server.write_service = 50;
  cfg.cluster.server.heartbeat_interval = millis(100);
  cfg.cluster.server.session_ttl = millis(400);
  cfg.client.heartbeat_interval = millis(100);
  cfg.client.session_ttl = millis(400);
  cfg.txn_log.sync_latency = 200;
  // Small segments so the preload spans many of them and GC has work to do.
  cfg.txn_log.segment_records = 256;
  cfg.recovery.poll_interval = millis(20);
  cfg.recovery.ignore_thresholds = !bounded;

  constexpr std::uint64_t kRows = 2'000;
  Testbed bed(cfg);
  if (auto s = prepare(bed, kRows, 4, 64); !s.is_ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", s.to_string().c_str());
    std::exit(1);
  }

  Rng rng(11);
  for (int i = 0; i < preload_txns; ++i) {
    Transaction txn = bed.client().begin("usertable");
    txn.put(Testbed::row_key(rng.next_below(kRows)), "field0", "v" + std::to_string(i));
    auto ts = txn.commit();
    if (!ts.is_ok()) --i;  // conflicts just retry
  }
  (void)bed.client().wait_flushed(seconds(120));
  // Let the poller publish the post-preload TP and truncate/GC behind it, so
  // the retained size we record is the steady state, not a sampling race.
  sleep_micros(cfg.recovery.poll_interval * 4);

  Point p;
  p.preload_txns = preload_txns;
  p.bounded = bounded;
  const auto log_stats = bed.tm().log().stats();
  p.retained_records = static_cast<std::int64_t>(log_stats.retained_records);
  p.log_segments = static_cast<std::int64_t>(log_stats.segments);
  p.gc_segments = static_cast<std::int64_t>(log_stats.gc_segments);

  const std::int64_t replayed_before = bed.rm().stats().writesets_replayed_server;
  const Micros t0 = now_micros();
  bed.crash_server(0);
  while (bed.master().live_servers().size() != 1) sleep_micros(200);
  p.detect_ms = static_cast<double>(now_micros() - t0) / 1e3;
  if (!bed.wait_server_recoveries(1, seconds(300))) {
    std::fprintf(stderr, "recovery did not complete\n");
    std::exit(1);
  }
  bed.wait_for_recovery();
  p.total_ms = static_cast<double>(now_micros() - t0) / 1e3;
  p.split_ms = static_cast<double>(global_gauge("master.last_split_us").get()) / 1e3;
  p.replay_ms = static_cast<double>(global_gauge("master.last_replay_us").get()) / 1e3;
  p.replayed = bed.rm().stats().writesets_replayed_server - replayed_before;
  return p;
}

}  // namespace

int main() {
  print_header("Recovery time vs retained log size (bounded vs unbounded)",
               "§3's bounded-replay motivation + segmented TM-log truncation");

  const int base = bench_scale() < 1.0 ? 150 : 400;
  const int multipliers[] = {1, 3, 10};

  std::printf("%-10s %-10s %-16s %-10s %-10s %-10s %-10s %-10s %-10s\n", "mode", "preload",
              "retained_txns", "segments", "gc_segs", "detect_ms", "split_ms", "replay_ms",
              "total_ms");
  std::vector<Point> points;
  double bounded_1x = 0, bounded_10x = 0, unbounded_10x = 0;
  for (const bool bounded : {true, false}) {
    for (const int m : multipliers) {
      const Point p = run_point(bounded, base * m);
      std::printf("%-10s %-10d %-16lld %-10lld %-10lld %-10.1f %-10.1f %-10.1f %-10.1f\n",
                  bounded ? "bounded" : "unbounded", p.preload_txns,
                  static_cast<long long>(p.retained_records),
                  static_cast<long long>(p.log_segments), static_cast<long long>(p.gc_segments),
                  p.detect_ms, p.split_ms, p.replay_ms, p.total_ms);
      points.push_back(p);
      if (bounded && m == 1) bounded_1x = p.total_ms;
      if (bounded && m == 10) bounded_10x = p.total_ms;
      if (!bounded && m == 10) unbounded_10x = p.total_ms;
    }
  }

  std::printf("\n-- shape check --\n");
  const double ratio = bounded_1x > 0 ? bounded_10x / bounded_1x : 0;
  std::printf("bounded total at 10x vs 1x preload: %.2fx %s\n", ratio,
              ratio <= 2.0 ? "[OK: recovery time plateaus]" : "[UNEXPECTED: grows with preload]");
  std::printf("unbounded total at 10x: %.1fms vs bounded %.1fms %s\n", unbounded_10x, bounded_10x,
              unbounded_10x >= bounded_10x ? "[OK]" : "[UNEXPECTED]");

  std::FILE* out = std::fopen("BENCH_recovery.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_recovery.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"recovery_curve\",\n");
  std::fprintf(out, "  \"base_preload_txns\": %d,\n", base);
  std::fprintf(out, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"preload_txns\": %d, \"retained_txns\": %lld, "
                 "\"segments\": %lld, \"gc_segments\": %lld, \"replayed\": %lld, "
                 "\"detect_ms\": %.2f, \"split_ms\": %.2f, \"replay_ms\": %.2f, "
                 "\"total_ms\": %.2f}%s\n",
                 p.bounded ? "bounded" : "unbounded", p.preload_txns,
                 static_cast<long long>(p.retained_records),
                 static_cast<long long>(p.log_segments), static_cast<long long>(p.gc_segments),
                 static_cast<long long>(p.replayed), p.detect_ms, p.split_ms, p.replay_ms,
                 p.total_ms, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"bounded_10x_over_1x\": %.3f\n", ratio);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_recovery.json\n");
  return 0;
}
