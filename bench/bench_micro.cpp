// Microbenchmarks (google-benchmark) for the hot paths of the system:
// recovery-log group commit, memstore MVCC operations, the Algorithm 1/3
// tracking structures, WAL appends, and store-file reads through the block
// cache. These back the "light-weight tracking" claim of §4.3 with numbers.
#include <benchmark/benchmark.h>

#include "src/common/random.h"
#include "src/kv/memstore.h"
#include "src/kv/store_file.h"
#include "src/kv/wal.h"
#include "src/recovery/flush_tracker.h"
#include "src/txn/txn_log.h"
#include "src/txn/txn_manager.h"

namespace tfr {
namespace {

WriteSet small_ws(Timestamp ts) {
  WriteSet ws;
  ws.txn_id = static_cast<std::uint64_t>(ts);
  ws.client_id = "bench";
  ws.commit_ts = ts;
  ws.table = "t";
  ws.mutations.push_back(Mutation{"row" + std::to_string(ts % 1000), "c",
                                  std::string(100, 'v'), false});
  return ws;
}

void BM_TxnLogAppend(benchmark::State& state) {
  TxnLog log(TxnLogConfig{});
  Timestamp ts = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.append(small_ws(++ts)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TxnLogAppend);

void BM_TxnManagerCommit(benchmark::State& state) {
  TxnManager tm(TxnLogConfig{});
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto txn = tm.begin(tm.current_ts());
    WriteSet ws;
    ws.table = "t";
    ws.mutations.push_back(Mutation{"r" + std::to_string(i++), "c", "v", false});
    benchmark::DoNotOptimize(tm.commit(txn, std::move(ws), nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TxnManagerCommit);

void BM_MemstoreApply(benchmark::State& state) {
  Memstore ms;
  Rng rng(1);
  Timestamp ts = 0;
  for (auto _ : state) {
    ms.apply(Cell{"row" + std::to_string(rng.next_below(10000)), "c", std::string(100, 'x'),
                  ++ts, false});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemstoreApply);

void BM_MemstoreGet(benchmark::State& state) {
  Memstore ms;
  for (Timestamp ts = 1; ts <= 10000; ++ts) {
    ms.apply(Cell{"row" + std::to_string(ts % 2000), "c", std::string(100, 'x'), ts, false});
  }
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ms.get("row" + std::to_string(rng.next_below(2000)), "c", kMaxTimestamp));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemstoreGet);

void BM_FlushTrackerCycle(benchmark::State& state) {
  FlushTracker tracker(0);
  Timestamp ts = 0;
  for (auto _ : state) {
    ++ts;
    tracker.on_commit_ts(ts);
    tracker.on_flushed(ts);
    if ((ts & 0xff) == 0) tracker.advance(kNoTimestamp);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlushTrackerCycle);

void BM_WalAppend(benchmark::State& state) {
  Dfs dfs{DfsConfig{}};
  auto wal = Wal::create(dfs, "/wal/bench.log").value();
  Timestamp ts = 0;
  WalRecord record;
  record.region = "t,";
  record.client_id = "bench";
  record.cells.push_back(Cell{"row", "c", std::string(100, 'x'), 1, false});
  for (auto _ : state) {
    record.commit_ts = ++ts;
    benchmark::DoNotOptimize(wal->append(record));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalAppend);

void BM_StoreFileGetCached(benchmark::State& state) {
  Dfs dfs{DfsConfig{}};
  BlockCache cache(64 << 20);
  StoreFileWriter writer(2048);
  for (int i = 0; i < 20000; ++i) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%06d", i);
    writer.add(Cell{row, "c", std::string(100, 'x'), 1, false});
  }
  (void)writer.finish(dfs, "/sf-bench");
  auto reader = StoreFileReader::open(dfs, "/sf-bench").value();
  Rng rng(3);
  for (auto _ : state) {
    char row[16];
    std::snprintf(row, sizeof(row), "row%06llu",
                  static_cast<unsigned long long>(rng.next_below(20000)));
    benchmark::DoNotOptimize(reader->get(cache, row, "c", kMaxTimestamp));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreFileGetCached);

void BM_ZipfianNext(benchmark::State& state) {
  Rng rng(4);
  ScrambledZipfianChooser chooser(1'000'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chooser.next(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfianNext);

void BM_GroupCommitUnderContention(benchmark::State& state) {
  static TxnLog* log = nullptr;
  if (state.thread_index() == 0) {
    TxnLogConfig cfg;
    cfg.sync_latency = 100;  // visible batching effect
    log = new TxnLog(cfg);
  }
  static std::atomic<Timestamp> ts{0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(log->append(small_ws(ts.fetch_add(1) + 1)));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete log;
    log = nullptr;
  }
}
BENCHMARK(BM_GroupCommitUnderContention)->Threads(1)->Threads(8)->Threads(32)->UseRealTime();

void BM_ShardedGroupCommit(benchmark::State& state) {
  // §4.1: the logging sub-component "can be distributed across several
  // nodes should one logging node not be sufficient". Lanes overlap their
  // stable-storage writes.
  static TxnLog* log = nullptr;
  if (state.thread_index() == 0) {
    TxnLogConfig cfg;
    cfg.sync_latency = 100;
    cfg.lanes = static_cast<int>(state.range(0));
    log = new TxnLog(cfg);
  }
  static std::atomic<Timestamp> ts{0};
  const std::string client = "bench-" + std::to_string(state.thread_index());
  for (auto _ : state) {
    WriteSet ws = small_ws(ts.fetch_add(1) + 1);
    ws.client_id = client;  // clients spread across lanes
    benchmark::DoNotOptimize(log->append(std::move(ws)));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete log;
    log = nullptr;
  }
}
BENCHMARK(BM_ShardedGroupCommit)->Args({1})->Args({4})->Threads(32)->UseRealTime();

}  // namespace
}  // namespace tfr

BENCHMARK_MAIN();
