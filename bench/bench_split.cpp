// Dynamic topology under a skewed workload (§9): a zipfian hot-key write
// stream lands on a table that starts as ONE region hosted by one of four
// servers. The master balancer must carry the cluster from that degenerate
// layout to a balanced one on its own — size-triggered splits as the store
// grows, then count/traffic moves to spread the daughters — while the
// workload keeps running through the fenced transitions (clients re-locate
// on NotServing/WrongEpoch).
//
// The bench asserts the end state, not a latency figure: at least one split
// happened, every live server ends up hosting at least one region, and the
// per-server region counts stay within a 2x max/min ratio. Emits
// BENCH_split.json (run_benches.sh folds it into BENCH_history.jsonl).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/metrics.h"
#include "src/common/random.h"
#include "src/kv/cluster.h"
#include "src/kv/kv_client.h"

using namespace tfr;

namespace {

constexpr int kServers = 4;
constexpr std::uint64_t kRows = 512;
constexpr int kWriters = 3;
constexpr std::size_t kValueBytes = 128;

std::string row_key(std::uint64_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "row%05llu", static_cast<unsigned long long>(i));
  return buf;
}

WriteSet make_ws(Timestamp ts, int writer, std::uint64_t key) {
  WriteSet ws;
  ws.txn_id = static_cast<std::uint64_t>(ts);
  ws.client_id = "bench-" + std::to_string(writer);
  ws.commit_ts = ts;
  ws.table = "t";
  ws.mutations.push_back(
      Mutation{row_key(key), "c", std::string(kValueBytes, 'v'), false});
  return ws;
}

std::map<std::string, int> per_server_regions(Master& master) {
  std::map<std::string, int> counts;
  for (const auto& id : master.live_servers()) counts[id] = 0;
  for (const auto& loc : master.table_regions("t")) counts[loc.server_id]++;
  return counts;
}

}  // namespace

int main() {
  reset_global_counters();

  ClusterConfig cfg;
  cfg.num_servers = kServers;
  cfg.coord_check_interval = millis(5);
  cfg.server.heartbeat_interval = millis(10);  // load reports ride heartbeats
  cfg.server.session_ttl = seconds(3);
  cfg.server.wal_sync_interval = millis(10);
  cfg.server.memstore_flush_bytes = 2048;  // flush often: splits need store files
  cfg.server.compaction_file_threshold = 4;
  cfg.balancer.interval = millis(5);
  cfg.balancer.split_store_bytes = 6 * 1024;
  cfg.balancer.move_load_ratio = 2.0;
  cfg.balancer.move_min_ops = 16;
  cfg.balancer.max_actions_per_tick = 2;
  cfg.balancer.balance_region_counts = true;  // merges stay off (thresholds 0)

  Cluster cluster(cfg);
  if (!cluster.start().is_ok() || !cluster.master().create_table("t", {}).is_ok()) {
    std::fprintf(stderr, "bench_split: cluster setup failed\n");
    return 1;
  }
  if (cluster.master().table_regions("t").size() != 1) {
    std::fprintf(stderr, "bench_split: table did not start as one region\n");
    return 1;
  }

  const int total_ws = std::max(200, static_cast<int>(3000 * bench::bench_scale()));
  std::printf("==============================================================\n");
  std::printf("Split bench: zipfian hot-key writes, 1 region -> balanced\n");
  std::printf("servers=%d  rows=%llu  write_sets=%d  writers=%d  scale=%.2f\n", kServers,
              static_cast<unsigned long long>(kRows), total_ws, kWriters,
              bench::bench_scale());
  std::printf("==============================================================\n");

  // Zipfian writers: every write-set lands through the normal routing path,
  // so fenced splits/moves mid-stream exercise the client re-locate loop.
  std::atomic<Timestamp> next_ts{1};
  std::atomic<int> remaining{total_ws};
  const Micros start = now_micros();
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(0x5eedULL + static_cast<std::uint64_t>(w));
      ZipfianChooser keys(kRows);
      KvClient client(cluster.master(), millis(1));
      client.set_client_id("bench-" + std::to_string(w));
      while (remaining.fetch_sub(1, std::memory_order_relaxed) > 0) {
        const Timestamp ts = next_ts.fetch_add(1, std::memory_order_relaxed);
        Status s = client.flush_writeset(make_ws(ts, w, keys.next(rng)));
        if (!s.is_ok()) {
          std::fprintf(stderr, "bench_split: flush_writeset failed: %s\n",
                       s.to_string().c_str());
          std::abort();
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  const double workload_ms = static_cast<double>(now_micros() - start) / 1e3;

  // Let the balancer drain its backlog: stable once a full second of ticks
  // changes neither the topology counters nor the region count.
  auto churn = [] {
    return global_counter("master.region_splits").get() +
           global_counter("master.region_merges").get() +
           global_counter("master.region_moves").get();
  };
  std::uint64_t last = churn();
  std::size_t last_regions = cluster.master().table_regions("t").size();
  int stable_polls = 0;
  for (int i = 0; i < 1000 && stable_polls < 50; ++i) {
    sleep_micros(millis(20));
    const std::uint64_t now = churn();
    const std::size_t regions = cluster.master().table_regions("t").size();
    if (now == last && regions == last_regions) {
      ++stable_polls;
    } else {
      stable_polls = 0;
      last = now;
      last_regions = regions;
    }
  }
  cluster.master().disable_balancer();

  const std::uint64_t splits = global_counter("master.region_splits").get();
  const std::uint64_t merges = global_counter("master.region_merges").get();
  const std::uint64_t moves = global_counter("master.region_moves").get();
  const auto counts = per_server_regions(cluster.master());
  int min_count = 1 << 30, max_count = 0;
  for (const auto& [id, n] : counts) {
    std::printf("  %-12s %d region(s)\n", id.c_str(), n);
    min_count = std::min(min_count, n);
    max_count = std::max(max_count, n);
  }
  const std::size_t regions = cluster.master().table_regions("t").size();
  std::printf("workload: %.1fms  splits=%llu merges=%llu moves=%llu  regions=%zu\n",
              workload_ms, static_cast<unsigned long long>(splits),
              static_cast<unsigned long long>(merges),
              static_cast<unsigned long long>(moves), regions);

  // End-state assertions: the whole point of the bench.
  bool ok = true;
  if (splits == 0) {
    std::fprintf(stderr, "bench_split: balancer never split the initial region\n");
    ok = false;
  }
  if (min_count < 1) {
    std::fprintf(stderr, "bench_split: a live server ended with zero regions\n");
    ok = false;
  }
  if (min_count >= 1 && max_count > 2 * min_count) {
    std::fprintf(stderr, "bench_split: unbalanced layout (max=%d min=%d)\n", max_count,
                 min_count);
    ok = false;
  }
  if (global_counter("master.wal_split_failures").get() != 0) {
    std::fprintf(stderr, "bench_split: WAL split failures during the run\n");
    ok = false;
  }
  std::printf("balance: max=%d min=%d -> %s\n", max_count, min_count,
              ok ? "BALANCED" : "FAILED");

  std::FILE* out = std::fopen("BENCH_split.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_split.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"split\",\n");
  std::fprintf(out, "  \"scale\": %.3f,\n", bench::bench_scale());
  std::fprintf(out, "  \"servers\": %d,\n", kServers);
  std::fprintf(out, "  \"write_sets\": %d,\n", total_ws);
  std::fprintf(out, "  \"workload_ms\": %.1f,\n", workload_ms);
  std::fprintf(out, "  \"splits\": %llu,\n", static_cast<unsigned long long>(splits));
  std::fprintf(out, "  \"merges\": %llu,\n", static_cast<unsigned long long>(merges));
  std::fprintf(out, "  \"moves\": %llu,\n", static_cast<unsigned long long>(moves));
  std::fprintf(out, "  \"final_regions\": %zu,\n", regions);
  std::fprintf(out, "  \"regions_per_server\": {");
  bool first = true;
  for (const auto& [id, n] : counts) {
    std::fprintf(out, "%s\"%s\": %d", first ? "" : ", ", id.c_str(), n);
    first = false;
  }
  std::fprintf(out, "},\n");
  std::fprintf(out, "  \"max_regions\": %d,\n", max_count);
  std::fprintf(out, "  \"min_regions\": %d,\n", min_count);
  std::fprintf(out, "  \"balanced\": %s\n", ok ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_split.json\n");
  return ok ? 0 : 1;
}
