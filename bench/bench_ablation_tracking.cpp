// Ablation A2 — threshold piggyback vs exact per-transaction reporting.
//
// §3.1: "the client could simply send to the recovery manager the commit
// timestamps of all transactions for which it has completely flushed the
// write-set ... However, that can incur considerable overhead in terms of
// message size. Instead, each client maintains a threshold timestamp TF(c)
// and sends this timestamp with its heartbeat messages."
//
// Part 1 replays identical commit/flush event streams through both
// reporters and compares heartbeat payload sizes across throughput and
// heartbeat-interval combinations (the threshold is 8 bytes regardless; the
// exact report grows with throughput x interval).
//
// Part 2 measures the CPU cost of the tracking hot path (the "synchronized
// data structures" of §4.3) at realistic event rates.
#include <algorithm>

#include "bench/bench_common.h"
#include "src/recovery/flush_tracker.h"

using namespace tfr;
using namespace tfr::bench;

int main() {
  print_header("Ablation A2: threshold piggyback vs exact flush reporting",
               "§3.1's message-size argument for TF(c)");

  std::printf("%-10s %-14s %-22s %-22s %-10s\n", "tps", "hb_interval", "exact_bytes_per_hb",
              "threshold_bytes_per_hb", "ratio");

  const double rates[] = {100, 250, 500, 1000};
  const Micros intervals[] = {millis(50), millis(1000), millis(10000)};
  double worst_ratio = 0;
  for (const double tps : rates) {
    for (const Micros interval : intervals) {
      // Number of flush completions that accumulate between heartbeats.
      const double per_hb = tps * static_cast<double>(interval) / 1e6;
      FlushTracker tracker(0);
      ExactFlushReporter exact;
      Timestamp ts = 0;
      std::size_t exact_bytes = 0;
      constexpr int kHeartbeats = 20;
      for (int hb = 0; hb < kHeartbeats; ++hb) {
        const int events = static_cast<int>(per_hb);
        for (int i = 0; i < events; ++i) {
          ++ts;
          tracker.on_commit_ts(ts);
          tracker.on_flushed(ts);
          exact.on_flushed(ts);
        }
        tracker.advance(kNoTimestamp);
        exact_bytes += ExactFlushReporter::payload_bytes(exact.drain());
      }
      const double exact_per_hb = static_cast<double>(exact_bytes) / kHeartbeats;
      const double threshold_per_hb = sizeof(Timestamp);  // one TF(c) value
      const double ratio = exact_per_hb / threshold_per_hb;
      worst_ratio = std::max(worst_ratio, ratio);
      std::printf("%-10.0f %-14lld %-22.1f %-22.1f %-10.1fx\n", tps,
                  static_cast<long long>(interval / 1000), exact_per_hb, threshold_per_hb,
                  ratio);
    }
  }

  std::printf("\n-- tracking hot-path cost (client-side Algorithm 1) --\n");
  {
    FlushTracker tracker(0);
    constexpr int kOps = 2'000'000;
    const Micros t0 = now_micros();
    for (Timestamp ts = 1; ts <= kOps; ++ts) {
      tracker.on_commit_ts(ts);
      tracker.on_flushed(ts);
      if (ts % 256 == 0) tracker.advance(kNoTimestamp);
    }
    tracker.advance(kNoTimestamp);
    const double ns_per_txn = static_cast<double>(now_micros() - t0) * 1000.0 / kOps;
    std::printf("FQ/FQ' commit+flush+amortized advance: %.0f ns/txn "
                "(%.2f us per 10-op transaction's tracking share)\n",
                ns_per_txn, ns_per_txn / 1000.0);
    std::printf("at 250 tps this is %.4f%% of one core [OK: lightweight]\n",
                250.0 * ns_per_txn / 1e9 * 100.0);
  }

  std::printf("\n-- shape check --\n");
  std::printf("exact reporting is up to %.0fx the threshold payload %s\n", worst_ratio,
              worst_ratio > 100 ? "[OK: threshold wins]" : "[UNEXPECTED]");
  return 0;
}
