// Workload characterization — beyond the paper's single transaction type:
// the six standard YCSB core mixes (transactionalized) plus the paper's
// 10-op 50/50 mix, all against the same 2-server deployment with
// asynchronous persistence. Not a figure from the paper; included so users
// can see how the system behaves across read/write/scan/insert ratios.
#include "bench/bench_common.h"

using namespace tfr;
using namespace tfr::bench;

int main() {
  print_header("Workload characterization (YCSB core mixes A-F + the paper's mix)",
               "supplementary: not a figure in the paper");

  constexpr std::uint64_t kRows = 20'000;
  Testbed bed(paper_config(2, false));
  if (auto s = prepare(bed, kRows, 4); !s.is_ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", s.to_string().c_str());
    return 1;
  }

  const Micros point_duration = scaled(seconds(5));
  struct Row {
    const char* name;
    WorkloadConfig cfg;
  };
  WorkloadConfig paper_mix;
  paper_mix.num_rows = kRows;
  std::vector<Row> rows = {
      {"paper (10 ops, 50/50 r/u)", paper_mix},
      {"A (update heavy, zipf)", ycsb_core_workload('a', kRows)},
      {"B (read mostly, zipf)", ycsb_core_workload('b', kRows)},
      {"C (read only, zipf)", ycsb_core_workload('c', kRows)},
      {"D (read latest, inserts)", ycsb_core_workload('d', kRows)},
      {"E (short scans, inserts)", ycsb_core_workload('e', kRows)},
      {"F (read-modify-write)", ycsb_core_workload('f', kRows)},
  };

  std::printf("%-28s %-10s %-10s %-10s %-10s\n", "workload", "tps", "mean_ms", "p99_ms",
              "aborts");
  double read_only_tps = 0, update_heavy_tps = 0;
  for (auto& row : rows) {
    DriverConfig d;
    d.threads = 50;
    d.duration = point_duration;
    YcsbDriver driver(bed, row.cfg, d);
    const auto r = driver.run();
    std::printf("%-28s %-10.1f %-10.2f %-10.2f %-10llu\n", row.name, r.throughput_tps,
                r.mean_latency_ms, r.p99_latency_ms,
                static_cast<unsigned long long>(r.aborted));
    if (std::string(row.name).front() == 'C') read_only_tps = r.throughput_tps;
    if (std::string(row.name).front() == 'A') update_heavy_tps = r.throughput_tps;
    if (!bed.client().wait_flushed(seconds(120))) {
      std::fprintf(stderr, "flush backlog did not drain after %s\n", row.name);
    }
  }

  std::printf("\n-- shape check --\n");
  std::printf("read-only (C) outruns update-heavy (A): %.1f vs %.1f tps %s\n", read_only_tps,
              update_heavy_tps,
              read_only_tps > update_heavy_tps ? "[OK: commits cost a log write]"
                                               : "[UNEXPECTED]");
  return 0;
}
