// Failover availability — the write-unavailability window across a fenced
// takeover. A probe client flushes single-row write-sets in a tight loop
// against a region whose server is crash-failed mid-run; flush_writeset
// retries until the fenced reassignment brings the region back, so the one
// probe that straddles the outage measures it end to end:
//
//   crash ──> session expiry (TTL) ──> epoch bump + WAL fence/split ──>
//   reassignment + replay ──> probe ack
//
// Reported per trial: crash-to-detection (master sees the expiry) and
// crash-to-restore (first acked write under the new epoch), plus the
// longest single probe stall. Emits BENCH_failover.json alongside the
// human-readable report so the perf trajectory can be tracked run to run.
//
// bench_recovery.cpp extends this measurement into the full recovery-time
// vs retained-log-size curve (preload sweep, detect/split/replay phase
// breakdown, bounded vs unbounded log) — see BENCH_recovery.json.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/kv/cluster.h"
#include "src/kv/kv_client.h"

using namespace tfr;

namespace {

constexpr int kTrials = 5;
constexpr Micros kHeartbeat = millis(20);
constexpr Micros kSessionTtl = millis(100);

struct Trial {
  double detect_ms = 0;   // crash -> master marks the server dead
  double restore_ms = 0;  // crash -> first acked write on the new owner
  double stall_ms = 0;    // longest single probe flush
  std::uint64_t epoch = 0;  // region epoch after the takeover (1 before)
};

WriteSet probe_ws(Timestamp ts, const std::string& row) {
  WriteSet ws;
  ws.txn_id = static_cast<std::uint64_t>(ts);
  ws.client_id = "probe";
  ws.commit_ts = ts;
  ws.table = "t";
  ws.mutations.push_back(Mutation{row, "c", "v" + std::to_string(ts), false});
  return ws;
}

Trial run_trial() {
  ClusterConfig cfg;
  cfg.num_servers = 2;
  cfg.coord_check_interval = millis(5);
  cfg.server.heartbeat_interval = kHeartbeat;
  cfg.server.session_ttl = kSessionTtl;
  cfg.server.wal_sync_interval = millis(10);
  Cluster cluster(cfg);
  if (!cluster.start().is_ok() || !cluster.master().create_table("t", {"m"}).is_ok()) {
    std::fprintf(stderr, "trial setup failed\n");
    return {};
  }

  // Probe the region hosted by the server we are about to crash.
  const std::string victim = cluster.server(0).id();
  const std::string row =
      cluster.master().locate("t", "apple").value().server_id == victim ? "apple" : "zebra";
  const std::string region = cluster.master().locate("t", row).value().region_name;

  KvClient client(cluster.master(), millis(1));
  client.set_client_id("probe");
  Timestamp ts = 1;
  (void)client.flush_writeset(probe_ws(ts++, row));  // warm the route

  // Watcher: timestamps the master's failure detection.
  std::atomic<Micros> crash_at{0};
  std::atomic<Micros> detected_at{0};
  std::thread watcher([&] {
    while (crash_at.load(std::memory_order_acquire) == 0) sleep_micros(200);
    while (cluster.master().live_servers().size() != 1) sleep_micros(200);
    detected_at.store(now_micros(), std::memory_order_release);
  });

  Trial t;
  const Micros bench_start = now_micros();
  Micros restored_at = 0;
  while (true) {
    const Micros t0 = now_micros();
    if (crash_at.load(std::memory_order_acquire) == 0 && t0 - bench_start > millis(30)) {
      cluster.crash_server(0);
      crash_at.store(now_micros(), std::memory_order_release);
    }
    (void)client.flush_writeset(probe_ws(ts++, row));
    const Micros t1 = now_micros();
    t.stall_ms = std::max(t.stall_ms, static_cast<double>(t1 - t0) / 1e3);
    if (crash_at.load(std::memory_order_acquire) != 0) {
      // First ack after the crash necessarily ran against the new owner
      // (the old one is dead), i.e. under the bumped epoch.
      restored_at = t1;
      break;
    }
  }
  watcher.join();
  cluster.master().wait_for_idle();
  t.detect_ms = static_cast<double>(detected_at.load() - crash_at.load()) / 1e3;
  t.restore_ms = static_cast<double>(restored_at - crash_at.load()) / 1e3;
  t.epoch = cluster.master().region_epoch(region);
  return t;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Failover bench: write-unavailability across a fenced takeover\n");
  std::printf("heartbeat=%lldms  session_ttl=%lldms  trials=%d\n",
              static_cast<long long>(kHeartbeat / 1000),
              static_cast<long long>(kSessionTtl / 1000), kTrials);
  std::printf("==============================================================\n");

  std::vector<Trial> trials;
  for (int i = 0; i < kTrials; ++i) {
    const Trial t = run_trial();
    std::printf("trial %d: detect=%7.1fms  restore=%7.1fms  max_stall=%7.1fms  epoch=%llu %s\n",
                i + 1, t.detect_ms, t.restore_ms, t.stall_ms,
                static_cast<unsigned long long>(t.epoch),
                t.epoch >= 2 ? "[fenced]" : "[UNEXPECTED: epoch not bumped]");
    trials.push_back(t);
  }

  auto mean = [&](double Trial::*f) {
    double s = 0;
    for (const auto& t : trials) s += t.*f;
    return s / static_cast<double>(trials.size());
  };
  const double detect = mean(&Trial::detect_ms);
  const double restore = mean(&Trial::restore_ms);
  const double stall = mean(&Trial::stall_ms);
  std::printf("\nmean: detect=%.1fms  restore=%.1fms  max_stall=%.1fms\n", detect, restore, stall);
  std::printf("(detection is bounded below by the session TTL; restore adds the epoch\n");
  std::printf(" bump, WAL fence + split, reassignment, and replay.)\n");

  std::FILE* out = std::fopen("BENCH_failover.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_failover.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"failover\",\n");
  std::fprintf(out, "  \"heartbeat_ms\": %lld,\n", static_cast<long long>(kHeartbeat / 1000));
  std::fprintf(out, "  \"session_ttl_ms\": %lld,\n", static_cast<long long>(kSessionTtl / 1000));
  std::fprintf(out, "  \"trials\": [\n");
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const Trial& t = trials[i];
    std::fprintf(out,
                 "    {\"detect_ms\": %.2f, \"restore_ms\": %.2f, \"max_stall_ms\": %.2f, "
                 "\"epoch_after\": %llu}%s\n",
                 t.detect_ms, t.restore_ms, t.stall_ms,
                 static_cast<unsigned long long>(t.epoch),
                 i + 1 < trials.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"mean_detect_ms\": %.2f,\n", detect);
  std::fprintf(out, "  \"mean_restore_ms\": %.2f,\n", restore);
  std::fprintf(out, "  \"mean_max_stall_ms\": %.2f\n", stall);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_failover.json\n");
  return 0;
}
