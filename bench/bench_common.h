// Shared configuration and reporting helpers for the paper-reproduction
// benchmarks (Figures 2(a), 2(b), 3 and the ablations).
//
// The latency model stands in for the paper's testbed (Dell R310 quad-cores,
// 100 Mbps Ethernet, HDFS datanodes co-located with region servers, a
// dedicated logging node). Absolute numbers are not comparable — the shapes
// are what we reproduce (see EXPERIMENTS.md):
//
//   rpc_latency    ~0.3 ms  one network hop + RPC handling
//   dfs sync       ~2.5 ms  WAL hflush through the replication pipeline
//   dfs block read ~2.0 ms  store-file block fetch on a cache miss
//   log sync       ~1.2 ms  TM recovery-log group-commit stable write
//   read/write svc ~0.4 ms  server CPU per operation (2-core VMs)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/testbed/testbed.h"
#include "src/ycsb/driver.h"

namespace tfr::bench {

/// Paper-like testbed configuration. `sync_persistence` selects the
/// Figure 2(a) baseline (per-update durability at the store).
inline TestbedConfig paper_config(int servers = 2, bool sync_persistence = false) {
  TestbedConfig cfg;
  cfg.cluster.num_servers = servers;
  cfg.cluster.coord_check_interval = millis(50);

  cfg.cluster.dfs.num_datanodes = servers;
  cfg.cluster.dfs.replication = 2;  // as in §4.1
  cfg.cluster.dfs.sync_latency = 2500;
  cfg.cluster.dfs.sync_jitter = 500;
  cfg.cluster.dfs.read_latency = 2000;
  cfg.cluster.dfs.read_jitter = 400;

  cfg.cluster.server.handler_slots = 4;
  cfg.cluster.server.network_mbps = 100;  // the paper's Ethernet
  cfg.cluster.server.rpc_latency = 300;
  cfg.cluster.server.rpc_jitter = 100;
  cfg.cluster.server.read_service = 400;
  cfg.cluster.server.write_service = 400;
  cfg.cluster.server.wal_sync_interval = millis(50);
  cfg.cluster.server.sync_wal_on_write = sync_persistence;
  cfg.cluster.server.store_block_bytes = 2048;
  cfg.cluster.server.heartbeat_interval = seconds(1);
  cfg.cluster.server.session_ttl = seconds(3);

  cfg.txn_log.sync_latency = 1200;
  cfg.txn_log.sync_jitter = 300;

  cfg.client.heartbeat_interval = seconds(1);
  cfg.client.session_ttl = seconds(3);
  // The paper's TM assigns snapshots itself; reading at the published TF
  // (kStable) would couple snapshot freshness — and hence the SI conflict
  // rate — to the heartbeat interval, which is not the effect under test.
  cfg.client.snapshot = SnapshotMode::kLatest;
  cfg.client.sync_commit = sync_persistence;
  cfg.client.flusher_threads = 8;
  cfg.client.flush_backoff = millis(2);

  cfg.recovery.poll_interval = millis(100);
  return cfg;
}

/// Benchmarks honour TFR_BENCH_SCALE (0 < scale <= 1) to shrink run times
/// for smoke runs; default 1.0 = the durations quoted in EXPERIMENTS.md.
inline double bench_scale() {
  if (const char* s = std::getenv("TFR_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.01 && v <= 1.0) return v;
  }
  return 1.0;
}

inline Micros scaled(Micros duration) {
  return static_cast<Micros>(static_cast<double>(duration) * bench_scale());
}

/// Bring up a testbed with a loaded, flushed, cache-warm `usertable`, as the
/// paper does before every experiment (§4.1).
inline Status prepare(Testbed& bed, std::uint64_t rows, int regions,
                      std::size_t value_size = 100) {
  TFR_RETURN_IF_ERROR(bed.start());
  TFR_RETURN_IF_ERROR(bed.create_table("usertable", rows, regions));
  std::fprintf(stderr, "# loading %llu rows...\n", static_cast<unsigned long long>(rows));
  TFR_RETURN_IF_ERROR(bed.load_rows("usertable", rows, value_size));
  TFR_RETURN_IF_ERROR(bed.flush_all_memstores());
  std::fprintf(stderr, "# warming block caches...\n");
  TFR_RETURN_IF_ERROR(bed.warm_cache("usertable", rows));
  return Status::ok();
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

inline void print_report_row(const char* label, const DriverReport& r) {
  std::printf("%-28s  tps=%8.1f  mean=%7.2fms  p50=%7.2fms  p99=%7.2fms  "
              "commits=%llu aborts=%llu errors=%llu\n",
              label, r.throughput_tps, r.mean_latency_ms, r.p50_latency_ms, r.p99_latency_ms,
              static_cast<unsigned long long>(r.committed),
              static_cast<unsigned long long>(r.aborted),
              static_cast<unsigned long long>(r.errors));
}

}  // namespace tfr::bench
