#!/usr/bin/env bash
# Lint gate, in two halves:
#
#  1. clang-tidy (see .clang-tidy for the check set) — runs only when a
#     clang-tidy binary is on PATH, since the reference container ships gcc
#     only. Needs a compile_commands.json; any build dir will do.
#  2. Tree-invariant greps that always run, gcc or not:
#       - no raw std synchronization primitives outside annotations.h (all
#         locking must go through the annotated tfr::Mutex wrappers so the
#         lock-rank validator and clang TSA see every acquisition);
#       - no naked sleep_for outside the simulated clock and tests (retry
#         loops must use backoff.h, and prod code sleeps via clock.h so
#         latency injection stays honest).
#
# Registered with ctest as the `lint` test; also reachable as
# `scripts/check.sh lint`.
set -uo pipefail
cd "$(dirname "$0")/.."

fail=0

# ---- half 1: clang-tidy, when available --------------------------------
if command -v clang-tidy > /dev/null 2>&1; then
  CDB=""
  for d in build build-analyze build-asan build-tsan; do
    [ -f "$d/compile_commands.json" ] && CDB="$d" && break
  done
  if [ -z "$CDB" ]; then
    echo "lint: clang-tidy found but no compile_commands.json; configure a build first" >&2
    fail=1
  else
    echo "lint: running clang-tidy (compile db: $CDB)"
    # shellcheck disable=SC2046
    if ! clang-tidy -p "$CDB" --quiet $(find src -name '*.cpp' | sort); then
      fail=1
    fi
  fi
else
  echo "lint: clang-tidy not installed; skipping the tidy half (greps still run)"
fi

# ---- half 2: grep-enforced tree invariants -----------------------------
viol=$(grep -rn --include='*.h' --include='*.cpp' -E \
  'std::(mutex|shared_mutex|recursive_mutex|timed_mutex|condition_variable|lock_guard|unique_lock|shared_lock|scoped_lock)\b' \
  src/ | grep -v '^src/common/annotations\.' || true)
if [ -n "$viol" ]; then
  echo "lint: raw std synchronization primitive outside src/common/annotations.h —" >&2
  echo "      use tfr::Mutex / tfr::MutexLock / tfr::CondVar instead:" >&2
  echo "$viol" >&2
  fail=1
fi

viol=$(grep -rn --include='*.h' --include='*.cpp' 'std::this_thread::sleep_for' \
  src/ | grep -v '^src/common/clock\.h' || true)
if [ -n "$viol" ]; then
  echo "lint: naked std::this_thread::sleep_for outside src/common/clock.h —" >&2
  echo "      sleep via tfr::sleep_micros, and retry via backoff.h:" >&2
  echo "$viol" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "lint FAILED" >&2
  exit 1
fi
echo "lint OK"
