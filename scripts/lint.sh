#!/usr/bin/env bash
# Lint gate, in three halves:
#
#  1. clang-tidy (see .clang-tidy for the check set) — runs only when a
#     clang-tidy binary is on PATH, since the reference container ships gcc
#     only. Needs a compile_commands.json; any build dir will do.
#  2. The blocking-call-under-lock check: clang-query over the TFR_BLOCKING
#     annotate attributes when clang-query is installed, else the documented
#     grep fallback scripts/check_blocking.py (see TESTING.md). Deliberate
#     sites are suppressed in place with `// tfr-lint: blocking-ok(<reason>)`.
#  3. Tree-invariant greps that always run, gcc or not:
#       - no raw std synchronization primitives outside annotations.h (all
#         locking must go through the annotated tfr::Mutex wrappers so the
#         lock-rank validator and clang TSA see every acquisition);
#       - no naked sleep_for outside the simulated clock and tests (retry
#         loops must use backoff.h, and prod code sleeps via clock.h so
#         latency injection stays honest);
#       - no `(void)call()` discards in src/ — dropping a Status needs
#         TFR_IGNORE_STATUS(expr, "why") so every discard carries its
#         justification and is greppable;
#       - no runtime-ranked tfr::Mutex declarations in src/ — mutexes
#         declare their rank in the type (RankedMutex<LockRank::kX>) so the
#         compile-time ordering check sees them.
#
# Registered with ctest as the `lint` test; also reachable as
# `scripts/check.sh lint`.
set -uo pipefail
cd "$(dirname "$0")/.."

fail=0

# ---- half 1: clang-tidy, when available --------------------------------
if command -v clang-tidy > /dev/null 2>&1; then
  CDB=""
  for d in build build-analyze build-asan build-ubsan build-asan-ubsan build-tsan; do
    [ -f "$d/compile_commands.json" ] && CDB="$d" && break
  done
  if [ -z "$CDB" ]; then
    echo "lint: clang-tidy found but no compile_commands.json; configure a build first" >&2
    fail=1
  else
    echo "lint: running clang-tidy (compile db: $CDB)"
    # shellcheck disable=SC2046
    if ! clang-tidy -p "$CDB" --quiet $(find src -name '*.cpp' | sort); then
      fail=1
    fi
  fi
else
  echo "lint: clang-tidy not installed; skipping the tidy half (greps still run)"
fi

# ---- half 2: blocking calls under a lock -------------------------------
if command -v clang-query > /dev/null 2>&1; then
  CDB=""
  for d in build build-analyze build-asan build-ubsan build-asan-ubsan build-tsan; do
    [ -f "$d/compile_commands.json" ] && CDB="$d" && break
  done
  if [ -n "$CDB" ]; then
    echo "lint: running clang-query blocking-under-lock check (compile db: $CDB)"
    # shellcheck disable=SC2046
    out=$(clang-query -f scripts/blocking_under_lock.query -p "$CDB" \
            $(find src -name '*.cpp' | sort) 2>&1)
    # Filter matches whose source line (or the comment block above it)
    # carries a blocking-ok suppression; clang-query prints "file:line:col:".
    viol=$(echo "$out" | grep -E '^[^ ]+\.(cpp|h):[0-9]+:[0-9]+:' | while IFS=: read -r f l _; do
      ok=0
      j="$l"
      if sed -n "${l}p" "$f" | grep -q 'tfr-lint: blocking-ok('; then ok=1; fi
      while [ "$ok" -eq 0 ] && [ "$j" -gt 1 ]; do
        j=$((j - 1))
        line=$(sed -n "${j}p" "$f")
        case "$line" in
          *'tfr-lint: blocking-ok('*) ok=1 ;;
          [[:space:]]*//*|//*) continue ;;
          *) break ;;
        esac
      done
      [ "$ok" -eq 0 ] && echo "$f:$l: blocking call under a lock (clang-query)"
    done || true)
    if [ -n "$viol" ]; then
      echo "lint: blocking call while a tfr lock guard is live — drop the lock or" >&2
      echo "      annotate the site with // tfr-lint: blocking-ok(<reason>):" >&2
      echo "$viol" >&2
      fail=1
    fi
  else
    echo "lint: clang-query found but no compile_commands.json; using grep fallback"
    if ! python3 scripts/check_blocking.py; then fail=1; fi
  fi
else
  echo "lint: clang-query not installed; using grep fallback scripts/check_blocking.py"
  if ! python3 scripts/check_blocking.py; then fail=1; fi
fi

# ---- half 3: grep-enforced tree invariants -----------------------------
viol=$(grep -rn --include='*.h' --include='*.cpp' -E \
  'std::(mutex|shared_mutex|recursive_mutex|timed_mutex|condition_variable|lock_guard|unique_lock|shared_lock|scoped_lock)\b' \
  src/ | grep -v '^src/common/annotations\.' || true)
if [ -n "$viol" ]; then
  echo "lint: raw std synchronization primitive outside src/common/annotations.h —" >&2
  echo "      use tfr::Mutex / tfr::MutexLock / tfr::CondVar instead:" >&2
  echo "$viol" >&2
  fail=1
fi

viol=$(grep -rn --include='*.h' --include='*.cpp' 'std::this_thread::sleep_for' \
  src/ | grep -v '^src/common/clock\.h' || true)
if [ -n "$viol" ]; then
  echo "lint: naked std::this_thread::sleep_for outside src/common/clock.h —" >&2
  echo "      sleep via tfr::sleep_micros, and retry via backoff.h:" >&2
  echo "$viol" >&2
  fail=1
fi

# A `(void)func(...)` cast silently discards a [[nodiscard]] Status/Result.
# The sanctioned discard is TFR_IGNORE_STATUS(expr, "one-line why").
viol=$(grep -rn --include='*.h' --include='*.cpp' -E \
  '\(void\) *[A-Za-z_][A-Za-z0-9_:.]*(->[A-Za-z0-9_]+)*\(' src/ \
  | grep -vE ':[0-9]+: *(//|\*)' || true)
if [ -n "$viol" ]; then
  echo "lint: raw (void) cast of a call expression in src/ — if the return is a" >&2
  echo "      Status/Result, handle it or use TFR_IGNORE_STATUS(expr, \"why\"):" >&2
  echo "$viol" >&2
  fail=1
fi

# Mutex ranks live in the type: RankedMutex<LockRank::kX> / RankedSharedMutex.
# A runtime-rank construction bypasses the compile-time table check.
viol=$(grep -rn --include='*.h' --include='*.cpp' -E \
  '\b(Mutex|SharedMutex) +[A-Za-z_][A-Za-z0-9_]* *\{ *LockRank::' src/ \
  | grep -v '^src/common/annotations\.h' || true)
if [ -n "$viol" ]; then
  echo "lint: runtime-ranked Mutex declaration in src/ — declare the rank in the" >&2
  echo "      type instead: RankedMutex<LockRank::kX> name{\"doc-name\"};" >&2
  echo "$viol" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "lint FAILED" >&2
  exit 1
fi
echo "lint OK"
