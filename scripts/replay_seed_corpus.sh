#!/usr/bin/env bash
# Replay every pinned schedule in tests/integration/seed_corpus.txt against
# the chaos-soak / zombie-partition suites — the regression gate for seeds
# that have actually failed in the past (see the corpus header for the
# add-a-seed workflow).
#
# Usage: scripts/replay_seed_corpus.sh <integration_tests-binary> [corpus]
# Wired into ctest as the `seed_corpus` test (tests/CMakeLists.txt).
set -euo pipefail

BIN="${1:?usage: replay_seed_corpus.sh <integration_tests-binary> [corpus]}"
CORPUS="${2:-$(dirname "$0")/../tests/integration/seed_corpus.txt}"
if [ ! -x "$BIN" ]; then
  echo "replay_seed_corpus: '$BIN' is not an executable test binary" >&2
  exit 2
fi
if [ ! -f "$CORPUS" ]; then
  echo "replay_seed_corpus: corpus '$CORPUS' not found" >&2
  exit 2
fi

ran=0
while read -r kind seed _; do
  case "$kind" in
    "" | \#*) continue ;;
    chaos) filter='Seeds/ChaosSoakTest.CommittedTransactionsSurviveGrayFailuresAndCrashes/0' ;;
    zombie) filter='Seeds/ZombiePartitionTest.FencedTakeoverLeavesNoStaleWritesVisible/0' ;;
    cascade) filter='Seeds/CascadeSoakTest.SecondFailureDuringRecoveryNeverLosesGcdWriteSets/0' ;;
    split) filter='Seeds/SplitSoakTest.TopologyChurnDuringFailuresKeepsInvariants/0' ;;
    *)
      echo "replay_seed_corpus: unknown kind '$kind' in $CORPUS (use chaos|zombie|cascade|split)" >&2
      exit 2
      ;;
  esac
  if ! [[ $seed =~ ^[0-9]+$ ]]; then
    echo "replay_seed_corpus: bad seed '$seed' for kind '$kind' in $CORPUS" >&2
    exit 2
  fi
  echo "### replaying $kind seed $seed"
  TFR_CHAOS_SEED="$seed" "$BIN" --gtest_filter="$filter"
  ran=$((ran + 1))
done < "$CORPUS"

if [ "$ran" -eq 0 ]; then
  echo "replay_seed_corpus: corpus '$CORPUS' contains no schedules" >&2
  exit 2
fi
echo "seed corpus OK ($ran schedules)"
