#!/usr/bin/env bash
# Negative-fixture harness for the tfr-lint gates (the `lint_fixtures`
# ctest). Each file in tests/lint_fixtures/ seeds exactly one violation; this
# script proves the gates still catch them:
#
#   * ignored_status.cpp       must FAIL to compile (-Werror=unused-result)
#   * static_rank_inversion.cpp must FAIL to compile (AcquireToken static_assert)
#   * blocking_under_lock.cpp  must compile, then be FLAGGED by the static
#                              blocking-under-lock pass
#   * control_ok.cpp           must compile clean and pass the pass — guards
#                              against gates that reject everything
#
# Uses whatever C++ compiler the build would (TFR_CXX, then c++), with the
# same flags that matter to the fixtures. Exit 0 iff every expectation holds.
set -uo pipefail
cd "$(dirname "$0")/.."

CXX="${TFR_CXX:-c++}"
FLAGS=(-std=c++20 -I. -fsyntax-only -Wall -Wextra -Werror=unused-result)
FIX=tests/lint_fixtures
fail=0

expect_compile_fail() {
  local f="$1"
  if "$CXX" "${FLAGS[@]}" "$FIX/$f" 2> /dev/null; then
    echo "lint_fixtures: $f COMPILED but must be rejected" >&2
    fail=1
  else
    echo "lint_fixtures: $f rejected by the compiler, as expected"
  fi
}

expect_compile_ok() {
  local f="$1"
  if ! "$CXX" "${FLAGS[@]}" "$FIX/$f"; then
    echo "lint_fixtures: $f must compile clean but did not" >&2
    fail=1
  else
    echo "lint_fixtures: $f compiles clean, as expected"
  fi
}

expect_compile_fail ignored_status.cpp
expect_compile_fail static_rank_inversion.cpp
expect_compile_ok blocking_under_lock.cpp
expect_compile_ok control_ok.cpp

# Stage each scan fixture in an isolated tree so check_blocking.py sees only
# it; the headers it includes are not scanned (they live outside the stage).
stage=$(mktemp -d)
trap 'rm -rf "$stage"' EXIT

mkdir -p "$stage/src"
cp "$FIX/blocking_under_lock.cpp" "$stage/src/"
if python3 scripts/check_blocking.py "$stage" > /dev/null 2>&1; then
  echo "lint_fixtures: blocking_under_lock.cpp passed the blocking scan but must be flagged" >&2
  fail=1
else
  echo "lint_fixtures: blocking_under_lock.cpp flagged by the blocking scan, as expected"
fi

rm -f "$stage/src/blocking_under_lock.cpp"
cp "$FIX/control_ok.cpp" "$stage/src/"
if ! python3 scripts/check_blocking.py "$stage"; then
  echo "lint_fixtures: control_ok.cpp flagged by the blocking scan but must pass" >&2
  fail=1
else
  echo "lint_fixtures: control_ok.cpp passes the blocking scan, as expected"
fi

if [ "$fail" -ne 0 ]; then
  echo "lint_fixtures FAILED" >&2
  exit 1
fi
echo "lint_fixtures OK"
