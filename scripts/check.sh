#!/usr/bin/env bash
# One-shot correctness gate: configure, build, and run the full test suite —
# optionally under a sanitizer — plus static-analysis entry points.
#
# Usage:
#   scripts/check.sh                     # plain RelWithDebInfo build + ctest
#   scripts/check.sh analyze             # negative fixtures + clang TSA build
#   scripts/check.sh lint                # scripts/lint.sh + negative fixtures
#   scripts/check.sh sanitize            # ASan+UBSan build + full ctest
#   scripts/check.sh soak-partition      # 10-seed zombie-server partition soak
#   scripts/check.sh soak-recovery       # 20-seed cascading-failure soak
#   scripts/check.sh soak-split          # 20-seed topology-churn soak
#   scripts/check.sh bench-smoke         # ~5 s bench_commit A/B smoke run
#   TFR_SANITIZE=address scripts/check.sh
#   TFR_SANITIZE=thread  scripts/check.sh
#   TFR_SANITIZE=address,undefined scripts/check.sh   # what `sanitize` runs
#   TFR_CXX=clang++ TFR_SANITIZE=thread scripts/check.sh   # TSan under clang
#   TFR_CXX=clang++ scripts/check.sh soak-partition        # soak under TSan
#
# TFR_CXX selects the compiler (default: the system default, gcc on the
# reference machine). Each sanitizer/compiler combination gets its own build
# directory (build-asan, build-tsan-clang, ...) so switching back and forth
# never forces a full reconfigure.
#
# Known issue (see TESTING.md): with gcc 12's libtsan, integration_tests
# SEGVs inside the sanitizer's own interceptors before running any test; the
# other three binaries are clean under TSan. check.sh therefore skips
# integration_tests only for gcc TSan builds — under clang
# (TFR_CXX=clang++) the full suite runs.
set -euo pipefail
cd "$(dirname "$0")/.."

CXX="${TFR_CXX:-}"

# Figure out whether the chosen compiler is clang (decides the TSan skip
# below and validates the analyze subcommand up front).
compiler_is_clang() {
  local probe="${CXX:-c++}"
  command -v "$probe" > /dev/null 2>&1 && "$probe" --version 2> /dev/null | grep -qi clang
}

MODE="${1:-test}"
case "$MODE" in
  lint)
    scripts/lint.sh
    scripts/run_lint_fixtures.sh
    exit 0
    ;;
  sanitize)
    # The combined ASan+UBSan leg: one build, both classes of finding
    # (mirrors the TSan plumbing; see TESTING.md "Analysis matrix").
    exec env TFR_SANITIZE=address,undefined "$0" test
    ;;
  analyze)
    # Compile-time gates first: these run under any compiler — the seeded
    # negative fixtures must be rejected by -Werror=unused-result and the
    # AcquireToken static rank check.
    scripts/run_lint_fixtures.sh
    CXX="${CXX:-clang++}"
    if ! command -v "$CXX" > /dev/null 2>&1 || ! compiler_is_clang; then
      echo "check.sh analyze: the thread-safety half requires clang++ (set TFR_CXX" >&2
      echo "to a clang binary). The TFR_* annotations compile to nothing under gcc," >&2
      echo "so an analysis build with it would be vacuously clean. The fixture" >&2
      echo "gates above ran; the missing TSA build is an error here, not a pass." >&2
      exit 2
    fi
    BUILD_DIR=build-analyze
    cmake -B "$BUILD_DIR" -S . -DCMAKE_CXX_COMPILER="$CXX" -DTFR_ANALYZE=ON
    cmake --build "$BUILD_DIR" -j"$(nproc)"
    echo "analyze OK (negative fixtures + clang -Werror=thread-safety, compiler: $CXX)"
    exit 0
    ;;
  soak-partition)
    # The epoch-fencing acceptance soak: run the zombie-server scenario
    # across many seeds (TFR_ZOMBIE_SEEDS, default 10; ctest runs only the
    # 1-seed smoke). With TFR_CXX pointing at clang, the soak runs under
    # TSan so the fencing paths get raced as well as asserted.
    SEEDS="${TFR_ZOMBIE_SEEDS:-10}"
    if compiler_is_clang; then
      BUILD_DIR="build-tsan-$(basename "$CXX" | tr -d +)"
      cmake -B "$BUILD_DIR" -S . -DCMAKE_CXX_COMPILER="$CXX" \
        -DCMAKE_BUILD_TYPE=Debug -DTFR_SANITIZE=thread
    else
      BUILD_DIR=build
      cmake -B "$BUILD_DIR" -S .
    fi
    cmake --build "$BUILD_DIR" -j"$(nproc)" --target integration_tests
    TFR_ZOMBIE_SEEDS="$SEEDS" "$BUILD_DIR/tests/integration_tests" \
      --gtest_filter='Seeds/ZombiePartitionTest.*'
    echo "soak-partition OK ($SEEDS seeds$(compiler_is_clang && echo ", TSan under $CXX"))"
    exit 0
    ;;
  soak-recovery)
    # The bounded-recovery acceptance soak: cascading failures (a second
    # server crashing while the first recovery is still replaying) across
    # many seeds (TFR_CASCADE_SEEDS, default 20; ctest runs only a few).
    # With TFR_CXX pointing at clang, the soak runs under TSan so the
    # concurrent failure handlers and segment GC get raced as well as
    # asserted.
    SEEDS="${TFR_CASCADE_SEEDS:-20}"
    if compiler_is_clang; then
      BUILD_DIR="build-tsan-$(basename "$CXX" | tr -d +)"
      cmake -B "$BUILD_DIR" -S . -DCMAKE_CXX_COMPILER="$CXX" \
        -DCMAKE_BUILD_TYPE=Debug -DTFR_SANITIZE=thread
    else
      BUILD_DIR=build
      cmake -B "$BUILD_DIR" -S .
    fi
    cmake --build "$BUILD_DIR" -j"$(nproc)" --target integration_tests
    TFR_CASCADE_SEEDS="$SEEDS" "$BUILD_DIR/tests/integration_tests" \
      --gtest_filter='Seeds/CascadeSoakTest.*'
    echo "soak-recovery OK ($SEEDS seeds$(compiler_is_clang && echo ", TSan under $CXX"))"
    exit 0
    ;;
  soak-split)
    # The dynamic-topology acceptance soak: the balancer splits, merges and
    # moves regions while servers crash-fail and gray failures inject, across
    # many seeds (TFR_SPLIT_SEEDS, default 20; ctest runs only a few). With
    # TFR_CXX pointing at clang, the soak runs under TSan so the balancer
    # tick, the topology hooks, and the daughter gates get raced as well as
    # asserted.
    SEEDS="${TFR_SPLIT_SEEDS:-20}"
    if compiler_is_clang; then
      BUILD_DIR="build-tsan-$(basename "$CXX" | tr -d +)"
      cmake -B "$BUILD_DIR" -S . -DCMAKE_CXX_COMPILER="$CXX" \
        -DCMAKE_BUILD_TYPE=Debug -DTFR_SANITIZE=thread
    else
      BUILD_DIR=build
      cmake -B "$BUILD_DIR" -S .
    fi
    cmake --build "$BUILD_DIR" -j"$(nproc)" --target integration_tests
    TFR_SPLIT_SEEDS="$SEEDS" "$BUILD_DIR/tests/integration_tests" \
      --gtest_filter='Seeds/SplitSoakTest.*'
    echo "soak-split OK ($SEEDS seeds$(compiler_is_clang && echo ", TSan under $CXX"))"
    exit 0
    ;;
  bench-smoke)
    # Quick end-to-end exercise of the A/B hot-path benches: a few seconds
    # each at a tiny TFR_BENCH_SCALE, checking only that all modes run and
    # the JSON lands — the speedup claims (2x commit, 2x/5x read) need a
    # full-scale run (scripts/run_benches.sh), not this.
    BUILD_DIR=build
    cmake -B "$BUILD_DIR" -S .
    cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_commit bench_read bench_split
    rm -f BENCH_commit.json BENCH_read.json BENCH_split.json
    TFR_BENCH_SCALE="${TFR_BENCH_SCALE:-0.02}" "$BUILD_DIR/bench/bench_commit"
    if [ ! -f BENCH_commit.json ]; then
      echo "bench-smoke: bench_commit did not write BENCH_commit.json" >&2
      exit 1
    fi
    TFR_BENCH_SCALE="${TFR_BENCH_SCALE:-0.02}" "$BUILD_DIR/bench/bench_read"
    if [ ! -f BENCH_read.json ]; then
      echo "bench-smoke: bench_read did not write BENCH_read.json" >&2
      exit 1
    fi
    TFR_BENCH_SCALE="${TFR_BENCH_SCALE:-0.02}" "$BUILD_DIR/bench/bench_split"
    if [ ! -f BENCH_split.json ]; then
      echo "bench-smoke: bench_split did not write BENCH_split.json" >&2
      exit 1
    fi
    echo "bench-smoke OK (BENCH_commit.json, BENCH_read.json, BENCH_split.json written)"
    exit 0
    ;;
  test) ;;
  *)
    echo "unknown subcommand '$MODE' (use: analyze, lint, sanitize, soak-partition, soak-recovery, soak-split, bench-smoke, or no argument)" >&2
    exit 2
    ;;
esac

SAN="${TFR_SANITIZE:-}"
case "$SAN" in
  "") BUILD_DIR=build ;;
  address) BUILD_DIR=build-asan ;;
  thread) BUILD_DIR=build-tsan ;;
  undefined) BUILD_DIR=build-ubsan ;;
  address,undefined | undefined,address) BUILD_DIR=build-asan-ubsan ;;
  *)
    echo "unsupported TFR_SANITIZE='$SAN' (use address, thread, undefined, or address,undefined)" >&2
    exit 2
    ;;
esac
# Non-default compilers build in their own tree, e.g. build-tsan-clang.
if [ -n "$CXX" ]; then
  BUILD_DIR="$BUILD_DIR-$(basename "$CXX" | tr -d +)"
fi

CMAKE_ARGS=(-B "$BUILD_DIR" -S .)
if [ -n "$CXX" ]; then
  CMAKE_ARGS+=("-DCMAKE_CXX_COMPILER=$CXX")
fi
if [ -n "$SAN" ]; then
  CMAKE_ARGS+=(-DCMAKE_BUILD_TYPE=Debug "-DTFR_SANITIZE=$SAN")
fi

cmake "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j"$(nproc)"

if [ "$SAN" = thread ] && ! compiler_is_clang; then
  echo "note: skipping integration_tests under gcc TSan (gcc-12 libtsan artifact, see TESTING.md)"
  echo "      run with TFR_CXX=clang++ to include it"
  for t in common_tests storage_tests txn_recovery_tests; do
    "$BUILD_DIR/tests/$t"
  done
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
fi
echo "check OK${SAN:+ (sanitizer: $SAN)}${CXX:+ (compiler: $CXX)}"
