#!/usr/bin/env bash
# One-shot correctness gate: configure, build, and run the full test suite —
# optionally under a sanitizer.
#
# Usage:
#   scripts/check.sh                     # plain RelWithDebInfo build + ctest
#   TFR_SANITIZE=address scripts/check.sh
#   TFR_SANITIZE=thread  scripts/check.sh
#
# Each sanitizer gets its own build directory (build-asan, build-tsan, ...)
# so switching back and forth never forces a full reconfigure.
#
# Known issue (see TESTING.md): with gcc 12's libtsan, integration_tests
# SEGVs inside the sanitizer's own interceptors before running any test; the
# other three binaries are clean under TSan. check.sh therefore skips
# integration_tests when TFR_SANITIZE=thread.
set -euo pipefail
cd "$(dirname "$0")/.."

SAN="${TFR_SANITIZE:-}"
case "$SAN" in
  "") BUILD_DIR=build ;;
  address) BUILD_DIR=build-asan ;;
  thread) BUILD_DIR=build-tsan ;;
  undefined) BUILD_DIR=build-ubsan ;;
  *)
    echo "unsupported TFR_SANITIZE='$SAN' (use address, thread, or undefined)" >&2
    exit 2
    ;;
esac

CMAKE_ARGS=(-B "$BUILD_DIR" -S .)
if [ -n "$SAN" ]; then
  CMAKE_ARGS+=(-DCMAKE_BUILD_TYPE=Debug "-DTFR_SANITIZE=$SAN")
fi

cmake "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j"$(nproc)"

if [ "$SAN" = thread ]; then
  echo "note: skipping integration_tests under TSan (gcc-12 libtsan artifact, see TESTING.md)"
  for t in common_tests storage_tests txn_recovery_tests; do
    "$BUILD_DIR/tests/$t"
  done
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
fi
echo "check OK${SAN:+ (sanitizer: $SAN)}"
