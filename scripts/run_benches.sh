#!/usr/bin/env bash
# Run every paper-reproduction benchmark sequentially and collect the output.
# Usage: scripts/run_benches.sh [build-dir] [output-file]
# Honour TFR_BENCH_SCALE (e.g. 0.3) for quicker smoke runs.
#
# Every BENCH_*.json a bench writes is also appended to BENCH_history.jsonl
# as one line {"ts": ..., "file": ..., "data": {...}} so runs accumulate and
# regressions can be diffed across commits. The timestamp comes from
# TFR_BENCH_TS when set (CI passes the commit time for reproducible history
# lines); the wall clock is only the interactive fallback.
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="${2:-bench_output.txt}"
HISTORY="BENCH_history.jsonl"
TS="${TFR_BENCH_TS:-$(date -u +%Y-%m-%dT%H:%M:%SZ)}"

# The benchmark set is defined by the sources, not by whatever happened to
# build: a bench/*.cpp whose binary is missing is a broken build (or a target
# someone forgot to add to bench/CMakeLists.txt) and must fail the run, not
# silently shrink the comparison set.
missing=0
benches=()
for src in bench/*.cpp; do
  name="$(basename "$src" .cpp)"
  bin="$BUILD_DIR/bench/$name"
  if [ ! -x "$bin" ]; then
    echo "run_benches: missing bench binary '$bin' (source: $src)" >&2
    missing=1
    continue
  fi
  benches+=("$bin")
done
if [ "$missing" -ne 0 ]; then
  echo "run_benches: build the missing binaries first (cmake --build $BUILD_DIR)" >&2
  exit 1
fi
if [ "${#benches[@]}" -eq 0 ]; then
  echo "run_benches: no bench sources found under bench/" >&2
  exit 1
fi

# Stamp taken before any bench runs: only JSON files refreshed by THIS run
# get a history line (stale files from old runs would duplicate history).
STAMP="$(mktemp)"
trap 'rm -f "$STAMP"' EXIT

: > "$OUT"
for b in "${benches[@]}"; do
  echo "### $(basename "$b")" | tee -a "$OUT"
  # tee would mask a failing bench's exit status; check the pipe explicitly
  # so a crash or assertion aborts the whole run (with a pointer to the
  # culprit) instead of being buried in the middle of the output file. The
  # || guard keeps set -e from exiting before the diagnostic prints.
  "$b" 2>&1 | tee -a "$OUT" || {
    status=("${PIPESTATUS[@]}")
    echo "FAILED: $(basename "$b") exited ${status[0]} (tee: ${status[1]})" >&2
    exit 1
  }
  echo | tee -a "$OUT"
done

# Results the suite is REQUIRED to produce: a bench that silently stopped
# writing its JSON would otherwise just thin out the history. Must have been
# refreshed by this run, not left over from an old one.
for required in BENCH_recovery.json BENCH_failover.json BENCH_split.json; do
  if [ ! -f "$required" ] || [ ! "$required" -nt "$STAMP" ]; then
    echo "run_benches: required result '$required' was not produced by this run" >&2
    exit 1
  fi
done

appended=0
for f in BENCH_*.json; do
  [ -f "$f" ] || continue
  [ "$f" -nt "$STAMP" ] || continue
  # One line per file: collapse the pretty-printed JSON into the data field.
  printf '{"ts":"%s","file":"%s","data":%s}\n' "$TS" "$f" "$(tr -s ' \n' ' ' < "$f")" \
    >> "$HISTORY"
  appended=$((appended + 1))
done
echo "wrote $OUT, appended $appended result file(s) to $HISTORY (ts $TS)"
