#!/usr/bin/env bash
# Run every paper-reproduction benchmark sequentially and collect the output.
# Usage: scripts/run_benches.sh [build-dir] [output-file]
# Honour TFR_BENCH_SCALE (e.g. 0.3) for quicker smoke runs.
set -euo pipefail
BUILD_DIR="${1:-build}"
OUT="${2:-bench_output.txt}"

: > "$OUT"
for b in "$BUILD_DIR"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "### $(basename "$b")" | tee -a "$OUT"
  # tee would mask a failing bench's exit status; check the pipe explicitly
  # so a crash or assertion aborts the whole run (with a pointer to the
  # culprit) instead of being buried in the middle of the output file. The
  # || guard keeps set -e from exiting before the diagnostic prints.
  "$b" 2>&1 | tee -a "$OUT" || {
    status=("${PIPESTATUS[@]}")
    echo "FAILED: $(basename "$b") exited ${status[0]} (tee: ${status[1]})" >&2
    exit 1
  }
  echo | tee -a "$OUT"
done
echo "wrote $OUT"
