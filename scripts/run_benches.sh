#!/usr/bin/env bash
# Run every paper-reproduction benchmark sequentially and collect the output.
# Usage: scripts/run_benches.sh [build-dir] [output-file]
# Honour TFR_BENCH_SCALE (e.g. 0.3) for quicker smoke runs.
set -u
BUILD_DIR="${1:-build}"
OUT="${2:-bench_output.txt}"

: > "$OUT"
for b in "$BUILD_DIR"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "### $(basename "$b")" | tee -a "$OUT"
  "$b" 2>&1 | tee -a "$OUT"
  echo | tee -a "$OUT"
done
echo "wrote $OUT"
