#!/usr/bin/env python3
"""Blocking-call-under-lock check, grep fallback.

The authoritative static pass is scripts/blocking_under_lock.query (clang-query
over TFR_BLOCKING `annotate` attributes); this script is the documented
fallback for toolchains without clang (scripts/lint.sh picks whichever is
available). It is a *lexical* scan — deliberately simple, biased toward false
positives, and suppressible in place:

  * tracks RAII lock guards (MutexLock, RankedMutexLock<...>, WriterLock,
    ReaderLock) per brace scope;
  * flags any call to a known-blocking entry point (the TFR_BLOCKING set:
    DFS I/O, RPC apply/get-by-name, WAL/TM-log sync, coord session ops,
    sleeps) made while a guard is lexically alive;
  * a finding is suppressed by a `// tfr-lint: blocking-ok(<reason>)` comment
    on the same line or the line above — the reason is the documentation.

Unlike the runtime hook (annotations.cpp), this pass cannot see ranks, so it
flags blocking under ANY lock; sites where holding the lock across the block
is the design carry a blocking-ok comment mirroring the rank table's
may_block policy. Calls it cannot name-match (virtuals, std::function hops)
are covered by the runtime hook, which is default-on in every debug build.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

import re
import sys
from pathlib import Path

# Method names from the TFR_BLOCKING set that only match with an explicit
# receiver (`x.sync(` / `p->sync(`): bare they would collide with
# declarations and unrelated code. Names common enough to collide even with
# a receiver (read, append, get, scan, charge) are left to the clang pass /
# runtime hook.
BLOCKING_METHODS = (
    "sync",
    "write_file",
    "read_all",
    "create_session",
    "update_ttl",
    "heartbeat",
)

# Distinctive names safe to match with or without a receiver (an unqualified
# this-> call to a blocking sibling method still counts).
BLOCKING_ANY = (
    "sleep_micros",
    "sleep_millis",
    "apply_writeset",
    "apply_batch",
    "persist_wal",
    "finalize_store_file",
    "flush_memstore",
)

LOCK_DECL = re.compile(
    r"\b(?:MutexLock|RankedMutexLock(?:<[^<>]*>)?|WriterLock|ReaderLock)\s+"
    r"(\w+)\s*[({]"
)
BLOCKING_CALL = re.compile(
    r"(?:(?:\.|->)(" + "|".join(BLOCKING_METHODS) + r")|"
    r"\b(" + "|".join(BLOCKING_ANY) + r"))\s*\("
)
SUPPRESS = re.compile(r"tfr-lint:\s*blocking-ok\(")

# Files that define the primitives themselves.
SKIP = {
    "src/common/annotations.h",
    "src/common/annotations.cpp",
    "src/common/clock.h",
}


def strip_comments_keep_suppress(line: str) -> str:
    """Remove // comments and string literals so names inside them don't match."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    return line.split("//", 1)[0]


def scan_file(path: Path, rel: str):
    findings = []
    depth = 0
    locks = []  # (depth_at_decl, var_name, line_no)
    lines = path.read_text().splitlines()
    for i, raw in enumerate(lines, 1):
        code = strip_comments_keep_suppress(raw)
        m = LOCK_DECL.search(code)
        if m:
            locks.append((depth, m.group(1), i))
        c = BLOCKING_CALL.search(code)
        if c and locks and not m:  # the decl line itself is the acquisition
            # A blocking-ok marker suppresses from the same line or anywhere
            # in the contiguous comment block immediately above.
            suppressed = bool(SUPPRESS.search(raw))
            j = i - 2  # 0-based index of the previous line
            while not suppressed and j >= 0 and lines[j].lstrip().startswith("//"):
                suppressed = bool(SUPPRESS.search(lines[j]))
                j -= 1
            if not suppressed:
                what = c.group(1) or c.group(2)
                held = ", ".join(f"{v} (line {ln})" for _, v, ln in locks)
                findings.append(f"{rel}:{i}: blocking call `{what}` under lock guard(s): {held}")
        depth += code.count("{") - code.count("}")
        while locks and locks[-1][0] > depth:
            locks.pop()
    return findings


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent
    src = root / "src"
    if not src.is_dir():
        print(f"check_blocking: no src/ under {root}", file=sys.stderr)
        return 2
    findings = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cpp"):
            continue
        rel = str(path.relative_to(root))
        if rel in SKIP:
            continue
        findings.extend(scan_file(path, rel))
    for f in findings:
        print(f)
    if findings:
        print(
            f"\ncheck_blocking: {len(findings)} blocking call(s) under a lock. Either drop the\n"
            "lock before blocking, or — if holding it is the design (see the may_block\n"
            "column in DESIGN.md 'Lock ranks') — annotate the site with\n"
            "`// tfr-lint: blocking-ok(<reason>)`.",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
