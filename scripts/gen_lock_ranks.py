#!/usr/bin/env python3
"""Single source of truth for the tfrkv lock-rank table.

This script owns the rank table (RANKS below) and generates, from it:

  * src/common/lock_ranks.h        — the LockRank enum, the constexpr
    name/value/policy table the runtime validator asserts against, and the
    constexpr predicates (lock_rank_known, lock_rank_may_block) used by the
    compile-time RankedMutex checks and the runtime blocking-under-lock hook.
  * the "## 7. Lock ranks" table in DESIGN.md, between the GEN-LOCK-RANKS
    markers — so the documentation can never drift from the code.

Usage:
  scripts/gen_lock_ranks.py           # rewrite both outputs in place
  scripts/gen_lock_ranks.py --check   # exit 1 if either output is stale
                                      # (registered as the `lock_ranks_doc`
                                      # ctest test)

Editing workflow: change RANKS here, run the script, commit all three files.
A hand-edit to lock_ranks.h or to the DESIGN.md table fails the ctest.
"""

import argparse
import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
HEADER = os.path.join(ROOT, "src", "common", "lock_ranks.h")
DESIGN = os.path.join(ROOT, "DESIGN.md")

# One row per rank: (enum name, value, doc name(s), may_block, paper
# component, observed nesting, blocking rationale).
#
# `may_block` is the blocking-under-lock policy: True means a thread is
# permitted to call a TFR_BLOCKING function (DFS I/O, RPC, WAL/TM-log sync,
# sleeps) while holding a mutex of this rank, and the rationale column must
# say why that is safe by design. False means the runtime hook
# (lockrank::on_blocking_call) aborts the process if it happens — these are
# the hot leaf locks where an RPC underneath would stall every peer.
RANKS = [
    ("kBalancer", 220, "master.balancer", True, "master balancer loop (§9)",
     "master, region server ops, harness gate (daughter opens)",
     "a balancer tick is one serialized topology transaction: it holds the "
     "tick lock across split/merge/move RPCs including gated daughter opens"),
    ("kHarness", 210, "testbed.rm", True, "test harness",
     "RM (gated RPC + restart swap)",
     "held across whole gated replays by construction of the harness"),
    ("kRecoveryManager", 200, "recovery_manager", True,
     "RM orchestration, floors, PQ (Alg. 1+3)",
     "threshold-registry stripes, coord, TM, TM log, KV client paths",
     "serializes recovery: replay RPCs and coord marker writes happen under it"),
    ("kThresholdRegistry", 195, "threshold_registry", False,
     "registry C / S stripes (Alg. 2+4, §7a)", "leaf (taken under the RM mutex)",
     "stripe mutation is pure bookkeeping; min() is lock-free"),
    ("kRecoveryTracker", 190,
     "persist_tracker, recovery_client, flush_tracker.advance", True,
     "TP(s) / TF(c) trackers (Alg. 1+3)", "WAL sync (TP persist step)",
     "Algorithm 3's atomic probe-and-publish deliberately holds the tracker "
     "mutex across Wal::sync (see persist_tracker.cpp)"),
    ("kClientLifecycle", 180, "txn_client.lifecycle, region_server.terminator",
     True, "client/server self-termination", "thread join bookkeeping only",
     "held across thread joins of flusher/terminator threads at shutdown"),
    ("kRegionServer", 170, "region_server.regions", True,
     "region server directory", "region, hooks",
     "shutdown/split/offload flush memstores (DFS writes) under the "
     "directory lock so no region is added or dropped mid-operation"),
    ("kRegion", 160, "region", True, "region memstore/files",
     "DFS, WAL refs, latency, logging",
     "flush/compact finalize store files (DFS writes) under the region lock; "
     "reads snapshot the file list and run unlocked"),
    ("kMaster", 150, "master", True, "master / failure detector",
     "region server ops, coord",
     "failure handling (WAL split reads, region reopen RPCs) runs under the "
     "assignment lock by design — one handler thread per failure"),
    ("kWalSync", 140, "wal.sync", True, "WAL group sync", "wal (ledger)",
     "exists precisely to serialize Dfs::sync calls; every holder blocks"),
    ("kWal", 130, "wal", False, "WAL segment ledger", "DFS",
     "appends only feed the DFS write pipeline (no sync); the ledger lock "
     "must stay cheap so appends overlap the group sync"),
    ("kTxnManager", 120, "txn_manager", True, "TM (SI conflict window)",
     "TM log, ts-listener queues",
     "commit certification publishes to the TM log (group commit) while the "
     "conflict window is pinned"),
    ("kTxnLog", 110, "txn_log", False, "TM group-commit log", "DFS",
     "appender lanes sync stable storage outside the shared mutex; only "
     "queue/segment bookkeeping happens under it"),
    ("kCoord", 100, "coord", False, "coordination service (ZK stand-in)",
     "callback queues, logging",
     "minizk is in-memory; nothing under its lock may block"),
    ("kDfs", 90, "dfs", False, "mini-DFS namenode/datanodes",
     "latency model, logging",
     "sync/read latency is charged with the namespace lock released "
     "(see dfs.cpp); holding it across a blocking call would serialize all I/O"),
    ("kServerHooks", 80, "region_server.hooks", False, "test hook registration",
     "leaf", "hook snapshot only; observers run after release"),
    ("kBlockCache", 70, "block_cache", False, "block cache LRU", "leaf",
     "single-flight design loads blocks outside the stripe lock"),
    ("kFaultInjector", 60, "fault_injector", False,
     "deterministic fault injection", "leaf",
     "rule lookup only; injected delays sleep after release"),
    ("kEpochRegistry", 55, "epoch_registry", False,
     "fencing-token registry (§6a)", "leaf (probed under WAL/region locks)",
     "validate() is a map probe on the WAL append hot path"),
    ("kQueue", 50, "blocking_queue, synced_min_queue", False,
     "FQ/FQ' / PQ carriers", "leaf",
     "waiting on the queue's own CondVar is fine; foreign blocking is not"),
    ("kClientRouting", 45, "kv_client.routes", False,
     "client routing-table cache (§2.1)", "leaf",
     "cache probe/insert only; master locate RPCs run with it released"),
    ("kThreadingInternal", 40, "periodic_task, semaphore, countdown_latch",
     False, "heartbeats, handler pools", "leaf",
     "waiting on the primitive's own CondVar is fine; foreign blocking is not"),
    ("kLatencyModel", 30, "latency_rng", False, "latency model", "leaf",
     "an RNG draw; the charged sleep happens after release"),
    ("kMetrics", 20, "counter_registry", False, "metrics", "leaf",
     "registry lookup on first use only"),
    ("kLogging", 10, "log_emit", False, "logging", "leaf",
     "innermost: one formatted write; callable while holding anything"),
]

# Aliases share a value with a canonical rank and do not get their own table
# or doc row. kLeaf is the default rank for ad-hoc mutexes.
ALIASES = [("kLeaf", "kThreadingInternal", "default for ad-hoc mutexes: nest under anything")]

GEN_BEGIN = "<!-- GEN-LOCK-RANKS:BEGIN (scripts/gen_lock_ranks.py; do not edit by hand) -->"
GEN_END = "<!-- GEN-LOCK-RANKS:END -->"


def render_header():
    lines = []
    lines.append("// GENERATED FILE — do not edit by hand.")
    lines.append("//")
    lines.append("// Produced by scripts/gen_lock_ranks.py, the single source of truth for")
    lines.append("// the lock-rank table. The same script generates the DESIGN.md \"Lock")
    lines.append("// ranks\" table; the `lock_ranks_doc` ctest fails if either drifts.")
    lines.append("//")
    lines.append("// Three consumers:")
    lines.append("//  * RankedMutex<R> (annotations.h) static_asserts lock_rank_known(R), so")
    lines.append("//    a mutex can only be declared with a rank from this table;")
    lines.append("//  * the runtime validator asserts every acquisition's rank is in the")
    lines.append("//    table (a raw tfr::Mutex constructed with an ad-hoc rank aborts);")
    lines.append("//  * the blocking-under-lock hook consults lock_rank_may_block() — the")
    lines.append("//    per-rank policy column that says which locks may, by documented")
    lines.append("//    design, be held across a TFR_BLOCKING call.")
    lines.append("#pragma once")
    lines.append("")
    lines.append("#include <cstddef>")
    lines.append("")
    lines.append("namespace tfr {")
    lines.append("")
    lines.append("// Acquisition order is strictly DESCENDING: holding rank R, a thread may")
    lines.append("// only acquire ranks < R. Outermost locks (the testbed harness, the")
    lines.append("// recovery manager) have the highest ranks; utility leaves (metrics, the")
    lines.append("// log emit lock) the lowest. See DESIGN.md \"Lock ranks\" for the rationale")
    lines.append("// behind every edge.")
    lines.append("enum class LockRank : int {")
    width = max(len(n) for n, *_ in RANKS) + 1
    for name, value, docname, _mb, component, _nests, _why in RANKS:
        lines.append(f"  {name} = {value},".ljust(width + 9) + f"// {docname}: {component}")
    for alias, target, why in ALIASES:
        value = next(v for n, v, *_ in RANKS if n == target)
        lines.append(f"  {alias} = {value},".ljust(width + 9) + f"// {why}")
    lines.append("};")
    lines.append("")
    lines.append("struct LockRankInfo {")
    lines.append("  const char* name;  // doc name(s) of the mutex(es) at this rank")
    lines.append("  int value;")
    lines.append("  bool may_block;  // may be held across a TFR_BLOCKING call (documented why)")
    lines.append("};")
    lines.append("")
    lines.append("inline constexpr LockRankInfo kLockRankTable[] = {")
    for name, value, docname, may_block, *_ in RANKS:
        mb = "true" if may_block else "false"
        lines.append(f'    {{"{docname}", {value}, {mb}}},')
    lines.append("};")
    lines.append("")
    lines.append("inline constexpr std::size_t kLockRankCount =")
    lines.append("    sizeof(kLockRankTable) / sizeof(kLockRankTable[0]);")
    lines.append("")
    lines.append("/// True iff `value` is a rank defined in the table. RankedMutex<R>")
    lines.append("/// static_asserts this; the runtime validator aborts on violations.")
    lines.append("constexpr bool lock_rank_known(int value) {")
    lines.append("  for (const auto& r : kLockRankTable) {")
    lines.append("    if (r.value == value) return true;")
    lines.append("  }")
    lines.append("  return false;")
    lines.append("}")
    lines.append("")
    lines.append("/// True iff a mutex of rank `value` may, by documented design, be held")
    lines.append("/// across a blocking call (DFS I/O, RPC, WAL/TM-log sync, sleeps).")
    lines.append("constexpr bool lock_rank_may_block(int value) {")
    lines.append("  for (const auto& r : kLockRankTable) {")
    lines.append("    if (r.value == value) return r.may_block;")
    lines.append("  }")
    lines.append("  return false;")
    lines.append("}")
    lines.append("")
    lines.append("/// Doc name(s) for a rank value; \"?\" when unknown.")
    lines.append("constexpr const char* lock_rank_doc_name(int value) {")
    lines.append("  for (const auto& r : kLockRankTable) {")
    lines.append("    if (r.value == value) return r.name;")
    lines.append("  }")
    lines.append("  return \"?\";")
    lines.append("}")
    lines.append("")
    lines.append("}  // namespace tfr")
    lines.append("")
    return "\n".join(lines)


def render_design_table():
    lines = [GEN_BEGIN, ""]
    lines.append("| rank | lock | blocking under it | paper component | nests into (observed) |")
    lines.append("|---|---|---|---|---|")
    for name, value, docname, may_block, component, nests, why in RANKS:
        locks = ", ".join(f"`{x.strip()}`" for x in docname.split(","))
        policy = f"**allowed** — {why}" if may_block else f"forbidden — {why}"
        lines.append(f"| {value} | {locks} | {policy} | {component} | {nests} |")
    lines.append("")
    lines.append(GEN_END)
    return "\n".join(lines)


def splice_design(text):
    begin = text.find(GEN_BEGIN)
    end = text.find(GEN_END)
    if begin < 0 or end < 0:
        sys.exit("gen_lock_ranks.py: GEN-LOCK-RANKS markers not found in DESIGN.md")
    return text[:begin] + render_design_table() + text[end + len(GEN_END):]


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--check", action="store_true",
                        help="verify outputs are current; do not write")
    args = parser.parse_args()

    header = render_header()
    with open(DESIGN, encoding="utf-8") as f:
        design_old = f.read()
    design_new = splice_design(design_old)

    if args.check:
        stale = []
        try:
            with open(HEADER, encoding="utf-8") as f:
                if f.read() != header:
                    stale.append(HEADER)
        except FileNotFoundError:
            stale.append(HEADER)
        if design_new != design_old:
            stale.append(DESIGN)
        if stale:
            print("gen_lock_ranks.py --check: STALE (re-run scripts/gen_lock_ranks.py):")
            for s in stale:
                print("  " + s)
            return 1
        print("gen_lock_ranks.py --check: OK (lock_ranks.h and DESIGN.md are current)")
        return 0

    with open(HEADER, "w", encoding="utf-8") as f:
        f.write(header)
    if design_new != design_old:
        with open(DESIGN, "w", encoding="utf-8") as f:
            f.write(design_new)
    print(f"wrote {HEADER}")
    print(f"updated DESIGN.md lock-rank table")
    return 0


if __name__ == "__main__":
    sys.exit(main())
