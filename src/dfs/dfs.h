// minidfs — an HDFS-like reliable, replicated, append-only filesystem,
// faithful to the durability semantics the paper relies on:
//
//  * append() hands bytes to the write pipeline; they are NOT durable yet.
//  * sync() (HDFS hflush/hsync) makes everything appended so far durable on
//    `replication` datanodes, charging the configured sync latency once.
//  * If the *writer* crashes (a region server dies), the un-synced suffix of
//    its open files is lost — exactly the window the paper's recovery
//    middleware must cover when HBase's synchronous WAL flush is disabled.
//  * Synced bytes survive any writer crash, and any datanode crash as long
//    as one replica of each block remains.
//
// Files are broken into fixed-size blocks placed on datanodes round-robin;
// reads charge a per-block read latency (this is what makes a cold block
// cache slow and produces the warm-up ramp of Figure 3).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/latency.h"
#include "src/common/status.h"

namespace tfr {

class FaultInjector;

struct DfsConfig {
  int num_datanodes = 3;
  int replication = 2;              // the paper uses replication factor 2
  std::uint64_t block_size = 64 * 1024;
  Micros sync_latency = 0;          // one charge per sync() (pipeline ack)
  Micros sync_jitter = 0;
  Micros read_latency = 0;          // one charge per block fetched
  Micros read_jitter = 0;
};

struct DfsStats {
  std::int64_t syncs = 0;
  std::int64_t block_reads = 0;
  std::int64_t bytes_synced = 0;
  std::int64_t bytes_read = 0;
};

/// The distributed filesystem. All methods are thread-safe.
class Dfs {
 public:
  explicit Dfs(DfsConfig config);

  /// Create an empty file open for append. Fails if it already exists.
  Status create(const std::string& path);

  /// Append bytes to the write pipeline of an open file (not yet durable).
  Status append(const std::string& path, std::string_view data);

  /// Make everything appended so far durable (HDFS hflush). Charges the
  /// sync latency. Returns the durable length.
  TFR_BLOCKING Result<std::uint64_t> sync(const std::string& path);

  /// Create + append + sync in one call (used for immutable store files).
  TFR_BLOCKING Status write_file(const std::string& path, std::string_view data);

  /// Close the file for further appends (it remains readable).
  Status close(const std::string& path);

  /// Called when the process writing `path` crashes: the un-synced suffix is
  /// discarded, and the file is closed. Idempotent; ok on missing file.
  void writer_crashed(const std::string& path);

  /// Read [offset, offset+len) of the *durable* prefix. Charges read latency
  /// per block touched. Reading past the durable length truncates.
  TFR_BLOCKING Result<std::string> read(const std::string& path, std::uint64_t offset, std::uint64_t len);

  /// Read the whole durable prefix.
  TFR_BLOCKING Result<std::string> read_all(const std::string& path);

  /// Atomically rename `from` to `to`. Fails if `from` is missing or `to`
  /// exists. The building block of rename-based store-file fencing: a
  /// finalizer writes to a tmp path, re-checks its ownership epoch, and only
  /// then renames into the live namespace.
  Status rename(const std::string& from, const std::string& to);

  /// Writer fencing (HDFS lease recovery): close every file under `prefix`,
  /// discarding un-synced tails, and reject all further create/append/sync
  /// under the prefix with WrongEpoch. The master calls this on a dead
  /// server's WAL directory *before* splitting it, so a zombie writer that
  /// raced past its own self-fence check cannot extend the log after the
  /// split read it. Idempotent.
  void fence_prefix(const std::string& prefix);

  /// True iff `path` falls under a fenced prefix.
  bool is_fenced(const std::string& path) const;

  Result<std::uint64_t> durable_size(const std::string& path) const;
  bool exists(const std::string& path) const;

  /// Delete one file. Rejected with WrongEpoch under a fenced prefix —
  /// deletion is a write, and a fenced zombie reclaiming its "flushed" WAL
  /// segments could race the master's split read of them.
  Status remove(const std::string& path);

  /// Authoritative deletion of everything under `prefix`, fence or no fence.
  /// Only the master calls this, after a dead server's WAL has been split
  /// and every affected region reopened elsewhere — the point where the old
  /// segments carry no edit that is not re-logged in a live server's WAL.
  /// Returns the number of files removed.
  std::size_t purge_prefix(const std::string& prefix);

  std::vector<std::string> list(const std::string& prefix) const;

  /// Fault injection for integrity tests: flip one bit of the durable data
  /// of `path` at `offset`.
  Status corrupt_byte(const std::string& path, std::uint64_t offset);

  /// Take a datanode down. Synced data remains readable while every block
  /// keeps at least one live replica; otherwise reads return Unavailable.
  Status fail_datanode(int node);
  Status restart_datanode(int node);

  DfsStats stats() const;
  const DfsConfig& config() const { return config_; }

  /// Install a fault injector (see common/fault.h): sync() and read() then
  /// consult it per call — transient Unavailable errors and added latency
  /// (slow-sync / slow-read gray failures), matched by path prefix. Pass
  /// nullptr to detach. Not synchronized with in-flight calls: install
  /// before traffic starts, as the Cluster does.
  void set_fault_injector(FaultInjector* injector) { fault_ = injector; }

 private:
  struct Block {
    std::vector<int> replicas;  // datanode ids
  };
  struct File {
    std::string data;            // appended bytes (durable prefix + pipeline)
    std::uint64_t durable = 0;   // bytes made durable by sync()
    std::vector<Block> blocks;   // placement of durable blocks
    bool open = true;
  };

  // Assigns datanodes for newly durable blocks.
  void place_blocks(File& f) TFR_REQUIRES(mutex_);
  bool block_readable(const Block& b) const TFR_REQUIRES(mutex_);
  bool fenced_locked(const std::string& path) const TFR_REQUIRES(mutex_);

  DfsConfig config_;
  LatencyModel sync_model_;
  LatencyModel read_model_;
  FaultInjector* fault_ = nullptr;

  mutable RankedMutex<LockRank::kDfs> mutex_{"dfs"};
  std::map<std::string, File> files_ TFR_GUARDED_BY(mutex_);
  std::vector<std::string> fenced_prefixes_ TFR_GUARDED_BY(mutex_);
  std::vector<bool> datanode_up_ TFR_GUARDED_BY(mutex_);
  int next_datanode_ TFR_GUARDED_BY(mutex_) = 0;
  DfsStats stats_ TFR_GUARDED_BY(mutex_);
};

}  // namespace tfr
