#include "src/dfs/dfs.h"

#include <algorithm>

#include "src/common/fault.h"
#include "src/common/logging.h"

namespace tfr {

Dfs::Dfs(DfsConfig config)
    : config_(config),
      sync_model_(config.sync_latency, config.sync_jitter),
      read_model_(config.read_latency, config.read_jitter),
      datanode_up_(static_cast<std::size_t>(config.num_datanodes), true) {}

bool Dfs::fenced_locked(const std::string& path) const {
  for (const auto& prefix : fenced_prefixes_) {
    if (path.compare(0, prefix.size(), prefix) == 0) return true;
  }
  return false;
}

Status Dfs::create(const std::string& path) {
  MutexLock lock(mutex_);
  if (fenced_locked(path)) return Status::wrong_epoch("dfs path fenced: " + path);
  auto [it, inserted] = files_.try_emplace(path);
  if (!inserted) return Status::already_exists("dfs file exists: " + path);
  return Status::ok();
}

Status Dfs::append(const std::string& path, std::string_view data) {
  MutexLock lock(mutex_);
  if (fenced_locked(path)) return Status::wrong_epoch("dfs path fenced: " + path);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::not_found("dfs append: " + path);
  if (!it->second.open) return Status::closed("dfs file closed: " + path);
  it->second.data.append(data.data(), data.size());
  return Status::ok();
}

void Dfs::place_blocks(File& f) {
  const auto needed = (f.durable + config_.block_size - 1) / config_.block_size;
  while (f.blocks.size() < needed) {
    Block b;
    for (int r = 0; r < config_.replication; ++r) {
      b.replicas.push_back(next_datanode_);
      next_datanode_ = (next_datanode_ + 1) % config_.num_datanodes;
    }
    f.blocks.push_back(std::move(b));
  }
}

Result<std::uint64_t> Dfs::sync(const std::string& path) {
  TFR_BLOCKING_POINT("dfs.sync");
  std::uint64_t target = 0;
  {
    MutexLock lock(mutex_);
    if (fenced_locked(path)) return Status::wrong_epoch("dfs path fenced: " + path);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::not_found("dfs sync: " + path);
    target = it->second.data.size();
    if (target == it->second.durable) return target;  // nothing to do, no charge
  }
  if (fault_ != nullptr) {
    // Injected gray failure: a slow pipeline ack (delay, slept inside
    // check()) or a transient sync error. Nothing was made durable; the
    // caller retries and the durable frontier is unchanged.
    TFR_RETURN_IF_ERROR(fault_->check(FaultOp::kDfsSync, path));
  }
  sync_model_.charge();  // pipeline ack from `replication` datanodes
  MutexLock lock(mutex_);
  // Re-check: the fence may have landed while the pipeline ack was in
  // flight — the un-synced tail must stay un-durable (the split already ran).
  if (fenced_locked(path)) return Status::wrong_epoch("dfs path fenced: " + path);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::not_found("dfs sync (removed): " + path);
  File& f = it->second;
  if (target > f.durable) {
    stats_.bytes_synced += static_cast<std::int64_t>(target - f.durable);
    f.durable = target;
    place_blocks(f);
  }
  ++stats_.syncs;
  return f.durable;
}

Status Dfs::write_file(const std::string& path, std::string_view data) {
  TFR_BLOCKING_POINT("dfs.write_file");
  TFR_RETURN_IF_ERROR(create(path));
  TFR_RETURN_IF_ERROR(append(path, data));
  auto synced = sync(path);
  if (!synced.is_ok()) return synced.status();
  return close(path);
}

Status Dfs::close(const std::string& path) {
  MutexLock lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::not_found("dfs close: " + path);
  it->second.open = false;
  return Status::ok();
}

void Dfs::writer_crashed(const std::string& path) {
  MutexLock lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return;
  File& f = it->second;
  if (f.data.size() > f.durable) {
    TFR_LOG(INFO, "dfs") << "writer crash on " << path << ": dropping "
                         << f.data.size() - f.durable << " un-synced bytes";
    f.data.resize(f.durable);
  }
  f.open = false;
}

bool Dfs::block_readable(const Block& b) const {
  return std::any_of(b.replicas.begin(), b.replicas.end(),
                     [&](int r) { return datanode_up_[static_cast<std::size_t>(r)]; });
}

Result<std::string> Dfs::read(const std::string& path, std::uint64_t offset, std::uint64_t len) {
  TFR_BLOCKING_POINT("dfs.read");
  if (fault_ != nullptr) {
    // Injected transient read error (a flapping datanode) or slow read.
    TFR_RETURN_IF_ERROR(fault_->check(FaultOp::kDfsRead, path));
  }
  int blocks_touched = 0;
  std::string out;
  {
    MutexLock lock(mutex_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::not_found("dfs read: " + path);
    const File& f = it->second;
    if (offset >= f.durable) return std::string();
    const std::uint64_t end = std::min<std::uint64_t>(offset + len, f.durable);
    const auto first_block = offset / config_.block_size;
    const auto last_block = (end - 1) / config_.block_size;
    for (auto b = first_block; b <= last_block && b < f.blocks.size(); ++b) {
      if (!block_readable(f.blocks[b])) {
        return Status::unavailable("all replicas of a block are down: " + path);
      }
    }
    blocks_touched = static_cast<int>(last_block - first_block + 1);
    out = f.data.substr(offset, end - offset);
    stats_.block_reads += blocks_touched;
    stats_.bytes_read += static_cast<std::int64_t>(out.size());
  }
  for (int i = 0; i < blocks_touched; ++i) read_model_.charge();
  return out;
}

Result<std::string> Dfs::read_all(const std::string& path) {
  auto size = durable_size(path);
  if (!size.is_ok()) return size.status();
  if (size.value() == 0) return std::string();
  return read(path, 0, size.value());
}

Result<std::uint64_t> Dfs::durable_size(const std::string& path) const {
  MutexLock lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::not_found("dfs size: " + path);
  return it->second.durable;
}

bool Dfs::exists(const std::string& path) const {
  MutexLock lock(mutex_);
  return files_.count(path) > 0;
}

Status Dfs::rename(const std::string& from, const std::string& to) {
  MutexLock lock(mutex_);
  if (fenced_locked(to)) return Status::wrong_epoch("dfs path fenced: " + to);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::not_found("dfs rename: " + from);
  if (files_.count(to) > 0) return Status::already_exists("dfs rename target exists: " + to);
  File f = std::move(it->second);
  files_.erase(it);
  files_.emplace(to, std::move(f));
  return Status::ok();
}

void Dfs::fence_prefix(const std::string& prefix) {
  MutexLock lock(mutex_);
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    File& f = it->second;
    if (f.data.size() > f.durable) {
      TFR_LOG(INFO, "dfs") << "fencing " << it->first << ": dropping "
                           << f.data.size() - f.durable << " un-synced bytes";
      f.data.resize(f.durable);
    }
    f.open = false;
  }
  if (!fenced_locked(prefix)) fenced_prefixes_.push_back(prefix);
}

bool Dfs::is_fenced(const std::string& path) const {
  MutexLock lock(mutex_);
  return fenced_locked(path);
}

Status Dfs::remove(const std::string& path) {
  MutexLock lock(mutex_);
  // Deletion is a write: a fenced (dead-to-the-master) writer must not be
  // able to reclaim its own WAL segments while the master is splitting
  // them. The master uses purge_prefix() once recovery is complete.
  if (fenced_locked(path)) return Status::wrong_epoch("dfs remove under fence: " + path);
  if (files_.erase(path) == 0) return Status::not_found("dfs remove: " + path);
  return Status::ok();
}

std::size_t Dfs::purge_prefix(const std::string& prefix) {
  MutexLock lock(mutex_);
  std::size_t removed = 0;
  auto it = files_.lower_bound(prefix);
  while (it != files_.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
    it = files_.erase(it);
    ++removed;
  }
  return removed;
}

std::vector<std::string> Dfs::list(const std::string& prefix) const {
  MutexLock lock(mutex_);
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

Status Dfs::corrupt_byte(const std::string& path, std::uint64_t offset) {
  MutexLock lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::not_found("dfs corrupt: " + path);
  if (offset >= it->second.durable) return Status::invalid_argument("offset past durable data");
  it->second.data[offset] = static_cast<char>(it->second.data[offset] ^ 0x40);
  return Status::ok();
}

Status Dfs::fail_datanode(int node) {
  MutexLock lock(mutex_);
  if (node < 0 || node >= config_.num_datanodes) return Status::invalid_argument("bad datanode");
  datanode_up_[static_cast<std::size_t>(node)] = false;
  return Status::ok();
}

Status Dfs::restart_datanode(int node) {
  MutexLock lock(mutex_);
  if (node < 0 || node >= config_.num_datanodes) return Status::invalid_argument("bad datanode");
  datanode_up_[static_cast<std::size_t>(node)] = true;
  return Status::ok();
}

DfsStats Dfs::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace tfr
