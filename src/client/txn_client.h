// TxnClient — the extended, transactional store client (§2.2): the interface
// between the application and the region servers, and the key player that
// interacts with the transaction manager and the recovery middleware.
//
// Execution model (deferred updates):
//   * begin() creates a transactional context; reads go to the servers at
//     the transaction's snapshot timestamp, writes are buffered client-side;
//   * commit() sends the write-set to the transaction manager; when the TM's
//     group-commit log append returns, the transaction IS committed and
//     commit() returns to the application;
//   * the write-set is flushed to the participant region servers only after
//     commit, by a background flusher pool, retrying without limit across
//     server failures (§3.2);
//   * Algorithm 1 runs here: FQ/FQ' tracking, the flush threshold TF(c),
//     and periodic heartbeats to the recovery manager carrying TF(c).
//
// Synchronous-persistence mode (`sync_commit`, the Figure 2(a) baseline)
// instead flushes the write-set inside commit(), with the servers configured
// to WAL-sync each update, reproducing per-object durability.
//
// Snapshot choice: kStable reads at the published global TF — every
// transaction at or below it is fully flushed, so a reader can never observe
// a torn (partially flushed) write-set, and during a failover the client
// "can at least continue to execute read-only transactions on older
// snapshots" (§3.2). kLatest reads at the newest commit timestamp (fresher,
// but may observe in-flight flushes).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/queue.h"
#include "src/common/threading.h"
#include "src/coord/coord.h"
#include "src/kv/kv_client.h"
#include "src/recovery/flush_tracker.h"
#include "src/txn/txn_manager.h"

namespace tfr {

enum class SnapshotMode { kStable, kLatest };

struct TxnClientConfig {
  Micros heartbeat_interval = seconds(1);
  Micros session_ttl = seconds(3);
  bool sync_commit = false;
  SnapshotMode snapshot = SnapshotMode::kStable;
  int flusher_threads = 8;
  Micros flush_backoff = millis(2);
  int read_retries = 0;  ///< 0 = retry forever (block through failovers)

  /// Pipelined flush: a flusher thread drains up to `flush_batch_max`
  /// queued write-sets at once and ships all slices bound for the same
  /// server in one batched apply RPC (see KvClient::flush_writesets). When
  /// false each write-set is flushed by its own RPC round — the legacy
  /// path, kept flag-selectable for the bench A/B.
  bool pipelined_flush = true;
  std::size_t flush_batch_max = 32;

  /// §3.2: alert when the number of committed-but-unflushed transactions
  /// exceeds this (a region stuck offline blocks TF(c) from advancing).
  std::size_t flush_queue_alert = 10'000;
};

struct TxnClientStats {
  std::int64_t commits = 0;
  std::int64_t aborts = 0;
  std::int64_t flushes_completed = 0;
  std::int64_t alerts = 0;
};

class TxnClient;

/// One transactional context. Not thread-safe; a client may run many
/// transactions concurrently, each on its own Transaction object.
class Transaction {
 public:
  /// Buffer an insert/update of (row, column) = value.
  void put(const std::string& row, const std::string& column, std::string value);

  /// Buffer a delete of (row, column).
  void del(const std::string& row, const std::string& column);

  /// Snapshot read (sees this transaction's own buffered writes).
  Result<std::optional<std::string>> get(const std::string& row, const std::string& column);

  /// Snapshot scan of [start, end), up to `limit` rows. Buffered writes of
  /// this transaction are merged in.
  Result<std::vector<Cell>> scan(const std::string& start, const std::string& end,
                                 std::size_t limit);

  /// Commit. Returns the commit timestamp, or Aborted on a write-write
  /// conflict. After a successful return the transaction is durable.
  Result<Timestamp> commit();

  /// Discard the buffered write-set (§2.2: nothing is logged or flushed).
  void abort();

  Timestamp snapshot_ts() const { return handle_.start_ts; }
  bool finished() const { return finished_; }

 private:
  friend class TxnClient;
  Transaction(TxnClient* client, std::string table, TxnHandle handle)
      : client_(client), table_(std::move(table)), handle_(handle) {}

  TxnClient* client_;
  std::string table_;
  TxnHandle handle_;
  std::map<std::pair<std::string, std::string>, Mutation> buffer_;
  bool finished_ = false;
};

class TxnClient {
 public:
  TxnClient(std::string id, TxnManager& tm, Master& master, Coord& coord,
            TxnClientConfig config = {});
  ~TxnClient();

  TxnClient(const TxnClient&) = delete;
  TxnClient& operator=(const TxnClient&) = delete;

  /// Register with the recovery manager (coordination session) and start
  /// the heartbeat and flusher threads.
  Status start();

  /// Clean shutdown (Algorithm 1 lines 6-8): drain outstanding flushes,
  /// send a pre-shutdown heartbeat, unregister.
  Status close();

  /// Crash failure: heartbeats and flushes stop instantly; committed but
  /// un-flushed write-sets are stranded until the recovery manager detects
  /// the missed heartbeats and replays them from the TM log.
  void crash();

  /// Begin a transaction on `table`.
  Transaction begin(const std::string& table);

  const std::string& id() const { return id_; }
  Timestamp tf() const { return tracker_.tf(); }
  std::size_t flush_backlog() const { return tracker_.in_flight(); }

  /// Wait until every committed transaction has been flushed (FQ empty).
  bool wait_flushed(Micros timeout = seconds(30));

  /// Force one heartbeat now (tests use this instead of sleeping).
  void heartbeat_now() { heartbeat_tick(); }

  /// Change the heartbeat interval at runtime (the Figure 2(b) sweep). The
  /// failure-detection window scales with it (TTL = 3 intervals), as it
  /// must: a long interval with a short TTL reads as a dead client. Fails
  /// if the coord session is already expired or closed — the RM may be
  /// recovering this client, and re-registering a TTL would race with it.
  Status set_heartbeat_interval(Micros interval) {
    TFR_RETURN_IF_ERROR(coord_->update_ttl("clients", id_, interval * 3));
    heartbeats_.set_interval(interval);
    heartbeat_now();
    return Status::ok();
  }

  TxnClientStats stats() const;
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

 private:
  friend class Transaction;

  Timestamp pick_snapshot() const;
  Result<Timestamp> commit_writeset(const TxnHandle& handle, WriteSet ws);
  Result<std::optional<Cell>> read(const std::string& table, const std::string& row,
                                   const std::string& column, Timestamp read_ts);
  void heartbeat_tick();
  void flusher_loop();
  void join_flushers();

  std::string id_;
  TxnManager* tm_;
  Coord* coord_;
  TxnClientConfig config_;
  KvClient kv_;
  FlushTracker tracker_;

  std::atomic<bool> crashed_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> flush_cancel_{false};  // breaks the unlimited-retry loop
  BlockingQueue<WriteSet> flush_queue_;
  PeriodicTask heartbeats_;

  // Guards the thread handles: close() (caller thread) and crash() (the
  // self-terminator) may race to join the flushers — each claims the
  // handles under the lock and joins outside it, so a thread is joined
  // exactly once.
  RankedMutex<LockRank::kClientLifecycle> lifecycle_mutex_{"txn_client.lifecycle"};
  std::vector<std::thread> flushers_ TFR_GUARDED_BY(lifecycle_mutex_);
  std::thread self_terminator_ TFR_GUARDED_BY(lifecycle_mutex_);  // runs crash() (§3.1)

  std::atomic<std::int64_t> commits_{0};
  std::atomic<std::int64_t> aborts_{0};
  std::atomic<std::int64_t> flushes_completed_{0};
  std::atomic<std::int64_t> alerts_{0};
};

}  // namespace tfr
