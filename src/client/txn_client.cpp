#include "src/client/txn_client.h"

#include "src/common/logging.h"
#include "src/recovery/recovery_manager.h"  // kTfPath

namespace tfr {

// --- Transaction -------------------------------------------------------------

void Transaction::put(const std::string& row, const std::string& column, std::string value) {
  buffer_[{row, column}] = Mutation{row, column, std::move(value), false};
}

void Transaction::del(const std::string& row, const std::string& column) {
  buffer_[{row, column}] = Mutation{row, column, "", true};
}

Result<std::optional<std::string>> Transaction::get(const std::string& row,
                                                    const std::string& column) {
  // Read-your-own-writes: the buffered write-set shadows the store.
  auto it = buffer_.find({row, column});
  if (it != buffer_.end()) {
    if (it->second.is_delete) return std::optional<std::string>{};
    return std::optional<std::string>(it->second.value);
  }
  auto cell = client_->read(table_, row, column, handle_.start_ts);
  if (!cell.is_ok()) return cell.status();
  if (!cell.value()) return std::optional<std::string>{};
  return std::optional<std::string>(cell.value()->value);
}

Result<std::vector<Cell>> Transaction::scan(const std::string& start, const std::string& end,
                                            std::size_t limit) {
  auto cells = client_->kv_.scan(table_, start, end, handle_.start_ts, limit,
                                 client_->config_.read_retries);
  if (!cells.is_ok()) return cells;
  // Overlay this transaction's buffered writes on the snapshot.
  std::map<std::pair<std::string, std::string>, Cell> merged;
  for (auto& c : cells.value()) merged[{c.row, c.column}] = std::move(c);
  for (const auto& [key, m] : buffer_) {
    if (m.row < start || (!end.empty() && m.row >= end)) continue;
    if (m.is_delete) {
      merged.erase(key);
    } else {
      merged[key] = m.to_cell(handle_.start_ts);
    }
  }
  std::vector<Cell> out;
  out.reserve(merged.size());
  for (auto& [key, c] : merged) out.push_back(std::move(c));
  return out;
}

Result<Timestamp> Transaction::commit() {
  if (finished_) return Status::invalid_argument("transaction already finished");
  finished_ = true;
  WriteSet ws;
  ws.table = table_;
  ws.mutations.reserve(buffer_.size());
  for (auto& [key, m] : buffer_) ws.mutations.push_back(m);
  return client_->commit_writeset(handle_, std::move(ws));
}

void Transaction::abort() {
  if (finished_) return;
  finished_ = true;
  buffer_.clear();
  client_->tm_->abort(handle_);
  client_->aborts_.fetch_add(1, std::memory_order_relaxed);
}

// --- TxnClient ---------------------------------------------------------------

TxnClient::TxnClient(std::string id, TxnManager& tm, Master& master, Coord& coord,
                     TxnClientConfig config)
    : id_(std::move(id)),
      tm_(&tm),
      coord_(&coord),
      config_(config),
      kv_(master, config.flush_backoff),
      tracker_(kNoTimestamp),
      heartbeats_([this] { heartbeat_tick(); }, config.heartbeat_interval) {
  kv_.set_client_id(id_);
}

TxnClient::~TxnClient() {
  // A client that was closed cleanly or crashed has already joined its
  // threads; otherwise shut down cleanly now.
  if (!crashed() && running_.load(std::memory_order_acquire)) {
    TFR_IGNORE_STATUS(close(), "destructor close is best-effort; RM recovery is the backstop");
  }
  std::thread terminator;
  {
    MutexLock lock(lifecycle_mutex_);
    terminator = std::move(self_terminator_);
  }
  if (terminator.joinable()) terminator.join();
}

Status TxnClient::start() {
  // A fresh client has nothing in flight, so it can safely claim
  // TF(c) = the oracle's current timestamp (see FlushTracker's idle
  // fast-path): none of *its* transactions are unflushed.
  const Timestamp initial_tf = tm_->current_ts();
  tracker_.advance(initial_tf);
  TFR_RETURN_IF_ERROR(coord_->create_session("clients", id_, config_.session_ttl, initial_tf));
  running_.store(true, std::memory_order_release);
  {
    MutexLock lock(lifecycle_mutex_);
    for (int i = 0; i < config_.flusher_threads; ++i) {
      flushers_.emplace_back([this] { flusher_loop(); });
    }
  }
  heartbeats_.start();
  return Status::ok();
}

Status TxnClient::close() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return Status::ok();
  heartbeats_.stop();
  // Drain outstanding flushes so the pre-shutdown heartbeat reports a final,
  // fully-advanced TF(c).
  if (!wait_flushed(seconds(60))) {
    TFR_LOG(WARN, "client") << id_ << " closing with " << tracker_.in_flight()
                            << " unflushed transactions";
  }
  flush_cancel_.store(true, std::memory_order_release);
  flush_queue_.close();
  join_flushers();
  heartbeat_tick();  // pre-shutdown heartbeat (Algorithm 1 line 7)
  return coord_->close_session("clients", id_);
}

void TxnClient::crash() {
  if (crashed_.exchange(true, std::memory_order_acq_rel)) return;
  running_.store(false, std::memory_order_release);
  flush_cancel_.store(true, std::memory_order_release);
  heartbeats_.stop();
  flush_queue_.close();
  join_flushers();
  TFR_LOG(INFO, "client") << id_ << " CRASHED with " << tracker_.in_flight()
                          << " unflushed transactions (TF=" << tracker_.tf() << ")";
}

Timestamp TxnClient::pick_snapshot() const {
  if (config_.snapshot == SnapshotMode::kStable) {
    // Read at the published global flush threshold: everything at or below
    // it is fully flushed, so snapshots are never torn. Falls back to the
    // oracle when no recovery manager has published TF yet.
    if (auto tf = coord_->get(kTfPath)) return *tf;
  }
  return tm_->current_ts();
}

Transaction TxnClient::begin(const std::string& table) {
  const Timestamp snapshot = pick_snapshot();
  return Transaction(this, table, tm_->begin(snapshot, id_));
}

Result<std::optional<Cell>> TxnClient::read(const std::string& table, const std::string& row,
                                            const std::string& column, Timestamp read_ts) {
  if (crashed()) return Status::closed("client crashed: " + id_);
  return kv_.get(table, row, column, read_ts, config_.read_retries);
}

Result<Timestamp> TxnClient::commit_writeset(const TxnHandle& handle, WriteSet ws) {
  if (crashed()) return Status::closed("client crashed: " + id_);
  ws.client_id = id_;

  // Keep a copy for the post-commit flush; the TM consumes the original.
  WriteSet to_flush = ws;
  auto committed = tm_->commit(handle, std::move(ws),
                               [this](Timestamp ts) { tracker_.on_commit_ts(ts); });
  if (!committed.is_ok()) {
    if (committed.status().is_aborted()) aborts_.fetch_add(1, std::memory_order_relaxed);
    return committed;
  }
  const Timestamp commit_ts = committed.value();
  to_flush.commit_ts = commit_ts;
  commits_.fetch_add(1, std::memory_order_relaxed);

  if (to_flush.mutations.empty()) {
    // Read-only transaction: nothing to flush.
    tracker_.on_flushed(commit_ts);
    return commit_ts;
  }

  if (config_.sync_commit) {
    // Synchronous persistence: the write-set reaches (and is persisted by)
    // the servers before commit returns to the application.
    TFR_RETURN_IF_ERROR(kv_.flush_writeset(to_flush, std::nullopt, false, &flush_cancel_));
    tracker_.on_flushed(commit_ts);
    flushes_completed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Deferred flush: hand off to the flusher pool and return immediately —
    // the recovery log already guarantees durability.
    flush_queue_.push(std::move(to_flush));
  }
  return commit_ts;
}

void TxnClient::flusher_loop() {
  while (auto ws = flush_queue_.pop()) {
    // Pipelined flush: opportunistically drain whatever else is already
    // queued (up to the batch cap) so one RPC round covers many write-sets.
    std::vector<WriteSet> batch;
    batch.push_back(std::move(*ws));
    if (config_.pipelined_flush) {
      while (batch.size() < config_.flush_batch_max) {
        auto more = flush_queue_.try_pop();
        if (!more) break;
        batch.push_back(std::move(*more));
      }
    }
    Status s = batch.size() == 1
                   ? kv_.flush_writeset(batch.front(), std::nullopt, false, &flush_cancel_)
                   : kv_.flush_writesets(batch, &flush_cancel_);
    if (!s.is_ok()) {
      // Only cancellation (crash) can break the unlimited-retry loop.
      TFR_LOG(INFO, "client") << id_ << " flush of " << batch.size()
                              << " write-set(s) stopped: " << s;
      continue;
    }
    for (const WriteSet& flushed : batch) {
      tracker_.on_flushed(flushed.commit_ts);
      flushes_completed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void TxnClient::heartbeat_tick() {
  if (crashed()) return;
  // Fetch the oracle time FIRST (see FlushTracker's ordering contract),
  // then advance TF(c) and piggyback it on the heartbeat.
  const Timestamp current = tm_->current_ts();
  const Timestamp tf = tracker_.advance(current);
  Status hb = coord_->heartbeat("clients", id_, tf);
  if (hb.is_unavailable() && running_.load(std::memory_order_acquire)) {
    // §3.1: we were declared dead (e.g. a network partition outlived the
    // session TTL) and recovery is running on our behalf; our messages are
    // ignored, so terminate. crash() joins the heartbeat thread — this IS
    // the heartbeat thread — so run it from a dedicated terminator thread.
    TFR_LOG(WARN, "client") << id_ << " declared dead by the recovery manager; terminating";
    MutexLock lock(lifecycle_mutex_);
    if (!self_terminator_.joinable()) {
      self_terminator_ = std::thread([this] { crash(); });
    }
    return;
  }
  if (tracker_.in_flight() > config_.flush_queue_alert) {
    alerts_.fetch_add(1, std::memory_order_relaxed);
    TFR_LOG(WARN, "client") << id_ << " flush queue exceeds alert threshold: "
                            << tracker_.in_flight();
  }
}

void TxnClient::join_flushers() {
  std::vector<std::thread> to_join;
  {
    MutexLock lock(lifecycle_mutex_);
    to_join.swap(flushers_);
  }
  for (auto& t : to_join) t.join();
}

bool TxnClient::wait_flushed(Micros timeout) {
  const Micros deadline = now_micros() + timeout;
  for (;;) {
    // Drain matched FQ/FQ' pairs ourselves — the heartbeat task may already
    // be stopped (clean shutdown) or simply not due yet.
    tracker_.advance(tm_->current_ts());
    if (tracker_.in_flight() == 0 && flush_queue_.size() == 0) return true;
    if (now_micros() > deadline) return false;
    sleep_micros(millis(1));
  }
}

TxnClientStats TxnClient::stats() const {
  return TxnClientStats{commits_.load(std::memory_order_relaxed),
                        aborts_.load(std::memory_order_relaxed),
                        flushes_completed_.load(std::memory_order_relaxed),
                        alerts_.load(std::memory_order_relaxed)};
}

}  // namespace tfr
