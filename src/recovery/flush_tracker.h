// FlushTracker — the client side of the paper's checkpointing scheme
// (Algorithm 1). Maintains the client's flush-threshold timestamp TF(c),
// which obeys the local invariant:
//
//   every local transaction with commit timestamp T <= TF(c) has been fully
//   flushed to its participant servers.
//
// TF(c) advances monotonically *in local commit order* even when flushes
// complete out of order, using two synchronized priority queues:
//   FQ  — transactions that have committed (entered the commit phase)
//   FQ' — transactions whose write-set has been completely flushed
// When the heads of both queues carry the same timestamp, that transaction
// is the oldest committed one and it has been flushed, so TF(c) advances to
// it and both trackers are dequeued.
//
// Idle fast-path: when FQ is empty the client has nothing in flight, so
// every commit timestamp issued so far (by any client) is either someone
// else's responsibility or flushed here — TF(c) may jump to the oracle's
// current timestamp. This keeps an idle client from blocking the global TF.
// Correctness depends on an ordering guarantee from the transaction
// manager: on_commit_ts() is invoked inside the oracle's critical section,
// and the `current_ts` value passed to advance() must have been fetched
// AFTER that section (see TxnManager's header); advance() therefore never
// jumps past a transaction whose listener has not yet run.
#pragma once

#include <atomic>
#include <functional>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/queue.h"
#include "src/kv/types.h"

namespace tfr {

class FlushTracker {
 public:
  explicit FlushTracker(Timestamp initial_tf) : tf_(initial_tf) {}

  /// "On receiving commit timestamp T" — called by the TM's ts-listener
  /// inside the ordering critical section.
  void on_commit_ts(Timestamp ts) { fq_.push(ts); }

  /// "On post-flush of transaction T" — the whole write-set has been
  /// received by all participant servers.
  void on_flushed(Timestamp ts) { fq_flushed_.push(ts); }

  /// The heartbeat step: advance TF(c) through matched queue heads.
  /// `current_ts` is the oracle's current timestamp (fetched after any
  /// in-flight ts assignments), used for the idle fast-path; pass
  /// kNoTimestamp to disable it.
  Timestamp advance(Timestamp current_ts);

  Timestamp tf() const { return tf_.load(std::memory_order_acquire); }

  /// |FQ| — commits whose flush has not yet been matched; the §3.2 alert
  /// monitors this.
  std::size_t in_flight() const { return fq_.size(); }

 private:
  // Serializes concurrent advance() calls (the heartbeat task and
  // wait_flushed() both call it); without it two racing advances can pop
  // mismatched queue heads and publish a regressing TF(c).
  RankedMutex<LockRank::kRecoveryTracker> advance_mutex_{"flush_tracker.advance"};
  SyncedMinQueue<Timestamp> fq_;          // committed, in commit order
  SyncedMinQueue<Timestamp> fq_flushed_;  // flushed
  std::atomic<Timestamp> tf_;
};

/// Ablation A2 baseline: report the exact set of flushed commit timestamps
/// in every heartbeat instead of a single threshold. Correct but with a
/// message size proportional to throughput x heartbeat interval (§3.1
/// discusses exactly this trade-off).
class ExactFlushReporter {
 public:
  void on_flushed(Timestamp ts) { flushed_.push(ts); }

  /// Drain everything flushed since the last heartbeat; the returned vector
  /// is what would travel on the wire.
  std::vector<Timestamp> drain() {
    std::vector<Timestamp> out;
    while (auto item = flushed_.pop()) out.push_back(item->first);
    return out;
  }

  static std::size_t payload_bytes(const std::vector<Timestamp>& v) {
    return v.size() * sizeof(Timestamp);
  }

 private:
  SyncedMinQueue<Timestamp> flushed_;
};

}  // namespace tfr
