#include "src/recovery/recovery_client.h"

namespace tfr {

Status RecoveryClient::replay_for_client(const WriteSet& ws) {
  TFR_RETURN_IF_ERROR(kv_.flush_writeset(ws, std::nullopt, /*recovery_replay=*/true));
  MutexLock lock(mutex_);
  ++stats_.client_writesets_replayed;
  stats_.mutations_replayed += static_cast<std::int64_t>(ws.mutations.size());
  return Status::ok();
}

Status RecoveryClient::replay_for_region(const WriteSet& ws, const RegionDescriptor& region,
                                         Timestamp failed_server_tp) {
  // Algorithm 4, replay(): keep only the updates that fall in region r.
  WriteSet filtered;
  filtered.txn_id = ws.txn_id;
  filtered.client_id = ws.client_id;
  filtered.commit_ts = ws.commit_ts;  // original timestamp, never a fresh one
  filtered.table = ws.table;
  std::int64_t skipped = 0;
  for (const auto& m : ws.mutations) {
    if (ws.table == region.table && region.contains(m.row)) {
      filtered.mutations.push_back(m);
    } else {
      ++skipped;
    }
  }
  {
    MutexLock lock(mutex_);
    stats_.mutations_skipped += skipped;
  }
  if (filtered.mutations.empty()) return Status::ok();
  TFR_RETURN_IF_ERROR(
      kv_.flush_writeset(filtered, failed_server_tp, /*recovery_replay=*/true));
  MutexLock lock(mutex_);
  ++stats_.region_writesets_replayed;
  stats_.mutations_replayed += static_cast<std::int64_t>(filtered.mutations.size());
  return Status::ok();
}

RecoveryClientStats RecoveryClient::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace tfr
