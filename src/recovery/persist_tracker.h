// PersistTracker — the server side of the paper's checkpointing scheme
// (Algorithm 3). Maintains the server's persist-threshold timestamp TP(s):
//
//   every transaction with commit timestamp T <= TP(s) in which s
//   participates has been received in full AND persisted (its WAL records
//   are durable in the DFS).
//
// A server cannot deduce this locally — a gap in received timestamps may
// mean "not a participant" or "flush still in flight" (§3.2's 20/21/22/23
// example). So the tracker advances conservatively using the *global* flush
// threshold TF published by the recovery manager: on every heartbeat it
// syncs the WAL (persisting everything received so far) and then sets
// TP(s) := TF, because TF guarantees that every committed transaction with
// T <= TF has been fully received by its participants.
//
// Inheritance rule (§3.2): when the recovery client replays an update with a
// piggybacked TP(s_failed), the receiving server lowers its own threshold to
// it — otherwise a second failure in the window before the next WAL sync
// could lose the replayed update, since recovery for *this* server would
// only replay transactions after its own (higher) TP.
//
// The tracker installs itself into the region server's two extension
// points: the write-set observer and the pre-heartbeat hook.
#pragma once

#include <functional>
#include <optional>

#include "src/common/queue.h"
#include "src/kv/region_server.h"
#include "src/kv/types.h"

namespace tfr {

class PersistTracker {
 public:
  /// `fetch_global_tf`: reads the recovery manager's published TF (via the
  /// coordination service). `initial_tp`: the global TP at registration
  /// time (Algorithm 4, on register).
  PersistTracker(RegionServer& server, std::function<Timestamp()> fetch_global_tf,
                 Timestamp initial_tp);

  /// Wire this tracker into the server's hooks. The server will then call
  /// on_received() for every write-set and heartbeat_payload() before every
  /// heartbeat.
  void install();

  /// Algorithm 3, "On receive": track the write-set; inherit a piggybacked
  /// threshold. Returns true if an immediate heartbeat should follow (the
  /// threshold was lowered and the recovery manager should learn quickly).
  bool on_received(Timestamp commit_ts, std::optional<Timestamp> piggyback_tp);

  /// Algorithm 3, "On heartbeat": persist everything received (WAL sync),
  /// advance TP(s) to the global TF, and return TP(s) as the payload.
  Timestamp heartbeat_payload();

  Timestamp tp() const;

  /// |PQ| — received write-sets not yet covered by TP(s); the §3.2 alert
  /// monitors this.
  std::size_t queue_size() const { return pq_.size(); }

 private:
  RegionServer* server_;
  std::function<Timestamp()> fetch_global_tf_;

  // Serializes the persist-and-advance step against threshold inheritance;
  // see the interleaving argument in persist_tracker.cpp. Deliberately held
  // across Wal::sync, hence ranked above kWalSync.
  mutable RankedMutex<LockRank::kRecoveryTracker> mutex_{"persist_tracker"};
  Timestamp tp_ TFR_GUARDED_BY(mutex_);
  SyncedMinQueue<Timestamp> pq_;  // received, in commit order
};

}  // namespace tfr
