#include "src/recovery/flush_tracker.h"

#include <cassert>

namespace tfr {

Timestamp FlushTracker::advance(Timestamp current_ts) {
  Timestamp tf = tf_.load(std::memory_order_acquire);
  for (;;) {
    auto committed = fq_.head();
    auto flushed = fq_flushed_.head();
    if (!committed || !flushed) break;
    if (*committed == *flushed) {
      // Earliest tracked commit has completed its flush: make progress.
      tf = *committed;
      fq_.pop();
      fq_flushed_.pop();
    } else {
      // The oldest committed transaction is still flushing; TF(c) must
      // respect the local commit order, so stop here. (A flushed head
      // *older* than the committed head is impossible: every flushed
      // transaction was enqueued to FQ at commit time and FQ's head is the
      // minimum outstanding.)
      assert(*flushed > *committed);
      break;
    }
  }
  if (current_ts != kNoTimestamp && fq_.size() == 0 && current_ts > tf) {
    // Idle fast-path — see header comment for the ordering argument.
    tf = current_ts;
  }
  // advance() races only with itself via the heartbeat task, which
  // serializes calls; on_commit_ts/on_flushed touch only the queues.
  tf_.store(tf, std::memory_order_release);
  return tf;
}

}  // namespace tfr
