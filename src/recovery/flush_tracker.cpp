#include "src/recovery/flush_tracker.h"

#include <cassert>

namespace tfr {

Timestamp FlushTracker::advance(Timestamp current_ts) {
  // The old comment here claimed advance() races only with itself via the
  // heartbeat task — but TxnClient::wait_flushed() also drains from the
  // caller thread. Unserialized, two advances can interleave their FQ/FQ-
  // flushed pops and the slower one can store an older TF over a newer one,
  // breaking the monotonicity Algorithm 1 requires of TF(c).
  MutexLock lock(advance_mutex_);
  Timestamp tf = tf_.load(std::memory_order_acquire);
  for (;;) {
    auto committed = fq_.head();
    auto flushed = fq_flushed_.head();
    if (!committed || !flushed) break;
    if (*committed == *flushed) {
      // Earliest tracked commit has completed its flush: make progress.
      tf = *committed;
      fq_.pop();
      fq_flushed_.pop();
    } else {
      // The oldest committed transaction is still flushing; TF(c) must
      // respect the local commit order, so stop here. (A flushed head
      // *older* than the committed head is impossible: every flushed
      // transaction was enqueued to FQ at commit time and FQ's head is the
      // minimum outstanding.)
      assert(*flushed > *committed);
      break;
    }
  }
  if (current_ts != kNoTimestamp && fq_.size() == 0 && current_ts > tf) {
    // Idle fast-path — see header comment for the ordering argument.
    tf = current_ts;
  }
  // on_commit_ts/on_flushed touch only the (internally synced) queues and
  // need no serialization with this store.
  tf_.store(tf, std::memory_order_release);
  return tf;
}

}  // namespace tfr
