// RecoveryManager — the paper's failure-recovery middleware (§3), a service
// associated with the transaction manager that coordinates failure detection
// and recovery across clients and servers (Algorithms 2 and 4).
//
// Normal processing:
//   * clients and servers heartbeat through the coordination service,
//     piggybacking their threshold timestamps TF(c) / TP(s);
//   * the RM polls those payloads, maintains the per-component registries,
//     and derives the global thresholds
//        TF = min_c TF(c)   (all txns <= TF fully flushed)
//        TP = min_s TP(s)   (all txns <= TP flushed AND persisted), TP <= TF
//   * TF and TP are published to the coordination service — TF feeds the
//     servers' persist step (Algorithm 3) and the clients' stable read
//     snapshots; TP is the global checkpoint at which the TM recovery log is
//     truncated.
//
// Client failure (session expiry): fetch from the TM log every write-set
// committed by that client after its last reported TF(c) and replay it via
// the recovery client. Until the replay completes, TF is floored at TFr(c)
// so no server can claim persistence of a transaction that is still being
// re-flushed.
//
// Server failure (master hook): after the store's internal per-region
// recovery, and while the region is still gated, fetch every write-set
// committed after the failed server's TPr(s), filter it to the region, and
// replay it with TPr(s) piggybacked. TP is floored at TPr(s) until all of
// the server's regions are recovered, so the log cannot be truncated under
// a pending replay.
//
// RM failure: all state lives in heartbeats, the published thresholds, and
// durable recovery markers in the coordination service; recover_state()
// rebuilds the registries and *resumes in-flight recoveries* from those
// markers (§3.3). Transaction processing continues while the RM is down.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <thread>

#include "src/common/queue.h"
#include "src/common/threading.h"
#include "src/coord/coord.h"
#include "src/kv/master.h"
#include "src/recovery/recovery_client.h"
#include "src/recovery/threshold_registry.h"
#include "src/txn/txn_manager.h"

namespace tfr {

struct RecoveryManagerConfig {
  /// How often the RM ingests heartbeat payloads and refreshes TF/TP.
  Micros poll_interval = millis(100);

  /// Truncate the TM log at TP on every refresh when true.
  bool checkpoint_log = true;

  /// Ablation baseline: ignore the TF(c)/TP(s) thresholds during recovery
  /// and replay the whole recovery log (correct — replay is idempotent —
  /// but "extremely inefficient", §3). Implies checkpoint_log = false.
  bool ignore_thresholds = false;
};

struct RecoveryManagerStats {
  std::int64_t client_recoveries = 0;
  std::int64_t server_recoveries = 0;
  std::int64_t regions_recovered = 0;
  std::int64_t writesets_replayed_client = 0;
  std::int64_t writesets_replayed_server = 0;
  std::int64_t threshold_refreshes = 0;
  /// Pending replay floors migrated across topology transitions: one count
  /// per daughter that min-inherited a splitting parent's floor, resp. per
  /// merged region that min-inherited its parents' floors.
  std::int64_t split_floor_inheritances = 0;
  std::int64_t merge_floor_inheritances = 0;
};

/// Coordination-service paths where the global thresholds are published.
inline constexpr const char* kTfPath = "/tfr/TF";
inline constexpr const char* kTpPath = "/tfr/TP";

/// Durable recovery markers (coordination-service KV). They make in-flight
/// recoveries survive an RM restart: without them, an RM that dies between
/// "server declared failed" and "last region replayed" would forget the
/// pending replays, regions would come online without their un-persisted
/// write-sets, and committed transactions would be lost.
///   <region prefix>/<region>  = TPr(s) of the failure being recovered
///   <client prefix>/<client>  = TFr(c) of the failed client
///   <registry prefix>/<client> = last TF(c) of each registered client, so a
///     client that dies while no RM is listening is still detected.
inline constexpr const char* kRecoveringRegionPrefix = "/tfr/recovering/region/";
/// <epoch prefix>/<region> = ownership epoch fenced by the failure handling:
/// the gate only accepts a replay once the master's current grant is at
/// least this epoch, so a stale owner cannot consume the replay obligation.
inline constexpr const char* kRecoveringEpochPrefix = "/tfr/recovering/epoch/";
inline constexpr const char* kRecoveringClientPrefix = "/tfr/recovering/client/";
inline constexpr const char* kClientRegistryPrefix = "/tfr/registry/client/";

class RecoveryManager : public MasterHooks {
 public:
  RecoveryManager(Coord& coord, TxnManager& tm, Master& master,
                  RecoveryManagerConfig config = {});
  ~RecoveryManager() override;

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  /// Subscribe to session events, install the master hooks, start polling.
  void start();
  void stop();

  /// Rebuild registries after an RM restart (§3.3): adopt the published
  /// thresholds and the currently-live sessions, reload the pending-region
  /// floors, and re-enqueue interrupted or missed client recoveries from the
  /// durable markers (replay is idempotent, so resuming from the original
  /// floor is safe). Call before start().
  void recover_state();

  // --- MasterHooks (server failure path, §3.2) ------------------------------

  void on_server_failure(const std::string& server_id,
                         const std::vector<std::string>& regions) override;

  /// Topology transitions (§9). A splitting parent's pending replay floor
  /// migrates to BOTH daughters (TP-inheritance extended to splits: each
  /// daughter's TPr is min-merged with the parent's); only after the
  /// daughters durably hold the floor is the parent's entry erased
  /// (floors-before-erase). A merge min-inherits any parent's pending
  /// floor into the merged region the same way — defensively, since the
  /// master refuses merges of recovering regions via is_region_recovering.
  void on_region_split(const std::string& parent, const std::vector<std::string>& daughters,
                       std::uint64_t new_epoch) override;
  void on_regions_merged(const std::string& merged, const std::vector<std::string>& parents,
                         std::uint64_t new_epoch) override;
  bool is_region_recovering(const std::string& region) override;

  /// Region gate, called by a region server after internal recovery and
  /// before the region goes online. Blocks for the transactional replay.
  void on_region_recovered(const std::string& region_name, const std::string& server_id);

  // --- thresholds ------------------------------------------------------------

  Timestamp global_tf() const;
  Timestamp global_tp() const;

  /// The lowest threshold floor held by any in-flight recovery: min over
  /// pending-region TPr(s) floors and client TFr(c) floors, kMaxTimestamp
  /// when none is pending. Every recovery still fetches from the TM log
  /// above this bound, so the log's segment GC must never delete a record
  /// at or below it — the invariant the cascading-failure soak monitors.
  Timestamp min_recovery_floor() const;

  /// Force one poll/refresh now (tests use this instead of sleeping).
  void refresh_now() { poll_tick(); }

  RecoveryManagerStats stats() const;
  const RecoveryClientStats recovery_client_stats() const { return recovery_client_.stats(); }

  /// Block until no client/server recovery is in flight.
  void wait_for_idle() const;

 private:
  void poll_tick();
  void on_client_session(const SessionInfo& info, bool expired);
  void on_server_session(const SessionInfo& info, bool expired);
  void recover_client(const std::string& client_id, Timestamp tfr);
  void publish_locked() TFR_REQUIRES(mutex_);
  Timestamp compute_tf_locked() const TFR_REQUIRES(mutex_);
  Timestamp compute_tp_locked() const TFR_REQUIRES(mutex_);

  Coord* coord_;
  TxnManager* tm_;
  Master* master_;
  RecoveryManagerConfig config_;
  RecoveryClient recovery_client_;

  mutable RankedMutex<LockRank::kRecoveryManager> mutex_{"recovery_manager"};
  mutable CondVar idle_cv_;
  /// Registries C and S (Algorithms 2/4), striped so per-component updates
  /// and the min aggregation don't serialize on one mutex. Internally
  /// synchronized; mutations that must be atomic with the recovery floors
  /// or the publish step still run under mutex_ (stripe locks rank below
  /// it, so nesting is legal).
  ShardedThresholdRegistry client_tf_;  // registry C: client -> TF(c)
  ShardedThresholdRegistry server_tp_;  // registry S: server -> TP(s)
  /// Published thresholds: written under mutex_, readable lock-free (the
  /// hot global_tf()/global_tp() queries never touch the RM mutex).
  std::atomic<Timestamp> published_tf_{kNoTimestamp};
  std::atomic<Timestamp> published_tp_{kNoTimestamp};

  /// Floors held during in-flight client recoveries (see header comment).
  std::map<std::string, Timestamp> client_recovery_floor_
      TFR_GUARDED_BY(mutex_);  // client -> TFr(c)

  /// Regions still awaiting transactional replay. Each entry floors the
  /// global TP at its TPr(s) until the replay completes, and is mirrored
  /// durably under kRecoveringRegionPrefix so an RM restart resumes it.
  struct PendingRegion {
    std::string failed_server;  // informational; "?" after an RM restart
    Timestamp tpr = kNoTimestamp;
    /// Epoch the master fenced the region at when handling the failure
    /// (0 = unknown, e.g. markers written before fencing existed).
    std::uint64_t fenced_epoch = 0;
  };
  std::map<std::string, PendingRegion> pending_regions_ TFR_GUARDED_BY(mutex_);

  /// Tombstones for servers whose failure was already handled but whose
  /// coordination session has not expired yet (the master can detect a death
  /// early, from a failed open_region). Without them, poll_tick's ingest of
  /// the stale still-live session — or the eventual expiry event itself —
  /// would resurrect the erased server_tp_ entry and pin the global TP at
  /// the dead server's last payload forever. The expiry event consumes the
  /// tombstone, so a restarted server under the same name starts clean.
  std::set<std::string> failed_servers_ TFR_GUARDED_BY(mutex_);

  RecoveryManagerStats stats_ TFR_GUARDED_BY(mutex_);
  PeriodicTask poller_;
  bool started_ = false;
  int client_listener_id_ = 0;
  int server_listener_id_ = 0;

  /// Client recoveries run here, off the coordination service's expiry
  /// thread: a replay can block on an offline region, and the expiry thread
  /// must stay free to detect the server failure that caused it.
  BlockingQueue<std::function<void()>> work_;
  std::thread worker_;
};

}  // namespace tfr
