// RecoveryClient cR — the recovery manager's local client (§3.1/§3.2). It
// differs from a regular client in three ways:
//
//  1. it replays write-sets using the commit timestamp of the original
//     transaction instead of requesting a fresh one (replay is therefore
//     idempotent — same version, same cells);
//  2. during server recovery it filters each write-set to the updates that
//     fall within the affected region, skipping the rest (Algorithm 4,
//     replay);
//  3. during server recovery it piggybacks the failed server's TP(s) on
//     every replayed write-set so the receiving server inherits
//     responsibility for the replayed updates.
#pragma once

#include "src/kv/kv_client.h"

namespace tfr {

struct RecoveryClientStats {
  std::int64_t client_writesets_replayed = 0;
  std::int64_t region_writesets_replayed = 0;
  std::int64_t mutations_replayed = 0;
  std::int64_t mutations_skipped = 0;  // outside the recovering region
};

class RecoveryClient {
 public:
  explicit RecoveryClient(Master& master) : kv_(master) {}

  /// Client recovery: replay the full write-set with its original commit
  /// timestamp to whatever servers currently host its rows.
  Status replay_for_client(const WriteSet& ws);

  /// Server recovery: replay only the updates of `ws` that fall within
  /// `region`, piggybacking the failed server's TP(s). No-op if the
  /// write-set has no update in the region.
  Status replay_for_region(const WriteSet& ws, const RegionDescriptor& region,
                           Timestamp failed_server_tp);

  RecoveryClientStats stats() const;

 private:
  KvClient kv_;
  mutable RankedMutex<LockRank::kRecoveryTracker> mutex_{"recovery_client"};
  RecoveryClientStats stats_ TFR_GUARDED_BY(mutex_);
};

}  // namespace tfr
