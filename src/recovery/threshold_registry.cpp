#include "src/recovery/threshold_registry.h"

#include <algorithm>
#include <functional>

namespace tfr {

namespace {
Timestamp min_of(const std::map<std::string, Timestamp>& entries) {
  Timestamp m = kMaxTimestamp;
  for (const auto& [id, ts] : entries) m = std::min(m, ts);
  return m;
}
}  // namespace

ShardedThresholdRegistry::ShardedThresholdRegistry(std::size_t stripes) {
  stripes_.reserve(std::max<std::size_t>(1, stripes));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, stripes); ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

ShardedThresholdRegistry::Stripe& ShardedThresholdRegistry::stripe_for(
    const std::string& id) const {
  return *stripes_[std::hash<std::string>{}(id) % stripes_.size()];
}

void ShardedThresholdRegistry::raise(const std::string& id, Timestamp ts) {
  Stripe& s = stripe_for(id);
  MutexLock lock(s.mutex);
  auto it = s.entries.find(id);
  if (it != s.entries.end()) {
    if (ts <= it->second) return;  // max-merge: nothing rises, min unchanged
    it->second = ts;
  } else {
    s.entries.emplace(id, ts);
  }
  s.published_min.store(min_of(s.entries), std::memory_order_release);
}

void ShardedThresholdRegistry::set(const std::string& id, Timestamp ts) {
  Stripe& s = stripe_for(id);
  MutexLock lock(s.mutex);
  s.entries[id] = ts;
  s.published_min.store(min_of(s.entries), std::memory_order_release);
}

void ShardedThresholdRegistry::lower(const std::string& id, Timestamp ts) {
  Stripe& s = stripe_for(id);
  MutexLock lock(s.mutex);
  auto it = s.entries.find(id);
  if (it != s.entries.end()) {
    if (ts >= it->second) return;  // min-merge: nothing lowers, min unchanged
    it->second = ts;
  } else {
    s.entries.emplace(id, ts);
  }
  s.published_min.store(min_of(s.entries), std::memory_order_release);
}

bool ShardedThresholdRegistry::erase(const std::string& id) {
  Stripe& s = stripe_for(id);
  MutexLock lock(s.mutex);
  const bool existed = s.entries.erase(id) != 0;
  if (existed) s.published_min.store(min_of(s.entries), std::memory_order_release);
  return existed;
}

std::optional<Timestamp> ShardedThresholdRegistry::get(const std::string& id) const {
  Stripe& s = stripe_for(id);
  MutexLock lock(s.mutex);
  auto it = s.entries.find(id);
  if (it == s.entries.end()) return std::nullopt;
  return it->second;
}

std::size_t ShardedThresholdRegistry::size() const {
  std::size_t n = 0;
  for (const auto& s : stripes_) {
    MutexLock lock(s->mutex);
    n += s->entries.size();
  }
  return n;
}

Timestamp ShardedThresholdRegistry::min() const {
  Timestamp m = kMaxTimestamp;
  for (const auto& s : stripes_) {
    m = std::min(m, s->published_min.load(std::memory_order_acquire));
  }
  return m;
}

std::vector<std::pair<std::string, Timestamp>> ShardedThresholdRegistry::snapshot() const {
  std::vector<std::pair<std::string, Timestamp>> out;
  for (const auto& s : stripes_) {
    MutexLock lock(s->mutex);
    for (const auto& [id, ts] : s->entries) out.emplace_back(id, ts);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ShardedThresholdRegistry::clear() {
  for (const auto& s : stripes_) {
    MutexLock lock(s->mutex);
    s->entries.clear();
    s->published_min.store(kMaxTimestamp, std::memory_order_release);
  }
}

}  // namespace tfr
