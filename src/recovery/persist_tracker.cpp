#include "src/recovery/persist_tracker.h"

#include "src/common/logging.h"

namespace tfr {

PersistTracker::PersistTracker(RegionServer& server, std::function<Timestamp()> fetch_global_tf,
                               Timestamp initial_tp)
    : server_(&server), fetch_global_tf_(std::move(fetch_global_tf)), tp_(initial_tp) {}

void PersistTracker::install() {
  server_->set_writeset_observer([this](Timestamp ts, std::optional<Timestamp> piggyback) {
    if (on_received(ts, piggyback)) {
      // Algorithm 3: an inherited (lowered) threshold is reported to the
      // recovery manager immediately, not at the next periodic heartbeat.
      server_->heartbeat_now();
    }
  });
  server_->set_pre_heartbeat_hook([this] { return heartbeat_payload(); });
}

bool PersistTracker::on_received(Timestamp commit_ts, std::optional<Timestamp> piggyback_tp) {
  MutexLock lock(mutex_);
  pq_.push(commit_ts);
  if (piggyback_tp && *piggyback_tp < tp_) {
    // Inherit responsibility for the failed server's un-persisted window.
    TFR_LOG(INFO, "tracker") << server_->id() << " inherits TP " << *piggyback_tp
                             << " (was " << tp_ << ")";
    tp_ = *piggyback_tp;
    return true;  // Algorithm 3: heartbeat() right away
  }
  return false;
}

Timestamp PersistTracker::heartbeat_payload() {
  // Fetch TF first: every transaction with T <= TF has been fully flushed,
  // so after the WAL sync below everything this server received up to TF is
  // durable.
  const Timestamp tf = fetch_global_tf_ ? fetch_global_tf_() : kNoTimestamp;

  // Holding the mutex across the WAL sync serializes this step against
  // threshold inheritance. Why that matters: a replayed update u with
  // commit timestamp T > TP(s_failed) that arrives *after* our sync is not
  // yet durable here; if we then advanced TP(s) to a TF >= T, a crash of
  // this server would lose u — recovery would only replay after TP(s) >= T.
  // With the mutex held, u's WAL append (which precedes its observer call)
  // either lands before our sync (durable, fine) or its inheritance runs
  // after our advance and lowers TP(s) again (conservative, fine).
  MutexLock lock(mutex_);
  if (tf == kNoTimestamp || tf <= tp_) {
    // Nothing new to learn; still report the (possibly inherited) TP.
    return tp_;
  }
  // tfr-lint: blocking-ok(Algorithm 3 probe-and-publish: the tracker mutex must
  // be held across the sync so a concurrent inheritance serializes with the
  // TP advance; kRecoveryTracker is may_block=true in the rank table)
  Status synced = server_->persist_wal();
  if (!synced.is_ok()) {
    TFR_LOG(WARN, "tracker") << server_->id() << " persist failed: " << synced;
    return tp_;
  }
  pq_.pop_through(tf);  // received and now persisted, covered by TP(s)
  tp_ = tf;
  return tp_;
}

Timestamp PersistTracker::tp() const {
  MutexLock lock(mutex_);
  return tp_;
}

}  // namespace tfr
