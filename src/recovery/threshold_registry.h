// ShardedThresholdRegistry — the striped per-component threshold table the
// recovery manager keeps for Algorithm 2's registry C (client -> TF(c)) and
// Algorithm 4's registry S (server -> TP(s)).
//
// The old representation was a std::map inside the recovery-manager mutex,
// so every per-component update and every global-min computation serialized
// on one lock. Here entries are hashed across independent stripes, each with
// its own mutex, and every stripe re-publishes its local minimum into an
// atomic after each mutation. The global aggregation
//
//     TF = min_c TF(c)  /  TP = min_s TP(s)
//
// then reads one atomic per stripe and takes no locks at all.
//
// Why the lock-free min is safe for Algorithm 2 (the full argument is in
// DESIGN.md "Sharded threshold registries"):
//   * raise() is a max-merge — an entry only ever rises — so a min() scan
//     racing concurrent raises can only UNDER-estimate the instantaneous
//     minimum. TF is a promise that everything at or below it is flushed;
//     an under-estimate weakens the promise, never breaks it.
//   * the dangerous direction — an entry DISAPPEARING so min() overshoots a
//     component that still has unflushed transactions — only happens via
//     erase(), and the recovery manager only erases while holding its own
//     mutex with the matching recovery floor installed first, so the
//     aggregated threshold is floored before the constraint is removed.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/annotations.h"
#include "src/kv/types.h"

namespace tfr {

class ShardedThresholdRegistry {
 public:
  static constexpr std::size_t kDefaultStripes = 16;

  explicit ShardedThresholdRegistry(std::size_t stripes = kDefaultStripes);

  ShardedThresholdRegistry(const ShardedThresholdRegistry&) = delete;
  ShardedThresholdRegistry& operator=(const ShardedThresholdRegistry&) = delete;

  /// Max-merge: create the entry, or raise it monotonically (the TF(c)
  /// ingestion path — a stale heartbeat payload can never lower a
  /// threshold).
  void raise(const std::string& id, Timestamp ts);

  /// Overwrite verbatim (the TP(s) ingestion path: inheritance can
  /// legitimately lower a server's threshold).
  void set(const std::string& id, Timestamp ts);

  /// Min-merge: create the entry, or lower it (the crash-payload path —
  /// keep the most conservative value seen).
  void lower(const std::string& id, Timestamp ts);

  /// Remove the entry. Returns true if it existed. See the header comment:
  /// callers must install any needed floor BEFORE erasing.
  bool erase(const std::string& id);

  std::optional<Timestamp> get(const std::string& id) const;
  std::size_t size() const;

  /// min over all entries, kMaxTimestamp when empty. Lock-free: reads each
  /// stripe's published minimum.
  Timestamp min() const;

  std::vector<std::pair<std::string, Timestamp>> snapshot() const;
  void clear();

 private:
  struct Stripe {
    mutable RankedMutex<LockRank::kThresholdRegistry> mutex{"threshold_registry"};
    std::map<std::string, Timestamp> entries TFR_GUARDED_BY(mutex);
    /// Stripe-local minimum, re-published under the stripe mutex after
    /// every mutation that can change it; kMaxTimestamp when empty.
    std::atomic<Timestamp> published_min{kMaxTimestamp};
  };

  Stripe& stripe_for(const std::string& id) const;

  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace tfr
