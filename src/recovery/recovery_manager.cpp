#include "src/recovery/recovery_manager.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/queue.h"

namespace tfr {

RecoveryManager::RecoveryManager(Coord& coord, TxnManager& tm, Master& master,
                                 RecoveryManagerConfig config)
    : coord_(&coord),
      tm_(&tm),
      master_(&master),
      config_(config),
      recovery_client_(master),
      poller_([this] { poll_tick(); }, config.poll_interval) {}

RecoveryManager::~RecoveryManager() { stop(); }

void RecoveryManager::start() {
  {
    MutexLock lock(mutex_);
    if (started_) return;
    started_ = true;
    publish_locked();  // make the TF/TP znodes exist from the start
  }
  client_listener_id_ = coord_->add_listener(
      "clients",
      [this](const SessionInfo& info, bool expired) { on_client_session(info, expired); });
  server_listener_id_ = coord_->add_listener(
      "servers",
      [this](const SessionInfo& info, bool expired) { on_server_session(info, expired); });
  master_->set_hooks(this);
  worker_ = std::thread([this] {
    while (auto task = work_.pop()) (*task)();
  });
  poller_.start();
  TFR_LOG(INFO, "rm") << "recovery manager started";
}

void RecoveryManager::stop() {
  poller_.stop();
  // Unhook from the coordination service so no session event can reach a
  // dying instance (the restart path replaces the RM object).
  if (client_listener_id_ != 0) coord_->remove_listener("clients", client_listener_id_);
  if (server_listener_id_ != 0) coord_->remove_listener("servers", server_listener_id_);
  client_listener_id_ = server_listener_id_ = 0;
  work_.close();
  if (worker_.joinable()) worker_.join();
}

void RecoveryManager::recover_state() {
  std::vector<std::pair<std::string, Timestamp>> resume;  // client -> TFr(c)
  {
    MutexLock lock(mutex_);
    // §3.3: the thresholds are recoverable from the coordination service; the
    // registries repopulate from the live sessions' piggybacked payloads.
    if (auto tf = coord_->get(kTfPath)) {
      published_tf_.store(std::max(published_tf_.load(std::memory_order_relaxed), *tf),
                          std::memory_order_relaxed);
    }
    if (auto tp = coord_->get(kTpPath)) {
      published_tp_.store(std::max(published_tp_.load(std::memory_order_relaxed), *tp),
                          std::memory_order_relaxed);
    }
    client_tf_.clear();
    server_tp_.clear();
    for (const auto& s : coord_->live_sessions("clients")) client_tf_.set(s.name, s.payload);
    for (const auto& s : coord_->live_sessions("servers")) server_tp_.set(s.name, s.payload);

    // Re-adopt the in-flight server recoveries: every pending region floors
    // TP again at its TPr(s), and a gate firing after the restart still finds
    // its region pending and replays.
    pending_regions_.clear();
    const std::size_t region_prefix = std::string(kRecoveringRegionPrefix).size();
    for (const auto& [path, tpr] : coord_->list(kRecoveringRegionPrefix)) {
      pending_regions_[path.substr(region_prefix)] = PendingRegion{"?", tpr};
    }
    const std::size_t epoch_prefix = std::string(kRecoveringEpochPrefix).size();
    for (const auto& [path, epoch] : coord_->list(kRecoveringEpochPrefix)) {
      auto it = pending_regions_.find(path.substr(epoch_prefix));
      if (it != pending_regions_.end()) {
        it->second.fenced_epoch = static_cast<std::uint64_t>(epoch);
      } else {
        coord_->erase(path);  // stale leftover: its region marker is gone
      }
    }

    // Interrupted client recoveries restart from their original TFr(c);
    // re-flushing write-sets the old RM already replayed is idempotent.
    const std::size_t client_prefix = std::string(kRecoveringClientPrefix).size();
    for (const auto& [path, tfr] : coord_->list(kRecoveringClientPrefix)) {
      resume.emplace_back(path.substr(client_prefix), tfr);
    }

    // Clients that died while no RM was listening: durably registered, but
    // neither live nor already being recovered.
    const std::size_t registry_prefix = std::string(kClientRegistryPrefix).size();
    for (const auto& [path, tfc] : coord_->list(kClientRegistryPrefix)) {
      const std::string id = path.substr(registry_prefix);
      if (client_tf_.get(id)) continue;
      const bool already_resuming = std::any_of(
          resume.begin(), resume.end(), [&](const auto& r) { return r.first == id; });
      if (already_resuming) continue;
      coord_->put(kRecoveringClientPrefix + id, tfc);
      coord_->erase(path);
      resume.emplace_back(id, tfc);
    }

    for (const auto& [id, tfr] : resume) {
      client_recovery_floor_[id] = tfr;
      ++stats_.client_recoveries;
    }
    TFR_LOG(INFO, "rm") << "state recovered: TF=" << published_tf_.load(std::memory_order_relaxed)
                        << " TP=" << published_tp_.load(std::memory_order_relaxed)
                        << " clients=" << client_tf_.size() << " servers=" << server_tp_.size()
                        << " pending regions=" << pending_regions_.size()
                        << " resumed client recoveries=" << resume.size();
  }
  for (const auto& [id, tfr] : resume) {
    const std::string client_id = id;
    const Timestamp floor = tfr;
    work_.push([this, client_id, floor] { recover_client(client_id, floor); });
  }
}

// --- threshold maintenance ---------------------------------------------------

Timestamp RecoveryManager::compute_tf_locked() const {
  // TF = min over all clients' reported thresholds (the registry's striped,
  // lock-free min), with in-flight client recoveries holding the floor at
  // TFr(c).
  Timestamp tf = client_tf_.min();
  for (const auto& [c, t] : client_recovery_floor_) tf = std::min(tf, t);
  if (tf == kMaxTimestamp) {
    // No clients: every commit ever issued came from a client that either
    // unregistered cleanly (all flushed) or was recovered (replayed), so
    // the whole timestamp range is flushed.
    tf = tm_->current_ts();
  }
  return std::max(published_tf_.load(std::memory_order_relaxed), tf);
}

Timestamp RecoveryManager::compute_tp_locked() const {
  Timestamp tp = server_tp_.min();
  // Every region still awaiting transactional replay pins TP at the TPr(s)
  // of its failure, so the recovery log cannot be truncated under it.
  for (const auto& [r, pending] : pending_regions_) tp = std::min(tp, pending.tpr);
  const Timestamp tf = published_tf_.load(std::memory_order_relaxed);
  if (tp == kMaxTimestamp) tp = tf;  // no servers and nothing pending: all persisted
  tp = std::min(tp, tf);  // the global invariant TP <= TF
  return std::max(published_tp_.load(std::memory_order_relaxed), tp);
}

void RecoveryManager::publish_locked() {
  const Timestamp tf = compute_tf_locked();
  published_tf_.store(tf, std::memory_order_release);
  const Timestamp tp = compute_tp_locked();
  published_tp_.store(tp, std::memory_order_release);
  coord_->put(kTfPath, tf);
  coord_->put(kTpPath, tp);
  if (config_.checkpoint_log && !config_.ignore_thresholds) tm_->checkpoint(tp);
}

void RecoveryManager::poll_tick() {
  // mutex_ is held across snapshot + ingest + publish so a session that
  // departs concurrently (its listener erases the registry entry under this
  // same mutex) cannot be resurrected by a stale snapshot — the registry
  // stripes synchronize individual updates, but the erase-vs-reinsert
  // ordering needs the RM mutex.
  MutexLock lock(mutex_);
  // Ingest the latest piggybacked thresholds. Client TF(c) is monotonic
  // (max-merge); server TP(s) can be *lowered* by inheritance, so take it
  // verbatim.
  for (const auto& s : coord_->live_sessions("clients")) {
    client_tf_.raise(s.name, s.payload);  // creates on first sight (Algorithm 2)
    // Durable registry: if this client dies while no RM is listening, the
    // next RM still knows it existed and what to replay from.
    if (auto tfc = client_tf_.get(s.name)) coord_->put(kClientRegistryPrefix + s.name, *tfc);
  }
  for (const auto& s : coord_->live_sessions("servers")) {
    // A failure the master detected early (failed open_region) can be fully
    // handled while the dead server's session is still ticking down; its
    // stale payload must not resurrect the erased registry entry.
    if (failed_servers_.count(s.name)) continue;
    server_tp_.set(s.name, s.payload);
  }
  publish_locked();
  ++stats_.threshold_refreshes;
}

Timestamp RecoveryManager::global_tf() const {
  return published_tf_.load(std::memory_order_acquire);
}

Timestamp RecoveryManager::global_tp() const {
  return published_tp_.load(std::memory_order_acquire);
}

Timestamp RecoveryManager::min_recovery_floor() const {
  MutexLock lock(mutex_);
  Timestamp floor = kMaxTimestamp;
  for (const auto& [region, pending] : pending_regions_) {
    floor = std::min(floor, pending.tpr);
  }
  for (const auto& [client, tfr] : client_recovery_floor_) {
    floor = std::min(floor, tfr);
  }
  return floor;
}

// --- client failure handling (Algorithm 2) ------------------------------------

void RecoveryManager::on_client_session(const SessionInfo& info, bool expired) {
  if (!expired) {
    // Clean unregister: drop the client from TF maintenance (§3.1).
    MutexLock lock(mutex_);
    client_tf_.erase(info.name);
    coord_->erase(kClientRegistryPrefix + info.name);
    publish_locked();
    return;
  }
  {
    MutexLock lock(mutex_);
    // Hold TF at TFr(c) until the replay completes: servers must not be
    // told that these transactions are "fully flushed" while the recovery
    // client is still re-flushing them. The floor is installed BEFORE the
    // registry entry is erased (see threshold_registry.h: erasure is the
    // only operation that can raise the min past a component with
    // unflushed work). The durable marker lets an RM that restarts
    // mid-replay resume from the same floor.
    client_recovery_floor_[info.name] = info.payload;
    client_tf_.erase(info.name);
    coord_->put(kRecoveringClientPrefix + info.name, info.payload);
    coord_->erase(kClientRegistryPrefix + info.name);
    ++stats_.client_recoveries;
  }
  TFR_LOG(INFO, "rm") << "client " << info.name << " FAILED, TFr=" << info.payload
                      << "; replaying its committed write-sets";
  const std::string client_id = info.name;
  const Timestamp tfr = info.payload;
  work_.push([this, client_id, tfr] { recover_client(client_id, tfr); });
}

void RecoveryManager::recover_client(const std::string& client_id, Timestamp tfr) {
  // fetchlogs(c, TFr(c)): every write-set this client committed after its
  // last reported flush threshold. Some may in fact be flushed already —
  // replaying them is idempotent.
  const auto writesets =
      tm_->log().fetch_client_after(client_id, config_.ignore_thresholds ? kNoTimestamp : tfr);
  for (const auto& ws : writesets) {
    Status s = recovery_client_.replay_for_client(ws);
    if (!s.is_ok()) {
      TFR_LOG(ERROR, "rm") << "client replay of txn " << ws.commit_ts << " failed: " << s;
    }
  }
  {
    MutexLock lock(mutex_);
    stats_.writesets_replayed_client += static_cast<std::int64_t>(writesets.size());
    client_recovery_floor_.erase(client_id);
    coord_->erase(kRecoveringClientPrefix + client_id);
    publish_locked();
  }
  idle_cv_.notify_all();
  // The dead client's open (never-committed) transactions count as aborted;
  // reap them so their snapshots stop pinning the TM's conflict table.
  tm_->abandon_client(client_id);
  TFR_LOG(INFO, "rm") << "client " << client_id << " recovered (" << writesets.size()
                      << " write-sets replayed)";
}

// --- server failure handling (Algorithm 4) -------------------------------------

void RecoveryManager::on_server_session(const SessionInfo& info, bool expired) {
  if (!expired) {
    // Clean shutdown: the server flushed and synced everything it had, and
    // its final heartbeat reported an up-to-date TP(s).
    MutexLock lock(mutex_);
    server_tp_.erase(info.name);
    failed_servers_.erase(info.name);
    publish_locked();
    return;
  }
  // Crash: record the final payload so on_server_failure (called by the
  // master, possibly before our next poll) sees the freshest TPr(s). The
  // registry entry stays until then, conservatively pinning the global TP.
  // Unless the failure was already handled ahead of this expiry — then the
  // entry was deliberately erased and re-recording it would pin TP forever.
  // Consume the tombstone and clear anything a pre-tombstone poll ingest
  // may have resurrected; this expiry is the session's final event.
  MutexLock lock(mutex_);
  if (failed_servers_.erase(info.name) > 0) {
    server_tp_.erase(info.name);
    publish_locked();
    return;
  }
  server_tp_.lower(info.name, info.payload);
}

void RecoveryManager::on_server_failure(const std::string& server_id,
                                        const std::vector<std::string>& regions) {
  MutexLock lock(mutex_);
  Timestamp tpr = published_tp_.load(std::memory_order_relaxed);  // conservative fallback
  if (auto tps = server_tp_.get(server_id)) {
    tpr = *tps;
    server_tp_.erase(server_id);
  }
  // If the master detected this death early (failed open_region), the dead
  // server's session may still be ticking down. Keep the erase effective
  // until it actually expires: the poll ingest and the expiry event both
  // skip tombstoned servers (see poll_tick and on_server_session), otherwise
  // the stale session — or the expiry event's own final-payload record —
  // would re-insert the entry and pin the global TP at the dead server's
  // last payload forever. When the expiry already dispatched, the tombstone
  // simply lingers; servers never re-open a session under a prior name, so
  // it shadows nothing (a restartable-server follow-on would need session
  // incarnation ids here).
  failed_servers_.insert(server_id);
  for (const auto& r : regions) {
    // The master bumped the region's epoch before invoking this hook; record
    // it so the gate below (and an RM resuming from the durable markers) can
    // insist the replay target holds at least this fenced grant.
    const std::uint64_t fenced = master_->region_epoch(r);
    auto [it, inserted] =
        pending_regions_.try_emplace(r, PendingRegion{server_id, tpr, fenced});
    if (!inserted) {
      // Cascade: the region was still mid-recovery from an earlier failure
      // when its new owner died too. Inherit the stricter replay bound —
      // TP(s') := min(TP(s'), TP(s)) (§3.2) — and the newest fence, so the
      // eventual gate replays everything either failure could have lost and
      // rejects any pre-cascade grant.
      it->second.failed_server = server_id;
      it->second.tpr = std::min(it->second.tpr, tpr);
      it->second.fenced_epoch = std::max(it->second.fenced_epoch, fenced);
    }
    // Durable marker first: the master only starts reassigning regions after
    // this hook returns, so by the time any gate can fire the pending set —
    // and therefore the replay obligation — is already crash-safe.
    coord_->put(kRecoveringRegionPrefix + r, it->second.tpr);
    coord_->put(kRecoveringEpochPrefix + r,
                static_cast<std::int64_t>(it->second.fenced_epoch));
  }
  ++stats_.server_recoveries;
  publish_locked();
  TFR_LOG(INFO, "rm") << "server " << server_id << " FAILED, TPr=" << tpr << ", "
                      << regions.size() << " regions to recover";
}

void RecoveryManager::on_region_split(const std::string& parent,
                                      const std::vector<std::string>& daughters,
                                      std::uint64_t new_epoch) {
  MutexLock lock(mutex_);
  auto pit = pending_regions_.find(parent);
  if (pit == pending_regions_.end()) return;  // parent had nothing pending
  const PendingRegion inherited = pit->second;
  // TP-inheritance extended to splits: each daughter's replay bound is
  // min-merged with the parent's TPr, under the transition's fenced epoch,
  // and made durable FIRST — only then is the parent's entry (and marker)
  // erased. An RM crash anywhere in between leaves a superset of the
  // obligation, never a gap, and the TP floor never lifts (the daughters'
  // min equals the parent's floor before the erase happens).
  for (const auto& d : daughters) {
    auto [it, inserted] = pending_regions_.try_emplace(
        d, PendingRegion{inherited.failed_server, inherited.tpr, new_epoch});
    if (!inserted) {
      it->second.tpr = std::min(it->second.tpr, inherited.tpr);
      it->second.fenced_epoch = std::max(it->second.fenced_epoch, new_epoch);
    }
    coord_->put(kRecoveringRegionPrefix + d, it->second.tpr);
    coord_->put(kRecoveringEpochPrefix + d, static_cast<std::int64_t>(it->second.fenced_epoch));
    ++stats_.split_floor_inheritances;
  }
  pending_regions_.erase(parent);
  coord_->erase(kRecoveringRegionPrefix + parent);
  coord_->erase(kRecoveringEpochPrefix + parent);
  publish_locked();
  TFR_LOG(INFO, "rm") << "split of recovering region " << parent << ": replay floor TPr="
                      << inherited.tpr << " migrated to " << daughters.size()
                      << " daughters (epoch " << new_epoch << ")";
}

void RecoveryManager::on_regions_merged(const std::string& merged,
                                        const std::vector<std::string>& parents,
                                        std::uint64_t new_epoch) {
  MutexLock lock(mutex_);
  Timestamp tpr = kMaxTimestamp;
  std::string from;
  for (const auto& p : parents) {
    auto it = pending_regions_.find(p);
    if (it != pending_regions_.end() && it->second.tpr < tpr) {
      tpr = it->second.tpr;
      from = it->second.failed_server;
    }
  }
  if (tpr == kMaxTimestamp) return;  // no parent had anything pending
  // Defensive: the master refuses to merge recovering regions, but a
  // failure can land between its check and the commit. Same floors-first
  // discipline as on_region_split.
  auto [it, inserted] = pending_regions_.try_emplace(merged, PendingRegion{from, tpr, new_epoch});
  if (!inserted) {
    it->second.tpr = std::min(it->second.tpr, tpr);
    it->second.fenced_epoch = std::max(it->second.fenced_epoch, new_epoch);
  }
  coord_->put(kRecoveringRegionPrefix + merged, it->second.tpr);
  coord_->put(kRecoveringEpochPrefix + merged,
              static_cast<std::int64_t>(it->second.fenced_epoch));
  ++stats_.merge_floor_inheritances;
  for (const auto& p : parents) {
    pending_regions_.erase(p);
    coord_->erase(kRecoveringRegionPrefix + p);
    coord_->erase(kRecoveringEpochPrefix + p);
  }
  publish_locked();
  TFR_LOG(WARN, "rm") << "merge folded pending replay floors of " << parents.size()
                      << " parents into " << merged << " (TPr=" << tpr << ", epoch "
                      << new_epoch << ")";
}

bool RecoveryManager::is_region_recovering(const std::string& region) {
  MutexLock lock(mutex_);
  return pending_regions_.count(region) != 0;
}

void RecoveryManager::on_region_recovered(const std::string& region_name,
                                          const std::string& server_id) {
  PendingRegion pending;
  {
    MutexLock lock(mutex_);
    auto it = pending_regions_.find(region_name);
    if (it == pending_regions_.end()) {
      // Not part of a failure recovery (e.g. a clean-shutdown reassignment):
      // nothing transactional to replay, let the region go online.
      return;
    }
    pending = it->second;
  }

  auto loc = master_->region_by_name(region_name);
  if (!loc.is_ok()) {
    TFR_LOG(ERROR, "rm") << "gate for unknown region " << region_name << ": " << loc.status();
    return;
  }
  // Replay only once the fenced epoch is in force: a gate reached while the
  // master still routes to a pre-fence grant (e.g. a zombie owner re-opening
  // the region on its own) must not consume the replay obligation. Leave the
  // pending entry — and its TP floor — intact; the legitimate post-fence
  // open will gate again.
  if (loc.value().epoch < pending.fenced_epoch) {
    TFR_LOG(WARN, "rm") << "gate for " << region_name << " at epoch " << loc.value().epoch
                        << " < fenced epoch " << pending.fenced_epoch << "; replay deferred";
    return;
  }

  // Replay every write-set committed after TPr(s) whose updates fall in
  // this region, with TPr(s) piggybacked (inheritance, §3.2).
  const auto writesets =
      tm_->log().fetch_after(config_.ignore_thresholds ? kNoTimestamp : pending.tpr);
  std::int64_t replayed = 0;
  for (const auto& ws : writesets) {
    Status s = recovery_client_.replay_for_region(ws, loc.value().descriptor, pending.tpr);
    if (!s.is_ok()) {
      TFR_LOG(ERROR, "rm") << "region replay of txn " << ws.commit_ts << " failed: " << s;
    } else {
      ++replayed;
    }
  }

  {
    MutexLock lock(mutex_);
    stats_.writesets_replayed_server += replayed;
    ++stats_.regions_recovered;
    auto it = pending_regions_.find(region_name);
    // Erase only if the entry still matches our snapshot in BOTH the fenced
    // epoch and the replay bound: a cascade re-arm bumps the epoch, while a
    // topology transition landing under the same name can lower only the
    // tpr (min-inheritance) — either way the newer obligation must survive
    // this gate's completion.
    if (it != pending_regions_.end() && it->second.fenced_epoch == pending.fenced_epoch &&
        it->second.tpr == pending.tpr) {
      // Release this region's TP floor; once the last region of the failure
      // is erased the replayed write-sets are the hosting servers'
      // responsibility (they inherited TPr(s) via the piggyback).
      pending_regions_.erase(it);
      coord_->erase(kRecoveringRegionPrefix + region_name);
      coord_->erase(kRecoveringEpochPrefix + region_name);
    } else if (it != pending_regions_.end()) {
      // The entry was re-armed by a later failure (cascade) while this gate
      // was replaying: our snapshot's obligation is consumed, but the newer
      // one — with its min-inherited TPr — is not. Keep the entry and its
      // floor; the post-cascade gate will consume it.
      TFR_LOG(WARN, "rm") << "gate for " << region_name << " finished at fenced epoch "
                          << pending.fenced_epoch << " but the region was re-armed at epoch "
                          << it->second.fenced_epoch << "; replay obligation kept";
    }
    publish_locked();
  }
  idle_cv_.notify_all();
  TFR_LOG(INFO, "rm") << "region " << region_name << " transactionally recovered on "
                      << server_id << " (" << writesets.size() << " candidate write-sets)";
}

RecoveryManagerStats RecoveryManager::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void RecoveryManager::wait_for_idle() const {
  MutexLock lock(mutex_);
  while (!client_recovery_floor_.empty() || !pending_regions_.empty()) idle_cv_.wait(lock);
}

}  // namespace tfr
