// Region — one contiguous key range of a table hosted by a region server
// (§2.1): an MVCC memstore for recent updates plus a list of immutable store
// files in the DFS, read through the server's block cache.
//
// The region lifecycle is where the paper's server-recovery hook lives:
//
//   kOpening    — store files attached, split-WAL edits being replayed
//                 (HBase's internal recovery)
//   kGated      — internal recovery done; the region waits for the recovery
//                 manager's transactional recovery before going online
//                 (Algorithm 3, opening_region). Only recovery-replay writes
//                 are admitted in this state.
//   kOnline     — serving
//   kOffline    — closed or lost in a crash
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/epoch.h"
#include "src/dfs/dfs.h"
#include "src/kv/block_cache.h"
#include "src/common/annotations.h"
#include "src/kv/memstore.h"
#include "src/kv/store_file.h"
#include "src/kv/types.h"

namespace tfr {

enum class RegionState { kOpening, kGated, kOnline, kOffline };

std::string_view region_state_name(RegionState s);

/// DFS directory a region named `region_name` keeps its store files in.
/// Exposed so split/merge can address a daughter's dir before any Region
/// object for it exists.
std::string region_data_dir(const std::string& region_name);

class Region {
 public:
  /// `store_block_bytes`: target block size for store files written by
  /// memstore flushes (cache/warm-up granularity).
  Region(RegionDescriptor desc, Dfs& dfs, BlockCache& cache,
         std::size_t store_block_bytes = 16 * 1024);

  const RegionDescriptor& descriptor() const { return desc_; }
  std::string name() const { return desc_.name(); }

  RegionState state() const { return state_.load(std::memory_order_acquire); }
  void set_state(RegionState s) { state_.store(s, std::memory_order_release); }

  /// The ownership epoch this region was opened under (0 = unfenced). Set
  /// by the hosting server from the master's grant; stamped on WAL appends
  /// and checked before store-file finalization.
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  void set_epoch(std::uint64_t e) { epoch_.store(e, std::memory_order_release); }

  /// Attach the cluster's epoch registry (nullptr to detach). With a
  /// registry attached, flush_memstore/compact finalize store files via a
  /// tmp path + epoch re-check + rename, so a fenced owner cannot publish
  /// new store files into the live namespace.
  void set_epoch_registry(const EpochRegistry* epochs) { epochs_ = epochs; }

  /// Attach the store files this region already has in the DFS (called on
  /// open, before replaying any edits). `ref-N` marker files — written by a
  /// split/merge, each holding the real path of a retired parent's store
  /// file — are resolved to readers on the referenced file; compaction
  /// later rewrites the data locally and drops the markers.
  Status load_store_files();

  /// Apply already-WAL-logged cells to the memstore. `wal_seq` (when
  /// non-zero) is the sequence number of the WAL record carrying these
  /// cells; the region remembers the oldest un-flushed one so the server
  /// knows which WAL segments are still needed (truncation bound).
  ///
  /// Returns false — nothing applied — when the region is kOffline. The
  /// check runs under the region mutex, the same lock a split/merge/move's
  /// fencing flush holds: an apply racing the transition either lands
  /// before the flush snapshot (and is captured by it) or is rejected here,
  /// never silently left behind in a memstore about to be dropped.
  [[nodiscard]] bool apply(const std::vector<Cell>& cells, std::uint64_t wal_seq = 0);

  /// Sequence number of the oldest WAL record whose cells are only in the
  /// memstore (0 when everything is flushed to store files).
  std::uint64_t min_unflushed_wal_seq() const;

  /// Newest value of (row, column) visible at read_ts, merging memstore and
  /// store files. Tombstoned values read as NotFound.
  Result<std::optional<Cell>> get(const std::string& row, const std::string& column,
                                  Timestamp read_ts);

  /// Rows in [start, end) visible at read_ts (at most `limit` rows; 0 = no
  /// limit). Returns cells of the visible version per (row, column).
  /// Streams: memstore + per-file block iterators are heap-merged and the
  /// scan stops decoding blocks once `limit` rows are complete, so a
  /// bounded scan over a large region costs O(limit) block fetches.
  Result<std::vector<Cell>> scan(const std::string& start, const std::string& end,
                                 Timestamp read_ts, std::size_t limit);

  /// Flush the memstore to a new store file in the DFS and clear it. The
  /// region's updates become durable in the data files themselves, allowing
  /// WAL truncation in a real system. No-op on an empty memstore.
  TFR_BLOCKING Status flush_memstore();

  /// Compaction: merge all store files into one, dropping versions that no
  /// snapshot can still read. `prune_before_ts` must be at or below the
  /// oldest snapshot in use (e.g. the global TP); per (row, column), every
  /// version newer than it is kept plus the newest one at or below it —
  /// unless that survivor is a tombstone, in which case the whole column
  /// vanishes. Pass kNoTimestamp to merge without pruning. No-op with
  /// fewer than two store files; returns Unavailable if a concurrent
  /// memstore flush lands mid-compaction (just retry later).
  TFR_BLOCKING Status compact(Timestamp prune_before_ts = kNoTimestamp);

  /// All cells of this region, every version, memstore and store files
  /// merged and de-duplicated, in (row, column, ts desc) order, clipped to
  /// the region's key range (referenced parent files can hold the sibling
  /// daughter's rows too).
  Result<std::vector<Cell>> dump_cells();

  /// The key to split this region at: the midpoint block boundary of the
  /// largest multi-block store file (format-v2 index metadata, no block
  /// reads), falling back to the median distinct row of a full dump for
  /// small or v1-only regions. InvalidArgument when the region holds fewer
  /// than two distinct rows (nothing to split).
  Result<std::string> choose_split_key();

  /// Paths of the store files currently attached, newest first. For a file
  /// attached via a ref marker this is the referenced (real) path, so a
  /// daughter's markers never chain ref -> ref.
  std::vector<std::string> store_file_paths() const;

  /// True while any attached store file is a split/merge inheritance (a
  /// ref marker) rather than a file this region wrote itself.
  bool has_references() const;

  /// Total payload bytes across attached store files plus the live
  /// memstore — the balancer's size signal for split triggers.
  std::uint64_t store_bytes() const;

  /// Cumulative served operations (gets/scans resp. applied write batches)
  /// since this Region object was opened. Monotone per object; a region
  /// that moves or splits starts over on its new host.
  std::uint64_t read_ops() const { return read_ops_.load(std::memory_order_relaxed); }
  std::uint64_t write_ops() const { return write_ops_.load(std::memory_order_relaxed); }

  std::size_t memstore_bytes() const;
  std::size_t store_file_count() const;

  /// Directory of this region's store files in the DFS.
  std::string data_dir() const;

 private:
  /// Rename-based fencing for store-file publication: write to a tmp path,
  /// re-check the epoch, then rename into the region's data dir.
  TFR_BLOCKING Status finalize_store_file(StoreFileWriter& writer, const std::string& path);

  /// Materialize-then-merge scan (the pre-streaming read path), selected by
  /// read_path_flags().streaming_scan = false for bench_read A/B runs and
  /// as a cross-check in the read-path property test.
  Result<std::vector<Cell>> scan_legacy(const std::string& start, const std::string& end,
                                        Timestamp read_ts, std::size_t limit);

  RegionDescriptor desc_;
  Dfs* dfs_;
  BlockCache* cache_;
  std::size_t store_block_bytes_;
  std::atomic<RegionState> state_{RegionState::kOpening};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> read_ops_{0};
  std::atomic<std::uint64_t> write_ops_{0};
  const EpochRegistry* epochs_ = nullptr;

  mutable RankedMutex<LockRank::kRegion> mutex_{"region"};
  Memstore memstore_ TFR_GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<StoreFileReader>> files_ TFR_GUARDED_BY(mutex_);  // newest first
  /// real store-file path -> ref marker path, for files attached through a
  /// split/merge inheritance marker. Compaction removes the marker (never
  /// the referenced file — the sibling daughter may still need it; the
  /// master's janitor reclaims the parent dir once no marker points there).
  std::map<std::string, std::string> ref_markers_ TFR_GUARDED_BY(mutex_);
  std::uint64_t next_file_id_ TFR_GUARDED_BY(mutex_) = 0;
  std::uint64_t min_unflushed_wal_seq_ TFR_GUARDED_BY(mutex_) = 0;
};

}  // namespace tfr
