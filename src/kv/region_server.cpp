#include "src/kv/region_server.h"

#include "src/kv/rpc_messages.h"

#include <algorithm>
#include <cstdio>

#include "src/common/fault.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace tfr {

RegionServer::RegionServer(std::string id, Dfs& dfs, Coord& coord, RegionServerConfig config)
    : id_(std::move(id)),
      dfs_(&dfs),
      coord_(&coord),
      config_(config),
      cache_(config.block_cache_bytes, config.block_cache_shards),
      handlers_(config.handler_slots),
      rpc_model_(config.rpc_latency, config.rpc_jitter),
      read_service_(config.read_service, 0),
      write_service_(config.write_service, 0),
      wal_syncer_([this] { wal_sync_tick(); }, config.wal_sync_interval),
      heartbeats_([this] { heartbeat_tick(); }, config.heartbeat_interval) {}

RegionServer::~RegionServer() {
  heartbeats_.stop();
  wal_syncer_.stop();
  MutexLock lock(terminator_mutex_);
  if (self_terminator_.joinable()) self_terminator_.join();
}

Status RegionServer::start() {
  auto wal = Wal::create(*dfs_, wal_path());
  if (!wal.is_ok()) return wal.status();
  wal_ = std::move(wal).value();
  wal_->set_epoch_registry(epochs_);
  // If a persist tracker is already installed, register with its initial
  // TP(s) so the session never reports a meaningless payload.
  PreHeartbeatHook hook;
  {
    MutexLock lock(hooks_mutex_);
    hook = pre_heartbeat_hook_;
  }
  const Timestamp initial_payload = hook ? hook() : 0;
  lease_renewed_at_.store(now_micros(), std::memory_order_release);
  session_ttl_.store(config_.session_ttl, std::memory_order_release);
  TFR_RETURN_IF_ERROR(coord_->create_session("servers", id_, config_.session_ttl,
                                             initial_payload));
  alive_.store(true, std::memory_order_release);
  if (!config_.sync_wal_on_write) wal_syncer_.start();
  heartbeats_.start();
  TFR_LOG(INFO, "rs") << id_ << " started (wal=" << wal_path() << ")";
  return Status::ok();
}

Status RegionServer::shutdown() {
  if (!alive_.exchange(false, std::memory_order_acq_rel)) return Status::ok();
  heartbeats_.stop();
  wal_syncer_.stop();
  {
    ReaderLock lock(regions_mutex_);
    for (auto& [name, region] : regions_) {
      // tfr-lint: blocking-ok(shutdown holds the directory read-lock across final
      // flushes so a concurrent split cannot move regions mid-drain; kRegionServer
      // is may_block=true in the rank table)
      TFR_RETURN_IF_ERROR(region->flush_memstore());
      region->set_state(RegionState::kOffline);
    }
  }
  TFR_RETURN_IF_ERROR(wal_->sync());
  // Pre-shutdown heartbeat: report final progress, then unregister cleanly.
  PreHeartbeatHook hook;
  {
    MutexLock lock(hooks_mutex_);
    hook = pre_heartbeat_hook_;
  }
  const Timestamp payload = hook ? hook() : 0;
  TFR_IGNORE_STATUS(coord_->heartbeat("servers", id_, payload),
                    "best-effort final progress report; close_session below unregisters");
  TFR_RETURN_IF_ERROR(coord_->close_session("servers", id_));
  TFR_LOG(INFO, "rs") << id_ << " shut down cleanly";
  return Status::ok();
}

void RegionServer::crash() {
  if (!alive_.exchange(false, std::memory_order_acq_rel)) return;
  heartbeats_.stop();
  wal_syncer_.stop();
  {
    ReaderLock lock(regions_mutex_);
    for (auto& [name, region] : regions_) region->set_state(RegionState::kOffline);
  }
  wal_->crash();  // the un-synced tail is gone
  cache_.clear();
  TFR_LOG(INFO, "rs") << id_ << " CRASHED (synced wal seq " << wal_->synced_seq() << "/"
                      << wal_->appended_seq() << ")";
}

void RegionServer::heartbeat_tick() {
  if (!alive()) return;
  PreHeartbeatHook hook;
  {
    MutexLock lock(hooks_mutex_);
    hook = pre_heartbeat_hook_;
  }
  maybe_roll_wal();
  const Timestamp payload = hook ? hook() : 0;
  // Injectable stall/loss on the renewal path: a delay here models a paused
  // heartbeat thread (the classic GC pause — both the renewal and the
  // self-fence check run late, which is why the fencing token exists), a
  // fail models a renewal lost in the network without a full partition.
  bool renewal_lost = false;
  if (fault_ != nullptr) {
    renewal_lost = fault_->inject(FaultOp::kCoordHeartbeat, id_).fail;
  }
  // Measure the lease from BEFORE the renewal is sent: if it succeeds, the
  // coordination service's own expiry clock (which starts at receipt) can
  // only be ahead of ours, so our self-fence deadline is conservative.
  const Micros sent_at = now_micros();
  if (fault_ != nullptr && (renewal_lost || fault_->partitioned(id_, "coord"))) {
    // The renewal was lost in the network. We do NOT know whether we have
    // been declared dead — only that the lease has not been renewed. Once
    // our conservative estimate of the lease lapses, stop serving: by the
    // time the master can possibly have declared us dead and handed our
    // regions away, we are already quiet (self-fence precedes takeover).
    if (sent_at - lease_renewed_at_.load(std::memory_order_acquire) >
        session_ttl_.load(std::memory_order_acquire)) {
      self_fence();
    }
    return;
  }
  Status hb = coord_->heartbeat("servers", id_, payload);
  if (hb.is_ok()) {
    lease_renewed_at_.store(sent_at, std::memory_order_release);
    report_load();
    return;
  }
  if (hb.is_unavailable() && alive()) {
    // Declared dead (the master is already reassigning our regions): a real
    // HBase server aborts in this situation; do the same so no stale node
    // keeps serving. crash() joins this thread, so delegate.
    TFR_LOG(WARN, "rs") << id_ << " declared dead by the cluster; terminating";
    MutexLock lock(terminator_mutex_);
    if (!self_terminator_.joinable()) {
      self_terminator_ = std::thread([this] { crash(); });
    }
  }
}

void RegionServer::report_load() {
  // The balancer's load signal, piggybacked on the heartbeat cadence (§9):
  // one cumulative served-ops figure per server in the coord KV, plus
  // per-region traffic gauges for observability. The figure is cumulative —
  // the balancer differences successive reports to get a per-tick rate.
  std::int64_t total = 0;
  {
    ReaderLock lock(regions_mutex_);
    for (const auto& [name, r] : regions_) {
      const auto reads = static_cast<std::int64_t>(r->read_ops());
      const auto writes = static_cast<std::int64_t>(r->write_ops());
      total += reads + writes;
      global_gauge("kv.region." + name + ".reads").set(reads);
      global_gauge("kv.region." + name + ".writes").set(writes);
    }
  }
  coord_->put(kServerLoadPrefix + id_, total);
}

std::vector<RegionServer::RegionLoad> RegionServer::region_loads() const {
  std::vector<RegionLoad> out;
  ReaderLock lock(regions_mutex_);
  out.reserve(regions_.size());
  for (const auto& [name, r] : regions_) {
    out.push_back({name, r->read_ops(), r->write_ops(), r->store_bytes(),
                   r->state() == RegionState::kOnline});
  }
  return out;
}

void RegionServer::self_fence() {
  static Counter& fences = global_counter("kv.self_fences");
  fences.add();
  TFR_LOG(WARN, "rs") << id_ << " SELF-FENCING: lease not renewed within TTL ("
                      << session_ttl_.load(std::memory_order_acquire) << "us); ceasing service";
  // crash() joins the heartbeat thread — this IS the heartbeat thread — so
  // delegate to the terminator, exactly like the declared-dead path.
  MutexLock lock(terminator_mutex_);
  if (!self_terminator_.joinable()) {
    self_terminator_ = std::thread([this] { crash(); });
  }
}

void RegionServer::wal_sync_tick() {
  if (!alive()) return;
  if (Status s = wal_->sync(); !s.is_ok()) {
    // A background sync failure is a durability regression, not a no-op:
    // acks already sent for this window rest on data that is not yet on
    // disk. Count and log every failure; the next tick (or the next
    // commit-path sync) retries the same frontier.
    static Counter& failures = global_counter("kv.wal_sync_failures");
    failures.add();
    TFR_LOG(WARN, "rs") << id_ << " background WAL sync failed: " << s;
    if (s.is_wrong_epoch()) {
      // The master fenced our WAL: recovery is replaying it and we are a
      // zombie. Converge like the TTL-expiry path — stop serving now rather
      // than keep acking writes that can never become durable. crash()
      // joins the syncer thread (this thread), so delegate to the
      // terminator.
      TFR_LOG(WARN, "rs") << id_ << " WAL fenced during background sync; ceasing service";
      MutexLock lock(terminator_mutex_);
      if (!self_terminator_.joinable()) {
        self_terminator_ = std::thread([this] { crash(); });
      }
      return;
    }
  }
  maybe_roll_wal();
}

std::uint64_t RegionServer::wal_truncation_bound() const {
  // A segment is reclaimable once every region's un-flushed edits start
  // after it. Regions whose memstore is fully flushed do not constrain.
  std::uint64_t bound = wal_->appended_seq() + 1;
  ReaderLock lock(regions_mutex_);
  for (const auto& [name, region] : regions_) {
    const std::uint64_t first = region->min_unflushed_wal_seq();
    if (first != 0) bound = std::min(bound, first);
  }
  return bound;
}

void RegionServer::maybe_roll_wal() {
  if (!alive()) return;
  if (wal_->current_segment_bytes() > config_.wal_segment_bytes) {
    if (Status s = wal_->roll(); !s.is_ok()) {
      TFR_LOG(WARN, "rs") << id_ << " WAL roll failed: " << s;
      return;
    }
  }
  wal_->truncate_obsolete(wal_truncation_bound());
}

std::shared_ptr<Region> RegionServer::region_for(const std::string& table,
                                                 const std::string& row) const {
  ReaderLock lock(regions_mutex_);
  for (const auto& [name, region] : regions_) {
    const auto& d = region->descriptor();
    if (d.table == table && d.contains(row)) return region;
  }
  return nullptr;
}

Status RegionServer::apply_writeset(const ApplyRequest& request) {
  TFR_BLOCKING_POINT("rpc.apply");
  // Marshal the request exactly as a real RPC stack would: the server only
  // ever sees the decoded wire bytes, and their size is charged against the
  // network bandwidth on top of the per-RPC latency.
  std::string wire = encode_apply_request(request);
  rpc_model_.charge();
  sleep_micros(transfer_micros(wire.size(), config_.network_mbps));
  bool drop_response = false;
  if (fault_ != nullptr) {
    if (fault_->partitioned(request.client_id, id_)) {
      // The request direction is blocked: nothing reached the server.
      return Status::unavailable("partition: request from " + request.client_id + " to " + id_ +
                                 " lost");
    }
    // An asymmetric partition blocking only the response direction behaves
    // like a dropped ack: the work happens, the client retries.
    if (fault_->partitioned(id_, request.client_id)) drop_response = true;
    const FaultAction action = fault_->inject(FaultOp::kRpcApply, id_);
    if (action.fail) {
      // The request was lost on the wire; nothing reached the server.
      return Status::unavailable("injected fault: request to " + id_ + " lost");
    }
    if (action.corrupt_wire) wire[wire.size() / 2] ^= 0x20;
    drop_response = drop_response || action.drop_response;
  }
  auto decoded = decode_apply_request(wire);
  if (!decoded.is_ok()) {
    // A damaged request frame is a transport failure, not a store error: the
    // server NAKs and the client retransmits the slice (reapplication is
    // idempotent), so surface it as retryable.
    return Status::unavailable("request frame rejected by " + id_ + ": " +
                               decoded.status().message());
  }
  const ApplyRequest& req = decoded.value();

  if (!alive()) return Status::unavailable("server down: " + id_);
  SemaphoreGuard slot(handlers_);
  if (!alive()) return Status::unavailable("server down: " + id_);

  Status applied = apply_decoded(req);
  if (!applied.is_ok()) return applied;

  if (drop_response) {
    // The write-set IS received (WAL-appended, applied, observed) but the
    // ack never reaches the client, which re-sends — exercising idempotent
    // reapplication (§3.2).
    return Status::unavailable("injected fault: response from " + id_ + " dropped");
  }
  return Status::ok();
}

Result<std::vector<Status>> RegionServer::apply_batch(const BatchApplyRequest& batch) {
  static Counter& batch_rpcs = global_counter("kv.batch_apply_rpcs");
  static Counter& batch_slices = global_counter("kv.batch_apply_slices");
  if (batch.slices.empty()) return std::vector<Status>{};
  // All slices come from the same client flusher, so the frame has one
  // sender for partition purposes.
  const std::string& client_id = batch.slices.front().client_id;

  TFR_BLOCKING_POINT("rpc.apply_batch");
  std::string wire = encode_batch_apply_request(batch);
  rpc_model_.charge();
  sleep_micros(transfer_micros(wire.size(), config_.network_mbps));
  bool drop_response = false;
  if (fault_ != nullptr) {
    if (fault_->partitioned(client_id, id_)) {
      return Status::unavailable("partition: request from " + client_id + " to " + id_ + " lost");
    }
    if (fault_->partitioned(id_, client_id)) drop_response = true;
    const FaultAction action = fault_->inject(FaultOp::kRpcApply, id_);
    if (action.fail) {
      return Status::unavailable("injected fault: request to " + id_ + " lost");
    }
    if (action.corrupt_wire) wire[wire.size() / 2] ^= 0x20;
    drop_response = drop_response || action.drop_response;
  }
  auto decoded = decode_batch_apply_request(wire);
  if (!decoded.is_ok()) {
    // Same contract as the single-slice path: a damaged frame is NAKed as
    // retryable and the client re-sends the whole batch (idempotent).
    return Status::unavailable("batch frame rejected by " + id_ + ": " +
                               decoded.status().message());
  }

  if (!alive()) return Status::unavailable("server down: " + id_);
  SemaphoreGuard slot(handlers_);
  if (!alive()) return Status::unavailable("server down: " + id_);

  batch_rpcs.add();
  batch_slices.add(static_cast<std::int64_t>(decoded.value().slices.size()));
  std::vector<Status> statuses;
  statuses.reserve(decoded.value().slices.size());
  for (const ApplyRequest& req : decoded.value().slices) {
    statuses.push_back(apply_decoded(req));
  }
  if (drop_response) {
    // Everything above happened, but the per-slice acks never arrive.
    return Status::unavailable("injected fault: response from " + id_ + " dropped");
  }
  return statuses;
}

Status RegionServer::apply_decoded(const ApplyRequest& req) {
  // Group the mutations by target region; fail fast (before any side effect)
  // if some row is not hosted here, so the client re-locates and retries with
  // the whole slice — reapplication is idempotent.
  std::map<std::shared_ptr<Region>, std::vector<Cell>> by_region;
  for (const auto& m : req.mutations) {
    auto region = region_for(req.table, m.row);
    if (!region) {
      return Status::unavailable("row not hosted on " + id_ + ": " + m.row);
    }
    const auto state = region->state();
    const bool admissible =
        state == RegionState::kOnline || (req.recovery_replay && state == RegionState::kGated);
    if (!admissible) {
      return Status::unavailable("region " + region->name() + " is " +
                                 std::string(region_state_name(state)));
    }
    by_region[region].push_back(m.to_cell(req.commit_ts));
  }

  write_service_.charge();

  for (auto& [region, cells] : by_region) {
    WalRecord record;
    record.region = region->name();
    record.txn_id = req.txn_id;
    record.client_id = req.client_id;
    record.commit_ts = req.commit_ts;
    record.epoch = region->epoch();
    record.cells = cells;
    auto seq = wal_->append(std::move(record));
    if (!seq.is_ok()) {
      if (seq.status().is_wrong_epoch()) {
        // Our ownership epoch is stale: the master has fenced this region
        // (we are a zombie). Stop serving it; the client relocates.
        TFR_LOG(WARN, "rs") << id_ << " fenced out of " << region->name()
                            << "; taking the region offline";
        region->set_state(RegionState::kOffline);
      }
      return seq.status();
    }
    if (!region->apply(cells, seq.value())) {
      // The region went offline between the admission check above and this
      // apply — a split/merge/move fenced it. Nothing landed in the
      // memstore, and the WAL record just appended is harmless: the write
      // is unacked and reapplication is idempotent. The client re-locates.
      return Status::unavailable("region " + region->name() + " went offline during apply");
    }
    if (region->memstore_bytes() > config_.memstore_flush_bytes) {
      Status flushed = region->flush_memstore();
      if (!flushed.is_ok()) {
        if (flushed.is_wrong_epoch()) region->set_state(RegionState::kOffline);
        return flushed;
      }
      if (config_.compaction_file_threshold != 0 &&
          region->store_file_count() > config_.compaction_file_threshold) {
        // Merge without pruning: snapshots of any age stay readable. A
        // compaction that races another flush simply defers to the next one.
        Status compacted = region->compact(kNoTimestamp);
        if (!compacted.is_ok() && !compacted.is_unavailable()) return compacted;
      }
      // The finalized store file supersedes every WAL entry at or below the
      // flushed seqno for this region: reclaim closed segments now instead
      // of waiting for the next heartbeat tick, so a long-lived server's
      // split cost tracks its un-flushed window, not its lifetime.
      maybe_roll_wal();
    }
  }

  if (config_.sync_wal_on_write) {
    // Synchronous persistence: the update is durable before we return.
    TFR_RETURN_IF_ERROR(wal_->sync());
  }

  if (!alive()) {
    // Crashed mid-apply: the client must not count this as received.
    return Status::unavailable("server crashed during apply: " + id_);
  }

  WritesetObserver observer;
  {
    MutexLock lock(hooks_mutex_);
    observer = writeset_observer_;
  }
  if (observer) observer(req.commit_ts, req.piggyback_tp);
  return Status::ok();
}

Result<std::optional<Cell>> RegionServer::get(const std::string& table, const std::string& row,
                                              const std::string& column, Timestamp read_ts,
                                              const std::string& caller) {
  TFR_BLOCKING_POINT("rpc.get");
  rpc_model_.charge();
  sleep_micros(transfer_micros(get_request_wire_size(table, row, column), config_.network_mbps));
  if (fault_ != nullptr) {
    TFR_RETURN_IF_ERROR(fault_->check_partition(FaultOp::kRpcGet, caller, id_));
    TFR_RETURN_IF_ERROR(fault_->check(FaultOp::kRpcGet, id_));
  }
  if (!alive()) return Status::unavailable("server down: " + id_);
  auto result = [&]() -> Result<std::optional<Cell>> {
    SemaphoreGuard slot(handlers_);
    if (!alive()) return Status::unavailable("server down: " + id_);
    auto region = region_for(table, row);
    if (!region) return Status::unavailable("row not hosted on " + id_ + ": " + row);
    if (region->state() != RegionState::kOnline) {
      return Status::unavailable("region " + region->name() + " is " +
                                 std::string(region_state_name(region->state())));
    }
    read_service_.charge();
    return region->get(row, column, read_ts);
  }();
  // Response transfer (outside the handler slot: the NIC, not the handler,
  // streams it back).
  if (result.is_ok() && result.value().has_value()) {
    sleep_micros(transfer_micros(cell_wire_size(*result.value()), config_.network_mbps));
  }
  return result;
}

Result<std::vector<Cell>> RegionServer::scan(const std::string& table, const std::string& start,
                                             const std::string& end, Timestamp read_ts,
                                             std::size_t limit, const std::string& caller) {
  TFR_BLOCKING_POINT("rpc.scan");
  rpc_model_.charge();
  if (fault_ != nullptr) {
    TFR_RETURN_IF_ERROR(fault_->check_partition(FaultOp::kRpcScan, caller, id_));
    TFR_RETURN_IF_ERROR(fault_->check(FaultOp::kRpcScan, id_));
  }
  if (!alive()) return Status::unavailable("server down: " + id_);
  SemaphoreGuard slot(handlers_);
  if (!alive()) return Status::unavailable("server down: " + id_);
  auto region = region_for(table, start);
  if (!region) return Status::unavailable("start row not hosted on " + id_ + ": " + start);
  if (region->state() != RegionState::kOnline) {
    return Status::unavailable("region " + region->name() + " is " +
                               std::string(region_state_name(region->state())));
  }
  {
    // A client whose routing table predates a split can send a scan whose
    // range runs past this region's end key; serving it would silently drop
    // the tail now owned by the right daughter. Reject so the client
    // invalidates its cached route and re-locates.
    const RegionDescriptor& d = region->descriptor();
    if (!d.end_key.empty() && (end.empty() || end > d.end_key)) {
      return Status::unavailable("scan range beyond region " + region->name() + " on " + id_);
    }
  }
  read_service_.charge();
  auto cells = region->scan(start, end, read_ts, limit);
  if (cells.is_ok()) {
    std::size_t bytes = 0;
    for (const auto& cell : cells.value()) bytes += cell_wire_size(cell);
    sleep_micros(transfer_micros(bytes, config_.network_mbps));
  }
  return cells;
}

Status RegionServer::open_region(const RegionDescriptor& desc,
                                 const std::vector<WalRecord>& recovered_edits,
                                 std::uint64_t epoch) {
  if (!alive()) return Status::unavailable("server down: " + id_);
  auto region = std::make_shared<Region>(desc, *dfs_, cache_, config_.store_block_bytes);
  region->set_epoch(epoch);
  region->set_epoch_registry(epochs_);
  {
    WriterLock lock(regions_mutex_);
    if (regions_.count(desc.name())) {
      return Status::already_exists("region already open on " + id_ + ": " + desc.name());
    }
    regions_[desc.name()] = region;
  }
  TFR_RETURN_IF_ERROR(region->load_store_files());

  // HBase internal recovery: replay the split-WAL edits into a fresh
  // memstore (§2.1). WAL them locally too, so a crash of *this* server
  // before its next memstore flush does not re-lose them. The re-appended
  // records are re-stamped with OUR epoch: the old owner's stamp is fenced
  // by now, and these appends are the new epoch's writes.
  for (const auto& edit : recovered_edits) {
    WalRecord record = edit;
    record.region = desc.name();
    record.epoch = epoch;
    auto seq = wal_->append(std::move(record));
    if (!seq.is_ok()) return seq.status();
    if (!region->apply(edit.cells, seq.value())) {
      // Only possible if this server crashed mid-open (crash() forces every
      // region offline); the open fails and recovery re-homes the region.
      return Status::unavailable("region " + desc.name() + " went offline during replay");
    }
  }
  if (!recovered_edits.empty()) {
    TFR_RETURN_IF_ERROR(wal_->sync());
    TFR_LOG(INFO, "rs") << id_ << " replayed " << recovered_edits.size()
                        << " split-WAL edits into " << desc.name();
  }

  // The paper's hook: after internal recovery, before the region goes
  // online, hand control to the recovery manager (§3.2).
  RegionGate gate;
  {
    MutexLock lock(hooks_mutex_);
    gate = region_gate_;
  }
  if (gate) {
    region->set_state(RegionState::kGated);
    gate(desc.name(), id_);
  }
  if (!alive()) return Status::unavailable("server died while opening " + desc.name());
  region->set_state(RegionState::kOnline);
  TFR_LOG(INFO, "rs") << id_ << " region online: " << desc.name();
  return Status::ok();
}

namespace {

/// `ref-%06zu` marker name: zero-padded so a lexicographic directory sort
/// preserves marker order, and "ref-" < "sf-" so inherited (older) files
/// sort before files the region writes itself.
std::string ref_marker_name(std::size_t index) {
  char name[16];
  std::snprintf(name, sizeof(name), "ref-%06zu", index);
  return name;
}

}  // namespace

Result<std::pair<RegionDescriptor, RegionDescriptor>> RegionServer::split_region(
    const std::string& region_name) {
  if (!alive()) return Status::unavailable("server down: " + id_);
  auto parent = region(region_name);
  if (!parent) return Status::not_found("region not open: " + region_name);
  if (parent->state() != RegionState::kOnline) {
    return Status::unavailable("region not online: " + region_name);
  }

  // A region still reading through split/merge reference markers localizes
  // its data first (HBase refuses to split a region with references). The
  // markers make its apparent store size the WHOLE referenced parent file,
  // so splitting again before localizing would cascade the size trigger
  // down to single-row daughters.
  if (parent->has_references()) {
    TFR_RETURN_IF_ERROR(parent->compact(kNoTimestamp));
  }

  // Fence the parent locally: from here Region::apply rejects (under the
  // region mutex), so the flush below captures every acked write, and a
  // straggling compaction abandons its swap when it sees kOffline. Clients
  // retry until the daughters come up. On any error the parent resumes
  // serving untouched — its directory is never modified by a split.
  parent->set_state(RegionState::kOffline);
  auto abort = [&](Status why) {
    parent->set_state(RegionState::kOnline);
    return why;
  };
  if (Status s = parent->flush_memstore(); !s.is_ok()) return abort(s);
  auto split_key = parent->choose_split_key();
  if (!split_key.is_ok()) return abort(split_key.status());

  const RegionDescriptor& pd = parent->descriptor();
  // Fresh region ids: the left daughter shares the parent's start key and
  // must still be distinguishable from it (name, data dir, WAL grouping).
  RegionDescriptor left{pd.table, pd.start_key, split_key.value(), next_region_id()};
  RegionDescriptor right{pd.table, split_key.value(), pd.end_key, next_region_id()};

  // The daughters inherit the parent's store files BY REFERENCE: one ref-N
  // marker per parent file in each daughter's dir, holding the real path.
  // No data is rewritten at split time — reads clip to the daughter's key
  // range, daughter compactions localize the data later, and the master's
  // janitor reclaims the parent dir once no marker anywhere points into it.
  // Markers are numbered oldest-first so load_store_files reconstructs the
  // parent's age order.
  const std::vector<std::string> inherited = parent->store_file_paths();  // newest first
  for (const RegionDescriptor& child : {left, right}) {
    const std::string dir = region_data_dir(child.name());
    for (std::size_t i = 0; i < inherited.size(); ++i) {
      const std::string& real = inherited[inherited.size() - 1 - i];
      if (Status s = dfs_->write_file(dir + ref_marker_name(i), real); !s.is_ok()) {
        for (const RegionDescriptor& c : {left, right}) {
          for (const auto& p : dfs_->list(region_data_dir(c.name()))) {
            TFR_IGNORE_STATUS(dfs_->remove(p),
                              "aborted split; markers in a never-registered daughter "
                              "dir are dead weight, not state");
          }
        }
        return abort(s);
      }
    }
  }
  {
    WriterLock lock(regions_mutex_);
    regions_.erase(region_name);
  }
  TFR_LOG(INFO, "rs") << id_ << " split " << region_name << " at '" << split_key.value()
                      << "' -> " << left.name() << " + " << right.name() << " ("
                      << inherited.size() << " store files inherited by reference)";
  return std::make_pair(left, right);
}

Result<RegionDescriptor> RegionServer::merge_regions(const std::string& left_name,
                                                     const std::string& right_name) {
  if (!alive()) return Status::unavailable("server down: " + id_);
  auto left = region(left_name);
  auto right = region(right_name);
  if (!left || !right) {
    return Status::not_found("region not open: " + (left ? right_name : left_name));
  }
  const RegionDescriptor& ld = left->descriptor();
  const RegionDescriptor& rd = right->descriptor();
  if (ld.table != rd.table || ld.end_key.empty() || ld.end_key != rd.start_key) {
    return Status::invalid_argument("regions not adjacent: " + left_name + " + " + right_name);
  }
  if (left->state() != RegionState::kOnline || right->state() != RegionState::kOnline) {
    return Status::unavailable("regions not online: " + left_name + " + " + right_name);
  }

  // Same local fence as a split, applied to both parents.
  left->set_state(RegionState::kOffline);
  right->set_state(RegionState::kOffline);
  auto abort = [&](Status why) {
    left->set_state(RegionState::kOnline);
    right->set_state(RegionState::kOnline);
    return why;
  };
  if (Status s = left->flush_memstore(); !s.is_ok()) return abort(s);
  if (Status s = right->flush_memstore(); !s.is_ok()) return abort(s);

  RegionDescriptor merged{ld.table, ld.start_key, rd.end_key, next_region_id()};
  const std::string dir = region_data_dir(merged.name());
  // One marker per parent store file, both parents, oldest-first per
  // parent. De-duplicated: sibling daughters merging back together can
  // both reference the same grandparent file, which must appear once.
  // Cross-parent age order is irrelevant for correctness — the parents
  // cover disjoint ranges and reads resolve versions by timestamp.
  std::vector<std::string> inherited;
  for (const auto& parent : {left, right}) {
    auto paths = parent->store_file_paths();   // newest first
    std::reverse(paths.begin(), paths.end());  // oldest first
    for (auto& p : paths) {
      if (std::find(inherited.begin(), inherited.end(), p) == inherited.end()) {
        inherited.push_back(std::move(p));
      }
    }
  }
  for (std::size_t i = 0; i < inherited.size(); ++i) {
    if (Status s = dfs_->write_file(dir + ref_marker_name(i), inherited[i]); !s.is_ok()) {
      for (const auto& p : dfs_->list(dir)) {
        TFR_IGNORE_STATUS(dfs_->remove(p),
                          "aborted merge; markers in a never-registered merged dir "
                          "are dead weight, not state");
      }
      return abort(s);
    }
  }
  {
    WriterLock lock(regions_mutex_);
    regions_.erase(left_name);
    regions_.erase(right_name);
  }
  TFR_LOG(INFO, "rs") << id_ << " merged " << left_name << " + " << right_name << " -> "
                      << merged.name() << " (" << inherited.size()
                      << " store files inherited by reference)";
  return merged;
}

Status RegionServer::offload_region(const std::string& region_name) {
  if (!alive()) return Status::unavailable("server down: " + id_);
  auto target = region(region_name);
  if (!target) return Status::not_found("region not open: " + region_name);
  target->set_state(RegionState::kOffline);
  TFR_RETURN_IF_ERROR(target->flush_memstore());
  WriterLock lock(regions_mutex_);
  regions_.erase(region_name);
  return Status::ok();
}

Status RegionServer::compact_region(const std::string& region_name,
                                    Timestamp prune_before_ts) {
  auto target = region(region_name);
  if (!target) return Status::not_found("region not open: " + region_name);
  return target->compact(prune_before_ts);
}

Status RegionServer::close_region(const std::string& region_name) {
  WriterLock lock(regions_mutex_);
  auto it = regions_.find(region_name);
  if (it == regions_.end()) return Status::not_found("region not open: " + region_name);
  it->second->set_state(RegionState::kOffline);
  regions_.erase(it);
  return Status::ok();
}

Status RegionServer::persist_wal() {
  TFR_BLOCKING_POINT("rpc.persist_wal");
  if (!alive()) return Status::unavailable("server down: " + id_);
  return wal_->sync();
}

void RegionServer::set_writeset_observer(WritesetObserver observer) {
  MutexLock lock(hooks_mutex_);
  writeset_observer_ = std::move(observer);
}

void RegionServer::set_pre_heartbeat_hook(PreHeartbeatHook hook) {
  MutexLock lock(hooks_mutex_);
  pre_heartbeat_hook_ = std::move(hook);
}

void RegionServer::set_region_gate(RegionGate gate) {
  MutexLock lock(hooks_mutex_);
  region_gate_ = std::move(gate);
}

std::shared_ptr<Region> RegionServer::region(const std::string& name) const {
  ReaderLock lock(regions_mutex_);
  auto it = regions_.find(name);
  return it == regions_.end() ? nullptr : it->second;
}

std::vector<std::string> RegionServer::region_names() const {
  ReaderLock lock(regions_mutex_);
  std::vector<std::string> out;
  for (const auto& [name, r] : regions_) out.push_back(name);
  return out;
}

}  // namespace tfr
