// Cluster — owns and wires one minibase deployment: the DFS, the
// coordination service, the master, and N region servers. This mirrors the
// paper's testbed: region servers co-located with DFS datanodes, ZooKeeper
// carrying heartbeats.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/epoch.h"
#include "src/common/fault.h"
#include "src/coord/coord.h"
#include "src/dfs/dfs.h"
#include "src/kv/master.h"
#include "src/kv/region_server.h"

namespace tfr {

struct ClusterConfig {
  int num_servers = 2;
  DfsConfig dfs;
  RegionServerConfig server;
  Micros coord_check_interval = millis(10);
  /// Master balancer (§9): disabled by default (interval == 0). Enabled on
  /// start() once every initial server is registered.
  BalancerConfig balancer;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Invoked on every region server just before it starts (including ones
  /// added later) — the recovery middleware installs its trackers and the
  /// region gate here.
  void set_server_setup(std::function<void(RegionServer&)> setup) {
    server_setup_ = std::move(setup);
  }

  /// Start the master and all region servers.
  Status start();

  /// Stop everything that is still alive (clean shutdown, no recovery).
  void stop();

  Dfs& dfs() { return dfs_; }
  Coord& coord() { return coord_; }
  Master& master() { return master_; }

  /// The cluster-wide fault injector, pre-installed into the DFS and every
  /// region server (including ones added later). Disabled by default; add
  /// rules to start injecting.
  FaultInjector& fault() { return fault_; }

  /// The cluster-wide ownership-epoch registry, pre-installed into the
  /// master (which advances it) and every region server (which enforces it).
  EpochRegistry& epochs() { return epochs_; }

  int num_servers() const { return static_cast<int>(servers_.size()); }
  RegionServer& server(int i) { return *servers_.at(static_cast<std::size_t>(i)); }
  RegionServer* server_by_id(const std::string& id);

  /// Add one more region server at runtime (elastic scale-out).
  Result<RegionServer*> add_server();

  /// Crash-fail server i. The master will detect the failure via the
  /// coordination service and run recovery.
  void crash_server(int i);

  const ClusterConfig& config() const { return config_; }

 private:
  ClusterConfig config_;
  std::function<void(RegionServer&)> server_setup_;
  FaultInjector fault_;     // before dfs_/servers_: outlives everything that uses it
  EpochRegistry epochs_;    // likewise consulted by WAL/regions until teardown
  Dfs dfs_;
  Coord coord_;
  Master master_;
  std::vector<std::unique_ptr<RegionServer>> servers_;
  bool started_ = false;
};

}  // namespace tfr
