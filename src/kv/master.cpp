#include "src/kv/master.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "src/common/backoff.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace tfr {

namespace {
// Concurrent region recoveries per failed server: enough to overlap several
// open_region replays without flooding a small cluster's handler pools.
constexpr std::size_t kRecoveryWorkers = 4;
}  // namespace

Master::Master(Dfs& dfs, Coord& coord) : dfs_(&dfs), coord_(&coord) {}

Master::~Master() { stop(); }

void Master::start() {
  listener_id_ = coord_->add_listener("servers", [this](const SessionInfo& info, bool expired) {
    on_session_event(info, expired);
  });
  worker_ = std::thread([this] { recovery_worker(); });
}

void Master::stop() {
  // The balancer first: a tick in flight may be mid-split, about to call
  // into servers and hooks that the rest of the shutdown tears down.
  disable_balancer();
  if (listener_id_ != 0) {
    coord_->remove_listener("servers", listener_id_);
    listener_id_ = 0;
  }
  {
    MutexLock lock(mutex_);
    stopping_ = true;  // release a recovery held for hooks that won't come
  }
  idle_cv_.notify_all();
  failures_.close();
  if (worker_.joinable()) worker_.join();
}

void Master::add_server(RegionServer* server) {
  MutexLock lock(mutex_);
  servers_[server->id()] = server;
  server_alive_[server->id()] = true;
  server_wal_paths_[server->id()] = server->wal_path();
  // A fresh incarnation of the id may fail again; forget the old one.
  downs_handled_.erase(server->id());
}

std::uint64_t Master::bump_epoch_locked(const std::string& region_name) {
  auto it = assignment_.find(region_name);
  if (it == assignment_.end()) return 0;
  const std::uint64_t epoch = ++it->second.epoch;
  // Arm the storage-side fencing check, then record the grant durably so a
  // restarted master (or the recovery manager) can learn the fenced epoch.
  if (epochs_ != nullptr) epochs_->advance_to(region_name, epoch);
  coord_->put(kEpochPrefix + region_name, static_cast<std::int64_t>(epoch));
  return epoch;
}

std::uint64_t Master::region_epoch(const std::string& region_name) const {
  MutexLock lock(mutex_);
  auto it = assignment_.find(region_name);
  return it == assignment_.end() ? 0 : it->second.epoch;
}

void Master::report_server_down(const std::string& server_id, bool crashed) {
  {
    MutexLock lock(mutex_);
    server_alive_[server_id] = false;
    ++in_flight_recoveries_;
  }
  failures_.push({server_id, crashed});
}

void Master::set_hooks(MasterHooks* hooks) {
  MutexLock lock(mutex_);
  // Quiesce: the recovery worker snapshots hooks_ before calling into it, so
  // wait out any in-flight invocation before letting the caller retire the
  // old hooks object.
  while (hook_calls_in_flight_ != 0) idle_cv_.wait(lock);
  hooks_ = hooks;
  if (hooks != nullptr) hooks_ever_set_ = true;
  lock.unlock();
  // Wake a recovery held in handle_server_down for the hooks to come back.
  idle_cv_.notify_all();
}

std::string Master::pick_live_server_locked(std::size_t salt) const {
  std::vector<std::string> live;
  for (const auto& [id, alive] : server_alive_) {
    if (alive) live.push_back(id);
  }
  if (live.empty()) return {};
  return live[salt % live.size()];
}

Status Master::create_table(const std::string& table, const std::vector<std::string>& split_keys) {
  std::vector<std::string> keys = split_keys;
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  std::vector<RegionDescriptor> descs;
  std::string start;
  for (const auto& k : keys) {
    descs.push_back(RegionDescriptor{table, start, k});
    start = k;
  }
  descs.push_back(RegionDescriptor{table, start, ""});

  std::vector<std::pair<RegionDescriptor, RegionServer*>> plan;
  {
    MutexLock lock(mutex_);
    for (const auto& d : descs) {
      if (assignment_.count(d.name())) {
        return Status::already_exists("table exists: " + table);
      }
    }
    std::size_t i = 0;
    for (const auto& d : descs) {
      const std::string target = pick_live_server_locked(i++);
      if (target.empty()) return Status::unavailable("no live region servers");
      plan.emplace_back(d, servers_.at(target));
      assignment_[d.name()] = RegionLocation{d.name(), d, target};
    }
  }
  for (auto& [desc, server] : plan) {
    TFR_RETURN_IF_ERROR(server->open_region(desc, {}, /*epoch=*/1));
  }
  TFR_LOG(INFO, "master") << "table " << table << " created with " << descs.size() << " regions";
  return Status::ok();
}

Result<RegionLocation> Master::locate(const std::string& table, const std::string& row) const {
  MutexLock lock(mutex_);
  for (const auto& [name, loc] : assignment_) {
    if (loc.descriptor.table == table && loc.descriptor.contains(row)) return loc;
  }
  return Status::not_found("no region for " + table + "/" + row);
}

std::vector<RegionLocation> Master::table_regions(const std::string& table) const {
  MutexLock lock(mutex_);
  std::vector<RegionLocation> out;
  for (const auto& [name, loc] : assignment_) {
    if (loc.descriptor.table == table) out.push_back(loc);
  }
  return out;
}

Result<RegionLocation> Master::region_by_name(const std::string& region_name) const {
  MutexLock lock(mutex_);
  auto it = assignment_.find(region_name);
  if (it == assignment_.end()) return Status::not_found("unknown region: " + region_name);
  return it->second;
}

RegionServer* Master::server_stub(const std::string& server_id) const {
  MutexLock lock(mutex_);
  auto it = servers_.find(server_id);
  return it == servers_.end() ? nullptr : it->second;
}

std::vector<std::string> Master::live_servers() const {
  MutexLock lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [id, alive] : server_alive_) {
    if (alive) out.push_back(id);
  }
  return out;
}

namespace {

/// Best-effort removal of a never-registered daughter/merged dir's marker
/// files after an abandoned transition (tiny ref markers only — the dir
/// never held data).
void remove_stray_markers(Dfs& dfs, const std::vector<std::string>& region_names) {
  for (const auto& name : region_names) {
    for (const auto& path : dfs.list(region_data_dir(name))) {
      TFR_IGNORE_STATUS(dfs.remove(path),
                        "abandoned topology transition; markers in a never-registered "
                        "dir are dead weight, not state — the region was never routed to");
    }
  }
}

}  // namespace

Status Master::split_region(const std::string& region_name) {
  RegionLocation loc;
  RegionServer* stub = nullptr;
  {
    MutexLock lock(mutex_);
    auto it = assignment_.find(region_name);
    if (it == assignment_.end()) return Status::not_found("unknown region: " + region_name);
    loc = it->second;
    auto sit = servers_.find(loc.server_id);
    if (sit == servers_.end()) return Status::unavailable("no stub for " + loc.server_id);
    if (!server_alive_[loc.server_id]) {
      return Status::unavailable("host down for split: " + loc.server_id);
    }
    stub = sit->second;
  }
  // Server-side half: fence + flush the parent, choose the key, write the
  // daughters' store-file reference markers. The parent's dir is never
  // modified, so every abort path below leaves it reopenable as-is.
  auto children = stub->split_region(region_name);
  if (!children.is_ok()) return children.status();
  const auto& [left, right] = children.value();

  MasterHooks* hooks = nullptr;
  std::uint64_t new_epoch = 0;
  {
    MutexLock lock(mutex_);
    auto it = assignment_.find(region_name);
    if (it == assignment_.end() || it->second.epoch != loc.epoch) {
      // A failure recovery re-fenced the parent while the server-side half
      // ran (the host was declared dead — it may be a zombie behind a
      // partition). That recovery owns the parent now and will reopen it
      // under its higher epoch; abandon the transition.
      lock.unlock();
      remove_stray_markers(*dfs_, {left.name(), right.name()});
      return Status::unavailable("split of " + region_name + " superseded by failure recovery");
    }
    // Commit: one epoch for the whole transition. The daughters are fenced
    // forward, and the RETIRED parent name is bumped too so any straggling
    // store-file finalize from a resumed parent compaction is rejected.
    new_epoch = loc.epoch + 1;
    assignment_.erase(region_name);
    assignment_[left.name()] = RegionLocation{left.name(), left, loc.server_id, new_epoch};
    assignment_[right.name()] = RegionLocation{right.name(), right, loc.server_id, new_epoch};
    for (const std::string& r : {left.name(), right.name(), region_name}) {
      if (epochs_ != nullptr) epochs_->advance_to(r, new_epoch);
      coord_->put(kEpochPrefix + r, static_cast<std::int64_t>(new_epoch));
    }
    coord_->put(kSplitRecordPrefix + region_name + "|" + left.name() + "|" + right.name(),
                static_cast<std::int64_t>(new_epoch));
    hooks = hooks_;
    if (hooks != nullptr) ++hook_calls_in_flight_;
  }
  global_counter("master.region_splits").add();
  if (hooks != nullptr) {
    // Floors before gates: the recovery middleware migrates any pending
    // replay floor from the parent to the daughters before either daughter
    // can run its gate.
    hooks->on_region_split(region_name, {left.name(), right.name()}, new_epoch);
    MutexLock lock(mutex_);
    --hook_calls_in_flight_;
    idle_cv_.notify_all();
  }
  for (const RegionDescriptor& child : {left, right}) {
    Status opened = stub->open_region(child, {}, new_epoch);
    if (!opened.is_ok()) {
      // The daughters stay assigned (epochs and floors intact); if the host
      // is dying, its failure recovery re-homes them like any other region.
      TFR_LOG(WARN, "master") << "daughter " << child.name() << " failed to open on "
                              << loc.server_id << ": " << opened
                              << "; failure recovery will re-home it";
      return opened;
    }
  }
  TFR_LOG(INFO, "master") << region_name << " split into " << left.name() << " and "
                          << right.name() << " (epoch " << new_epoch << ")";
  return Status::ok();
}

Status Master::merge_regions(const std::string& left_region, const std::string& right_region) {
  RegionLocation lloc;
  RegionLocation rloc;
  MasterHooks* hooks = nullptr;
  {
    MutexLock lock(mutex_);
    auto lit = assignment_.find(left_region);
    auto rit = assignment_.find(right_region);
    if (lit == assignment_.end() || rit == assignment_.end()) {
      return Status::not_found("unknown region: " +
                               (lit == assignment_.end() ? left_region : right_region));
    }
    lloc = lit->second;
    rloc = rit->second;
    const RegionDescriptor& ld = lloc.descriptor;
    const RegionDescriptor& rd = rloc.descriptor;
    if (ld.table != rd.table || ld.end_key.empty() || ld.end_key != rd.start_key) {
      return Status::invalid_argument("regions not adjacent: " + left_region + " + " +
                                      right_region);
    }
    hooks = hooks_;
    if (hooks != nullptr) ++hook_calls_in_flight_;
  }
  if (hooks != nullptr) {
    // A recovering region's pending replay floor pins the TM-log GC until
    // its gate runs; merging it away would hand that obligation to a region
    // whose own gate may already have passed. Refuse — the merge can retry
    // once recovery drains. (A failure can still land between this check
    // and the commit; on_regions_merged min-inherits floors defensively.)
    const bool recovering =
        hooks->is_region_recovering(left_region) || hooks->is_region_recovering(right_region);
    {
      MutexLock lock(mutex_);
      --hook_calls_in_flight_;
    }
    idle_cv_.notify_all();
    if (recovering) {
      return Status::unavailable("refusing to merge while a region is recovering: " +
                                 left_region + " + " + right_region);
    }
  }
  // Co-locate both parents on the left region's host.
  if (rloc.server_id != lloc.server_id) {
    TFR_RETURN_IF_ERROR(move_region(right_region, lloc.server_id));
  }
  RegionServer* stub = nullptr;
  {
    MutexLock lock(mutex_);
    auto lit = assignment_.find(left_region);
    auto rit = assignment_.find(right_region);
    if (lit == assignment_.end() || rit == assignment_.end()) {
      return Status::unavailable("region vanished before merge: " + left_region + " + " +
                                 right_region);
    }
    lloc = lit->second;
    rloc = rit->second;
    if (lloc.server_id != rloc.server_id) {
      return Status::unavailable("parents not co-located for merge");
    }
    auto sit = servers_.find(lloc.server_id);
    if (sit == servers_.end() || !server_alive_[lloc.server_id]) {
      return Status::unavailable("host down for merge: " + lloc.server_id);
    }
    stub = sit->second;
  }
  // Server-side half (fence + flush both parents, write the merged dir's
  // reference markers); neither parent dir is modified.
  auto merged = stub->merge_regions(left_region, right_region);
  if (!merged.is_ok()) return merged.status();
  const RegionDescriptor& md = merged.value();

  std::uint64_t new_epoch = 0;
  {
    MutexLock lock(mutex_);
    auto lit = assignment_.find(left_region);
    auto rit = assignment_.find(right_region);
    if (lit == assignment_.end() || rit == assignment_.end() ||
        lit->second.epoch != lloc.epoch || rit->second.epoch != rloc.epoch) {
      // Re-fenced mid-merge by a failure recovery; it reopens the parents
      // from their untouched dirs. Abandon the merged dir's markers.
      lock.unlock();
      remove_stray_markers(*dfs_, {md.name()});
      return Status::unavailable("merge of " + left_region + " + " + right_region +
                                 " superseded by failure recovery");
    }
    new_epoch = std::max(lloc.epoch, rloc.epoch) + 1;
    assignment_.erase(left_region);
    assignment_.erase(right_region);
    assignment_[md.name()] = RegionLocation{md.name(), md, lloc.server_id, new_epoch};
    for (const std::string& r : {md.name(), left_region, right_region}) {
      if (epochs_ != nullptr) epochs_->advance_to(r, new_epoch);
      coord_->put(kEpochPrefix + r, static_cast<std::int64_t>(new_epoch));
    }
    coord_->put(kMergeRecordPrefix + md.name() + "|" + left_region + "|" + right_region,
                static_cast<std::int64_t>(new_epoch));
    hooks = hooks_;
    if (hooks != nullptr) ++hook_calls_in_flight_;
  }
  global_counter("master.region_merges").add();
  if (hooks != nullptr) {
    hooks->on_regions_merged(md.name(), {left_region, right_region}, new_epoch);
    MutexLock lock(mutex_);
    --hook_calls_in_flight_;
    idle_cv_.notify_all();
  }
  Status opened = stub->open_region(md, {}, new_epoch);
  if (!opened.is_ok()) {
    TFR_LOG(WARN, "master") << "merged region " << md.name() << " failed to open on "
                            << lloc.server_id << ": " << opened
                            << "; failure recovery will re-home it";
    return opened;
  }
  TFR_LOG(INFO, "master") << left_region << " + " << right_region << " merged into "
                          << md.name() << " (epoch " << new_epoch << ")";
  return Status::ok();
}

Status Master::move_region(const std::string& region_name, const std::string& target_server) {
  RegionLocation loc;
  RegionServer* source = nullptr;
  RegionServer* target = nullptr;
  {
    MutexLock lock(mutex_);
    auto it = assignment_.find(region_name);
    if (it == assignment_.end()) return Status::not_found("unknown region: " + region_name);
    loc = it->second;
    if (loc.server_id == target_server) return Status::ok();
    auto sit = servers_.find(loc.server_id);
    auto tit = servers_.find(target_server);
    if (sit == servers_.end() || tit == servers_.end() || !server_alive_.at(target_server)) {
      return Status::unavailable("source or target unavailable for move");
    }
    source = sit->second;
    target = tit->second;
  }
  // Flush + close at the source, then publish the new location so client
  // retries land on the target while it opens the region from store files.
  TFR_RETURN_IF_ERROR(source->offload_region(region_name));
  std::uint64_t new_epoch;
  {
    MutexLock lock(mutex_);
    // New owner, new epoch: any straggling write from the source (flushed
    // and closed above, but belt-and-braces) is fenced out.
    new_epoch = bump_epoch_locked(region_name);
    assignment_[region_name] =
        RegionLocation{region_name, loc.descriptor, target_server, new_epoch};
  }
  Status opened = target->open_region(loc.descriptor, {}, new_epoch);
  if (!opened.is_ok()) {
    // Roll back the routing; the region is homeless until an operator or a
    // failure-recovery pass fixes it, so surface the error loudly.
    TFR_LOG(ERROR, "master") << "move of " << region_name << " to " << target_server
                             << " failed: " << opened;
    return opened;
  }
  global_counter("master.region_moves").add();
  TFR_LOG(INFO, "master") << region_name << " moved " << loc.server_id << " -> "
                          << target_server;
  return Status::ok();
}

Result<int> Master::rebalance() {
  // Build the per-server load map.
  std::map<std::string, std::vector<std::string>> by_server;
  {
    MutexLock lock(mutex_);
    for (const auto& [id, alive] : server_alive_) {
      if (alive) by_server[id];
    }
    for (const auto& [name, loc] : assignment_) {
      auto it = by_server.find(loc.server_id);
      if (it != by_server.end()) it->second.push_back(name);
    }
  }
  if (by_server.empty()) return Status::unavailable("no live servers");

  int moved = 0;
  for (;;) {
    auto most = by_server.begin();
    auto least = by_server.begin();
    for (auto it = by_server.begin(); it != by_server.end(); ++it) {
      if (it->second.size() > most->second.size()) most = it;
      if (it->second.size() < least->second.size()) least = it;
    }
    if (most->second.size() <= least->second.size() + 1) break;
    const std::string region = most->second.back();
    TFR_RETURN_IF_ERROR(move_region(region, least->first));
    most->second.pop_back();
    least->second.push_back(region);
    ++moved;
  }
  if (moved > 0) TFR_LOG(INFO, "master") << "rebalance moved " << moved << " regions";
  return moved;
}

void Master::enable_balancer(const BalancerConfig& config) {
  disable_balancer();
  {
    MutexLock lock(balancer_mutex_);
    balancer_config_ = config;
    balancer_last_traffic_.clear();
    balancer_last_server_load_.clear();
  }
  if (config.interval > 0) {
    balancer_task_ = std::make_unique<PeriodicTask>([this] { balance_once(); }, config.interval);
    balancer_task_->start();
  }
}

void Master::disable_balancer() {
  if (balancer_task_ != nullptr) {
    balancer_task_->stop();
    balancer_task_.reset();
  }
}

void Master::balance_once() {
  // One tick is one serialized topology transaction batch: the tick lock is
  // held across split/merge/move RPCs including gated daughter opens (rank
  // kBalancer sits above the harness/RM ranks those gates take).
  MutexLock tick(balancer_mutex_);
  const BalancerConfig cfg = balancer_config_;
  const int max_actions = std::max(1, cfg.max_actions_per_tick);
  int actions = 0;

  std::map<std::string, RegionServer*> stubs;  // live servers only
  std::map<std::string, RegionLocation> assigned;
  {
    MutexLock lock(mutex_);
    for (const auto& [id, alive] : server_alive_) {
      if (alive) stubs[id] = servers_.at(id);
    }
    assigned = assignment_;
  }

  // Per-region samples: size from the stub, per-tick traffic by differencing
  // this tick's cumulative counters against the last tick's. A region whose
  // cumulative count went DOWN restarted its counters on a new host (move/
  // split) — its whole count is this incarnation's traffic.
  struct Sample {
    RegionLocation loc;
    std::uint64_t bytes = 0;
    std::uint64_t delta = 0;
    bool online = false;
  };
  std::vector<Sample> samples;
  std::map<std::string, std::uint64_t> traffic_now;
  for (const auto& [id, stub] : stubs) {
    for (const auto& rl : stub->region_loads()) {
      auto ait = assigned.find(rl.region);
      if (ait == assigned.end() || ait->second.server_id != id) continue;  // mid-transition
      const std::uint64_t total = rl.reads + rl.writes;
      auto lit = balancer_last_traffic_.find(rl.region);
      const std::uint64_t delta =
          (lit != balancer_last_traffic_.end() && total >= lit->second) ? total - lit->second
                                                                        : total;
      traffic_now[rl.region] = total;
      samples.push_back({ait->second, rl.store_bytes, delta, rl.online});
    }
  }
  // Per-server hotness from the heartbeat-piggybacked coord load reports,
  // differenced the same way.
  std::map<std::string, std::uint64_t> server_delta;
  std::map<std::string, std::int64_t> server_load_now;
  for (const auto& [id, stub] : stubs) {
    const std::int64_t reported = coord_->get(kServerLoadPrefix + id).value_or(0);
    auto lit = balancer_last_server_load_.find(id);
    const std::int64_t last = lit == balancer_last_server_load_.end() ? 0 : lit->second;
    server_delta[id] = static_cast<std::uint64_t>(reported >= last ? reported - last : reported);
    server_load_now[id] = reported;
  }
  balancer_last_traffic_ = std::move(traffic_now);  // also prunes vanished regions
  balancer_last_server_load_ = std::move(server_load_now);

  // --- splits: oversized or hot regions -----------------------------------
  for (const auto& s : samples) {
    if (actions >= max_actions) break;
    if (!s.online) continue;
    const bool by_size = cfg.split_store_bytes != 0 && s.bytes > cfg.split_store_bytes;
    const bool by_traffic = cfg.split_traffic_ops != 0 && s.delta > cfg.split_traffic_ops;
    if (!by_size && !by_traffic) continue;
    // InvalidArgument (fewer than two rows) and Unavailable (mid-transition,
    // racing a failure) are normal here; the next tick retries.
    if (split_region(s.loc.region_name).is_ok()) ++actions;
  }

  // --- merges: adjacent cold pairs ----------------------------------------
  if (cfg.merge_traffic_ops != 0 && cfg.merge_store_bytes != 0) {
    std::map<std::string, std::map<std::string, const Sample*>> by_table;  // start_key order
    for (const auto& s : samples) {
      by_table[s.loc.descriptor.table][s.loc.descriptor.start_key] = &s;
    }
    for (auto& [table, regions] : by_table) {
      const Sample* prev = nullptr;
      for (auto& [start, cur] : regions) {
        if (actions >= max_actions) break;
        if (prev != nullptr && prev->online && cur->online &&
            !prev->loc.descriptor.end_key.empty() &&
            prev->loc.descriptor.end_key == cur->loc.descriptor.start_key &&
            prev->delta < cfg.merge_traffic_ops && cur->delta < cfg.merge_traffic_ops &&
            prev->bytes + cur->bytes <= cfg.merge_store_bytes) {
          if (merge_regions(prev->loc.region_name, cur->loc.region_name).is_ok()) {
            ++actions;
            prev = nullptr;  // the pair is consumed; don't chain into cur
            continue;
          }
        }
        prev = cur;
      }
    }
  }

  // --- moves ---------------------------------------------------------------
  std::map<std::string, std::vector<const Sample*>> per_server;
  for (const auto& [id, stub] : stubs) per_server[id];
  for (const auto& s : samples) per_server[s.loc.server_id].push_back(&s);
  auto coldest_region_of = [](const std::vector<const Sample*>& regions) -> const Sample* {
    const Sample* coldest = nullptr;
    for (const Sample* s : regions) {
      if (!s->online) continue;
      if (coldest == nullptr || s->delta < coldest->delta) coldest = s;
    }
    return coldest;
  };
  if (cfg.balance_region_counts && actions < max_actions && per_server.size() >= 2) {
    // Region-count evenness (the scale-out balancer), one move per tick.
    auto most = per_server.begin();
    auto least = per_server.begin();
    for (auto it = per_server.begin(); it != per_server.end(); ++it) {
      if (it->second.size() > most->second.size()) most = it;
      if (it->second.size() < least->second.size()) least = it;
    }
    if (most->second.size() > least->second.size() + 1) {
      if (const Sample* victim = coldest_region_of(most->second)) {
        if (move_region(victim->loc.region_name, least->first).is_ok()) ++actions;
      }
    }
  }
  if (cfg.move_load_ratio > 0 && actions < max_actions && per_server.size() >= 2) {
    // Traffic imbalance: shed the coldest region of the hottest server onto
    // the coldest server. Moving the coldest (not the hottest) region keeps
    // the move cheap and convergent — a hot region is the SPLIT trigger's
    // job, not the mover's.
    std::string hot, cold;
    for (const auto& [id, d] : server_delta) {
      if (hot.empty() || d > server_delta[hot]) hot = id;
      if (cold.empty() || d < server_delta[cold]) cold = id;
    }
    if (!hot.empty() && hot != cold && server_delta[hot] >= cfg.move_min_ops &&
        static_cast<double>(server_delta[hot]) >
            cfg.move_load_ratio * static_cast<double>(std::max<std::uint64_t>(
                                      server_delta[cold], 1)) &&
        per_server[hot].size() >= 2) {
      if (const Sample* victim = coldest_region_of(per_server[hot])) {
        if (move_region(victim->loc.region_name, cold).is_ok()) ++actions;
      }
    }
  }

  janitor_sweep();
}

void Master::janitor_sweep() {
  // Reclaim retired parent dirs. Records are listed BEFORE markers: a
  // split/merge writes its daughters' markers before its durable record, so
  // any record visible here already has its markers visible — or they were
  // consumed by daughter compactions, at which point the parent's files are
  // genuinely dead.
  struct Record {
    std::string key;
    std::vector<std::string> retired;
  };
  std::vector<Record> records;
  for (const auto& [key, value] : coord_->list(kSplitRecordPrefix)) {
    const std::string body = key.substr(std::string(kSplitRecordPrefix).size());
    const auto bar = body.find('|');
    if (bar == std::string::npos) continue;
    records.push_back({key, {body.substr(0, bar)}});  // the parent is retired
  }
  for (const auto& [key, value] : coord_->list(kMergeRecordPrefix)) {
    const std::string body = key.substr(std::string(kMergeRecordPrefix).size());
    const auto bar1 = body.find('|');
    if (bar1 == std::string::npos) continue;
    const auto bar2 = body.find('|', bar1 + 1);
    if (bar2 == std::string::npos) continue;
    records.push_back({key, {body.substr(bar1 + 1, bar2 - bar1 - 1), body.substr(bar2 + 1)}});
  }
  if (records.empty()) return;

  std::set<std::string> referenced;  // data dirs some live marker points into
  for (const auto& path : dfs_->list("/data/")) {
    const auto slash = path.rfind('/');
    if (slash == std::string::npos || path.compare(slash + 1, 4, "ref-") != 0) continue;
    auto target = dfs_->read_all(path);
    if (!target.is_ok()) return;  // flaky DFS: stay conservative, retry next tick
    const auto rslash = target.value().rfind('/');
    if (rslash != std::string::npos) referenced.insert(target.value().substr(0, rslash + 1));
  }
  std::set<std::string> assigned;
  {
    MutexLock lock(mutex_);
    for (const auto& [name, loc] : assignment_) assigned.insert(name);
  }
  for (const auto& rec : records) {
    bool reclaimable = true;
    for (const auto& r : rec.retired) {
      if (assigned.count(r) != 0 || referenced.count(region_data_dir(r)) != 0) {
        reclaimable = false;
        break;
      }
    }
    if (!reclaimable) continue;
    std::size_t purged = 0;
    for (const auto& r : rec.retired) purged += dfs_->purge_prefix(region_data_dir(r));
    coord_->erase(rec.key);
    if (purged > 0) {
      global_counter("master.janitor_purged_files").add(static_cast<std::int64_t>(purged));
      TFR_LOG(INFO, "master") << "janitor reclaimed " << purged
                              << " files of retired region(s) behind " << rec.key;
    }
  }
}

void Master::on_session_event(const SessionInfo& info, bool expired) {
  {
    MutexLock lock(mutex_);
    auto it = server_alive_.find(info.name);
    if (it == server_alive_.end() || !it->second) return;  // unknown or already handled
    it->second = false;
    ++in_flight_recoveries_;
  }
  TFR_LOG(INFO, "master") << "server " << info.name << (expired ? " FAILED" : " left cleanly");
  failures_.push({info.name, expired});
}

void Master::recovery_worker() {
  // One handler thread per failure: cascading failures must overlap. A
  // second server dying while the first recovery is still replaying would
  // otherwise deadlock the cluster — the first handler can be blocked in a
  // replay gate writing to a region it just placed on the second (now dead)
  // server, and that region is only re-homed by the second failure's
  // handling, which a serial queue would park behind the first.
  std::vector<std::thread> handlers;
  while (auto item = failures_.pop()) {
    handlers.emplace_back([this, failed = *item] {
      handle_server_down(failed.first, failed.second);
      {
        MutexLock lock(mutex_);
        --in_flight_recoveries_;
      }
      idle_cv_.notify_all();
    });
  }
  for (auto& t : handlers) t.join();
}

void Master::wait_for_idle() const {
  MutexLock lock(mutex_);
  while (in_flight_recoveries_ != 0) idle_cv_.wait(lock);
}

bool Master::replay_superseded_edits(const std::string& table,
                                     const std::vector<WalRecord>& records) {
  // Mirrors KvClient's routed flush, bounded: this runs on a recovery
  // worker, and an unreachable cluster (no live server left) must degrade
  // to "segments kept, operator required" rather than park the thread.
  constexpr int kMaxAttempts = 2000;  // ~2 s per record at the 1 ms backoff
  for (const WalRecord& rec : records) {
    std::vector<Mutation> pending;
    pending.reserve(rec.cells.size());
    for (const Cell& c : rec.cells) {
      pending.push_back(Mutation{c.row, c.column, c.value, c.tombstone});
    }
    for (int attempt = 0; !pending.empty(); ++attempt) {
      if (attempt >= kMaxAttempts) return false;
      // Route each row against the *current* assignment: the region may
      // have been re-split, merged or moved since the record was written.
      std::map<std::string, std::vector<Mutation>> by_server;
      bool routed = true;
      for (const auto& m : pending) {
        auto loc = locate(table, m.row);
        if (!loc.is_ok()) {
          routed = false;
          break;
        }
        by_server[loc.value().server_id].push_back(m);
      }
      if (routed) {
        std::vector<Mutation> still_pending;
        for (auto& [target, muts] : by_server) {
          RegionServer* stub = server_stub(target);
          Status s =
              stub == nullptr ? Status::unavailable("unknown server " + target) : Status::ok();
          if (s.is_ok()) {
            ApplyRequest req;
            req.txn_id = rec.txn_id;
            req.client_id = rec.client_id;
            req.commit_ts = rec.commit_ts;
            req.table = table;
            req.mutations = muts;
            req.recovery_replay = true;  // idempotent: the owner may have some already
            s = stub->apply_writeset(req);
          }
          if (!s.is_ok()) {
            if (!s.is_unavailable() && !s.is_wrong_epoch()) return false;  // permanent
            still_pending.insert(still_pending.end(), muts.begin(), muts.end());
          }
        }
        pending = std::move(still_pending);
        if (pending.empty()) break;
      }
      sleep_millis(1);
    }
  }
  return true;
}

void Master::handle_server_down(const std::string& server_id, bool crashed) {
  // Snapshot the affected regions and the hook.
  std::vector<RegionLocation> affected;
  MasterHooks* hooks = nullptr;
  std::string wal_path;
  {
    MutexLock lock(mutex_);
    // A crash landing in the recovery middleware's restart window — hooks
    // detached, the fresh instance not yet installed — must not proceed
    // hook-less: no pending-region entry or durable /tfr/recovering marker
    // would ever be written, so the gate would find nothing pending and the
    // regions would come online without transactional replay. Hold the
    // recovery until the new hooks arrive (or the master shuts down).
    if (crashed && hooks_ever_set_) {
      while (hooks_ == nullptr && !stopping_) idle_cv_.wait(lock);
    }
    // Idempotence under duplicate failure deliveries: the coordination
    // service (or an operator via report_server_down) may report the same
    // dead incarnation more than once. Only the first report runs the WAL
    // split and reassignment; add_server clears the mark when the id
    // re-registers.
    if (!downs_handled_.insert(server_id).second) {
      TFR_LOG(INFO, "master") << "duplicate failure report for " << server_id << " ignored";
      return;
    }
    for (auto& [name, loc] : assignment_) {
      if (loc.server_id == server_id) {
        // Fence before anything else: from here on, the new epoch is in
        // force and any write the dead (or zombie) owner still manages to
        // push is rejected at the WAL / store-file boundary. The hook below
        // reads the already-bumped epoch via region_epoch().
        bump_epoch_locked(name);
        affected.push_back(loc);
      }
    }
    hooks = hooks_;
    if (hooks != nullptr) ++hook_calls_in_flight_;
    wal_path = server_wal_paths_[server_id];
  }

  // A crashed server may still be running (zombie behind a partition): close
  // its WAL files at the DFS and reject its future appends/syncs, so edits
  // it acks after this point can never become durable (HDFS lease recovery).
  if (crashed && !wal_path.empty()) dfs_->fence_prefix(wal_path);

  std::vector<std::string> region_names;
  for (const auto& loc : affected) region_names.push_back(loc.region_name);

  // Notify the recovery middleware *before* regions start coming back
  // (it snapshots TP(s) for the replay bound).
  if (hooks && crashed) hooks->on_server_failure(server_id, region_names);
  if (hooks != nullptr) {
    MutexLock lock(mutex_);
    --hook_calls_in_flight_;
    idle_cv_.notify_all();
  }

  // HBase log splitting: group the failed server's durable WAL records by
  // region (§2.1), fanning out per source segment across Wal::split's
  // worker pool. Clean shutdowns flushed their memstores, so their edits
  // are redundant — replaying them anyway is idempotent and exercises the
  // same path. The split is all-or-nothing: a worker that exhausts its
  // per-segment retries fails the whole split, and this outer loop retries
  // it from scratch — assigning regions from a partial edit map would
  // silently drop *durable* edits.
  const Micros split_start = now_micros();
  std::map<std::string, std::vector<WalRecord>> edits;
  if (!wal_path.empty()) {
    Backoff backoff(millis(1), millis(64));
    for (;;) {
      auto split = Wal::split(*dfs_, wal_path);
      if (split.is_ok()) {
        edits = std::move(split).value();
        global_counter("master.wal_splits").add();
        break;
      }
      if (split.status().is_not_found()) break;  // server never wrote a WAL
      if (backoff.attempts() >= 20) {
        // Exhausted: proceeding with an empty edit map would silently drop
        // the durable edits this loop exists to protect. Fail the recovery
        // visibly instead — the regions stay assigned to the dead server
        // (clients keep retrying, the RM keeps them pending and TP pinned)
        // and the counter lets tests and operators catch it.
        global_counter("master.wal_split_failures").add();
        TFR_LOG(ERROR, "master") << "WAL split failed for " << server_id << ": "
                                 << split.status() << "; giving up after "
                                 << backoff.attempts()
                                 << " attempts; regions left unassigned, operator "
                                    "intervention required";
        return;
      }
      TFR_LOG(WARN, "master") << "WAL split failed for " << server_id << ": "
                              << split.status() << "; retrying";
      backoff.sleep();
    }
  }
  global_gauge("master.last_split_us").set(now_micros() - split_start);

  // Reassign and recover the affected regions concurrently (Algorithm 4).
  // Region recoveries are independent: each open_region replays its own WAL
  // edits and fires its own replay gate, and the recovery middleware's
  // per-region state tolerates concurrent gates. Workers claim regions off
  // a shared cursor so one slow open does not serialize the rest.
  const Micros replay_start = now_micros();
  const std::size_t salt_base = std::hash<std::string>{}(server_id);
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> salt_counter{0};
  std::atomic<bool> all_recovered{true};
  auto recover_regions = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= affected.size()) return;
      const RegionLocation& loc = affected[i];
      for (;;) {
        std::string target;
        RegionServer* stub = nullptr;
        bool superseded = false;
        const std::size_t salt =
            salt_base + salt_counter.fetch_add(1, std::memory_order_relaxed);
        {
          MutexLock lock(mutex_);
          // Cascade check: if a later failure re-fenced the region (its new
          // owner died too before we placed it, or while our gate replay was
          // in flight), that failure's handler owns the reassignment now.
          // Publishing our stale epoch here would fence every write at the
          // owner it picked.
          auto ait = assignment_.find(loc.region_name);
          if (ait == assignment_.end() || ait->second.epoch > loc.epoch) {
            superseded = true;
          } else {
            target = pick_live_server_locked(salt);
            if (!target.empty()) {
              stub = servers_.at(target);
              // Publish the new location in the same critical section as the
              // epoch check: clients retrying against the dead server
              // re-locate here and keep retrying until the region is online.
              assignment_[loc.region_name] =
                  RegionLocation{loc.region_name, loc.descriptor, target, loc.epoch};
            }
          }
        }
        if (superseded) {
          TFR_LOG(INFO, "master") << loc.region_name
                                  << " re-fenced by a later failure; leaving it to "
                                     "that recovery";
          // The later handler owns the *reassignment* — but not our edits.
          // The TM-log floor only covers write-sets above the inherited
          // TPr; records the TM already GC'd exist solely in the dead
          // server's WAL, i.e. in the `edits` we split out of it. The
          // superseding handler splits only ITS dead server's WAL, and if
          // our earlier open died before syncing (the cascade: the new
          // owner crashed mid-open, dropping the replayed records as
          // un-synced bytes), those WALs never got them. Re-flush them
          // through the data path as idempotent recovery replays against
          // whoever ends up owning the rows: each ack lands the record in
          // a live owner's WAL and memstore, closing the gap.
          auto eit = edits.find(loc.region_name);
          if (eit != edits.end() && !eit->second.empty()) {
            if (replay_superseded_edits(loc.descriptor.table, eit->second)) {
              global_counter("master.superseded_edit_replays")
                  .add(static_cast<std::int64_t>(eit->second.size()));
              TFR_LOG(INFO, "master")
                  << loc.region_name << ": re-flushed " << eit->second.size()
                  << " split-WAL edits to the superseding owner";
            } else {
              TFR_LOG(ERROR, "master")
                  << loc.region_name << ": could not re-flush " << eit->second.size()
                  << " split-WAL edits after supersession; WAL segments kept, operator "
                     "intervention required";
            }
          }
          // Keep the dead server's segments either way (skip the purge
          // below): they stay the recovery source of record until an
          // operator confirms the handoff.
          all_recovered.store(false, std::memory_order_relaxed);
          break;
        }
        if (!stub) {
          TFR_LOG(ERROR, "master") << "no live server to host " << loc.region_name
                                   << "; operator intervention required";
          all_recovered.store(false, std::memory_order_relaxed);
          break;
        }
        auto it = edits.find(loc.region_name);
        const auto& region_edits =
            it == edits.end() ? std::vector<WalRecord>{} : it->second;
        Status s = stub->open_region(loc.descriptor, region_edits, loc.epoch);
        if (s.is_ok()) {
          TFR_LOG(INFO, "master") << loc.region_name << " reassigned " << server_id << " -> "
                                  << target;
          break;
        }
        TFR_LOG(WARN, "master") << "open_region " << loc.region_name << " on " << target
                                << " failed: " << s << "; retrying elsewhere";
        bool report_dead = false;
        {
          MutexLock lock(mutex_);
          // Treat the uncooperative target as suspect only if it is dead;
          // otherwise (e.g. already-open race) move on. Marking it dead is
          // not enough: the flag must come with a failure report, because
          // on_session_event coalesces on the flag — if we flip it silently
          // here, the coord expiry that arrives moments later is dropped as
          // "already handled" and the server's own regions are never
          // recovered (the cascade wedge). Whichever of this path and the
          // expiry flips the flag first enqueues the handling; the other
          // coalesces, and downs_handled_ absorbs duplicates beyond that.
          if (!stub->alive() && server_alive_[target]) {
            server_alive_[target] = false;
            ++in_flight_recoveries_;
            report_dead = true;
          }
        }
        if (report_dead) failures_.push({target, true});
        sleep_millis(1);
      }
    }
  };
  const std::size_t workers = std::min<std::size_t>(kRecoveryWorkers, affected.size());
  if (workers <= 1) {
    recover_regions();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(recover_regions);
    for (auto& t : pool) t.join();
  }
  global_gauge("master.last_replay_us").set(now_micros() - replay_start);

  // The old WAL is dead once every affected region is open elsewhere: the
  // split replayed its durable records into the new owners' memstores and
  // WALs, and the fence stops the old incarnation from writing more. Purge
  // it so a dead server's WAL does not pin DFS space forever — the
  // recycling counterpart of truncate_obsolete for servers that never come
  // back. Skipped if any region could not be placed: the next operator
  // action may need the segments.
  if (!wal_path.empty() && all_recovered.load(std::memory_order_relaxed)) {
    const std::size_t purged = dfs_->purge_prefix(wal_path + ".");
    if (purged > 0) {
      global_counter("master.wal_purged_segments").add(static_cast<std::int64_t>(purged));
      TFR_LOG(INFO, "master") << "purged " << purged << " WAL segments of " << server_id;
    }
  }
}

}  // namespace tfr
