#include "src/kv/master.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "src/common/backoff.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace tfr {

namespace {
// Concurrent region recoveries per failed server: enough to overlap several
// open_region replays without flooding a small cluster's handler pools.
constexpr std::size_t kRecoveryWorkers = 4;
}  // namespace

Master::Master(Dfs& dfs, Coord& coord) : dfs_(&dfs), coord_(&coord) {}

Master::~Master() { stop(); }

void Master::start() {
  listener_id_ = coord_->add_listener("servers", [this](const SessionInfo& info, bool expired) {
    on_session_event(info, expired);
  });
  worker_ = std::thread([this] { recovery_worker(); });
}

void Master::stop() {
  if (listener_id_ != 0) {
    coord_->remove_listener("servers", listener_id_);
    listener_id_ = 0;
  }
  {
    MutexLock lock(mutex_);
    stopping_ = true;  // release a recovery held for hooks that won't come
  }
  idle_cv_.notify_all();
  failures_.close();
  if (worker_.joinable()) worker_.join();
}

void Master::add_server(RegionServer* server) {
  MutexLock lock(mutex_);
  servers_[server->id()] = server;
  server_alive_[server->id()] = true;
  server_wal_paths_[server->id()] = server->wal_path();
  // A fresh incarnation of the id may fail again; forget the old one.
  downs_handled_.erase(server->id());
}

std::uint64_t Master::bump_epoch_locked(const std::string& region_name) {
  auto it = assignment_.find(region_name);
  if (it == assignment_.end()) return 0;
  const std::uint64_t epoch = ++it->second.epoch;
  // Arm the storage-side fencing check, then record the grant durably so a
  // restarted master (or the recovery manager) can learn the fenced epoch.
  if (epochs_ != nullptr) epochs_->advance_to(region_name, epoch);
  coord_->put(kEpochPrefix + region_name, static_cast<std::int64_t>(epoch));
  return epoch;
}

std::uint64_t Master::region_epoch(const std::string& region_name) const {
  MutexLock lock(mutex_);
  auto it = assignment_.find(region_name);
  return it == assignment_.end() ? 0 : it->second.epoch;
}

void Master::report_server_down(const std::string& server_id, bool crashed) {
  {
    MutexLock lock(mutex_);
    server_alive_[server_id] = false;
    ++in_flight_recoveries_;
  }
  failures_.push({server_id, crashed});
}

void Master::set_hooks(MasterHooks* hooks) {
  MutexLock lock(mutex_);
  // Quiesce: the recovery worker snapshots hooks_ before calling into it, so
  // wait out any in-flight invocation before letting the caller retire the
  // old hooks object.
  while (hook_calls_in_flight_ != 0) idle_cv_.wait(lock);
  hooks_ = hooks;
  if (hooks != nullptr) hooks_ever_set_ = true;
  lock.unlock();
  // Wake a recovery held in handle_server_down for the hooks to come back.
  idle_cv_.notify_all();
}

std::string Master::pick_live_server_locked(std::size_t salt) const {
  std::vector<std::string> live;
  for (const auto& [id, alive] : server_alive_) {
    if (alive) live.push_back(id);
  }
  if (live.empty()) return {};
  return live[salt % live.size()];
}

Status Master::create_table(const std::string& table, const std::vector<std::string>& split_keys) {
  std::vector<std::string> keys = split_keys;
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  std::vector<RegionDescriptor> descs;
  std::string start;
  for (const auto& k : keys) {
    descs.push_back(RegionDescriptor{table, start, k});
    start = k;
  }
  descs.push_back(RegionDescriptor{table, start, ""});

  std::vector<std::pair<RegionDescriptor, RegionServer*>> plan;
  {
    MutexLock lock(mutex_);
    for (const auto& d : descs) {
      if (assignment_.count(d.name())) {
        return Status::already_exists("table exists: " + table);
      }
    }
    std::size_t i = 0;
    for (const auto& d : descs) {
      const std::string target = pick_live_server_locked(i++);
      if (target.empty()) return Status::unavailable("no live region servers");
      plan.emplace_back(d, servers_.at(target));
      assignment_[d.name()] = RegionLocation{d.name(), d, target};
    }
  }
  for (auto& [desc, server] : plan) {
    TFR_RETURN_IF_ERROR(server->open_region(desc, {}, /*epoch=*/1));
  }
  TFR_LOG(INFO, "master") << "table " << table << " created with " << descs.size() << " regions";
  return Status::ok();
}

Result<RegionLocation> Master::locate(const std::string& table, const std::string& row) const {
  MutexLock lock(mutex_);
  for (const auto& [name, loc] : assignment_) {
    if (loc.descriptor.table == table && loc.descriptor.contains(row)) return loc;
  }
  return Status::not_found("no region for " + table + "/" + row);
}

std::vector<RegionLocation> Master::table_regions(const std::string& table) const {
  MutexLock lock(mutex_);
  std::vector<RegionLocation> out;
  for (const auto& [name, loc] : assignment_) {
    if (loc.descriptor.table == table) out.push_back(loc);
  }
  return out;
}

Result<RegionLocation> Master::region_by_name(const std::string& region_name) const {
  MutexLock lock(mutex_);
  auto it = assignment_.find(region_name);
  if (it == assignment_.end()) return Status::not_found("unknown region: " + region_name);
  return it->second;
}

RegionServer* Master::server_stub(const std::string& server_id) const {
  MutexLock lock(mutex_);
  auto it = servers_.find(server_id);
  return it == servers_.end() ? nullptr : it->second;
}

std::vector<std::string> Master::live_servers() const {
  MutexLock lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [id, alive] : server_alive_) {
    if (alive) out.push_back(id);
  }
  return out;
}

Status Master::split_region(const std::string& region_name) {
  RegionLocation loc;
  RegionServer* stub = nullptr;
  {
    MutexLock lock(mutex_);
    auto it = assignment_.find(region_name);
    if (it == assignment_.end()) return Status::not_found("unknown region: " + region_name);
    loc = it->second;
    auto sit = servers_.find(loc.server_id);
    if (sit == servers_.end()) return Status::unavailable("no stub for " + loc.server_id);
    stub = sit->second;
  }
  auto children = stub->split_region(region_name);
  if (!children.is_ok()) return children.status();
  const auto& [left, right] = children.value();
  {
    MutexLock lock(mutex_);
    assignment_.erase(region_name);
    // Children inherit the parent's ownership epoch (same server, same grant).
    assignment_[left.name()] = RegionLocation{left.name(), left, loc.server_id, loc.epoch};
    assignment_[right.name()] = RegionLocation{right.name(), right, loc.server_id, loc.epoch};
  }
  TFR_LOG(INFO, "master") << region_name << " split into " << left.name() << " and "
                          << right.name();
  return Status::ok();
}

Status Master::move_region(const std::string& region_name, const std::string& target_server) {
  RegionLocation loc;
  RegionServer* source = nullptr;
  RegionServer* target = nullptr;
  {
    MutexLock lock(mutex_);
    auto it = assignment_.find(region_name);
    if (it == assignment_.end()) return Status::not_found("unknown region: " + region_name);
    loc = it->second;
    if (loc.server_id == target_server) return Status::ok();
    auto sit = servers_.find(loc.server_id);
    auto tit = servers_.find(target_server);
    if (sit == servers_.end() || tit == servers_.end() || !server_alive_.at(target_server)) {
      return Status::unavailable("source or target unavailable for move");
    }
    source = sit->second;
    target = tit->second;
  }
  // Flush + close at the source, then publish the new location so client
  // retries land on the target while it opens the region from store files.
  TFR_RETURN_IF_ERROR(source->offload_region(region_name));
  std::uint64_t new_epoch;
  {
    MutexLock lock(mutex_);
    // New owner, new epoch: any straggling write from the source (flushed
    // and closed above, but belt-and-braces) is fenced out.
    new_epoch = bump_epoch_locked(region_name);
    assignment_[region_name] =
        RegionLocation{region_name, loc.descriptor, target_server, new_epoch};
  }
  Status opened = target->open_region(loc.descriptor, {}, new_epoch);
  if (!opened.is_ok()) {
    // Roll back the routing; the region is homeless until an operator or a
    // failure-recovery pass fixes it, so surface the error loudly.
    TFR_LOG(ERROR, "master") << "move of " << region_name << " to " << target_server
                             << " failed: " << opened;
    return opened;
  }
  TFR_LOG(INFO, "master") << region_name << " moved " << loc.server_id << " -> "
                          << target_server;
  return Status::ok();
}

Result<int> Master::rebalance() {
  // Build the per-server load map.
  std::map<std::string, std::vector<std::string>> by_server;
  {
    MutexLock lock(mutex_);
    for (const auto& [id, alive] : server_alive_) {
      if (alive) by_server[id];
    }
    for (const auto& [name, loc] : assignment_) {
      auto it = by_server.find(loc.server_id);
      if (it != by_server.end()) it->second.push_back(name);
    }
  }
  if (by_server.empty()) return Status::unavailable("no live servers");

  int moved = 0;
  for (;;) {
    auto most = by_server.begin();
    auto least = by_server.begin();
    for (auto it = by_server.begin(); it != by_server.end(); ++it) {
      if (it->second.size() > most->second.size()) most = it;
      if (it->second.size() < least->second.size()) least = it;
    }
    if (most->second.size() <= least->second.size() + 1) break;
    const std::string region = most->second.back();
    TFR_RETURN_IF_ERROR(move_region(region, least->first));
    most->second.pop_back();
    least->second.push_back(region);
    ++moved;
  }
  if (moved > 0) TFR_LOG(INFO, "master") << "rebalance moved " << moved << " regions";
  return moved;
}

void Master::on_session_event(const SessionInfo& info, bool expired) {
  {
    MutexLock lock(mutex_);
    auto it = server_alive_.find(info.name);
    if (it == server_alive_.end() || !it->second) return;  // unknown or already handled
    it->second = false;
    ++in_flight_recoveries_;
  }
  TFR_LOG(INFO, "master") << "server " << info.name << (expired ? " FAILED" : " left cleanly");
  failures_.push({info.name, expired});
}

void Master::recovery_worker() {
  // One handler thread per failure: cascading failures must overlap. A
  // second server dying while the first recovery is still replaying would
  // otherwise deadlock the cluster — the first handler can be blocked in a
  // replay gate writing to a region it just placed on the second (now dead)
  // server, and that region is only re-homed by the second failure's
  // handling, which a serial queue would park behind the first.
  std::vector<std::thread> handlers;
  while (auto item = failures_.pop()) {
    handlers.emplace_back([this, failed = *item] {
      handle_server_down(failed.first, failed.second);
      {
        MutexLock lock(mutex_);
        --in_flight_recoveries_;
      }
      idle_cv_.notify_all();
    });
  }
  for (auto& t : handlers) t.join();
}

void Master::wait_for_idle() const {
  MutexLock lock(mutex_);
  while (in_flight_recoveries_ != 0) idle_cv_.wait(lock);
}

void Master::handle_server_down(const std::string& server_id, bool crashed) {
  // Snapshot the affected regions and the hook.
  std::vector<RegionLocation> affected;
  MasterHooks* hooks = nullptr;
  std::string wal_path;
  {
    MutexLock lock(mutex_);
    // A crash landing in the recovery middleware's restart window — hooks
    // detached, the fresh instance not yet installed — must not proceed
    // hook-less: no pending-region entry or durable /tfr/recovering marker
    // would ever be written, so the gate would find nothing pending and the
    // regions would come online without transactional replay. Hold the
    // recovery until the new hooks arrive (or the master shuts down).
    if (crashed && hooks_ever_set_) {
      while (hooks_ == nullptr && !stopping_) idle_cv_.wait(lock);
    }
    // Idempotence under duplicate failure deliveries: the coordination
    // service (or an operator via report_server_down) may report the same
    // dead incarnation more than once. Only the first report runs the WAL
    // split and reassignment; add_server clears the mark when the id
    // re-registers.
    if (!downs_handled_.insert(server_id).second) {
      TFR_LOG(INFO, "master") << "duplicate failure report for " << server_id << " ignored";
      return;
    }
    for (auto& [name, loc] : assignment_) {
      if (loc.server_id == server_id) {
        // Fence before anything else: from here on, the new epoch is in
        // force and any write the dead (or zombie) owner still manages to
        // push is rejected at the WAL / store-file boundary. The hook below
        // reads the already-bumped epoch via region_epoch().
        bump_epoch_locked(name);
        affected.push_back(loc);
      }
    }
    hooks = hooks_;
    if (hooks != nullptr) ++hook_calls_in_flight_;
    wal_path = server_wal_paths_[server_id];
  }

  // A crashed server may still be running (zombie behind a partition): close
  // its WAL files at the DFS and reject its future appends/syncs, so edits
  // it acks after this point can never become durable (HDFS lease recovery).
  if (crashed && !wal_path.empty()) dfs_->fence_prefix(wal_path);

  std::vector<std::string> region_names;
  for (const auto& loc : affected) region_names.push_back(loc.region_name);

  // Notify the recovery middleware *before* regions start coming back
  // (it snapshots TP(s) for the replay bound).
  if (hooks && crashed) hooks->on_server_failure(server_id, region_names);
  if (hooks != nullptr) {
    MutexLock lock(mutex_);
    --hook_calls_in_flight_;
    idle_cv_.notify_all();
  }

  // HBase log splitting: group the failed server's durable WAL records by
  // region (§2.1), fanning out per source segment across Wal::split's
  // worker pool. Clean shutdowns flushed their memstores, so their edits
  // are redundant — replaying them anyway is idempotent and exercises the
  // same path. The split is all-or-nothing: a worker that exhausts its
  // per-segment retries fails the whole split, and this outer loop retries
  // it from scratch — assigning regions from a partial edit map would
  // silently drop *durable* edits.
  const Micros split_start = now_micros();
  std::map<std::string, std::vector<WalRecord>> edits;
  if (!wal_path.empty()) {
    Backoff backoff(millis(1), millis(64));
    for (;;) {
      auto split = Wal::split(*dfs_, wal_path);
      if (split.is_ok()) {
        edits = std::move(split).value();
        global_counter("master.wal_splits").add();
        break;
      }
      if (split.status().is_not_found()) break;  // server never wrote a WAL
      if (backoff.attempts() >= 20) {
        // Exhausted: proceeding with an empty edit map would silently drop
        // the durable edits this loop exists to protect. Fail the recovery
        // visibly instead — the regions stay assigned to the dead server
        // (clients keep retrying, the RM keeps them pending and TP pinned)
        // and the counter lets tests and operators catch it.
        global_counter("master.wal_split_failures").add();
        TFR_LOG(ERROR, "master") << "WAL split failed for " << server_id << ": "
                                 << split.status() << "; giving up after "
                                 << backoff.attempts()
                                 << " attempts; regions left unassigned, operator "
                                    "intervention required";
        return;
      }
      TFR_LOG(WARN, "master") << "WAL split failed for " << server_id << ": "
                              << split.status() << "; retrying";
      backoff.sleep();
    }
  }
  global_gauge("master.last_split_us").set(now_micros() - split_start);

  // Reassign and recover the affected regions concurrently (Algorithm 4).
  // Region recoveries are independent: each open_region replays its own WAL
  // edits and fires its own replay gate, and the recovery middleware's
  // per-region state tolerates concurrent gates. Workers claim regions off
  // a shared cursor so one slow open does not serialize the rest.
  const Micros replay_start = now_micros();
  const std::size_t salt_base = std::hash<std::string>{}(server_id);
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> salt_counter{0};
  std::atomic<bool> all_recovered{true};
  auto recover_regions = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= affected.size()) return;
      const RegionLocation& loc = affected[i];
      for (;;) {
        std::string target;
        RegionServer* stub = nullptr;
        bool superseded = false;
        const std::size_t salt =
            salt_base + salt_counter.fetch_add(1, std::memory_order_relaxed);
        {
          MutexLock lock(mutex_);
          // Cascade check: if a later failure re-fenced the region (its new
          // owner died too before we placed it, or while our gate replay was
          // in flight), that failure's handler owns the reassignment now.
          // Publishing our stale epoch here would fence every write at the
          // owner it picked.
          auto ait = assignment_.find(loc.region_name);
          if (ait == assignment_.end() || ait->second.epoch > loc.epoch) {
            superseded = true;
          } else {
            target = pick_live_server_locked(salt);
            if (!target.empty()) {
              stub = servers_.at(target);
              // Publish the new location in the same critical section as the
              // epoch check: clients retrying against the dead server
              // re-locate here and keep retrying until the region is online.
              assignment_[loc.region_name] =
                  RegionLocation{loc.region_name, loc.descriptor, target, loc.epoch};
            }
          }
        }
        if (superseded) {
          TFR_LOG(INFO, "master") << loc.region_name
                                  << " re-fenced by a later failure; leaving it to "
                                     "that recovery";
          // We can no longer vouch that this region's durable edits were
          // replayed into a live owner's WAL, so keep the dead server's
          // segments (skip the purge below). The transactional replay is
          // still covered: the region's pending entry pins the TM-log floor
          // at the inherited min TPr until its gate finally runs.
          all_recovered.store(false, std::memory_order_relaxed);
          break;
        }
        if (!stub) {
          TFR_LOG(ERROR, "master") << "no live server to host " << loc.region_name
                                   << "; operator intervention required";
          all_recovered.store(false, std::memory_order_relaxed);
          break;
        }
        auto it = edits.find(loc.region_name);
        const auto& region_edits =
            it == edits.end() ? std::vector<WalRecord>{} : it->second;
        Status s = stub->open_region(loc.descriptor, region_edits, loc.epoch);
        if (s.is_ok()) {
          TFR_LOG(INFO, "master") << loc.region_name << " reassigned " << server_id << " -> "
                                  << target;
          break;
        }
        TFR_LOG(WARN, "master") << "open_region " << loc.region_name << " on " << target
                                << " failed: " << s << "; retrying elsewhere";
        bool report_dead = false;
        {
          MutexLock lock(mutex_);
          // Treat the uncooperative target as suspect only if it is dead;
          // otherwise (e.g. already-open race) move on. Marking it dead is
          // not enough: the flag must come with a failure report, because
          // on_session_event coalesces on the flag — if we flip it silently
          // here, the coord expiry that arrives moments later is dropped as
          // "already handled" and the server's own regions are never
          // recovered (the cascade wedge). Whichever of this path and the
          // expiry flips the flag first enqueues the handling; the other
          // coalesces, and downs_handled_ absorbs duplicates beyond that.
          if (!stub->alive() && server_alive_[target]) {
            server_alive_[target] = false;
            ++in_flight_recoveries_;
            report_dead = true;
          }
        }
        if (report_dead) failures_.push({target, true});
        sleep_millis(1);
      }
    }
  };
  const std::size_t workers = std::min<std::size_t>(kRecoveryWorkers, affected.size());
  if (workers <= 1) {
    recover_regions();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(recover_regions);
    for (auto& t : pool) t.join();
  }
  global_gauge("master.last_replay_us").set(now_micros() - replay_start);

  // The old WAL is dead once every affected region is open elsewhere: the
  // split replayed its durable records into the new owners' memstores and
  // WALs, and the fence stops the old incarnation from writing more. Purge
  // it so a dead server's WAL does not pin DFS space forever — the
  // recycling counterpart of truncate_obsolete for servers that never come
  // back. Skipped if any region could not be placed: the next operator
  // action may need the segments.
  if (!wal_path.empty() && all_recovered.load(std::memory_order_relaxed)) {
    const std::size_t purged = dfs_->purge_prefix(wal_path + ".");
    if (purged > 0) {
      global_counter("master.wal_purged_segments").add(static_cast<std::int64_t>(purged));
      TFR_LOG(INFO, "master") << "purged " << purged << " WAL segments of " << server_id;
    }
  }
}

}  // namespace tfr
