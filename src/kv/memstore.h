// Memstore — the per-region in-memory multi-version store (§2.1). Holds the
// latest updates of a region; its contents are what a region server loses
// when it crashes, and what the paper's recovery middleware must be able to
// reconstruct from the TM recovery log.
//
// Not internally synchronized; the owning Region serializes access.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/kv/types.h"

namespace tfr {

class Memstore {
 public:
  /// Apply one versioned cell. Re-applying an identical (row, column, ts)
  /// cell is a no-op in effect — this is what makes write-set replay
  /// idempotent.
  void apply(const Cell& cell);

  /// Newest version with ts <= read_ts, if any (tombstones are returned so
  /// the read path can suppress older store-file versions).
  std::optional<Cell> get(const std::string& row, const std::string& column,
                          Timestamp read_ts) const;

  /// All cells, sorted, for a memstore flush snapshot.
  std::vector<Cell> snapshot() const;

  /// Versions visible at read_ts for rows in [start, end) — newest version
  /// per (row, column), tombstones included.
  std::vector<Cell> scan(const std::string& start, const std::string& end,
                         Timestamp read_ts) const;

  /// Every version of every (row, column) with row in [start, end), in
  /// (row, column, ts desc) order. The streaming read path snapshots the
  /// memstore's slice of a scan with this (visibility is resolved after the
  /// merge with the store files, so all versions must travel).
  std::vector<Cell> range_snapshot(const std::string& start, const std::string& end) const;

  void clear();

  std::size_t cell_count() const { return cells_.size(); }
  std::size_t byte_size() const { return bytes_; }

  /// Largest commit timestamp ever applied (for flush metadata).
  Timestamp max_ts() const { return max_ts_; }

 private:
  struct Key {
    std::string row;
    std::string column;
    Timestamp ts;  // ordered descending within (row, column)

    bool operator<(const Key& o) const {
      if (row != o.row) return row < o.row;
      if (column != o.column) return column < o.column;
      return ts > o.ts;  // newer first
    }
  };
  struct Value {
    std::string value;
    bool tombstone;
  };

  std::map<Key, Value> cells_;
  std::size_t bytes_ = 0;
  Timestamp max_ts_ = kNoTimestamp;
};

}  // namespace tfr
