// Immutable store files (HBase HFiles / BigTable SSTables). A memstore
// flush writes one store file to the DFS; region reads consult the memstore
// first, then store files newest-first, fetching blocks through the
// BlockCache.
//
// On-disk layout (format v2):
//   [block 0][block 1]...[block n-1][index][meta][footer]
//   block : u32 cell_count, u32 crc, cells (sorted by row, column, ts desc)
//   index : u32 entry_count, entries { string first_row, u64 off, u64 len }
//   meta  : string first_row, string last_row,      -- file-wide key range
//           u32 bloom_probes, string bloom_bits     -- row bloom filter
//   footer: u64 index_offset, u64 index_length,
//           u64 meta_offset, u64 meta_length, i64 max_ts,
//           u32 version, u32 magic_v2
//
// Format v1 (files written before the bloom/key-range fields existed) has
// no meta section and a footer of { index_offset, index_length, max_ts,
// magic }; the reader distinguishes the two by magic and reads v1 files
// with pruning disabled. The writer can still emit v1 (format_version
// argument) so compatibility stays testable.
//
// The meta fields are what make the read path prune: a point get consults
// a file only if the row is inside [first_row, last_row] AND the bloom
// filter admits it (kv.sf_range_skips / kv.sf_bloom_skips count the files
// never touched); a scan skips files whose key range misses [start, end).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/dfs/dfs.h"
#include "src/kv/block_cache.h"
#include "src/kv/bloom.h"
#include "src/kv/cell_iter.h"
#include "src/kv/types.h"

namespace tfr {

/// Current on-disk format written by StoreFileWriter.
constexpr int kStoreFileFormatLatest = 2;

/// Builds one store file from cells supplied in sorted order.
class StoreFileWriter {
 public:
  /// `target_block_bytes`: flush a block once it reaches this size.
  /// `format_version`: 2 (default) writes the bloom/key-range meta section;
  /// 1 reproduces the legacy footer for compatibility tests.
  explicit StoreFileWriter(std::size_t target_block_bytes = 16 * 1024,
                           int format_version = kStoreFileFormatLatest);

  /// Cells must arrive in (row, column, ts desc) order — exactly the order
  /// Memstore::snapshot() produces. Blocks rotate only at row boundaries so
  /// a row's whole version chain lives in one block (the reader relies on
  /// this to resolve a lookup with a single block fetch).
  void add(const Cell& cell);

  /// Finish and persist to the DFS at `path` (create + append + sync).
  Status finish(Dfs& dfs, const std::string& path);

  std::size_t cell_count() const { return cell_count_; }

 private:
  void rotate_block();

  std::size_t target_block_bytes_;
  int format_version_;
  std::string file_data_;
  std::string current_block_;
  std::string current_first_row_;
  std::string current_last_row_;
  std::uint32_t current_cells_ = 0;
  std::size_t cell_count_ = 0;
  Timestamp max_ts_ = kNoTimestamp;
  std::string file_first_row_;
  std::string file_last_row_;
  std::vector<std::uint64_t> row_hashes_;  // one per distinct row, for the bloom

  struct IndexEntry {
    std::string first_row;
    std::uint64_t offset;
    std::uint64_t length;
  };
  std::vector<IndexEntry> index_;
};

/// Read side. Opening reads the footer+meta and index (two DFS reads);
/// block fetches go through the shared BlockCache.
class StoreFileReader {
 public:
  static Result<std::shared_ptr<StoreFileReader>> open(Dfs& dfs, std::string path);

  /// Defer the DFS file's deletion to this reader's destruction. Compaction
  /// calls this on the inputs it replaced instead of removing their paths
  /// eagerly: a concurrent get/scan (or a second compaction) that snapshotted
  /// files_ still holds shared_ptrs to these readers, and deleting the file
  /// under them turns a benign race into a NotFound surfaced to the client.
  /// The last shared_ptr release removes the file and drops its cached
  /// blocks; `cache` (may be null) and the Dfs must outlive every reader,
  /// which holds because both are owned above the region layer and all
  /// requests are synchronous.
  void remove_on_last_ref(BlockCache* cache) {
    cleanup_cache_ = cache;
    remove_on_last_ref_ = true;
  }

  ~StoreFileReader();

  /// Newest version of (row, column) with ts <= read_ts in this file.
  /// Returns without any block fetch when the bloom filter or key range
  /// proves the row absent.
  Result<std::optional<Cell>> get(BlockCache& cache, const std::string& row,
                                  const std::string& column, Timestamp read_ts) const;

  /// All cells with row in [start, end) visible at read_ts (newest version
  /// per row/column within this file; merging across files is the caller's
  /// job). Legacy materializing path — Region::scan streams via iterate()
  /// instead; kept for the A/B flag and per-file tests.
  Result<std::vector<Cell>> scan(BlockCache& cache, const std::string& start,
                                 const std::string& end, Timestamp read_ts) const;

  /// Streaming iterator over every version with row in [start, end), in
  /// (row, column, ts desc) order, loading blocks lazily through `cache` as
  /// it advances. The reader (and cache) must outlive the iterator — the
  /// Region keeps its shared_ptr alive for the duration of the read.
  Result<std::unique_ptr<CellIterator>> iterate(BlockCache& cache, const std::string& start,
                                                const std::string& end) const;

  /// Every cell in the file, all versions, in (row, column, ts desc) order.
  Result<std::vector<Cell>> all_cells(BlockCache& cache) const;

  const std::string& path() const { return path_; }
  Timestamp max_ts() const { return max_ts_; }
  std::size_t block_count() const { return index_.size(); }
  int format_version() const { return format_version_; }

  /// Approximate payload size: the sum of all block lengths (index, meta and
  /// footer excluded). Pure index metadata — no I/O.
  std::uint64_t data_bytes() const {
    std::uint64_t total = 0;
    for (const auto& e : index_) total += e.length;
    return total;
  }

  /// First row of the middle block — the natural split key this file's
  /// metadata suggests, with no block reads. Only meaningful with at least
  /// two blocks (a single-block file's midpoint is its first row, which
  /// would make a degenerate left daughter); empty for an empty file.
  std::string midpoint_row() const {
    return index_.empty() ? std::string() : index_[index_.size() / 2].first_row;
  }

  /// File-wide key range [first_row, last_row]; meaningful only when
  /// has_key_range() (v2 files with at least one cell).
  bool has_key_range() const { return has_key_range_; }
  const std::string& first_row() const { return first_row_; }
  const std::string& last_row() const { return last_row_; }

  /// True unless the key range proves [start, end) cannot intersect this
  /// file. v1 files always overlap (no range to prune on).
  bool range_overlaps(const std::string& start, const std::string& end) const;

  /// Bloom + key-range verdict for a point row (no I/O). False means the
  /// row is definitely absent.
  bool may_contain_row(const std::string& row) const;

 private:
  friend class StoreFileIterator;

  StoreFileReader(Dfs& dfs, std::string path) : dfs_(&dfs), path_(std::move(path)) {}

  Result<BlockPtr> load_block(std::size_t idx) const;
  Result<BlockPtr> cached_block(BlockCache& cache, std::size_t idx) const;

  /// Index of the last block whose first_row <= row, or npos if row precedes
  /// the whole file.
  std::size_t block_for(const std::string& row) const;

  Dfs* dfs_;
  std::string path_;
  // Plain (non-atomic) is enough for the deferred-delete fields: the setter
  // runs while the setting thread still holds a reference, and the shared_ptr
  // control block's release/acquire on the final decrement orders that write
  // before the destructor on whichever thread drops the last reference.
  bool remove_on_last_ref_ = false;
  BlockCache* cleanup_cache_ = nullptr;
  Timestamp max_ts_ = kNoTimestamp;
  int format_version_ = 1;
  bool has_key_range_ = false;
  std::string first_row_;
  std::string last_row_;
  BloomFilter bloom_;

  struct IndexEntry {
    std::string first_row;
    std::uint64_t offset;
    std::uint64_t length;
  };
  std::vector<IndexEntry> index_;
};

}  // namespace tfr
