// Immutable store files (HBase HFiles / BigTable SSTables). A memstore
// flush writes one store file to the DFS; region reads consult the memstore
// first, then store files newest-first, fetching blocks through the
// BlockCache.
//
// On-disk layout:
//   [block 0][block 1]...[block n-1][index][footer]
//   block : u32 cell_count, cells (sorted by row, column, ts desc)
//   index : u32 entry_count, entries { string first_row, u64 off, u64 len }
//   footer: u64 index_offset, u64 index_length, i64 max_ts, u32 magic
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/dfs/dfs.h"
#include "src/kv/block_cache.h"
#include "src/kv/types.h"

namespace tfr {

/// Builds one store file from cells supplied in sorted order.
class StoreFileWriter {
 public:
  /// `target_block_bytes`: flush a block once it reaches this size.
  explicit StoreFileWriter(std::size_t target_block_bytes = 16 * 1024);

  /// Cells must arrive in (row, column, ts desc) order — exactly the order
  /// Memstore::snapshot() produces. Blocks rotate only at row boundaries so
  /// a row's whole version chain lives in one block (the reader relies on
  /// this to resolve a lookup with a single block fetch).
  void add(const Cell& cell);

  /// Finish and persist to the DFS at `path` (create + append + sync).
  Status finish(Dfs& dfs, const std::string& path);

  std::size_t cell_count() const { return cell_count_; }

 private:
  void rotate_block();

  std::size_t target_block_bytes_;
  std::string file_data_;
  std::string current_block_;
  std::string current_first_row_;
  std::string current_last_row_;
  std::uint32_t current_cells_ = 0;
  std::size_t cell_count_ = 0;
  Timestamp max_ts_ = kNoTimestamp;

  struct IndexEntry {
    std::string first_row;
    std::uint64_t offset;
    std::uint64_t length;
  };
  std::vector<IndexEntry> index_;
};

/// Read side. Opening reads the footer and index (two DFS reads); block
/// fetches go through the shared BlockCache.
class StoreFileReader {
 public:
  static Result<std::shared_ptr<StoreFileReader>> open(Dfs& dfs, std::string path);

  /// Newest version of (row, column) with ts <= read_ts in this file.
  Result<std::optional<Cell>> get(BlockCache& cache, const std::string& row,
                                  const std::string& column, Timestamp read_ts) const;

  /// All cells with row in [start, end) visible at read_ts (newest version
  /// per row/column within this file; merging across files is the caller's
  /// job).
  Result<std::vector<Cell>> scan(BlockCache& cache, const std::string& start,
                                 const std::string& end, Timestamp read_ts) const;

  /// Every cell in the file, all versions, in (row, column, ts desc) order.
  /// Used by compaction and region splits.
  Result<std::vector<Cell>> all_cells(BlockCache& cache) const;

  const std::string& path() const { return path_; }
  Timestamp max_ts() const { return max_ts_; }
  std::size_t block_count() const { return index_.size(); }

 private:
  StoreFileReader(Dfs& dfs, std::string path) : dfs_(&dfs), path_(std::move(path)) {}

  Result<BlockPtr> load_block(std::size_t idx) const;
  Result<BlockPtr> cached_block(BlockCache& cache, std::size_t idx) const;

  /// Index of the last block whose first_row <= row, or npos if row precedes
  /// the whole file.
  std::size_t block_for(const std::string& row) const;

  Dfs* dfs_;
  std::string path_;
  Timestamp max_ts_ = kNoTimestamp;

  struct IndexEntry {
    std::string first_row;
    std::uint64_t offset;
    std::uint64_t length;
  };
  std::vector<IndexEntry> index_;
};

}  // namespace tfr
