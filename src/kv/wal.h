// The per-region-server write-ahead log (§2.1). Every incoming update is
// appended here before being applied to the memstore. The paper's key
// configuration is to *disable the synchronous flush* of this log: appends
// go to the DFS write pipeline immediately but are only made durable by an
// asynchronous periodic sync — trading the per-update durability of stock
// HBase for latency, because the TM recovery log already guarantees
// durability of committed transactions.
//
// Like HBase's, the log is a sequence of *segments*: roll() closes the
// current segment and opens a fresh one, and truncate_obsolete() deletes
// closed segments whose records have all been superseded by memstore
// flushes (their data now lives in store files). After a server failure,
// the durable prefix of every live segment is split by region (Wal::split)
// and replayed into freshly assigned regions — HBase's internal recovery.
// Updates that were only in the in-memory tail are gone; those are
// precisely the ones the recovery manager replays from the TM log.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/epoch.h"
#include "src/dfs/dfs.h"
#include "src/kv/types.h"

namespace tfr {

/// One WAL record: the slice of a transaction's write-set that falls in one
/// region, stamped with the transaction's commit timestamp and the writer's
/// ownership epoch for the region (the fencing token; 0 = unfenced).
struct WalRecord {
  std::string region;  // region name
  std::uint64_t seq = 0;
  std::uint64_t txn_id = 0;
  std::string client_id;
  Timestamp commit_ts = kNoTimestamp;
  std::uint64_t epoch = 0;
  std::vector<Cell> cells;

  std::string encode() const;
  static Result<WalRecord> decode(std::string_view data);
};

struct WalStats {
  std::uint64_t appended_records = 0;
  std::uint64_t synced_records = 0;
  std::uint64_t syncs = 0;
  std::uint64_t rolls = 0;
  std::uint64_t segments_truncated = 0;
  std::size_t live_segments = 0;
};

class Wal {
 public:
  /// Creates the first DFS-backed segment at `<base_path>.00000001`.
  static Result<std::unique_ptr<Wal>> create(Dfs& dfs, std::string base_path);

  /// Append a record to the DFS write pipeline (NOT yet durable). Assigns
  /// and returns the record's sequence number. With an epoch registry
  /// attached, a record bearing a stale epoch for its region is rejected
  /// with WrongEpoch before anything reaches the DFS (the fencing-token
  /// check; counted in kv.epoch_rejects).
  Result<std::uint64_t> append(WalRecord record);

  /// Attach the cluster's epoch registry (nullptr to detach). Not
  /// synchronized with in-flight appends: install before traffic starts.
  void set_epoch_registry(const EpochRegistry* epochs) { epochs_ = epochs; }

  /// Force everything appended so far to be durable (one DFS sync of the
  /// current segment; closed segments are already durable). This is what
  /// Algorithm 3's persist step and the synchronous-persistence mode of
  /// Figure 2(a) call.
  TFR_BLOCKING Status sync();

  /// Close the current segment (sync it) and open a fresh one. HBase rolls
  /// when a segment exceeds a size threshold so old segments can later be
  /// reclaimed.
  Status roll();

  /// Delete closed segments whose records all have seq < `min_needed_seq`
  /// (i.e. every region's un-flushed edits start at or after it). Returns
  /// the number of segments removed. If the DFS rejects the delete with
  /// WrongEpoch the WAL directory has been fenced by the master — this
  /// server is dead to the cluster and must leave its segments for the
  /// split (counted in kv.wal_truncate_fenced).
  std::size_t truncate_obsolete(std::uint64_t min_needed_seq);

  /// Sequence number through which records are durable.
  std::uint64_t synced_seq() const { return synced_seq_.load(std::memory_order_acquire); }
  std::uint64_t appended_seq() const { return next_seq_.load(std::memory_order_acquire) - 1; }

  /// Bytes appended to the current (open) segment — the roll trigger.
  std::uint64_t current_segment_bytes() const;

  /// The writer crashed: the un-synced tail of the open segment is lost.
  void crash();

  WalStats stats() const;
  const std::string& base_path() const { return base_path_; }

  /// Read all durable records of a (possibly crashed) server's WAL, across
  /// all of its live segments, in sequence order.
  static Result<std::vector<WalRecord>> read_records(Dfs& dfs, const std::string& base_path);

  /// Tuning for the parallel split below.
  struct SplitOptions {
    int workers = 4;               ///< worker threads (capped by segment count)
    int attempts_per_segment = 8;  ///< bounded retries of transient read errors
    Micros backoff_base = millis(1);
    Micros backoff_cap = millis(8);
  };

  /// HBase log splitting: group the durable records of a failed server's
  /// WAL by region, in sequence order. Fans out per source segment across a
  /// worker pool; each worker retries transient (Unavailable) read errors a
  /// bounded number of times. All-or-nothing: if any segment cannot be
  /// decoded the whole split fails — a partial edit map silently loses
  /// durable edits for the regions whose segment was dropped.
  static Result<std::map<std::string, std::vector<WalRecord>>> split(
      Dfs& dfs, const std::string& base_path, const SplitOptions& options);
  static Result<std::map<std::string, std::vector<WalRecord>>> split(Dfs& dfs,
                                                                     const std::string& base_path);

 private:
  Wal(Dfs& dfs, std::string base_path) : dfs_(&dfs), base_path_(std::move(base_path)) {}

  static std::string segment_path(const std::string& base, std::uint64_t index);
  Status open_segment_locked() TFR_REQUIRES(mutex_);

  struct Segment {
    std::string path;
    std::uint64_t first_seq = 0;  // first seq appended to it (0 if none yet)
    std::uint64_t last_seq = 0;   // last seq appended to it
    std::uint64_t bytes = 0;
  };

  Dfs* dfs_;
  const EpochRegistry* epochs_ = nullptr;
  std::string base_path_;
  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<std::uint64_t> synced_seq_{0};

  // Guards segments_ and appends (record framing).
  mutable RankedMutex<LockRank::kWal> mutex_{"wal"};
  std::vector<Segment> segments_ TFR_GUARDED_BY(mutex_);  // back() is the open segment
  std::uint64_t next_segment_index_ TFR_GUARDED_BY(mutex_) = 1;
  std::uint64_t rolls_ TFR_GUARDED_BY(mutex_) = 0;
  std::uint64_t truncated_ TFR_GUARDED_BY(mutex_) = 0;

  // Serializes syncs; appends proceed concurrently. Outer of mutex_.
  RankedMutex<LockRank::kWalSync> sync_mutex_{"wal_sync"};
  std::atomic<std::uint64_t> sync_count_{0};
};

}  // namespace tfr
