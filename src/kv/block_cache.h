// BlockCache — per-region-server LRU cache of decoded store-file blocks
// (§2.1: "a large main-memory cache to reduce interactions with HDFS").
//
// A block that is not cached must be fetched from the DFS, which charges the
// DFS read latency; this is the mechanism behind the slow warm-up after a
// failover in Figure 3: the regions that move to the surviving server arrive
// with a completely cold cache.
//
// The cache is sharded into independent LRU stripes (key hash picks the
// stripe) so concurrent readers don't serialize on one mutex, and each miss
// is single-flight: the first thread to miss a key runs the loader; threads
// that miss the same key while the load is in flight wait and share the
// result instead of stampeding the DFS with duplicate reads. A failed load
// wakes the waiters and the next one retries as the new loader.
//
// Event counts are published both per-cache (stats()) and process-wide
// under kv.cache.{hits,misses,evictions,bytes} in the global metrics
// registry, so soaks and benches can watch hit rates without plumbing.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/status.h"
#include "src/kv/types.h"

namespace tfr {

/// A decoded, immutable store-file block: cells sorted by (row, column,
/// ts desc), same order as the memstore.
struct CacheBlock {
  std::vector<Cell> cells;
  std::size_t byte_size = 0;
};

using BlockPtr = std::shared_ptr<const CacheBlock>;

struct BlockCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  std::int64_t bytes = 0;
  /// Lookups that found another thread already loading the key and waited
  /// for its result instead of re-running the loader.
  std::int64_t single_flight_waits = 0;
};

class BlockCache {
 public:
  /// `num_shards` is rounded up to a power of two; 0 picks the default (16).
  /// Capacity is split evenly across shards.
  explicit BlockCache(std::size_t capacity_bytes, std::size_t num_shards = 0);

  /// Look up `key`; on miss, call `loader` (which typically performs a DFS
  /// read and therefore blocks for the read latency), insert, and return.
  /// The loader runs outside the cache lock, and at most one loader per key
  /// is in flight — concurrent misses on the same key wait and share the
  /// loaded block.
  Result<BlockPtr> get_or_load(const std::string& key,
                               const std::function<Result<BlockPtr>()>& loader);

  /// Drop every block whose key starts with `prefix` (e.g. when a store file
  /// is deleted after compaction).
  void invalidate_prefix(const std::string& prefix);

  void clear();

  /// Aggregated over all shards.
  BlockCacheStats stats() const;
  std::size_t capacity() const { return capacity_; }
  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    mutable RankedMutex<LockRank::kBlockCache> mutex{"block_cache_shard"};
    CondVar load_done;  // signaled whenever an in-flight load finishes
    std::list<std::string> lru TFR_GUARDED_BY(mutex);  // front = most recent
    struct Entry {
      BlockPtr block;
      std::list<std::string>::iterator lru_it;
    };
    std::unordered_map<std::string, Entry> map TFR_GUARDED_BY(mutex);
    std::unordered_set<std::string> loading TFR_GUARDED_BY(mutex);
    BlockCacheStats stats TFR_GUARDED_BY(mutex);
    std::size_t capacity = 0;

    void evict_to_fit() TFR_REQUIRES(mutex);
  };

  Shard& shard_for(const std::string& key) const;

  std::size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace tfr
