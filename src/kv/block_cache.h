// BlockCache — per-region-server LRU cache of decoded store-file blocks
// (§2.1: "a large main-memory cache to reduce interactions with HDFS").
//
// A block that is not cached must be fetched from the DFS, which charges the
// DFS read latency; this is the mechanism behind the slow warm-up after a
// failover in Figure 3: the regions that move to the surviving server arrive
// with a completely cold cache.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/status.h"
#include "src/kv/types.h"

namespace tfr {

/// A decoded, immutable store-file block: cells sorted by (row, column,
/// ts desc), same order as the memstore.
struct CacheBlock {
  std::vector<Cell> cells;
  std::size_t byte_size = 0;
};

using BlockPtr = std::shared_ptr<const CacheBlock>;

struct BlockCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  std::int64_t bytes = 0;
};

class BlockCache {
 public:
  explicit BlockCache(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}

  /// Look up `key`; on miss, call `loader` (which typically performs a DFS
  /// read and therefore blocks for the read latency), insert, and return.
  /// The loader runs outside the cache lock.
  Result<BlockPtr> get_or_load(const std::string& key,
                               const std::function<Result<BlockPtr>()>& loader);

  /// Drop every block whose key starts with `prefix` (e.g. when a store file
  /// is deleted after compaction).
  void invalidate_prefix(const std::string& prefix);

  void clear();

  BlockCacheStats stats() const;
  std::size_t capacity() const { return capacity_; }

 private:
  void evict_to_fit_locked() TFR_REQUIRES(mutex_);

  std::size_t capacity_;
  mutable Mutex mutex_{LockRank::kBlockCache, "block_cache"};
  std::list<std::string> lru_ TFR_GUARDED_BY(mutex_);  // front = most recent
  struct Entry {
    BlockPtr block;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, Entry> map_ TFR_GUARDED_BY(mutex_);
  BlockCacheStats stats_ TFR_GUARDED_BY(mutex_);
};

}  // namespace tfr
