#include "src/kv/cluster.h"

#include "src/common/logging.h"

namespace tfr {

Cluster::Cluster(ClusterConfig config)
    : config_(config), dfs_(config.dfs), coord_(config.coord_check_interval),
      master_(dfs_, coord_) {
  dfs_.set_fault_injector(&fault_);
  master_.set_epoch_registry(&epochs_);
  for (int i = 0; i < config_.num_servers; ++i) {
    servers_.push_back(
        std::make_unique<RegionServer>("rs" + std::to_string(i + 1), dfs_, coord_,
                                       config_.server));
    servers_.back()->set_fault_injector(&fault_);
    servers_.back()->set_epoch_registry(&epochs_);
  }
}

Cluster::~Cluster() { stop(); }

Status Cluster::start() {
  master_.start();
  for (auto& s : servers_) {
    if (server_setup_) server_setup_(*s);
    TFR_RETURN_IF_ERROR(s->start());
    master_.add_server(s.get());
  }
  // After the servers are registered, so the first tick sees them all.
  master_.enable_balancer(config_.balancer);
  started_ = true;
  return Status::ok();
}

void Cluster::stop() {
  if (!started_) return;
  started_ = false;
  // Stop the master's failure handling first so clean shutdowns below do not
  // trigger pointless region reassignment.
  master_.stop();
  for (auto& s : servers_) {
    if (s->alive()) {
      TFR_IGNORE_STATUS(s->shutdown(),
                        "teardown is best-effort; a failed shutdown is a crash, which recovery covers");
    }
  }
}

RegionServer* Cluster::server_by_id(const std::string& id) {
  for (auto& s : servers_) {
    if (s->id() == id) return s.get();
  }
  return nullptr;
}

Result<RegionServer*> Cluster::add_server() {
  auto server = std::make_unique<RegionServer>("rs" + std::to_string(servers_.size() + 1), dfs_,
                                               coord_, config_.server);
  server->set_fault_injector(&fault_);
  server->set_epoch_registry(&epochs_);
  if (server_setup_) server_setup_(*server);
  TFR_RETURN_IF_ERROR(server->start());
  master_.add_server(server.get());
  servers_.push_back(std::move(server));
  return servers_.back().get();
}

void Cluster::crash_server(int i) {
  servers_.at(static_cast<std::size_t>(i))->crash();
}

}  // namespace tfr
