#include "src/kv/store_file.h"

#include <algorithm>

#include "src/common/crc32.h"
#include "src/common/metrics.h"

namespace tfr {

namespace {
constexpr std::uint32_t kMagicV1 = 0x7f5bf11e;
constexpr std::uint32_t kMagicV2 = 0x7f5bf22e;
constexpr std::size_t kFooterSizeV1 = 8 + 8 + 8 + 4;
constexpr std::size_t kFooterSizeV2 = 8 + 8 + 8 + 8 + 8 + 4 + 4;
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
}  // namespace

StoreFileWriter::StoreFileWriter(std::size_t target_block_bytes, int format_version)
    : target_block_bytes_(target_block_bytes), format_version_(format_version) {}

void StoreFileWriter::add(const Cell& cell) {
  // Rotate only between rows: a (row, column) version chain must never
  // straddle a block boundary.
  if (current_cells_ > 0 && current_block_.size() >= target_block_bytes_ &&
      cell.row != current_last_row_) {
    rotate_block();
  }
  if (cell_count_ == 0) {
    file_first_row_ = cell.row;
  }
  if (cell_count_ == 0 || cell.row != current_last_row_) {
    row_hashes_.push_back(bloom_hash(cell.row));  // one hash per distinct row
  }
  file_last_row_ = cell.row;
  if (current_cells_ == 0) current_first_row_ = cell.row;
  current_last_row_ = cell.row;
  Encoder enc(&current_block_);
  encode_cell(enc, cell);
  ++current_cells_;
  ++cell_count_;
  if (cell.ts > max_ts_) max_ts_ = cell.ts;
}

void StoreFileWriter::rotate_block() {
  if (current_cells_ == 0) return;
  IndexEntry entry;
  entry.first_row = current_first_row_;
  entry.offset = file_data_.size();
  std::string framed;
  Encoder enc(&framed);
  enc.put_u32(current_cells_);
  enc.put_u32(crc32c(current_block_));
  framed += current_block_;
  entry.length = framed.size();
  file_data_ += framed;
  index_.push_back(std::move(entry));
  current_block_.clear();
  current_cells_ = 0;
}

Status StoreFileWriter::finish(Dfs& dfs, const std::string& path) {
  rotate_block();
  const std::uint64_t index_offset = file_data_.size();
  std::string index_data;
  Encoder ienc(&index_data);
  ienc.put_u32(static_cast<std::uint32_t>(index_.size()));
  for (const auto& e : index_) {
    ienc.put_string(e.first_row);
    ienc.put_u64(e.offset);
    ienc.put_u64(e.length);
  }
  file_data_ += index_data;

  if (format_version_ == 1) {
    Encoder fenc(&file_data_);
    fenc.put_u64(index_offset);
    fenc.put_u64(index_data.size());
    fenc.put_i64(max_ts_);
    fenc.put_u32(kMagicV1);
    return dfs.write_file(path, file_data_);
  }

  const std::uint64_t meta_offset = file_data_.size();
  std::string meta_data;
  Encoder menc(&meta_data);
  menc.put_string(file_first_row_);
  menc.put_string(file_last_row_);
  const BloomFilter bloom = BloomFilter::build(row_hashes_);
  menc.put_u32(static_cast<std::uint32_t>(bloom.probes()));
  menc.put_string(bloom.bits());
  file_data_ += meta_data;

  Encoder fenc(&file_data_);
  fenc.put_u64(index_offset);
  fenc.put_u64(index_data.size());
  fenc.put_u64(meta_offset);
  fenc.put_u64(meta_data.size());
  fenc.put_i64(max_ts_);
  fenc.put_u32(static_cast<std::uint32_t>(format_version_));
  fenc.put_u32(kMagicV2);
  return dfs.write_file(path, file_data_);
}

StoreFileReader::~StoreFileReader() {
  if (!remove_on_last_ref_) return;
  TFR_IGNORE_STATUS(dfs_->remove(path_),
                    "deferred compaction-input delete; under a fence or after a janitor sweep "
                    "the path is the successor's (or gone), a leaked file is unreferenced");
  if (cleanup_cache_ != nullptr) cleanup_cache_->invalidate_prefix(path_ + "#");
}

Result<std::shared_ptr<StoreFileReader>> StoreFileReader::open(Dfs& dfs, std::string path) {
  auto size = dfs.durable_size(path);
  if (!size.is_ok()) return size.status();
  if (size.value() < kFooterSizeV1) return Status::corruption("store file too small: " + path);

  // One tail read covers either footer; the magic in the last 4 bytes says
  // which format we're looking at.
  const std::uint64_t tail_len = std::min<std::uint64_t>(size.value(), kFooterSizeV2);
  auto tail = dfs.read(path, size.value() - tail_len, tail_len);
  if (!tail.is_ok()) return tail.status();
  std::uint32_t magic = 0;
  {
    Decoder mdec(std::string_view(tail.value()).substr(tail.value().size() - 4));
    TFR_RETURN_IF_ERROR(mdec.get_u32(&magic));
  }

  auto reader = std::shared_ptr<StoreFileReader>(new StoreFileReader(dfs, std::move(path)));
  std::uint64_t index_offset = 0, index_length = 0;
  std::uint64_t meta_offset = 0, meta_length = 0;

  if (magic == kMagicV2) {
    if (tail.value().size() < kFooterSizeV2) {
      return Status::corruption("v2 store file too small: " + reader->path_);
    }
    Decoder fdec(std::string_view(tail.value()).substr(tail.value().size() - kFooterSizeV2));
    std::uint32_t version = 0;
    TFR_RETURN_IF_ERROR(fdec.get_u64(&index_offset));
    TFR_RETURN_IF_ERROR(fdec.get_u64(&index_length));
    TFR_RETURN_IF_ERROR(fdec.get_u64(&meta_offset));
    TFR_RETURN_IF_ERROR(fdec.get_u64(&meta_length));
    TFR_RETURN_IF_ERROR(fdec.get_i64(&reader->max_ts_));
    TFR_RETURN_IF_ERROR(fdec.get_u32(&version));
    if (version != 2) {
      return Status::corruption("unsupported store file version " + std::to_string(version) +
                                ": " + reader->path_);
    }
    reader->format_version_ = 2;
  } else if (magic == kMagicV1) {
    Decoder fdec(std::string_view(tail.value()).substr(tail.value().size() - kFooterSizeV1));
    std::uint32_t v1_magic = 0;
    TFR_RETURN_IF_ERROR(fdec.get_u64(&index_offset));
    TFR_RETURN_IF_ERROR(fdec.get_u64(&index_length));
    TFR_RETURN_IF_ERROR(fdec.get_i64(&reader->max_ts_));
    TFR_RETURN_IF_ERROR(fdec.get_u32(&v1_magic));
    reader->format_version_ = 1;
  } else {
    return Status::corruption("bad store file magic: " + reader->path_);
  }

  auto index_data = dfs.read(reader->path_, index_offset, index_length);
  if (!index_data.is_ok()) return index_data.status();
  Decoder idec(index_data.value());
  std::uint32_t n = 0;
  TFR_RETURN_IF_ERROR(idec.get_u32(&n));
  reader->index_.resize(n);
  for (auto& e : reader->index_) {
    TFR_RETURN_IF_ERROR(idec.get_string(&e.first_row));
    TFR_RETURN_IF_ERROR(idec.get_u64(&e.offset));
    TFR_RETURN_IF_ERROR(idec.get_u64(&e.length));
  }

  if (reader->format_version_ == 2) {
    auto meta_data = dfs.read(reader->path_, meta_offset, meta_length);
    if (!meta_data.is_ok()) return meta_data.status();
    Decoder mdec(meta_data.value());
    std::uint32_t probes = 0;
    std::string bloom_bits;
    TFR_RETURN_IF_ERROR(mdec.get_string(&reader->first_row_));
    TFR_RETURN_IF_ERROR(mdec.get_string(&reader->last_row_));
    TFR_RETURN_IF_ERROR(mdec.get_u32(&probes));
    TFR_RETURN_IF_ERROR(mdec.get_string(&bloom_bits));
    reader->bloom_ = BloomFilter::from_parts(std::move(bloom_bits), static_cast<int>(probes));
    reader->has_key_range_ = !reader->index_.empty();
  }
  return reader;
}

bool StoreFileReader::range_overlaps(const std::string& start, const std::string& end) const {
  if (!has_key_range_ || !read_path_flags().range_pruning.load(std::memory_order_relaxed)) {
    return true;
  }
  if (!end.empty() && first_row_ >= end) return false;
  return last_row_ >= start;
}

bool StoreFileReader::may_contain_row(const std::string& row) const {
  const auto& flags = read_path_flags();
  if (has_key_range_ && flags.range_pruning.load(std::memory_order_relaxed) &&
      (row < first_row_ || row > last_row_)) {
    static Counter& range_skips = global_counter("kv.sf_range_skips");
    range_skips.add();
    return false;
  }
  if (flags.bloom_pruning.load(std::memory_order_relaxed) && !bloom_.empty() &&
      !bloom_.may_contain(row)) {
    static Counter& bloom_skips = global_counter("kv.sf_bloom_skips");
    bloom_skips.add();
    return false;
  }
  return true;
}

Result<BlockPtr> StoreFileReader::load_block(std::size_t idx) const {
  const auto& e = index_[idx];
  auto raw = dfs_->read(path_, e.offset, e.length);
  if (!raw.is_ok()) return raw.status();
  Decoder dec(raw.value());
  std::uint32_t n = 0;
  TFR_RETURN_IF_ERROR(dec.get_u32(&n));
  std::uint32_t stored_crc = 0;
  TFR_RETURN_IF_ERROR(dec.get_u32(&stored_crc));
  if (crc32c(std::string_view(raw.value()).substr(dec.position())) != stored_crc) {
    return Status::corruption("store-file block checksum mismatch in " + path_);
  }
  auto block = std::make_shared<CacheBlock>();
  block->cells.resize(n);
  for (auto& c : block->cells) {
    TFR_RETURN_IF_ERROR(decode_cell(dec, &c));
    block->byte_size += c.byte_size();
  }
  return BlockPtr(block);
}

Result<BlockPtr> StoreFileReader::cached_block(BlockCache& cache, std::size_t idx) const {
  return cache.get_or_load(path_ + "#" + std::to_string(idx),
                           [this, idx] { return load_block(idx); });
}

std::size_t StoreFileReader::block_for(const std::string& row) const {
  // Last index entry with first_row <= row.
  auto it = std::upper_bound(index_.begin(), index_.end(), row,
                             [](const std::string& r, const IndexEntry& e) {
                               return r < e.first_row;
                             });
  if (it == index_.begin()) return kNpos;
  return static_cast<std::size_t>(std::distance(index_.begin(), it) - 1);
}

Result<std::optional<Cell>> StoreFileReader::get(BlockCache& cache, const std::string& row,
                                                 const std::string& column,
                                                 Timestamp read_ts) const {
  if (index_.empty()) return std::optional<Cell>{};
  if (!may_contain_row(row)) return std::optional<Cell>{};  // pruned: no block fetch
  const auto idx = block_for(row);
  if (idx == kNpos) return std::optional<Cell>{};
  auto block = cached_block(cache, idx);
  if (!block.is_ok()) return block.status();
  const auto& cells = block.value()->cells;
  // Cells are ordered (row, column, ts desc); find the newest ts <= read_ts.
  auto it = std::lower_bound(cells.begin(), cells.end(), std::tie(row, column, read_ts),
                             [](const Cell& c, const auto& key) {
                               const auto& [krow, kcol, kts] = key;
                               if (c.row != krow) return c.row < krow;
                               if (c.column != kcol) return c.column < kcol;
                               return c.ts > kts;  // descending ts
                             });
  if (it == cells.end() || it->row != row || it->column != column) return std::optional<Cell>{};
  return std::optional<Cell>(*it);
}

// --- streaming iterator -------------------------------------------------------

/// Block-streaming iterator: holds one decoded block at a time and pulls
/// the next through the cache only when the current one is exhausted, so a
/// consumer that stops early never pays for the blocks it didn't reach.
class StoreFileIterator final : public CellIterator {
 public:
  StoreFileIterator(const StoreFileReader* file, BlockCache* cache, std::string end)
      : file_(file), cache_(cache), end_(std::move(end)) {}

  Status init(const std::string& start) {
    if (file_->index_.empty()) return Status::ok();
    std::size_t idx = file_->block_for(start);
    if (idx == kNpos) idx = 0;  // start precedes the file: begin at block 0
    block_idx_ = idx;
    TFR_RETURN_IF_ERROR(load_current());
    const auto& cells = block_->cells;
    const auto it = std::lower_bound(cells.begin(), cells.end(), start,
                                     [](const Cell& c, const std::string& s) {
                                       return c.row < s;
                                     });
    pos_ = static_cast<std::size_t>(std::distance(cells.begin(), it));
    if (pos_ >= cells.size()) return advance_block();  // start is past this block
    return check_end();
  }

  bool valid() const override { return valid_; }
  const Cell& cell() const override { return block_->cells[pos_]; }

  Status advance() override {
    ++pos_;
    if (pos_ >= block_->cells.size()) return advance_block();
    return check_end();
  }

 private:
  Status advance_block() {
    ++block_idx_;
    if (block_idx_ >= file_->index_.size()) {
      valid_ = false;
      return Status::ok();
    }
    // A block whose first_row is already past `end` cannot contribute
    // (cells are sorted); stop without decoding it.
    if (!end_.empty() && file_->index_[block_idx_].first_row >= end_) {
      valid_ = false;
      return Status::ok();
    }
    TFR_RETURN_IF_ERROR(load_current());
    pos_ = 0;
    return check_end();
  }

  Status check_end() {
    valid_ = end_.empty() || block_->cells[pos_].row < end_;
    return Status::ok();
  }

  Status load_current() {
    auto block = file_->cached_block(*cache_, block_idx_);
    if (!block.is_ok()) {
      valid_ = false;
      return block.status();
    }
    block_ = block.value();
    return Status::ok();
  }

  const StoreFileReader* file_;
  BlockCache* cache_;
  std::string end_;
  std::size_t block_idx_ = 0;
  BlockPtr block_;
  std::size_t pos_ = 0;
  bool valid_ = false;
};

Result<std::unique_ptr<CellIterator>> StoreFileReader::iterate(BlockCache& cache,
                                                               const std::string& start,
                                                               const std::string& end) const {
  auto it = std::make_unique<StoreFileIterator>(this, &cache, end);
  TFR_RETURN_IF_ERROR(it->init(start));
  return std::unique_ptr<CellIterator>(std::move(it));
}

Result<std::vector<Cell>> StoreFileReader::scan(BlockCache& cache, const std::string& start,
                                                const std::string& end,
                                                Timestamp read_ts) const {
  std::vector<Cell> out;
  if (index_.empty()) return out;
  std::size_t idx = block_for(start);
  if (idx == kNpos) idx = 0;
  for (; idx < index_.size(); ++idx) {
    if (!end.empty() && index_[idx].first_row >= end) break;
    auto block = cached_block(cache, idx);
    if (!block.is_ok()) return block.status();
    const auto& cells = block.value()->cells;
    for (std::size_t i = 0; i < cells.size();) {
      const Cell& c = cells[i];
      if (c.row < start || (!end.empty() && c.row >= end)) {
        ++i;
        continue;
      }
      // Newest visible version of this (row, column); skip older ones.
      bool taken = false;
      const std::string& row = c.row;
      const std::string& col = c.column;
      while (i < cells.size() && cells[i].row == row && cells[i].column == col) {
        if (!taken && cells[i].ts <= read_ts) {
          out.push_back(cells[i]);
          taken = true;
        }
        ++i;
      }
    }
  }
  return out;
}

Result<std::vector<Cell>> StoreFileReader::all_cells(BlockCache& cache) const {
  std::vector<Cell> out;
  for (std::size_t idx = 0; idx < index_.size(); ++idx) {
    auto block = cached_block(cache, idx);
    if (!block.is_ok()) return block.status();
    out.insert(out.end(), block.value()->cells.begin(), block.value()->cells.end());
  }
  return out;
}

}  // namespace tfr
