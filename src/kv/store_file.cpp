#include "src/kv/store_file.h"

#include <algorithm>

#include "src/common/crc32.h"

namespace tfr {

namespace {
constexpr std::uint32_t kMagic = 0x7f5bf11e;
constexpr std::size_t kFooterSize = 8 + 8 + 8 + 4;
}  // namespace

StoreFileWriter::StoreFileWriter(std::size_t target_block_bytes)
    : target_block_bytes_(target_block_bytes) {}

void StoreFileWriter::add(const Cell& cell) {
  // Rotate only between rows: a (row, column) version chain must never
  // straddle a block boundary.
  if (current_cells_ > 0 && current_block_.size() >= target_block_bytes_ &&
      cell.row != current_last_row_) {
    rotate_block();
  }
  if (current_cells_ == 0) current_first_row_ = cell.row;
  current_last_row_ = cell.row;
  Encoder enc(&current_block_);
  encode_cell(enc, cell);
  ++current_cells_;
  ++cell_count_;
  if (cell.ts > max_ts_) max_ts_ = cell.ts;
}

void StoreFileWriter::rotate_block() {
  if (current_cells_ == 0) return;
  IndexEntry entry;
  entry.first_row = current_first_row_;
  entry.offset = file_data_.size();
  std::string framed;
  Encoder enc(&framed);
  enc.put_u32(current_cells_);
  enc.put_u32(crc32c(current_block_));
  framed += current_block_;
  entry.length = framed.size();
  file_data_ += framed;
  index_.push_back(std::move(entry));
  current_block_.clear();
  current_cells_ = 0;
}

Status StoreFileWriter::finish(Dfs& dfs, const std::string& path) {
  rotate_block();
  const std::uint64_t index_offset = file_data_.size();
  std::string index_data;
  Encoder ienc(&index_data);
  ienc.put_u32(static_cast<std::uint32_t>(index_.size()));
  for (const auto& e : index_) {
    ienc.put_string(e.first_row);
    ienc.put_u64(e.offset);
    ienc.put_u64(e.length);
  }
  file_data_ += index_data;
  Encoder fenc(&file_data_);
  fenc.put_u64(index_offset);
  fenc.put_u64(index_data.size());
  fenc.put_i64(max_ts_);
  fenc.put_u32(kMagic);
  return dfs.write_file(path, file_data_);
}

Result<std::shared_ptr<StoreFileReader>> StoreFileReader::open(Dfs& dfs, std::string path) {
  auto size = dfs.durable_size(path);
  if (!size.is_ok()) return size.status();
  if (size.value() < kFooterSize) return Status::corruption("store file too small: " + path);

  auto footer = dfs.read(path, size.value() - kFooterSize, kFooterSize);
  if (!footer.is_ok()) return footer.status();
  Decoder fdec(footer.value());
  std::uint64_t index_offset = 0, index_length = 0;
  Timestamp max_ts = 0;
  std::uint32_t magic = 0;
  TFR_RETURN_IF_ERROR(fdec.get_u64(&index_offset));
  TFR_RETURN_IF_ERROR(fdec.get_u64(&index_length));
  TFR_RETURN_IF_ERROR(fdec.get_i64(&max_ts));
  TFR_RETURN_IF_ERROR(fdec.get_u32(&magic));
  if (magic != kMagic) return Status::corruption("bad store file magic: " + path);

  auto index_data = dfs.read(path, index_offset, index_length);
  if (!index_data.is_ok()) return index_data.status();
  Decoder idec(index_data.value());
  std::uint32_t n = 0;
  TFR_RETURN_IF_ERROR(idec.get_u32(&n));

  auto reader = std::shared_ptr<StoreFileReader>(new StoreFileReader(dfs, std::move(path)));
  reader->max_ts_ = max_ts;
  reader->index_.resize(n);
  for (auto& e : reader->index_) {
    TFR_RETURN_IF_ERROR(idec.get_string(&e.first_row));
    TFR_RETURN_IF_ERROR(idec.get_u64(&e.offset));
    TFR_RETURN_IF_ERROR(idec.get_u64(&e.length));
  }
  return reader;
}

Result<BlockPtr> StoreFileReader::load_block(std::size_t idx) const {
  const auto& e = index_[idx];
  auto raw = dfs_->read(path_, e.offset, e.length);
  if (!raw.is_ok()) return raw.status();
  Decoder dec(raw.value());
  std::uint32_t n = 0;
  TFR_RETURN_IF_ERROR(dec.get_u32(&n));
  std::uint32_t stored_crc = 0;
  TFR_RETURN_IF_ERROR(dec.get_u32(&stored_crc));
  if (crc32c(std::string_view(raw.value()).substr(dec.position())) != stored_crc) {
    return Status::corruption("store-file block checksum mismatch in " + path_);
  }
  auto block = std::make_shared<CacheBlock>();
  block->cells.resize(n);
  for (auto& c : block->cells) {
    TFR_RETURN_IF_ERROR(decode_cell(dec, &c));
    block->byte_size += c.byte_size();
  }
  return BlockPtr(block);
}

Result<BlockPtr> StoreFileReader::cached_block(BlockCache& cache, std::size_t idx) const {
  return cache.get_or_load(path_ + "#" + std::to_string(idx),
                           [this, idx] { return load_block(idx); });
}

std::size_t StoreFileReader::block_for(const std::string& row) const {
  // Last index entry with first_row <= row.
  auto it = std::upper_bound(index_.begin(), index_.end(), row,
                             [](const std::string& r, const IndexEntry& e) {
                               return r < e.first_row;
                             });
  if (it == index_.begin()) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(std::distance(index_.begin(), it) - 1);
}

Result<std::optional<Cell>> StoreFileReader::get(BlockCache& cache, const std::string& row,
                                                 const std::string& column,
                                                 Timestamp read_ts) const {
  if (index_.empty()) return std::optional<Cell>{};
  const auto idx = block_for(row);
  if (idx == static_cast<std::size_t>(-1)) return std::optional<Cell>{};
  auto block = cached_block(cache, idx);
  if (!block.is_ok()) return block.status();
  const auto& cells = block.value()->cells;
  // Cells are ordered (row, column, ts desc); find the newest ts <= read_ts.
  auto it = std::lower_bound(cells.begin(), cells.end(), std::tie(row, column, read_ts),
                             [](const Cell& c, const auto& key) {
                               const auto& [krow, kcol, kts] = key;
                               if (c.row != krow) return c.row < krow;
                               if (c.column != kcol) return c.column < kcol;
                               return c.ts > kts;  // descending ts
                             });
  if (it == cells.end() || it->row != row || it->column != column) return std::optional<Cell>{};
  return std::optional<Cell>(*it);
}

Result<std::vector<Cell>> StoreFileReader::scan(BlockCache& cache, const std::string& start,
                                                const std::string& end,
                                                Timestamp read_ts) const {
  std::vector<Cell> out;
  if (index_.empty()) return out;
  std::size_t idx = block_for(start);
  if (idx == static_cast<std::size_t>(-1)) idx = 0;
  for (; idx < index_.size(); ++idx) {
    if (!end.empty() && index_[idx].first_row >= end) break;
    auto block = cached_block(cache, idx);
    if (!block.is_ok()) return block.status();
    const auto& cells = block.value()->cells;
    for (std::size_t i = 0; i < cells.size();) {
      const Cell& c = cells[i];
      if (c.row < start || (!end.empty() && c.row >= end)) {
        ++i;
        continue;
      }
      // Newest visible version of this (row, column); skip older ones.
      bool taken = false;
      const std::string& row = c.row;
      const std::string& col = c.column;
      while (i < cells.size() && cells[i].row == row && cells[i].column == col) {
        if (!taken && cells[i].ts <= read_ts) {
          out.push_back(cells[i]);
          taken = true;
        }
        ++i;
      }
    }
  }
  return out;
}

Result<std::vector<Cell>> StoreFileReader::all_cells(BlockCache& cache) const {
  std::vector<Cell> out;
  for (std::size_t idx = 0; idx < index_.size(); ++idx) {
    auto block = cached_block(cache, idx);
    if (!block.is_ok()) return block.status();
    out.insert(out.end(), block.value()->cells.begin(), block.value()->cells.end());
  }
  return out;
}

}  // namespace tfr
