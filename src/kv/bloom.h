// Bloom filter over store-file row keys (HBase ROW blooms): a point get
// consults a file only if the filter says the row may be present, turning
// the "probe every store file" read path into "probe the one file that has
// the row" for the common case. False positives cost one wasted block
// fetch; false negatives are impossible.
//
// The filter is built once at store-file write time from the distinct row
// hashes and serialized into the file's meta section (format v2). Probing
// uses double hashing (Kirsch–Mitzenmacher): k probe positions derived from
// one 64-bit hash, so the per-probe cost is a multiply-add and a bit test.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tfr {

/// 64-bit FNV-1a — the one hash both writer and reader must agree on.
std::uint64_t bloom_hash(std::string_view key);

class BloomFilter {
 public:
  /// Empty filter: may_contain() is true for everything (no pruning).
  BloomFilter() = default;

  /// Build from pre-hashed keys at `bits_per_key` bits each (10 bits/key
  /// ~= 1% false-positive rate at the k chosen here).
  static BloomFilter build(const std::vector<std::uint64_t>& hashes, int bits_per_key = 10);

  bool may_contain(std::uint64_t hash) const;
  bool may_contain(std::string_view key) const { return may_contain(bloom_hash(key)); }

  /// True when the filter carries no bits (v1 files, empty files): probes
  /// always pass and callers should not count skips against it.
  bool empty() const { return bits_.empty(); }

  std::size_t bit_count() const { return bits_.size() * 8; }
  int probes() const { return probes_; }

  /// Wire form: the raw bit array (probes travel separately so the codec
  /// stays a plain length-prefixed string).
  const std::string& bits() const { return bits_; }
  static BloomFilter from_parts(std::string bits, int probes);

 private:
  std::string bits_;   // bit array, little-endian bit order within each byte
  int probes_ = 0;     // k hash probes per key
};

}  // namespace tfr
