#include "src/kv/wal.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "src/common/backoff.h"
#include "src/common/codec.h"
#include "src/common/crc32.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace tfr {

std::string WalRecord::encode() const {
  std::string payload;
  Encoder enc(&payload);
  enc.put_string(region);
  enc.put_u64(seq);
  enc.put_u64(txn_id);
  enc.put_string(client_id);
  enc.put_i64(commit_ts);
  enc.put_u64(epoch);
  enc.put_u32(static_cast<std::uint32_t>(cells.size()));
  for (const auto& c : cells) encode_cell(enc, c);
  std::string framed;
  Encoder fenc(&framed);
  fenc.put_string(payload);       // length-prefixed frame...
  fenc.put_u32(crc32c(payload));  // ...with an integrity checksum
  return framed;
}

Result<WalRecord> WalRecord::decode(std::string_view data) {
  Decoder dec(data);
  WalRecord r;
  TFR_RETURN_IF_ERROR(dec.get_string(&r.region));
  TFR_RETURN_IF_ERROR(dec.get_u64(&r.seq));
  TFR_RETURN_IF_ERROR(dec.get_u64(&r.txn_id));
  TFR_RETURN_IF_ERROR(dec.get_string(&r.client_id));
  TFR_RETURN_IF_ERROR(dec.get_i64(&r.commit_ts));
  TFR_RETURN_IF_ERROR(dec.get_u64(&r.epoch));
  std::uint32_t n = 0;
  TFR_RETURN_IF_ERROR(dec.get_u32(&n));
  r.cells.resize(n);
  for (auto& c : r.cells) TFR_RETURN_IF_ERROR(decode_cell(dec, &c));
  return r;
}

std::string Wal::segment_path(const std::string& base, std::uint64_t index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), ".%08llu", static_cast<unsigned long long>(index));
  return base + buf;
}

Result<std::unique_ptr<Wal>> Wal::create(Dfs& dfs, std::string base_path) {
  auto wal = std::unique_ptr<Wal>(new Wal(dfs, std::move(base_path)));
  MutexLock lock(wal->mutex_);
  TFR_RETURN_IF_ERROR(wal->open_segment_locked());
  return wal;
}

Status Wal::open_segment_locked() {
  Segment seg;
  seg.path = segment_path(base_path_, next_segment_index_++);
  TFR_RETURN_IF_ERROR(dfs_->create(seg.path));
  segments_.push_back(std::move(seg));
  return Status::ok();
}

Result<std::uint64_t> Wal::append(WalRecord record) {
  MutexLock lock(mutex_);
  if (epochs_ != nullptr) {
    Status fence = epochs_->validate(record.region, record.epoch);
    if (!fence.is_ok()) {
      static Counter& rejects = global_counter("kv.epoch_rejects");
      rejects.add();
      TFR_LOG(WARN, "wal") << base_path_ << " rejected stale-epoch append: " << fence;
      return fence;
    }
  }
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_acq_rel);
  record.seq = seq;
  const std::string framed = record.encode();
  Segment& seg = segments_.back();
  Status appended = dfs_->append(seg.path, framed);
  if (appended.is_wrong_epoch()) {
    // The DFS-level writer fence (master fenced our directory before the
    // split) caught what the registry check raced past.
    static Counter& rejects = global_counter("kv.epoch_rejects");
    rejects.add();
  }
  TFR_RETURN_IF_ERROR(appended);
  if (seg.first_seq == 0) seg.first_seq = seq;
  seg.last_seq = std::max(seg.last_seq, seq);
  seg.bytes += framed.size();
  return seq;
}

Status Wal::sync() {
  TFR_BLOCKING_POINT("wal.sync");
  RankedMutexLock sync_lock(sync_mutex_);
  // Capture the frontier and the open segment before syncing: everything
  // appended before this point is covered by the DFS sync below. The nested
  // acquisition passes sync_lock's token, which static_asserts the
  // kWal < kWalSync rank edge at compile time.
  std::string open_path;
  std::uint64_t frontier = 0;
  {
    RankedMutexLock lock(mutex_, sync_lock.token());
    open_path = segments_.back().path;
    frontier = next_seq_.load(std::memory_order_acquire) - 1;
  }
  if (frontier <= synced_seq_.load(std::memory_order_acquire)) return Status::ok();
  // tfr-lint: blocking-ok(kWalSync exists precisely to serialize this durable
  // write; holding it across dfs_->sync is the design, may_block=true)
  auto synced = dfs_->sync(open_path);
  if (!synced.is_ok()) return synced.status();
  std::uint64_t prev = synced_seq_.load(std::memory_order_relaxed);
  while (prev < frontier &&
         !synced_seq_.compare_exchange_weak(prev, frontier, std::memory_order_release)) {
  }
  sync_count_.fetch_add(1, std::memory_order_relaxed);
  return Status::ok();
}

Status Wal::roll() {
  // Make the closing segment fully durable first.
  TFR_RETURN_IF_ERROR(sync());
  MutexLock lock(mutex_);
  TFR_RETURN_IF_ERROR(dfs_->close(segments_.back().path));
  TFR_RETURN_IF_ERROR(open_segment_locked());
  ++rolls_;
  TFR_LOG(DEBUG, "wal") << base_path_ << " rolled to segment " << segments_.back().path;
  return Status::ok();
}

std::size_t Wal::truncate_obsolete(std::uint64_t min_needed_seq) {
  MutexLock lock(mutex_);
  std::size_t removed = 0;
  // The open segment (back) is never removed; closed segments go once every
  // record in them precedes the oldest still-needed sequence number.
  while (segments_.size() > 1) {
    const Segment& seg = segments_.front();
    const bool empty = seg.first_seq == 0;
    if (!empty && seg.last_seq >= min_needed_seq) break;
    Status st = dfs_->remove(seg.path);
    if (st.is_wrong_epoch()) {
      // The master fenced this WAL: we are being recovered. Stop reclaiming
      // — the split must see every remaining segment — and keep the local
      // bookkeeping so a repeated call stays a no-op.
      static Counter& fenced = global_counter("kv.wal_truncate_fenced");
      fenced.add();
      TFR_LOG(WARN, "wal") << base_path_ << " truncation fenced at " << seg.path;
      break;
    }
    segments_.erase(segments_.begin());
    ++removed;
  }
  truncated_ += removed;
  if (removed > 0) {
    TFR_LOG(DEBUG, "wal") << base_path_ << " reclaimed " << removed
                          << " segments below seq " << min_needed_seq;
  }
  return removed;
}

std::uint64_t Wal::current_segment_bytes() const {
  MutexLock lock(mutex_);
  return segments_.back().bytes;
}

void Wal::crash() {
  MutexLock lock(mutex_);
  // Closed segments were synced by roll(); only the open one has a volatile
  // tail.
  dfs_->writer_crashed(segments_.back().path);
}

WalStats Wal::stats() const {
  WalStats s;
  s.appended_records = appended_seq();
  s.synced_records = synced_seq();
  s.syncs = sync_count_.load(std::memory_order_relaxed);
  MutexLock lock(mutex_);
  s.rolls = rolls_;
  s.segments_truncated = truncated_;
  s.live_segments = segments_.size();
  return s;
}

namespace {

/// Decode every whole frame of one durable segment. A torn final frame
/// (sync raced a crash) truncates; a checksum mismatch is corruption.
Result<std::vector<WalRecord>> read_segment(Dfs& dfs, const std::string& path) {
  auto data = dfs.read_all(path);
  if (!data.is_ok()) return data.status();
  std::vector<WalRecord> out;
  Decoder dec(data.value());
  while (!dec.done()) {
    std::string payload;
    const auto before = dec.position();
    std::uint32_t stored_crc = 0;
    Status s = dec.get_string(&payload);
    if (s.is_ok()) s = dec.get_u32(&stored_crc);
    if (!s.is_ok()) {
      // A torn final frame can only occur if a sync raced a crash; the
      // durable prefix up to the last whole record is still valid.
      TFR_LOG(WARN, "wal") << "torn WAL tail in " << path << " at offset " << before;
      break;
    }
    if (crc32c(payload) != stored_crc) {
      return Status::corruption("WAL record checksum mismatch in " + path);
    }
    auto rec = WalRecord::decode(payload);
    if (!rec.is_ok()) return rec.status();
    out.push_back(std::move(rec).value());
  }
  return out;
}

}  // namespace

Result<std::vector<WalRecord>> Wal::read_records(Dfs& dfs, const std::string& base_path) {
  // Live segments are whatever still exists under the base path, in index
  // (and therefore sequence) order.
  auto paths = dfs.list(base_path + ".");
  if (paths.empty()) return Status::not_found("no WAL segments under " + base_path);
  std::sort(paths.begin(), paths.end());
  std::vector<WalRecord> out;
  for (const auto& path : paths) {
    auto records = read_segment(dfs, path);
    if (!records.is_ok()) return records.status();
    for (auto& r : records.value()) out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(),
            [](const WalRecord& a, const WalRecord& b) { return a.seq < b.seq; });
  return out;
}

Result<std::map<std::string, std::vector<WalRecord>>> Wal::split(Dfs& dfs,
                                                                 const std::string& base_path) {
  return split(dfs, base_path, SplitOptions());
}

Result<std::map<std::string, std::vector<WalRecord>>> Wal::split(Dfs& dfs,
                                                                 const std::string& base_path,
                                                                 const SplitOptions& options) {
  auto paths = dfs.list(base_path + ".");
  if (paths.empty()) return Status::not_found("no WAL segments under " + base_path);
  std::sort(paths.begin(), paths.end());

  // Fan out per source segment. Workers claim segments off a shared cursor;
  // each transient read failure is retried with jittered backoff a bounded
  // number of times so one flaky replica does not fail the split outright.
  std::vector<Result<std::vector<WalRecord>>> per_segment(
      paths.size(), Result<std::vector<WalRecord>>(Status::internal("segment not read")));
  std::atomic<std::size_t> cursor{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= paths.size()) return;
      Backoff backoff(options.backoff_base, options.backoff_cap);
      auto records = read_segment(dfs, paths[i]);
      while (!records.is_ok() && records.status().is_unavailable() &&
             backoff.attempts() + 1 < options.attempts_per_segment) {
        backoff.sleep();
        records = read_segment(dfs, paths[i]);
      }
      per_segment[i] = std::move(records);
    }
  };
  const int workers =
      std::max(1, std::min<int>(options.workers, static_cast<int>(paths.size())));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  // All-or-nothing: a split that dropped one segment would assign regions
  // from an edit map that silently lost durable edits.
  std::vector<WalRecord> merged;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (!per_segment[i].is_ok()) {
      TFR_LOG(WARN, "wal") << "split of " << base_path << " failed at " << paths[i] << ": "
                           << per_segment[i].status();
      return per_segment[i].status();
    }
    for (auto& r : per_segment[i].value()) merged.push_back(std::move(r));
  }
  std::sort(merged.begin(), merged.end(),
            [](const WalRecord& a, const WalRecord& b) { return a.seq < b.seq; });
  std::map<std::string, std::vector<WalRecord>> grouped;
  for (auto& r : merged) {
    grouped[r.region].push_back(std::move(r));
  }
  return grouped;
}

}  // namespace tfr
