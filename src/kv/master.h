// Master — coordinates region assignment across region servers (§2.1) and
// drives the store's internal recovery when a server dies:
//
//   1. The coordination service reports the server's session expiry (HBase
//      uses its own heartbeats; ours flow through minizk as the paper's
//      implementation does).
//   2. The master notifies the recovery-middleware hook (`on_server_failure`)
//      — the hook the paper added to the HBase master (§3.2).
//   3. It splits the failed server's WAL by region and reassigns each region
//      to a live server, passing along that region's recovered edits. The
//      receiving server replays them, then runs the region gate (recovery
//      manager replay) before declaring the region online.
//
// Regions are recovered independently (Algorithm 4's loop, fanned out over
// a small worker pool), and distinct server failures are handled on their
// own handler threads so a cascade — a second server dying while the first
// recovery is still replaying — cannot park behind the first failure's
// in-flight gate. Recovery does not interrupt processing on the surviving
// servers.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/epoch.h"

#include "src/common/annotations.h"
#include "src/common/queue.h"
#include "src/coord/coord.h"
#include "src/dfs/dfs.h"
#include "src/kv/region_server.h"

namespace tfr {

/// Extension points the recovery middleware installs on the master.
class MasterHooks {
 public:
  virtual ~MasterHooks() = default;

  /// A server was declared dead, before any of its regions are reassigned.
  /// `regions` lists the affected regions R(s).
  virtual void on_server_failure(const std::string& server_id,
                                 const std::vector<std::string>& regions) = 0;

  /// `parent` was split into `daughters` under `new_epoch`. Called after
  /// the transition is committed (assignment + durable split record) but
  /// BEFORE the daughters are opened, so pending transactional-recovery
  /// state can migrate to the daughters first — floors before gates: each
  /// daughter must inherit the parent's replay floor (TP-inheritance, §3.2
  /// extended to splits) before its replay gate can possibly fire.
  virtual void on_region_split(const std::string& parent,
                               const std::vector<std::string>& daughters,
                               std::uint64_t new_epoch) {
    (void)parent;
    (void)daughters;
    (void)new_epoch;
  }

  /// `parents` were merged into `merged` under `new_epoch`; same timing
  /// contract as on_region_split (before the merged region opens). Purely
  /// defensive — the master refuses to merge a recovering region — but a
  /// failure can land between that check and the commit, so the middleware
  /// still min-inherits any pending floor here.
  virtual void on_regions_merged(const std::string& merged,
                                 const std::vector<std::string>& parents,
                                 std::uint64_t new_epoch) {
    (void)merged;
    (void)parents;
    (void)new_epoch;
  }

  /// True while `region` has transactional recovery pending (its replay
  /// gate has not finished). The master consults this before a merge:
  /// merging a recovering region would fold a pinned replay floor into a
  /// region whose gate may already have passed.
  virtual bool is_region_recovering(const std::string& region) {
    (void)region;
    return false;
  }
};

struct RegionLocation {
  std::string region_name;
  RegionDescriptor descriptor;
  std::string server_id;
  /// Ownership epoch of the current assignment (the fencing token). Bumped
  /// by the master before every reassignment or recovery replay.
  std::uint64_t epoch = 1;
};

/// Coord-KV prefix under which the master durably records region epochs.
inline constexpr const char* kEpochPrefix = "/tfr/epoch/";

/// Durable topology-transition records (value = the transition's new epoch).
/// Region names never contain '|', so it separates the participants:
///   split: /tfr/topology/split/<parent>|<left>|<right>   (parent retired)
///   merge: /tfr/topology/merge/<merged>|<left>|<right>   (both parents retired)
/// A record lives until the janitor has reclaimed every retired parent dir
/// (i.e. no daughter store-file reference marker points into it any more).
inline constexpr const char* kSplitRecordPrefix = "/tfr/topology/split/";
inline constexpr const char* kMergeRecordPrefix = "/tfr/topology/merge/";

/// Tuning for the master's balancer loop (§9). All triggers are opt-in:
/// a zero threshold disables that trigger, interval == 0 disables the loop.
struct BalancerConfig {
  /// Tick period of the background loop; 0 = no background loop (ticks can
  /// still be driven manually via Master::balance_once).
  Micros interval = 0;
  /// Split a region whose store grows past this many bytes (0 = off).
  std::uint64_t split_store_bytes = 0;
  /// Split a region serving more than this many ops per tick (0 = off).
  std::uint64_t split_traffic_ops = 0;
  /// Merge adjacent regions BOTH colder than this many ops per tick (0 =
  /// merges off)...
  std::uint64_t merge_traffic_ops = 0;
  /// ...and whose combined store size stays under this many bytes, so a
  /// merge cannot immediately re-trigger a size split (hysteresis).
  std::uint64_t merge_store_bytes = 0;
  /// Move a region off the hottest server when its per-tick load exceeds
  /// the coldest server's by this factor (0 = traffic moves off).
  double move_load_ratio = 0.0;
  /// Ignore traffic ratios below this absolute per-tick load (noise floor).
  std::uint64_t move_min_ops = 64;
  /// Upper bound on topology transitions per tick (keeps a hot tick from
  /// churning the whole keyspace at once).
  int max_actions_per_tick = 4;
  /// Also even out raw region counts (the scale-out balancer), one move
  /// per tick.
  bool balance_region_counts = true;
};

class Master {
 public:
  Master(Dfs& dfs, Coord& coord);
  ~Master();

  Master(const Master&) = delete;
  Master& operator=(const Master&) = delete;

  /// Subscribe to server-session events and start the recovery worker.
  void start();
  void stop();

  /// Register a server's in-process stub (our stand-in for its RPC address).
  void add_server(RegionServer* server);

  /// Create a table pre-split at `split_keys` (regions: [,k0), [k0,k1), ...)
  /// and assign its regions round-robin across live servers.
  Status create_table(const std::string& table, const std::vector<std::string>& split_keys);

  /// Where does `row` of `table` live right now?
  Result<RegionLocation> locate(const std::string& table, const std::string& row) const;

  /// All regions of a table with their current assignment.
  std::vector<RegionLocation> table_regions(const std::string& table) const;

  /// Current location of a region by name.
  Result<RegionLocation> region_by_name(const std::string& region_name) const;

  /// The stub for a server id; nullptr when unknown.
  RegionServer* server_stub(const std::string& server_id) const;

  /// Split a region in place: server-side half (fence, flush, choose key,
  /// write the daughters' store-file reference markers), then the committed
  /// transition — epoch bump, assignment swap, durable split record,
  /// floor-inheritance hook — and finally the daughter opens (each runs the
  /// region gate under the new epoch). If a failure recovery re-fences the
  /// parent while the server-side half runs, the transition aborts and that
  /// recovery keeps ownership (it reopens the parent from its untouched
  /// dir).
  Status split_region(const std::string& region_name);

  /// Merge two adjacent regions of a table (left.end_key == right.start_key)
  /// into one. Refused while either region has transactional recovery
  /// pending (the hook's is_region_recovering). Co-locates `right` onto
  /// `left`'s host first, then runs the same fenced transition as a split.
  Status merge_regions(const std::string& left_region, const std::string& right_region);

  /// Start/stop the balancer loop (§9). enable replaces any previous
  /// config; with interval == 0 it installs the config for manual
  /// balance_once ticks without a background thread. Not thread-safe
  /// against itself — call from the cluster control path only.
  void enable_balancer(const BalancerConfig& config);
  void disable_balancer();

  /// One synchronous balancer tick: split/merge/move triggers, then the
  /// topology janitor (reclaims retired parent dirs no store-file reference
  /// marker points into). Serialized by the balancer lock; safe to call
  /// concurrently with the background loop.
  void balance_once();

  /// Move a region to `target_server` (flush + close at the source, open
  /// from store files at the target).
  Status move_region(const std::string& region_name, const std::string& target_server);

  /// Even out the region count across live servers (used after scale-out).
  /// Returns the number of regions moved.
  Result<int> rebalance();

  std::vector<std::string> live_servers() const;

  /// Attach the cluster's epoch registry: every epoch bump is then mirrored
  /// into it, arming the storage-side fencing checks. Install before
  /// traffic starts, as the Cluster does.
  void set_epoch_registry(EpochRegistry* epochs) { epochs_ = epochs; }

  /// Current ownership epoch of a region (0 if unknown).
  std::uint64_t region_epoch(const std::string& region_name) const;

  /// Deliver a server-failure report, as the coordination listener would.
  /// Exposed so tests can exercise duplicate failure deliveries:
  /// handle_server_down is idempotent per server incarnation — a server
  /// re-reported while (or after) its recovery is in flight does not start
  /// a second WAL split.
  void report_server_down(const std::string& server_id, bool crashed);

  /// Install (or clear, with nullptr) the recovery-middleware hooks. Blocks
  /// until no hook invocation is in flight, so after it returns the previous
  /// hooks object can be safely destroyed (the RM restart path swaps it).
  void set_hooks(MasterHooks* hooks);

  /// Block until no failure recovery is in flight (test/bench helper).
  void wait_for_idle() const;

 private:
  void on_session_event(const SessionInfo& info, bool expired);
  void recovery_worker();
  void handle_server_down(const std::string& server_id, bool crashed);
  void janitor_sweep() TFR_REQUIRES(balancer_mutex_);
  std::string pick_live_server_locked(std::size_t salt) const TFR_REQUIRES(mutex_);
  /// Re-flush one region's split-WAL edits through the data path (routed by
  /// row, idempotent recovery replays) when its reassignment was superseded
  /// by a later failure — see the call site for why the edits may be the
  /// only durable copy. Returns false if any record could not be acked by a
  /// live owner within the bounded retry budget.
  bool replay_superseded_edits(const std::string& table, const std::vector<WalRecord>& records);
  /// Advance a region's epoch by one: assignment map + registry + durable
  /// coord-KV record. Returns the new epoch.
  std::uint64_t bump_epoch_locked(const std::string& region_name) TFR_REQUIRES(mutex_);

  Dfs* dfs_;
  Coord* coord_;
  EpochRegistry* epochs_ = nullptr;

  mutable RankedMutex<LockRank::kMaster> mutex_{"master"};
  std::map<std::string, RegionServer*> servers_ TFR_GUARDED_BY(mutex_);  // all ever registered
  std::map<std::string, bool> server_alive_ TFR_GUARDED_BY(mutex_);
  std::map<std::string, RegionLocation> assignment_ TFR_GUARDED_BY(mutex_);  // region -> location
  std::map<std::string, std::string> server_wal_paths_ TFR_GUARDED_BY(mutex_);
  /// Servers whose failure handling has started (and, once done, completed)
  /// for the current incarnation; cleared when the id re-registers. Makes
  /// handle_server_down idempotent under duplicate failure deliveries.
  std::set<std::string> downs_handled_ TFR_GUARDED_BY(mutex_);
  MasterHooks* hooks_ TFR_GUARDED_BY(mutex_) = nullptr;
  bool hooks_ever_set_ TFR_GUARDED_BY(mutex_) = false;  // a recovery middleware exists
  bool stopping_ TFR_GUARDED_BY(mutex_) = false;
  int hook_calls_in_flight_ TFR_GUARDED_BY(mutex_) = 0;
  int in_flight_recoveries_ TFR_GUARDED_BY(mutex_) = 0;
  mutable CondVar idle_cv_;

  BlockingQueue<std::pair<std::string, bool>> failures_;   // (server, crashed?)
  std::thread worker_;
  int listener_id_ = 0;

  /// Balancer state. The tick lock serializes whole topology transactions
  /// (it is held across split/merge/move RPCs including gated daughter
  /// opens, hence its high may_block rank); the traffic maps difference
  /// successive cumulative reports into per-tick rates.
  mutable RankedMutex<LockRank::kBalancer> balancer_mutex_{"balancer"};
  BalancerConfig balancer_config_ TFR_GUARDED_BY(balancer_mutex_);
  std::map<std::string, std::uint64_t> balancer_last_traffic_ TFR_GUARDED_BY(balancer_mutex_);
  std::map<std::string, std::int64_t> balancer_last_server_load_ TFR_GUARDED_BY(balancer_mutex_);
  std::unique_ptr<PeriodicTask> balancer_task_;
};

}  // namespace tfr
