// Master — coordinates region assignment across region servers (§2.1) and
// drives the store's internal recovery when a server dies:
//
//   1. The coordination service reports the server's session expiry (HBase
//      uses its own heartbeats; ours flow through minizk as the paper's
//      implementation does).
//   2. The master notifies the recovery-middleware hook (`on_server_failure`)
//      — the hook the paper added to the HBase master (§3.2).
//   3. It splits the failed server's WAL by region and reassigns each region
//      to a live server, passing along that region's recovered edits. The
//      receiving server replays them, then runs the region gate (recovery
//      manager replay) before declaring the region online.
//
// Regions are recovered independently (Algorithm 4's loop, fanned out over
// a small worker pool), and distinct server failures are handled on their
// own handler threads so a cascade — a second server dying while the first
// recovery is still replaying — cannot park behind the first failure's
// in-flight gate. Recovery does not interrupt processing on the surviving
// servers.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/epoch.h"

#include "src/common/annotations.h"
#include "src/common/queue.h"
#include "src/coord/coord.h"
#include "src/dfs/dfs.h"
#include "src/kv/region_server.h"

namespace tfr {

/// Extension points the recovery middleware installs on the master.
class MasterHooks {
 public:
  virtual ~MasterHooks() = default;

  /// A server was declared dead, before any of its regions are reassigned.
  /// `regions` lists the affected regions R(s).
  virtual void on_server_failure(const std::string& server_id,
                                 const std::vector<std::string>& regions) = 0;
};

struct RegionLocation {
  std::string region_name;
  RegionDescriptor descriptor;
  std::string server_id;
  /// Ownership epoch of the current assignment (the fencing token). Bumped
  /// by the master before every reassignment or recovery replay.
  std::uint64_t epoch = 1;
};

/// Coord-KV prefix under which the master durably records region epochs.
inline constexpr const char* kEpochPrefix = "/tfr/epoch/";

class Master {
 public:
  Master(Dfs& dfs, Coord& coord);
  ~Master();

  Master(const Master&) = delete;
  Master& operator=(const Master&) = delete;

  /// Subscribe to server-session events and start the recovery worker.
  void start();
  void stop();

  /// Register a server's in-process stub (our stand-in for its RPC address).
  void add_server(RegionServer* server);

  /// Create a table pre-split at `split_keys` (regions: [,k0), [k0,k1), ...)
  /// and assign its regions round-robin across live servers.
  Status create_table(const std::string& table, const std::vector<std::string>& split_keys);

  /// Where does `row` of `table` live right now?
  Result<RegionLocation> locate(const std::string& table, const std::string& row) const;

  /// All regions of a table with their current assignment.
  std::vector<RegionLocation> table_regions(const std::string& table) const;

  /// Current location of a region by name.
  Result<RegionLocation> region_by_name(const std::string& region_name) const;

  /// The stub for a server id; nullptr when unknown.
  RegionServer* server_stub(const std::string& server_id) const;

  /// Split a region on its current server and record the two children.
  Status split_region(const std::string& region_name);

  /// Move a region to `target_server` (flush + close at the source, open
  /// from store files at the target).
  Status move_region(const std::string& region_name, const std::string& target_server);

  /// Even out the region count across live servers (used after scale-out).
  /// Returns the number of regions moved.
  Result<int> rebalance();

  std::vector<std::string> live_servers() const;

  /// Attach the cluster's epoch registry: every epoch bump is then mirrored
  /// into it, arming the storage-side fencing checks. Install before
  /// traffic starts, as the Cluster does.
  void set_epoch_registry(EpochRegistry* epochs) { epochs_ = epochs; }

  /// Current ownership epoch of a region (0 if unknown).
  std::uint64_t region_epoch(const std::string& region_name) const;

  /// Deliver a server-failure report, as the coordination listener would.
  /// Exposed so tests can exercise duplicate failure deliveries:
  /// handle_server_down is idempotent per server incarnation — a server
  /// re-reported while (or after) its recovery is in flight does not start
  /// a second WAL split.
  void report_server_down(const std::string& server_id, bool crashed);

  /// Install (or clear, with nullptr) the recovery-middleware hooks. Blocks
  /// until no hook invocation is in flight, so after it returns the previous
  /// hooks object can be safely destroyed (the RM restart path swaps it).
  void set_hooks(MasterHooks* hooks);

  /// Block until no failure recovery is in flight (test/bench helper).
  void wait_for_idle() const;

 private:
  void on_session_event(const SessionInfo& info, bool expired);
  void recovery_worker();
  void handle_server_down(const std::string& server_id, bool crashed);
  std::string pick_live_server_locked(std::size_t salt) const TFR_REQUIRES(mutex_);
  /// Advance a region's epoch by one: assignment map + registry + durable
  /// coord-KV record. Returns the new epoch.
  std::uint64_t bump_epoch_locked(const std::string& region_name) TFR_REQUIRES(mutex_);

  Dfs* dfs_;
  Coord* coord_;
  EpochRegistry* epochs_ = nullptr;

  mutable RankedMutex<LockRank::kMaster> mutex_{"master"};
  std::map<std::string, RegionServer*> servers_ TFR_GUARDED_BY(mutex_);  // all ever registered
  std::map<std::string, bool> server_alive_ TFR_GUARDED_BY(mutex_);
  std::map<std::string, RegionLocation> assignment_ TFR_GUARDED_BY(mutex_);  // region -> location
  std::map<std::string, std::string> server_wal_paths_ TFR_GUARDED_BY(mutex_);
  /// Servers whose failure handling has started (and, once done, completed)
  /// for the current incarnation; cleared when the id re-registers. Makes
  /// handle_server_down idempotent under duplicate failure deliveries.
  std::set<std::string> downs_handled_ TFR_GUARDED_BY(mutex_);
  MasterHooks* hooks_ TFR_GUARDED_BY(mutex_) = nullptr;
  bool hooks_ever_set_ TFR_GUARDED_BY(mutex_) = false;  // a recovery middleware exists
  bool stopping_ TFR_GUARDED_BY(mutex_) = false;
  int hook_calls_in_flight_ TFR_GUARDED_BY(mutex_) = 0;
  int in_flight_recoveries_ TFR_GUARDED_BY(mutex_) = 0;
  mutable CondVar idle_cv_;

  BlockingQueue<std::pair<std::string, bool>> failures_;   // (server, crashed?)
  std::thread worker_;
  int listener_id_ = 0;
};

}  // namespace tfr
