#include "src/kv/kv_client.h"

#include <algorithm>
#include <map>

#include "src/common/backoff.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace tfr {

KvClient::KvClient(Master& master, Micros retry_backoff)
    : master_(&master), retry_backoff_(retry_backoff) {}

Result<RegionLocation> KvClient::locate(const std::string& table, const std::string& row) {
  {
    MutexLock lock(routes_mutex_);
    auto tit = routes_.find(table);
    if (tit != routes_.end() && !tit->second.empty()) {
      auto it = tit->second.upper_bound(row);
      if (it != tit->second.begin()) {
        --it;
        if (it->second.descriptor.contains(row)) {
          route_hits_.fetch_add(1, std::memory_order_relaxed);
          static Counter& hits = global_counter("kv.route_hits");
          hits.add();
          return it->second;
        }
      }
    }
  }
  // Miss: ask the master with the routing lock released.
  auto loc = master_->locate(table, row);
  if (loc.is_ok()) {
    route_misses_.fetch_add(1, std::memory_order_relaxed);
    static Counter& misses = global_counter("kv.route_misses");
    misses.add();
    MutexLock lock(routes_mutex_);
    auto& regions = routes_[table];
    const RegionDescriptor& d = loc.value().descriptor;
    // Evict entries whose start lies inside the new range: regions never
    // overlap, so they are necessarily stale (pre-split daughters, a
    // pre-merge parent). The entry AT the start key is simply overwritten.
    auto it = regions.upper_bound(d.start_key);
    while (it != regions.end() && (d.end_key.empty() || it->first < d.end_key)) {
      it = regions.erase(it);
    }
    regions[d.start_key] = loc.value();
  }
  return loc;
}

void KvClient::invalidate_route(const std::string& table, const std::string& row) {
  MutexLock lock(routes_mutex_);
  auto tit = routes_.find(table);
  if (tit == routes_.end() || tit->second.empty()) return;
  auto it = tit->second.upper_bound(row);
  if (it == tit->second.begin()) return;
  --it;
  if (!it->second.descriptor.contains(row)) return;
  tit->second.erase(it);
  route_invalidations_.fetch_add(1, std::memory_order_relaxed);
  static Counter& invalidations = global_counter("kv.route_invalidations");
  invalidations.add();
}

Status KvClient::flush_writeset(const WriteSet& ws, std::optional<Timestamp> piggyback_tp,
                                bool recovery_replay, const std::atomic<bool>* cancel) {
  if (ws.mutations.empty()) return Status::ok();
  if (ws.commit_ts == kNoTimestamp) {
    return Status::invalid_argument("write-set has no commit timestamp");
  }

  // Track which mutations still need to be applied; a participant ack
  // covers all mutations that were in its slice.
  std::vector<Mutation> pending = ws.mutations;
  Backoff backoff(retry_backoff_, retry_backoff_ * 32);

  while (!pending.empty()) {
    if (cancel && cancel->load(std::memory_order_acquire)) {
      return Status::closed("flush cancelled (client died)");
    }
    // Group the pending mutations by the server currently hosting them.
    std::map<std::string, std::vector<Mutation>> by_server;
    Status route_error = Status::ok();
    for (const auto& m : pending) {
      auto loc = locate(ws.table, m.row);
      if (!loc.is_ok()) {
        // Unknown table: a region always covers the full keyspace of an
        // existing table, so NotFound is permanent — fail instead of
        // retrying forever.
        if (loc.status().is_not_found()) return loc.status();
        route_error = loc.status();
        break;
      }
      by_server[loc.value().server_id].push_back(m);
    }

    if (route_error.is_ok()) {
      std::vector<Mutation> still_pending;
      for (auto& [server_id, muts] : by_server) {
        RegionServer* stub = master_->server_stub(server_id);
        Status s = stub == nullptr ? Status::unavailable("unknown server " + server_id)
                                   : Status::ok();
        if (s.is_ok()) {
          ApplyRequest req;
          req.txn_id = ws.txn_id;
          req.client_id = ws.client_id;
          req.commit_ts = ws.commit_ts;
          req.table = ws.table;
          req.mutations = muts;
          req.piggyback_tp = piggyback_tp;
          req.recovery_replay = recovery_replay;
          flush_rpcs_.fetch_add(1, std::memory_order_relaxed);
          s = stub->apply_writeset(req);
        }
        if (!s.is_ok()) {
          // WrongEpoch means the slice hit a fenced (stale) owner;
          // Unavailable covers a region that moved, split or is mid-
          // recovery. Either way the cached routes for these rows are
          // suspect: drop them so the retry re-locates through the master —
          // which has already published the new assignment.
          if (!s.is_unavailable() && !s.is_wrong_epoch()) return s;  // real error
          for (const auto& m : muts) invalidate_route(ws.table, m.row);
          still_pending.insert(still_pending.end(), muts.begin(), muts.end());
        }
      }
      pending = std::move(still_pending);
      if (pending.empty()) break;
    }

    // Unlimited retries (§3.2): back off (with jitter, so clients re-flushing
    // into a recovering region do not wake in lockstep) and try again; the
    // region will come back online once recovery completes.
    flush_retries_.fetch_add(1, std::memory_order_relaxed);
    static Counter& retries = global_counter("kv.flush_retries");
    retries.add();
    if (backoff.attempts() > 0 && backoff.attempts() % 200 == 0) {
      TFR_LOG(WARN, "kvclient") << ws.client_id << " still flushing txn " << ws.commit_ts
                                << " after " << backoff.attempts() << " retries";
    }
    if (!backoff.sleep(cancel)) {
      return Status::closed("flush cancelled (client died)");
    }
  }
  return Status::ok();
}

Status KvClient::flush_writesets(const std::vector<WriteSet>& batch,
                                 const std::atomic<bool>* cancel) {
  for (const WriteSet& ws : batch) {
    if (!ws.mutations.empty() && ws.commit_ts == kNoTimestamp) {
      return Status::invalid_argument("write-set has no commit timestamp");
    }
  }
  // Per-write-set pending mutations: a server ack retires one write-set's
  // slice at a time, so partial progress survives a failed round.
  std::vector<std::vector<Mutation>> pending(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) pending[i] = batch[i].mutations;
  Backoff backoff(retry_backoff_, retry_backoff_ * 32);

  for (;;) {
    bool all_done = true;
    for (const auto& p : pending) {
      if (!p.empty()) {
        all_done = false;
        break;
      }
    }
    if (all_done) return Status::ok();
    if (cancel && cancel->load(std::memory_order_acquire)) {
      return Status::closed("flush cancelled (client died)");
    }

    // Route every pending mutation; one slice per (server, write-set).
    std::map<std::string, std::map<std::size_t, std::vector<Mutation>>> by_server;
    Status route_error = Status::ok();
    for (std::size_t i = 0; i < pending.size() && route_error.is_ok(); ++i) {
      for (const auto& m : pending[i]) {
        auto loc = locate(batch[i].table, m.row);
        if (!loc.is_ok()) {
          if (loc.status().is_not_found()) return loc.status();  // permanent
          route_error = loc.status();
          break;
        }
        by_server[loc.value().server_id][i].push_back(m);
      }
    }

    if (route_error.is_ok()) {
      std::vector<std::vector<Mutation>> still(pending.size());
      bool any_retryable = false;
      for (auto& [server_id, slices] : by_server) {
        RegionServer* stub = master_->server_stub(server_id);
        // One RPC carries every write-set's slice for this server.
        BatchApplyRequest req;
        std::vector<std::size_t> slice_ws;  // slice index -> write-set index
        for (auto& [ws_index, muts] : slices) {
          ApplyRequest slice;
          slice.txn_id = batch[ws_index].txn_id;
          slice.client_id = batch[ws_index].client_id;
          slice.commit_ts = batch[ws_index].commit_ts;
          slice.table = batch[ws_index].table;
          slice.mutations = muts;
          req.slices.push_back(std::move(slice));
          slice_ws.push_back(ws_index);
        }
        flush_rpcs_.fetch_add(1, std::memory_order_relaxed);
        auto result = stub == nullptr
                          ? Result<std::vector<Status>>(
                                Status::unavailable("unknown server " + server_id))
                          : stub->apply_batch(req);
        if (!result.is_ok()) {
          // Transport-level failure: every slice in the frame is retried.
          if (!result.status().is_unavailable() && !result.status().is_wrong_epoch()) {
            return result.status();
          }
          any_retryable = true;
          for (auto& [ws_index, muts] : slices) {
            for (const auto& m : muts) invalidate_route(batch[ws_index].table, m.row);
            auto& dst = still[ws_index];
            dst.insert(dst.end(), muts.begin(), muts.end());
          }
          continue;
        }
        const std::vector<Status>& statuses = result.value();
        for (std::size_t s = 0; s < statuses.size(); ++s) {
          if (statuses[s].is_ok()) continue;
          if (!statuses[s].is_unavailable() && !statuses[s].is_wrong_epoch()) {
            return statuses[s];  // real error
          }
          any_retryable = true;
          const auto& muts = slices[slice_ws[s]];
          for (const auto& m : muts) invalidate_route(batch[slice_ws[s]].table, m.row);
          auto& dst = still[slice_ws[s]];
          dst.insert(dst.end(), muts.begin(), muts.end());
        }
      }
      pending = std::move(still);
      if (!any_retryable) continue;  // progress was clean; re-check for done
    }

    flush_retries_.fetch_add(1, std::memory_order_relaxed);
    static Counter& retries = global_counter("kv.flush_retries");
    retries.add();
    if (backoff.attempts() > 0 && backoff.attempts() % 200 == 0) {
      TFR_LOG(WARN, "kvclient") << client_id_ << " still flushing a batch of " << batch.size()
                                << " write-sets after " << backoff.attempts() << " retries";
    }
    if (!backoff.sleep(cancel)) {
      return Status::closed("flush cancelled (client died)");
    }
  }
}

Result<std::optional<Cell>> KvClient::get(const std::string& table, const std::string& row,
                                          const std::string& column, Timestamp read_ts,
                                          int max_retries) {
  Backoff backoff(retry_backoff_, retry_backoff_ * 32);
  for (int attempt = 0;; ++attempt) {
    auto loc = locate(table, row);
    if (loc.is_ok()) {
      RegionServer* stub = master_->server_stub(loc.value().server_id);
      if (stub != nullptr) {
        auto result = stub->get(table, row, column, read_ts, client_id_);
        if (result.is_ok() ||
            (!result.status().is_unavailable() && !result.status().is_wrong_epoch())) {
          return result;
        }
      }
      // Not serving / moved / fenced: the cached route is suspect.
      invalidate_route(table, row);
    } else if (!loc.status().is_unavailable() && !loc.status().is_not_found()) {
      return loc.status();
    }
    if (max_retries != 0 && attempt >= max_retries) {
      return Status::unavailable("get retries exhausted for " + table + "/" + row);
    }
    read_retries_.fetch_add(1, std::memory_order_relaxed);
    static Counter& retries = global_counter("kv.read_retries");
    retries.add();
    backoff.sleep();
  }
}

Result<std::vector<Cell>> KvClient::scan(const std::string& table, const std::string& start,
                                         const std::string& end, Timestamp read_ts,
                                         std::size_t limit, int max_retries) {
  Backoff backoff(retry_backoff_, retry_backoff_ * 32);
  for (int attempt = 0;; ++attempt) {
    auto loc = locate(table, start);
    if (loc.is_ok()) {
      RegionServer* stub = master_->server_stub(loc.value().server_id);
      if (stub != nullptr) {
        // A scan may cross region boundaries; walk regions left to right.
        std::vector<Cell> out;
        std::string cursor = start;
        bool failed = false;
        std::size_t rows_left = limit;
        for (;;) {
          auto cur = locate(table, cursor);
          if (!cur.is_ok()) {
            failed = true;
            break;
          }
          RegionServer* s = master_->server_stub(cur.value().server_id);
          if (s == nullptr) {
            invalidate_route(table, cursor);
            failed = true;
            break;
          }
          const std::string region_end = cur.value().descriptor.end_key;
          const std::string chunk_end =
              (!end.empty() && (region_end.empty() || end < region_end)) ? end : region_end;
          auto cells = s->scan(table, cursor, chunk_end, read_ts, rows_left, client_id_);
          if (!cells.is_ok()) {
            // A chunk bounced (region split under us, moved, or fenced):
            // drop the stale route before the outer retry re-locates.
            invalidate_route(table, cursor);
            failed = true;
            break;
          }
          // Count distinct rows returned.
          std::string last_row;
          std::size_t rows = 0;
          for (const auto& c : cells.value()) {
            if (c.row != last_row) {
              ++rows;
              last_row = c.row;
            }
            out.push_back(c);
          }
          if (limit != 0) {
            if (rows >= rows_left) return out;
            rows_left -= rows;
          }
          if (region_end.empty() || (!end.empty() && region_end >= end)) return out;
          cursor = region_end;
        }
        if (!failed) return out;
      }
    }
    if (max_retries != 0 && attempt >= max_retries) {
      return Status::unavailable("scan retries exhausted for " + table + "/" + start);
    }
    read_retries_.fetch_add(1, std::memory_order_relaxed);
    static Counter& retries = global_counter("kv.read_retries");
    retries.add();
    backoff.sleep();
  }
}

KvClientStats KvClient::stats() const {
  return KvClientStats{flush_rpcs_.load(std::memory_order_relaxed),
                       flush_retries_.load(std::memory_order_relaxed),
                       read_retries_.load(std::memory_order_relaxed),
                       route_hits_.load(std::memory_order_relaxed),
                       route_misses_.load(std::memory_order_relaxed),
                       route_invalidations_.load(std::memory_order_relaxed)};
}

}  // namespace tfr
