// RegionServer — hosts a set of regions, a single write-ahead log shared by
// all of them (§2.1), and a block cache. This is the component the paper
// modifies minimally: we expose three extension points that the recovery
// middleware (src/recovery) plugs into, keeping the store itself unaware of
// transactions:
//
//   * set_writeset_observer  — invoked on every received write-set with its
//     commit timestamp and the recovery client's piggybacked TP(s), feeding
//     Algorithm 3's persist queue and the TP-inheritance rule;
//   * set_pre_heartbeat_hook — invoked just before each heartbeat to the
//     coordination service; the recovery layer persists received write-sets
//     (WAL sync) and returns the TP(s) payload to piggyback (Algorithm 3);
//   * set_region_gate        — invoked after a region's internal (WAL-split)
//     recovery completes and *before* it is declared online, so the recovery
//     manager can replay un-persisted write-sets first (§3.2).
//
// Concurrency/latency model: every public RPC charges the configured network
// latency in the caller's thread, then occupies one of `handler_slots`
// handlers for its service time (plus any DFS reads it triggers), modelling
// a real server's RPC handler pool.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/latency.h"
#include "src/common/annotations.h"
#include "src/common/threading.h"
#include "src/coord/coord.h"
#include "src/dfs/dfs.h"
#include "src/kv/block_cache.h"
#include "src/kv/region.h"
#include "src/kv/wal.h"

namespace tfr {

class FaultInjector;

/// Coord KV prefix under which each server publishes its cumulative served
/// operation count (the balancer's piggybacked load report, refreshed on
/// every successful heartbeat): /tfr/load/<server_id> -> total ops.
inline constexpr const char* kServerLoadPrefix = "/tfr/load/";

struct RegionServerConfig {
  int handler_slots = 16;

  /// Synchronous persistence (the Figure 2(a) baseline): every write-set is
  /// WAL-synced to the DFS before the RPC returns. When false (the paper's
  /// mode), the WAL is synced asynchronously every `wal_sync_interval`.
  bool sync_wal_on_write = false;
  Micros wal_sync_interval = millis(50);

  /// Roll the WAL once the open segment exceeds this; closed segments whose
  /// edits have all been flushed to store files are reclaimed.
  std::uint64_t wal_segment_bytes = 8ull << 20;

  std::size_t memstore_flush_bytes = 64ull << 20;
  std::size_t block_cache_bytes = 256ull << 20;
  /// LRU stripes in the block cache (rounded up to a power of two); more
  /// stripes = less reader contention, coarser per-stripe LRU.
  std::size_t block_cache_shards = 16;
  std::size_t store_block_bytes = 16 * 1024;  // store-file block granularity

  /// Compact a region once it accumulates this many store files (0 = never).
  std::size_t compaction_file_threshold = 8;

  Micros heartbeat_interval = seconds(1);
  Micros session_ttl = seconds(3);  // missed-heartbeat window before declared dead

  Micros rpc_latency = 0;  // per-RPC network charge (caller side)
  Micros rpc_jitter = 0;

  /// Network bandwidth in megabits/second; RPCs additionally charge the
  /// transfer time of their marshalled bytes (0 = infinitely fast link).
  /// The paper's testbed ran on 100 Mbps Ethernet.
  double network_mbps = 0;
  Micros read_service = 0;   // CPU service time per read op
  Micros write_service = 0;  // CPU service time per write-set receipt
};

/// The slice of one transaction's write-set destined for one server, plus
/// the recovery-replay extras of §3.2.
struct ApplyRequest {
  std::uint64_t txn_id = 0;
  std::string client_id;
  Timestamp commit_ts = kNoTimestamp;
  std::string table;
  std::vector<Mutation> mutations;

  /// Set by the recovery client during *server* recovery: the failed
  /// server's TP(s), which the receiving server must inherit.
  std::optional<Timestamp> piggyback_tp;

  /// True when sent by the recovery client; admits the write into a gated
  /// (recovering) region.
  bool recovery_replay = false;
};

/// Several write-set slices from one client to one server, shipped as a
/// single RPC (the pipelined flush path — cf. HBase's multi-put). All
/// slices share the sender, so network faults and partitions are evaluated
/// once for the whole frame, while each slice keeps its own per-slice
/// outcome (a region move can make one slice retryable without failing the
/// rest).
struct BatchApplyRequest {
  std::vector<ApplyRequest> slices;
};

class RegionServer {
 public:
  RegionServer(std::string id, Dfs& dfs, Coord& coord, RegionServerConfig config);
  ~RegionServer();

  RegionServer(const RegionServer&) = delete;
  RegionServer& operator=(const RegionServer&) = delete;

  const std::string& id() const { return id_; }
  const RegionServerConfig& config() const { return config_; }
  std::string wal_path() const { return "/wal/" + id_ + ".log"; }

  /// Create the WAL, register the coordination session, start the async WAL
  /// syncer and heartbeats.
  Status start();

  /// Clean shutdown (Algorithm 3 lines 5-7): flush regions, sync the WAL,
  /// send a pre-shutdown heartbeat, unregister.
  Status shutdown();

  /// Crash failure: the memstores and the un-synced WAL tail are lost, RPCs
  /// start failing, heartbeats cease (the master will detect expiry).
  void crash();

  bool alive() const { return alive_.load(std::memory_order_acquire); }

  // --- RPC surface ---------------------------------------------------------

  /// Receive a write-set slice (Algorithm 3 "On receive"): append to the WAL
  /// (possibly syncing, per mode), apply to the memstores of the covered
  /// regions, notify the write-set observer, and return.
  TFR_BLOCKING Status apply_writeset(const ApplyRequest& req);

  /// Receive a batch of write-set slices in one RPC: one network round-trip
  /// and one handler slot for the whole frame, then each slice runs the
  /// same WAL-append/apply/observe pipeline as apply_writeset. Returns one
  /// Status per slice (same order); a transport-level error (partition,
  /// injected loss, frame corruption, dropped ack) fails the whole batch as
  /// Unavailable and the client re-sends — reapplication is idempotent.
  TFR_BLOCKING Result<std::vector<Status>> apply_batch(const BatchApplyRequest& batch);

  /// `caller` (when non-empty) is the requesting node's id, matched against
  /// partition rules (see common/fault.h).
  TFR_BLOCKING Result<std::optional<Cell>> get(const std::string& table, const std::string& row,
                                  const std::string& column, Timestamp read_ts,
                                  const std::string& caller = {});

  TFR_BLOCKING Result<std::vector<Cell>> scan(const std::string& table, const std::string& start,
                                 const std::string& end, Timestamp read_ts, std::size_t limit,
                                 const std::string& caller = {});

  /// Open a region on this server: attach store files, replay split-WAL
  /// edits (internal recovery), run the region gate, declare online.
  /// `epoch` is the ownership epoch the master granted for this assignment
  /// (0 = unfenced); it is stamped on every WAL append and store-file
  /// finalization the region performs here.
  Status open_region(const RegionDescriptor& desc, const std::vector<WalRecord>& recovered_edits,
                     std::uint64_t epoch = 0);

  Status close_region(const std::string& region_name);

  /// Sync the WAL to the DFS — the "persist" step of Algorithm 3.
  TFR_BLOCKING Status persist_wal();

  /// Roll the WAL if the open segment is over the size threshold, then
  /// reclaim segments made obsolete by memstore flushes. Runs periodically;
  /// exposed for tests.
  void maybe_roll_wal();

  /// The server-local half of a region split: fence the parent (applies
  /// reject, the flush drains every acked write), choose the split key from
  /// store-file metadata, write each daughter's `ref-N` store-file
  /// reference markers (no data is rewritten), retire the parent object.
  /// Returns the daughters' descriptors; the MASTER commits the transition
  /// — epoch bump, assignment + durable split record, floor-inheritance
  /// hook — and then opens the daughters (so the region gate runs under
  /// the new epoch). On error the parent resumes serving untouched.
  /// During the cutover the covered key range is Unavailable; clients
  /// re-locate and retry.
  Result<std::pair<RegionDescriptor, RegionDescriptor>> split_region(
      const std::string& region_name);

  /// The server-local half of merging two ADJACENT regions hosted here
  /// (left.end_key == right.start_key): fence + flush both, write the
  /// merged region's reference markers to both parents' store files,
  /// retire both parent objects. Same contract as split_region: the master
  /// commits and opens the merged region.
  Result<RegionDescriptor> merge_regions(const std::string& left_name,
                                         const std::string& right_name);

  /// Flush a region's memstore and close it here so another server can open
  /// it from its store files (region move / load balancing).
  Status offload_region(const std::string& region_name);

  /// Merge a region's store files (see Region::compact).
  Status compact_region(const std::string& region_name,
                        Timestamp prune_before_ts = kNoTimestamp);

  // --- recovery extension points -------------------------------------------

  using WritesetObserver = std::function<void(Timestamp commit_ts,
                                              std::optional<Timestamp> piggyback_tp)>;
  using PreHeartbeatHook = std::function<Timestamp()>;
  using RegionGate = std::function<void(const std::string& region_name,
                                        const std::string& server_id)>;

  void set_writeset_observer(WritesetObserver observer);
  void set_pre_heartbeat_hook(PreHeartbeatHook hook);
  void set_region_gate(RegionGate gate);

  // --- introspection --------------------------------------------------------

  std::shared_ptr<Region> region(const std::string& name) const;
  std::vector<std::string> region_names() const;
  Wal& wal() { return *wal_; }
  BlockCache& block_cache() { return cache_; }

  /// One balancer-visible load sample per hosted region.
  struct RegionLoad {
    std::string region;
    std::uint64_t reads = 0;   ///< cumulative gets+scans on this host
    std::uint64_t writes = 0;  ///< cumulative applied write batches
    std::uint64_t store_bytes = 0;
    bool online = false;
  };
  std::vector<RegionLoad> region_loads() const;

  /// Install a fault injector (see common/fault.h): apply_writeset / get /
  /// scan then consult it per RPC, matched against this server's id —
  /// transient request loss, dropped acks, wire bit-flips and added latency.
  /// Pass nullptr to detach. Not synchronized with in-flight RPCs: install
  /// before traffic starts, as the Cluster does.
  void set_fault_injector(FaultInjector* injector) { fault_ = injector; }

  /// Attach the cluster's epoch registry (nullptr to detach): the WAL and
  /// every region opened here then enforce the fencing-token check. Install
  /// before start(), as the Cluster does.
  void set_epoch_registry(const EpochRegistry* epochs) { epochs_ = epochs; }

  /// Force one heartbeat now (tests use this instead of waiting).
  void heartbeat_now() { heartbeat_tick(); }

  /// Force one background WAL-sync tick now (tests use this instead of
  /// waiting out wal_sync_interval).
  void wal_sync_now() { wal_sync_tick(); }

  /// Change the heartbeat interval at runtime (the Figure 2(b) sweep). The
  /// failure-detection window scales with it (TTL = 3 intervals). Fails if
  /// the coord session is already expired or closed: silently continuing
  /// would leave the server heartbeating at the new cadence against a dead
  /// session, i.e. a zombie with a mis-sized failure-detection window.
  Status set_heartbeat_interval(Micros interval) {
    TFR_RETURN_IF_ERROR(coord_->update_ttl("servers", id_, interval * 3));
    session_ttl_.store(interval * 3, std::memory_order_release);
    heartbeats_.set_interval(interval);
    heartbeat_now();
    return Status::ok();
  }

 private:
  /// The post-transport core of apply_writeset: WAL-append, apply to
  /// memstores, observe. Caller has decoded the request, checked liveness,
  /// and holds a handler slot.
  Status apply_decoded(const ApplyRequest& req);
  void heartbeat_tick();
  /// Publish the per-server load report + per-region traffic gauges.
  void report_load();
  /// Stop serving because the coord lease could not be renewed within the
  /// TTL: by the time the master hands our regions to a new owner, we have
  /// already quiesced (self-fence-precedes-takeover; see DESIGN.md).
  void self_fence();
  void wal_sync_tick();
  std::uint64_t wal_truncation_bound() const;
  std::shared_ptr<Region> region_for(const std::string& table, const std::string& row) const;

  std::string id_;
  Dfs* dfs_;
  Coord* coord_;
  RegionServerConfig config_;
  FaultInjector* fault_ = nullptr;
  const EpochRegistry* epochs_ = nullptr;

  std::atomic<bool> alive_{false};
  /// Timestamp taken just BEFORE the last successful lease renewal was sent,
  /// so our expiry estimate is conservative with respect to the coordination
  /// service's (which measures from receipt).
  std::atomic<Micros> lease_renewed_at_{0};
  /// Tracks the coord session TTL (set_heartbeat_interval re-scales it).
  std::atomic<Micros> session_ttl_{0};
  std::unique_ptr<Wal> wal_;
  BlockCache cache_;
  Semaphore handlers_;
  LatencyModel rpc_model_;
  LatencyModel read_service_;
  LatencyModel write_service_;

  mutable RankedSharedMutex<LockRank::kRegionServer> regions_mutex_{"region_server.regions"};
  std::map<std::string, std::shared_ptr<Region>> regions_ TFR_GUARDED_BY(regions_mutex_);

  RankedMutex<LockRank::kServerHooks> hooks_mutex_{"region_server.hooks"};
  WritesetObserver writeset_observer_ TFR_GUARDED_BY(hooks_mutex_);
  PreHeartbeatHook pre_heartbeat_hook_ TFR_GUARDED_BY(hooks_mutex_);
  RegionGate region_gate_ TFR_GUARDED_BY(hooks_mutex_);

  PeriodicTask wal_syncer_;
  PeriodicTask heartbeats_;

  RankedMutex<LockRank::kClientLifecycle> terminator_mutex_{"region_server.terminator"};
  std::thread self_terminator_ TFR_GUARDED_BY(terminator_mutex_);  // runs crash() when declared dead
};

}  // namespace tfr
