#include "src/kv/rpc_messages.h"

#include "src/common/codec.h"
#include "src/common/crc32.h"

namespace tfr {

std::string encode_apply_request(const ApplyRequest& req) {
  std::string out;
  Encoder enc(&out);
  enc.put_u64(req.txn_id);
  enc.put_string(req.client_id);
  enc.put_i64(req.commit_ts);
  enc.put_string(req.table);
  enc.put_u32(static_cast<std::uint32_t>(req.mutations.size()));
  for (const auto& m : req.mutations) encode_mutation(enc, m);
  enc.put_u8(req.piggyback_tp.has_value() ? 1 : 0);
  if (req.piggyback_tp) enc.put_i64(*req.piggyback_tp);
  enc.put_u8(req.recovery_replay ? 1 : 0);
  // Frame checksum: a bit flipped in transit must surface as Corruption, not
  // decode into silently wrong mutations (write-sets carry user data).
  enc.put_u32(crc32c(out));
  return out;
}

Result<ApplyRequest> decode_apply_request(std::string_view wire) {
  if (wire.size() < 4) return Status::corruption("ApplyRequest frame too short");
  {
    std::uint32_t expected = 0;
    std::memcpy(&expected, wire.data() + wire.size() - 4, 4);
    if (crc32c(wire.substr(0, wire.size() - 4)) != expected) {
      return Status::corruption("ApplyRequest frame checksum mismatch");
    }
  }
  wire.remove_suffix(4);
  Decoder dec(wire);
  ApplyRequest req;
  TFR_RETURN_IF_ERROR(dec.get_u64(&req.txn_id));
  TFR_RETURN_IF_ERROR(dec.get_string(&req.client_id));
  TFR_RETURN_IF_ERROR(dec.get_i64(&req.commit_ts));
  TFR_RETURN_IF_ERROR(dec.get_string(&req.table));
  std::uint32_t n = 0;
  TFR_RETURN_IF_ERROR(dec.get_u32(&n));
  req.mutations.resize(n);
  for (auto& m : req.mutations) TFR_RETURN_IF_ERROR(decode_mutation(dec, &m));
  std::uint8_t has_piggyback = 0;
  TFR_RETURN_IF_ERROR(dec.get_u8(&has_piggyback));
  if (has_piggyback != 0) {
    Timestamp tp = kNoTimestamp;
    TFR_RETURN_IF_ERROR(dec.get_i64(&tp));
    req.piggyback_tp = tp;
  }
  std::uint8_t replay = 0;
  TFR_RETURN_IF_ERROR(dec.get_u8(&replay));
  req.recovery_replay = (replay != 0);
  if (!dec.done()) return Status::corruption("trailing bytes in ApplyRequest");
  return req;
}

std::string encode_batch_apply_request(const BatchApplyRequest& batch) {
  std::string out;
  Encoder enc(&out);
  enc.put_u32(static_cast<std::uint32_t>(batch.slices.size()));
  for (const auto& slice : batch.slices) enc.put_string(encode_apply_request(slice));
  enc.put_u32(crc32c(out));
  return out;
}

Result<BatchApplyRequest> decode_batch_apply_request(std::string_view wire) {
  if (wire.size() < 4) return Status::corruption("BatchApplyRequest frame too short");
  {
    std::uint32_t expected = 0;
    std::memcpy(&expected, wire.data() + wire.size() - 4, 4);
    if (crc32c(wire.substr(0, wire.size() - 4)) != expected) {
      return Status::corruption("BatchApplyRequest frame checksum mismatch");
    }
  }
  wire.remove_suffix(4);
  Decoder dec(wire);
  std::uint32_t n = 0;
  TFR_RETURN_IF_ERROR(dec.get_u32(&n));
  BatchApplyRequest batch;
  batch.slices.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string inner;
    TFR_RETURN_IF_ERROR(dec.get_string(&inner));
    auto slice = decode_apply_request(inner);
    if (!slice.is_ok()) return slice.status();
    batch.slices.push_back(std::move(slice).value());
  }
  if (!dec.done()) return Status::corruption("trailing bytes in BatchApplyRequest");
  return batch;
}

std::size_t get_request_wire_size(const std::string& table, const std::string& row,
                                  const std::string& column) {
  // Three length-prefixed strings plus the snapshot timestamp.
  return table.size() + row.size() + column.size() + 3 * 4 + 8;
}

std::size_t cell_wire_size(const Cell& cell) {
  return cell.row.size() + cell.column.size() + cell.value.size() + 3 * 4 + 8 + 1;
}

Micros transfer_micros(std::size_t bytes, double mbps) {
  if (mbps <= 0) return 0;
  // bits / (mbps * 10^6 bits/s) seconds -> microseconds.
  return static_cast<Micros>(static_cast<double>(bytes) * 8.0 / mbps);
}

}  // namespace tfr
