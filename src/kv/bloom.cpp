#include "src/kv/bloom.h"

#include <algorithm>

namespace tfr {

std::uint64_t bloom_hash(std::string_view key) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ull;  // FNV prime
  }
  return h;
}

namespace {
/// Double hashing: probe i lands at h1 + i*h2. h2 is forced odd so the
/// probe sequence cycles through the whole (power-free) bit range even for
/// degenerate h1.
inline std::uint64_t probe_bit(std::uint64_t hash, int i, std::uint64_t nbits) {
  const std::uint64_t h1 = hash;
  const std::uint64_t h2 = (hash >> 33) | 1;
  return (h1 + static_cast<std::uint64_t>(i) * h2) % nbits;
}
}  // namespace

BloomFilter BloomFilter::build(const std::vector<std::uint64_t>& hashes, int bits_per_key) {
  BloomFilter f;
  if (hashes.empty()) return f;
  // k = bits_per_key * ln2, clamped to a sane range; 10 bits/key -> k=6.
  f.probes_ = std::clamp(static_cast<int>(bits_per_key * 0.69), 1, 30);
  const std::uint64_t nbits =
      std::max<std::uint64_t>(64, hashes.size() * static_cast<std::uint64_t>(bits_per_key));
  f.bits_.assign((nbits + 7) / 8, '\0');
  const std::uint64_t rounded = f.bits_.size() * 8;
  for (const auto h : hashes) {
    for (int i = 0; i < f.probes_; ++i) {
      const std::uint64_t bit = probe_bit(h, i, rounded);
      f.bits_[bit / 8] |= static_cast<char>(1u << (bit % 8));
    }
  }
  return f;
}

bool BloomFilter::may_contain(std::uint64_t hash) const {
  if (bits_.empty()) return true;
  const std::uint64_t nbits = bits_.size() * 8;
  for (int i = 0; i < probes_; ++i) {
    const std::uint64_t bit = probe_bit(hash, i, nbits);
    if ((bits_[bit / 8] & static_cast<char>(1u << (bit % 8))) == 0) return false;
  }
  return true;
}

BloomFilter BloomFilter::from_parts(std::string bits, int probes) {
  BloomFilter f;
  f.bits_ = std::move(bits);
  f.probes_ = probes;
  return f;
}

}  // namespace tfr
