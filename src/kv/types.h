// Core data-model types of minibase: cells, mutations, write-sets, regions.
//
// Versioning is the linchpin of the paper's recovery story: every update is
// stamped with the *commit timestamp* of its transaction, which makes
// replaying a write-set idempotent — applying it any number of times yields
// the same multi-version state (§2.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/codec.h"
#include "src/common/status.h"

namespace tfr {

/// Commit / snapshot timestamps issued by the timestamp oracle.
/// Monotonically increasing; the commit timestamp determines the
/// serialization order (§2.2).
using Timestamp = std::int64_t;

constexpr Timestamp kNoTimestamp = 0;
constexpr Timestamp kMaxTimestamp = INT64_MAX;

/// One versioned value in the store.
struct Cell {
  std::string row;
  std::string column;
  std::string value;
  Timestamp ts = kNoTimestamp;
  bool tombstone = false;

  std::size_t byte_size() const { return row.size() + column.size() + value.size() + 16; }

  bool operator==(const Cell&) const = default;
};

void encode_cell(Encoder& enc, const Cell& cell);
Status decode_cell(Decoder& dec, Cell* cell);

/// One buffered update of a transaction's write-set (not yet versioned; the
/// commit timestamp is stamped on at commit time).
struct Mutation {
  std::string row;
  std::string column;
  std::string value;
  bool is_delete = false;

  Cell to_cell(Timestamp ts) const { return Cell{row, column, value, ts, is_delete}; }

  bool operator==(const Mutation&) const = default;
};

void encode_mutation(Encoder& enc, const Mutation& m);
Status decode_mutation(Decoder& dec, Mutation* m);

/// A committed transaction's write-set as stored in the TM recovery log and
/// flushed to the key-value store: the set of values the transaction
/// inserted, updated, or deleted, with its commit timestamp and the id of
/// the client that executed it (§2.2).
struct WriteSet {
  std::uint64_t txn_id = 0;
  std::string client_id;
  Timestamp commit_ts = kNoTimestamp;
  std::string table;
  std::vector<Mutation> mutations;

  std::string encode() const;
  static Result<WriteSet> decode(std::string_view data);

  std::size_t byte_size() const;
};

/// Process-unique region id for regions created by splits, so a child that
/// inherits its parent's start key still gets a distinct name (HBase
/// disambiguates regions the same way, with a creation-time id in the
/// region name).
std::uint64_t next_region_id();

/// A contiguous, sorted key range of a table, the unit of distribution and
/// recovery (§2.1). `end_key` empty means +infinity.
struct RegionDescriptor {
  std::string table;
  std::string start_key;
  std::string end_key;
  std::uint64_t id = 0;  ///< 0 for table-creation regions; unique for splits

  /// Stable identifier, e.g. "usertable,user25" or "usertable,user25@17".
  std::string name() const {
    std::string n = table + "," + start_key;
    if (id != 0) n += "@" + std::to_string(id);
    return n;
  }

  bool contains(const std::string& row) const {
    return row >= start_key && (end_key.empty() || row < end_key);
  }

  bool operator==(const RegionDescriptor&) const = default;
};

}  // namespace tfr
