#include "src/kv/region.h"

#include <algorithm>
#include <map>

#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace tfr {

std::string_view region_state_name(RegionState s) {
  switch (s) {
    case RegionState::kOpening: return "opening";
    case RegionState::kGated: return "gated";
    case RegionState::kOnline: return "online";
    case RegionState::kOffline: return "offline";
  }
  return "?";
}

namespace {
/// DFS paths may not love arbitrary key bytes; region names are restricted
/// to printable benchmark keys, so a simple substitution suffices.
std::string sanitize(std::string name) {
  for (auto& c : name) {
    if (c == '/' || c == ' ') c = '_';
  }
  return name;
}

/// True for a split/merge inheritance marker ("ref-N") in a data dir.
bool is_ref_marker(const std::string& path) {
  const auto slash = path.rfind('/');
  return path.compare(slash == std::string::npos ? 0 : slash + 1, 4, "ref-") == 0;
}
}  // namespace

std::string region_data_dir(const std::string& region_name) {
  return "/data/" + sanitize(region_name) + "/";
}

Region::Region(RegionDescriptor desc, Dfs& dfs, BlockCache& cache,
               std::size_t store_block_bytes)
    : desc_(std::move(desc)), dfs_(&dfs), cache_(&cache),
      store_block_bytes_(store_block_bytes) {}

std::string Region::data_dir() const { return region_data_dir(desc_.name()); }

Status Region::load_store_files() {
  MutexLock lock(mutex_);
  files_.clear();
  ref_markers_.clear();
  // Store files are numbered; open in path order (oldest first) and flip
  // once at the end — front-inserting each file would be quadratic in the
  // file count. "ref-" sorts before "sf-", so a daughter's inherited
  // snapshot (the markers, numbered oldest-first by the split) stays older
  // than every file the daughter wrote itself.
  auto paths = dfs_->list(data_dir());
  std::sort(paths.begin(), paths.end());
  std::uint64_t max_id = 0;
  for (const auto& p : paths) {
    std::string target = p;
    if (is_ref_marker(p)) {
      // The marker's content is the real path of a retired parent's store
      // file (already resolved — markers never chain ref -> ref).
      // tfr-lint: blocking-ok(open-time load: the region is not serving yet, and the
      // lock only orders this against a concurrent open — kRegion is a leaf rank)
      auto real = dfs_->read_all(p);
      if (!real.is_ok()) return real.status();
      target = real.value();
    }
    auto reader = StoreFileReader::open(*dfs_, target);
    if (!reader.is_ok()) return reader.status();
    files_.push_back(reader.value());
    if (target != p) {
      ref_markers_[target] = p;
      continue;  // markers do not advance the owned-file id sequence
    }
    // Path suffix is the numeric file id.
    const auto pos = p.rfind("sf-");
    if (pos != std::string::npos) {
      max_id = std::max<std::uint64_t>(max_id, std::strtoull(p.c_str() + pos + 3, nullptr, 10));
    }
  }
  std::reverse(files_.begin(), files_.end());  // newest first
  next_file_id_ = max_id + 1;
  return Status::ok();
}

bool Region::apply(const std::vector<Cell>& cells, std::uint64_t wal_seq) {
  MutexLock lock(mutex_);
  // Reject under the same lock a topology transition's fencing flush holds:
  // once a split/merge/offload has marked the region offline and drained
  // the memstore, a racing apply must not repopulate it — the cells would
  // be dropped with the region object. The caller surfaces Unavailable and
  // the client re-locates; the already-written WAL record is harmless
  // (replay is idempotent and the write was never acked).
  if (state_.load(std::memory_order_acquire) == RegionState::kOffline) return false;
  for (const auto& c : cells) memstore_.apply(c);
  if (wal_seq != 0 && min_unflushed_wal_seq_ == 0) min_unflushed_wal_seq_ = wal_seq;
  write_ops_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t Region::min_unflushed_wal_seq() const {
  MutexLock lock(mutex_);
  return min_unflushed_wal_seq_;
}

Result<std::optional<Cell>> Region::get(const std::string& row, const std::string& column,
                                        Timestamp read_ts) {
  read_ops_.fetch_add(1, std::memory_order_relaxed);
  std::optional<Cell> best;
  std::vector<std::shared_ptr<StoreFileReader>> files;
  {
    MutexLock lock(mutex_);
    best = memstore_.get(row, column, read_ts);
    files = files_;  // cheap shared_ptr copies; DFS reads happen unlocked
  }
  for (const auto& f : files) {
    // `<=` is deliberate: a file with max_ts == best->ts cannot hold a
    // version that beats `best`. A strictly newer version would need
    // ts > max_ts, which the file cannot contain; and a same-ts version of
    // the same (row, column) can only be a byte-identical duplicate,
    // because commit timestamps are unique per transaction and a
    // transaction writes a cell at most once — duplicates across files
    // arise only from idempotent replay (see the GetDuplicateCellAcross
    // Files regression test). Skipping the tie therefore never changes the
    // result, only saves the block fetch.
    if (best && f->max_ts() <= best->ts) continue;
    auto from_file = f->get(*cache_, row, column, read_ts);
    if (!from_file.is_ok()) return from_file.status();
    if (from_file.value() && (!best || from_file.value()->ts > best->ts)) {
      best = from_file.value();
    }
  }
  if (best && best->tombstone) best.reset();
  return best;
}

Result<std::vector<Cell>> Region::scan(const std::string& start_in, const std::string& end_in,
                                       Timestamp read_ts, std::size_t limit) {
  read_ops_.fetch_add(1, std::memory_order_relaxed);
  // Clip to the region's own range: inherited (referenced) parent store
  // files can hold the sibling daughter's rows, which must never leak out.
  const std::string& start = start_in < desc_.start_key ? desc_.start_key : start_in;
  std::string end = end_in;
  if (!desc_.end_key.empty() && (end.empty() || end > desc_.end_key)) end = desc_.end_key;
  if (!read_path_flags().streaming_scan.load(std::memory_order_relaxed)) {
    return scan_legacy(start, end, read_ts, limit);
  }
  // Streaming path: snapshot the memstore's slice and the file list under
  // the lock, then merge lazily — block fetches happen outside the lock and
  // stop as soon as `limit` rows are complete.
  std::vector<Cell> mem;
  std::vector<std::shared_ptr<StoreFileReader>> files;
  {
    MutexLock lock(mutex_);
    mem = memstore_.range_snapshot(start, end);
    files = files_;
  }
  std::vector<std::unique_ptr<CellIterator>> iters;
  iters.reserve(files.size() + 1);
  // Newest source first (memstore, then files newest-first): merge ties on
  // identical (row, column, ts) resolve deterministically to the newest.
  iters.push_back(std::make_unique<VectorCellIterator>(std::move(mem)));
  for (const auto& f : files) {
    if (!f->range_overlaps(start, end)) {
      static Counter& range_skips = global_counter("kv.sf_range_skips");
      range_skips.add();
      continue;
    }
    auto it = f->iterate(*cache_, start, end);
    if (!it.is_ok()) return it.status();
    iters.push_back(std::move(it.value()));
  }
  MergingCellIterator merged(std::move(iters));
  std::vector<Cell> out;
  TFR_RETURN_IF_ERROR(collect_visible(merged, read_ts, limit, &out));
  return out;
}

Result<std::vector<Cell>> Region::scan_legacy(const std::string& start, const std::string& end,
                                              Timestamp read_ts, std::size_t limit) {
  // Pre-streaming read path, kept for the bench_read A/B flag and as a
  // cross-check oracle in the read-path property test: materialize every
  // matching cell from every source, merge in a map, then apply the limit.
  std::vector<Cell> mem;
  std::vector<std::shared_ptr<StoreFileReader>> files;
  {
    MutexLock lock(mutex_);
    mem = memstore_.scan(start, end, read_ts);
    files = files_;
  }
  std::map<std::pair<std::string, std::string>, Cell> merged;
  auto absorb = [&](const Cell& c) {
    auto key = std::make_pair(c.row, c.column);
    auto it = merged.find(key);
    if (it == merged.end() || c.ts > it->second.ts) merged[key] = c;
  };
  for (const auto& c : mem) absorb(c);
  for (const auto& f : files) {
    auto cells = f->scan(*cache_, start, end, read_ts);
    if (!cells.is_ok()) return cells.status();
    for (const auto& c : cells.value()) absorb(c);
  }
  std::vector<Cell> out;
  std::string last_row;
  std::size_t rows = 0;
  for (auto& [key, c] : merged) {
    if (c.tombstone) continue;
    if (c.row != last_row) {
      if (limit != 0 && rows == limit) break;
      ++rows;
      last_row = c.row;
    }
    out.push_back(std::move(c));
  }
  return out;
}

Status Region::finalize_store_file(StoreFileWriter& writer, const std::string& path) {
  TFR_BLOCKING_POINT("region.finalize_store_file");
  if (epochs_ == nullptr) return writer.finish(*dfs_, path);
  // Write to a tmp path outside the data dir (a half-written tmp file left
  // by a crashed owner must never be picked up by load_store_files), then
  // re-check our epoch and rename into the live namespace. The rename is
  // the commit point: a finalize racing the master's fence either renames
  // before the new owner attached files (its data is simply a valid extra
  // store file of the old epoch's admitted writes) or is rejected here.
  const std::string tmp = "/tmp" + path;
  TFR_RETURN_IF_ERROR(writer.finish(*dfs_, tmp));
  Status fence = epochs_->validate(name(), epoch());
  if (fence.is_ok()) fence = dfs_->rename(tmp, path);
  if (!fence.is_ok()) {
    TFR_IGNORE_STATUS(dfs_->remove(tmp),
                      "tmp cleanup after a failed finalize; /tmp is outside the data dir and "
                      "never loaded, an orphan only wastes space");
    if (fence.is_wrong_epoch()) {
      static Counter& rejects = global_counter("kv.epoch_rejects");
      rejects.add();
      TFR_LOG(WARN, "region") << name() << " store-file finalize fenced: " << fence;
    }
  }
  return fence;
}

Status Region::flush_memstore() {
  MutexLock lock(mutex_);
  if (memstore_.cell_count() == 0) return Status::ok();
  StoreFileWriter writer(store_block_bytes_);
  for (const auto& c : memstore_.snapshot()) writer.add(c);
  const std::string path = data_dir() + "sf-" + std::to_string(next_file_id_++);
  // tfr-lint: blocking-ok(region lock held across the DFS write by design — writes must
  // not land between snapshot and swap; kRegion is may_block=true in the rank table)
  TFR_RETURN_IF_ERROR(finalize_store_file(writer, path));
  auto reader = StoreFileReader::open(*dfs_, path);
  if (!reader.is_ok()) return reader.status();
  files_.insert(files_.begin(), reader.value());
  TFR_LOG(DEBUG, "region") << name() << " flushed " << memstore_.cell_count() << " cells to "
                           << path;
  memstore_.clear();
  // Everything this region had in the WAL is now in a durable store file.
  min_unflushed_wal_seq_ = 0;
  return Status::ok();
}

Status Region::compact(Timestamp prune_before_ts) {
  // Snapshot the immutable inputs, merge outside the lock, then swap in the
  // result only if no flush changed the file set meanwhile. The merge
  // streams block-by-block through the shared iterators, so peak memory is
  // O(block) per input file instead of O(region).
  std::vector<std::shared_ptr<StoreFileReader>> inputs;
  {
    MutexLock lock(mutex_);
    // A single file normally needs no compaction — unless it is a split/
    // merge reference, in which case compacting localizes the data (and
    // dropping the marker is what lets the janitor reclaim the parent dir).
    if (files_.empty() || (files_.size() < 2 && ref_markers_.empty())) return Status::ok();
    inputs = files_;
  }

  // A fenced successor (a move's new host, or a daughter after a split) may
  // attach these same paths, compact them, and delete them out from under
  // our merge. A NotFound mid-merge in that situation is a symptom of the
  // race, not of the data — report Unavailable so the apply path defers the
  // compaction instead of failing the client call with NotFound.
  auto raced = [&](Status s) -> Status {
    if (!s.is_not_found()) return s;
    MutexLock lock(mutex_);
    if (state_.load(std::memory_order_acquire) == RegionState::kOffline ||
        files_.size() != inputs.size() ||
        !std::equal(files_.begin(), files_.end(), inputs.begin())) {
      return Status::unavailable("compaction input vanished under a fenced successor on " +
                                 name() + ": " + s.to_string());
    }
    return s;
  };

  std::vector<std::unique_ptr<CellIterator>> iters;
  iters.reserve(inputs.size());
  for (const auto& f : inputs) {
    auto it = f->iterate(*cache_, "", "");
    if (!it.is_ok()) return raced(it.status());
    iters.push_back(std::move(it.value()));
  }
  MergingCellIterator merged(std::move(iters));

  StoreFileWriter writer(store_block_bytes_);
  std::size_t kept = 0, dropped = 0;
  while (merged.valid()) {
    const std::string row = merged.cell().row;
    const std::string column = merged.cell().column;
    // Clip to the region's range: referenced parent files carry the sibling
    // daughter's rows too, and a daughter's own output must not re-own them.
    const bool in_range = desc_.contains(row);
    // Versions of one column arrive newest-first. Keep everything newer
    // than the prune horizon plus the newest survivor at/below it.
    // Idempotent replay can leave byte-identical cells in several input
    // files; the merge emits them adjacently and we collapse them here.
    bool survivor_taken = false;
    Timestamp prev_ts = 0;
    bool have_prev = false;
    while (merged.valid() && merged.cell().row == row && merged.cell().column == column) {
      const Cell& c = merged.cell();
      if (have_prev && c.ts == prev_ts) {
        TFR_RETURN_IF_ERROR(raced(merged.advance()));  // duplicate across files
        continue;
      }
      prev_ts = c.ts;
      have_prev = true;
      bool keep;
      if (prune_before_ts == kNoTimestamp || c.ts > prune_before_ts) {
        keep = true;
      } else if (!survivor_taken) {
        survivor_taken = true;
        keep = !c.tombstone;  // a tombstone survivor means: fully deleted
      } else {
        keep = false;
      }
      if (keep && in_range) {
        writer.add(c);
        ++kept;
      } else {
        ++dropped;
      }
      TFR_RETURN_IF_ERROR(raced(merged.advance()));
    }
  }

  std::string path;
  {
    MutexLock lock(mutex_);
    path = data_dir() + "sf-" + std::to_string(next_file_id_++);
  }
  TFR_RETURN_IF_ERROR(finalize_store_file(writer, path));
  auto reader = StoreFileReader::open(*dfs_, path);
  if (!reader.is_ok()) return reader.status();

  std::vector<std::string> obsolete_markers;
  {
    MutexLock lock(mutex_);
    // A split/merge/move fenced this region mid-compaction: the inputs now
    // belong to the successor (daughter ref markers or the new host), so
    // deleting them — or even our own just-renamed output, which the
    // successor may already have listed and attached as an extra
    // (idempotent-duplicate) store file — is off the table. Leak the
    // output; the janitor reclaims it with the retired dir.
    if (state_.load(std::memory_order_acquire) == RegionState::kOffline) {
      return Status::unavailable("region went offline mid-compaction: " + name());
    }
    // A flush that landed mid-compaction added a file we have not merged;
    // bail out (the new merged file is discarded) and let the caller retry.
    if (files_.size() != inputs.size() ||
        !std::equal(files_.begin(), files_.end(), inputs.begin())) {
      TFR_IGNORE_STATUS(dfs_->remove(path),
                        "discarding the unmerged compaction output; it was never attached, an "
                        "orphan only wastes space");
      return Status::unavailable("compaction raced a flush on " + name());
    }
    for (const auto& f : files_) {
      auto ref = ref_markers_.find(f->path());
      if (ref == ref_markers_.end()) {
        // Replaced input we own: delete it when the last reference drops.
        // In the common case that is right here (our `inputs` copy at scope
        // exit); under a racing get/scan/compaction that snapshotted files_,
        // the reader keeps the file alive until that operation finishes.
        f->remove_on_last_ref(cache_);
      } else {
        // Inherited input: drop only OUR marker. The referenced parent file
        // stays — the sibling daughter may still read through it; the
        // master's janitor deletes the parent dir once no marker anywhere
        // references it.
        obsolete_markers.push_back(ref->second);
      }
    }
    ref_markers_.clear();
    files_.clear();
    files_.push_back(reader.value());
  }
  for (const auto& m : obsolete_markers) {
    TFR_IGNORE_STATUS(dfs_->remove(m),
                      "the inherited data was just rewritten locally; a leftover marker only "
                      "delays the janitor's parent-dir reclaim, it cannot corrupt reads");
  }
  TFR_LOG(INFO, "region") << name() << " compacted " << inputs.size() << " files -> 1 ("
                          << kept << " cells kept, " << dropped << " pruned)";
  return Status::ok();
}

Result<std::vector<Cell>> Region::dump_cells() {
  std::vector<std::shared_ptr<StoreFileReader>> files;
  std::vector<Cell> mem;
  {
    MutexLock lock(mutex_);
    files = files_;
    mem = memstore_.snapshot();
  }
  std::vector<std::unique_ptr<CellIterator>> iters;
  iters.reserve(files.size() + 1);
  iters.push_back(std::make_unique<VectorCellIterator>(std::move(mem)));
  for (const auto& f : files) {
    auto it = f->iterate(*cache_, "", "");
    if (!it.is_ok()) return it.status();
    iters.push_back(std::move(it.value()));
  }
  MergingCellIterator merged(std::move(iters));
  // The merge emits duplicates (identical cells replayed into several
  // sources) adjacently; collapse them as the stream drains. Out-of-range
  // rows (a referenced parent file's sibling share) are dropped.
  std::vector<Cell> out;
  while (merged.valid()) {
    const Cell& c = merged.cell();
    if (desc_.contains(c.row) &&
        (out.empty() || out.back().row != c.row || out.back().column != c.column ||
         out.back().ts != c.ts)) {
      out.push_back(c);
    }
    TFR_RETURN_IF_ERROR(merged.advance());
  }
  return out;
}

Result<std::string> Region::choose_split_key() {
  std::vector<std::shared_ptr<StoreFileReader>> files;
  {
    MutexLock lock(mutex_);
    files = files_;
  }
  // Prefer pure metadata: the midpoint block boundary of the largest
  // multi-block store file (format-v2 index — no block reads). Single-block
  // files have no interior boundary, and a midpoint outside (start, end)
  // would make a degenerate daughter; such files fall through.
  std::stable_sort(files.begin(), files.end(),
                   [](const std::shared_ptr<StoreFileReader>& a,
                      const std::shared_ptr<StoreFileReader>& b) {
                     return a->data_bytes() > b->data_bytes();
                   });
  for (const auto& f : files) {
    if (f->block_count() < 2) continue;
    const std::string mid = f->midpoint_row();
    if (mid > desc_.start_key && desc_.contains(mid)) return mid;
  }
  // Small or v1-only regions: the median distinct row of a full
  // (range-clipped) dump. With at least two distinct rows the median
  // differs from the smallest row, so both daughters are non-degenerate.
  auto cells = dump_cells();
  if (!cells.is_ok()) return cells.status();
  std::vector<std::string> rows;
  for (const auto& c : cells.value()) {
    if (rows.empty() || rows.back() != c.row) rows.push_back(c.row);
  }
  if (rows.size() < 2) {
    return Status::invalid_argument("region " + name() +
                                    " holds fewer than two rows; nothing to split");
  }
  return rows[rows.size() / 2];
}

std::vector<std::string> Region::store_file_paths() const {
  MutexLock lock(mutex_);
  std::vector<std::string> paths;
  paths.reserve(files_.size());
  for (const auto& f : files_) paths.push_back(f->path());
  return paths;
}

bool Region::has_references() const {
  MutexLock lock(mutex_);
  return !ref_markers_.empty();
}

std::uint64_t Region::store_bytes() const {
  MutexLock lock(mutex_);
  std::uint64_t total = memstore_.byte_size();
  for (const auto& f : files_) total += f->data_bytes();
  return total;
}

std::size_t Region::memstore_bytes() const {
  MutexLock lock(mutex_);
  return memstore_.byte_size();
}

std::size_t Region::store_file_count() const {
  MutexLock lock(mutex_);
  return files_.size();
}

}  // namespace tfr
