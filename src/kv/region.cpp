#include "src/kv/region.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace tfr {

std::string_view region_state_name(RegionState s) {
  switch (s) {
    case RegionState::kOpening: return "opening";
    case RegionState::kGated: return "gated";
    case RegionState::kOnline: return "online";
    case RegionState::kOffline: return "offline";
  }
  return "?";
}

namespace {
/// DFS paths may not love arbitrary key bytes; region names are restricted
/// to printable benchmark keys, so a simple substitution suffices.
std::string sanitize(std::string name) {
  for (auto& c : name) {
    if (c == '/' || c == ' ') c = '_';
  }
  return name;
}
}  // namespace

Region::Region(RegionDescriptor desc, Dfs& dfs, BlockCache& cache,
               std::size_t store_block_bytes)
    : desc_(std::move(desc)), dfs_(&dfs), cache_(&cache),
      store_block_bytes_(store_block_bytes) {}

std::string Region::data_dir() const { return "/data/" + sanitize(desc_.name()) + "/"; }

Status Region::load_store_files() {
  MutexLock lock(mutex_);
  files_.clear();
  // Store files are numbered; open newest-last and order newest-first.
  auto paths = dfs_->list(data_dir());
  std::sort(paths.begin(), paths.end());
  std::uint64_t max_id = 0;
  for (const auto& p : paths) {
    auto reader = StoreFileReader::open(*dfs_, p);
    if (!reader.is_ok()) return reader.status();
    files_.insert(files_.begin(), reader.value());
    // Path suffix is the numeric file id.
    const auto pos = p.rfind("sf-");
    if (pos != std::string::npos) {
      max_id = std::max<std::uint64_t>(max_id, std::strtoull(p.c_str() + pos + 3, nullptr, 10));
    }
  }
  next_file_id_ = max_id + 1;
  return Status::ok();
}

void Region::apply(const std::vector<Cell>& cells, std::uint64_t wal_seq) {
  MutexLock lock(mutex_);
  for (const auto& c : cells) memstore_.apply(c);
  if (wal_seq != 0 && min_unflushed_wal_seq_ == 0) min_unflushed_wal_seq_ = wal_seq;
}

std::uint64_t Region::min_unflushed_wal_seq() const {
  MutexLock lock(mutex_);
  return min_unflushed_wal_seq_;
}

Result<std::optional<Cell>> Region::get(const std::string& row, const std::string& column,
                                        Timestamp read_ts) {
  std::optional<Cell> best;
  std::vector<std::shared_ptr<StoreFileReader>> files;
  {
    MutexLock lock(mutex_);
    best = memstore_.get(row, column, read_ts);
    files = files_;  // cheap shared_ptr copies; DFS reads happen unlocked
  }
  for (const auto& f : files) {
    if (best && f->max_ts() <= best->ts) continue;  // cannot contain a newer version
    auto from_file = f->get(*cache_, row, column, read_ts);
    if (!from_file.is_ok()) return from_file.status();
    if (from_file.value() && (!best || from_file.value()->ts > best->ts)) {
      best = from_file.value();
    }
  }
  if (best && best->tombstone) best.reset();
  return best;
}

Result<std::vector<Cell>> Region::scan(const std::string& start, const std::string& end,
                                       Timestamp read_ts, std::size_t limit) {
  std::vector<Cell> mem;
  std::vector<std::shared_ptr<StoreFileReader>> files;
  {
    MutexLock lock(mutex_);
    mem = memstore_.scan(start, end, read_ts);
    files = files_;
  }
  // Merge, keeping the newest visible version per (row, column).
  std::map<std::pair<std::string, std::string>, Cell> merged;
  auto absorb = [&](const Cell& c) {
    auto key = std::make_pair(c.row, c.column);
    auto it = merged.find(key);
    if (it == merged.end() || c.ts > it->second.ts) merged[key] = c;
  };
  for (const auto& c : mem) absorb(c);
  for (const auto& f : files) {
    auto cells = f->scan(*cache_, start, end, read_ts);
    if (!cells.is_ok()) return cells.status();
    for (const auto& c : cells.value()) absorb(c);
  }
  std::vector<Cell> out;
  std::string last_row;
  std::size_t rows = 0;
  for (auto& [key, c] : merged) {
    if (c.tombstone) continue;
    if (c.row != last_row) {
      if (limit != 0 && rows == limit) break;
      ++rows;
      last_row = c.row;
    }
    out.push_back(std::move(c));
  }
  return out;
}

Status Region::finalize_store_file(StoreFileWriter& writer, const std::string& path) {
  if (epochs_ == nullptr) return writer.finish(*dfs_, path);
  // Write to a tmp path outside the data dir (a half-written tmp file left
  // by a crashed owner must never be picked up by load_store_files), then
  // re-check our epoch and rename into the live namespace. The rename is
  // the commit point: a finalize racing the master's fence either renames
  // before the new owner attached files (its data is simply a valid extra
  // store file of the old epoch's admitted writes) or is rejected here.
  const std::string tmp = "/tmp" + path;
  TFR_RETURN_IF_ERROR(writer.finish(*dfs_, tmp));
  Status fence = epochs_->validate(name(), epoch());
  if (fence.is_ok()) fence = dfs_->rename(tmp, path);
  if (!fence.is_ok()) {
    (void)dfs_->remove(tmp);
    if (fence.is_wrong_epoch()) {
      static Counter& rejects = global_counter("kv.epoch_rejects");
      rejects.add();
      TFR_LOG(WARN, "region") << name() << " store-file finalize fenced: " << fence;
    }
  }
  return fence;
}

Status Region::flush_memstore() {
  MutexLock lock(mutex_);
  if (memstore_.cell_count() == 0) return Status::ok();
  StoreFileWriter writer(store_block_bytes_);
  for (const auto& c : memstore_.snapshot()) writer.add(c);
  const std::string path = data_dir() + "sf-" + std::to_string(next_file_id_++);
  TFR_RETURN_IF_ERROR(finalize_store_file(writer, path));
  auto reader = StoreFileReader::open(*dfs_, path);
  if (!reader.is_ok()) return reader.status();
  files_.insert(files_.begin(), reader.value());
  TFR_LOG(DEBUG, "region") << name() << " flushed " << memstore_.cell_count() << " cells to "
                           << path;
  memstore_.clear();
  // Everything this region had in the WAL is now in a durable store file.
  min_unflushed_wal_seq_ = 0;
  return Status::ok();
}

namespace {
/// Memstore ordering for merged cell sets: (row, column, ts desc).
struct CellOrder {
  bool operator()(const Cell& a, const Cell& b) const {
    if (a.row != b.row) return a.row < b.row;
    if (a.column != b.column) return a.column < b.column;
    return a.ts > b.ts;
  }
};
}  // namespace

Status Region::compact(Timestamp prune_before_ts) {
  // Snapshot the immutable inputs, merge outside the lock, then swap in the
  // result only if no flush changed the file set meanwhile.
  std::vector<std::shared_ptr<StoreFileReader>> inputs;
  {
    MutexLock lock(mutex_);
    if (files_.size() < 2) return Status::ok();
    inputs = files_;
  }

  std::set<Cell, CellOrder> merged;
  for (const auto& f : inputs) {
    auto cells = f->all_cells(*cache_);
    if (!cells.is_ok()) return cells.status();
    for (auto& c : cells.value()) merged.insert(std::move(c));
  }

  StoreFileWriter writer(store_block_bytes_);
  std::size_t kept = 0, dropped = 0;
  auto it = merged.begin();
  while (it != merged.end()) {
    const std::string& row = it->row;
    const std::string& column = it->column;
    // Versions of one column arrive newest-first. Keep everything newer
    // than the prune horizon plus the newest survivor at/below it.
    bool survivor_taken = false;
    for (; it != merged.end() && it->row == row && it->column == column; ++it) {
      bool keep;
      if (prune_before_ts == kNoTimestamp || it->ts > prune_before_ts) {
        keep = true;
      } else if (!survivor_taken) {
        survivor_taken = true;
        keep = !it->tombstone;  // a tombstone survivor means: fully deleted
      } else {
        keep = false;
      }
      if (keep) {
        writer.add(*it);
        ++kept;
      } else {
        ++dropped;
      }
    }
  }

  std::string path;
  {
    MutexLock lock(mutex_);
    path = data_dir() + "sf-" + std::to_string(next_file_id_++);
  }
  TFR_RETURN_IF_ERROR(finalize_store_file(writer, path));
  auto reader = StoreFileReader::open(*dfs_, path);
  if (!reader.is_ok()) return reader.status();

  std::vector<std::string> obsolete;
  {
    MutexLock lock(mutex_);
    // A flush that landed mid-compaction added a file we have not merged;
    // bail out (the new merged file is discarded) and let the caller retry.
    if (files_.size() != inputs.size() ||
        !std::equal(files_.begin(), files_.end(), inputs.begin())) {
      (void)dfs_->remove(path);
      return Status::unavailable("compaction raced a flush on " + name());
    }
    for (const auto& f : files_) obsolete.push_back(f->path());
    files_.clear();
    files_.push_back(reader.value());
  }
  for (const auto& p : obsolete) {
    (void)dfs_->remove(p);
    cache_->invalidate_prefix(p + "#");
  }
  TFR_LOG(INFO, "region") << name() << " compacted " << inputs.size() << " files -> 1 ("
                          << kept << " cells kept, " << dropped << " pruned)";
  return Status::ok();
}

Result<std::vector<Cell>> Region::dump_cells() {
  std::vector<std::shared_ptr<StoreFileReader>> files;
  std::vector<Cell> mem;
  {
    MutexLock lock(mutex_);
    files = files_;
    mem = memstore_.snapshot();
  }
  std::set<Cell, CellOrder> merged(mem.begin(), mem.end());
  for (const auto& f : files) {
    auto cells = f->all_cells(*cache_);
    if (!cells.is_ok()) return cells.status();
    for (auto& c : cells.value()) merged.insert(std::move(c));
  }
  return std::vector<Cell>(merged.begin(), merged.end());
}

std::size_t Region::memstore_bytes() const {
  MutexLock lock(mutex_);
  return memstore_.byte_size();
}

std::size_t Region::store_file_count() const {
  MutexLock lock(mutex_);
  return files_.size();
}

}  // namespace tfr
