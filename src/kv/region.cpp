#include "src/kv/region.h"

#include <algorithm>
#include <map>

#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace tfr {

std::string_view region_state_name(RegionState s) {
  switch (s) {
    case RegionState::kOpening: return "opening";
    case RegionState::kGated: return "gated";
    case RegionState::kOnline: return "online";
    case RegionState::kOffline: return "offline";
  }
  return "?";
}

namespace {
/// DFS paths may not love arbitrary key bytes; region names are restricted
/// to printable benchmark keys, so a simple substitution suffices.
std::string sanitize(std::string name) {
  for (auto& c : name) {
    if (c == '/' || c == ' ') c = '_';
  }
  return name;
}
}  // namespace

Region::Region(RegionDescriptor desc, Dfs& dfs, BlockCache& cache,
               std::size_t store_block_bytes)
    : desc_(std::move(desc)), dfs_(&dfs), cache_(&cache),
      store_block_bytes_(store_block_bytes) {}

std::string Region::data_dir() const { return "/data/" + sanitize(desc_.name()) + "/"; }

Status Region::load_store_files() {
  MutexLock lock(mutex_);
  files_.clear();
  // Store files are numbered; open in path order (oldest first) and flip
  // once at the end — front-inserting each file would be quadratic in the
  // file count.
  auto paths = dfs_->list(data_dir());
  std::sort(paths.begin(), paths.end());
  std::uint64_t max_id = 0;
  for (const auto& p : paths) {
    auto reader = StoreFileReader::open(*dfs_, p);
    if (!reader.is_ok()) return reader.status();
    files_.push_back(reader.value());
    // Path suffix is the numeric file id.
    const auto pos = p.rfind("sf-");
    if (pos != std::string::npos) {
      max_id = std::max<std::uint64_t>(max_id, std::strtoull(p.c_str() + pos + 3, nullptr, 10));
    }
  }
  std::reverse(files_.begin(), files_.end());  // newest first
  next_file_id_ = max_id + 1;
  return Status::ok();
}

void Region::apply(const std::vector<Cell>& cells, std::uint64_t wal_seq) {
  MutexLock lock(mutex_);
  for (const auto& c : cells) memstore_.apply(c);
  if (wal_seq != 0 && min_unflushed_wal_seq_ == 0) min_unflushed_wal_seq_ = wal_seq;
}

std::uint64_t Region::min_unflushed_wal_seq() const {
  MutexLock lock(mutex_);
  return min_unflushed_wal_seq_;
}

Result<std::optional<Cell>> Region::get(const std::string& row, const std::string& column,
                                        Timestamp read_ts) {
  std::optional<Cell> best;
  std::vector<std::shared_ptr<StoreFileReader>> files;
  {
    MutexLock lock(mutex_);
    best = memstore_.get(row, column, read_ts);
    files = files_;  // cheap shared_ptr copies; DFS reads happen unlocked
  }
  for (const auto& f : files) {
    // `<=` is deliberate: a file with max_ts == best->ts cannot hold a
    // version that beats `best`. A strictly newer version would need
    // ts > max_ts, which the file cannot contain; and a same-ts version of
    // the same (row, column) can only be a byte-identical duplicate,
    // because commit timestamps are unique per transaction and a
    // transaction writes a cell at most once — duplicates across files
    // arise only from idempotent replay (see the GetDuplicateCellAcross
    // Files regression test). Skipping the tie therefore never changes the
    // result, only saves the block fetch.
    if (best && f->max_ts() <= best->ts) continue;
    auto from_file = f->get(*cache_, row, column, read_ts);
    if (!from_file.is_ok()) return from_file.status();
    if (from_file.value() && (!best || from_file.value()->ts > best->ts)) {
      best = from_file.value();
    }
  }
  if (best && best->tombstone) best.reset();
  return best;
}

Result<std::vector<Cell>> Region::scan(const std::string& start, const std::string& end,
                                       Timestamp read_ts, std::size_t limit) {
  if (!read_path_flags().streaming_scan.load(std::memory_order_relaxed)) {
    return scan_legacy(start, end, read_ts, limit);
  }
  // Streaming path: snapshot the memstore's slice and the file list under
  // the lock, then merge lazily — block fetches happen outside the lock and
  // stop as soon as `limit` rows are complete.
  std::vector<Cell> mem;
  std::vector<std::shared_ptr<StoreFileReader>> files;
  {
    MutexLock lock(mutex_);
    mem = memstore_.range_snapshot(start, end);
    files = files_;
  }
  std::vector<std::unique_ptr<CellIterator>> iters;
  iters.reserve(files.size() + 1);
  // Newest source first (memstore, then files newest-first): merge ties on
  // identical (row, column, ts) resolve deterministically to the newest.
  iters.push_back(std::make_unique<VectorCellIterator>(std::move(mem)));
  for (const auto& f : files) {
    if (!f->range_overlaps(start, end)) {
      static Counter& range_skips = global_counter("kv.sf_range_skips");
      range_skips.add();
      continue;
    }
    auto it = f->iterate(*cache_, start, end);
    if (!it.is_ok()) return it.status();
    iters.push_back(std::move(it.value()));
  }
  MergingCellIterator merged(std::move(iters));
  std::vector<Cell> out;
  TFR_RETURN_IF_ERROR(collect_visible(merged, read_ts, limit, &out));
  return out;
}

Result<std::vector<Cell>> Region::scan_legacy(const std::string& start, const std::string& end,
                                              Timestamp read_ts, std::size_t limit) {
  // Pre-streaming read path, kept for the bench_read A/B flag and as a
  // cross-check oracle in the read-path property test: materialize every
  // matching cell from every source, merge in a map, then apply the limit.
  std::vector<Cell> mem;
  std::vector<std::shared_ptr<StoreFileReader>> files;
  {
    MutexLock lock(mutex_);
    mem = memstore_.scan(start, end, read_ts);
    files = files_;
  }
  std::map<std::pair<std::string, std::string>, Cell> merged;
  auto absorb = [&](const Cell& c) {
    auto key = std::make_pair(c.row, c.column);
    auto it = merged.find(key);
    if (it == merged.end() || c.ts > it->second.ts) merged[key] = c;
  };
  for (const auto& c : mem) absorb(c);
  for (const auto& f : files) {
    auto cells = f->scan(*cache_, start, end, read_ts);
    if (!cells.is_ok()) return cells.status();
    for (const auto& c : cells.value()) absorb(c);
  }
  std::vector<Cell> out;
  std::string last_row;
  std::size_t rows = 0;
  for (auto& [key, c] : merged) {
    if (c.tombstone) continue;
    if (c.row != last_row) {
      if (limit != 0 && rows == limit) break;
      ++rows;
      last_row = c.row;
    }
    out.push_back(std::move(c));
  }
  return out;
}

Status Region::finalize_store_file(StoreFileWriter& writer, const std::string& path) {
  TFR_BLOCKING_POINT("region.finalize_store_file");
  if (epochs_ == nullptr) return writer.finish(*dfs_, path);
  // Write to a tmp path outside the data dir (a half-written tmp file left
  // by a crashed owner must never be picked up by load_store_files), then
  // re-check our epoch and rename into the live namespace. The rename is
  // the commit point: a finalize racing the master's fence either renames
  // before the new owner attached files (its data is simply a valid extra
  // store file of the old epoch's admitted writes) or is rejected here.
  const std::string tmp = "/tmp" + path;
  TFR_RETURN_IF_ERROR(writer.finish(*dfs_, tmp));
  Status fence = epochs_->validate(name(), epoch());
  if (fence.is_ok()) fence = dfs_->rename(tmp, path);
  if (!fence.is_ok()) {
    TFR_IGNORE_STATUS(dfs_->remove(tmp),
                      "tmp cleanup after a failed finalize; /tmp is outside the data dir and "
                      "never loaded, an orphan only wastes space");
    if (fence.is_wrong_epoch()) {
      static Counter& rejects = global_counter("kv.epoch_rejects");
      rejects.add();
      TFR_LOG(WARN, "region") << name() << " store-file finalize fenced: " << fence;
    }
  }
  return fence;
}

Status Region::flush_memstore() {
  MutexLock lock(mutex_);
  if (memstore_.cell_count() == 0) return Status::ok();
  StoreFileWriter writer(store_block_bytes_);
  for (const auto& c : memstore_.snapshot()) writer.add(c);
  const std::string path = data_dir() + "sf-" + std::to_string(next_file_id_++);
  // tfr-lint: blocking-ok(region lock held across the DFS write by design — writes must
  // not land between snapshot and swap; kRegion is may_block=true in the rank table)
  TFR_RETURN_IF_ERROR(finalize_store_file(writer, path));
  auto reader = StoreFileReader::open(*dfs_, path);
  if (!reader.is_ok()) return reader.status();
  files_.insert(files_.begin(), reader.value());
  TFR_LOG(DEBUG, "region") << name() << " flushed " << memstore_.cell_count() << " cells to "
                           << path;
  memstore_.clear();
  // Everything this region had in the WAL is now in a durable store file.
  min_unflushed_wal_seq_ = 0;
  return Status::ok();
}

Status Region::compact(Timestamp prune_before_ts) {
  // Snapshot the immutable inputs, merge outside the lock, then swap in the
  // result only if no flush changed the file set meanwhile. The merge
  // streams block-by-block through the shared iterators, so peak memory is
  // O(block) per input file instead of O(region).
  std::vector<std::shared_ptr<StoreFileReader>> inputs;
  {
    MutexLock lock(mutex_);
    if (files_.size() < 2) return Status::ok();
    inputs = files_;
  }

  std::vector<std::unique_ptr<CellIterator>> iters;
  iters.reserve(inputs.size());
  for (const auto& f : inputs) {
    auto it = f->iterate(*cache_, "", "");
    if (!it.is_ok()) return it.status();
    iters.push_back(std::move(it.value()));
  }
  MergingCellIterator merged(std::move(iters));

  StoreFileWriter writer(store_block_bytes_);
  std::size_t kept = 0, dropped = 0;
  while (merged.valid()) {
    const std::string row = merged.cell().row;
    const std::string column = merged.cell().column;
    // Versions of one column arrive newest-first. Keep everything newer
    // than the prune horizon plus the newest survivor at/below it.
    // Idempotent replay can leave byte-identical cells in several input
    // files; the merge emits them adjacently and we collapse them here.
    bool survivor_taken = false;
    Timestamp prev_ts = 0;
    bool have_prev = false;
    while (merged.valid() && merged.cell().row == row && merged.cell().column == column) {
      const Cell& c = merged.cell();
      if (have_prev && c.ts == prev_ts) {
        TFR_RETURN_IF_ERROR(merged.advance());  // duplicate across files
        continue;
      }
      prev_ts = c.ts;
      have_prev = true;
      bool keep;
      if (prune_before_ts == kNoTimestamp || c.ts > prune_before_ts) {
        keep = true;
      } else if (!survivor_taken) {
        survivor_taken = true;
        keep = !c.tombstone;  // a tombstone survivor means: fully deleted
      } else {
        keep = false;
      }
      if (keep) {
        writer.add(c);
        ++kept;
      } else {
        ++dropped;
      }
      TFR_RETURN_IF_ERROR(merged.advance());
    }
  }

  std::string path;
  {
    MutexLock lock(mutex_);
    path = data_dir() + "sf-" + std::to_string(next_file_id_++);
  }
  TFR_RETURN_IF_ERROR(finalize_store_file(writer, path));
  auto reader = StoreFileReader::open(*dfs_, path);
  if (!reader.is_ok()) return reader.status();

  std::vector<std::string> obsolete;
  {
    MutexLock lock(mutex_);
    // A flush that landed mid-compaction added a file we have not merged;
    // bail out (the new merged file is discarded) and let the caller retry.
    if (files_.size() != inputs.size() ||
        !std::equal(files_.begin(), files_.end(), inputs.begin())) {
      TFR_IGNORE_STATUS(dfs_->remove(path),
                        "discarding the unmerged compaction output; it was never attached, an "
                        "orphan only wastes space");
      return Status::unavailable("compaction raced a flush on " + name());
    }
    for (const auto& f : files_) obsolete.push_back(f->path());
    files_.clear();
    files_.push_back(reader.value());
  }
  for (const auto& p : obsolete) {
    TFR_IGNORE_STATUS(dfs_->remove(p),
                      "obsolete input already detached from files_; a leaked store file is "
                      "unreferenced and harmless");
    cache_->invalidate_prefix(p + "#");
  }
  TFR_LOG(INFO, "region") << name() << " compacted " << inputs.size() << " files -> 1 ("
                          << kept << " cells kept, " << dropped << " pruned)";
  return Status::ok();
}

Result<std::vector<Cell>> Region::dump_cells() {
  std::vector<std::shared_ptr<StoreFileReader>> files;
  std::vector<Cell> mem;
  {
    MutexLock lock(mutex_);
    files = files_;
    mem = memstore_.snapshot();
  }
  std::vector<std::unique_ptr<CellIterator>> iters;
  iters.reserve(files.size() + 1);
  iters.push_back(std::make_unique<VectorCellIterator>(std::move(mem)));
  for (const auto& f : files) {
    auto it = f->iterate(*cache_, "", "");
    if (!it.is_ok()) return it.status();
    iters.push_back(std::move(it.value()));
  }
  MergingCellIterator merged(std::move(iters));
  // The merge emits duplicates (identical cells replayed into several
  // sources) adjacently; collapse them as the stream drains.
  std::vector<Cell> out;
  while (merged.valid()) {
    const Cell& c = merged.cell();
    if (out.empty() || out.back().row != c.row || out.back().column != c.column ||
        out.back().ts != c.ts) {
      out.push_back(c);
    }
    TFR_RETURN_IF_ERROR(merged.advance());
  }
  return out;
}

std::size_t Region::memstore_bytes() const {
  MutexLock lock(mutex_);
  return memstore_.byte_size();
}

std::size_t Region::store_file_count() const {
  MutexLock lock(mutex_);
  return files_.size();
}

}  // namespace tfr
