// KvClient — the embedded (non-transactional) store client: routing via the
// master, plus the flush protocol for committed write-sets.
//
// The flush of a write-set "is usually a non-atomic operation" (§2.2): a
// write-set may span several servers and is sent as one ApplyRequest per
// participant. A server failure interrupts the flush; the client then
// "retries, multiple times, to flush the remaining part of the write-set to
// the target regions ... we remove the retry and timeout limits so that the
// client keeps retrying until it succeeds" (§3.2). flush_writeset implements
// exactly that loop.
// Routing: clients cache the master's region locations (the routing table,
// §2.1) and re-locate only on a staleness signal — an Unavailable (region
// not serving / row not hosted, e.g. after a split, merge or move) or a
// WrongEpoch from a fenced stale owner. The cache invalidates the covering
// entry and the next attempt fetches the fresh assignment; retry pacing
// stays with the caller's shared Backoff, so a stale route never spins.
#pragma once

#include <atomic>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/kv/master.h"
#include "src/kv/types.h"

namespace tfr {

struct KvClientStats {
  std::int64_t flush_rpcs = 0;
  std::int64_t flush_retries = 0;
  std::int64_t read_retries = 0;
  std::int64_t route_hits = 0;
  std::int64_t route_misses = 0;
  std::int64_t route_invalidations = 0;
};

class KvClient {
 public:
  /// `retry_backoff`: base of the jittered exponential backoff between
  /// retries (full jitter, ceiling doubling per attempt, capped at 32x —
  /// see common/backoff.h).
  explicit KvClient(Master& master, Micros retry_backoff = millis(5));

  /// Identity announced as `caller` on reads (and already carried by write
  /// sets as `client_id`), so partition rules can match this client.
  void set_client_id(std::string id) { client_id_ = std::move(id); }

  /// Flush a committed write-set to all participant servers. Retries
  /// indefinitely across server failures and region moves; returns only
  /// when every participant has received and applied its slice, or with
  /// InvalidArgument for malformed input.
  ///
  /// `piggyback_tp` / `recovery_replay` are used by the recovery client
  /// (§3.2) and left unset by regular clients.
  /// `cancel`, when non-null and set, aborts the retry loop with Closed —
  /// used to simulate a client process dying mid-flush.
  Status flush_writeset(const WriteSet& ws, std::optional<Timestamp> piggyback_tp = std::nullopt,
                        bool recovery_replay = false,
                        const std::atomic<bool>* cancel = nullptr);

  /// Flush several committed write-sets together (the pipelined flush
  /// path): all slices bound for the same server travel in ONE
  /// BatchApplyRequest RPC per retry round, instead of one RPC per
  /// write-set per server. Same termination contract as flush_writeset —
  /// retries indefinitely, returns Ok only when EVERY write-set is fully
  /// applied, Closed on cancel. Per-slice Unavailable/WrongEpoch outcomes
  /// only re-queue that write-set's slice, so one moving region does not
  /// stall the rest of the batch.
  Status flush_writesets(const std::vector<WriteSet>& batch,
                         const std::atomic<bool>* cancel = nullptr);

  /// Snapshot read. Retries through failovers until the row's region is
  /// online again; `max_retries` = 0 means retry forever.
  Result<std::optional<Cell>> get(const std::string& table, const std::string& row,
                                  const std::string& column, Timestamp read_ts,
                                  int max_retries = 0);

  Result<std::vector<Cell>> scan(const std::string& table, const std::string& start,
                                 const std::string& end, Timestamp read_ts, std::size_t limit,
                                 int max_retries = 0);

  KvClientStats stats() const;

 private:
  /// Cached-routing locate: probe the routing table first, fall back to the
  /// master on a miss and cache the answer. The master RPC runs with the
  /// routing lock released (it is a leaf, may_block = false).
  Result<RegionLocation> locate(const std::string& table, const std::string& row);

  /// Drop the cached route covering `row` after a staleness signal
  /// (Unavailable / WrongEpoch); the next locate re-fetches.
  void invalidate_route(const std::string& table, const std::string& row);

  Master* master_;
  Micros retry_backoff_;
  std::string client_id_;
  std::atomic<std::int64_t> flush_rpcs_{0};
  std::atomic<std::int64_t> flush_retries_{0};
  std::atomic<std::int64_t> read_retries_{0};
  std::atomic<std::int64_t> route_hits_{0};
  std::atomic<std::int64_t> route_misses_{0};
  std::atomic<std::int64_t> route_invalidations_{0};

  mutable RankedMutex<LockRank::kClientRouting> routes_mutex_{"kv_client.routes"};
  /// table -> region start_key -> location. Regions of a table never
  /// overlap, so the entry at upper_bound(row)-1 is the only candidate;
  /// entries staled by a split/merge/move are evicted on insert (range
  /// overlap) or on the staleness signal.
  std::map<std::string, std::map<std::string, RegionLocation>> routes_
      TFR_GUARDED_BY(routes_mutex_);
};

}  // namespace tfr
