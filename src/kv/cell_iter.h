// Streaming cell iterators — the spine of the read path.
//
// Region reads used to materialize every matching cell from every source
// (memstore + each store file) into a map and only then apply the row
// limit; a limit=10 scan over a large region decoded the whole region. The
// iterator pipeline replaces that: each source yields its cells lazily in
// (row, column, ts desc) order, a k-way heap merge interleaves them into
// one globally sorted stream, and the visibility driver resolves the
// newest-visible version per (row, column) on the fly, stopping after
// `limit` rows — so a bounded scan decodes O(limit) blocks, not O(region).
//
// The same merge feeds compaction and region dumps, which drops their peak
// memory from O(region) (a std::set of every cell) to O(block).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/kv/types.h"

namespace tfr {

/// One sorted stream of cells in (row, column, ts desc) order. Iterators
/// are created positioned on their first cell (valid() false for an empty
/// stream); advance() moves to the next and surfaces I/O errors (a failed
/// block fetch invalidates the iterator and returns the failure).
class CellIterator {
 public:
  virtual ~CellIterator() = default;

  virtual bool valid() const = 0;

  /// The current cell; only meaningful while valid().
  virtual const Cell& cell() const = 0;

  virtual Status advance() = 0;
};

/// (row, column, ts desc) — the global sort order every source emits.
inline bool cell_before(const Cell& a, const Cell& b) {
  if (a.row != b.row) return a.row < b.row;
  if (a.column != b.column) return a.column < b.column;
  return a.ts > b.ts;
}

/// Iterator over an already-materialized sorted vector (memstore range
/// snapshots, tests).
class VectorCellIterator : public CellIterator {
 public:
  explicit VectorCellIterator(std::vector<Cell> cells) : cells_(std::move(cells)) {}

  bool valid() const override { return pos_ < cells_.size(); }
  const Cell& cell() const override { return cells_[pos_]; }
  Status advance() override {
    ++pos_;
    return Status::ok();
  }

 private:
  std::vector<Cell> cells_;
  std::size_t pos_ = 0;
};

/// K-way heap merge of child iterators into one sorted stream. Children
/// must already be positioned; exhausted children are dropped from the
/// heap. Ties on (row, column, ts) are broken by child order — list the
/// newest source first (memstore, then files newest-first) so duplicate
/// cells (idempotent replay can land the same cell in several files)
/// surface deterministically; consumers drop the duplicates.
class MergingCellIterator : public CellIterator {
 public:
  explicit MergingCellIterator(std::vector<std::unique_ptr<CellIterator>> children);

  bool valid() const override { return !heap_.empty(); }
  const Cell& cell() const override { return heap_.front().it->cell(); }
  Status advance() override;

 private:
  struct Source {
    CellIterator* it;
    std::size_t order;  // position in the children list; lower = newer source
  };
  static bool heap_after(const Source& a, const Source& b);

  std::vector<std::unique_ptr<CellIterator>> children_;
  std::vector<Source> heap_;  // std::*_heap with heap_after: front = smallest
};

/// Drain `it` into `out`, resolving the newest version per (row, column)
/// visible at `read_ts` and suppressing tombstoned columns, until `limit`
/// distinct rows have produced at least one cell (0 = no limit). Stops
/// pulling from `it` — and therefore decoding blocks — as soon as the limit
/// row is complete. Exact duplicates from multiple sources collapse to one.
Status collect_visible(CellIterator& it, Timestamp read_ts, std::size_t limit,
                       std::vector<Cell>* out);

/// A/B switches for the streaming read path, flipped by bench_read (and
/// the read-vs-oracle property test, which cross-checks both paths).
/// Process-wide because the paths they select are stateless; production
/// never touches them and gets the new path.
struct ReadPathFlags {
  std::atomic<bool> bloom_pruning{true};   // store-file bloom skip on point gets
  std::atomic<bool> range_pruning{true};   // store-file [first,last] row-range skip
  std::atomic<bool> streaming_scan{true};  // iterator merge vs materialize-then-merge
};

ReadPathFlags& read_path_flags();

}  // namespace tfr
