#include "src/kv/cell_iter.h"

#include <algorithm>

namespace tfr {

MergingCellIterator::MergingCellIterator(std::vector<std::unique_ptr<CellIterator>> children)
    : children_(std::move(children)) {
  heap_.reserve(children_.size());
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (children_[i]->valid()) heap_.push_back(Source{children_[i].get(), i});
  }
  std::make_heap(heap_.begin(), heap_.end(), heap_after);
}

bool MergingCellIterator::heap_after(const Source& a, const Source& b) {
  // std::make_heap keeps the *largest* element (per this comparator) at the
  // front; we want the smallest cell there, so "a sorts after b".
  const Cell& ca = a.it->cell();
  const Cell& cb = b.it->cell();
  if (cell_before(cb, ca)) return true;
  if (cell_before(ca, cb)) return false;
  return a.order > b.order;  // tie: newer source (lower order) first
}

Status MergingCellIterator::advance() {
  std::pop_heap(heap_.begin(), heap_.end(), heap_after);
  CellIterator* src = heap_.back().it;
  Status s = src->advance();
  if (!s.is_ok()) {
    heap_.clear();  // poison: the merged stream cannot continue past a lost source
    return s;
  }
  if (src->valid()) {
    std::push_heap(heap_.begin(), heap_.end(), heap_after);
  } else {
    heap_.pop_back();
  }
  return Status::ok();
}

Status collect_visible(CellIterator& it, Timestamp read_ts, std::size_t limit,
                       std::vector<Cell>* out) {
  std::size_t rows_emitted = 0;
  std::string last_emitted_row;
  bool any_emitted = false;
  while (it.valid()) {
    // A (row, column) version group starts here. If the row limit is
    // reached and this group opens a new row, stop before touching it —
    // this is the early termination that keeps block decodes at O(limit).
    if (limit != 0 && rows_emitted == limit &&
        (!any_emitted || it.cell().row != last_emitted_row)) {
      break;
    }
    const std::string row = it.cell().row;
    const std::string column = it.cell().column;
    Cell chosen;
    bool taken = false;
    while (it.valid() && it.cell().row == row && it.cell().column == column) {
      if (!taken && it.cell().ts <= read_ts) {
        chosen = it.cell();
        taken = true;
      }
      TFR_RETURN_IF_ERROR(it.advance());
    }
    // Newest visible version wins; a tombstone survivor hides the column.
    if (taken && !chosen.tombstone) {
      if (!any_emitted || row != last_emitted_row) {
        ++rows_emitted;
        last_emitted_row = row;
        any_emitted = true;
      }
      out->push_back(std::move(chosen));
    }
  }
  return Status::ok();
}

ReadPathFlags& read_path_flags() {
  static ReadPathFlags flags;
  return flags;
}

}  // namespace tfr
