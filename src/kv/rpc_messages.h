// Wire formats for the client <-> region-server RPCs. The paper's system
// spoke to HBase through its RPC stack (and a C++ client would have gone
// through Thrift glue); we keep that boundary honest by actually
// marshalling every request: the server decodes the bytes it was sent, and
// the byte count feeds the network model's transfer-time accounting
// (the paper's testbed ran on 100 Mbps Ethernet, where a 1 KB write-set
// costs ~80 us on the wire).
#pragma once

#include "src/kv/region_server.h"

namespace tfr {

/// Serialize an ApplyRequest to its wire form.
std::string encode_apply_request(const ApplyRequest& req);

/// Decode the wire form; Corruption on malformed input.
Result<ApplyRequest> decode_apply_request(std::string_view wire);

/// Serialize a batch of slices: a count, then each slice as a
/// length-prefixed inner ApplyRequest frame (inner CRC intact), then an
/// outer frame checksum over the whole batch.
std::string encode_batch_apply_request(const BatchApplyRequest& batch);

/// Decode the batch wire form; Corruption on a damaged outer frame or any
/// damaged inner frame.
Result<BatchApplyRequest> decode_batch_apply_request(std::string_view wire);

/// Wire sizes of the simple read RPCs (the requests are tiny and the
/// response carries the data; both sides count).
std::size_t get_request_wire_size(const std::string& table, const std::string& row,
                                  const std::string& column);
std::size_t cell_wire_size(const Cell& cell);

/// Transfer time of `bytes` over a link of `mbps` megabits/second
/// (0 = infinitely fast network).
Micros transfer_micros(std::size_t bytes, double mbps);

}  // namespace tfr
