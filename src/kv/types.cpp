#include "src/kv/types.h"

#include <atomic>

namespace tfr {

std::uint64_t next_region_id() {
  static std::atomic<std::uint64_t> counter{0};
  return ++counter;
}

void encode_cell(Encoder& enc, const Cell& cell) {
  enc.put_string(cell.row);
  enc.put_string(cell.column);
  enc.put_string(cell.value);
  enc.put_i64(cell.ts);
  enc.put_u8(cell.tombstone ? 1 : 0);
}

Status decode_cell(Decoder& dec, Cell* cell) {
  TFR_RETURN_IF_ERROR(dec.get_string(&cell->row));
  TFR_RETURN_IF_ERROR(dec.get_string(&cell->column));
  TFR_RETURN_IF_ERROR(dec.get_string(&cell->value));
  TFR_RETURN_IF_ERROR(dec.get_i64(&cell->ts));
  std::uint8_t t = 0;
  TFR_RETURN_IF_ERROR(dec.get_u8(&t));
  cell->tombstone = (t != 0);
  return Status::ok();
}

void encode_mutation(Encoder& enc, const Mutation& m) {
  enc.put_string(m.row);
  enc.put_string(m.column);
  enc.put_string(m.value);
  enc.put_u8(m.is_delete ? 1 : 0);
}

Status decode_mutation(Decoder& dec, Mutation* m) {
  TFR_RETURN_IF_ERROR(dec.get_string(&m->row));
  TFR_RETURN_IF_ERROR(dec.get_string(&m->column));
  TFR_RETURN_IF_ERROR(dec.get_string(&m->value));
  std::uint8_t d = 0;
  TFR_RETURN_IF_ERROR(dec.get_u8(&d));
  m->is_delete = (d != 0);
  return Status::ok();
}

std::string WriteSet::encode() const {
  std::string out;
  Encoder enc(&out);
  enc.put_u64(txn_id);
  enc.put_string(client_id);
  enc.put_i64(commit_ts);
  enc.put_string(table);
  enc.put_u32(static_cast<std::uint32_t>(mutations.size()));
  for (const auto& m : mutations) encode_mutation(enc, m);
  return out;
}

Result<WriteSet> WriteSet::decode(std::string_view data) {
  Decoder dec(data);
  WriteSet ws;
  TFR_RETURN_IF_ERROR(dec.get_u64(&ws.txn_id));
  TFR_RETURN_IF_ERROR(dec.get_string(&ws.client_id));
  TFR_RETURN_IF_ERROR(dec.get_i64(&ws.commit_ts));
  TFR_RETURN_IF_ERROR(dec.get_string(&ws.table));
  std::uint32_t n = 0;
  TFR_RETURN_IF_ERROR(dec.get_u32(&n));
  ws.mutations.resize(n);
  for (auto& m : ws.mutations) TFR_RETURN_IF_ERROR(decode_mutation(dec, &m));
  return ws;
}

std::size_t WriteSet::byte_size() const {
  std::size_t n = 8 + client_id.size() + 8 + table.size() + 4;
  for (const auto& m : mutations) {
    n += m.row.size() + m.column.size() + m.value.size() + 13;
  }
  return n;
}

}  // namespace tfr
