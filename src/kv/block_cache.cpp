#include "src/kv/block_cache.h"

#include "src/common/metrics.h"

namespace tfr {

namespace {
constexpr std::size_t kDefaultShards = 16;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Process-wide gauges, shared by every cache instance (one per region
// server): soaks and benches read the fleet-wide hit rate here. bytes is
// maintained with +/- deltas so it tracks the current resident size.
Counter& cache_hits() {
  static Counter& c = global_counter("kv.cache.hits");
  return c;
}
Counter& cache_misses() {
  static Counter& c = global_counter("kv.cache.misses");
  return c;
}
Counter& cache_evictions() {
  static Counter& c = global_counter("kv.cache.evictions");
  return c;
}
Counter& cache_bytes() {
  static Counter& c = global_counter("kv.cache.bytes");
  return c;
}
Counter& cache_single_flight_waits() {
  static Counter& c = global_counter("kv.cache.single_flight_waits");
  return c;
}
}  // namespace

BlockCache::BlockCache(std::size_t capacity_bytes, std::size_t num_shards)
    : capacity_(capacity_bytes) {
  const std::size_t n = round_up_pow2(num_shards == 0 ? kDefaultShards : num_shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->capacity = capacity_bytes / n;
  }
}

BlockCache::Shard& BlockCache::shard_for(const std::string& key) const {
  return *shards_[std::hash<std::string>{}(key) & (shards_.size() - 1)];
}

Result<BlockPtr> BlockCache::get_or_load(const std::string& key,
                                         const std::function<Result<BlockPtr>()>& loader) {
  Shard& s = shard_for(key);
  {
    MutexLock lock(s.mutex);
    for (;;) {
      auto it = s.map.find(key);
      if (it != s.map.end()) {
        s.lru.splice(s.lru.begin(), s.lru, it->second.lru_it);
        ++s.stats.hits;
        cache_hits().add();
        return it->second.block;
      }
      if (s.loading.count(key) == 0) break;  // we become the loader
      // Another thread is loading this key; wait for it and re-check. On a
      // successful load we hit in the map; on a failed load the loading
      // marker is gone and we take over as the loader.
      ++s.stats.single_flight_waits;
      cache_single_flight_waits().add();
      s.load_done.wait(lock);
    }
    s.loading.insert(key);
    ++s.stats.misses;
    cache_misses().add();
  }

  // Load outside the lock: the DFS read latency must not serialize the
  // shard. Single-flight guarantees no other thread is loading this key.
  Result<BlockPtr> loaded = loader();

  MutexLock lock(s.mutex);
  s.loading.erase(key);
  s.load_done.notify_all();
  if (!loaded.is_ok()) return loaded;
  BlockPtr block = loaded.value();
  auto it = s.map.find(key);
  if (it != s.map.end()) {
    // Raced an insert (only possible via clear/invalidate interleavings);
    // keep the existing entry.
    s.lru.splice(s.lru.begin(), s.lru, it->second.lru_it);
    return it->second.block;
  }
  s.lru.push_front(key);
  s.map[key] = Shard::Entry{block, s.lru.begin()};
  s.stats.bytes += static_cast<std::int64_t>(block->byte_size);
  cache_bytes().add(static_cast<std::int64_t>(block->byte_size));
  s.evict_to_fit();
  return block;
}

void BlockCache::Shard::evict_to_fit() {
  while (stats.bytes > static_cast<std::int64_t>(capacity) && !lru.empty()) {
    const std::string& victim = lru.back();
    auto it = map.find(victim);
    if (it != map.end()) {
      stats.bytes -= static_cast<std::int64_t>(it->second.block->byte_size);
      cache_bytes().add(-static_cast<std::int64_t>(it->second.block->byte_size));
      map.erase(it);
      ++stats.evictions;
      cache_evictions().add();
    }
    lru.pop_back();
  }
}

void BlockCache::invalidate_prefix(const std::string& prefix) {
  for (auto& shard : shards_) {
    Shard& s = *shard;
    MutexLock lock(s.mutex);
    for (auto it = s.map.begin(); it != s.map.end();) {
      if (it->first.compare(0, prefix.size(), prefix) == 0) {
        s.stats.bytes -= static_cast<std::int64_t>(it->second.block->byte_size);
        cache_bytes().add(-static_cast<std::int64_t>(it->second.block->byte_size));
        s.lru.erase(it->second.lru_it);
        it = s.map.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void BlockCache::clear() {
  for (auto& shard : shards_) {
    Shard& s = *shard;
    MutexLock lock(s.mutex);
    cache_bytes().add(-s.stats.bytes);
    s.map.clear();
    s.lru.clear();
    s.stats.bytes = 0;
    // `loading` stays: in-flight loaders own their markers and will erase
    // them when they finish.
  }
}

BlockCacheStats BlockCache::stats() const {
  BlockCacheStats total;
  for (const auto& shard : shards_) {
    const Shard& s = *shard;
    MutexLock lock(s.mutex);
    total.hits += s.stats.hits;
    total.misses += s.stats.misses;
    total.evictions += s.stats.evictions;
    total.bytes += s.stats.bytes;
    total.single_flight_waits += s.stats.single_flight_waits;
  }
  return total;
}

}  // namespace tfr
