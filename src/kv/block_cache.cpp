#include "src/kv/block_cache.h"

namespace tfr {

Result<BlockPtr> BlockCache::get_or_load(const std::string& key,
                                         const std::function<Result<BlockPtr>()>& loader) {
  {
    MutexLock lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      ++stats_.hits;
      return it->second.block;
    }
    ++stats_.misses;
  }
  // Load outside the lock: concurrent misses on the same block may load it
  // twice (harmless; the second insert wins), but other keys stay unblocked.
  Result<BlockPtr> loaded = loader();
  if (!loaded.is_ok()) return loaded;
  BlockPtr block = loaded.value();
  {
    MutexLock lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.block;
    }
    lru_.push_front(key);
    map_[key] = Entry{block, lru_.begin()};
    stats_.bytes += static_cast<std::int64_t>(block->byte_size);
    evict_to_fit_locked();
  }
  return block;
}

void BlockCache::evict_to_fit_locked() {
  while (stats_.bytes > static_cast<std::int64_t>(capacity_) && !lru_.empty()) {
    const std::string& victim = lru_.back();
    auto it = map_.find(victim);
    if (it != map_.end()) {
      stats_.bytes -= static_cast<std::int64_t>(it->second.block->byte_size);
      map_.erase(it);
      ++stats_.evictions;
    }
    lru_.pop_back();
  }
}

void BlockCache::invalidate_prefix(const std::string& prefix) {
  MutexLock lock(mutex_);
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      stats_.bytes -= static_cast<std::int64_t>(it->second.block->byte_size);
      lru_.erase(it->second.lru_it);
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

void BlockCache::clear() {
  MutexLock lock(mutex_);
  map_.clear();
  lru_.clear();
  stats_.bytes = 0;
}

BlockCacheStats BlockCache::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace tfr
