#include "src/kv/memstore.h"

namespace tfr {

void Memstore::apply(const Cell& cell) {
  Key key{cell.row, cell.column, cell.ts};
  auto [it, inserted] = cells_.insert_or_assign(std::move(key), Value{cell.value, cell.tombstone});
  (void)it;
  if (inserted) bytes_ += cell.byte_size();
  if (cell.ts > max_ts_) max_ts_ = cell.ts;
}

std::optional<Cell> Memstore::get(const std::string& row, const std::string& column,
                                  Timestamp read_ts) const {
  // Keys are ordered with newer timestamps first, so the first entry at or
  // after (row, column, read_ts) is the newest version visible at read_ts.
  auto it = cells_.lower_bound(Key{row, column, read_ts});
  if (it == cells_.end() || it->first.row != row || it->first.column != column) {
    return std::nullopt;
  }
  return Cell{row, column, it->second.value, it->first.ts, it->second.tombstone};
}

std::vector<Cell> Memstore::snapshot() const {
  std::vector<Cell> out;
  out.reserve(cells_.size());
  for (const auto& [k, v] : cells_) {
    out.push_back(Cell{k.row, k.column, v.value, k.ts, v.tombstone});
  }
  return out;
}

std::vector<Cell> Memstore::scan(const std::string& start, const std::string& end,
                                 Timestamp read_ts) const {
  std::vector<Cell> out;
  auto it = cells_.lower_bound(Key{start, "", kMaxTimestamp});
  while (it != cells_.end()) {
    if (!end.empty() && it->first.row >= end) break;
    // Find the newest version of this (row, column) visible at read_ts,
    // then skip the remaining (older) versions.
    const std::string& row = it->first.row;
    const std::string& column = it->first.column;
    bool taken = false;
    while (it != cells_.end() && it->first.row == row && it->first.column == column) {
      if (!taken && it->first.ts <= read_ts) {
        out.push_back(Cell{row, column, it->second.value, it->first.ts, it->second.tombstone});
        taken = true;
      }
      ++it;
    }
  }
  return out;
}

std::vector<Cell> Memstore::range_snapshot(const std::string& start,
                                           const std::string& end) const {
  std::vector<Cell> out;
  for (auto it = cells_.lower_bound(Key{start, "", kMaxTimestamp}); it != cells_.end(); ++it) {
    if (!end.empty() && it->first.row >= end) break;
    out.push_back(Cell{it->first.row, it->first.column, it->second.value, it->first.ts,
                       it->second.tombstone});
  }
  return out;
}

void Memstore::clear() {
  cells_.clear();
  bytes_ = 0;
}

}  // namespace tfr
