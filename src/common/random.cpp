#include "src/common/random.h"

#include <cassert>
#include <cmath>

namespace tfr {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

std::uint64_t hash64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  assert(n > 0);
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

double Rng::next_exponential(double mean) {
  double u = next_double();
  if (u <= 0.0) u = 1e-12;
  return -mean * std::log(u);
}

double ZipfianChooser::zeta(std::uint64_t n, double theta) {
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

ZipfianChooser::ZipfianChooser(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  assert(n > 0);
  zetan_ = zeta(n, theta);
  zeta2theta_ = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2theta_ / zetan_);
}

std::uint64_t ZipfianChooser::next(Rng& rng) {
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto idx = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return idx >= n_ ? n_ - 1 : idx;
}

std::uint64_t ScrambledZipfianChooser::next(Rng& rng) {
  return hash64(ZipfianChooser::next(rng)) % n_;
}

std::string random_ascii(Rng& rng, std::size_t len) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  std::string out(len, '\0');
  for (auto& c : out) c = kAlphabet[rng.next_below(sizeof(kAlphabet) - 1)];
  return out;
}

}  // namespace tfr
