// FaultInjector — a seeded, deterministic fault-injection layer for the two
// I/O boundaries of the system: the client <-> region-server RPC path and
// the DFS. The paper's testbed only supports clean crash-fail faults; the
// chaos tests layer *gray* failures underneath them — transient RPC errors,
// dropped responses, corrupted frames, and slow or failing DFS syncs — which
// is exactly the regime where the threshold tracking (Algorithms 1-4) and
// the unbounded-retry flush path (§3.2) are most likely to break.
//
// Design:
//  * Rules match an operation kind plus a target prefix (a server id such as
//    "rs2", or a DFS path prefix such as "/wal/"). An empty target matches
//    everything.
//  * Each matching call draws from a single seeded PRNG, so a failing chaos
//    schedule is replayable from its seed (modulo thread interleaving; the
//    *schedule* — which rules exist, which nodes crash, when — is fully
//    deterministic from the seed).
//  * Disabled-path cost is one relaxed atomic load; with no injector
//    installed the boundaries pay a single branch on a plain pointer. The
//    default path through benches is therefore unchanged.
//  * Everything injected is counted, both locally (stats()) and in the
//    process-wide metrics registry ("fault.*" counters), so tests can assert
//    that a schedule actually exercised the paths it meant to.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/common/annotations.h"
#include "src/common/random.h"
#include "src/common/status.h"

namespace tfr {

/// The injectable operation kinds, one per instrumented I/O boundary.
enum class FaultOp {
  kRpcApply,        // RegionServer::apply_writeset
  kRpcGet,          // RegionServer::get
  kRpcScan,         // RegionServer::scan
  kDfsSync,         // Dfs::sync (per path)
  kDfsRead,         // Dfs::read (per path)
  kCoordHeartbeat,  // RegionServer::heartbeat_tick -> Coord::heartbeat
};

std::string_view fault_op_name(FaultOp op);

/// One fault rule. All probabilities are drawn independently per call.
struct FaultRule {
  FaultOp op = FaultOp::kRpcApply;

  /// Server id ("rs1") or DFS path prefix ("/wal/"); empty matches all.
  std::string target;

  /// Probability that the call fails with a transient Unavailable before the
  /// operation takes effect (a lost request).
  double error_probability = 0;

  /// Probability that the operation *succeeds* server-side but its response
  /// is reported lost (the caller sees Unavailable and retries — this is the
  /// schedule that exercises idempotent replay). Only meaningful for
  /// kRpcApply; ignored elsewhere.
  double drop_response_probability = 0;

  /// Probability that the request frame is corrupted on the wire (one bit
  /// flip before decode). Only meaningful for kRpcApply.
  double corrupt_probability = 0;

  /// Added latency: with probability delay_probability, sleep `delay` (the
  /// slow-sync / slow-read "gray failure").
  double delay_probability = 0;
  Micros delay = 0;

  /// One-shot trigger: fail the next `fail_next` matching calls with
  /// Unavailable (counts down; independent of error_probability).
  int fail_next = 0;
};

/// What a single inject() call decided. The delay, if any, has already been
/// slept by inject() itself.
struct FaultAction {
  bool fail = false;           ///< return Unavailable without doing the work
  bool drop_response = false;  ///< do the work, then return Unavailable
  bool corrupt_wire = false;   ///< flip a bit in the request frame
  Micros delayed = 0;          ///< latency already injected
};

struct FaultStats {
  std::int64_t evaluations = 0;       ///< matching-rule evaluations
  std::int64_t injected_errors = 0;   ///< lost requests (incl. one-shot)
  std::int64_t dropped_responses = 0;
  std::int64_t corrupted_wires = 0;
  std::int64_t injected_delays = 0;
  std::int64_t partition_drops = 0;   ///< messages dropped by partition rules
  Micros delay_micros = 0;            ///< total injected latency
};

/// A network partition between two nodes, matched by id prefix (so "client"
/// matches every client, "" matches everyone). Unlike probabilistic rules a
/// partition is absolute and deterministic: while installed, *every*
/// matching message is dropped — no PRNG draw, so partitions do not perturb
/// the seeded schedule of the probabilistic rules.
///
/// `symmetric` partitions drop traffic both ways. An asymmetric rule drops
/// only src -> dst traffic: for the apply RPC that means a request from a
/// matching source is lost before the server sees it, while a blocked
/// *response* direction (dst -> src) surfaces as drop_response — the write
/// lands but the ack never arrives. This is the gray-failure geometry that
/// creates zombie servers: partition a server from coord but not from its
/// clients and it keeps acking writes while the master declares it dead.
struct PartitionRule {
  std::string src;  ///< prefix of the sending node id; empty matches all
  std::string dst;  ///< prefix of the receiving node id; empty matches all
  bool symmetric = true;
};

/// Thread-safe. One instance per Cluster; shared by the DFS and every
/// region server.
class FaultInjector {
 public:
  FaultInjector() = default;

  /// Reset the PRNG to a known seed (call before installing rules so the
  /// whole schedule is a function of the seed).
  void reseed(std::uint64_t seed);
  std::uint64_t seed() const;

  /// Install a rule and enable the injector. Returns a rule id (unused for
  /// now beyond debugging).
  int add_rule(FaultRule rule);

  /// Drop every rule and disable the injector; stats are kept.
  /// Partitions are unaffected (heal them with clear_partitions()).
  void clear_rules();

  /// Install a partition and enable the injector. Returns a partition id
  /// for heal_partition(). Mirrors into the "fault.partitions_active" gauge.
  int add_partition(PartitionRule rule);

  /// Heal one partition by id (returned from add_partition).
  void heal_partition(int id);

  /// Heal every partition.
  void clear_partitions();

  /// True iff a partition rule currently blocks `from` -> `to` traffic.
  /// Deterministic — no PRNG draw, so it never perturbs the seeded
  /// schedule. Counted in stats().partition_drops when it fires.
  bool partitioned(std::string_view from, std::string_view to);

  /// Status-returning wrapper: Unavailable if `from` -> `to` is blocked.
  /// `op` only labels the error message.
  Status check_partition(FaultOp op, std::string_view from, std::string_view to);

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_release); }
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Evaluate all rules matching (op, target). Sleeps any injected delay
  /// before returning. When disabled this is one relaxed atomic load.
  FaultAction inject(FaultOp op, std::string_view target);

  /// Convenience wrapper for boundaries with no side effects between request
  /// and response: returns Unavailable if either a lost request or a lost
  /// response fired.
  Status check(FaultOp op, std::string_view target);

  FaultStats stats() const;
  void reset_stats();

 private:
  std::atomic<bool> enabled_{false};

  mutable RankedMutex<LockRank::kFaultInjector> mutex_{"fault_injector"};
  std::uint64_t seed_ TFR_GUARDED_BY(mutex_) = 0;
  Rng rng_ TFR_GUARDED_BY(mutex_){0};
  std::vector<FaultRule> rules_ TFR_GUARDED_BY(mutex_);
  /// (id, rule); healed partitions are erased, ids never reused.
  std::vector<std::pair<int, PartitionRule>> partitions_ TFR_GUARDED_BY(mutex_);
  int next_partition_id_ TFR_GUARDED_BY(mutex_) = 1;
  FaultStats stats_ TFR_GUARDED_BY(mutex_);
};

}  // namespace tfr
