// Minimal leveled logger. Usage:
//
//   TFR_LOG(INFO, "rm") << "server " << sid << " failed, TP(s)=" << tp;
//
// The second argument is a component tag ("client", "rs", "rm", ...). The
// global level defaults to WARN so tests and benches stay quiet; examples
// raise it to INFO to narrate what the system does.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace tfr {

enum class LogLevel : int { kDEBUG = 0, kINFO = 1, kWARN = 2, kERROR = 3, kOFF = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

namespace internal {

bool log_enabled(LogLevel level);
void log_emit(LogLevel level, const char* tag, const std::string& message);

/// Collects one log line and emits it on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* tag) : level_(level), tag_(tag) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, tag_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* tag_;
  std::ostringstream stream_;
};

}  // namespace internal

#define TFR_LOG(level, tag)                                             \
  if (!::tfr::internal::log_enabled(::tfr::LogLevel::k##level)) {       \
  } else                                                                \
    ::tfr::internal::LogLine(::tfr::LogLevel::k##level, tag)

}  // namespace tfr
