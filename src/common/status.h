// Status and Result<T>: error handling primitives used throughout tfrkv.
//
// We follow the convention of returning a Status (or Result<T>) from every
// operation that can fail for a reason the caller is expected to handle
// (node unavailable, region offline, transaction conflict, ...). Exceptions
// are reserved for programming errors.
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace tfr {

enum class Code {
  kOk = 0,
  kNotFound,         // key / file / znode does not exist
  kAlreadyExists,    // create of an existing object
  kInvalidArgument,  // caller error detectable from arguments alone
  kUnavailable,      // node crashed / region offline / session expired; retryable
  kAborted,          // transaction aborted (conflict or explicit)
  kTimeout,          // operation exceeded its deadline
  kClosed,           // object has been shut down
  kCorruption,       // stored data failed to decode
  kInternal,         // invariant violation inside the library
  kWrongEpoch,       // write bears a stale ownership epoch; relocate and retry
};

/// Human-readable name of a status code ("Ok", "NotFound", ...).
std::string_view code_name(Code c);

/// A cheap, copyable success-or-error value.
class [[nodiscard]] Status {
 public:
  Status() = default;  // Ok
  Status(Code code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status not_found(std::string m) { return {Code::kNotFound, std::move(m)}; }
  static Status already_exists(std::string m) { return {Code::kAlreadyExists, std::move(m)}; }
  static Status invalid_argument(std::string m) { return {Code::kInvalidArgument, std::move(m)}; }
  static Status unavailable(std::string m) { return {Code::kUnavailable, std::move(m)}; }
  static Status aborted(std::string m) { return {Code::kAborted, std::move(m)}; }
  static Status timeout(std::string m) { return {Code::kTimeout, std::move(m)}; }
  static Status closed(std::string m) { return {Code::kClosed, std::move(m)}; }
  static Status corruption(std::string m) { return {Code::kCorruption, std::move(m)}; }
  static Status internal(std::string m) { return {Code::kInternal, std::move(m)}; }
  static Status wrong_epoch(std::string m) { return {Code::kWrongEpoch, std::move(m)}; }

  bool is_ok() const { return code_ == Code::kOk; }
  explicit operator bool() const { return is_ok(); }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool is_not_found() const { return code_ == Code::kNotFound; }
  bool is_unavailable() const { return code_ == Code::kUnavailable; }
  bool is_aborted() const { return code_ == Code::kAborted; }
  bool is_timeout() const { return code_ == Code::kTimeout; }
  bool is_wrong_epoch() const { return code_ == Code::kWrongEpoch; }

  /// "Ok" or "NotFound: no such row".
  std::string to_string() const;

 private:
  Code code_ = Code::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) { return os << s.to_string(); }

/// A value or a Status explaining why there is none.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}               // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {        // NOLINT(google-explicit-constructor)
    assert(!status_.is_ok() && "Result constructed from Ok status without a value");
  }

  bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  const Status& status() const { return status_; }

  T& value() & {
    assert(is_ok());
    return *value_;
  }
  const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  T&& value() && {
    assert(is_ok());
    return std::move(*value_);
  }

  T value_or(T fallback) const { return value_.has_value() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // Ok iff value_ present
};

/// Propagate a non-ok Status to the caller.
#define TFR_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::tfr::Status _tfr_status = (expr);            \
    if (!_tfr_status.is_ok()) return _tfr_status;  \
  } while (0)

namespace internal {
// Overload set so TFR_IGNORE_STATUS works on Status and Result<T> alike.
inline void ignore_status(const Status&) {}
template <typename T>
void ignore_status(const Result<T>&) {}
}  // namespace internal

/// The only sanctioned way to drop a Status/Result on the floor. `why` must
/// be a string literal saying in one line why ignoring the error is correct
/// at this site ("best-effort X; Y is the backstop"). scripts/lint.sh
/// rejects raw `(void)call()` casts in src/, so every discard is greppable
/// (`git grep TFR_IGNORE_STATUS`) and carries its justification.
#define TFR_IGNORE_STATUS(expr, why)                                            \
  do {                                                                          \
    static_assert(sizeof(why "") > 1, "TFR_IGNORE_STATUS needs a non-empty "    \
                                      "string-literal justification");          \
    ::tfr::internal::ignore_status((expr));                                     \
  } while (0)

}  // namespace tfr
