// Deterministic PRNG and the key-choice distributions used by the YCSB-style
// workload (uniform, zipfian, scrambled zipfian, latest).
#pragma once

#include <cstdint>
#include <string>

namespace tfr {

/// xoshiro256** — fast, seedable, good statistical quality. Not thread-safe;
/// give each thread its own instance.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next_u64();

  /// Uniform in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform in [0, 1).
  double next_double();

  /// True with probability p.
  bool next_bool(double p);

  /// Exponentially distributed with the given mean (for jittered latencies).
  double next_exponential(double mean);

 private:
  std::uint64_t s_[4];
};

/// Interface for integer key-index generators over [0, n).
class IndexChooser {
 public:
  virtual ~IndexChooser() = default;
  virtual std::uint64_t next(Rng& rng) = 0;
};

class UniformChooser final : public IndexChooser {
 public:
  explicit UniformChooser(std::uint64_t n) : n_(n) {}
  std::uint64_t next(Rng& rng) override { return rng.next_below(n_); }

 private:
  std::uint64_t n_;
};

/// Zipfian distribution over [0, n) with parameter theta, using the
/// Gray et al. rejection-free method as in YCSB's ZipfianGenerator.
class ZipfianChooser : public IndexChooser {
 public:
  explicit ZipfianChooser(std::uint64_t n, double theta = 0.99);
  std::uint64_t next(Rng& rng) override;

 protected:
  std::uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double zeta2theta_;

  static double zeta(std::uint64_t n, double theta);
};

/// Zipfian with the popular items scattered across the keyspace (YCSB's
/// ScrambledZipfianGenerator), so hot keys land on different regions.
class ScrambledZipfianChooser final : public ZipfianChooser {
 public:
  explicit ScrambledZipfianChooser(std::uint64_t n, double theta = 0.99)
      : ZipfianChooser(n, theta) {}
  std::uint64_t next(Rng& rng) override;
};

/// 64-bit finalizer hash (splitmix64 mix); used for key scrambling.
std::uint64_t hash64(std::uint64_t x);

/// Random printable string of the given length (values for the load phase).
std::string random_ascii(Rng& rng, std::size_t len);

}  // namespace tfr
