#include "src/common/clock.h"

namespace tfr {

namespace {
const std::chrono::steady_clock::time_point g_process_start = std::chrono::steady_clock::now();
}  // namespace

Micros now_micros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                               g_process_start)
      .count();
}

Micros wall_micros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace tfr
