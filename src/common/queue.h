// Thread-safe queues used for WAL sync pipelines, heartbeat work, and the
// client/server tracking structures of Algorithms 1 and 3.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <queue>
#include <variant>
#include <vector>

#include "src/common/clock.h"

namespace tfr {

/// Unbounded MPMC blocking queue with close() semantics: after close(),
/// pushes are ignored and pops drain the remaining items, then return nullopt.
template <typename T>
class BlockingQueue {
 public:
  void push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Waits up to `timeout` for an item; nullopt on timeout or closed+empty.
  std::optional<T> pop_for(Micros timeout) {
    std::unique_lock lock(mutex_);
    cv_.wait_for(lock, std::chrono::microseconds(timeout),
                 [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Removes and returns everything currently queued (non-blocking).
  std::vector<T> drain() {
    std::lock_guard lock(mutex_);
    std::vector<T> out(std::make_move_iterator(items_.begin()),
                       std::make_move_iterator(items_.end()));
    items_.clear();
    return out;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// Synchronized min-priority queue keyed by a timestamp, as used for the
/// FQ / FQ' queues of Algorithm 1 and the PQ queue of Algorithm 3. The
/// payload travels with the key.
template <typename Ts, typename Payload = std::monostate>
class SyncedMinQueue {
 public:
  void push(Ts key, Payload payload = {}) {
    std::lock_guard lock(mutex_);
    heap_.emplace(key, std::move(payload));
  }

  /// Smallest key currently queued, if any.
  std::optional<Ts> head() const {
    std::lock_guard lock(mutex_);
    if (heap_.empty()) return std::nullopt;
    return heap_.top().first;
  }

  /// Removes and returns the smallest element.
  std::optional<std::pair<Ts, Payload>> pop() {
    std::lock_guard lock(mutex_);
    if (heap_.empty()) return std::nullopt;
    auto item = heap_.top();
    heap_.pop();
    return item;
  }

  /// Removes and returns all elements with key <= bound, smallest first.
  std::vector<std::pair<Ts, Payload>> pop_through(Ts bound) {
    std::lock_guard lock(mutex_);
    std::vector<std::pair<Ts, Payload>> out;
    while (!heap_.empty() && heap_.top().first <= bound) {
      out.push_back(heap_.top());
      heap_.pop();
    }
    return out;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return heap_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  struct Greater {
    bool operator()(const std::pair<Ts, Payload>& a, const std::pair<Ts, Payload>& b) const {
      return a.first > b.first;
    }
  };
  mutable std::mutex mutex_;
  std::priority_queue<std::pair<Ts, Payload>, std::vector<std::pair<Ts, Payload>>, Greater> heap_;
};

}  // namespace tfr
