// Thread-safe queues used for WAL sync pipelines, heartbeat work, and the
// client/server tracking structures of Algorithms 1 and 3.
#pragma once

#include <deque>
#include <optional>
#include <queue>
#include <variant>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/clock.h"

namespace tfr {

/// Unbounded MPMC blocking queue with close() semantics: after close(),
/// pushes are ignored and pops drain the remaining items, then return nullopt.
template <typename T>
class BlockingQueue {
 public:
  void push(T item) {
    {
      MutexLock lock(mutex_);
      if (closed_) return;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    MutexLock lock(mutex_);
    while (items_.empty() && !closed_) cv_.wait(lock);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Waits up to `timeout` for an item; nullopt on timeout or closed+empty.
  std::optional<T> pop_for(Micros timeout) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::microseconds(timeout);
    MutexLock lock(mutex_);
    while (items_.empty() && !closed_) {
      if (!cv_.wait_until(lock, deadline)) break;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop: an item if one is queued, else nullopt immediately.
  std::optional<T> try_pop() {
    MutexLock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Removes and returns everything currently queued (non-blocking).
  std::vector<T> drain() {
    MutexLock lock(mutex_);
    std::vector<T> out(std::make_move_iterator(items_.begin()),
                       std::make_move_iterator(items_.end()));
    items_.clear();
    return out;
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

  void close() {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  mutable RankedMutex<LockRank::kQueue> mutex_{"blocking_queue"};
  CondVar cv_;
  std::deque<T> items_ TFR_GUARDED_BY(mutex_);
  bool closed_ TFR_GUARDED_BY(mutex_) = false;
};

/// Synchronized min-priority queue keyed by a timestamp, as used for the
/// FQ / FQ' queues of Algorithm 1 and the PQ queue of Algorithm 3. The
/// payload travels with the key.
template <typename Ts, typename Payload = std::monostate>
class SyncedMinQueue {
 public:
  void push(Ts key, Payload payload = {}) {
    MutexLock lock(mutex_);
    heap_.emplace(key, std::move(payload));
  }

  /// Smallest key currently queued, if any.
  std::optional<Ts> head() const {
    MutexLock lock(mutex_);
    if (heap_.empty()) return std::nullopt;
    return heap_.top().first;
  }

  /// Removes and returns the smallest element.
  std::optional<std::pair<Ts, Payload>> pop() {
    MutexLock lock(mutex_);
    if (heap_.empty()) return std::nullopt;
    auto item = heap_.top();
    heap_.pop();
    return item;
  }

  /// Removes and returns all elements with key <= bound, smallest first.
  std::vector<std::pair<Ts, Payload>> pop_through(Ts bound) {
    MutexLock lock(mutex_);
    std::vector<std::pair<Ts, Payload>> out;
    while (!heap_.empty() && heap_.top().first <= bound) {
      out.push_back(heap_.top());
      heap_.pop();
    }
    return out;
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return heap_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  struct Greater {
    bool operator()(const std::pair<Ts, Payload>& a, const std::pair<Ts, Payload>& b) const {
      return a.first > b.first;
    }
  };
  mutable RankedMutex<LockRank::kQueue> mutex_{"synced_min_queue"};
  std::priority_queue<std::pair<Ts, Payload>, std::vector<std::pair<Ts, Payload>>, Greater> heap_
      TFR_GUARDED_BY(mutex_);
};

}  // namespace tfr
