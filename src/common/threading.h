// Threading helpers: periodic background tasks (heartbeats, WAL syncers,
// failure detectors), a counting semaphore (server handler pools), and a
// countdown latch for test/bench synchronization.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "src/common/clock.h"

namespace tfr {

/// Runs `fn` every `interval` microseconds on a dedicated thread until
/// stopped. The first run happens after one interval. stop() joins the
/// thread; it is safe to call from any thread except the task itself and is
/// idempotent. The interval can be changed while running.
class PeriodicTask {
 public:
  PeriodicTask(std::function<void()> fn, Micros interval)
      : fn_(std::move(fn)), interval_(interval) {}

  ~PeriodicTask() { stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start() {
    std::lock_guard lock(mutex_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
    thread_ = std::thread([this] { run(); });
  }

  void stop() {
    {
      std::lock_guard lock(mutex_);
      if (!running_) return;
      stop_requested_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    std::lock_guard lock(mutex_);
    running_ = false;
  }

  /// Takes effect immediately: the current wait is interrupted and restarts
  /// with the new interval (a shorter interval must not have to sit out the
  /// remainder of a long old one — heartbeat TTLs depend on this).
  void set_interval(Micros interval) {
    {
      std::lock_guard lock(mutex_);
      interval_ = interval;
      ++config_epoch_;
    }
    cv_.notify_all();
  }

  /// Run the task body once, immediately, on the caller's thread.
  void trigger_now() { fn_(); }

  bool running() const {
    std::lock_guard lock(mutex_);
    return running_ && !stop_requested_;
  }

 private:
  void run() {
    std::unique_lock lock(mutex_);
    while (!stop_requested_) {
      const auto wait = std::chrono::microseconds(interval_);
      const std::uint64_t epoch = config_epoch_;
      cv_.wait_for(lock, wait,
                   [&] { return stop_requested_ || config_epoch_ != epoch; });
      if (stop_requested_) break;
      if (config_epoch_ != epoch) continue;  // reconfigured: restart the wait
      lock.unlock();
      fn_();
      lock.lock();
    }
  }

  std::function<void()> fn_;
  Micros interval_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::uint64_t config_epoch_ = 0;
};

/// Counting semaphore with dynamic initial count (models a server's RPC
/// handler pool: acquiring a slot = occupying a handler for the service time).
class Semaphore {
 public:
  explicit Semaphore(int count) : count_(count) {}

  void acquire() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return count_ > 0; });
    --count_;
  }

  void release() {
    {
      std::lock_guard lock(mutex_);
      ++count_;
    }
    cv_.notify_one();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int count_;
};

/// RAII slot holder for Semaphore.
class SemaphoreGuard {
 public:
  explicit SemaphoreGuard(Semaphore& s) : sem_(s) { sem_.acquire(); }
  ~SemaphoreGuard() { sem_.release(); }
  SemaphoreGuard(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(const SemaphoreGuard&) = delete;

 private:
  Semaphore& sem_;
};

/// One-shot countdown latch.
class CountdownLatch {
 public:
  explicit CountdownLatch(int count) : count_(count) {}

  void count_down() {
    std::lock_guard lock(mutex_);
    if (count_ > 0 && --count_ == 0) cv_.notify_all();
  }

  void wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

  /// Returns false on timeout.
  bool wait_for(Micros timeout) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, std::chrono::microseconds(timeout), [&] { return count_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int count_;
};

}  // namespace tfr
