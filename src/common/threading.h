// Threading helpers: periodic background tasks (heartbeats, WAL syncers,
// failure detectors), a counting semaphore (server handler pools), and a
// countdown latch for test/bench synchronization.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>

#include "src/common/annotations.h"
#include "src/common/clock.h"

namespace tfr {

/// Runs `fn` every `interval` microseconds on a dedicated thread until
/// stopped. The first run happens after one interval. stop() joins the
/// thread; it is safe to call from any thread except the task itself, is
/// idempotent, and concurrent stop() calls all block until the task has
/// actually stopped. The interval can be changed while running.
class PeriodicTask {
 public:
  PeriodicTask(std::function<void()> fn, Micros interval)
      : fn_(std::move(fn)), interval_(interval) {}

  ~PeriodicTask() { stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start() {
    MutexLock lock(mutex_);
    if (running_ || stopping_) return;
    running_ = true;
    stop_requested_ = false;
    thread_ = std::thread([this] { run(); });
  }

  void stop() {
    std::thread to_join;
    {
      MutexLock lock(mutex_);
      if (stopping_) {
        // Another stop() owns the join; wait until it finishes so every
        // stop() caller can rely on "the task is gone" when it returns.
        while (running_) cv_.wait(lock);
        return;
      }
      if (!running_) return;
      stopping_ = true;
      stop_requested_ = true;
      // Claim the handle under the lock; joining two threads on the same
      // std::thread (the old unguarded joinable()/join() pattern) is UB.
      to_join = std::move(thread_);
    }
    cv_.notify_all();
    if (to_join.joinable()) to_join.join();
    {
      MutexLock lock(mutex_);
      running_ = false;
      stopping_ = false;
    }
    cv_.notify_all();
  }

  /// Takes effect immediately: the current wait is interrupted and restarts
  /// with the new interval (a shorter interval must not have to sit out the
  /// remainder of a long old one — heartbeat TTLs depend on this).
  void set_interval(Micros interval) {
    {
      MutexLock lock(mutex_);
      interval_ = interval;
      ++config_epoch_;
    }
    cv_.notify_all();
  }

  /// Run the task body once, immediately, on the caller's thread.
  void trigger_now() { fn_(); }

  bool running() const {
    MutexLock lock(mutex_);
    return running_ && !stop_requested_;
  }

 private:
  void run() {
    MutexLock lock(mutex_);
    while (!stop_requested_) {
      const std::uint64_t epoch = config_epoch_;
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::microseconds(interval_);
      bool timed_out = false;
      while (!timed_out && !stop_requested_ && config_epoch_ == epoch) {
        timed_out = !cv_.wait_until(lock, deadline);
      }
      if (stop_requested_) break;
      if (config_epoch_ != epoch) continue;  // reconfigured: restart the wait
      lock.unlock();
      fn_();
      lock.lock();
    }
  }

  std::function<void()> fn_;  // invoked unlocked, on the task thread only
  mutable RankedMutex<LockRank::kThreadingInternal> mutex_{"periodic_task"};
  CondVar cv_;
  Micros interval_ TFR_GUARDED_BY(mutex_);
  std::thread thread_ TFR_GUARDED_BY(mutex_);
  bool running_ TFR_GUARDED_BY(mutex_) = false;
  bool stopping_ TFR_GUARDED_BY(mutex_) = false;
  bool stop_requested_ TFR_GUARDED_BY(mutex_) = false;
  std::uint64_t config_epoch_ TFR_GUARDED_BY(mutex_) = 0;
};

/// Counting semaphore with dynamic initial count (models a server's RPC
/// handler pool: acquiring a slot = occupying a handler for the service time).
class Semaphore {
 public:
  explicit Semaphore(int count) : count_(count) {}

  void acquire() {
    MutexLock lock(mutex_);
    while (count_ == 0) cv_.wait(lock);
    --count_;
  }

  void release() {
    {
      MutexLock lock(mutex_);
      ++count_;
    }
    cv_.notify_one();
  }

 private:
  RankedMutex<LockRank::kThreadingInternal> mutex_{"semaphore"};
  CondVar cv_;
  int count_ TFR_GUARDED_BY(mutex_);
};

/// RAII slot holder for Semaphore.
class SemaphoreGuard {
 public:
  explicit SemaphoreGuard(Semaphore& s) : sem_(s) { sem_.acquire(); }
  ~SemaphoreGuard() { sem_.release(); }
  SemaphoreGuard(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(const SemaphoreGuard&) = delete;

 private:
  Semaphore& sem_;
};

/// One-shot countdown latch.
class CountdownLatch {
 public:
  explicit CountdownLatch(int count) : count_(count) {}

  void count_down() {
    MutexLock lock(mutex_);
    if (count_ > 0 && --count_ == 0) cv_.notify_all();
  }

  void wait() {
    MutexLock lock(mutex_);
    while (count_ != 0) cv_.wait(lock);
  }

  /// Returns false on timeout.
  bool wait_for(Micros timeout) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::microseconds(timeout);
    MutexLock lock(mutex_);
    while (count_ != 0) {
      if (!cv_.wait_until(lock, deadline)) return count_ == 0;
    }
    return true;
  }

 private:
  RankedMutex<LockRank::kThreadingInternal> mutex_{"countdown_latch"};
  CondVar cv_;
  int count_ TFR_GUARDED_BY(mutex_);
};

}  // namespace tfr
