// Runtime lock-rank validator (annotations.h Layer 2). Per-thread stack of
// held locks; an acquisition whose rank is not strictly below every held
// rank — or that re-enters a lock this thread already holds — prints both
// "stacks" (the held locks with their acquire sites, and a backtrace of the
// offending acquisition) and aborts. Deliberately fprintf/abort rather than
// TFR_LOG/Status: the violation may well involve the logging lock itself,
// and a lock-discipline break is never recoverable state.
#include "src/common/annotations.h"

#if TFR_LOCK_RANK

#include <cstdio>
#include <cstdlib>
#include <vector>

#if defined(__GLIBC__)
#include <execinfo.h>
#define TFR_HAVE_BACKTRACE 1
#else
#define TFR_HAVE_BACKTRACE 0
#endif

namespace tfr::lockrank {
namespace {

struct Held {
  const void* mu;
  int rank;
  const char* name;
  bool shared;
  const char* file;
  int line;
};

thread_local std::vector<Held> t_held;

[[noreturn]] void die(const char* why, const Held& incoming) {
  std::fprintf(stderr,
               "\n==== tfr lock-rank violation: %s ====\n"
               "attempting to acquire: %-24s rank %-3d (%s) at %s:%d\n"
               "locks held by this thread (outermost first):\n",
               why, incoming.name, incoming.rank, incoming.shared ? "shared" : "exclusive",
               incoming.file, incoming.line);
  for (const Held& h : t_held) {
    std::fprintf(stderr, "  held: %-24s rank %-3d (%s) acquired at %s:%d\n", h.name, h.rank,
                 h.shared ? "shared" : "exclusive", h.file, h.line);
  }
  std::fprintf(stderr, "rule: a thread may only acquire a mutex of strictly lower rank than\n"
                       "every mutex it already holds (see DESIGN.md \"Lock ranks\").\n"
                       "backtrace of the offending acquisition:\n");
#if TFR_HAVE_BACKTRACE
  void* frames[32];
  const int n = backtrace(frames, 32);
  backtrace_symbols_fd(frames, n, /*stderr*/ 2);
#else
  std::fprintf(stderr, "  (backtrace unavailable on this platform)\n");
#endif
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void on_acquire(const void* mu, int rank, const char* name, bool shared, const char* file,
                int line) {
  const Held incoming{mu, rank, name, shared, file, line};
  for (const Held& h : t_held) {
    if (h.mu == mu) die("re-entrant acquisition", incoming);
    if (rank >= h.rank) die("out-of-order acquisition", incoming);
  }
  t_held.push_back(incoming);
}

void on_release(const void* mu) {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mu == mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  // Unlock of a lock this thread does not hold: either an unlock from the
  // wrong thread (UB on std::mutex) or wrapper misuse. Flag it loudly.
  const Held incoming{mu, -1, "(unknown)", false, "(release)", 0};
  die("release of a lock not held by this thread", incoming);
}

}  // namespace tfr::lockrank

#endif  // TFR_LOCK_RANK
