// Runtime lock-rank validator (annotations.h Layer 3) and the
// blocking-under-lock hook (Layer 4). Per-thread stack of held locks; an
// acquisition whose rank is not strictly below every held rank — or that
// re-enters a lock this thread already holds, or whose rank is not in the
// generated table — prints both "stacks" (the held locks with their acquire
// sites, and a backtrace of the offending acquisition) and aborts. A
// blocking call (TFR_BLOCKING_POINT) or CondVar wait made while holding a
// lock whose rank policy forbids blocking aborts the same way. Deliberately
// fprintf/abort rather than TFR_LOG/Status: the violation may well involve
// the logging lock itself, and a lock-discipline break is never recoverable
// state.
#include "src/common/annotations.h"

#if TFR_LOCK_RANK

#include <cstdio>
#include <cstdlib>
#include <vector>

#if defined(__GLIBC__)
#include <execinfo.h>
#define TFR_HAVE_BACKTRACE 1
#else
#define TFR_HAVE_BACKTRACE 0
#endif

namespace tfr::lockrank {
namespace {

struct Held {
  const void* mu;
  int rank;
  const char* name;
  bool shared;
  const char* file;
  int line;
};

thread_local std::vector<Held> t_held;

// Nesting depth of active ScopedBlockingAllowed scopes on this thread.
thread_local int t_blocking_allowance = 0;

void print_held() {
  for (const Held& h : t_held) {
    std::fprintf(stderr, "  held: %-24s rank %-3d (%s) acquired at %s:%d\n", h.name, h.rank,
                 h.shared ? "shared" : "exclusive", h.file, h.line);
  }
}

void print_backtrace() {
#if TFR_HAVE_BACKTRACE
  void* frames[32];
  const int n = backtrace(frames, 32);
  backtrace_symbols_fd(frames, n, /*stderr*/ 2);
#else
  std::fprintf(stderr, "  (backtrace unavailable on this platform)\n");
#endif
}

[[noreturn]] void die(const char* why, const Held& incoming) {
  std::fprintf(stderr,
               "\n==== tfr lock-rank violation: %s ====\n"
               "attempting to acquire: %-24s rank %-3d (%s) at %s:%d\n"
               "locks held by this thread (outermost first):\n",
               why, incoming.name, incoming.rank, incoming.shared ? "shared" : "exclusive",
               incoming.file, incoming.line);
  print_held();
  std::fprintf(stderr, "rule: a thread may only acquire a mutex of strictly lower rank than\n"
                       "every mutex it already holds, and every rank must come from the\n"
                       "generated table (see DESIGN.md \"Lock ranks\").\n"
                       "backtrace of the offending acquisition:\n");
  print_backtrace();
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] void die_blocking(const char* what, const char* file, int line,
                               const Held& offender) {
  std::fprintf(stderr,
               "\n==== tfr blocking-under-lock violation ====\n"
               "blocking call: %s at %s:%d\n"
               "while holding %s (rank %d, may_block=false), acquired at %s:%d\n"
               "locks held by this thread (outermost first):\n",
               what, file, line, offender.name, offender.rank, offender.file, offender.line);
  print_held();
  std::fprintf(stderr,
               "rule: a thread may not block (DFS I/O, RPC, sync, sleep, foreign CondVar\n"
               "wait) while holding a mutex whose rank's may_block policy is false\n"
               "(src/common/lock_ranks.h). Either restructure to drop the lock first, or\n"
               "— if holding it across the block is deliberate — wrap the call in\n"
               "tfr::ScopedBlockingAllowed with a justification (see DESIGN.md \"Lock\n"
               "ranks\", blocking policy).\n"
               "backtrace of the blocking call:\n");
  print_backtrace();
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void on_acquire(const void* mu, int rank, const char* name, bool shared, const char* file,
                int line) {
  const Held incoming{mu, rank, name, shared, file, line};
  if (!lock_rank_known(rank)) die("rank not in the generated table", incoming);
  for (const Held& h : t_held) {
    if (h.mu == mu) die("re-entrant acquisition", incoming);
    if (rank >= h.rank) die("out-of-order acquisition", incoming);
  }
  t_held.push_back(incoming);
}

void on_release(const void* mu) {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mu == mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  // Unlock of a lock this thread does not hold: either an unlock from the
  // wrong thread (UB on std::mutex) or wrapper misuse. Flag it loudly.
  const Held incoming{mu, -1, "(unknown)", false, "(release)", 0};
  die("release of a lock not held by this thread", incoming);
}

void on_blocking_call(const char* what, const char* file, int line) {
  if (t_blocking_allowance > 0) return;
  for (const Held& h : t_held) {
    if (!lock_rank_may_block(h.rank)) die_blocking(what, file, line, h);
  }
}

void on_cv_wait(const void* waited_mu, const char* file, int line) {
  if (t_blocking_allowance > 0) return;
  for (const Held& h : t_held) {
    // The waited-on mutex is released for the duration of the wait.
    if (h.mu == waited_mu) continue;
    if (!lock_rank_may_block(h.rank)) die_blocking("condvar.wait", file, line, h);
  }
}

std::size_t held_lock_count() { return t_held.size(); }

}  // namespace tfr::lockrank

namespace tfr {

ScopedBlockingAllowed::ScopedBlockingAllowed(const char* why) {
  (void)why;  // documentation for the reader; the hook only needs the scope
  ++lockrank::t_blocking_allowance;
}

ScopedBlockingAllowed::~ScopedBlockingAllowed() { --lockrank::t_blocking_allowance; }

}  // namespace tfr

#endif  // TFR_LOCK_RANK
