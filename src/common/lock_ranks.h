// GENERATED FILE — do not edit by hand.
//
// Produced by scripts/gen_lock_ranks.py, the single source of truth for
// the lock-rank table. The same script generates the DESIGN.md "Lock
// ranks" table; the `lock_ranks_doc` ctest fails if either drifts.
//
// Three consumers:
//  * RankedMutex<R> (annotations.h) static_asserts lock_rank_known(R), so
//    a mutex can only be declared with a rank from this table;
//  * the runtime validator asserts every acquisition's rank is in the
//    table (a raw tfr::Mutex constructed with an ad-hoc rank aborts);
//  * the blocking-under-lock hook consults lock_rank_may_block() — the
//    per-rank policy column that says which locks may, by documented
//    design, be held across a TFR_BLOCKING call.
#pragma once

#include <cstddef>

namespace tfr {

// Acquisition order is strictly DESCENDING: holding rank R, a thread may
// only acquire ranks < R. Outermost locks (the testbed harness, the
// recovery manager) have the highest ranks; utility leaves (metrics, the
// log emit lock) the lowest. See DESIGN.md "Lock ranks" for the rationale
// behind every edge.
enum class LockRank : int {
  kBalancer = 220,          // master.balancer: master balancer loop (§9)
  kHarness = 210,           // testbed.rm: test harness
  kRecoveryManager = 200,   // recovery_manager: RM orchestration, floors, PQ (Alg. 1+3)
  kThresholdRegistry = 195, // threshold_registry: registry C / S stripes (Alg. 2+4, §7a)
  kRecoveryTracker = 190,   // persist_tracker, recovery_client, flush_tracker.advance: TP(s) / TF(c) trackers (Alg. 1+3)
  kClientLifecycle = 180,   // txn_client.lifecycle, region_server.terminator: client/server self-termination
  kRegionServer = 170,      // region_server.regions: region server directory
  kRegion = 160,            // region: region memstore/files
  kMaster = 150,            // master: master / failure detector
  kWalSync = 140,           // wal.sync: WAL group sync
  kWal = 130,               // wal: WAL segment ledger
  kTxnManager = 120,        // txn_manager: TM (SI conflict window)
  kTxnLog = 110,            // txn_log: TM group-commit log
  kCoord = 100,             // coord: coordination service (ZK stand-in)
  kDfs = 90,                // dfs: mini-DFS namenode/datanodes
  kServerHooks = 80,        // region_server.hooks: test hook registration
  kBlockCache = 70,         // block_cache: block cache LRU
  kFaultInjector = 60,      // fault_injector: deterministic fault injection
  kEpochRegistry = 55,      // epoch_registry: fencing-token registry (§6a)
  kQueue = 50,              // blocking_queue, synced_min_queue: FQ/FQ' / PQ carriers
  kClientRouting = 45,      // kv_client.routes: client routing-table cache (§2.1)
  kThreadingInternal = 40,  // periodic_task, semaphore, countdown_latch: heartbeats, handler pools
  kLatencyModel = 30,       // latency_rng: latency model
  kMetrics = 20,            // counter_registry: metrics
  kLogging = 10,            // log_emit: logging
  kLeaf = 40,               // default for ad-hoc mutexes: nest under anything
};

struct LockRankInfo {
  const char* name;  // doc name(s) of the mutex(es) at this rank
  int value;
  bool may_block;  // may be held across a TFR_BLOCKING call (documented why)
};

inline constexpr LockRankInfo kLockRankTable[] = {
    {"master.balancer", 220, true},
    {"testbed.rm", 210, true},
    {"recovery_manager", 200, true},
    {"threshold_registry", 195, false},
    {"persist_tracker, recovery_client, flush_tracker.advance", 190, true},
    {"txn_client.lifecycle, region_server.terminator", 180, true},
    {"region_server.regions", 170, true},
    {"region", 160, true},
    {"master", 150, true},
    {"wal.sync", 140, true},
    {"wal", 130, false},
    {"txn_manager", 120, true},
    {"txn_log", 110, false},
    {"coord", 100, false},
    {"dfs", 90, false},
    {"region_server.hooks", 80, false},
    {"block_cache", 70, false},
    {"fault_injector", 60, false},
    {"epoch_registry", 55, false},
    {"blocking_queue, synced_min_queue", 50, false},
    {"kv_client.routes", 45, false},
    {"periodic_task, semaphore, countdown_latch", 40, false},
    {"latency_rng", 30, false},
    {"counter_registry", 20, false},
    {"log_emit", 10, false},
};

inline constexpr std::size_t kLockRankCount =
    sizeof(kLockRankTable) / sizeof(kLockRankTable[0]);

/// True iff `value` is a rank defined in the table. RankedMutex<R>
/// static_asserts this; the runtime validator aborts on violations.
constexpr bool lock_rank_known(int value) {
  for (const auto& r : kLockRankTable) {
    if (r.value == value) return true;
  }
  return false;
}

/// True iff a mutex of rank `value` may, by documented design, be held
/// across a blocking call (DFS I/O, RPC, WAL/TM-log sync, sleeps).
constexpr bool lock_rank_may_block(int value) {
  for (const auto& r : kLockRankTable) {
    if (r.value == value) return r.may_block;
  }
  return false;
}

/// Doc name(s) for a rank value; "?" when unknown.
constexpr const char* lock_rank_doc_name(int value) {
  for (const auto& r : kLockRankTable) {
    if (r.value == value) return r.name;
  }
  return "?";
}

}  // namespace tfr
