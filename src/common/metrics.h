// Measurement primitives for the benchmark harness and tests:
//   Histogram           — latency distribution with percentile queries
//   TimeSeriesRecorder  — per-interval throughput / mean-latency series
//   Counter             — monotonically increasing named counter
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/clock.h"

namespace tfr {

/// Thread-safe latency histogram with logarithmically spaced buckets from
/// 1us to ~1000s. Percentile error is bounded by the bucket width (~4%).
class Histogram {
 public:
  Histogram();

  void record(Micros value);
  void merge(const Histogram& other);
  void reset();

  std::uint64_t count() const;
  double mean() const;           ///< microseconds
  Micros min() const;
  Micros max() const;
  Micros percentile(double p) const;  ///< p in [0, 100]

  std::string summary() const;   ///< "n=... mean=...ms p50=... p99=... max=..."

 private:
  static constexpr int kBuckets = 400;
  static int bucket_for(Micros v);
  static Micros bucket_upper(int b);

  std::atomic<std::uint64_t> counts_[kBuckets];
  std::atomic<std::uint64_t> total_count_{0};
  std::atomic<std::int64_t> total_sum_{0};
  std::atomic<std::int64_t> min_{INT64_MAX};
  std::atomic<std::int64_t> max_{0};
};

/// One point of a throughput/latency time series.
struct SeriesPoint {
  double t_seconds = 0;     ///< interval end, relative to recorder start
  double throughput = 0;    ///< completed ops per second in the interval
  double mean_latency_ms = 0;
  double p99_latency_ms = 0;
  std::uint64_t errors = 0;
};

/// Buckets completions into fixed wall-clock intervals; used to draw the
/// Figure 3 timelines. Thread-safe.
class TimeSeriesRecorder {
 public:
  explicit TimeSeriesRecorder(Micros interval = seconds(1), std::size_t max_points = 4096);

  /// Marks t=0; call once just before the workload starts.
  void start();

  /// Record one completed operation with the given latency.
  void record(Micros latency);

  /// Record one failed operation.
  void record_error();

  /// Seconds since start().
  double elapsed_seconds() const;

  std::vector<SeriesPoint> snapshot() const;

 private:
  struct Cell {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::int64_t> latency_sum{0};
    std::atomic<std::uint64_t> errors{0};
    // Coarse p99 support: count of ops above a set of latency thresholds.
    std::atomic<std::uint64_t> over[8] = {};
  };

  std::size_t cell_index() const;

  Micros interval_;
  std::vector<Cell> cells_;
  std::atomic<Micros> start_{-1};
  static constexpr Micros kOverThresholds[8] = {millis(1),  millis(2),  millis(5),  millis(10),
                                                millis(20), millis(50), millis(100), millis(500)};
};

/// Simple named counter (for tracking bytes sent, replays, ...).
///
/// The write path is wait-free and contention-free: each thread owns one of
/// `kStripes` cache-line-padded slots (assigned round-robin on first use) and
/// only ever does a relaxed add on it — two threads bumping the same counter
/// never touch the same cache line unless the thread count exceeds the stripe
/// count. get()/reset() walk all stripes; they are read-side operations for
/// tests and report generation, not hot paths.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    stripes_[thread_stripe()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t get() const {
    std::int64_t sum = 0;
    for (const auto& s : stripes_) sum += s.value.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() {
    for (auto& s : stripes_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kStripes = 16;
  struct alignas(64) Stripe {
    std::atomic<std::int64_t> value{0};
  };

  /// This thread's stripe index, assigned once per thread from a process-wide
  /// round-robin so long-lived workers spread evenly across stripes.
  static std::size_t thread_stripe();

  Stripe stripes_[kStripes];
};

/// Last-value gauge for level metrics that move in both directions (segment
/// counts, retained log records) and therefore cannot be a Counter. Writers
/// publish with set()/add(); readers sample with get(). All operations are
/// single relaxed atomics — cheap enough for per-GC-pass updates.
class Gauge {
 public:
  void set(std::int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// --- process-wide counter registry -------------------------------------------
//
// Fault injection and the client retry paths export their counts here so
// tests and benches can assert on them without plumbing stats objects
// through every layer. Counters are created on first use and their
// addresses are stable for the life of the process, so hot paths can cache
// the reference (`static Counter& c = global_counter("...")`) and pay only
// a relaxed atomic add per event.

/// The counter registered under `name`, created on first use. Thread-safe.
Counter& global_counter(const std::string& name);

/// (name, value) for every registered counter, sorted by name.
std::vector<std::pair<std::string, std::int64_t>> global_counter_snapshot();

/// Zero every registered counter (tests isolate themselves with this).
void reset_global_counters();

/// The histogram registered under `name`, created on first use. Same
/// stable-address contract as global_counter(): hot paths cache the
/// reference and pay only the (lock-free) Histogram::record per event.
/// Used for distributions that counters cannot express — e.g. the TM log's
/// `log.batch_size` and `log.sync_wait`.
Histogram& global_histogram(const std::string& name);

/// (name, histogram) for every registered histogram, sorted by name.
std::vector<std::pair<std::string, const Histogram*>> global_histogram_snapshot();

/// Reset every registered histogram (tests/benches isolate with this).
void reset_global_histograms();

/// The gauge registered under `name`, created on first use. Same
/// stable-address contract as global_counter(). Used for level metrics the
/// log GC exports (`log.segments`, `log.retained_txns`) and the master's
/// last-recovery phase timings.
Gauge& global_gauge(const std::string& name);

/// (name, value) for every registered gauge, sorted by name.
std::vector<std::pair<std::string, std::int64_t>> global_gauge_snapshot();

/// Zero every registered gauge (tests isolate themselves with this).
void reset_global_gauges();

}  // namespace tfr
