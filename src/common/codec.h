// Binary encoding helpers for WAL records, store-file blocks, and the
// transaction-manager recovery log. Fixed-width little-endian integers and
// length-prefixed strings; intentionally simple and fully checked on decode.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace tfr {

class Encoder {
 public:
  explicit Encoder(std::string* out) : out_(out) {}

  void put_u8(std::uint8_t v) { out_->push_back(static_cast<char>(v)); }

  void put_u32(std::uint32_t v) {
    char buf[4];
    std::memcpy(buf, &v, 4);
    out_->append(buf, 4);
  }

  void put_u64(std::uint64_t v) {
    char buf[8];
    std::memcpy(buf, &v, 8);
    out_->append(buf, 8);
  }

  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }

  void put_string(std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }

 private:
  std::string* out_;
};

class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  bool done() const { return pos_ >= data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }

  Status get_u8(std::uint8_t* v) {
    if (remaining() < 1) return Status::corruption("truncated u8");
    *v = static_cast<std::uint8_t>(data_[pos_++]);
    return Status::ok();
  }

  Status get_u32(std::uint32_t* v) {
    if (remaining() < 4) return Status::corruption("truncated u32");
    std::memcpy(v, data_.data() + pos_, 4);
    pos_ += 4;
    return Status::ok();
  }

  Status get_u64(std::uint64_t* v) {
    if (remaining() < 8) return Status::corruption("truncated u64");
    std::memcpy(v, data_.data() + pos_, 8);
    pos_ += 8;
    return Status::ok();
  }

  Status get_i64(std::int64_t* v) {
    std::uint64_t u = 0;
    TFR_RETURN_IF_ERROR(get_u64(&u));
    *v = static_cast<std::int64_t>(u);
    return Status::ok();
  }

  Status get_string(std::string* s) {
    std::uint32_t len = 0;
    TFR_RETURN_IF_ERROR(get_u32(&len));
    if (remaining() < len) return Status::corruption("truncated string");
    s->assign(data_.data() + pos_, len);
    pos_ += len;
    return Status::ok();
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace tfr
