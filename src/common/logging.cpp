#include "src/common/logging.h"

#include <cstdio>

#include "src/common/annotations.h"
#include "src/common/clock.h"

namespace tfr {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWARN)};
RankedMutex<LockRank::kLogging> g_emit_mutex{"log_emit"};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDEBUG: return "DEBUG";
    case LogLevel::kINFO: return "INFO ";
    case LogLevel::kWARN: return "WARN ";
    case LogLevel::kERROR: return "ERROR";
    case LogLevel::kOFF: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

namespace internal {

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

void log_emit(LogLevel level, const char* tag, const std::string& message) {
  const double t = static_cast<double>(now_micros()) / 1e6;
  MutexLock lock(g_emit_mutex);
  std::fprintf(stderr, "[%10.4f] %s [%-8s] %s\n", t, level_name(level), tag, message.c_str());
}

}  // namespace internal
}  // namespace tfr
