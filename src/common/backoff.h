// Backoff — the one retry-delay policy shared by every retry loop in the
// system (the client flush/read/scan paths, and any future retrier).
//
// The seed repo had three copy-pasted deterministic-doubling loops in the KV
// client; because every client doubled from the same base with no jitter,
// all the clients hammering a recovering region woke up in lockstep and
// re-collided on every retry round (a synchronized retry storm). This policy
// uses capped exponential backoff with *full jitter*: attempt n sleeps a
// uniformly random duration in (0, min(cap, base << n)], which provably
// de-correlates concurrent retriers (see the AWS architecture blog's
// "Exponential Backoff And Jitter" analysis).
//
// The sleep is sliced so a cancellation flag (a dying client) is observed
// within ~1 ms instead of after a full capped interval.
#pragma once

#include <atomic>
#include <cstdint>

#include "src/common/clock.h"
#include "src/common/random.h"

namespace tfr {

class Backoff {
 public:
  /// `base`: mean of the first interval; `cap`: upper bound on any interval.
  /// Each instance gets its own PRNG stream so concurrent retriers draw
  /// independent jitter.
  Backoff(Micros base, Micros cap)
      : base_(base > 0 ? base : 1), cap_(cap > base ? cap : base_), rng_(next_seed()) {}

  /// Sleep for the next jittered interval. Returns false (immediately, or
  /// mid-sleep within ~1 ms) if `cancel` becomes true, true otherwise.
  bool sleep(const std::atomic<bool>* cancel = nullptr) {
    Micros remaining = next_interval();
    while (remaining > 0) {
      if (cancel && cancel->load(std::memory_order_acquire)) return false;
      const Micros slice = remaining < millis(1) ? remaining : millis(1);
      sleep_micros(slice);
      remaining -= slice;
    }
    return !(cancel && cancel->load(std::memory_order_acquire));
  }

  /// The next interval without sleeping (also advances the attempt count).
  /// Full jitter: uniform in (0, min(cap, base * 2^attempt)].
  Micros next_interval() {
    Micros ceiling = base_;
    // Shift without overflow: stop doubling once the cap is reached.
    for (int i = 0; i < attempt_ && ceiling < cap_; ++i) ceiling *= 2;
    if (ceiling > cap_) ceiling = cap_;
    ++attempt_;
    return 1 + static_cast<Micros>(rng_.next_below(static_cast<std::uint64_t>(ceiling)));
  }

  int attempts() const { return attempt_; }

  /// Start over from the base interval (after a success).
  void reset() { attempt_ = 0; }

 private:
  static std::uint64_t next_seed() {
    // Distinct, reproducible-per-process stream per instance.
    static std::atomic<std::uint64_t> counter{0};
    return hash64(0x9e3779b97f4a7c15ULL ^ counter.fetch_add(1, std::memory_order_relaxed));
  }

  Micros base_;
  Micros cap_;
  int attempt_ = 0;
  Rng rng_;
};

}  // namespace tfr
