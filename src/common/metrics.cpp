#include "src/common/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <sstream>

#include "src/common/annotations.h"

namespace tfr {

namespace {
struct CounterRegistry {
  RankedMutex<LockRank::kMetrics> mutex{"counter_registry"};
  // unique_ptr gives each Counter a stable address across rehashing.
  std::map<std::string, std::unique_ptr<Counter>> counters TFR_GUARDED_BY(mutex);
};

CounterRegistry& registry() {
  static CounterRegistry* r = new CounterRegistry();  // leaked: outlives all users
  return *r;
}

struct HistogramRegistry {
  RankedMutex<LockRank::kMetrics> mutex{"histogram_registry"};
  std::map<std::string, std::unique_ptr<Histogram>> histograms TFR_GUARDED_BY(mutex);
};

HistogramRegistry& histogram_registry() {
  static HistogramRegistry* r = new HistogramRegistry();  // leaked: outlives all users
  return *r;
}

struct GaugeRegistry {
  RankedMutex<LockRank::kMetrics> mutex{"gauge_registry"};
  std::map<std::string, std::unique_ptr<Gauge>> gauges TFR_GUARDED_BY(mutex);
};

GaugeRegistry& gauge_registry() {
  static GaugeRegistry* r = new GaugeRegistry();  // leaked: outlives all users
  return *r;
}
}  // namespace

std::size_t Counter::thread_stripe() {
  static std::atomic<std::size_t> next{0};
  // One atomic increment per thread lifetime; every add() after that is a
  // single relaxed fetch_add on a thread-private cache line.
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

Counter& global_counter(const std::string& name) {
  CounterRegistry& r = registry();
  MutexLock lock(r.mutex);
  auto& slot = r.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

std::vector<std::pair<std::string, std::int64_t>> global_counter_snapshot() {
  CounterRegistry& r = registry();
  MutexLock lock(r.mutex);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(r.counters.size());
  for (const auto& [name, counter] : r.counters) out.emplace_back(name, counter->get());
  return out;
}

void reset_global_counters() {
  CounterRegistry& r = registry();
  MutexLock lock(r.mutex);
  for (auto& [name, counter] : r.counters) counter->reset();
}

Histogram& global_histogram(const std::string& name) {
  HistogramRegistry& r = histogram_registry();
  MutexLock lock(r.mutex);
  auto& slot = r.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::pair<std::string, const Histogram*>> global_histogram_snapshot() {
  HistogramRegistry& r = histogram_registry();
  MutexLock lock(r.mutex);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(r.histograms.size());
  for (const auto& [name, h] : r.histograms) out.emplace_back(name, h.get());
  return out;
}

void reset_global_histograms() {
  HistogramRegistry& r = histogram_registry();
  MutexLock lock(r.mutex);
  for (auto& [name, h] : r.histograms) h->reset();
}

Gauge& global_gauge(const std::string& name) {
  GaugeRegistry& r = gauge_registry();
  MutexLock lock(r.mutex);
  auto& slot = r.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

std::vector<std::pair<std::string, std::int64_t>> global_gauge_snapshot() {
  GaugeRegistry& r = gauge_registry();
  MutexLock lock(r.mutex);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(r.gauges.size());
  for (const auto& [name, g] : r.gauges) out.emplace_back(name, g->get());
  return out;
}

void reset_global_gauges() {
  GaugeRegistry& r = gauge_registry();
  MutexLock lock(r.mutex);
  for (auto& [name, g] : r.gauges) g->set(0);
}

Histogram::Histogram() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

int Histogram::bucket_for(Micros v) {
  if (v < 1) v = 1;
  // ~16 buckets per decade: bucket = floor(log10(v) * 44.3), capped.
  const int b = static_cast<int>(std::log10(static_cast<double>(v)) * 44.0);
  return std::min(b, kBuckets - 1);
}

Micros Histogram::bucket_upper(int b) {
  return static_cast<Micros>(std::pow(10.0, static_cast<double>(b + 1) / 44.0));
}

void Histogram::record(Micros value) {
  counts_[bucket_for(value)].fetch_add(1, std::memory_order_relaxed);
  total_count_.fetch_add(1, std::memory_order_relaxed);
  total_sum_.fetch_add(value, std::memory_order_relaxed);
  std::int64_t prev = min_.load(std::memory_order_relaxed);
  while (value < prev && !min_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
  prev = max_.load(std::memory_order_relaxed);
  while (value > prev && !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

void Histogram::merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    counts_[i].fetch_add(other.counts_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  total_count_.fetch_add(other.total_count_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  total_sum_.fetch_add(other.total_sum_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  const std::int64_t omin = other.min_.load(std::memory_order_relaxed);
  std::int64_t prev = min_.load(std::memory_order_relaxed);
  while (omin < prev && !min_.compare_exchange_weak(prev, omin, std::memory_order_relaxed)) {
  }
  const std::int64_t omax = other.max_.load(std::memory_order_relaxed);
  prev = max_.load(std::memory_order_relaxed);
  while (omax > prev && !max_.compare_exchange_weak(prev, omax, std::memory_order_relaxed)) {
  }
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  total_count_.store(0, std::memory_order_relaxed);
  total_sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const { return total_count_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const auto n = count();
  if (n == 0) return 0;
  return static_cast<double>(total_sum_.load(std::memory_order_relaxed)) / static_cast<double>(n);
}

Micros Histogram::min() const {
  const auto v = min_.load(std::memory_order_relaxed);
  return v == INT64_MAX ? 0 : v;
}

Micros Histogram::max() const { return max_.load(std::memory_order_relaxed); }

Micros Histogram::percentile(double p) const {
  const auto n = count();
  if (n == 0) return 0;
  const auto target = static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  std::uint64_t acc = 0;
  for (int i = 0; i < kBuckets; ++i) {
    acc += counts_[i].load(std::memory_order_relaxed);
    if (acc >= target) return std::min<Micros>(bucket_upper(i), max());
  }
  return max();
}

std::string Histogram::summary() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << "n=" << count() << " mean=" << mean() / 1000.0 << "ms"
     << " p50=" << static_cast<double>(percentile(50)) / 1000.0 << "ms"
     << " p99=" << static_cast<double>(percentile(99)) / 1000.0 << "ms"
     << " max=" << static_cast<double>(max()) / 1000.0 << "ms";
  return os.str();
}

constexpr Micros TimeSeriesRecorder::kOverThresholds[8];

TimeSeriesRecorder::TimeSeriesRecorder(Micros interval, std::size_t max_points)
    : interval_(interval), cells_(max_points) {}

void TimeSeriesRecorder::start() { start_.store(now_micros(), std::memory_order_release); }

std::size_t TimeSeriesRecorder::cell_index() const {
  const Micros s = start_.load(std::memory_order_acquire);
  if (s < 0) return 0;
  const auto idx = static_cast<std::size_t>((now_micros() - s) / interval_);
  return std::min(idx, cells_.size() - 1);
}

void TimeSeriesRecorder::record(Micros latency) {
  Cell& c = cells_[cell_index()];
  c.count.fetch_add(1, std::memory_order_relaxed);
  c.latency_sum.fetch_add(latency, std::memory_order_relaxed);
  for (int i = 0; i < 8; ++i) {
    if (latency > kOverThresholds[i]) c.over[i].fetch_add(1, std::memory_order_relaxed);
  }
}

void TimeSeriesRecorder::record_error() {
  cells_[cell_index()].errors.fetch_add(1, std::memory_order_relaxed);
}

double TimeSeriesRecorder::elapsed_seconds() const {
  const Micros s = start_.load(std::memory_order_acquire);
  return s < 0 ? 0 : static_cast<double>(now_micros() - s) / 1e6;
}

std::vector<SeriesPoint> TimeSeriesRecorder::snapshot() const {
  std::vector<SeriesPoint> out;
  const auto last = cell_index();
  for (std::size_t i = 0; i <= last && i < cells_.size(); ++i) {
    const Cell& c = cells_[i];
    SeriesPoint p;
    p.t_seconds = static_cast<double>((i + 1) * static_cast<std::size_t>(interval_)) / 1e6;
    const auto n = c.count.load(std::memory_order_relaxed);
    p.throughput = static_cast<double>(n) / (static_cast<double>(interval_) / 1e6);
    p.mean_latency_ms =
        n == 0 ? 0
               : static_cast<double>(c.latency_sum.load(std::memory_order_relaxed)) /
                     static_cast<double>(n) / 1000.0;
    // p99 estimate: the smallest threshold exceeded by <1% of samples.
    p.p99_latency_ms = 0;
    if (n > 0) {
      for (int t = 7; t >= 0; --t) {
        if (c.over[t].load(std::memory_order_relaxed) >= (n + 99) / 100) {
          p.p99_latency_ms = static_cast<double>(kOverThresholds[t]) / 1000.0;
          break;
        }
      }
    }
    p.errors = c.errors.load(std::memory_order_relaxed);
    out.push_back(p);
  }
  return out;
}

}  // namespace tfr
