// Time utilities. All components take time from free functions here so that
// tests can reason in microseconds and benches in wall-clock seconds.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#include "src/common/annotations.h"

namespace tfr {

using Micros = std::int64_t;

/// Monotonic time in microseconds since an arbitrary epoch (process start).
Micros now_micros();

/// Wall-clock time in microseconds since the Unix epoch (for log lines).
Micros wall_micros();

// Every modeled latency in the tree (DFS I/O, RPC hops, fsync costs) bottoms
// out in this sleep, so the blocking-under-lock hook here is the backstop
// that catches any blocking call the per-entry-point TFR_BLOCKING_POINT
// annotations miss.
TFR_BLOCKING inline void sleep_micros(Micros us) {
  if (us > 0) {
    TFR_BLOCKING_POINT("clock.sleep");
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

TFR_BLOCKING inline void sleep_millis(std::int64_t ms) { sleep_micros(ms * 1000); }

constexpr Micros millis(std::int64_t ms) { return ms * 1000; }
constexpr Micros seconds(std::int64_t s) { return s * 1'000'000; }

/// Measures elapsed time from construction (or the last reset()).
class Stopwatch {
 public:
  Stopwatch() : start_(now_micros()) {}
  void reset() { start_ = now_micros(); }
  Micros elapsed_micros() const { return now_micros() - start_; }
  double elapsed_seconds() const { return static_cast<double>(elapsed_micros()) / 1e6; }

 private:
  Micros start_;
};

}  // namespace tfr
