#include "src/common/epoch.h"

namespace tfr {

std::uint64_t EpochRegistry::current(const std::string& region) const {
  MutexLock lock(mutex_);
  auto it = epochs_.find(region);
  return it == epochs_.end() ? 0 : it->second;
}

std::uint64_t EpochRegistry::advance_to(const std::string& region, std::uint64_t epoch) {
  MutexLock lock(mutex_);
  std::uint64_t& current = epochs_[region];
  if (epoch > current) current = epoch;
  return current;
}

Status EpochRegistry::validate(const std::string& region, std::uint64_t epoch) const {
  std::uint64_t required;
  {
    MutexLock lock(mutex_);
    auto it = epochs_.find(region);
    if (it == epochs_.end()) return Status::ok();
    required = it->second;
  }
  if (epoch >= required) return Status::ok();
  return Status::wrong_epoch("region " + region + " epoch " + std::to_string(epoch) +
                             " fenced by epoch " + std::to_string(required));
}

}  // namespace tfr
