// Thread-safety annotations + ranked mutex wrappers — the enforcement
// layers for the locking discipline that protects the paper's invariants
// (TF = min_c TF(c), TP = min_s TP(s), the hook-gated region online rule).
//
// Layer 1 (compile time, clang): Clang thread-safety-analysis macros. Under
// clang with -Wthread-safety (cmake -DTFR_ANALYZE=ON) every TFR_GUARDED_BY /
// TFR_REQUIRES violation is a build error; under gcc they expand to nothing.
//
// Layer 2 (compile time, any compiler): ranked mutex types. Every mutex in
// src/ is a RankedMutex<LockRank::kX> / RankedSharedMutex<LockRank::kX>
// whose rank is a template parameter checked against the generated table in
// src/common/lock_ranks.h (scripts/gen_lock_ranks.py is the single source
// of truth). Where nesting is lexically visible, the scoped RankedMutexLock
// + AcquireToken pattern turns an out-of-order acquisition into a
// static_assert failure: the inner acquisition takes the outer lock's token
// and proves strict rank descent at compile time.
//
// Layer 3 (runtime): the lock-rank validator (cmake -DTFR_LOCK_RANK=ON, the
// default). Every tfr::Mutex carries a LockRank; a thread may only acquire a
// mutex whose rank is *strictly lower* than the lowest rank it already holds
// (locks are ranked outermost-highest, so acquisition order is strictly
// descending). Re-entrant or out-of-order acquisition aborts the process,
// printing the held-lock stack with acquire sites plus a backtrace of the
// offending acquisition — turning a once-in-a-soak deadlock into a
// deterministic one-line repro. The validator also rejects any rank value
// that is not in the generated table. See DESIGN.md "Lock ranks".
//
// Layer 4 (runtime): the blocking-under-lock hook. Blocking entry points
// (DFS I/O, RPC apply/get/scan, WAL/TM-log sync, sleeps) are marked with
// the TFR_BLOCKING attribute and call TFR_BLOCKING_POINT(...) on entry;
// the hook aborts — printing the held locks and a backtrace — when such a
// call runs while this thread holds any mutex whose rank's `may_block`
// policy (lock_ranks.h) forbids it. CondVar waits check the same policy
// against every *other* lock the waiting thread holds. Deliberate,
// documented exceptions use ScopedBlockingAllowed. The static half of this
// check lives in scripts/check_blocking.py (grep fallback) and
// scripts/blocking_under_lock.query (clang).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "src/common/lock_ranks.h"

// ---------------------------------------------------------------------------
// Clang thread-safety-analysis attribute macros (no-ops elsewhere).
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define TFR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TFR_THREAD_ANNOTATION(x)
#endif

#define TFR_CAPABILITY(x) TFR_THREAD_ANNOTATION(capability(x))
#define TFR_SCOPED_CAPABILITY TFR_THREAD_ANNOTATION(scoped_lockable)
#define TFR_GUARDED_BY(x) TFR_THREAD_ANNOTATION(guarded_by(x))
#define TFR_PT_GUARDED_BY(x) TFR_THREAD_ANNOTATION(pt_guarded_by(x))
#define TFR_ACQUIRED_BEFORE(...) TFR_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define TFR_ACQUIRED_AFTER(...) TFR_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define TFR_REQUIRES(...) TFR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define TFR_REQUIRES_SHARED(...) TFR_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define TFR_ACQUIRE(...) TFR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define TFR_ACQUIRE_SHARED(...) TFR_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define TFR_RELEASE(...) TFR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TFR_RELEASE_SHARED(...) TFR_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TFR_RELEASE_GENERIC(...) TFR_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define TFR_TRY_ACQUIRE(...) TFR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TFR_EXCLUDES(...) TFR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define TFR_ASSERT_CAPABILITY(x) TFR_THREAD_ANNOTATION(assert_capability(x))
#define TFR_RETURN_CAPABILITY(x) TFR_THREAD_ANNOTATION(lock_returned(x))
#define TFR_NO_THREAD_SAFETY_ANALYSIS TFR_THREAD_ANNOTATION(no_thread_safety_analysis)

// Marks a function that can block the calling thread on something other
// than a tfr::Mutex it is documented to take: DFS I/O, an RPC hop, a WAL or
// TM-log sync, a sleep, a semaphore/queue wait. The marker is consumed by
// the static blocking-under-lock detectors (scripts/check_blocking.py and,
// under clang, the `annotate` attribute for scripts/blocking_under_lock
// .query); the function's *implementation* additionally calls
// TFR_BLOCKING_POINT(...) so the runtime hook fires even where the static
// pass cannot see the call.
#if defined(__clang__)
#define TFR_BLOCKING __attribute__((annotate("tfr_blocking")))
#else
#define TFR_BLOCKING
#endif

// The runtime validator is compiled in when TFR_LOCK_RANK is defined non-zero
// (the cmake option of the same name, ON by default; benches can build with
// -DTFR_LOCK_RANK=OFF to shave the per-acquire bookkeeping).
#ifndef TFR_LOCK_RANK
#define TFR_LOCK_RANK 0
#endif

namespace tfr {

namespace lockrank {
#if TFR_LOCK_RANK
// Called with the mutex address *before* blocking on it, so an
// order-violating acquisition aborts before it can deadlock.
void on_acquire(const void* mu, int rank, const char* name, bool shared, const char* file,
                int line);
void on_release(const void* mu);

// Blocking-under-lock hook (annotations.h Layer 4): aborts with the held
// locks and a backtrace when the calling thread holds any mutex whose rank
// policy forbids blocking (lock_rank_may_block) and no ScopedBlockingAllowed
// is active. `what` names the blocking operation ("dfs.sync", "rpc.apply").
void on_blocking_call(const char* what, const char* file, int line);

// Same policy check for a CondVar wait: every held lock *except* the one
// being waited on (which the wait releases) must permit blocking.
void on_cv_wait(const void* waited_mu, const char* file, int line);

// Observability for tests.
std::size_t held_lock_count();
#else
inline void on_blocking_call(const char*, const char*, int) {}
inline void on_cv_wait(const void*, const char*, int) {}
inline std::size_t held_lock_count() { return 0; }
#endif
}  // namespace lockrank

/// Fires the runtime blocking-under-lock check. Place at the entry of every
/// TFR_BLOCKING function's implementation, before it takes its own locks.
#define TFR_BLOCKING_POINT(what) ::tfr::lockrank::on_blocking_call(what, __FILE__, __LINE__)

/// RAII exception to the blocking-under-lock policy, for call sites where
/// holding a normally-forbidden lock across a blocking call is deliberate
/// and argued in a comment at the site. `why` must be a string literal.
/// Scope it as tightly as the blocking call.
class ScopedBlockingAllowed {
 public:
#if TFR_LOCK_RANK
  explicit ScopedBlockingAllowed(const char* why);
  ~ScopedBlockingAllowed();
#else
  explicit ScopedBlockingAllowed(const char* why) { (void)why; }
#endif
  ScopedBlockingAllowed(const ScopedBlockingAllowed&) = delete;
  ScopedBlockingAllowed& operator=(const ScopedBlockingAllowed&) = delete;
};

// ---------------------------------------------------------------------------
// Annotated, ranked wrappers. These are the only lock primitives the tree
// uses (scripts/lint.sh rejects raw std::mutex outside this header, and
// requires the RankedMutex forms — compile-time ranks — in src/).
// ---------------------------------------------------------------------------

class TFR_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank = LockRank::kLeaf, const char* name = "mutex") noexcept
      : rank_(static_cast<int>(rank)), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock(const char* file = __builtin_FILE(), int line = __builtin_LINE()) TFR_ACQUIRE() {
    lock_impl(file, line);
  }
  void unlock() TFR_RELEASE() { unlock_impl(); }

 private:
  friend class MutexLock;
  friend class CondVar;

  void lock_impl(const char* file, int line) {
#if TFR_LOCK_RANK
    lockrank::on_acquire(this, rank_, name_, /*shared=*/false, file, line);
#else
    (void)file;
    (void)line;
#endif
    impl_.lock();
  }
  void unlock_impl() {
#if TFR_LOCK_RANK
    lockrank::on_release(this);
#endif
    impl_.unlock();
  }

  std::mutex impl_;
  const int rank_;
  const char* const name_;
};

/// A Mutex whose rank is part of its type. The rank must come from the
/// generated table (lock_ranks.h); an ad-hoc value is a compile error. This
/// is the declaration form every mutex in src/ uses — it feeds the
/// RankedMutexLock/AcquireToken static ordering check and documents the
/// rank at the declaration site.
template <LockRank R>
class TFR_CAPABILITY("mutex") RankedMutex : public Mutex {
  static_assert(lock_rank_known(static_cast<int>(R)),
                "RankedMutex rank must be a value from the generated lock-rank table "
                "(src/common/lock_ranks.h; edit scripts/gen_lock_ranks.py to add one)");

 public:
  static constexpr LockRank kRank = R;
  explicit RankedMutex(const char* name = "mutex") noexcept : Mutex(R, name) {}
};

class TFR_CAPABILITY("mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank = LockRank::kLeaf, const char* name = "shared_mutex") noexcept
      : rank_(static_cast<int>(rank)), name_(name) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock(const char* file = __builtin_FILE(), int line = __builtin_LINE()) TFR_ACQUIRE() {
#if TFR_LOCK_RANK
    lockrank::on_acquire(this, rank_, name_, /*shared=*/false, file, line);
#else
    (void)file;
    (void)line;
#endif
    impl_.lock();
  }
  void unlock() TFR_RELEASE() {
#if TFR_LOCK_RANK
    lockrank::on_release(this);
#endif
    impl_.unlock();
  }
  void lock_shared(const char* file = __builtin_FILE(),
                   int line = __builtin_LINE()) TFR_ACQUIRE_SHARED() {
#if TFR_LOCK_RANK
    lockrank::on_acquire(this, rank_, name_, /*shared=*/true, file, line);
#else
    (void)file;
    (void)line;
#endif
    impl_.lock_shared();
  }
  void unlock_shared() TFR_RELEASE_SHARED() {
#if TFR_LOCK_RANK
    lockrank::on_release(this);
#endif
    impl_.unlock_shared();
  }

 private:
  std::shared_mutex impl_;
  const int rank_;
  const char* const name_;
};

/// SharedMutex with a compile-time rank; see RankedMutex.
template <LockRank R>
class TFR_CAPABILITY("mutex") RankedSharedMutex : public SharedMutex {
  static_assert(lock_rank_known(static_cast<int>(R)),
                "RankedSharedMutex rank must be a value from the generated lock-rank table "
                "(src/common/lock_ranks.h; edit scripts/gen_lock_ranks.py to add one)");

 public:
  static constexpr LockRank kRank = R;
  explicit RankedSharedMutex(const char* name = "shared_mutex") noexcept : SharedMutex(R, name) {}
};

/// std::unique_lock stand-in for tfr::Mutex: RAII acquire with manual
/// unlock()/lock() (used around callbacks that must run unlocked) and the
/// lock handle tfr::CondVar waits on.
class TFR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu, const char* file = __builtin_FILE(),
                     int line = __builtin_LINE()) TFR_ACQUIRE(mu)
      : mu_(&mu), file_(file), line_(line) {
    mu_->lock_impl(file_, line_);
    held_ = true;
  }
  ~MutexLock() TFR_RELEASE() {
    if (held_) mu_->unlock_impl();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() TFR_RELEASE() {
    mu_->unlock_impl();
    held_ = false;
  }
  void lock() TFR_ACQUIRE() {
    mu_->lock_impl(file_, line_);
    held_ = true;
  }

 private:
  friend class CondVar;
  template <LockRank>
  friend class RankedMutexLock;
  Mutex* mu_;
  bool held_ = false;
  const char* file_;
  int line_;
};

/// Zero-size compile-time witness that a mutex of rank `R` is held. Minted
/// only by RankedMutexLock<R>::token(); a function that must run under a
/// specific lock can take one by value, which — unlike TFR_REQUIRES — is
/// enforced on every compiler, not just clang.
template <LockRank R>
class AcquireToken {
 public:
  static constexpr LockRank kRank = R;

 private:
  constexpr AcquireToken() = default;
  template <LockRank>
  friend class RankedMutexLock;
};

/// Scoped lock over a RankedMutex that carries the rank in its type. The
/// two-argument form is the compile-time ordering check: a lexically-nested
/// acquisition must pass the token of a lock this scope already holds, and
/// the rank descent is static_asserted — an inverted nesting no longer
/// compiles (see tests/lint_fixtures/static_rank_inversion.cpp). The
/// runtime validator still covers nesting that spans functions.
template <LockRank R>
class TFR_SCOPED_CAPABILITY RankedMutexLock {
 public:
  explicit RankedMutexLock(RankedMutex<R>& mu, const char* file = __builtin_FILE(),
                           int line = __builtin_LINE())
      TFR_ACQUIRE(mu) TFR_NO_THREAD_SAFETY_ANALYSIS : lock_(mu, file, line) {}

  /// Nested acquisition under an already-held outer lock: compiles only if
  /// this mutex's rank is strictly below the outer one's.
  template <LockRank Outer>
  RankedMutexLock(RankedMutex<R>& mu, AcquireToken<Outer> /*outer*/,
                  const char* file = __builtin_FILE(), int line = __builtin_LINE())
      TFR_ACQUIRE(mu) TFR_NO_THREAD_SAFETY_ANALYSIS : lock_(mu, file, line) {
    static_assert(static_cast<int>(R) < static_cast<int>(Outer),
                  "lock-rank inversion: a nested acquisition must take a mutex of "
                  "strictly lower rank than the lock whose token it was given "
                  "(see DESIGN.md 'Lock ranks')");
  }

  ~RankedMutexLock() TFR_RELEASE() = default;

  RankedMutexLock(const RankedMutexLock&) = delete;
  RankedMutexLock& operator=(const RankedMutexLock&) = delete;

  /// Witness for further nested acquisitions (or AcquireToken parameters).
  AcquireToken<R> token() const { return AcquireToken<R>{}; }

  /// Interop with CondVar::wait and the manual unlock()/lock() pattern.
  MutexLock& as_mutex_lock() { return lock_; }

 private:
  MutexLock lock_;
};

/// RAII exclusive lock on a SharedMutex.
class TFR_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu, const char* file = __builtin_FILE(),
                      int line = __builtin_LINE()) TFR_ACQUIRE(mu)
      : mu_(&mu) {
    mu_->lock(file, line);
  }
  ~WriterLock() TFR_RELEASE() { mu_->unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// RAII shared lock on a SharedMutex.
class TFR_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu, const char* file = __builtin_FILE(),
                      int line = __builtin_LINE()) TFR_ACQUIRE_SHARED(mu)
      : mu_(&mu) {
    mu_->lock_shared(file, line);
  }
  ~ReaderLock() TFR_RELEASE() { mu_->unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Condition variable bound to tfr::Mutex via MutexLock. Waits release and
/// re-acquire through the validator, so rank bookkeeping stays exact across
/// blocking. Thread-safety analysis treats a wait as lockset-neutral (the
/// lock is held again when it returns), which matches the explicit
/// `while (!cond) cv.wait(lock);` pattern used throughout the tree —
/// predicate lambdas would be analyzed as unlocked separate functions, so
/// the wrappers intentionally do not take predicates.
///
/// A wait is a blocking call: the blocking-under-lock hook checks every
/// *other* mutex the waiting thread holds against the rank blocking policy
/// (waiting on a queue's own CondVar is fine; parking while holding a
/// foreign no-blocking lock aborts).
class CondVar {
 public:
  void wait(MutexLock& lock, const char* file = __builtin_FILE(),
            int line = __builtin_LINE()) {
    lockrank::on_cv_wait(lock.mu_, file, line);
    Relocker r{&lock};
    cv_.wait(r);
  }

  /// Returns false if `deadline` passed without a notification.
  bool wait_until(MutexLock& lock, std::chrono::steady_clock::time_point deadline,
                  const char* file = __builtin_FILE(), int line = __builtin_LINE()) {
    lockrank::on_cv_wait(lock.mu_, file, line);
    Relocker r{&lock};
    return cv_.wait_until(r, deadline) == std::cv_status::no_timeout;
  }

  /// Returns false on timeout.
  bool wait_for(MutexLock& lock, std::int64_t timeout_micros,
                const char* file = __builtin_FILE(), int line = __builtin_LINE()) {
    return wait_until(
        lock, std::chrono::steady_clock::now() + std::chrono::microseconds(timeout_micros), file,
        line);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  // BasicLockable adapter handed to condition_variable_any: forwards to the
  // un-annotated impl paths so the cv's internal unlock/relock neither trips
  // the static analysis nor escapes the runtime validator.
  struct Relocker {
    MutexLock* l;
    void lock() TFR_NO_THREAD_SAFETY_ANALYSIS {
      l->mu_->lock_impl(l->file_, l->line_);
      l->held_ = true;
    }
    void unlock() TFR_NO_THREAD_SAFETY_ANALYSIS {
      l->mu_->unlock_impl();
      l->held_ = false;
    }
  };
  std::condition_variable_any cv_;
};

}  // namespace tfr
